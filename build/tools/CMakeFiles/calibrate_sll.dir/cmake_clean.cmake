file(REMOVE_RECURSE
  "CMakeFiles/calibrate_sll.dir/calibrate_sll.cc.o"
  "CMakeFiles/calibrate_sll.dir/calibrate_sll.cc.o.d"
  "calibrate_sll"
  "calibrate_sll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_sll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
