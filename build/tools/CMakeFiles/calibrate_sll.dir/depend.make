# Empty dependencies file for calibrate_sll.
# This may be replaced when dependencies are built.
