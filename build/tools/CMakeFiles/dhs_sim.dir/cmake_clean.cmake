file(REMOVE_RECURSE
  "CMakeFiles/dhs_sim.dir/dhs_sim.cc.o"
  "CMakeFiles/dhs_sim.dir/dhs_sim.cc.o.d"
  "dhs_sim"
  "dhs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
