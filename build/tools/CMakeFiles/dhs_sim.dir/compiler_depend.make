# Empty compiler generated dependencies file for dhs_sim.
# This may be replaced when dependencies are built.
