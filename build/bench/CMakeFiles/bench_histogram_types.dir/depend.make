# Empty dependencies file for bench_histogram_types.
# This may be replaced when dependencies are built.
