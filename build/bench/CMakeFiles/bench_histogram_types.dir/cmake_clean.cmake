file(REMOVE_RECURSE
  "CMakeFiles/bench_histogram_types.dir/bench_histogram_types.cc.o"
  "CMakeFiles/bench_histogram_types.dir/bench_histogram_types.cc.o.d"
  "CMakeFiles/bench_histogram_types.dir/bench_util.cc.o"
  "CMakeFiles/bench_histogram_types.dir/bench_util.cc.o.d"
  "bench_histogram_types"
  "bench_histogram_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_histogram_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
