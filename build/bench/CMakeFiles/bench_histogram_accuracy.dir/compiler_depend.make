# Empty compiler generated dependencies file for bench_histogram_accuracy.
# This may be replaced when dependencies are built.
