file(REMOVE_RECURSE
  "CMakeFiles/bench_geometry.dir/bench_geometry.cc.o"
  "CMakeFiles/bench_geometry.dir/bench_geometry.cc.o.d"
  "CMakeFiles/bench_geometry.dir/bench_util.cc.o"
  "CMakeFiles/bench_geometry.dir/bench_util.cc.o.d"
  "bench_geometry"
  "bench_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
