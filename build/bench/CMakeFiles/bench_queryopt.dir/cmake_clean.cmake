file(REMOVE_RECURSE
  "CMakeFiles/bench_queryopt.dir/bench_queryopt.cc.o"
  "CMakeFiles/bench_queryopt.dir/bench_queryopt.cc.o.d"
  "CMakeFiles/bench_queryopt.dir/bench_util.cc.o"
  "CMakeFiles/bench_queryopt.dir/bench_util.cc.o.d"
  "bench_queryopt"
  "bench_queryopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queryopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
