# Empty compiler generated dependencies file for bench_queryopt.
# This may be replaced when dependencies are built.
