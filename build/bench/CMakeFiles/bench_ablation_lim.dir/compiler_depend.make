# Empty compiler generated dependencies file for bench_ablation_lim.
# This may be replaced when dependencies are built.
