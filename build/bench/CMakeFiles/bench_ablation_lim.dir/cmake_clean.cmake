file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lim.dir/bench_ablation_lim.cc.o"
  "CMakeFiles/bench_ablation_lim.dir/bench_ablation_lim.cc.o.d"
  "CMakeFiles/bench_ablation_lim.dir/bench_util.cc.o"
  "CMakeFiles/bench_ablation_lim.dir/bench_util.cc.o.d"
  "bench_ablation_lim"
  "bench_ablation_lim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
