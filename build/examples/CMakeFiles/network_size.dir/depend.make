# Empty dependencies file for network_size.
# This may be replaced when dependencies are built.
