file(REMOVE_RECURSE
  "CMakeFiles/network_size.dir/network_size.cpp.o"
  "CMakeFiles/network_size.dir/network_size.cpp.o.d"
  "network_size"
  "network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
