file(REMOVE_RECURSE
  "CMakeFiles/histogram_optimizer.dir/histogram_optimizer.cpp.o"
  "CMakeFiles/histogram_optimizer.dir/histogram_optimizer.cpp.o.d"
  "histogram_optimizer"
  "histogram_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
