# Empty dependencies file for histogram_optimizer.
# This may be replaced when dependencies are built.
