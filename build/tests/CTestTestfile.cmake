# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hashing_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/dht_test[1]_include.cmake")
include("/root/repo/build/tests/dhs_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/queryopt_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
