file(REMOVE_RECURSE
  "CMakeFiles/histogram_test.dir/histogram/advanced_test.cc.o"
  "CMakeFiles/histogram_test.dir/histogram/advanced_test.cc.o.d"
  "CMakeFiles/histogram_test.dir/histogram/dhs_histogram_test.cc.o"
  "CMakeFiles/histogram_test.dir/histogram/dhs_histogram_test.cc.o.d"
  "CMakeFiles/histogram_test.dir/histogram/equi_width_test.cc.o"
  "CMakeFiles/histogram_test.dir/histogram/equi_width_test.cc.o.d"
  "histogram_test"
  "histogram_test.pdb"
  "histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
