
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/histogram/advanced_test.cc" "tests/CMakeFiles/histogram_test.dir/histogram/advanced_test.cc.o" "gcc" "tests/CMakeFiles/histogram_test.dir/histogram/advanced_test.cc.o.d"
  "/root/repo/tests/histogram/dhs_histogram_test.cc" "tests/CMakeFiles/histogram_test.dir/histogram/dhs_histogram_test.cc.o" "gcc" "tests/CMakeFiles/histogram_test.dir/histogram/dhs_histogram_test.cc.o.d"
  "/root/repo/tests/histogram/equi_width_test.cc" "tests/CMakeFiles/histogram_test.dir/histogram/equi_width_test.cc.o" "gcc" "tests/CMakeFiles/histogram_test.dir/histogram/equi_width_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_queryopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
