file(REMOVE_RECURSE
  "CMakeFiles/dhs_test.dir/dhs/client_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs/client_test.cc.o.d"
  "CMakeFiles/dhs_test.dir/dhs/config_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs/config_test.cc.o.d"
  "CMakeFiles/dhs_test.dir/dhs/lim_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs/lim_test.cc.o.d"
  "CMakeFiles/dhs_test.dir/dhs/maintainer_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs/maintainer_test.cc.o.d"
  "CMakeFiles/dhs_test.dir/dhs/mapping_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs/mapping_test.cc.o.d"
  "CMakeFiles/dhs_test.dir/dhs/metrics_test.cc.o"
  "CMakeFiles/dhs_test.dir/dhs/metrics_test.cc.o.d"
  "dhs_test"
  "dhs_test.pdb"
  "dhs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
