# Empty dependencies file for dhs_test.
# This may be replaced when dependencies are built.
