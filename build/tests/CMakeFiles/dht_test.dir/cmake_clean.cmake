file(REMOVE_RECURSE
  "CMakeFiles/dht_test.dir/dht/chord_test.cc.o"
  "CMakeFiles/dht_test.dir/dht/chord_test.cc.o.d"
  "CMakeFiles/dht_test.dir/dht/kademlia_test.cc.o"
  "CMakeFiles/dht_test.dir/dht/kademlia_test.cc.o.d"
  "CMakeFiles/dht_test.dir/dht/network_conformance_test.cc.o"
  "CMakeFiles/dht_test.dir/dht/network_conformance_test.cc.o.d"
  "CMakeFiles/dht_test.dir/dht/node_id_test.cc.o"
  "CMakeFiles/dht_test.dir/dht/node_id_test.cc.o.d"
  "CMakeFiles/dht_test.dir/dht/router_test.cc.o"
  "CMakeFiles/dht_test.dir/dht/router_test.cc.o.d"
  "CMakeFiles/dht_test.dir/dht/store_test.cc.o"
  "CMakeFiles/dht_test.dir/dht/store_test.cc.o.d"
  "dht_test"
  "dht_test.pdb"
  "dht_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
