file(REMOVE_RECURSE
  "CMakeFiles/queryopt_test.dir/queryopt/optimizer_test.cc.o"
  "CMakeFiles/queryopt_test.dir/queryopt/optimizer_test.cc.o.d"
  "CMakeFiles/queryopt_test.dir/queryopt/selectivity_test.cc.o"
  "CMakeFiles/queryopt_test.dir/queryopt/selectivity_test.cc.o.d"
  "queryopt_test"
  "queryopt_test.pdb"
  "queryopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queryopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
