# Empty dependencies file for queryopt_test.
# This may be replaced when dependencies are built.
