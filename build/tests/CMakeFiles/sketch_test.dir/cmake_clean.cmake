file(REMOVE_RECURSE
  "CMakeFiles/sketch_test.dir/sketch/estimator_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch/estimator_test.cc.o.d"
  "CMakeFiles/sketch_test.dir/sketch/hyperloglog_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch/hyperloglog_test.cc.o.d"
  "CMakeFiles/sketch_test.dir/sketch/loglog_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch/loglog_test.cc.o.d"
  "CMakeFiles/sketch_test.dir/sketch/pcsa_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch/pcsa_test.cc.o.d"
  "CMakeFiles/sketch_test.dir/sketch/property_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch/property_test.cc.o.d"
  "CMakeFiles/sketch_test.dir/sketch/rho_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch/rho_test.cc.o.d"
  "sketch_test"
  "sketch_test.pdb"
  "sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
