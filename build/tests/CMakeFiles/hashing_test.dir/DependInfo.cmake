
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hashing/hasher_test.cc" "tests/CMakeFiles/hashing_test.dir/hashing/hasher_test.cc.o" "gcc" "tests/CMakeFiles/hashing_test.dir/hashing/hasher_test.cc.o.d"
  "/root/repo/tests/hashing/md4_test.cc" "tests/CMakeFiles/hashing_test.dir/hashing/md4_test.cc.o" "gcc" "tests/CMakeFiles/hashing_test.dir/hashing/md4_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_queryopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
