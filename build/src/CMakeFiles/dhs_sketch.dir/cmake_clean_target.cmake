file(REMOVE_RECURSE
  "libdhs_sketch.a"
)
