# Empty compiler generated dependencies file for dhs_sketch.
# This may be replaced when dependencies are built.
