file(REMOVE_RECURSE
  "CMakeFiles/dhs_sketch.dir/sketch/estimator.cc.o"
  "CMakeFiles/dhs_sketch.dir/sketch/estimator.cc.o.d"
  "CMakeFiles/dhs_sketch.dir/sketch/hyperloglog.cc.o"
  "CMakeFiles/dhs_sketch.dir/sketch/hyperloglog.cc.o.d"
  "CMakeFiles/dhs_sketch.dir/sketch/loglog.cc.o"
  "CMakeFiles/dhs_sketch.dir/sketch/loglog.cc.o.d"
  "CMakeFiles/dhs_sketch.dir/sketch/pcsa.cc.o"
  "CMakeFiles/dhs_sketch.dir/sketch/pcsa.cc.o.d"
  "CMakeFiles/dhs_sketch.dir/sketch/rho.cc.o"
  "CMakeFiles/dhs_sketch.dir/sketch/rho.cc.o.d"
  "libdhs_sketch.a"
  "libdhs_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
