
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/estimator.cc" "src/CMakeFiles/dhs_sketch.dir/sketch/estimator.cc.o" "gcc" "src/CMakeFiles/dhs_sketch.dir/sketch/estimator.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/CMakeFiles/dhs_sketch.dir/sketch/hyperloglog.cc.o" "gcc" "src/CMakeFiles/dhs_sketch.dir/sketch/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/loglog.cc" "src/CMakeFiles/dhs_sketch.dir/sketch/loglog.cc.o" "gcc" "src/CMakeFiles/dhs_sketch.dir/sketch/loglog.cc.o.d"
  "/root/repo/src/sketch/pcsa.cc" "src/CMakeFiles/dhs_sketch.dir/sketch/pcsa.cc.o" "gcc" "src/CMakeFiles/dhs_sketch.dir/sketch/pcsa.cc.o.d"
  "/root/repo/src/sketch/rho.cc" "src/CMakeFiles/dhs_sketch.dir/sketch/rho.cc.o" "gcc" "src/CMakeFiles/dhs_sketch.dir/sketch/rho.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
