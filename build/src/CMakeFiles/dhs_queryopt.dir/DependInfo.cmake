
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queryopt/join_graph.cc" "src/CMakeFiles/dhs_queryopt.dir/queryopt/join_graph.cc.o" "gcc" "src/CMakeFiles/dhs_queryopt.dir/queryopt/join_graph.cc.o.d"
  "/root/repo/src/queryopt/optimizer.cc" "src/CMakeFiles/dhs_queryopt.dir/queryopt/optimizer.cc.o" "gcc" "src/CMakeFiles/dhs_queryopt.dir/queryopt/optimizer.cc.o.d"
  "/root/repo/src/queryopt/selectivity.cc" "src/CMakeFiles/dhs_queryopt.dir/queryopt/selectivity.cc.o" "gcc" "src/CMakeFiles/dhs_queryopt.dir/queryopt/selectivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
