file(REMOVE_RECURSE
  "libdhs_queryopt.a"
)
