# Empty dependencies file for dhs_queryopt.
# This may be replaced when dependencies are built.
