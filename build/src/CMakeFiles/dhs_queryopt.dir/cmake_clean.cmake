file(REMOVE_RECURSE
  "CMakeFiles/dhs_queryopt.dir/queryopt/join_graph.cc.o"
  "CMakeFiles/dhs_queryopt.dir/queryopt/join_graph.cc.o.d"
  "CMakeFiles/dhs_queryopt.dir/queryopt/optimizer.cc.o"
  "CMakeFiles/dhs_queryopt.dir/queryopt/optimizer.cc.o.d"
  "CMakeFiles/dhs_queryopt.dir/queryopt/selectivity.cc.o"
  "CMakeFiles/dhs_queryopt.dir/queryopt/selectivity.cc.o.d"
  "libdhs_queryopt.a"
  "libdhs_queryopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_queryopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
