file(REMOVE_RECURSE
  "libdhs_histogram.a"
)
