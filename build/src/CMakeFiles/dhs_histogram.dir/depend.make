# Empty dependencies file for dhs_histogram.
# This may be replaced when dependencies are built.
