
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/histogram/advanced.cc" "src/CMakeFiles/dhs_histogram.dir/histogram/advanced.cc.o" "gcc" "src/CMakeFiles/dhs_histogram.dir/histogram/advanced.cc.o.d"
  "/root/repo/src/histogram/dhs_histogram.cc" "src/CMakeFiles/dhs_histogram.dir/histogram/dhs_histogram.cc.o" "gcc" "src/CMakeFiles/dhs_histogram.dir/histogram/dhs_histogram.cc.o.d"
  "/root/repo/src/histogram/equi_width.cc" "src/CMakeFiles/dhs_histogram.dir/histogram/equi_width.cc.o" "gcc" "src/CMakeFiles/dhs_histogram.dir/histogram/equi_width.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
