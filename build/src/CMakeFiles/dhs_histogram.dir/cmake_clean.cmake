file(REMOVE_RECURSE
  "CMakeFiles/dhs_histogram.dir/histogram/advanced.cc.o"
  "CMakeFiles/dhs_histogram.dir/histogram/advanced.cc.o.d"
  "CMakeFiles/dhs_histogram.dir/histogram/dhs_histogram.cc.o"
  "CMakeFiles/dhs_histogram.dir/histogram/dhs_histogram.cc.o.d"
  "CMakeFiles/dhs_histogram.dir/histogram/equi_width.cc.o"
  "CMakeFiles/dhs_histogram.dir/histogram/equi_width.cc.o.d"
  "libdhs_histogram.a"
  "libdhs_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
