# Empty compiler generated dependencies file for dhs_common.
# This may be replaced when dependencies are built.
