file(REMOVE_RECURSE
  "CMakeFiles/dhs_common.dir/common/random.cc.o"
  "CMakeFiles/dhs_common.dir/common/random.cc.o.d"
  "CMakeFiles/dhs_common.dir/common/stats.cc.o"
  "CMakeFiles/dhs_common.dir/common/stats.cc.o.d"
  "CMakeFiles/dhs_common.dir/common/status.cc.o"
  "CMakeFiles/dhs_common.dir/common/status.cc.o.d"
  "CMakeFiles/dhs_common.dir/common/zipf.cc.o"
  "CMakeFiles/dhs_common.dir/common/zipf.cc.o.d"
  "libdhs_common.a"
  "libdhs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
