file(REMOVE_RECURSE
  "libdhs_common.a"
)
