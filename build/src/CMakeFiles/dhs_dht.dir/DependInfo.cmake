
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/chord.cc" "src/CMakeFiles/dhs_dht.dir/dht/chord.cc.o" "gcc" "src/CMakeFiles/dhs_dht.dir/dht/chord.cc.o.d"
  "/root/repo/src/dht/kademlia.cc" "src/CMakeFiles/dhs_dht.dir/dht/kademlia.cc.o" "gcc" "src/CMakeFiles/dhs_dht.dir/dht/kademlia.cc.o.d"
  "/root/repo/src/dht/network.cc" "src/CMakeFiles/dhs_dht.dir/dht/network.cc.o" "gcc" "src/CMakeFiles/dhs_dht.dir/dht/network.cc.o.d"
  "/root/repo/src/dht/node_id.cc" "src/CMakeFiles/dhs_dht.dir/dht/node_id.cc.o" "gcc" "src/CMakeFiles/dhs_dht.dir/dht/node_id.cc.o.d"
  "/root/repo/src/dht/router.cc" "src/CMakeFiles/dhs_dht.dir/dht/router.cc.o" "gcc" "src/CMakeFiles/dhs_dht.dir/dht/router.cc.o.d"
  "/root/repo/src/dht/store.cc" "src/CMakeFiles/dhs_dht.dir/dht/store.cc.o" "gcc" "src/CMakeFiles/dhs_dht.dir/dht/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
