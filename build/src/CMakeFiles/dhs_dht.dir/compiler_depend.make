# Empty compiler generated dependencies file for dhs_dht.
# This may be replaced when dependencies are built.
