file(REMOVE_RECURSE
  "libdhs_dht.a"
)
