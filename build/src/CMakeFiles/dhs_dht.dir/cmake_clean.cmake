file(REMOVE_RECURSE
  "CMakeFiles/dhs_dht.dir/dht/chord.cc.o"
  "CMakeFiles/dhs_dht.dir/dht/chord.cc.o.d"
  "CMakeFiles/dhs_dht.dir/dht/kademlia.cc.o"
  "CMakeFiles/dhs_dht.dir/dht/kademlia.cc.o.d"
  "CMakeFiles/dhs_dht.dir/dht/network.cc.o"
  "CMakeFiles/dhs_dht.dir/dht/network.cc.o.d"
  "CMakeFiles/dhs_dht.dir/dht/node_id.cc.o"
  "CMakeFiles/dhs_dht.dir/dht/node_id.cc.o.d"
  "CMakeFiles/dhs_dht.dir/dht/router.cc.o"
  "CMakeFiles/dhs_dht.dir/dht/router.cc.o.d"
  "CMakeFiles/dhs_dht.dir/dht/store.cc.o"
  "CMakeFiles/dhs_dht.dir/dht/store.cc.o.d"
  "libdhs_dht.a"
  "libdhs_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
