
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/generator.cc" "src/CMakeFiles/dhs_relation.dir/relation/generator.cc.o" "gcc" "src/CMakeFiles/dhs_relation.dir/relation/generator.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/dhs_relation.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/dhs_relation.dir/relation/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
