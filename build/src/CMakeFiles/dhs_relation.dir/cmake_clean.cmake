file(REMOVE_RECURSE
  "CMakeFiles/dhs_relation.dir/relation/generator.cc.o"
  "CMakeFiles/dhs_relation.dir/relation/generator.cc.o.d"
  "CMakeFiles/dhs_relation.dir/relation/relation.cc.o"
  "CMakeFiles/dhs_relation.dir/relation/relation.cc.o.d"
  "libdhs_relation.a"
  "libdhs_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
