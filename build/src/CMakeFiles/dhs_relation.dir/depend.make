# Empty dependencies file for dhs_relation.
# This may be replaced when dependencies are built.
