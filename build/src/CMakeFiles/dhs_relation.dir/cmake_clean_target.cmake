file(REMOVE_RECURSE
  "libdhs_relation.a"
)
