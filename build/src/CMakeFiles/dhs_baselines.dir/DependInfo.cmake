
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/central_counter.cc" "src/CMakeFiles/dhs_baselines.dir/baselines/central_counter.cc.o" "gcc" "src/CMakeFiles/dhs_baselines.dir/baselines/central_counter.cc.o.d"
  "/root/repo/src/baselines/convergecast.cc" "src/CMakeFiles/dhs_baselines.dir/baselines/convergecast.cc.o" "gcc" "src/CMakeFiles/dhs_baselines.dir/baselines/convergecast.cc.o.d"
  "/root/repo/src/baselines/gossip.cc" "src/CMakeFiles/dhs_baselines.dir/baselines/gossip.cc.o" "gcc" "src/CMakeFiles/dhs_baselines.dir/baselines/gossip.cc.o.d"
  "/root/repo/src/baselines/sampling.cc" "src/CMakeFiles/dhs_baselines.dir/baselines/sampling.cc.o" "gcc" "src/CMakeFiles/dhs_baselines.dir/baselines/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
