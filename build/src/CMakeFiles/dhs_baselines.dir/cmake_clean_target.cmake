file(REMOVE_RECURSE
  "libdhs_baselines.a"
)
