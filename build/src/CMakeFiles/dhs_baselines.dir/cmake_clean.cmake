file(REMOVE_RECURSE
  "CMakeFiles/dhs_baselines.dir/baselines/central_counter.cc.o"
  "CMakeFiles/dhs_baselines.dir/baselines/central_counter.cc.o.d"
  "CMakeFiles/dhs_baselines.dir/baselines/convergecast.cc.o"
  "CMakeFiles/dhs_baselines.dir/baselines/convergecast.cc.o.d"
  "CMakeFiles/dhs_baselines.dir/baselines/gossip.cc.o"
  "CMakeFiles/dhs_baselines.dir/baselines/gossip.cc.o.d"
  "CMakeFiles/dhs_baselines.dir/baselines/sampling.cc.o"
  "CMakeFiles/dhs_baselines.dir/baselines/sampling.cc.o.d"
  "libdhs_baselines.a"
  "libdhs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
