# Empty dependencies file for dhs_baselines.
# This may be replaced when dependencies are built.
