file(REMOVE_RECURSE
  "CMakeFiles/dhs_hashing.dir/hashing/hasher.cc.o"
  "CMakeFiles/dhs_hashing.dir/hashing/hasher.cc.o.d"
  "CMakeFiles/dhs_hashing.dir/hashing/md4.cc.o"
  "CMakeFiles/dhs_hashing.dir/hashing/md4.cc.o.d"
  "libdhs_hashing.a"
  "libdhs_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
