# Empty compiler generated dependencies file for dhs_hashing.
# This may be replaced when dependencies are built.
