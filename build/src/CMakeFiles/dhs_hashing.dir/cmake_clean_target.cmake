file(REMOVE_RECURSE
  "libdhs_hashing.a"
)
