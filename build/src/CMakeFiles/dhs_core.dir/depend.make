# Empty dependencies file for dhs_core.
# This may be replaced when dependencies are built.
