file(REMOVE_RECURSE
  "libdhs_core.a"
)
