file(REMOVE_RECURSE
  "CMakeFiles/dhs_core.dir/dhs/client.cc.o"
  "CMakeFiles/dhs_core.dir/dhs/client.cc.o.d"
  "CMakeFiles/dhs_core.dir/dhs/config.cc.o"
  "CMakeFiles/dhs_core.dir/dhs/config.cc.o.d"
  "CMakeFiles/dhs_core.dir/dhs/lim.cc.o"
  "CMakeFiles/dhs_core.dir/dhs/lim.cc.o.d"
  "CMakeFiles/dhs_core.dir/dhs/maintainer.cc.o"
  "CMakeFiles/dhs_core.dir/dhs/maintainer.cc.o.d"
  "CMakeFiles/dhs_core.dir/dhs/mapping.cc.o"
  "CMakeFiles/dhs_core.dir/dhs/mapping.cc.o.d"
  "CMakeFiles/dhs_core.dir/dhs/metrics.cc.o"
  "CMakeFiles/dhs_core.dir/dhs/metrics.cc.o.d"
  "libdhs_core.a"
  "libdhs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
