
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dhs/client.cc" "src/CMakeFiles/dhs_core.dir/dhs/client.cc.o" "gcc" "src/CMakeFiles/dhs_core.dir/dhs/client.cc.o.d"
  "/root/repo/src/dhs/config.cc" "src/CMakeFiles/dhs_core.dir/dhs/config.cc.o" "gcc" "src/CMakeFiles/dhs_core.dir/dhs/config.cc.o.d"
  "/root/repo/src/dhs/lim.cc" "src/CMakeFiles/dhs_core.dir/dhs/lim.cc.o" "gcc" "src/CMakeFiles/dhs_core.dir/dhs/lim.cc.o.d"
  "/root/repo/src/dhs/maintainer.cc" "src/CMakeFiles/dhs_core.dir/dhs/maintainer.cc.o" "gcc" "src/CMakeFiles/dhs_core.dir/dhs/maintainer.cc.o.d"
  "/root/repo/src/dhs/mapping.cc" "src/CMakeFiles/dhs_core.dir/dhs/mapping.cc.o" "gcc" "src/CMakeFiles/dhs_core.dir/dhs/mapping.cc.o.d"
  "/root/repo/src/dhs/metrics.cc" "src/CMakeFiles/dhs_core.dir/dhs/metrics.cc.o" "gcc" "src/CMakeFiles/dhs_core.dir/dhs/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhs_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
