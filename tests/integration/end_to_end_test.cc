// Full-pipeline integration test: a miniature version of the paper's §5
// evaluation — relations on a Chord overlay, DHS insertion, distributed
// counting, histogram reconstruction, and histogram-driven join ordering.

#include "dht/chord.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/stats.h"
#include "dhs/client.h"
#include "hashing/hasher.h"
#include "histogram/dhs_histogram.h"
#include "queryopt/optimizer.h"
#include "relation/relation.h"

namespace dhs {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 256;
  static constexpr int kBitmaps = 64;
  static constexpr int kBuckets = 10;

  void SetUp() override {
    ChordConfig chord;
    chord.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(chord);
    Rng rng(1);
    for (int i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    }
    DhsConfig config;
    config.k = 24;
    config.m = kBitmaps;
    config.estimator = DhsEstimator::kSuperLogLog;
    auto client = DhsClient::Create(net_.get(), config);
    ASSERT_TRUE(client.ok());
    client_ = std::make_unique<DhsClient>(std::move(client.value()));
  }

  // Generates a relation, spreads it over the overlay, and records every
  // tuple both under the relation's cardinality metric and its histogram.
  Relation LoadRelation(const std::string& name, uint64_t tuples,
                        uint64_t metric, DhsHistogram* hist, Rng& rng) {
    RelationSpec spec;
    spec.name = name;
    spec.num_tuples = tuples;
    spec.domain_size = 100;
    spec.zipf_theta = 0.7;
    Relation relation = RelationGenerator::Generate(spec, metric);
    MixHasher hasher(metric * 31);
    const auto assignment =
        AssignTuplesToNodes(relation, net_->NodeIds(), rng);
    for (const auto& [node, tuple_ids] : assignment) {
      std::vector<uint64_t> hashes;
      std::vector<std::pair<uint64_t, int64_t>> items;
      hashes.reserve(tuple_ids.size());
      for (uint64_t t : tuple_ids) {
        const uint64_t h = hasher.HashU64(relation.TupleId(t));
        hashes.push_back(h);
        items.emplace_back(h, relation.Value(t));
      }
      EXPECT_TRUE(client_->InsertBatch(node, metric, hashes, rng).ok());
      if (hist != nullptr) {
        EXPECT_TRUE(hist->InsertBatch(node, items, rng).ok());
      }
    }
    return relation;
  }

  std::unique_ptr<ChordNetwork> net_;
  std::unique_ptr<DhsClient> client_;
};

TEST_F(EndToEndTest, RelationCardinalitiesWithPreservedRatios) {
  // Q : R = 1 : 2 (the paper's geometric relation sizes).
  Rng rng(2);
  LoadRelation("Q", 30000, 1, nullptr, rng);
  LoadRelation("R", 60000, 2, nullptr, rng);
  auto q = client_->Count(net_->RandomNode(rng), 1, rng);
  auto r = client_->Count(net_->RandomNode(rng), 2, rng);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_LT(RelativeError(q->estimate, 30000), 0.45);
  EXPECT_LT(RelativeError(r->estimate, 60000), 0.45);
  // The 2x ratio must be clearly visible.
  EXPECT_GT(r->estimate / q->estimate, 1.3);
}

TEST_F(EndToEndTest, HistogramDrivenOptimizerFindsGoodPlan) {
  Rng rng(3);
  const HistogramSpec hspec(1, 100, kBuckets);

  struct Loaded {
    Relation relation;
    DhsHistogram::Reconstruction reconstruction;
  };
  std::vector<JoinInput> estimated_inputs;
  std::vector<JoinInput> exact_inputs;
  uint64_t sizes[3] = {20000, 40000, 80000};
  const char* names[3] = {"Q", "R", "S"};
  for (int i = 0; i < 3; ++i) {
    DhsHistogram hist(client_.get(), hspec, 1000 + static_cast<uint64_t>(i));
    const Relation relation = LoadRelation(
        names[i], sizes[i], 10 + static_cast<uint64_t>(i), &hist, rng);
    auto reconstruction = hist.Reconstruct(net_->RandomNode(rng), rng);
    ASSERT_TRUE(reconstruction.ok());

    estimated_inputs.push_back(
        JoinInput{names[i],
                  AttributeStats{hspec, reconstruction->buckets},
                  1024});
    const auto exact = BuildExactHistogram(relation, hspec);
    exact_inputs.push_back(
        JoinInput{names[i],
                  AttributeStats{hspec,
                                 std::vector<double>(exact.begin(),
                                                     exact.end())},
                  1024});
  }

  JoinQuery estimated{estimated_inputs};
  JoinQuery exact{exact_inputs};
  JoinOptimizer est_optimizer(&estimated);
  JoinOptimizer true_optimizer(&exact);

  // Order chosen from DHS histograms, evaluated under the exact stats.
  auto chosen = est_optimizer.Best();
  ASSERT_TRUE(chosen.ok());
  auto chosen_true_cost = true_optimizer.Evaluate(chosen->order);
  ASSERT_TRUE(chosen_true_cost.ok());

  auto best_true = true_optimizer.Best();
  auto worst_true = true_optimizer.Worst();
  ASSERT_TRUE(best_true.ok());
  ASSERT_TRUE(worst_true.ok());

  // The DHS-informed plan must be close to optimal and far from worst.
  EXPECT_LT(chosen_true_cost->transfer_bytes,
            1.25 * best_true->transfer_bytes);
  EXPECT_LT(chosen_true_cost->transfer_bytes,
            0.9 * worst_true->transfer_bytes);
}

TEST_F(EndToEndTest, HistogramReconstructionIsCheapVsDataTransfer) {
  Rng rng(4);
  const HistogramSpec hspec(1, 100, kBuckets);
  DhsHistogram hist(client_.get(), hspec, 77);
  const Relation relation = LoadRelation("T", 50000, 20, &hist, rng);

  net_->ResetStats();
  auto reconstruction = hist.Reconstruct(net_->RandomNode(rng), rng);
  ASSERT_TRUE(reconstruction.ok());
  const uint64_t reconstruction_bytes = net_->stats().bytes;
  // §5.2: reconstruction costs orders of magnitude less than shipping a
  // relation (50000 tuples x 1 kB = 51 MB).
  EXPECT_LT(reconstruction_bytes, relation.TotalBytes() / 100);
}

TEST_F(EndToEndTest, InsertionCostsMatchPaperModel) {
  Rng rng(5);
  net_->ResetStats();
  MixHasher hasher(9);
  constexpr int kInserts = 2000;
  for (int i = 0; i < kInserts; ++i) {
    ASSERT_TRUE(client_
                    ->Insert(net_->RandomNode(rng), 30,
                             hasher.HashU64(static_cast<uint64_t>(i)), rng)
                    .ok());
  }
  const double avg_hops =
      static_cast<double>(net_->stats().hops) / kInserts;
  const double avg_bytes =
      static_cast<double>(net_->stats().bytes) / kInserts;
  // O(log N) hops: ~0.5 log2(256) .. log2(256).
  EXPECT_GT(avg_hops, 2.0);
  EXPECT_LT(avg_hops, 8.0);
  // O(b log N) bytes with b = 8.
  EXPECT_GT(avg_bytes, 8.0);
  EXPECT_LT(avg_bytes, 80.0);
}

TEST_F(EndToEndTest, PerNodeStorageIsBalanced) {
  Rng rng(6);
  LoadRelation("U", 100000, 40, nullptr, rng);
  SampleStats per_node;
  for (uint64_t node : net_->NodeIds()) {
    per_node.Add(static_cast<double>(net_->StoreAt(node)->NumRecords()));
  }
  // The thr() mapping spreads load: the busiest node should hold well
  // under 20x the median (one-node-per-counter would be ~N x).
  EXPECT_LT(per_node.max(), 20 * per_node.Median() + 20);
  EXPECT_GT(per_node.Median(), 0.0);
}

}  // namespace
}  // namespace dhs
