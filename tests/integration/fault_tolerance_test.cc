// Fault-tolerance integration tests (§3.5): abrupt node failures,
// replication of DHS bits, the bit-shift mapping rule, and soft-state
// churn behaviour.

#include "dht/chord.h"
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/stats.h"
#include "dhs/client.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kItems = 60000;

  void SetUp() override {
    ChordConfig chord;
    chord.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(chord);
    Rng rng(11);
    for (int i = 0; i < 256; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
  }

  DhsClient MakeClient(int replication, int shift = 0) {
    DhsConfig config;
    config.k = 24;
    config.m = 64;
    config.estimator = DhsEstimator::kSuperLogLog;
    config.replication = replication;
    config.shift_bits = shift;
    auto client = DhsClient::Create(net_.get(), config);
    EXPECT_TRUE(client.ok());
    return std::move(client.value());
  }

  void Populate(DhsClient& client, uint64_t metric) {
    Rng rng(22);
    MixHasher hasher(metric);
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < kItems; ++i) {
      batch.push_back(hasher.HashU64(i));
      if (batch.size() == 250) {
        ASSERT_TRUE(
            client.InsertBatch(net_->RandomNode(rng), metric, batch, rng)
                .ok());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          client.InsertBatch(net_->RandomNode(rng), metric, batch, rng)
              .ok());
    }
  }

  void FailFraction(double fraction, uint64_t seed) {
    Rng rng(seed);
    auto ids = net_->NodeIds();
    for (uint64_t id : ids) {
      if (net_->NumNodes() <= 8) break;
      if (rng.Bernoulli(fraction)) {
        ASSERT_TRUE(net_->FailNode(id).ok());
      }
    }
  }

  std::unique_ptr<ChordNetwork> net_;
};

TEST_F(FaultToleranceTest, CountingSurvivesGracefulDepartures) {
  DhsClient client = MakeClient(1);
  Populate(client, 1);
  // Graceful leaves hand data to successors: no information is lost.
  Rng rng(1);
  auto ids = net_->NodeIds();
  for (size_t i = 0; i < ids.size(); i += 4) {
    ASSERT_TRUE(net_->RemoveNode(ids[i]).ok());
  }
  auto result = client.Count(net_->RandomNode(rng), 1, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(RelativeError(result->estimate, static_cast<double>(kItems)),
            0.5);
}

TEST_F(FaultToleranceTest, ReplicationMitigatesFailures) {
  DhsClient unreplicated = MakeClient(1);
  DhsClient replicated = MakeClient(3);
  Populate(unreplicated, 1);
  Populate(replicated, 2);

  // Compare each metric's post-failure estimate with its own pre-failure
  // estimate, so the per-sketch statistical realization cancels out and
  // only the failure-induced degradation remains.
  Rng rng(2);
  auto mean_estimate = [&](DhsClient& client, uint64_t metric) {
    StreamingStats estimates;
    for (int t = 0; t < 6; ++t) {
      auto result = client.Count(net_->RandomNode(rng), metric, rng);
      EXPECT_TRUE(result.ok());
      estimates.Add(result->estimate);
    }
    return estimates.mean();
  };
  const double plain_before = mean_estimate(unreplicated, 1);
  const double repl_before = mean_estimate(replicated, 2);
  FailFraction(0.25, 33);
  const double plain_after = mean_estimate(unreplicated, 1);
  const double repl_after = mean_estimate(replicated, 2);

  const double plain_degradation =
      RelativeError(plain_after, plain_before);
  const double repl_degradation = RelativeError(repl_after, repl_before);
  EXPECT_LT(repl_degradation, plain_degradation + 0.05);
  EXPECT_LT(repl_degradation, 0.4);
}

TEST_F(FaultToleranceTest, BitShiftRuleStillCountsLargeSets) {
  // shift = 6: only cardinalities above ~2^6 are measurable, but high
  // bits land in larger intervals (cheaper to make fault tolerant).
  DhsClient shifted = MakeClient(1, /*shift=*/6);
  Populate(shifted, 3);
  Rng rng(3);
  auto result = shifted.Count(net_->RandomNode(rng), 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(RelativeError(result->estimate, static_cast<double>(kItems)),
            0.5);
}

TEST_F(FaultToleranceTest, BitShiftReducesStoredTuples) {
  DhsClient plain = MakeClient(1, 0);
  DhsClient shifted = MakeClient(1, 6);
  const size_t before = net_->TotalStorageBytes();
  Populate(plain, 4);
  const size_t plain_bytes = net_->TotalStorageBytes() - before;
  Populate(shifted, 5);
  const size_t shifted_bytes =
      net_->TotalStorageBytes() - before - plain_bytes;
  // Bits 0..5 (the overwhelming majority of items) are never stored.
  EXPECT_LT(shifted_bytes, plain_bytes / 4);
}

TEST_F(FaultToleranceTest, SoftStateRecoversAfterChurnAndRefresh) {
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.ttl_ticks = 100;
  auto client_or = DhsClient::Create(net_.get(), config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());

  Populate(client, 6);
  net_->AdvanceClock(100);  // everything ages out
  Rng rng(4);
  auto stale = client.Count(net_->RandomNode(rng), 6, rng);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->estimate, 0.0);

  Populate(client, 6);  // refresh round re-establishes the sketch
  auto fresh = client.Count(net_->RandomNode(rng), 6, rng);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(RelativeError(fresh->estimate, static_cast<double>(kItems)),
            0.5);
}

TEST_F(FaultToleranceTest, FailuresOnlyCauseUnderestimation) {
  DhsClient client = MakeClient(1);
  Populate(client, 7);
  Rng rng(5);
  auto before = client.Count(net_->RandomNode(rng), 7, rng);
  ASSERT_TRUE(before.ok());
  FailFraction(0.3, 44);
  // Average a few counts: losing bits can only lower the sLL max-rho.
  StreamingStats after;
  for (int t = 0; t < 6; ++t) {
    auto result = client.Count(net_->RandomNode(rng), 7, rng);
    ASSERT_TRUE(result.ok());
    after.Add(result->estimate);
  }
  EXPECT_LT(after.mean(), 1.15 * before->estimate);
}

TEST_F(FaultToleranceTest, MissProbabilityDropsWithReplication) {
  // Validates the paper's p_f^R replica-loss argument on the actual
  // store: after failing 20% of nodes, count how many logical tuples
  // survive with and without replication.
  auto count_coordinates = [&](uint64_t metric) {
    std::set<std::pair<int, int>> coords;
    for (uint64_t node : net_->NodeIds()) {
      net_->StoreAt(node)->ForEachDhsMetric(
          metric, net_->now(),
          [&](const StoreKey& key, const StoreRecord&) {
            coords.emplace(key.bit(), key.vector_id());
          });
    }
    return coords.size();
  };

  DhsClient unreplicated = MakeClient(1);
  DhsClient replicated = MakeClient(3);
  Populate(unreplicated, 8);
  Populate(replicated, 9);
  const size_t plain_before = count_coordinates(8);
  const size_t repl_before = count_coordinates(9);
  FailFraction(0.2, 55);
  const double plain_survival =
      static_cast<double>(count_coordinates(8)) /
      static_cast<double>(plain_before);
  const double repl_survival =
      static_cast<double>(count_coordinates(9)) /
      static_cast<double>(repl_before);
  EXPECT_GT(repl_survival, plain_survival);
  EXPECT_GT(repl_survival, 0.95);
}

}  // namespace
}  // namespace dhs
