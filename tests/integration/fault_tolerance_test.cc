// Fault-tolerance integration tests (§3.5): abrupt node failures,
// replication of DHS bits, the bit-shift mapping rule, soft-state churn
// behaviour, and the message-fault matrix (drops / timeouts / crashes
// injected via FaultPlan) over both geometries.

#include "dht/chord.h"
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/stats.h"
#include "dhs/client.h"
#include "dht/kademlia.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kItems = 60000;

  void SetUp() override {
    ChordConfig chord;
    chord.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(chord);
    Rng rng(11);
    for (int i = 0; i < 256; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
  }

  DhsClient MakeClient(int replication, int shift = 0) {
    DhsConfig config;
    config.k = 24;
    config.m = 64;
    config.estimator = DhsEstimator::kSuperLogLog;
    config.replication = replication;
    config.shift_bits = shift;
    auto client = DhsClient::Create(net_.get(), config);
    EXPECT_TRUE(client.ok());
    return std::move(client.value());
  }

  void Populate(DhsClient& client, uint64_t metric) {
    Rng rng(22);
    MixHasher hasher(metric);
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < kItems; ++i) {
      batch.push_back(hasher.HashU64(i));
      if (batch.size() == 250) {
        ASSERT_TRUE(
            client.InsertBatch(net_->RandomNode(rng), metric, batch, rng)
                .ok());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          client.InsertBatch(net_->RandomNode(rng), metric, batch, rng)
              .ok());
    }
  }

  void FailFraction(double fraction, uint64_t seed) {
    Rng rng(seed);
    auto ids = net_->NodeIds();
    for (uint64_t id : ids) {
      if (net_->NumNodes() <= 8) break;
      if (rng.Bernoulli(fraction)) {
        ASSERT_TRUE(net_->FailNode(id).ok());
      }
    }
  }

  std::unique_ptr<ChordNetwork> net_;
};

TEST_F(FaultToleranceTest, CountingSurvivesGracefulDepartures) {
  DhsClient client = MakeClient(1);
  Populate(client, 1);
  // Graceful leaves hand data to successors: no information is lost.
  Rng rng(1);
  auto ids = net_->NodeIds();
  for (size_t i = 0; i < ids.size(); i += 4) {
    ASSERT_TRUE(net_->RemoveNode(ids[i]).ok());
  }
  auto result = client.Count(net_->RandomNode(rng), 1, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(RelativeError(result->estimate, static_cast<double>(kItems)),
            0.5);
}

TEST_F(FaultToleranceTest, ReplicationMitigatesFailures) {
  DhsClient unreplicated = MakeClient(1);
  DhsClient replicated = MakeClient(3);
  Populate(unreplicated, 1);
  Populate(replicated, 2);

  // Compare each metric's post-failure estimate with its own pre-failure
  // estimate, so the per-sketch statistical realization cancels out and
  // only the failure-induced degradation remains.
  Rng rng(2);
  auto mean_estimate = [&](DhsClient& client, uint64_t metric) {
    StreamingStats estimates;
    for (int t = 0; t < 6; ++t) {
      auto result = client.Count(net_->RandomNode(rng), metric, rng);
      EXPECT_TRUE(result.ok());
      estimates.Add(result->estimate);
    }
    return estimates.mean();
  };
  const double plain_before = mean_estimate(unreplicated, 1);
  const double repl_before = mean_estimate(replicated, 2);
  FailFraction(0.25, 33);
  const double plain_after = mean_estimate(unreplicated, 1);
  const double repl_after = mean_estimate(replicated, 2);

  const double plain_degradation =
      RelativeError(plain_after, plain_before);
  const double repl_degradation = RelativeError(repl_after, repl_before);
  EXPECT_LT(repl_degradation, plain_degradation + 0.05);
  EXPECT_LT(repl_degradation, 0.4);
}

TEST_F(FaultToleranceTest, BitShiftRuleStillCountsLargeSets) {
  // shift = 6: only cardinalities above ~2^6 are measurable, but high
  // bits land in larger intervals (cheaper to make fault tolerant).
  DhsClient shifted = MakeClient(1, /*shift=*/6);
  Populate(shifted, 3);
  Rng rng(3);
  auto result = shifted.Count(net_->RandomNode(rng), 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(RelativeError(result->estimate, static_cast<double>(kItems)),
            0.5);
}

TEST_F(FaultToleranceTest, BitShiftReducesStoredTuples) {
  DhsClient plain = MakeClient(1, 0);
  DhsClient shifted = MakeClient(1, 6);
  const size_t before = net_->TotalStorageBytes();
  Populate(plain, 4);
  const size_t plain_bytes = net_->TotalStorageBytes() - before;
  Populate(shifted, 5);
  const size_t shifted_bytes =
      net_->TotalStorageBytes() - before - plain_bytes;
  // Bits 0..5 (the overwhelming majority of items) are never stored.
  EXPECT_LT(shifted_bytes, plain_bytes / 4);
}

TEST_F(FaultToleranceTest, SoftStateRecoversAfterChurnAndRefresh) {
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.ttl_ticks = 100;
  auto client_or = DhsClient::Create(net_.get(), config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());

  Populate(client, 6);
  net_->AdvanceClock(100);  // everything ages out
  Rng rng(4);
  auto stale = client.Count(net_->RandomNode(rng), 6, rng);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->estimate, 0.0);

  Populate(client, 6);  // refresh round re-establishes the sketch
  auto fresh = client.Count(net_->RandomNode(rng), 6, rng);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(RelativeError(fresh->estimate, static_cast<double>(kItems)),
            0.5);
}

TEST_F(FaultToleranceTest, FailuresOnlyCauseUnderestimation) {
  DhsClient client = MakeClient(1);
  Populate(client, 7);
  Rng rng(5);
  auto before = client.Count(net_->RandomNode(rng), 7, rng);
  ASSERT_TRUE(before.ok());
  FailFraction(0.3, 44);
  // Average a few counts: losing bits can only lower the sLL max-rho.
  StreamingStats after;
  for (int t = 0; t < 6; ++t) {
    auto result = client.Count(net_->RandomNode(rng), 7, rng);
    ASSERT_TRUE(result.ok());
    after.Add(result->estimate);
  }
  EXPECT_LT(after.mean(), 1.15 * before->estimate);
}

TEST_F(FaultToleranceTest, MissProbabilityDropsWithReplication) {
  // Validates the paper's p_f^R replica-loss argument on the actual
  // store: after failing 20% of nodes, count how many logical tuples
  // survive with and without replication.
  auto count_coordinates = [&](uint64_t metric) {
    std::set<std::pair<int, int>> coords;
    for (uint64_t node : net_->NodeIds()) {
      net_->StoreAt(node)->ForEachDhsMetric(
          metric, net_->now(),
          [&](const StoreKey& key, const StoreRecord&) {
            coords.emplace(key.bit(), key.vector_id());
          });
    }
    return coords.size();
  };

  DhsClient unreplicated = MakeClient(1);
  DhsClient replicated = MakeClient(3);
  Populate(unreplicated, 8);
  Populate(replicated, 9);
  const size_t plain_before = count_coordinates(8);
  const size_t repl_before = count_coordinates(9);
  FailFraction(0.2, 55);
  const double plain_survival =
      static_cast<double>(count_coordinates(8)) /
      static_cast<double>(plain_before);
  const double repl_survival =
      static_cast<double>(count_coordinates(9)) /
      static_cast<double>(repl_before);
  EXPECT_GT(repl_survival, plain_survival);
  EXPECT_GT(repl_survival, 0.95);
}

TEST_F(FaultToleranceTest, PrimaryWriteSurvivesReplicaCopyFailure) {
  // Mid-replication message loss must degrade the replica count, not
  // fail the insert: search for a fault seed that delivers the primary
  // write (decision 0) and drops every replica-copy attempt (2 requested
  // - 1 primary = 1 extra over <= 3 candidates x 4 attempts = 12 hops).
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.replication = 2;
  // One tuple in a 256-node overlay: the count can only prove the
  // primary write durable if its walk is exhaustive.
  config.lim = 300;
  config.max_lim = 300;
  auto client_or = DhsClient::Create(net_.get(), config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());
  FaultConfig faults;
  faults.drop_probability = 0.9;
  for (uint64_t s = 1; faults.seed == 0 && s < 1000000; ++s) {
    FaultConfig probe = faults;
    probe.seed = s;
    bool good = FaultPlan::DecisionFor(probe, 0) == FaultType::kNone;
    for (uint64_t q = 1; good && q <= 12; ++q) {
      good = FaultPlan::DecisionFor(probe, q) == FaultType::kDrop;
    }
    if (good) faults.seed = s;
  }
  ASSERT_NE(faults.seed, 0u);
  ASSERT_TRUE(net_->SetFaultPlan(faults).ok());
  Rng rng(77);
  const uint64_t kItem = 0x5eedf00d;
  auto cost = client.Insert(net_->RandomNode(rng), 11, kItem, rng);
  net_->ClearFaultPlan();
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();  // durable primary
  EXPECT_EQ(cost->replicas_requested, 2);
  EXPECT_EQ(cost->replicas_written, 1);
  EXPECT_GT(cost->failed_probes, 0);
  // The primary copy is countable.
  const DhsPlacement placement = client.PlaceItem(kItem);
  auto result = client.Count(net_->RandomNode(rng), 11, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->observables[static_cast<size_t>(placement.vector_id)],
            placement.rho);
}

// ---------------------------------------------------------------------------
// Geometry-parameterized fault matrix
// ---------------------------------------------------------------------------

enum class Geometry { kChord, kKademlia };

std::unique_ptr<DhtNetwork> MakeOverlay(Geometry geometry) {
  OverlayConfig config;
  config.hasher = "mix";
  if (geometry == Geometry::kChord) {
    return std::make_unique<ChordNetwork>(config);
  }
  return std::make_unique<KademliaNetwork>(config);
}

class GeometryFaultTest : public ::testing::TestWithParam<Geometry> {
 protected:
  void SetUp() override {
    net_ = MakeOverlay(GetParam());
    Rng rng(77);
    for (int i = 0; i < 128; ++i) {
      ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    }
  }

  DhsClient MakeClient(DhsEstimator estimator, int replication) {
    DhsConfig config;
    config.k = 24;
    config.m = 32;
    config.estimator = estimator;
    config.replication = replication;
    auto client = DhsClient::Create(net_.get(), config);
    EXPECT_TRUE(client.ok());
    return std::move(client.value());
  }

  void Populate(DhsClient& client, uint64_t metric, uint64_t items) {
    Rng rng(metric * 7 + 1);
    MixHasher hasher(metric);
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < items; ++i) {
      batch.push_back(hasher.HashU64(i));
      if (batch.size() == 500) {
        ASSERT_TRUE(
            client.InsertBatch(net_->RandomNode(rng), metric, batch, rng)
                .ok());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          client.InsertBatch(net_->RandomNode(rng), metric, batch, rng)
              .ok());
    }
  }

  std::unique_ptr<DhtNetwork> net_;
};

TEST_P(GeometryFaultTest, CountsCompleteAcrossDropMatrix) {
  // Drop rates {0, 1%, 5%} x all three estimators: under the default
  // retry policy every count must complete without abandoning an
  // interval, and the estimate must stay in the estimator's error band.
  constexpr uint64_t kItems = 20000;
  const struct {
    DhsEstimator estimator;
    uint64_t metric;
  } kCells[] = {
      {DhsEstimator::kSuperLogLog, 1},
      {DhsEstimator::kPcsa, 2},
      {DhsEstimator::kHyperLogLog, 3},
  };
  for (const auto& cell : kCells) {
    DhsClient client = MakeClient(cell.estimator, 2);
    Populate(client, cell.metric, kItems);
    double baseline = 0.0;
    for (double drop : {0.0, 0.01, 0.05}) {
      if (drop > 0) {
        FaultConfig faults;
        faults.drop_probability = drop;
        faults.seed = 1234;
        ASSERT_TRUE(net_->SetFaultPlan(faults).ok());
      } else {
        net_->ClearFaultPlan();
      }
      Rng rng(99);
      auto result = client.Count(net_->RandomNode(rng), cell.metric, rng);
      ASSERT_TRUE(result.ok()) << "drop " << drop;
      EXPECT_FALSE(result->gave_up) << "drop " << drop;
      EXPECT_EQ(result->bitmaps_unresolved, 0) << "drop " << drop;
      EXPECT_GT(result->estimate, 0.0) << "drop " << drop;
      if (drop == 0.0) {
        baseline = result->estimate;
      } else {
        // Retries + replication ride out the losses: the faulted count
        // must track the loss-free count, not a degraded one.
        EXPECT_LT(RelativeError(result->estimate, baseline), 0.1)
            << "drop " << drop;
      }
    }
    net_->ClearFaultPlan();
  }
}

TEST_P(GeometryFaultTest, FaultedCountsAreDeterministicUnderFixedSeeds) {
  DhsClient client = MakeClient(DhsEstimator::kSuperLogLog, 2);
  Populate(client, 4, 20000);
  FaultConfig faults;
  faults.drop_probability = 0.05;
  faults.timeout_probability = 0.02;
  faults.seed = 555;
  auto run = [&]() {
    EXPECT_TRUE(net_->SetFaultPlan(faults).ok());  // fresh seq = 0
    Rng rng(4242);
    return client.Count(net_->RandomNode(rng), 4, rng);
  };
  auto first = run();
  auto second = run();
  net_->ClearFaultPlan();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->estimate, second->estimate);
  EXPECT_TRUE(first->observables == second->observables);
  EXPECT_EQ(first->gave_up, second->gave_up);
  EXPECT_EQ(first->bitmaps_unresolved, second->bitmaps_unresolved);
  EXPECT_EQ(first->cost.dht_lookups, second->cost.dht_lookups);
  EXPECT_EQ(first->cost.direct_probes, second->cost.direct_probes);
  EXPECT_EQ(first->cost.retries, second->cost.retries);
  EXPECT_EQ(first->cost.failed_probes, second->cost.failed_probes);
  EXPECT_EQ(first->cost.hops, second->cost.hops);
  EXPECT_EQ(first->cost.bytes, second->cost.bytes);
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, GeometryFaultTest,
                         ::testing::Values(Geometry::kChord,
                                           Geometry::kKademlia),
                         [](const auto& param_info) {
                           return param_info.param == Geometry::kChord
                                      ? "Chord"
                                      : "Kademlia";
                         });

// ---------------------------------------------------------------------------
// Replica-placement regression (the Kademlia placement bug)
// ---------------------------------------------------------------------------

TEST(ReplicaPlacementRegression, KademliaReplicaSurvivesPrimaryFailure) {
  // The failing-first regression for ring-successor replica placement.
  // An XOR block is a contiguous ID range, so the primary's ring
  // successor usually sits inside the same block and is accidentally
  // walk-visible; the bug only loses data when the primary is the top
  // member of its block and the successor escapes it. This test stages
  // exactly those tuples: insert with replication = 2 under Kademlia,
  // require the ring successor to fall OUTSIDE the walk-visible member
  // set, fail the primary, and demand the counting walk still observes
  // the bit through the replica. With replicas on ring successors the
  // surviving copy is beyond every walk's horizon and this test fails.
  MixHasher item_hasher(500);
  uint64_t next_item = 0;
  for (int trial = 0; trial < 6; ++trial) {
    OverlayConfig overlay;
    overlay.hasher = "mix";
    KademliaNetwork net(overlay);
    Rng rng(404 + static_cast<uint64_t>(trial));
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(net.AddNode(rng.Next()).ok());
    DhsConfig config;
    config.k = 24;
    config.m = 16;
    config.replication = 2;
    // Walks exhaust the interval's block; what they still cannot reach
    // is whatever was placed outside it.
    config.lim = 64;
    config.max_lim = 64;
    auto client_or = DhsClient::Create(&net, config);
    ASSERT_TRUE(client_or.ok());
    DhsClient client = std::move(client_or.value());

    // Ring successor lookup over the sorted live IDs.
    auto ring_successor = [&net](uint64_t id) {
      const auto ids = net.NodeIds();
      auto it = std::upper_bound(ids.begin(), ids.end(), id);
      return it == ids.end() ? ids.front() : *it;
    };

    bool staged = false;
    uint64_t metric = 0;
    uint64_t primary = 0;
    DhsPlacement placement{};
    for (uint64_t attempt = 0; attempt < 4000 && !staged; ++attempt) {
      const uint64_t item = item_hasher.HashU64(next_item++);
      const DhsPlacement p = client.PlaceItem(item);
      // Mid-range bits: blocks small enough that a successor can
      // escape, large enough to host a replica at all.
      if (p.rho < 2 || p.rho > 12) continue;
      // A fresh metric per attempt keeps rejected tuples from
      // polluting the staged one's (vector, bit) cell.
      metric = 1000 + attempt;
      auto cost = client.Insert(net.RandomNode(rng), metric, item, rng);
      ASSERT_TRUE(cost.ok());
      if (cost->replicas_written != 2) continue;  // block too sparse
      uint64_t dht_key = 0;
      bool found = false;
      for (uint64_t node : net.NodeIds()) {
        net.StoreAt(node)->ForEachDhsMetric(
            metric, net.now(),
            [&](const StoreKey& key, const StoreRecord& rec) {
              if (key.bit() == p.rho && key.vector_id() == p.vector_id) {
                dht_key = rec.dht_key;
                found = true;
              }
            });
      }
      ASSERT_TRUE(found);
      primary = net.ResponsibleNode(dht_key).value();
      auto interval = client.mapping().IntervalForBit(p.rho);
      ASSERT_TRUE(interval.ok());
      const auto members = net.ProbeCandidates(*interval, dht_key, primary,
                                               /*max_candidates=*/32);
      const uint64_t successor = ring_successor(primary);
      if (std::find(members.begin(), members.end(), successor) !=
          members.end()) {
        continue;  // successor is accidentally walk-visible: not a pin
      }
      placement = p;
      staged = true;
    }
    ASSERT_TRUE(staged) << "trial " << trial
                        << ": no qualifying tuple found";

    ASSERT_TRUE(net.FailNode(primary).ok());
    auto result = client.Count(net.RandomNode(rng), metric, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->observables[static_cast<size_t>(placement.vector_id)],
              placement.rho)
        << "trial " << trial << ": bit lost with its primary — the "
        << "replica was placed where no counting walk looks";
  }
}

TEST(ReplicaPlacementRegression, KademliaDegradationMatchesChord) {
  // With geometry-aware placement, replication must buy Kademlia the
  // same failure resilience it buys Chord: after failing 20% of nodes,
  // the observable bits lost by the two geometries must be comparable
  // (pre-fix, Kademlia degraded like an unreplicated deployment because
  // its ring-successor replicas were invisible to the XOR walk). The
  // estimate itself is too blunt a probe — the truncated sLL mean
  // shrugs off a handful of lost top bits — so compare the per-vector
  // max-rho observables directly.
  auto lost_bits = [](Geometry geometry) {
    auto net = MakeOverlay(geometry);
    Rng rng(606);
    for (int i = 0; i < 192; ++i) {
      EXPECT_TRUE(net->AddNode(rng.Next()).ok());
    }
    DhsConfig config;
    config.k = 24;
    config.m = 32;
    config.replication = 2;
    auto client_or = DhsClient::Create(net.get(), config);
    EXPECT_TRUE(client_or.ok());
    DhsClient client = std::move(client_or.value());
    MixHasher hasher(13);
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < 30000; ++i) {
      batch.push_back(hasher.HashU64(i));
      if (batch.size() == 500) {
        EXPECT_TRUE(
            client.InsertBatch(net->RandomNode(rng), 1, batch, rng).ok());
        batch.clear();
      }
    }
    // Element-wise max over a few counts smooths out walk randomness.
    auto merged_observables = [&]() {
      std::vector<int> merged(static_cast<size_t>(config.m), -1);
      for (int t = 0; t < 4; ++t) {
        auto result = client.Count(net->RandomNode(rng), 1, rng);
        EXPECT_TRUE(result.ok());
        for (size_t v = 0; v < merged.size(); ++v) {
          merged[v] = std::max(merged[v], result->observables[v]);
        }
      }
      return merged;
    };
    const std::vector<int> before = merged_observables();
    Rng fail_rng(33);
    int failed = 0;
    for (uint64_t id : net->NodeIds()) {
      if (net->NumNodes() <= 8) break;
      if (fail_rng.Bernoulli(0.2)) {
        EXPECT_TRUE(net->FailNode(id).ok());
        ++failed;
      }
    }
    EXPECT_GE(failed, 30);
    const std::vector<int> after = merged_observables();
    // Surviving-store ground truth: what a walk COULD still observe.
    std::vector<int> truth(static_cast<size_t>(config.m), -1);
    for (uint64_t node : net->NodeIds()) {
      net->StoreAt(node)->ForEachDhsMetric(
          1, net->now(), [&](const StoreKey& key, const StoreRecord&) {
            auto& slot = truth[static_cast<size_t>(key.vector_id())];
            slot = std::max(slot, static_cast<int>(key.bit()));
          });
    }
    int lost = 0, unreachable = 0;
    for (size_t v = 0; v < before.size(); ++v) {
      lost += std::max(0, before[v] - after[v]);
      unreachable += std::max(0, truth[v] - after[v]);
    }
    // Records that survived the failures must stay visible to the
    // counting walk — replicas placed off-geometry would show up here
    // as surviving-but-unreachable bits.
    EXPECT_LE(unreachable, 4);
    return lost;
  };
  const int chord = lost_bits(Geometry::kChord);
  const int kademlia = lost_bits(Geometry::kKademlia);
  EXPECT_LE(kademlia, chord + 4);
}

}  // namespace
}  // namespace dhs
