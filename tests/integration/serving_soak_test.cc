// Serving-layer soak over the loopback transport: a long randomized
// stream of insert/count submissions flushed through DhsServing
// (coalescing + frontier cache + online lim tuner) with every
// data-plane frame crossing a real AF_UNIX socket pair, under periodic
// fault segments and clock ticks. The pinned invariant is the wire
// accounting identity: the sum of charged bytes observed at the frame
// tap equals MessageStats.bytes at every checkpoint — drops, timeouts,
// retries, coalesced waves and cache-served counts included.
//
// The short variant runs as an ordinary ctest; the full O(10^5)-op
// variant is opt-in via DHS_SOAK=1 (it takes minutes, not seconds).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "dht/chord.h"
#include "dht/loopback.h"
#include "dhs/client.h"
#include "dhs/serving.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

ChordConfig FastChord() {
  ChordConfig config;
  config.hasher = "mix";
  return config;
}

DhsConfig SoakDhs() {
  DhsConfig config;
  config.k = 24;
  config.m = 16;
  config.replication = 2;
  config.ttl_ticks = 400;
  config.retry_attempts = 2;
  config.frontier_cache = true;
  return config;
}

/// Runs `steps` schedule steps (each submits a request or flushes) and
/// checks the Σ charged == stats.bytes identity every `check_every`
/// steps and at the end. Returns the number of requests submitted.
uint64_t RunServingSoak(int steps, int check_every) {
  ChordNetwork net(FastChord());
  Rng setup(20260808);
  for (int i = 0; i < 128; ++i) CHECK_OK(net.AddNode(setup.Next()));

  auto created = DhsClient::Create(&net, SoakDhs(),
                                   std::make_shared<LoopbackTransport>(&net));
  CHECK_OK(created);
  auto client = std::make_unique<DhsClient>(std::move(created.value()));

  // Tap attached before any traffic: charged starts in sync with the
  // (zero) byte counter and must never drift from it.
  uint64_t charged = 0;
  uint64_t frames = 0;
  client->transport()->set_frame_tap([&](const FrameTapEvent& event) {
    charged += event.charged_bytes;
    frames += 1;
  });

  DhsServingConfig serving_config;
  serving_config.tune_lim = true;
  auto serving_or = DhsServing::Create(client.get(), serving_config);
  CHECK_OK(serving_or);
  auto serving = std::make_unique<DhsServing>(std::move(serving_or.value()));

  Rng schedule(777);
  Rng serve_rng(778);
  MixHasher hasher(779);
  uint64_t next_item = 0;
  uint64_t requests = 0;
  uint64_t ok_counts = 0;
  uint64_t ok_inserts = 0;
  bool faulted = false;

  std::vector<uint64_t> insert_tickets;
  std::vector<uint64_t> count_tickets;
  // Flush + claim every outstanding ticket so result maps stay bounded
  // for the whole soak. Per-ticket failures under faults are expected;
  // the soak only requires that every ticket resolves exactly once.
  const auto kFlushAndDrain = [&] {
    (void)serving->Flush(serve_rng);
    for (uint64_t ticket : insert_tickets) {
      if (serving->TakeInsert(ticket).ok()) ++ok_inserts;
    }
    for (uint64_t ticket : count_tickets) {
      if (serving->TakeCount(ticket).ok()) ++ok_counts;
    }
    insert_tickets.clear();
    count_tickets.clear();
    serving->ClearWaveLog();
  };

  for (int step = 0; step < steps; ++step) {
    // Alternating fault segments: ~half the soak runs with live drops
    // and timeouts on the socket path.
    if (step % 1500 == 750 && !faulted) {
      FaultConfig faults;
      faults.drop_probability = 0.06;
      faults.timeout_probability = 0.03;
      faults.seed = 1000 + static_cast<uint64_t>(step);
      EXPECT_TRUE(net.SetFaultPlan(faults).ok()) << "step " << step;
      faulted = true;
    } else if (step % 1500 == 0 && faulted) {
      net.ClearFaultPlan();
      faulted = false;
    }

    const uint64_t roll = schedule.UniformU64(100);
    if (roll < 35) {
      const uint64_t metric = 1 + schedule.UniformU64(4);
      std::vector<uint64_t> items;
      const uint64_t n = 1 + schedule.UniformU64(40);
      for (uint64_t i = 0; i < n; ++i) {
        items.push_back(hasher.HashU64(next_item++));
      }
      insert_tickets.push_back(serving->SubmitInsertBatch(
          net.RandomNode(schedule), metric, std::move(items)));
      ++requests;
    } else if (roll < 85) {
      std::vector<uint64_t> set = {1 + schedule.UniformU64(4)};
      count_tickets.push_back(
          serving->SubmitCount(net.RandomNode(schedule), std::move(set)));
      ++requests;
    } else if (roll < 95) {
      kFlushAndDrain();
    } else {
      net.AdvanceClock(1 + schedule.UniformU64(4));
    }
    if (serving->PendingCounts() + serving->PendingInserts() >= 48) {
      kFlushAndDrain();
    }

    if (step % check_every == check_every - 1) {
      // The identity must hold mid-soak, not just at the end: every
      // frame the transport moved — delivered or faulted — was charged
      // to the network's books exactly once.
      EXPECT_EQ(charged, net.stats().bytes) << "step " << step;
      if (::testing::Test::HasFailure()) return requests;  // don't spam
    }
  }
  kFlushAndDrain();
  net.ClearFaultPlan();

  EXPECT_GT(frames, 0u);
  EXPECT_EQ(charged, net.stats().bytes);
  EXPECT_GT(serving->stats().count_waves, 0u);
  EXPECT_GT(serving->stats().insert_waves, 0u);
  EXPECT_GT(ok_counts, 0u);
  EXPECT_GT(ok_inserts, 0u);
  EXPECT_TRUE(net.AuditFull().ok());
  EXPECT_TRUE(client->AuditFull().ok());
  return requests;
}

TEST(ServingSoakTest, LoopbackMixedOpsShort) {
  const uint64_t requests = RunServingSoak(/*steps=*/3000, /*check_every=*/500);
  EXPECT_GT(requests, 2000u);
}

// The full soak: ~10^5 requests with fault segments. Opt-in (DHS_SOAK=1
// in the environment); CI's soak job and local deep runs use it.
TEST(ServingSoakTest, LoopbackMixedOpsFull) {
  if (std::getenv("DHS_SOAK") == nullptr) {
    GTEST_SKIP() << "set DHS_SOAK=1 to run the full O(10^5)-op soak";
  }
  const uint64_t requests =
      RunServingSoak(/*steps=*/125000, /*check_every=*/1000);
  EXPECT_GT(requests, 100000u);
}

}  // namespace
}  // namespace dhs
