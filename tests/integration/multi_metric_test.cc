// Multi-dimension counting (§4.2) and cross-network-size behaviour.

#include "dht/chord.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/stats.h"
#include "dhs/client.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

std::unique_ptr<ChordNetwork> MakeNetwork(int nodes, uint64_t seed) {
  ChordConfig chord;
  chord.hasher = "mix";
  auto net = std::make_unique<ChordNetwork>(chord);
  Rng rng(seed);
  for (int i = 0; i < nodes; ++i) {
    EXPECT_TRUE(net->AddNode(rng.Next()).ok());
  }
  return net;
}

void Populate(ChordNetwork& net, DhsClient& client, uint64_t metric,
              uint64_t n, uint64_t salt) {
  Rng rng(salt);
  MixHasher hasher(salt);
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < n; ++i) {
    batch.push_back(hasher.HashU64(i));
    if (batch.size() == 250) {
      ASSERT_TRUE(
          client.InsertBatch(net.RandomNode(rng), metric, batch, rng).ok());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    ASSERT_TRUE(
        client.InsertBatch(net.RandomNode(rng), metric, batch, rng).ok());
  }
}

TEST(MultiMetricTest, FourRelationsOneSweep) {
  auto net = MakeNetwork(256, 1);
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  auto client_or = DhsClient::Create(net.get(), config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());

  // The paper's Q:R:S:T geometric sizes, scaled down.
  const uint64_t sizes[4] = {20000, 40000, 80000, 160000};
  for (uint64_t i = 0; i < 4; ++i) {
    Populate(*net, client, i + 1, sizes[i], 100 + i);
  }
  Rng rng(2);
  auto result = client.CountMany(net->RandomNode(rng), {1, 2, 3, 4}, rng);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_LT(RelativeError(result->estimates[i],
                            static_cast<double>(sizes[i])),
              0.45)
        << "relation " << i;
  }
  // Monotone size ordering must be preserved by the estimates.
  EXPECT_LT(result->estimates[0], result->estimates[3]);
}

TEST(MultiMetricTest, SweepCostMatchesSingleCountAcrossDimensions) {
  auto net = MakeNetwork(256, 3);
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  auto client_or = DhsClient::Create(net.get(), config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());
  for (uint64_t metric = 1; metric <= 8; ++metric) {
    Populate(*net, client, metric, 30000, 200 + metric);
  }
  Rng rng(4);
  StreamingStats single_hops;
  StreamingStats multi_hops;
  for (int t = 0; t < 5; ++t) {
    auto single = client.Count(net->RandomNode(rng), 1, rng);
    ASSERT_TRUE(single.ok());
    single_hops.Add(single->cost.hops);
    std::vector<uint64_t> metrics;
    for (uint64_t m = 1; m <= 8; ++m) metrics.push_back(m);
    auto multi = client.CountMany(net->RandomNode(rng), metrics, rng);
    ASSERT_TRUE(multi.ok());
    multi_hops.Add(multi->cost.hops);
  }
  // 8 dimensions for (well) less than 2x the hops of one dimension.
  EXPECT_LT(multi_hops.mean(), 2.0 * single_hops.mean());
}

TEST(MultiMetricTest, CountingHopsNearlyConstantInNetworkSize) {
  // §5.2 "Scalability": the paper reports counting hops growing from 109
  // to only ~112 for a 10x larger overlay — the cost is dominated by the
  // k-interval sweep, not by N. Assert that a 4x larger network changes
  // the per-count hop total by well under 2x in either direction. (Pure
  // routing growth with uniform keys is asserted separately in
  // RouterTest.HopCountIsLogarithmic.)
  StreamingStats route_small;
  StreamingStats route_large;
  StreamingStats total_small;
  StreamingStats total_large;
  for (auto [nodes, route, total] :
       {std::tuple<int, StreamingStats*, StreamingStats*>{128, &route_small,
                                                          &total_small},
        std::tuple<int, StreamingStats*, StreamingStats*>{512, &route_large,
                                                          &total_large}}) {
    auto net = MakeNetwork(nodes, 5 + static_cast<uint64_t>(nodes));
    DhsConfig config;
    config.k = 24;
    config.m = 32;
    auto client_or = DhsClient::Create(net.get(), config);
    ASSERT_TRUE(client_or.ok());
    DhsClient client = std::move(client_or.value());
    Populate(*net, client, 1, static_cast<uint64_t>(nodes) * 150, 6);
    Rng rng(7);
    for (int t = 0; t < 40; ++t) {
      auto result = client.Count(net->RandomNode(rng), 1, rng);
      ASSERT_TRUE(result.ok());
      // Routing hops = total hops minus one-hop retries.
      route->Add(static_cast<double>(result->cost.hops -
                                     result->cost.direct_probes) /
                 std::max(result->cost.dht_lookups, 1));
      total->Add(result->cost.hops);
    }
  }
  // 4x nodes must NOT cost anywhere near 4x total hops.
  EXPECT_LT(total_large.mean(), 2.0 * total_small.mean());
  EXPECT_GT(total_large.mean(), 0.5 * total_small.mean());
}

TEST(MultiMetricTest, CountingCostIndependentOfCardinality) {
  // §4: hop cost depends on k and N, not on n.
  auto net = MakeNetwork(256, 8);
  DhsConfig config;
  config.k = 24;
  config.m = 32;
  auto client_or = DhsClient::Create(net.get(), config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());
  Populate(*net, client, 1, 40000, 9);
  Populate(*net, client, 2, 160000, 10);
  Rng rng(11);
  StreamingStats hops_small;
  StreamingStats hops_large;
  for (int t = 0; t < 6; ++t) {
    auto small = client.Count(net->RandomNode(rng), 1, rng);
    auto large = client.Count(net->RandomNode(rng), 2, rng);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(large.ok());
    hops_small.Add(small->cost.hops);
    hops_large.Add(large->cost.hops);
  }
  EXPECT_LT(std::fabs(hops_large.mean() - hops_small.mean()),
            0.5 * hops_small.mean() + 10);
}

TEST(MultiMetricTest, EstimatorsAgreeOnTheSameData) {
  auto net = MakeNetwork(256, 12);
  DhsConfig sll_config;
  sll_config.k = 24;
  sll_config.m = 64;
  sll_config.estimator = DhsEstimator::kSuperLogLog;
  DhsConfig pcsa_config = sll_config;
  pcsa_config.estimator = DhsEstimator::kPcsa;

  auto sll_or = DhsClient::Create(net.get(), sll_config);
  auto pcsa_or = DhsClient::Create(net.get(), pcsa_config);
  ASSERT_TRUE(sll_or.ok());
  ASSERT_TRUE(pcsa_or.ok());
  DhsClient sll = std::move(sll_or.value());
  DhsClient pcsa = std::move(pcsa_or.value());

  constexpr uint64_t kN = 60000;
  Populate(*net, sll, 1, kN, 13);  // insertion path is estimator-agnostic

  Rng rng(14);
  auto sll_result = sll.Count(net->RandomNode(rng), 1, rng);
  auto pcsa_result = pcsa.Count(net->RandomNode(rng), 1, rng);
  ASSERT_TRUE(sll_result.ok());
  ASSERT_TRUE(pcsa_result.ok());
  // Both estimators read the same distributed state (§3: "data insertion
  // is the same for both algorithms").
  EXPECT_LT(RelativeError(sll_result->estimate, kN), 0.45);
  EXPECT_LT(RelativeError(pcsa_result->estimate, kN), 0.45);
}

}  // namespace
}  // namespace dhs
