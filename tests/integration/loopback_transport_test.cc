// Loopback-transport integration suite: the full DHS pipeline — insert,
// multi-metric count, TTL refresh via the maintainer, churn, faults,
// and the kCountRequest/kCountResponse front-door service — with every
// data-plane frame crossing a real AF_UNIX socket pair
// (dht/loopback.h). A twin run over the in-process sim backend on an
// identically-seeded network must match byte-for-byte: same estimates,
// same MessageStats, same stores.

#include "dht/loopback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "dht/chord.h"
#include "dht/wire.h"
#include "dhs/client.h"
#include "dhs/count_service.h"
#include "dhs/maintainer.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

constexpr int kNodes = 192;
constexpr uint64_t kMetricQ = 11;
constexpr uint64_t kMetricR = 12;

ChordConfig FastChord() {
  ChordConfig config;
  config.hasher = "mix";
  return config;
}

DhsConfig SmallDhs() {
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.replication = 2;
  config.ttl_ticks = 50;
  config.retry_attempts = 3;
  return config;
}

// One world: a network plus a client whose transport is chosen by
// `loopback`. Both worlds in a test are driven with identical seeds.
struct World {
  explicit World(bool loopback) : net(FastChord()) {
    Rng rng(20260808);
    for (int i = 0; i < kNodes; ++i) {
      CHECK_OK(net.AddNode(rng.Next()));
    }
    auto created =
        loopback ? DhsClient::Create(&net, SmallDhs(),
                                     std::make_shared<LoopbackTransport>(&net))
                 : DhsClient::Create(&net, SmallDhs());
    CHECK_OK(created);
    client = std::make_unique<DhsClient>(std::move(created.value()));
  }

  void Populate(uint64_t metric, uint64_t n, uint64_t salt) {
    Rng rng(salt);
    MixHasher hasher(salt);
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < n; ++i) {
      batch.push_back(hasher.HashU64(i));
      if (batch.size() == 250) {
        ASSERT_TRUE(
            client->InsertBatch(net.RandomNode(rng), metric, batch, rng)
                .ok());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          client->InsertBatch(net.RandomNode(rng), metric, batch, rng).ok());
    }
  }

  ChordNetwork net;
  std::unique_ptr<DhsClient> client;
};

void ExpectWorldsIdentical(World& sim, World& loop) {
  EXPECT_EQ(sim.net.stats().messages, loop.net.stats().messages);
  EXPECT_EQ(sim.net.stats().hops, loop.net.stats().hops);
  EXPECT_EQ(sim.net.stats().bytes, loop.net.stats().bytes);
  EXPECT_EQ(sim.net.now(), loop.net.now());
  EXPECT_TRUE(sim.net.AuditFull().ok());
  EXPECT_TRUE(loop.net.AuditFull().ok());
}

TEST(LoopbackIntegrationTest, InsertCountRefreshChurnMatchesSim) {
  World sim(false);
  World loop(true);
  for (World* world : {&sim, &loop}) {
    world->Populate(kMetricQ, 20000, 5);
    world->Populate(kMetricR, 40000, 6);
  }

  // Multi-metric count: identical estimates over both backends.
  std::vector<double> estimates[2];
  int wi = 0;
  for (World* world : {&sim, &loop}) {
    Rng rng(7);
    auto result = world->client->CountMany(world->net.RandomNode(rng),
                                           {kMetricQ, kMetricR}, rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    estimates[wi++] = result->estimates;
  }
  ASSERT_EQ(estimates[0].size(), 2u);
  EXPECT_EQ(estimates[0], estimates[1]);
  // And sane: the 1:2 cardinality ratio survives the socket.
  EXPECT_NEAR(estimates[0][1] / estimates[0][0], 2.0, 0.7);

  // Maintainer refresh round: re-inserts through the same transport.
  for (World* world : {&sim, &loop}) {
    DhsMaintainer maintainer(world->client.get());
    Rng rng(8);
    MixHasher hasher(5);
    std::vector<std::pair<uint64_t, uint64_t>> held;
    for (uint64_t i = 0; i < 500; ++i) {
      held.emplace_back(world->net.RandomNode(rng), hasher.HashU64(i));
    }
    for (const auto& [node, hash] : held) {
      maintainer.RegisterItem(node, kMetricQ, hash);
    }
    world->net.AdvanceClock(30);
    auto refreshed = maintainer.RefreshRound(rng);
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    EXPECT_GT(*refreshed, 0u);
    EXPECT_TRUE(maintainer.AuditFull().ok());
  }

  // Churn: fail a slice of nodes, counts still work over the socket.
  for (World* world : {&sim, &loop}) {
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(world->net.FailNode(world->net.RandomNode(rng)).ok());
    }
    auto result =
        world->client->Count(world->net.RandomNode(rng), kMetricR, rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->estimate, 0.0);
  }

  ExpectWorldsIdentical(sim, loop);
}

TEST(LoopbackIntegrationTest, FaultedRunMatchesSim) {
  World sim(false);
  World loop(true);
  FaultConfig faults;
  faults.drop_probability = 0.10;
  faults.timeout_probability = 0.05;
  faults.seed = 77;
  ASSERT_TRUE(sim.net.SetFaultPlan(faults).ok());
  ASSERT_TRUE(loop.net.SetFaultPlan(faults).ok());

  for (World* world : {&sim, &loop}) {
    world->Populate(kMetricQ, 10000, 15);
    Rng rng(16);
    auto result =
        world->client->Count(world->net.RandomNode(rng), kMetricQ, rng);
    // Faulted runs may degrade, but both backends must degrade alike.
    if (result.ok()) EXPECT_GT(result->estimate, 0.0);
  }
  const FaultStats& sim_fired = sim.net.fault_plan().stats();
  const FaultStats& loop_fired = loop.net.fault_plan().stats();
  EXPECT_GT(sim_fired.Applied(), 0u) << "fault plan never fired";
  EXPECT_EQ(sim_fired.decisions, loop_fired.decisions);
  EXPECT_EQ(sim_fired.drops, loop_fired.drops);
  EXPECT_EQ(sim_fired.timeouts, loop_fired.timeouts);
  ExpectWorldsIdentical(sim, loop);
}

// The count service round-trip: a kCountRequest frame in, a
// kCountResponse frame out, matching a direct CountMany call bit for
// bit — over the loopback client, so the service's own counting
// traffic crosses the socket too.
TEST(LoopbackIntegrationTest, CountServiceFramesRoundTrip) {
  World loop(true);
  loop.Populate(kMetricQ, 20000, 25);

  DhsCountService service(loop.client.get());
  Rng service_rng(26);
  const uint64_t origin = loop.net.RandomNode(service_rng);

  CountRequestFrame request;
  request.metric_ids = {kMetricQ};
  auto encoded = service.Handle(origin, EncodeCountRequest(request),
                                service_rng);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto response = DecodeCountResponse(*encoded);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->entries.size(), 1u);
  EXPECT_FALSE(response->gave_up);

  // The same count, issued directly with identical seeds on a twin
  // world, produces the same estimate and observables.
  World twin(true);
  twin.Populate(kMetricQ, 20000, 25);
  Rng direct_rng(26);
  const uint64_t twin_origin = twin.net.RandomNode(direct_rng);
  ASSERT_EQ(twin_origin, origin);
  auto direct =
      twin.client->CountMany(twin_origin, {kMetricQ}, direct_rng);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response->entries[0].estimate, direct->estimates[0]);
  EXPECT_EQ(response->entries[0].observables, direct->observables[0]);

  // Malformed requests are rejected before any counting happens.
  EXPECT_FALSE(service.Handle(origin, "garbage", service_rng).ok());
  EXPECT_FALSE(
      service.Handle(origin, EncodeCountRequest({}), service_rng).ok());
}

}  // namespace
}  // namespace dhs
