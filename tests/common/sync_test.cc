// Runtime behavior of the annotated primitives in common/sync.h, plus
// concurrency stress for the pieces the TSan CI leg watches: GUARDED_BY
// state under contention, CondVar hand-offs, the thread pool, and
// concurrent CHECK failures against the atomic handler slot.
//
// (The *static* side — Clang -Wthread-safety accepting these patterns —
// is exercised simply by compiling this file under the Clang CI leg.)

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace dhs {
namespace {

TEST(SyncTest, MutexLockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  // Already held: TryLock from another thread must fail, not block.
  bool acquired = true;
  // det-lint: allow(raw-threading) — the sync primitives under test need raw threads beneath them
  std::thread probe([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, GuardedCounterStress) {
  // 8 threads x 10k increments on a GUARDED_BY counter. Under TSan this
  // is the canonical "is the lock actually taken" probe; in any build
  // the final count catches lost updates.
  struct State {
    Mutex mu;
    long counter GUARDED_BY(mu) = 0;
  } state;

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  // det-lint: allow(raw-threading) — the sync primitives under test need raw threads beneath them
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&state] {
      for (int j = 0; j < kIncrements; ++j) {
        MutexLock lock(state.mu);
        ++state.counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(state.mu);
  EXPECT_EQ(state.counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SyncTest, CondVarHandsOffStateChanges) {
  // Producer/consumer ping-pong through a guarded slot: each side waits
  // for its turn, flips the slot, signals. 1000 round trips.
  struct State {
    Mutex mu;
    CondVar cv;
    int turn GUARDED_BY(mu) = 0;  // 0 = producer's move, 1 = consumer's
    long handoffs GUARDED_BY(mu) = 0;
  } state;
  constexpr long kRounds = 1000;

  // det-lint: allow(raw-threading) — the sync primitives under test need raw threads beneath them
  std::thread producer([&state] {
    for (long i = 0; i < kRounds; ++i) {
      MutexLock lock(state.mu);
      state.cv.Wait(state.mu, [&state]() NO_THREAD_SAFETY_ANALYSIS {
        // The analysis cannot see that the predicate runs under mu
        // (Wait holds it); the REQUIRES on Wait guards the call site.
        return state.turn == 0;
      });
      state.turn = 1;
      state.cv.SignalAll();
    }
  });
  // det-lint: allow(raw-threading) — the sync primitives under test need raw threads beneath them
  std::thread consumer([&state] {
    for (long i = 0; i < kRounds; ++i) {
      MutexLock lock(state.mu);
      state.cv.Wait(state.mu, [&state]() NO_THREAD_SAFETY_ANALYSIS {
        return state.turn == 1;
      });
      state.turn = 0;
      ++state.handoffs;
      state.cv.SignalAll();
    }
  });
  producer.join();
  consumer.join();
  MutexLock lock(state.mu);
  EXPECT_EQ(state.handoffs, kRounds);
}

TEST(SyncTest, ThreadPoolStressManyTinyTasks) {
  // Saturates the pool with tasks that themselves contend on a guarded
  // accumulator — exercises queue push/pop, Wait(), and worker reuse
  // under TSan in one go.
  struct State {
    Mutex mu;
    long sum GUARDED_BY(mu) = 0;
  } state;
  constexpr int kTasks = 5000;

  ThreadPool pool(8);
  for (int i = 1; i <= kTasks; ++i) {
    pool.Submit([&state, i] {
      MutexLock lock(state.mu);
      state.sum += i;
    });
  }
  pool.Wait();
  MutexLock lock(state.mu);
  EXPECT_EQ(state.sum, static_cast<long>(kTasks) * (kTasks + 1) / 2);
}

/// Thrown by the per-thread CHECK handler below.
struct SyncCheckFired : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void ThrowingSyncHandler(const char* /*file*/, int /*line*/,
                         const std::string& message) {
  throw SyncCheckFired(message);
}

TEST(SyncTest, ConcurrentCheckFailuresEachFireTheHandler) {
  // Many threads trip CHECKs at once; the atomic handler slot must hand
  // every one of them the installed (throwing) handler, and the throw
  // must unwind inside the failing thread. Raw std::threads with a
  // try/catch per thread — throwing handlers must never be used inside
  // ThreadPool tasks (an escaping exception would std::terminate).
  CheckFailureHandler previous = SetCheckFailureHandler(&ThrowingSyncHandler);

  constexpr int kThreads = 8;
  constexpr int kFailuresPerThread = 200;
  std::atomic<int> caught{0};
  // det-lint: allow(raw-threading) — the sync primitives under test need raw threads beneath them
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&caught, i] {
      for (int j = 0; j < kFailuresPerThread; ++j) {
        try {
          CHECK(false) << "thread " << i << " failure " << j;
        } catch (const SyncCheckFired& fired) {
          if (std::string(fired.what()).find("CHECK failed") !=
              std::string::npos) {
            caught.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  SetCheckFailureHandler(previous);
  EXPECT_EQ(caught.load(), kThreads * kFailuresPerThread);
}

// SampleStats is marked thread-hostile (lazy sort behind const
// accessors); StreamingStats is thread-compatible. The trait is what
// RunTrials uses to reject leaky result types at compile time.
static_assert(kThreadHostile<SampleStats>);
static_assert(kThreadHostile<SampleStats*>);
static_assert(kThreadHostile<const SampleStats&>);
static_assert(!kThreadHostile<StreamingStats>);
static_assert(!kThreadHostile<double>);

}  // namespace
}  // namespace dhs
