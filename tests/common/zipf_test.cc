#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dhs {
namespace {

TEST(ZipfTest, SamplesStayInDomain) {
  Rng rng(1);
  ZipfGenerator zipf(100, 0.7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, DomainOfOneAlwaysReturnsOne) {
  Rng rng(2);
  ZipfGenerator zipf(1, 0.7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 1u);
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(500, 0.7);
  double sum = 0.0;
  for (uint64_t v = 1; v <= 500; ++v) {
    sum += zipf.Probability(v);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilityOutsideDomainIsZero) {
  ZipfGenerator zipf(10, 0.7);
  EXPECT_EQ(zipf.Probability(0), 0.0);
  EXPECT_EQ(zipf.Probability(11), 0.0);
}

TEST(ZipfTest, ProbabilitiesAreMonotoneDecreasing) {
  ZipfGenerator zipf(100, 0.7);
  for (uint64_t v = 2; v <= 100; ++v) {
    EXPECT_LE(zipf.Probability(v), zipf.Probability(v - 1)) << v;
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(50, 0.0);
  for (uint64_t v = 1; v <= 50; ++v) {
    EXPECT_NEAR(zipf.Probability(v), 1.0 / 50, 1e-12);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchTheory) {
  Rng rng(42);
  ZipfGenerator zipf(20, 0.7);
  constexpr int kDraws = 200000;
  std::vector<int> counts(21, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (uint64_t v = 1; v <= 20; ++v) {
    const double expected = zipf.Probability(v) * kDraws;
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected) + 5) << v;
  }
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfGenerator mild(100, 0.3);
  ZipfGenerator steep(100, 1.2);
  EXPECT_GT(steep.Probability(1), mild.Probability(1));
  EXPECT_LT(steep.Probability(100), mild.Probability(100));
}

TEST(ZipfTest, ZipfRatioMatchesPowerLaw) {
  ZipfGenerator zipf(1000, 0.7);
  // p(1) / p(2) should be 2^0.7.
  EXPECT_NEAR(zipf.Probability(1) / zipf.Probability(2),
              std::pow(2.0, 0.7), 1e-9);
}

}  // namespace
}  // namespace dhs
