#include "common/check.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/status.h"

namespace dhs {
namespace {

/// Thrown by the test failure handler so a failing CHECK unwinds back
/// into the test instead of aborting.
struct CheckFired : std::runtime_error {
  explicit CheckFired(const std::string& what) : std::runtime_error(what) {}
};

void ThrowingHandler(const char* file, int line, const std::string& message) {
  (void)file;
  (void)line;
  throw CheckFired(message);
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = SetCheckFailureHandler(&ThrowingHandler); }
  void TearDown() override { SetCheckFailureHandler(previous_); }

  /// Runs `fn`, expecting it to trip a CHECK; returns the failure message.
  template <typename Fn>
  std::string FailureMessage(Fn&& fn) {
    try {
      fn();
    } catch (const CheckFired& fired) {
      return fired.what();
    }
    ADD_FAILURE() << "no CHECK fired";
    return std::string();
  }

 private:
  CheckFailureHandler previous_ = nullptr;
};

TEST_F(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK(1 + 1 == 2) << "never rendered";
  CHECK_EQ(4, 2 + 2);
  CHECK_NE(1, 2);
  CHECK_LT(1, 2);
  CHECK_LE(2, 2);
  CHECK_GT(3, 2);
  CHECK_GE(3, 3);
  CHECK_OK(Status::OK());
  DCHECK(true);
  DCHECK_OK(Status::OK());
}

TEST_F(CheckTest, FailureCarriesExpressionAndStreamedContext) {
  const std::string msg = FailureMessage([] {
    const int x = 41;
    CHECK(x == 42) << "x was " << x;
  });
  EXPECT_NE(msg.find("CHECK failed: x == 42"), std::string::npos) << msg;
  EXPECT_NE(msg.find("x was 41"), std::string::npos) << msg;
}

TEST_F(CheckTest, BinaryFailureRendersBothOperands) {
  const std::string msg = FailureMessage([] {
    const size_t a = 3;
    const size_t b = 7;
    CHECK_EQ(a, b) << "sizes diverged";
  });
  EXPECT_NE(msg.find("CHECK_EQ failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(3 vs 7)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sizes diverged"), std::string::npos) << msg;
}

TEST_F(CheckTest, CheckOkRendersStatusText) {
  const std::string msg = FailureMessage(
      [] { CHECK_OK(Status::NotFound("no such record")) << "during audit"; });
  EXPECT_NE(msg.find("CHECK_OK failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no such record"), std::string::npos) << msg;
  EXPECT_NE(msg.find("during audit"), std::string::npos) << msg;
}

TEST_F(CheckTest, CheckOkAcceptsStatusOr) {
  StatusOr<int> good(7);
  CHECK_OK(good);
  const std::string msg = FailureMessage([] {
    StatusOr<int> bad(Status::InvalidArgument("bad input"));
    CHECK_OK(bad);
  });
  EXPECT_NE(msg.find("bad input"), std::string::npos) << msg;
}

TEST_F(CheckTest, CheckOkEvaluatesArgumentOnce) {
  int evaluations = 0;
  const auto make_status = [&evaluations] {
    ++evaluations;
    return Status::OK();
  };
  CHECK_OK(make_status());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(CheckTest, UsableInUnbracedIfElse) {
  const bool flag = true;
  if (flag)
    CHECK(true) << "then-branch";
  else
    CHECK(false) << "else-branch";
  SUCCEED();
}

TEST_F(CheckTest, CharOperandsPrintNumerically) {
  const std::string msg = FailureMessage([] {
    const unsigned char got = 0x07;
    const unsigned char want = 0x0a;
    CHECK_EQ(got, want);
  });
  EXPECT_NE(msg.find("(7 vs 10)"), std::string::npos) << msg;
}

TEST_F(CheckTest, HandlerRestoreWorks) {
  // TearDown restores the previous handler; verify Set returns ours.
  CheckFailureHandler current = SetCheckFailureHandler(&ThrowingHandler);
  EXPECT_EQ(current, &ThrowingHandler);
}

TEST_F(CheckTest, HandlerInstallFromTwoThreadsIsRaceFree) {
  // The handler slot is a single atomic pointer: two threads installing
  // the same handler concurrently — while both also trip CHECKs — must
  // neither tear the slot nor lose a failure. Every Set call returns
  // some previously installed handler (here always &ThrowingHandler,
  // since both threads install it and SetUp already did).
  std::atomic<int> fired{0};
  std::atomic<bool> bad_previous{false};
  auto contender = [&fired, &bad_previous] {
    for (int i = 0; i < 500; ++i) {
      CheckFailureHandler prev = SetCheckFailureHandler(&ThrowingHandler);
      if (prev != &ThrowingHandler) bad_previous.store(true);
      try {
        CHECK(false) << "install race probe " << i;
      } catch (const CheckFired&) {
        fired.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  // det-lint: allow(raw-threading) — exercises the CHECK handler under real thread contention
  std::thread a(contender);
  // det-lint: allow(raw-threading) — exercises the CHECK handler under real thread contention
  std::thread b(contender);
  a.join();
  b.join();
  EXPECT_FALSE(bad_previous.load());
  EXPECT_EQ(fired.load(), 2 * 500);
  // TearDown restores the fixture's saved handler.
}

}  // namespace
}  // namespace dhs
