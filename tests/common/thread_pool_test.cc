// ThreadPool / RunTrials tests. The load-bearing property is the
// determinism contract: RunTrials output is a pure function of
// (n_trials, seed_base, fn), independent of the worker count and of
// completion order — the parallel experiment harness (bench/,
// tools/audit_sim) relies on it to keep reported numbers reproducible.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "dhs/client.h"
#include "dht/chord.h"

namespace dhs {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 50 * round);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();
  SUCCEED();
}

TEST(TrialSeedTest, DistinctAcrossTrialsAndBases) {
  std::set<uint64_t> seeds;
  for (uint64_t base : {0ull, 1ull, 42ull}) {
    for (int trial = 0; trial < 64; ++trial) {
      seeds.insert(TrialSeed(base, trial));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);
  // Stable mapping: the seed of a trial does not depend on anything else.
  EXPECT_EQ(TrialSeed(7, 3), TrialSeed(7, 3));
}

TEST(RunTrialsTest, ResultsOrderedByTrialIndexNotCompletionOrder) {
  // Later trials finish first (earlier trials sleep longer), so any
  // completion-order aggregation would reverse the vector.
  const auto results = RunTrials(
      8, /*seed_base=*/1, /*num_threads=*/8, [](int trial, Rng&) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 * (8 - trial)));
        return trial;
      });
  ASSERT_EQ(results.size(), 8u);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(results[static_cast<size_t>(t)], t);
}

TEST(RunTrialsTest, SerialAndParallelSeedsMatch) {
  auto record_seed = [](int, Rng& rng) { return rng.Next(); };
  const auto serial = RunTrials(16, 99, 1, record_seed);
  const auto parallel = RunTrials(16, 99, 8, record_seed);
  EXPECT_EQ(serial, parallel);
}

TEST(RunTrialsTest, RethrowsLowestIndexedTrialFailure) {
  auto run = [](int threads) {
    try {
      (void)RunTrials(6, 5, threads, [](int trial, Rng&) -> int {
        if (trial == 2 || trial == 4) {
          throw std::runtime_error("trial " + std::to_string(trial));
        }
        return trial;
      });
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string("no exception");
  };
  EXPECT_EQ(run(1), "trial 2");
  EXPECT_EQ(run(4), "trial 2");
}

/// A realistic trial: builds its own small overlay, inserts a seeded
/// item stream through a DhsClient and counts it. Everything
/// thread-hostile (network, client) lives and dies inside the trial.
struct TrialStats {
  double estimate = 0.0;
  double hops = 0.0;
  uint64_t messages = 0;
};

TrialStats SimulatorTrial(int trial, Rng& rng) {
  OverlayConfig overlay;
  overlay.hasher = "mix";
  ChordNetwork net(overlay);
  while (net.NumNodes() < 32) {
    (void)net.AddNode(rng.Next());  // duplicate ID: retry
  }
  DhsConfig config;
  config.k = 16;
  config.m = 16;
  auto client = DhsClient::Create(&net, config);
  EXPECT_TRUE(client.ok());

  std::vector<uint64_t> items;
  for (int i = 0; i < 400 + trial; ++i) items.push_back(rng.Next());
  EXPECT_TRUE(
      client->InsertBatch(net.RandomNode(rng), 1, items, rng).ok());

  TrialStats stats;
  auto result = client->Count(net.RandomNode(rng), 1, rng);
  EXPECT_TRUE(result.ok());
  stats.estimate = result->estimate;
  stats.hops = static_cast<double>(result->cost.hops);
  stats.messages = net.stats().messages;
  return stats;
}

// The satellite requirement: same seed_base => bit-identical aggregated
// stats at 1, 2 and 8 threads, with results ordered by trial index.
TEST(RunTrialsTest, SimulatorTrialsBitIdenticalAt1And2And8Threads) {
  constexpr int kTrials = 12;
  constexpr uint64_t kSeedBase = 2026;

  const auto baseline = RunTrials(kTrials, kSeedBase, 1, SimulatorTrial);
  ASSERT_EQ(baseline.size(), static_cast<size_t>(kTrials));

  StreamingStats baseline_estimates;
  StreamingStats baseline_hops;
  for (const TrialStats& s : baseline) {
    baseline_estimates.Add(s.estimate);
    baseline_hops.Add(s.hops);
  }

  for (int threads : {2, 8}) {
    const auto run = RunTrials(kTrials, kSeedBase, threads, SimulatorTrial);
    ASSERT_EQ(run.size(), static_cast<size_t>(kTrials));
    StreamingStats estimates;
    StreamingStats hops;
    for (int t = 0; t < kTrials; ++t) {
      const auto& got = run[static_cast<size_t>(t)];
      const auto& want = baseline[static_cast<size_t>(t)];
      // Bitwise per-trial equality, not approximate: the trial is a
      // deterministic function of its TrialSeed.
      EXPECT_EQ(got.estimate, want.estimate) << "trial " << t << " at "
                                             << threads << " threads";
      EXPECT_EQ(got.hops, want.hops) << "trial " << t;
      EXPECT_EQ(got.messages, want.messages) << "trial " << t;
      estimates.Add(got.estimate);
      hops.Add(got.hops);
    }
    // Aggregates merged in trial order are bitwise-stable too.
    EXPECT_EQ(estimates.mean(), baseline_estimates.mean());
    EXPECT_EQ(estimates.variance(), baseline_estimates.variance());
    EXPECT_EQ(hops.mean(), baseline_hops.mean());
    EXPECT_EQ(hops.max(), baseline_hops.max());
  }
}

// The ThreadHostile tripwire: trial results must not leak (pointers to)
// confined objects. Compile-time property, checked via the trait the
// static_assert in RunTrials uses.
static_assert(kThreadHostile<ChordNetwork>, "networks are thread-hostile");
static_assert(kThreadHostile<DhtNetwork*>, "pointer form is caught too");
static_assert(kThreadHostile<const ChordNetwork&>,
              "reference form is caught too");
static_assert(kThreadHostile<SampleStats>,
              "lazy-sorting sample pools are thread-hostile");
static_assert(!kThreadHostile<StreamingStats>,
              "plain accumulators hand over safely by value");
static_assert(!kThreadHostile<TrialStats>,
              "value aggregates hand over safely");

}  // namespace
}  // namespace dhs
