#include "common/bit_util.h"

#include <gtest/gtest.h>

namespace dhs {
namespace {

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 63) + 1));
}

TEST(BitUtilTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(1023), 9);
  EXPECT_EQ(Log2Floor(1024), 10);
  EXPECT_EQ(Log2Floor(~uint64_t{0}), 63);
}

TEST(BitUtilTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
  EXPECT_EQ(Log2Ceil(1ull << 40), 40);
}

TEST(BitUtilTest, LowBits) {
  EXPECT_EQ(LowBits(0xffffffffffffffffULL, 4), 0xfULL);
  EXPECT_EQ(LowBits(0xabcdULL, 8), 0xcdULL);
  EXPECT_EQ(LowBits(0xabcdULL, 0), 0u);
  EXPECT_EQ(LowBits(0xabcdULL, 64), 0xabcdULL);
  EXPECT_EQ(LowBits(0xabcdULL, 100), 0xabcdULL);
}

TEST(BitUtilTest, GetBit) {
  EXPECT_EQ(GetBit(0b1010, 0), 0);
  EXPECT_EQ(GetBit(0b1010, 1), 1);
  EXPECT_EQ(GetBit(0b1010, 3), 1);
  EXPECT_EQ(GetBit(uint64_t{1} << 63, 63), 1);
  EXPECT_EQ(GetBit(uint64_t{1} << 63, 62), 0);
}

}  // namespace
}  // namespace dhs
