#include "common/bit_util.h"

#include <gtest/gtest.h>

#include <string>

namespace dhs {
namespace {

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 63) + 1));
}

TEST(BitUtilTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(1023), 9);
  EXPECT_EQ(Log2Floor(1024), 10);
  EXPECT_EQ(Log2Floor(~uint64_t{0}), 63);
}

TEST(BitUtilTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
  EXPECT_EQ(Log2Ceil(1ull << 40), 40);
}

TEST(BitUtilTest, LowBits) {
  EXPECT_EQ(LowBits(0xffffffffffffffffULL, 4), 0xfULL);
  EXPECT_EQ(LowBits(0xabcdULL, 8), 0xcdULL);
  EXPECT_EQ(LowBits(0xabcdULL, 0), 0u);
  EXPECT_EQ(LowBits(0xabcdULL, 64), 0xabcdULL);
  EXPECT_EQ(LowBits(0xabcdULL, 100), 0xabcdULL);
}

TEST(BitUtilTest, GetBit) {
  EXPECT_EQ(GetBit(0b1010, 0), 0);
  EXPECT_EQ(GetBit(0b1010, 1), 1);
  EXPECT_EQ(GetBit(0b1010, 3), 1);
  EXPECT_EQ(GetBit(uint64_t{1} << 63, 63), 1);
  EXPECT_EQ(GetBit(uint64_t{1} << 63, 62), 0);
}

TEST(ByteCodecTest, LittleEndianByteOrderIsPinned) {
  std::string out;
  AppendLE16(out, 0x0102);
  AppendLE32(out, 0x03040506u);
  AppendLE64(out, 0x0708090a0b0c0d0eULL);
  const std::string expected{
      "\x02\x01"
      "\x06\x05\x04\x03"
      "\x0e\x0d\x0c\x0b\x0a\x09\x08\x07",
      14};
  EXPECT_EQ(out, expected);
}

TEST(ByteCodecTest, BigEndianByteOrderIsPinned) {
  std::string out;
  AppendBE16(out, 0x0102);
  AppendBE32(out, 0x03040506u);
  AppendBE64(out, 0x0708090a0b0c0d0eULL);
  const std::string expected{
      "\x01\x02"
      "\x03\x04\x05\x06"
      "\x07\x08\x09\x0a\x0b\x0c\x0d\x0e",
      14};
  EXPECT_EQ(out, expected);
}

TEST(ByteCodecTest, RoundTripsExtremes) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0x80},
                     uint64_t{0xff00ff00ff00ff00ULL}, ~uint64_t{0}}) {
    std::string le;
    std::string be;
    AppendLE64(le, v);
    AppendBE64(be, v);
    EXPECT_EQ(LoadLE64(le.data()), v);
    EXPECT_EQ(LoadBE64(be.data()), v);
  }
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, ~0u}) {
    std::string le;
    std::string be;
    AppendLE32(le, v);
    AppendBE32(be, v);
    EXPECT_EQ(LoadLE32(le.data()), v);
    EXPECT_EQ(LoadBE32(be.data()), v);
  }
  for (uint16_t v : {uint16_t{0}, uint16_t{1}, uint16_t{0xabcd},
                     uint16_t{0xffff}}) {
    std::string le;
    std::string be;
    AppendLE16(le, v);
    AppendBE16(be, v);
    EXPECT_EQ(LoadLE16(le.data()), v);
    EXPECT_EQ(LoadBE16(be.data()), v);
  }
}

TEST(ByteCodecTest, LoadsWorkAtAnyOffset) {
  // Unaligned reads are the whole point of byte-wise loads: pack a
  // value at every offset of a 1-byte-shifted buffer and read it back.
  for (size_t shift = 0; shift < 8; ++shift) {
    std::string buf(shift, '\xa5');
    AppendLE64(buf, 0x1122334455667788ULL);
    EXPECT_EQ(LoadLE64(buf.data() + shift), 0x1122334455667788ULL);
  }
}

TEST(ByteCodecTest, HighBytesAreNotSignExtended) {
  std::string le;
  AppendLE32(le, 0xfffffffeu);
  EXPECT_EQ(LoadLE32(le.data()), 0xfffffffeu);
  EXPECT_EQ(LoadLE16(le.data()), 0xfffe);
  std::string be;
  AppendBE64(be, 0x8000000000000001ULL);
  EXPECT_EQ(LoadBE64(be.data()), 0x8000000000000001ULL);
}

}  // namespace
}  // namespace dhs
