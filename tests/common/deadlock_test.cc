// Runtime lock-diagnostics tests: the lock-order deadlock detector must
// flag a deliberately inverted lock pair (and a transitive cycle, and a
// self lock) through the CHECK failure hook BEFORE anything blocks,
// stay silent on consistent orderings, and the per-mutex contention
// counters must surface as labeled series in a MetricsRegistry dump
// via obs/sync_metrics.h.
//
// The detector reports by *ordering*, not by wait-for state, so every
// inversion here is provoked on a single thread — no timing window, no
// actual deadlock to escape from.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/sync_metrics.h"

namespace dhs {
namespace {

/// Thrown by the test failure handler so a detector report unwinds back
/// into the test instead of aborting the process.
struct DeadlockReported : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void ThrowingHandler(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": " << message;
  throw DeadlockReported(os.str());
}

class DeadlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_handler_ = SetCheckFailureHandler(&ThrowingHandler);
    previous_enabled_ = SetDeadlockDetectorEnabled(true);
  }
  void TearDown() override {
    SetDeadlockDetectorEnabled(previous_enabled_);
    SetCheckFailureHandler(previous_handler_);
  }

  /// Runs fn, expecting it to trip the detector; returns the report
  /// (file:line prefix plus the message).
  template <typename Fn>
  std::string Report(Fn&& fn) {
    try {
      fn();
    } catch (const DeadlockReported& fired) {
      return fired.what();
    }
    ADD_FAILURE() << "no deadlock report fired";
    return std::string();
  }

 private:
  CheckFailureHandler previous_handler_ = nullptr;
  bool previous_enabled_ = false;
};

TEST_F(DeadlockTest, AbBaInversionIsCaughtBeforeBlocking) {
  Mutex a{"dl_inv_a"};
  Mutex b{"dl_inv_b"};
  // Establish the ordering a -> b.
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  // The inverted acquisition fires at the a.Lock() below, while this
  // thread still holds b — before the native lock is even attempted.
  b.Lock();
  const std::string report = Report([&] { a.Lock(); });
  b.Unlock();
  EXPECT_NE(report.find("DEADLOCK"), std::string::npos) << report;
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  // Both mutex names and the acquisition sites of both sides (all in
  // this file) appear in the report.
  EXPECT_NE(report.find("dl_inv_a"), std::string::npos) << report;
  EXPECT_NE(report.find("dl_inv_b"), std::string::npos) << report;
  EXPECT_NE(report.find("deadlock_test.cc"), std::string::npos) << report;
}

TEST_F(DeadlockTest, TransitiveCycleIsCaughtWithWitnessPath) {
  Mutex a{"dl_tr_a"};
  Mutex b{"dl_tr_b"};
  Mutex c{"dl_tr_c"};
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();  // a -> b
  b.Lock();
  c.Lock();
  c.Unlock();
  b.Unlock();  // b -> c
  // Acquiring a while holding c closes the cycle a ~> c through b; the
  // witness path in the report names every mutex on it.
  c.Lock();
  const std::string report = Report([&] { a.Lock(); });
  c.Unlock();
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  for (const char* name : {"dl_tr_a", "dl_tr_b", "dl_tr_c"}) {
    EXPECT_NE(report.find(name), std::string::npos)
        << name << " missing from: " << report;
  }
}

TEST_F(DeadlockTest, SelfLockIsCaught) {
  Mutex mu{"dl_self"};
  mu.Lock();
  const std::string report = Report([&] { mu.Lock(); });
  mu.Unlock();
  EXPECT_NE(report.find("self deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("dl_self"), std::string::npos) << report;
}

TEST_F(DeadlockTest, ConsistentOrderingPassesCleanly) {
  // The same nesting repeated must never fire: the graph records the
  // ordering once and every later acquisition agrees with it.
  Mutex outer{"dl_ok_outer"};
  Mutex inner{"dl_ok_inner"};
  for (int i = 0; i < 100; ++i) {
    MutexLock lock_outer(outer);
    MutexLock lock_inner(inner);
  }
  // TryLock never blocks, so it participates in no ordering: a failed
  // or successful try in inverted order is legal.
  inner.Lock();
  EXPECT_TRUE(outer.TryLock());
  outer.Unlock();
  inner.Unlock();
}

TEST_F(DeadlockTest, RuntimeToggleSuspendsOrderTracking) {
  SetDeadlockDetectorEnabled(false);
  Mutex a{"dl_off_a"};
  Mutex b{"dl_off_b"};
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  // Inverted, but untracked while the detector is off: no report.
  b.Lock();
  a.Lock();
  a.Unlock();
  b.Unlock();
  // The self-lock and misuse checks are not part of the order graph and
  // stay armed regardless of the toggle.
  Mutex mu{"dl_off_self"};
  mu.Lock();
  const std::string report = Report([&] { mu.Lock(); });
  mu.Unlock();
  EXPECT_NE(report.find("self deadlock"), std::string::npos) << report;
}

TEST_F(DeadlockTest, CondVarWaitKeepsHeldStackConsistent) {
  struct State {
    Mutex mu{"dl_cv"};
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
  } state;
  // det-lint: allow(raw-threading) — a second thread must signal the wait
  std::thread signaler([&state] {
    MutexLock lock(state.mu);
    state.ready = true;
    state.cv.SignalAll();
  });
  {
    MutexLock lock(state.mu);
    state.cv.Wait(state.mu, [&state]() NO_THREAD_SAFETY_ANALYSIS {
      return state.ready;
    });
    // Wait() re-acquired the native lock without going through
    // Mutex::Lock; the held entry stayed in place, so the thread still
    // counts as holding mu — AssertHeld passes and taking another mutex
    // sees a consistent stack (and records the ordering mu -> nested).
    state.mu.AssertHeld();
    Mutex nested{"dl_cv_nested"};
    MutexLock inner(nested);
  }
  signaler.join();
}

TEST_F(DeadlockTest, AssertHeldFiresWhenNotHeld) {
  Mutex mu{"dl_assert"};
  const std::string report = Report([&] { mu.AssertHeld(); });
  EXPECT_NE(report.find("AssertHeld"), std::string::npos) << report;
  EXPECT_NE(report.find("dl_assert"), std::string::npos) << report;
  mu.Lock();
  mu.AssertHeld();  // held: silent
  mu.Unlock();
}

TEST_F(DeadlockTest, UnlockByNonHolderIsFlagged) {
  Mutex mu{"dl_unheld"};
  const std::string report = Report([&] { mu.Unlock(); });
  EXPECT_NE(report.find("does not hold"), std::string::npos) << report;
  EXPECT_NE(report.find("dl_unheld"), std::string::npos) << report;
}

TEST_F(DeadlockTest, ContentionCountersSurfaceInMetricsDump) {
  Mutex mu{"dl_profile"};
  for (int i = 0; i < 5; ++i) {
    MutexLock lock(mu);
  }

  auto profile_of = [](const char* name) {
    for (const MutexProfile& p : SnapshotMutexProfiles()) {
      if (std::string(p.name) == name) return p;
    }
    return MutexProfile{};
  };
  EXPECT_GE(profile_of("dl_profile").acquisitions, 5u);

  // Force at least one genuinely contended acquisition: the holder
  // takes the lock, the main thread queues up behind it. The handshake
  // plus sleep makes a miss (holder releasing before the main thread
  // attempts the lock) vanishingly unlikely; retry on the off chance.
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::atomic<bool> held{false};
    // det-lint: allow(raw-threading) — contention needs a second thread
    std::thread holder([&] {
      mu.Lock();
      held.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      mu.Unlock();
    });
    while (!held.load()) {
    }
    mu.Lock();
    mu.Unlock();
    holder.join();
    if (profile_of("dl_profile").contended >= 1) break;
  }
  const MutexProfile profile = profile_of("dl_profile");
  EXPECT_GE(profile.contended, 1u);
  EXPECT_GT(profile.wait_ns, 0u);

  // The profile becomes three labeled counter series in the registry.
  MetricsRegistry registry;
  ExportSyncMetrics(&registry);
  std::ostringstream dump;
  registry.WriteJson(dump);
  const std::string json = dump.str();
  for (const char* series :
       {"sync_mutex_acquisitions_total{mutex=dl_profile}",
        "sync_mutex_contended_total{mutex=dl_profile}",
        "sync_mutex_wait_ticks_total{mutex=dl_profile}"}) {
    EXPECT_NE(json.find(series), std::string::npos)
        << series << " missing from dump: " << json;
  }

  // Idempotent export: a second call raises to the snapshot instead of
  // double-counting (no lock activity on dl_profile in between).
  Counter* acq = registry.GetCounter("sync_mutex_acquisitions_total",
                                     {{"mutex", "dl_profile"}});
  const uint64_t after_first = acq->value();
  ExportSyncMetrics(&registry);
  EXPECT_EQ(acq->value(), after_first);
}

}  // namespace
}  // namespace dhs
