#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dhs {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  StreamingStats all;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a;
  a.Add(1.0);
  a.Add(3.0);
  StreamingStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(SampleStatsTest, EmptyPercentileIsZero) {
  SampleStats s;
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleStatsTest, MedianOfOddCount) {
  SampleStats s;
  for (double x : {5.0, 1.0, 3.0}) s.Add(x);
  EXPECT_EQ(s.Median(), 3.0);
}

TEST(SampleStatsTest, PercentileNearestRank) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_EQ(s.Percentile(0.0), 1.0);
  EXPECT_EQ(s.Percentile(0.01), 1.0);
  EXPECT_EQ(s.Percentile(0.50), 50.0);
  EXPECT_EQ(s.Percentile(0.99), 99.0);
  EXPECT_EQ(s.Percentile(1.0), 100.0);
}

TEST(SampleStatsTest, AddAfterPercentileResorts) {
  SampleStats s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_EQ(s.Percentile(1.0), 20.0);
  s.Add(30.0);
  EXPECT_EQ(s.Percentile(1.0), 30.0);  // must see the new maximum
  EXPECT_EQ(s.Percentile(0.0), 10.0);
}

TEST(SampleStatsTest, MeanAndStddev) {
  SampleStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100, 100), 0.0);
}

TEST(RelativeErrorTest, ZeroTruth) {
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 5.0);
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace dhs
