#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace dhs {
namespace {

TEST(SplitMix64Test, KnownValuesAreStable) {
  // Regression anchors: SplitMix64 output must never change (IDs and
  // workloads depend on it).
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(1), 0x910a2dec89025cc1ULL);
}

TEST(SplitMix64Test, IsInjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(SplitMix64(i)).second) << i;
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformU64StaysInBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64BoundOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.UniformU64(1), 0u);
  }
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformU64(kBuckets)]++;
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInRangeFullSpanDoesNotCrash) {
  Rng rng(6);
  (void)rng.UniformInRange(0, ~uint64_t{0});
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkProducesDistinctStream) {
  Rng a(123);
  Rng forked = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (forked.Next() == a.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace dhs
