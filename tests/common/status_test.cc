#include "common/status.h"

#include <gtest/gtest.h>

namespace dhs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::NotFound("gone");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsInternal());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, EmptyMessageToString) {
  Status s = Status::Internal("");
  EXPECT_EQ(s.ToString(), "Internal");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::string> v(std::string("a"));
  v.value() += "b";
  EXPECT_EQ(*v, "ab");
}

}  // namespace
}  // namespace dhs
