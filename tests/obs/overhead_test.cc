// Disabled-cost contract from obs/trace.h: with a tracer attached but
// disabled (or no tracer at all), the instrumented hot paths perform
// ZERO additional heap allocations and record zero events. This file
// counts every global operator new in the test binary; the assertions
// compare the allocation count of an instrumented run against an
// uninstrumented baseline of the exact same seeded work, so any
// allocation the observability layer sneaks into the traced-off path
// shows up as a hard failure (bench/bench_obs_overhead.cc measures the
// time side of the same contract).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/random.h"
#include "dht/chord.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace dhs {
namespace {

class OverheadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OverlayConfig config;
    config.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(config);
    Rng rng(20260806);
    for (int i = 0; i < 128; ++i) {
      ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    }
  }

  /// The measured workload: routed lookups and direct hops, the two
  /// primitives every DHS operation is built from. Identical key
  /// sequence on every call (fresh Rng from a fixed seed).
  void RunWorkload() {
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
      const uint64_t origin = net_->RandomNode(rng);
      ASSERT_TRUE(net_->Lookup(origin, rng.Next(), 16).ok());
      const uint64_t to = net_->RandomNode(rng);
      if (to != origin) {
        ASSERT_TRUE(net_->DirectHop(origin, to, 8).ok());
      }
    }
  }

  uint64_t AllocationsDuringWorkload() {
    // Warm up once so lazily-grown state (rng state, routing caches)
    // does not pollute the measurement.
    RunWorkload();
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    RunWorkload();
    return g_allocations.load(std::memory_order_relaxed) - before;
  }

  std::unique_ptr<ChordNetwork> net_;
};

TEST_F(OverheadTest, DisabledTracerAddsZeroAllocationsAndZeroEvents) {
  const uint64_t baseline = AllocationsDuringWorkload();

  Tracer tracer;
  tracer.set_enabled(false);
  net_->AttachTracer(&tracer);
  const uint64_t with_disabled_tracer = AllocationsDuringWorkload();

  EXPECT_EQ(with_disabled_tracer, baseline)
      << "traced-off hot path allocated; the null-sink branch must not";
  EXPECT_EQ(tracer.NumEvents(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST_F(OverheadTest, DetachedMetricsAddZeroAllocations) {
  const uint64_t baseline = AllocationsDuringWorkload();
  // No registry attached: the cached instrument pointers stay null and
  // the workload must not touch the heap any more than the baseline.
  const uint64_t again = AllocationsDuringWorkload();
  EXPECT_EQ(again, baseline);
}

TEST_F(OverheadTest, EnabledTracerActuallyRecords) {
  // Sanity check that the measurement itself is alive: the enabled
  // path MUST record events (and may allocate).
  Tracer tracer;
  net_->AttachTracer(&tracer);
  RunWorkload();
  EXPECT_GT(tracer.NumEvents(), 0u);
  EXPECT_FALSE(tracer.spans().empty());
}

}  // namespace
}  // namespace dhs
