#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dht/stats.h"

namespace dhs {
namespace {

TEST(TraceArgTest, RendersValueTokens) {
  const TraceArg u = TraceArg::U64("messages", 7);
  EXPECT_EQ(u.key, "messages");
  EXPECT_EQ(u.value, "7");
  EXPECT_FALSE(u.quoted);

  const TraceArg i = TraceArg::I64("delta", -3);
  EXPECT_EQ(i.value, "-3");
  EXPECT_FALSE(i.quoted);

  const TraceArg b = TraceArg::Bool("ok", true);
  EXPECT_EQ(b.value, "true");
  EXPECT_FALSE(b.quoted);

  const TraceArg s = TraceArg::Str("kind", "drop");
  EXPECT_EQ(s.value, "drop");
  EXPECT_TRUE(s.quoted);

  // %.17g round-trips doubles exactly.
  const TraceArg f = TraceArg::F64("x", 0.1);
  EXPECT_EQ(std::stod(f.value), 0.1);
}

TEST(TracerTest, SpansNestAndRecordParents) {
  Tracer tracer;
  const uint64_t root = tracer.BeginSpan("op");
  const uint64_t child = tracer.BeginSpan("lookup");
  const uint64_t grandchild = tracer.BeginSpan("hop");
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(child, 2u);
  EXPECT_EQ(grandchild, 3u);
  EXPECT_EQ(tracer.OpenDepth(), 3u);
  tracer.EndSpan(grandchild);
  tracer.EndSpan(child);
  const uint64_t sibling = tracer.BeginSpan("lookup");
  tracer.EndSpan(sibling);
  tracer.EndSpan(root);
  EXPECT_EQ(tracer.OpenDepth(), 0u);

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, child);
  EXPECT_EQ(spans[3].parent, root);
  for (const TraceSpanRecord& span : spans) EXPECT_FALSE(span.open);
  // Begin/end sequence numbers bracket the children's.
  EXPECT_LT(spans[0].begin_seq, spans[1].begin_seq);
  EXPECT_LT(spans[2].end_seq, spans[1].end_seq);
  EXPECT_LT(spans[3].end_seq, spans[0].end_seq);
}

TEST(TracerTest, SpanDeltaIsStatsDifference) {
  MessageStats stats;
  uint64_t clock = 10;
  Tracer tracer;
  tracer.Bind(&stats, &clock);

  const uint64_t outer = tracer.BeginSpan("outer");
  stats.messages += 1;
  stats.hops += 4;
  clock = 12;
  const uint64_t inner = tracer.BeginSpan("inner");
  stats.messages += 2;
  stats.bytes += 100;
  clock = 15;
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].delta.messages, 3u);  // includes the nested span
  EXPECT_EQ(spans[0].delta.hops, 4u);
  EXPECT_EQ(spans[0].delta.bytes, 100u);
  EXPECT_EQ(spans[1].delta.messages, 2u);
  EXPECT_EQ(spans[1].delta.hops, 0u);
  EXPECT_EQ(spans[1].delta.bytes, 100u);
  EXPECT_EQ(spans[0].begin_tick, 10u);
  EXPECT_EQ(spans[0].end_tick, 15u);
  EXPECT_EQ(spans[1].begin_tick, 12u);
}

TEST(TracerTest, RootSpanTotalSumsOnlyClosedRoots) {
  MessageStats stats;
  Tracer tracer;
  tracer.Bind(&stats, nullptr);

  const uint64_t a = tracer.BeginSpan("a");
  stats.messages += 1;
  const uint64_t nested = tracer.BeginSpan("nested");
  stats.messages += 2;
  tracer.EndSpan(nested);
  tracer.EndSpan(a);

  const uint64_t b = tracer.BeginSpan("b");
  stats.messages += 4;
  tracer.EndSpan(b);

  // Still-open roots are excluded until they close.
  const uint64_t open = tracer.BeginSpan("open");
  stats.messages += 8;
  EXPECT_EQ(tracer.RootSpanTotal().messages, 7u);
  tracer.EndSpan(open);
  EXPECT_EQ(tracer.RootSpanTotal().messages, 15u);
}

TEST(TracerTest, DisabledTracerIsNullSink) {
  Tracer tracer;
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.BeginSpan("op"), 0u);
  tracer.EndSpan(0);
  tracer.AnnotateSpan(0, TraceArg::U64("k", 1));
  tracer.Instant("hop");
  EXPECT_EQ(tracer.NumEvents(), 0u);
  EXPECT_EQ(tracer.NumInstants(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.OpenDepth(), 0u);
}

TEST(TracerTest, ScopedSpanHandlesNullAndDisabled) {
  {
    ScopedSpan span(nullptr, "op");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    span.Arg(TraceArg::U64("k", 1));  // no-op, no crash
  }
  Tracer tracer;
  tracer.set_enabled(false);
  {
    ScopedSpan span(&tracer, "op");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.NumEvents(), 0u);

  tracer.set_enabled(true);
  {
    ScopedSpan span(&tracer, "op");
    EXPECT_TRUE(span.active());
    span.Arg(TraceArg::Str("kind", "test"));
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  ASSERT_EQ(tracer.spans()[0].args.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].args[0].key, "kind");
}

TEST(TracerTest, InstantsAttachToInnermostOpenSpan) {
  Tracer tracer;
  tracer.Instant("orphan");  // no span open: attaches to root (0)
  const uint64_t op = tracer.BeginSpan("op");
  tracer.Instant("hop", {TraceArg::U64("from", 1), TraceArg::U64("to", 2)});
  tracer.EndSpan(op);
  EXPECT_EQ(tracer.NumInstants(), 2u);
  // 2 instants + 1 begin + 1 end.
  EXPECT_EQ(tracer.NumEvents(), 4u);
}

TEST(TracerTest, ClearResetsIdsAndSequence) {
  Tracer tracer;
  tracer.EndSpan(tracer.BeginSpan("op"));
  tracer.Instant("i");
  tracer.Clear();
  EXPECT_EQ(tracer.NumEvents(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.BeginSpan("fresh"), 1u);
  EXPECT_EQ(tracer.spans()[0].begin_seq, 0u);
}

TEST(TracerTest, ChromeTraceShapeAndOrder) {
  MessageStats stats;
  uint64_t clock = 5;
  Tracer tracer;
  tracer.Bind(&stats, &clock);
  const uint64_t op = tracer.BeginSpan("op");
  stats.messages += 1;
  tracer.Instant("hop", {TraceArg::U64("from", 3)});
  tracer.EndSpan(op);

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\"", 0), 0u) << out;
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\":5"), std::string::npos);
  // End event carries the span's stats delta.
  EXPECT_NE(out.find("\"messages\":1"), std::string::npos);
  // Events appear in sequence order: B before i before E.
  EXPECT_LT(out.find("\"ph\":\"B\""), out.find("\"ph\":\"i\""));
  EXPECT_LT(out.find("\"ph\":\"i\""), out.find("\"ph\":\"E\""));
}

TEST(TracerTest, JsonlOneObjectPerEvent) {
  Tracer tracer;
  const uint64_t op = tracer.BeginSpan("op");
  tracer.Instant("hop");
  tracer.EndSpan(op);

  std::ostringstream os;
  tracer.WriteJsonl(os);
  const std::string out = os.str();
  size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1u : 0u;
  EXPECT_EQ(lines, tracer.NumEvents());
  EXPECT_EQ(out.rfind("{\"ev\":\"B\"", 0), 0u) << out;
}

TEST(TracerTest, EscapesJsonStrings) {
  Tracer tracer;
  const uint64_t op = tracer.BeginSpan("quote\"back\\slash");
  tracer.AnnotateSpan(op, TraceArg::Str("note", "line\nbreak\tand\x01" "ctl"));
  tracer.EndSpan(op);

  std::ostringstream os;
  tracer.WriteJsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("quote\\\"back\\\\slash"), std::string::npos) << out;
  EXPECT_NE(out.find("line\\nbreak\\tand\\u0001" "ctl"), std::string::npos)
      << out;
}

TEST(TracerTest, ExportIsDeterministicAcrossIdenticalRecordings) {
  auto record = [] {
    MessageStats stats;
    uint64_t clock = 0;
    Tracer tracer;
    tracer.Bind(&stats, &clock);
    for (int i = 0; i < 10; ++i) {
      const uint64_t op = tracer.BeginSpan("op");
      stats.messages += 1;
      stats.hops += static_cast<uint64_t>(i);
      clock += 3;
      tracer.Instant("hop", {TraceArg::U64("i", static_cast<uint64_t>(i))});
      tracer.EndSpan(op);
    }
    std::ostringstream chrome;
    std::ostringstream jsonl;
    tracer.WriteChromeTrace(chrome);
    tracer.WriteJsonl(jsonl);
    return chrome.str() + "\x1f" + jsonl.str();
  };
  EXPECT_EQ(record(), record());
}

}  // namespace
}  // namespace dhs
