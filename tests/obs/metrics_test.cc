#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"

namespace dhs {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, KeepsLastValue) {
  Gauge gauge;
  gauge.Set(2.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
}

TEST(HistogramTest, BucketsByUpperBound) {
  Histogram h({1.0, 4.0, 16.0});
  h.Observe(0.0);   // <= 1
  h.Observe(1.0);   // <= 1 (bounds are inclusive upper limits)
  h.Observe(2.0);   // <= 4
  h.Observe(16.0);  // <= 16
  h.Observe(17.0);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 36.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsRegistryTest, InternReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dht_lookups_total",
                                   {{"geometry", "chord"}});
  a->Increment(3);
  // Same series regardless of label order.
  Counter* b = registry.GetCounter(
      "dht_lookups_total", {{"geometry", "chord"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->value(), 3u);
  // Different labels are a different series.
  Counter* c = registry.GetCounter("dht_lookups_total",
                                   {{"geometry", "kademlia"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.NumSeries(), 2u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter(
      "dhs_ops_total", {{"op", "count"}, {"geometry", "chord"}});
  Counter* b = registry.GetCounter(
      "dhs_ops_total", {{"geometry", "chord"}, {"op", "count"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.NumSeries(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchChecks) {
  struct CheckFired : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  CheckFailureHandler previous = SetCheckFailureHandler(
      +[](const char* /*file*/, int /*line*/, const std::string& message) {
        throw CheckFired(message);
      });
  MetricsRegistry registry;
  registry.GetCounter("dhs_ops_total");
  EXPECT_THROW(registry.GetGauge("dhs_ops_total"), CheckFired);
  SetCheckFailureHandler(previous);
}

TEST(MetricsRegistryTest, HistogramBoundsApplyOnFirstInternOnly) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("dhs_op_hops", {1.0, 2.0});
  Histogram* again = registry.GetHistogram("dhs_op_hops", {9.0});
  EXPECT_EQ(h, again);
  EXPECT_EQ(h->upper_bounds().size(), 2u);
}

TEST(MetricsRegistryTest, WriteJsonIsSortedAndDeterministic) {
  auto dump = [] {
    MetricsRegistry registry;
    registry.GetCounter("z_total", {{"op", "b"}})->Increment(2);
    registry.GetCounter("a_total")->Increment(1);
    registry.GetGauge("m_gauge")->Set(1.5);
    Histogram* h = registry.GetHistogram("h_hist", {1.0, 8.0});
    h->Observe(0.5);
    h->Observe(100.0);
    std::ostringstream os;
    registry.WriteJson(os);
    return os.str();
  };
  const std::string out = dump();
  EXPECT_EQ(out, dump());
  EXPECT_NE(out.find("\"a_total\":{\"type\":\"counter\",\"value\":1}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"z_total{op=b}\":{\"type\":\"counter\",\"value\":2}"),
            std::string::npos);
  EXPECT_NE(out.find("\"m_gauge\":{\"type\":\"gauge\",\"value\":1.5}"),
            std::string::npos);
  EXPECT_NE(
      out.find("\"h_hist\":{\"type\":\"histogram\",\"count\":2,\"sum\":100.5,"
               "\"bounds\":[1,8],\"buckets\":[1,0,1]}"),
      std::string::npos)
      << out;
  // Keys appear in sorted order.
  EXPECT_LT(out.find("a_total"), out.find("h_hist"));
  EXPECT_LT(out.find("h_hist"), out.find("m_gauge"));
  EXPECT_LT(out.find("m_gauge"), out.find("z_total"));
}

}  // namespace
}  // namespace dhs
