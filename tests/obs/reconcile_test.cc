// Trace <-> stats reconciliation property test (the invariant
// obs/trace.h documents): every message the network charges is issued
// inside some traced operation, and root spans never overlap, so the
// sum of closed-root-span MessageStats deltas equals the network's
// global counters EXACTLY — messages, hops and bytes, on both overlay
// geometries, with and without an active fault plan (a faulted message
// still costs 1 message, 0 hops, 0 bytes, and still lands inside the
// span that issued it).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/network.h"
#include "dht/transport.h"
#include "dhs/client.h"
#include "obs/trace.h"

namespace dhs {
namespace {

struct ReconcileCase {
  std::string name;
  bool kademlia;
  bool faults;
};

class ReconcileTest : public ::testing::TestWithParam<ReconcileCase> {
 protected:
  static std::unique_ptr<DhtNetwork> MakeNetwork(bool kademlia) {
    OverlayConfig config;
    config.hasher = "mix";
    if (kademlia) return std::make_unique<KademliaNetwork>(config);
    return std::make_unique<ChordNetwork>(config);
  }
};

TEST_P(ReconcileTest, RootSpansSumToGlobalStats) {
  const ReconcileCase& param = GetParam();
  auto net = MakeNetwork(param.kademlia);
  Tracer tracer;
  net->AttachTracer(&tracer);

  Rng rng(20260806);
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(net->AddNode(rng.Next()).ok());
  }
  if (param.faults) {
    FaultConfig faults;
    faults.drop_probability = 0.08;
    faults.timeout_probability = 0.05;
    faults.crash_probability = 0.01;
    faults.seed = 99;
    ASSERT_TRUE(net->SetFaultPlan(faults).ok());
  }

  DhsConfig config;
  config.k = 24;
  config.m = 16;
  config.lim = 3;
  config.replication = 2;
  auto client = DhsClient::Create(net.get(), config);
  ASSERT_TRUE(client.ok());

  const uint64_t metric = 7;
  int churn_adds = 0;
  for (int step = 0; step < 600; ++step) {
    const uint64_t origin = net->RandomNode(rng);
    switch (rng.Next() % 8) {
      case 0: {  // raw routed put (may fail under faults — still traced)
        (void)net->Put(origin, rng.Next(), "k", "v", kNoExpiry);
        break;
      }
      case 1: {
        (void)net->GetValue(origin, rng.Next(), "k");
        break;
      }
      case 2: {
        (void)net->Lookup(origin, rng.Next(), 16);
        break;
      }
      case 3: {
        const uint64_t to = net->RandomNode(rng);
        if (to != origin) (void)net->DirectHop(origin, to, 8);
        break;
      }
      case 4: {
        (void)client->Insert(origin, metric, rng.Next(), rng);
        break;
      }
      case 5: {
        std::vector<uint64_t> batch;
        for (int i = 0; i < 20; ++i) batch.push_back(rng.Next());
        (void)client->InsertBatch(origin, metric, batch, rng);
        break;
      }
      case 6: {
        (void)client->Count(origin, metric, rng);
        break;
      }
      case 7: {  // churn: uncharged membership ops interleave freely
        if (churn_adds < 16 && rng.Next() % 2 == 0) {
          if (net->AddNode(rng.Next()).ok()) ++churn_adds;
        } else if (net->NodeIds().size() > 24) {
          const uint64_t victim = net->RandomNode(rng);
          (void)(rng.Next() % 2 == 0 ? net->RemoveNode(victim)
                                     : net->FailNode(victim));
        }
        net->AdvanceClock(1);
        break;
      }
    }
    ASSERT_EQ(tracer.OpenDepth(), 0u) << "span leaked at step " << step;
  }

  const MessageStats total = tracer.RootSpanTotal();
  EXPECT_EQ(total.messages, net->stats().messages);
  EXPECT_EQ(total.hops, net->stats().hops);
  EXPECT_EQ(total.bytes, net->stats().bytes);
  EXPECT_GT(net->stats().messages, 0u) << "scenario exercised nothing";
  if (param.faults) {
    const FaultStats& fired = net->fault_plan().stats();
    EXPECT_GT(fired.drops + fired.timeouts, 0u)
        << "fault plan never fired; the faulted case tested nothing";
  }
  EXPECT_TRUE(net->AuditFull().ok());
}

// Wire-frame reconciliation: the same invariant one layer down. Every
// byte MessageStats charges during DHS data-plane traffic is derived
// from an encoded frame the transport moved, so the sum of tapped
// charged_bytes equals the global byte counter exactly — again on both
// geometries, clean and faulted (a faulted frame is tapped undelivered
// with zero charge).
TEST_P(ReconcileTest, TappedFramesSumToGlobalByteCount) {
  const ReconcileCase& param = GetParam();
  auto net = MakeNetwork(param.kademlia);

  Rng rng(20260807);
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(net->AddNode(rng.Next()).ok());
  }
  if (param.faults) {
    FaultConfig faults;
    faults.drop_probability = 0.08;
    faults.timeout_probability = 0.05;
    faults.seed = 99;
    ASSERT_TRUE(net->SetFaultPlan(faults).ok());
  }

  DhsConfig config;
  config.k = 24;
  config.m = 16;
  config.lim = 3;
  config.replication = 2;
  config.retry_attempts = 2;
  auto client = DhsClient::Create(net.get(), config);
  ASSERT_TRUE(client.ok());

  uint64_t charged = 0;
  uint64_t frames = 0;
  client->transport()->set_frame_tap([&](const FrameTapEvent& event) {
    charged += event.charged_bytes;
    frames += 1;
  });

  const MessageStats before = net->stats();
  const uint64_t metric = 7;
  for (int step = 0; step < 200; ++step) {
    const uint64_t origin = net->RandomNode(rng);
    switch (rng.Next() % 3) {
      case 0: {
        (void)client->Insert(origin, metric, rng.Next(), rng);
        break;
      }
      case 1: {
        std::vector<uint64_t> batch;
        for (int i = 0; i < 20; ++i) batch.push_back(rng.Next());
        (void)client->InsertBatch(origin, metric, batch, rng);
        break;
      }
      case 2: {
        (void)client->Count(origin, metric, rng);
        break;
      }
    }
  }
  const MessageStats delta = net->stats() - before;
  EXPECT_GT(frames, 0u);
  EXPECT_EQ(charged, delta.bytes);
  EXPECT_TRUE(net->AuditFull().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReconcileTest,
    ::testing::Values(ReconcileCase{"ChordClean", false, false},
                      ReconcileCase{"ChordFaulted", false, true},
                      ReconcileCase{"KademliaClean", true, false},
                      ReconcileCase{"KademliaFaulted", true, true}),
    [](const ::testing::TestParamInfo<ReconcileCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace dhs
