// Golden-trace determinism test: a fixed-seed scenario exports a
// byte-identical Chrome trace on every run — timestamps are the
// overlay's virtual clock, ordering is the tracer's global sequence
// counter, and doubles render with %.17g, so nothing in the trace
// depends on wall clock, ASLR, or hash-map iteration order. The
// exported bytes are compared against a checked-in golden file.
//
// To regenerate after an intentional trace-format or scenario change:
//
//   DHS_REGEN_GOLDEN=1 ./build/tests/obs_test --gtest_filter='GoldenTraceTest.*'
//
// then review the golden diff like any other code change.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "dht/chord.h"
#include "dhs/client.h"
#include "obs/trace.h"

namespace dhs {
namespace {

constexpr const char* kGoldenPath =
    DHS_OBS_GOLDEN_DIR "/golden_trace.chord.json";

/// Runs the pinned scenario and returns the exported Chrome trace.
/// Everything here must stay deterministic: fixed seeds, fixed op
/// order, no wall-clock reads.
std::string RunScenario() {
  OverlayConfig overlay;
  overlay.hasher = "mix";
  ChordNetwork net(overlay);
  Tracer tracer;
  net.AttachTracer(&tracer);

  Rng rng(0x601d);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(net.AddNode(rng.Next()).ok());
  }

  DhsConfig config;
  config.k = 12;
  config.m = 4;
  config.lim = 3;
  config.replication = 2;
  config.estimator = DhsEstimator::kSuperLogLog;
  auto client = DhsClient::Create(&net, config);
  EXPECT_TRUE(client.ok());

  const uint64_t metric = 42;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(client->Insert(net.RandomNode(rng), metric, rng.Next(), rng)
                    .ok());
    net.AdvanceClock(2);
  }
  std::vector<uint64_t> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(rng.Next());
  EXPECT_TRUE(
      client->InsertBatch(net.RandomNode(rng), metric, batch, rng).ok());
  EXPECT_TRUE(client->Count(net.RandomNode(rng), metric, rng).ok());

  // A faulted segment: drops and timeouts land as instants and retries.
  FaultConfig faults;
  faults.drop_probability = 0.2;
  faults.timeout_probability = 0.1;
  faults.seed = 5;
  EXPECT_TRUE(net.SetFaultPlan(faults).ok());
  for (int i = 0; i < 4; ++i) {
    (void)client->Insert(net.RandomNode(rng), metric, rng.Next(), rng);
    net.AdvanceClock(1);
  }
  (void)client->Count(net.RandomNode(rng), metric, rng);
  net.ClearFaultPlan();

  // Churn, then one clean count over the shrunk ring.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(net.FailNode(net.RandomNode(rng)).ok());
  }
  (void)client->Count(net.RandomNode(rng), metric, rng);

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  return os.str();
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::string();
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

TEST(GoldenTraceTest, TwoFreshRunsAreByteIdentical) {
  const std::string first = RunScenario();
  const std::string second = RunScenario();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(GoldenTraceTest, MatchesCheckedInGolden) {
  const std::string trace = RunScenario();
  if (std::getenv("DHS_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write " << kGoldenPath;
    os << trace;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  const std::string golden = ReadFileOrEmpty(kGoldenPath);
  ASSERT_FALSE(golden.empty())
      << kGoldenPath
      << " missing — regenerate with DHS_REGEN_GOLDEN=1 (see file header)";
  // Byte equality; on mismatch, report the first divergent offset
  // rather than dumping two multi-hundred-kB documents.
  if (trace != golden) {
    size_t offset = 0;
    const size_t limit = std::min(trace.size(), golden.size());
    while (offset < limit && trace[offset] == golden[offset]) ++offset;
    FAIL() << "trace diverges from " << kGoldenPath << " at byte " << offset
           << " (sizes " << trace.size() << " vs " << golden.size()
           << "); context: ..."
           << trace.substr(offset > 40 ? offset - 40 : 0, 80) << "... vs ..."
           << golden.substr(offset > 40 ? offset - 40 : 0, 80) << "...";
  }
}

}  // namespace
}  // namespace dhs
