#include "dht/chord.h"
#include "histogram/dhs_histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "hashing/hasher.h"
#include "relation/relation.h"

namespace dhs {
namespace {

class DhsHistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChordConfig chord;
    chord.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(chord);
    Rng rng(7);
    for (int i = 0; i < 256; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    DhsConfig config;
    config.k = 24;
    config.m = 64;
    config.estimator = DhsEstimator::kSuperLogLog;
    auto client = DhsClient::Create(net_.get(), config);
    ASSERT_TRUE(client.ok());
    client_ = std::make_unique<DhsClient>(std::move(client.value()));
  }

  std::unique_ptr<ChordNetwork> net_;
  std::unique_ptr<DhsClient> client_;
};

TEST_F(DhsHistogramTest, MetricIdsAreDistinctAndStable) {
  DhsHistogram hist(client_.get(), HistogramSpec(1, 100, 10), 42);
  std::set<uint64_t> metrics;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(metrics.insert(hist.MetricForBucket(i)).second);
  }
  DhsHistogram same(client_.get(), HistogramSpec(1, 100, 10), 42);
  EXPECT_EQ(hist.MetricForBucket(3), same.MetricForBucket(3));
  DhsHistogram other(client_.get(), HistogramSpec(1, 100, 10), 43);
  EXPECT_NE(hist.MetricForBucket(3), other.MetricForBucket(3));
}

TEST_F(DhsHistogramTest, EmptyHistogramReconstructsZero) {
  DhsHistogram hist(client_.get(), HistogramSpec(1, 100, 10), 1);
  Rng rng(1);
  auto result = hist.Reconstruct(net_->RandomNode(rng), rng);
  ASSERT_TRUE(result.ok());
  for (double b : result->buckets) EXPECT_EQ(b, 0.0);
}

TEST_F(DhsHistogramTest, ReconstructionTracksExactHistogram) {
  // A 4-bucket histogram over a skewed relation; every bucket is dense
  // enough for the lim guarantee (n_b >= m * N would need 16k per bucket;
  // we use a large relation to keep even the tail bucket heavy).
  RelationSpec spec;
  spec.name = "R";
  spec.num_tuples = 120000;
  spec.domain_size = 40;
  spec.zipf_theta = 0.7;
  const Relation relation = RelationGenerator::Generate(spec, 3);
  const HistogramSpec hspec(1, 40, 4);

  DhsHistogram hist(client_.get(), hspec, 5);
  Rng rng(2);
  const auto assignment = AssignTuplesToNodes(relation, net_->NodeIds(), rng);
  MixHasher hasher(11);
  for (const auto& [node, tuples] : assignment) {
    std::vector<std::pair<uint64_t, int64_t>> items;
    items.reserve(tuples.size());
    for (uint64_t t : tuples) {
      items.emplace_back(hasher.HashU64(relation.TupleId(t)),
                         relation.Value(t));
    }
    ASSERT_TRUE(hist.InsertBatch(node, items, rng).ok());
  }

  auto result = hist.Reconstruct(net_->RandomNode(rng), rng);
  ASSERT_TRUE(result.ok());
  const auto exact = BuildExactHistogram(relation, hspec);
  for (int i = 0; i < 4; ++i) {
    EXPECT_LT(RelativeError(result->buckets[i],
                            static_cast<double>(exact[i])),
              0.5)
        << "bucket " << i;
  }
  // Shape: the Zipf head bucket must dominate the tail bucket.
  EXPECT_GT(result->buckets[0], result->buckets[3]);
}

TEST_F(DhsHistogramTest, RangeReconstructionOnlyFillsRequested) {
  RelationSpec spec;
  spec.name = "S";
  spec.num_tuples = 50000;
  spec.domain_size = 40;
  const Relation relation = RelationGenerator::Generate(spec, 4);
  const HistogramSpec hspec(1, 40, 4);
  DhsHistogram hist(client_.get(), hspec, 9);
  Rng rng(3);
  MixHasher hasher(12);
  const auto assignment = AssignTuplesToNodes(relation, net_->NodeIds(), rng);
  for (const auto& [node, tuples] : assignment) {
    std::vector<std::pair<uint64_t, int64_t>> items;
    for (uint64_t t : tuples) {
      items.emplace_back(hasher.HashU64(relation.TupleId(t)),
                         relation.Value(t));
    }
    ASSERT_TRUE(hist.InsertBatch(node, items, rng).ok());
  }
  // Values [1, 10] live in bucket 0 only.
  auto result = hist.ReconstructRange(net_->RandomNode(rng), 1, 10, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->buckets[0], 0.0);
  EXPECT_EQ(result->buckets[1], 0.0);
  EXPECT_EQ(result->buckets[2], 0.0);
  EXPECT_EQ(result->buckets[3], 0.0);
}

TEST_F(DhsHistogramTest, RangeOutsideDomainIsAllZero) {
  DhsHistogram hist(client_.get(), HistogramSpec(1, 40, 4), 10);
  Rng rng(4);
  auto result = hist.ReconstructRange(net_->RandomNode(rng), 500, 600, rng);
  ASSERT_TRUE(result.ok());
  for (double b : result->buckets) EXPECT_EQ(b, 0.0);
}

TEST_F(DhsHistogramTest, ReconstructionCostIndependentOfBucketCount) {
  // §4.3: reconstructing I buckets costs the same hops as one count.
  RelationSpec spec;
  spec.name = "T";
  spec.num_tuples = 60000;
  spec.domain_size = 100;
  const Relation relation = RelationGenerator::Generate(spec, 5);
  Rng rng(5);
  MixHasher hasher(13);

  DhsCostReport cost_few;
  DhsCostReport cost_many;
  for (auto [buckets, cost] :
       {std::pair<int, DhsCostReport*>{2, &cost_few},
        std::pair<int, DhsCostReport*>{20, &cost_many}}) {
    DhsHistogram hist(client_.get(), HistogramSpec(1, 100, buckets),
                      100 + buckets);
    const auto assignment =
        AssignTuplesToNodes(relation, net_->NodeIds(), rng);
    for (const auto& [node, tuples] : assignment) {
      std::vector<std::pair<uint64_t, int64_t>> items;
      for (uint64_t t : tuples) {
        items.emplace_back(hasher.HashU64(relation.TupleId(t)),
                           relation.Value(t));
      }
      ASSERT_TRUE(hist.InsertBatch(node, items, rng).ok());
    }
    auto result = hist.Reconstruct(net_->RandomNode(rng), rng);
    ASSERT_TRUE(result.ok());
    *cost = result->cost;
  }
  // Hop cost must not scale with bucket count (allow 2x noise).
  EXPECT_LT(cost_many.hops, 2.0 * cost_few.hops + 20);
  // Bytes DO grow with buckets (more per-probe payload) — sanity check.
  EXPECT_GT(cost_many.bytes, cost_few.bytes);
}

}  // namespace
}  // namespace dhs
