#include "histogram/equi_width.h"

#include <gtest/gtest.h>

#include "relation/relation.h"

namespace dhs {
namespace {

TEST(HistogramSpecTest, BucketWidth) {
  HistogramSpec spec(1, 1000, 100);
  EXPECT_EQ(spec.bucket_width(), 10);
  EXPECT_EQ(spec.num_buckets(), 100);
}

TEST(HistogramSpecTest, BucketOfBoundaries) {
  HistogramSpec spec(1, 1000, 100);
  EXPECT_EQ(spec.BucketOf(1), 0);
  EXPECT_EQ(spec.BucketOf(10), 0);
  EXPECT_EQ(spec.BucketOf(11), 1);
  EXPECT_EQ(spec.BucketOf(1000), 99);
}

TEST(HistogramSpecTest, OutOfDomainClamps) {
  HistogramSpec spec(1, 1000, 100);
  EXPECT_EQ(spec.BucketOf(0), 0);
  EXPECT_EQ(spec.BucketOf(-50), 0);
  EXPECT_EQ(spec.BucketOf(5000), 99);
}

TEST(HistogramSpecTest, BucketBoundsRoundTrip) {
  HistogramSpec spec(1, 1000, 100);
  for (int i = 0; i < 100; ++i) {
    const auto [lo, hi] = spec.BucketBounds(i);
    EXPECT_EQ(spec.BucketOf(lo), i);
    EXPECT_EQ(spec.BucketOf(hi), i);
    EXPECT_EQ(hi - lo + 1, 10);
  }
}

TEST(HistogramSpecTest, UnevenDomainLastBucketAbsorbsRemainder) {
  HistogramSpec spec(1, 105, 10);  // width 10, last bucket [91, 105]
  EXPECT_EQ(spec.bucket_width(), 10);
  const auto [lo, hi] = spec.BucketBounds(9);
  EXPECT_EQ(lo, 91);
  EXPECT_EQ(hi, 105);
  EXPECT_EQ(spec.BucketOf(105), 9);
  EXPECT_EQ(spec.BucketOf(101), 9);
}

TEST(HistogramSpecTest, SingleBucketCoversEverything) {
  HistogramSpec spec(5, 10, 1);
  EXPECT_EQ(spec.BucketOf(5), 0);
  EXPECT_EQ(spec.BucketOf(10), 0);
  const auto [lo, hi] = spec.BucketBounds(0);
  EXPECT_EQ(lo, 5);
  EXPECT_EQ(hi, 10);
}

TEST(HistogramSpecTest, MoreBucketsThanValues) {
  HistogramSpec spec(1, 5, 10);  // width clamps to 1
  EXPECT_EQ(spec.bucket_width(), 1);
  EXPECT_EQ(spec.BucketOf(3), 2);
}

TEST(BuildExactHistogramTest, CountsMatchRelation) {
  RelationSpec rel_spec;
  rel_spec.name = "T";
  rel_spec.num_tuples = 10000;
  rel_spec.domain_size = 100;
  rel_spec.zipf_theta = 0.7;
  const Relation relation = RelationGenerator::Generate(rel_spec, 1);
  HistogramSpec spec(1, 100, 10);
  const auto buckets = BuildExactHistogram(relation, spec);
  ASSERT_EQ(buckets.size(), 10u);
  uint64_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const auto [lo, hi] = spec.BucketBounds(static_cast<int>(i));
    EXPECT_EQ(buckets[i], relation.CountValueRange(lo, hi)) << i;
    total += buckets[i];
  }
  EXPECT_EQ(total, relation.NumTuples());
  // Zipf: the first bucket dominates.
  EXPECT_GT(buckets[0], buckets[9]);
}

TEST(EstimateRangeTest, FullRangeIsTotal) {
  HistogramSpec spec(1, 100, 10);
  std::vector<double> buckets(10, 50.0);
  EXPECT_NEAR(EstimateRangeFromHistogram(buckets, spec, 1, 100), 500.0,
              1e-9);
}

TEST(EstimateRangeTest, PartialBucketInterpolates) {
  HistogramSpec spec(1, 100, 10);
  std::vector<double> buckets(10, 50.0);
  // [1, 5] covers half of bucket 0.
  EXPECT_NEAR(EstimateRangeFromHistogram(buckets, spec, 1, 5), 25.0, 1e-9);
  // [6, 15]: half of bucket 0 + half of bucket 1.
  EXPECT_NEAR(EstimateRangeFromHistogram(buckets, spec, 6, 15), 50.0, 1e-9);
}

TEST(EstimateRangeTest, EmptyAndInvertedRanges) {
  HistogramSpec spec(1, 100, 10);
  std::vector<double> buckets(10, 50.0);
  EXPECT_EQ(EstimateRangeFromHistogram(buckets, spec, 50, 40), 0.0);
  EXPECT_EQ(EstimateRangeFromHistogram(buckets, spec, 200, 300), 0.0);
}

TEST(EstimateRangeTest, ClampsToDomain) {
  HistogramSpec spec(1, 100, 10);
  std::vector<double> buckets(10, 50.0);
  EXPECT_NEAR(EstimateRangeFromHistogram(buckets, spec, -100, 200), 500.0,
              1e-9);
}

}  // namespace
}  // namespace dhs
