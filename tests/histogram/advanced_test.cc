#include "histogram/advanced.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "common/random.h"
#include "common/zipf.h"
#include "dht/chord.h"
#include "hashing/hasher.h"
#include "relation/relation.h"

namespace dhs {
namespace {

std::vector<double> StepFrequencies() {
  // Three flat plateaus: 10 x 100, 10 x 50, 10 x 5.
  std::vector<double> f;
  for (int i = 0; i < 10; ++i) f.push_back(100);
  for (int i = 0; i < 10; ++i) f.push_back(50);
  for (int i = 0; i < 10; ++i) f.push_back(5);
  return f;
}

double TotalOf(const std::vector<VarBucket>& buckets) {
  double total = 0.0;
  for (const auto& b : buckets) total += b.total;
  return total;
}

void ExpectPartitionInvariants(const std::vector<VarBucket>& buckets,
                               int domain) {
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.front().lo_index, 0);
  EXPECT_EQ(buckets.back().hi_index, domain - 1);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].lo_index, buckets[i - 1].hi_index + 1);
  }
}

TEST(MaxDiffTest, CutsAtPlateauEdges) {
  const auto frequencies = StepFrequencies();
  auto buckets = BuildMaxDiffHistogram(frequencies, 3);
  ASSERT_TRUE(buckets.ok());
  ASSERT_EQ(buckets->size(), 3u);
  ExpectPartitionInvariants(*buckets, 30);
  // The two biggest adjacent differences are exactly the plateau edges.
  EXPECT_EQ((*buckets)[0].hi_index, 9);
  EXPECT_EQ((*buckets)[1].hi_index, 19);
  EXPECT_DOUBLE_EQ((*buckets)[0].total, 1000);
  EXPECT_DOUBLE_EQ((*buckets)[1].total, 500);
  EXPECT_DOUBLE_EQ((*buckets)[2].total, 50);
}

TEST(MaxDiffTest, SingleBucketIsWholeDomain) {
  auto buckets = BuildMaxDiffHistogram(StepFrequencies(), 1);
  ASSERT_TRUE(buckets.ok());
  ASSERT_EQ(buckets->size(), 1u);
  EXPECT_DOUBLE_EQ((*buckets)[0].total, 1550);
}

TEST(MaxDiffTest, RejectsBadArgs) {
  EXPECT_FALSE(BuildMaxDiffHistogram({}, 1).ok());
  EXPECT_FALSE(BuildMaxDiffHistogram({1, 2}, 0).ok());
  EXPECT_FALSE(BuildMaxDiffHistogram({1, 2}, 3).ok());
}

TEST(VOptimalTest, ZeroSseOnPlateaus) {
  // Three perfectly flat plateaus can be covered with zero variance.
  const auto frequencies = StepFrequencies();
  auto buckets = BuildVOptimalHistogram(frequencies, 3);
  ASSERT_TRUE(buckets.ok());
  ExpectPartitionInvariants(*buckets, 30);
  EXPECT_NEAR(SseOfPartition(frequencies, *buckets), 0.0, 1e-9);
}

TEST(VOptimalTest, MatchesBruteForceOnSmallInput) {
  const std::vector<double> frequencies = {9, 1, 1, 8, 8, 2, 7};
  auto buckets = BuildVOptimalHistogram(frequencies, 3);
  ASSERT_TRUE(buckets.ok());
  const double dp_sse = SseOfPartition(frequencies, *buckets);
  // Brute force over all 2-cut positions.
  double best = 1e100;
  const int v = static_cast<int>(frequencies.size());
  for (int c1 = 1; c1 < v; ++c1) {
    for (int c2 = c1 + 1; c2 < v; ++c2) {
      std::vector<VarBucket> candidate = {
          {0, c1 - 1, 0}, {c1, c2 - 1, 0}, {c2, v - 1, 0}};
      for (auto& b : candidate) {
        b.total = std::accumulate(frequencies.begin() + b.lo_index,
                                  frequencies.begin() + b.hi_index + 1, 0.0);
      }
      best = std::min(best, SseOfPartition(frequencies, candidate));
    }
  }
  EXPECT_NEAR(dp_sse, best, 1e-9);
}

TEST(VOptimalTest, NeverWorseThanMaxDiffOrEquiWidth) {
  Rng rng(1);
  ZipfGenerator zipf(60, 0.9);
  std::vector<double> frequencies(60, 0.0);
  for (int i = 0; i < 20000; ++i) frequencies[zipf.Sample(rng) - 1] += 1;

  auto voptimal = BuildVOptimalHistogram(frequencies, 8);
  auto maxdiff = BuildMaxDiffHistogram(frequencies, 8);
  ASSERT_TRUE(voptimal.ok());
  ASSERT_TRUE(maxdiff.ok());
  // Equi-width partition with 8 buckets.
  std::vector<VarBucket> equi;
  for (int b = 0; b < 8; ++b) {
    VarBucket bucket;
    bucket.lo_index = b * 60 / 8;
    bucket.hi_index = (b + 1) * 60 / 8 - 1;
    bucket.total = std::accumulate(frequencies.begin() + bucket.lo_index,
                                   frequencies.begin() + bucket.hi_index + 1,
                                   0.0);
    equi.push_back(bucket);
  }
  const double sse_vopt = SseOfPartition(frequencies, *voptimal);
  EXPECT_LE(sse_vopt, SseOfPartition(frequencies, *maxdiff) + 1e-9);
  EXPECT_LE(sse_vopt, SseOfPartition(frequencies, equi) + 1e-9);
}

TEST(VOptimalTest, BucketCountEqualsDomainIsExact) {
  const std::vector<double> frequencies = {3, 1, 4, 1, 5};
  auto buckets = BuildVOptimalHistogram(frequencies, 5);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->size(), 5u);
  EXPECT_NEAR(SseOfPartition(frequencies, *buckets), 0.0, 1e-12);
}

TEST(VarBucketRangeTest, EstimatesWithInterpolation) {
  const std::vector<VarBucket> buckets = {{0, 9, 100}, {10, 19, 1000}};
  EXPECT_DOUBLE_EQ(EstimateRangeFromVarBuckets(buckets, 0, 19), 1100);
  EXPECT_DOUBLE_EQ(EstimateRangeFromVarBuckets(buckets, 0, 4), 50);
  EXPECT_DOUBLE_EQ(EstimateRangeFromVarBuckets(buckets, 5, 14), 550);
  EXPECT_DOUBLE_EQ(EstimateRangeFromVarBuckets(buckets, 19, 5), 0);
}

TEST(CompressedHistogramTest, HeavyHittersBecomeSingletons) {
  // One dominant cell (60% of mass) plus a flat tail.
  std::vector<double> frequencies(20, 10.0);
  frequencies[3] = 300.0;
  auto hist = BuildCompressedHistogram(frequencies, 5);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->singletons.size(), 1u);
  EXPECT_EQ(hist->singletons[0].first, 3);
  EXPECT_EQ(hist->singletons[0].second, 300.0);
  EXPECT_LE(hist->singletons.size() + hist->grouped.size(), 5u);
  EXPECT_NEAR(hist->TotalCount(), 300.0 + 19 * 10.0, 1e-9);
}

TEST(CompressedHistogramTest, UniformDataHasNoSingletons) {
  std::vector<double> frequencies(30, 5.0);
  auto hist = BuildCompressedHistogram(frequencies, 6);
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE(hist->singletons.empty());
  EXPECT_EQ(hist->grouped.size(), 6u);
  // Equi-sum on uniform data: every bucket carries ~the same mass.
  for (const auto& bucket : hist->grouped) {
    EXPECT_NEAR(bucket.total, 25.0, 5.0 + 1e-9);
  }
}

TEST(CompressedHistogramTest, SingletonRangeEstimatesAreExact) {
  std::vector<double> frequencies(20, 10.0);
  frequencies[3] = 300.0;
  frequencies[15] = 400.0;
  auto hist = BuildCompressedHistogram(frequencies, 6);
  ASSERT_TRUE(hist.ok());
  // Point queries on singletons are exact.
  EXPECT_DOUBLE_EQ(EstimateRangeFromCompressed(*hist, 3, 3), 300.0);
  EXPECT_DOUBLE_EQ(EstimateRangeFromCompressed(*hist, 15, 15), 400.0);
  // Full range is the exact total.
  EXPECT_NEAR(EstimateRangeFromCompressed(*hist, 0, 19),
              300.0 + 400.0 + 18 * 10.0, 1e-9);
}

TEST(CompressedHistogramTest, BeatsEquiWidthOnSkew) {
  // Zipf-ish data: compressed histograms were invented for exactly this.
  Rng rng(2);
  ZipfGenerator zipf(50, 1.1);
  std::vector<double> frequencies(50, 0.0);
  for (int i = 0; i < 30000; ++i) frequencies[zipf.Sample(rng) - 1] += 1;

  auto compressed = BuildCompressedHistogram(frequencies, 8);
  ASSERT_TRUE(compressed.ok());
  // 8-bucket equi-width baseline.
  std::vector<VarBucket> equi;
  for (int b = 0; b < 8; ++b) {
    VarBucket bucket;
    bucket.lo_index = b * 50 / 8;
    bucket.hi_index = (b + 1) * 50 / 8 - 1;
    bucket.total = std::accumulate(frequencies.begin() + bucket.lo_index,
                                   frequencies.begin() + bucket.hi_index + 1,
                                   0.0);
    equi.push_back(bucket);
  }
  // Compare point-query error over the head values.
  double compressed_err = 0.0;
  double equi_err = 0.0;
  for (int value = 0; value < 10; ++value) {
    const double truth = frequencies[static_cast<size_t>(value)];
    compressed_err +=
        std::fabs(EstimateRangeFromCompressed(*compressed, value, value) -
                  truth);
    equi_err +=
        std::fabs(EstimateRangeFromVarBuckets(equi, value, value) - truth);
  }
  EXPECT_LT(compressed_err, equi_err);
}

TEST(CompressedHistogramTest, RejectsBadArgs) {
  EXPECT_FALSE(BuildCompressedHistogram({}, 3).ok());
  EXPECT_FALSE(BuildCompressedHistogram({1, 2}, 0).ok());
}

TEST(CompressedHistogramTest, EmptyRangeIsZero) {
  std::vector<double> frequencies(10, 1.0);
  auto hist = BuildCompressedHistogram(frequencies, 3);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(EstimateRangeFromCompressed(*hist, 7, 3), 0.0);
}

TEST(AdvancedFromDhsTest, TwoPhaseConstruction) {
  ChordConfig chord;
  chord.hasher = "mix";
  ChordNetwork net(chord);
  Rng rng(1);
  for (int i = 0; i < 128; ++i) ASSERT_TRUE(net.AddNode(rng.Next()).ok());
  DhsConfig config;
  config.k = 24;
  config.m = 32;
  auto client_or = DhsClient::Create(&net, config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());

  RelationSpec spec;
  spec.name = "T";
  spec.num_tuples = 80000;
  spec.domain_size = 100;
  spec.zipf_theta = 1.0;  // strong skew: variable widths should help
  const Relation relation = RelationGenerator::Generate(spec, 2);
  const HistogramSpec cell_spec(1, 100, 50);
  DhsHistogram base(&client, cell_spec, 7);
  MixHasher hasher(3);
  const auto assignment = AssignTuplesToNodes(relation, net.NodeIds(), rng);
  for (const auto& [node, tuples] : assignment) {
    std::vector<std::pair<uint64_t, int64_t>> items;
    for (uint64_t t : tuples) {
      items.emplace_back(hasher.HashU64(relation.TupleId(t)),
                         relation.Value(t));
    }
    ASSERT_TRUE(base.InsertBatch(node, items, rng).ok());
  }

  for (auto kind : {AdvancedHistogramKind::kMaxDiff,
                    AdvancedHistogramKind::kVOptimal}) {
    auto result =
        BuildAdvancedFromDhs(base, kind, 8, net.RandomNode(rng), rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->buckets.size(), 8u);
    EXPECT_EQ(result->base_cells.size(), 50u);
    ExpectPartitionInvariants(result->buckets, 50);
    // The summary's total must track the relation cardinality.
    EXPECT_NEAR(TotalOf(result->buckets),
                static_cast<double>(relation.NumTuples()),
                0.5 * static_cast<double>(relation.NumTuples()));
    // Under strong skew, the head cells deserve narrow buckets: the
    // first bucket should be far narrower than the domain/8 average.
    EXPECT_LT(result->buckets.front().Width(), 50 / 8 + 1);
    // The sweep cost is that of ONE multi-metric count.
    EXPECT_GT(result->cost.hops, 0);
    EXPECT_LT(result->cost.hops, 400);
  }
}

TEST(VarBucketRangeTest, TotalsPreserved) {
  const auto frequencies = StepFrequencies();
  for (int b : {1, 2, 5, 15}) {
    auto buckets = BuildVOptimalHistogram(frequencies, b);
    ASSERT_TRUE(buckets.ok());
    EXPECT_NEAR(TotalOf(*buckets), 1550.0, 1e-9) << b;
  }
}

}  // namespace
}  // namespace dhs
