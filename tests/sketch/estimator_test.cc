#include "sketch/estimator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dhs {
namespace {

TEST(LogLogAlphaTest, ApproachesAsymptote) {
  // alpha_m -> 0.39701 as m -> infinity (Durand-Flajolet).
  EXPECT_NEAR(LogLogAlpha(1024), 0.39701, 0.001);
  EXPECT_NEAR(LogLogAlpha(65536), 0.39701, 0.0005);
}

TEST(LogLogAlphaTest, SmallMValues) {
  // The closed form rises monotonically toward the 0.39701 asymptote.
  EXPECT_LT(LogLogAlpha(2), LogLogAlpha(4));
  EXPECT_LT(LogLogAlpha(4), LogLogAlpha(16));
  EXPECT_LT(LogLogAlpha(16), LogLogAlpha(1024));
  EXPECT_NEAR(LogLogAlpha(16), 0.376, 0.01);
}

TEST(SuperLogLogAlphaTest, InterpolatesSmoothly) {
  const double a256 = SuperLogLogAlpha(256);
  const double a512 = SuperLogLogAlpha(512);
  const double a384 = SuperLogLogAlpha(384);
  EXPECT_GT(a384, std::min(a256, a512) - 1e-9);
  EXPECT_LT(a384, std::max(a256, a512) + 1e-9);
}

TEST(SuperLogLogAlphaTest, ClampsOutsideTable) {
  EXPECT_EQ(SuperLogLogAlpha(2), SuperLogLogAlpha(16));
  EXPECT_EQ(SuperLogLogAlpha(1 << 15), SuperLogLogAlpha(1 << 13));
}

TEST(PcsaEstimateTest, AllZeroIsEmpty) {
  EXPECT_EQ(PcsaEstimateFromM(std::vector<int>(64, 0)), 0.0);
}

TEST(PcsaEstimateTest, KnownFormulaValue) {
  // m = 4 bitmaps all with M = 10: E = m/0.77351 * 2^10 / (1 + 0.31/4).
  std::vector<int> m(4, 10);
  const double expected = 4.0 / 0.77351 * 1024.0 / (1.0 + 0.31 / 4.0);
  EXPECT_NEAR(PcsaEstimateFromM(m, true), expected, 1e-9);
  EXPECT_NEAR(PcsaEstimateFromM(m, false), 4.0 / 0.77351 * 1024.0, 1e-9);
}

TEST(PcsaEstimateTest, MonotoneInM) {
  std::vector<int> low(16, 8);
  std::vector<int> high(16, 9);
  EXPECT_LT(PcsaEstimateFromM(low), PcsaEstimateFromM(high));
}

TEST(SuperLogLogEstimateTest, AllEmptyIsZero) {
  EXPECT_EQ(SuperLogLogEstimateFromM(std::vector<int>(64, -1)), 0.0);
}

TEST(SuperLogLogEstimateTest, TruncationDropsLargest) {
  // 10 registers: nine at 10 and one wild outlier at 30. With theta0=0.7
  // the outlier is discarded, so the estimate is far below the
  // outlier-inflated untruncated value.
  std::vector<int> m(10, 10);
  m[0] = 30;
  const double truncated = SuperLogLogEstimateFromM(m, 0.7);
  const double full = SuperLogLogEstimateFromM(m, 1.0);
  EXPECT_LT(truncated, full);
}

TEST(SuperLogLogEstimateTest, NegativeEntriesCountAsZero) {
  std::vector<int> with_neg = {-1, 5, 5, 5};
  std::vector<int> with_zero = {0, 5, 5, 5};
  EXPECT_EQ(SuperLogLogEstimateFromM(with_neg),
            SuperLogLogEstimateFromM(with_zero));
}

TEST(SuperLogLogEstimateTest, ScalesExponentially) {
  std::vector<int> m8(64, 8);
  std::vector<int> m9(64, 9);
  EXPECT_NEAR(SuperLogLogEstimateFromM(m9) / SuperLogLogEstimateFromM(m8),
              2.0, 1e-9);
}

TEST(SuperLogLogHashBitsTest, PaperEquationThree) {
  // H0 = log m + ceil(log(n_max / m) + 3)
  EXPECT_EQ(SuperLogLogHashBits(512, uint64_t{1} << 32),
            9 + static_cast<int>(std::ceil(32.0 - 9.0 + 3.0)));
  EXPECT_EQ(SuperLogLogHashBits(1, 1024), 0 + 13);
}

TEST(SuperLogLogHashBitsTest, GrowsWithCardinality) {
  EXPECT_LT(SuperLogLogHashBits(64, 1 << 20),
            SuperLogLogHashBits(64, 1ull << 40));
}

}  // namespace
}  // namespace dhs
