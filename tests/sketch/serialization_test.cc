// Wire-format tests for the three sketch families: round-trips across
// the parameter grid, strict rejection of truncated/extended buffers,
// and corrupted headers/registers coming back as error Status values
// (never a crash or a silently wrong sketch). The fuzz harness
// (tests/fuzz/fuzz_sketch_deserialize.cc) covers random inputs; this
// file pins down the specific corruption classes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/hasher.h"
#include "sketch/hyperloglog.h"
#include "sketch/loglog.h"
#include "sketch/pcsa.h"

namespace dhs {
namespace {

// Every strict prefix and every one-byte extension of a valid encoding
// must be rejected: the formats are fixed-size given their header, so
// no other length can be legal.
template <typename Sketch>
void ExpectLengthStrict(const std::string& wire) {
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(Sketch::Deserialize(wire.substr(0, len)).ok())
        << "accepted a " << len << "-byte prefix of a " << wire.size()
        << "-byte encoding";
  }
  EXPECT_FALSE(Sketch::Deserialize(wire + '\0').ok()) << "accepted a tail";
}

std::string WithByte(const std::string& wire, size_t at, uint8_t value) {
  std::string out = wire;
  out[at] = static_cast<char>(value);
  return out;
}

// Overwrite the little-endian u32 at `at` (both headers use two of them).
std::string WithU32(const std::string& wire, size_t at, uint32_t value) {
  std::string out = wire;
  for (size_t i = 0; i < 4; ++i) {
    out[at + i] = static_cast<char>(value >> (8 * i));
  }
  return out;
}

TEST(PcsaSerializationTest, RoundTripGrid) {
  MixHasher hasher(11);
  uint64_t salt = 0;
  for (int m : {1, 4, 16, 64}) {
    for (int bits : {4, 7, 24, 64}) {
      for (int items : {0, 300}) {
        PcsaSketch sketch(m, bits);
        for (int i = 0; i < items; ++i) {
          sketch.AddHash(hasher.HashU64(salt++));
        }
        const std::string wire = sketch.Serialize();
        EXPECT_EQ(wire.size(), sketch.SerializedBytes());
        auto back = PcsaSketch::Deserialize(wire);
        ASSERT_TRUE(back.ok()) << "m=" << m << " bits=" << bits;
        EXPECT_EQ(back->Serialize(), wire);
        EXPECT_EQ(back->ObservablesM(), sketch.ObservablesM());
        EXPECT_DOUBLE_EQ(back->Estimate(), sketch.Estimate());
      }
    }
  }
}

TEST(PcsaSerializationTest, RejectsEveryTruncation) {
  PcsaSketch sketch(16, 24);
  MixHasher hasher(12);
  for (uint64_t i = 0; i < 200; ++i) sketch.AddHash(hasher.HashU64(i));
  ExpectLengthStrict<PcsaSketch>(sketch.Serialize());
}

TEST(PcsaSerializationTest, RejectsBadHeaders) {
  const std::string wire = PcsaSketch(16, 24).Serialize();
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 0, 0)).ok());
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 0, 3)).ok());
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 0, 1u << 17)).ok());
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 4, 3)).ok());
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 4, 65)).ok());
  // Consistent header changes still fail on the now-wrong payload size.
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 0, 8)).ok());
  EXPECT_FALSE(PcsaSketch::Deserialize(WithU32(wire, 4, 32)).ok());
}

TEST(PcsaSerializationTest, RejectsStrayBitsBeyondBitmapWidth) {
  // bits = 7 packs each bitmap into one byte with the top bit unused;
  // setting it yields a non-canonical encoding that must be rejected
  // rather than round-tripped lossily.
  const std::string wire = PcsaSketch(4, 7).Serialize();
  ASSERT_EQ(wire.size(), 8u + 4u);
  for (size_t i = 8; i < wire.size(); ++i) {
    const auto corrupted = WithByte(wire, i, 0x80);
    EXPECT_FALSE(PcsaSketch::Deserialize(corrupted).ok())
        << "stray bit accepted in bitmap " << (i - 8);
  }
  // The same byte value is legal when the width covers it.
  const std::string wide = PcsaSketch(4, 8).Serialize();
  EXPECT_TRUE(PcsaSketch::Deserialize(WithByte(wide, 8, 0x80)).ok());
}

TEST(LogLogSerializationTest, RoundTripGrid) {
  MixHasher hasher(13);
  uint64_t salt = 1000;
  for (int m : {2, 16, 256}) {
    for (int bits : {4, 24, 64}) {
      for (auto mode :
           {LogLogSketch::Mode::kPlain, LogLogSketch::Mode::kSuperTrunc}) {
        for (int items : {0, 300}) {
          LogLogSketch sketch(m, bits, mode);
          for (int i = 0; i < items; ++i) {
            sketch.AddHash(hasher.HashU64(salt++));
          }
          const std::string wire = sketch.Serialize();
          EXPECT_EQ(wire.size(), sketch.SerializedBytes());
          auto back = LogLogSketch::Deserialize(wire);
          ASSERT_TRUE(back.ok()) << "m=" << m << " bits=" << bits;
          EXPECT_EQ(back->Serialize(), wire);
          EXPECT_EQ(back->ObservablesM(), sketch.ObservablesM());
          EXPECT_DOUBLE_EQ(back->Estimate(), sketch.Estimate());
        }
      }
    }
  }
}

TEST(LogLogSerializationTest, RejectsEveryTruncation) {
  LogLogSketch sketch(16, 24, LogLogSketch::Mode::kSuperTrunc);
  MixHasher hasher(14);
  for (uint64_t i = 0; i < 200; ++i) sketch.AddHash(hasher.HashU64(i));
  ExpectLengthStrict<LogLogSketch>(sketch.Serialize());
}

TEST(LogLogSerializationTest, RejectsBadHeadersAndRegisters) {
  const std::string wire =
      LogLogSketch(16, 24, LogLogSketch::Mode::kPlain).Serialize();
  EXPECT_FALSE(LogLogSketch::Deserialize(WithU32(wire, 0, 1)).ok());
  EXPECT_FALSE(LogLogSketch::Deserialize(WithU32(wire, 0, 12)).ok());
  EXPECT_FALSE(LogLogSketch::Deserialize(WithU32(wire, 4, 0)).ok());
  EXPECT_FALSE(LogLogSketch::Deserialize(WithU32(wire, 4, 100)).ok());
  EXPECT_FALSE(LogLogSketch::Deserialize(WithByte(wire, 8, 2)).ok())
      << "mode byte must be 0 or 1";
  // Register values must be empty (0xff) or < bits: 24 itself is out of
  // range, as is anything between bits and 0xfe.
  EXPECT_TRUE(LogLogSketch::Deserialize(WithByte(wire, 9, 23)).ok());
  EXPECT_FALSE(LogLogSketch::Deserialize(WithByte(wire, 9, 24)).ok());
  EXPECT_FALSE(LogLogSketch::Deserialize(WithByte(wire, 9, 0xfe)).ok());
  EXPECT_TRUE(LogLogSketch::Deserialize(WithByte(wire, 9, 0xff)).ok());
}

TEST(LogLogSerializationTest, ModeSurvivesRoundTrip) {
  for (auto mode :
       {LogLogSketch::Mode::kPlain, LogLogSketch::Mode::kSuperTrunc}) {
    LogLogSketch sketch(16, 24, mode);
    MixHasher hasher(15);
    for (uint64_t i = 0; i < 5000; ++i) sketch.AddHash(hasher.HashU64(i));
    auto back = LogLogSketch::Deserialize(sketch.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->mode(), mode);
    // Estimates differ across modes on this workload, so an encoding
    // that dropped the mode byte's meaning would show up here.
    EXPECT_DOUBLE_EQ(back->Estimate(), sketch.Estimate());
  }
}

TEST(HllSerializationTest, RoundTripGrid) {
  MixHasher hasher(16);
  uint64_t salt = 2000;
  for (int m : {16, 64, 1024}) {
    for (int bits : {4, 24, 64}) {
      for (int items : {0, 300}) {
        HllSketch sketch(m, bits);
        for (int i = 0; i < items; ++i) {
          sketch.AddHash(hasher.HashU64(salt++));
        }
        const std::string wire = sketch.Serialize();
        EXPECT_EQ(wire.size(), sketch.SerializedBytes());
        auto back = HllSketch::Deserialize(wire);
        ASSERT_TRUE(back.ok()) << "m=" << m << " bits=" << bits;
        EXPECT_EQ(back->Serialize(), wire);
        EXPECT_EQ(back->ObservablesM(), sketch.ObservablesM());
        EXPECT_DOUBLE_EQ(back->Estimate(), sketch.Estimate());
      }
    }
  }
}

TEST(HllSerializationTest, RejectsEveryTruncation) {
  HllSketch sketch(16, 24);
  MixHasher hasher(17);
  for (uint64_t i = 0; i < 200; ++i) sketch.AddHash(hasher.HashU64(i));
  ExpectLengthStrict<HllSketch>(sketch.Serialize());
}

TEST(HllSerializationTest, RejectsBadHeadersAndRegisters) {
  const std::string wire = HllSketch(16, 24).Serialize();
  EXPECT_FALSE(HllSketch::Deserialize(WithU32(wire, 0, 8)).ok())
      << "m below the HLL minimum of 16";
  EXPECT_FALSE(HllSketch::Deserialize(WithU32(wire, 0, 17)).ok());
  EXPECT_FALSE(HllSketch::Deserialize(WithU32(wire, 4, 3)).ok());
  EXPECT_FALSE(HllSketch::Deserialize(WithU32(wire, 4, 65)).ok());
  EXPECT_TRUE(HllSketch::Deserialize(WithByte(wire, 8, 23)).ok());
  EXPECT_FALSE(HllSketch::Deserialize(WithByte(wire, 8, 24)).ok());
  EXPECT_FALSE(HllSketch::Deserialize(WithByte(wire, 8, 0xfe)).ok());
  EXPECT_TRUE(HllSketch::Deserialize(WithByte(wire, 8, 0xff)).ok());
}

TEST(CrossFormatTest, OtherFamiliesBytesAreRejectedOrHarmless) {
  MixHasher hasher(18);
  PcsaSketch pcsa(16, 24);
  LogLogSketch loglog(16, 24, LogLogSketch::Mode::kSuperTrunc);
  HllSketch hll(16, 24);
  for (uint64_t i = 0; i < 100; ++i) {
    pcsa.AddHash(hasher.HashU64(i));
    loglog.AddHash(hasher.HashU64(i));
    hll.AddHash(hasher.HashU64(i));
  }
  // The formats share header layouts, so cross-parsing may accept a
  // buffer — but it must never crash, and anything accepted must
  // re-serialize canonically (same guarantee the fuzz target enforces).
  for (const std::string& wire :
       {pcsa.Serialize(), loglog.Serialize(), hll.Serialize()}) {
    if (auto s = PcsaSketch::Deserialize(wire); s.ok()) {
      EXPECT_EQ(s->Serialize(), wire);
    }
    if (auto s = LogLogSketch::Deserialize(wire); s.ok()) {
      EXPECT_EQ(s->Serialize(), wire);
    }
    if (auto s = HllSketch::Deserialize(wire); s.ok()) {
      EXPECT_EQ(s->Serialize(), wire);
    }
  }
}

}  // namespace
}  // namespace dhs
