// Cross-cutting property tests over all three sketch families:
// merge algebra (commutative, associative, idempotent), union
// monotonicity, and serialization robustness against corruption.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "sketch/hyperloglog.h"
#include "sketch/loglog.h"
#include "sketch/pcsa.h"

namespace dhs {
namespace {

enum class Kind { kPcsa, kLogLog, kHll };

std::unique_ptr<CardinalityEstimator> Make(Kind kind, int m, int bits) {
  switch (kind) {
    case Kind::kPcsa:
      return std::make_unique<PcsaSketch>(m, bits);
    case Kind::kLogLog:
      return std::make_unique<LogLogSketch>(m, bits);
    case Kind::kHll:
      return std::make_unique<HllSketch>(m, bits);
  }
  return nullptr;
}

class SketchPropertyTest : public ::testing::TestWithParam<Kind> {
 protected:
  static constexpr int kM = 64;
  static constexpr int kBits = 24;

  std::unique_ptr<CardinalityEstimator> Fresh() const {
    return Make(GetParam(), kM, kBits);
  }
};

TEST_P(SketchPropertyTest, MergeIsCommutative) {
  Rng rng(1);
  auto a1 = Fresh();
  auto b1 = Fresh();
  for (int i = 0; i < 3000; ++i) {
    const uint64_t h = rng.Next();
    (i % 3 == 0 ? *a1 : *b1).AddHash(h);
  }
  // Copy state by re-adding (interface-level test: merge both ways).
  Rng rng2(1);
  auto a2 = Fresh();
  auto b2 = Fresh();
  for (int i = 0; i < 3000; ++i) {
    const uint64_t h = rng2.Next();
    (i % 3 == 0 ? *a2 : *b2).AddHash(h);
  }
  ASSERT_TRUE(a1->Merge(*b1).ok());  // a1 = A u B
  ASSERT_TRUE(b2->Merge(*a2).ok());  // b2 = B u A
  EXPECT_EQ(a1->Estimate(), b2->Estimate());
}

TEST_P(SketchPropertyTest, MergeIsAssociative) {
  auto build = [&](int which) {
    Rng rng(7);
    auto sketch = Fresh();
    for (int i = 0; i < 3000; ++i) {
      const uint64_t h = rng.Next();
      if (i % 3 == which) sketch->AddHash(h);
    }
    return sketch;
  };
  // (A u B) u C
  auto left = build(0);
  {
    auto b = build(1);
    ASSERT_TRUE(left->Merge(*b).ok());
    auto c = build(2);
    ASSERT_TRUE(left->Merge(*c).ok());
  }
  // A u (B u C)
  auto right = build(0);
  {
    auto bc = build(1);
    auto c = build(2);
    ASSERT_TRUE(bc->Merge(*c).ok());
    ASSERT_TRUE(right->Merge(*bc).ok());
  }
  EXPECT_EQ(left->Estimate(), right->Estimate());
}

TEST_P(SketchPropertyTest, MergeIsIdempotent) {
  Rng rng(3);
  auto a = Fresh();
  auto same = Fresh();
  for (int i = 0; i < 2000; ++i) {
    const uint64_t h = rng.Next();
    a->AddHash(h);
    same->AddHash(h);
  }
  const double before = a->Estimate();
  ASSERT_TRUE(a->Merge(*same).ok());
  EXPECT_EQ(a->Estimate(), before);
}

TEST_P(SketchPropertyTest, UnionDominatesParts) {
  Rng rng(4);
  auto a = Fresh();
  auto b = Fresh();
  for (int i = 0; i < 5000; ++i) {
    const uint64_t h = rng.Next();
    (i % 2 == 0 ? *a : *b).AddHash(h);
  }
  const double ea = a->Estimate();
  const double eb = b->Estimate();
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_GE(a->Estimate(), std::max(ea, eb));
}

TEST_P(SketchPropertyTest, AddingNeverDecreasesEstimate) {
  Rng rng(5);
  auto sketch = Fresh();
  double previous = 0.0;
  for (int step = 0; step < 20; ++step) {
    for (int i = 0; i < 500; ++i) sketch->AddHash(rng.Next());
    const double estimate = sketch->Estimate();
    EXPECT_GE(estimate, previous - 1e-9) << step;
    previous = estimate;
  }
}

TEST_P(SketchPropertyTest, ClearRestoresEmptyState) {
  Rng rng(6);
  auto sketch = Fresh();
  for (int i = 0; i < 1000; ++i) sketch->AddHash(rng.Next());
  sketch->Clear();
  EXPECT_EQ(sketch->Estimate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSketches, SketchPropertyTest,
                         ::testing::Values(Kind::kPcsa, Kind::kLogLog,
                                           Kind::kHll),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Kind::kPcsa:
                               return "Pcsa";
                             case Kind::kLogLog:
                               return "LogLog";
                             default:
                               return "Hll";
                           }
                         });

// Serialization corruption fuzzing: random byte flips must never crash;
// every successful parse must produce a sketch with in-range state.
TEST(SerializationFuzzTest, PcsaCorruptionIsSafe) {
  Rng rng(10);
  PcsaSketch sketch(32, 24);
  for (int i = 0; i < 2000; ++i) sketch.AddHash(rng.Next());
  const std::string bytes = sketch.Serialize();
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = bytes;
    const size_t pos = rng.UniformU64(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.Next());
    if (rng.Bernoulli(0.3) && corrupted.size() > 1) {
      corrupted.resize(rng.UniformU64(corrupted.size()));
    }
    auto parsed = PcsaSketch::Deserialize(corrupted);
    if (parsed.ok()) {
      EXPECT_GE(parsed->Estimate(), 0.0);
    }
  }
}

TEST(SerializationFuzzTest, LogLogCorruptionIsSafe) {
  Rng rng(11);
  LogLogSketch sketch(32, 24);
  for (int i = 0; i < 2000; ++i) sketch.AddHash(rng.Next());
  const std::string bytes = sketch.Serialize();
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = bytes;
    corrupted[rng.UniformU64(corrupted.size())] =
        static_cast<char>(rng.Next());
    auto parsed = LogLogSketch::Deserialize(corrupted);
    if (parsed.ok()) {
      for (int v : parsed->ObservablesM()) {
        EXPECT_GE(v, -1);
        EXPECT_LT(v, 24);
      }
    }
  }
}

TEST(SerializationFuzzTest, HllCorruptionIsSafe) {
  Rng rng(12);
  HllSketch sketch(32, 24);
  for (int i = 0; i < 2000; ++i) sketch.AddHash(rng.Next());
  const std::string bytes = sketch.Serialize();
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = bytes;
    corrupted[rng.UniformU64(corrupted.size())] =
        static_cast<char>(rng.Next());
    auto parsed = HllSketch::Deserialize(corrupted);
    if (parsed.ok()) {
      EXPECT_GE(parsed->Estimate(), 0.0);
    }
  }
}

}  // namespace
}  // namespace dhs
