#include "sketch/hyperloglog.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "sketch/loglog.h"

namespace dhs {
namespace {

TEST(HllAlphaTest, ReferenceConstants) {
  EXPECT_DOUBLE_EQ(HyperLogLogAlpha(16), 0.673);
  EXPECT_DOUBLE_EQ(HyperLogLogAlpha(32), 0.697);
  EXPECT_DOUBLE_EQ(HyperLogLogAlpha(64), 0.709);
  EXPECT_NEAR(HyperLogLogAlpha(1024), 0.7213 / (1 + 1.079 / 1024), 1e-12);
}

TEST(HllSketchTest, EmptyEstimatesZero) {
  HllSketch sketch(64, 24);
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.Estimate(), 0.0);
}

TEST(HllSketchTest, LinearCountingSmallRange) {
  // Tiny cardinalities (n << m) are exact-ish thanks to linear counting —
  // the regime where PCSA and LogLog formulas are badly biased.
  Rng rng(1);
  for (uint64_t n : {1u, 5u, 20u, 50u}) {
    HllSketch sketch(256, 24);
    for (uint64_t i = 0; i < n; ++i) sketch.AddHash(rng.Next());
    EXPECT_NEAR(sketch.Estimate(), static_cast<double>(n),
                std::max(2.0, 0.25 * static_cast<double>(n)))
        << n;
  }
}

TEST(HllSketchTest, DuplicateInsensitive) {
  HllSketch once(64, 24);
  HllSketch many(64, 24);
  Rng rng(2);
  std::vector<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.push_back(rng.Next());
  for (uint64_t h : hashes) once.AddHash(h);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t h : hashes) many.AddHash(h);
  }
  EXPECT_EQ(once.Estimate(), many.Estimate());
}

TEST(HllSketchTest, MergeMatchesUnion) {
  Rng rng(3);
  HllSketch a(64, 24);
  HllSketch b(64, 24);
  HllSketch both(64, 24);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t h = rng.Next();
    (i % 2 == 0 ? a : b).AddHash(h);
    both.AddHash(h);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Estimate(), both.Estimate());
}

TEST(HllSketchTest, MergeRejectsMismatch) {
  HllSketch a(64, 24);
  HllSketch b(32, 24);
  LogLogSketch c(64, 24);
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
  EXPECT_TRUE(a.Merge(c).IsInvalidArgument());
}

TEST(HllSketchTest, SerializeRoundTrip) {
  Rng rng(4);
  HllSketch sketch(128, 24);
  for (int i = 0; i < 3000; ++i) sketch.AddHash(rng.Next());
  auto restored = HllSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Estimate(), sketch.Estimate());
}

TEST(HllSketchTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(HllSketch::Deserialize("").ok());
  HllSketch sketch(64, 24);
  std::string bytes = sketch.Serialize();
  bytes.pop_back();
  EXPECT_FALSE(HllSketch::Deserialize(bytes).ok());
}

TEST(HllEstimateFromMTest, SharesObservablesWithLogLog) {
  // The same distributed observables feed both estimators.
  Rng rng(5);
  LogLogSketch sll(256, 24);
  for (int i = 0; i < 100000; ++i) sll.AddHash(rng.Next());
  const double hll_estimate = HyperLogLogEstimateFromM(sll.ObservablesM());
  EXPECT_NEAR(hll_estimate, 100000.0, 5 * 1.04 / 16.0 * 100000.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HllAccuracyTest, ErrorWithinTheory) {
  const int m = GetParam();
  Rng rng(3000 + m);
  constexpr uint64_t kN = 100000;
  StreamingStats errors;
  for (int trial = 0; trial < 12; ++trial) {
    HllSketch sketch(m, 32);
    for (uint64_t i = 0; i < kN; ++i) sketch.AddHash(rng.Next());
    errors.Add((sketch.Estimate() - kN) / static_cast<double>(kN));
  }
  const double standard_error = 1.04 / std::sqrt(static_cast<double>(m));
  EXPECT_LT(std::fabs(errors.mean()), 4 * standard_error) << m;
  EXPECT_LT(errors.stddev(), 3 * standard_error) << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HllAccuracyTest,
                         ::testing::Values(16, 64, 256, 1024));

}  // namespace
}  // namespace dhs
