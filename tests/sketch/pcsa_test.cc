#include "sketch/pcsa.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace dhs {
namespace {

TEST(PcsaSketchTest, EmptyEstimatesZero) {
  PcsaSketch sketch(64, 24);
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.Estimate(), 0.0);
}

TEST(PcsaSketchTest, DuplicateInsensitive) {
  PcsaSketch once(64, 24);
  PcsaSketch many(64, 24);
  Rng rng(1);
  std::vector<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.push_back(rng.Next());
  for (uint64_t h : hashes) once.AddHash(h);
  for (int round = 0; round < 5; ++round) {
    for (uint64_t h : hashes) many.AddHash(h);
  }
  EXPECT_EQ(once.Estimate(), many.Estimate());
}

TEST(PcsaSketchTest, SetAndTestBit) {
  PcsaSketch sketch(8, 24);
  EXPECT_FALSE(sketch.TestBit(3, 5));
  sketch.SetBit(3, 5);
  EXPECT_TRUE(sketch.TestBit(3, 5));
  EXPECT_FALSE(sketch.TestBit(3, 4));
  EXPECT_FALSE(sketch.TestBit(2, 5));
}

TEST(PcsaSketchTest, ObservablesTrackLeftmostZero) {
  PcsaSketch sketch(2, 24);
  auto m = sketch.ObservablesM();
  EXPECT_EQ(m[0], 0);
  sketch.SetBit(0, 0);
  sketch.SetBit(0, 1);
  sketch.SetBit(0, 3);
  m = sketch.ObservablesM();
  EXPECT_EQ(m[0], 2);
  EXPECT_EQ(m[1], 0);
}

TEST(PcsaSketchTest, MergeIsUnion) {
  Rng rng(2);
  PcsaSketch a(64, 24);
  PcsaSketch b(64, 24);
  PcsaSketch both(64, 24);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t h = rng.Next();
    if (i % 2 == 0) {
      a.AddHash(h);
    } else {
      b.AddHash(h);
    }
    both.AddHash(h);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Estimate(), both.Estimate());
}

TEST(PcsaSketchTest, MergeParameterMismatchFails) {
  PcsaSketch a(64, 24);
  PcsaSketch b(32, 24);
  PcsaSketch c(64, 16);
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
  EXPECT_TRUE(a.Merge(c).IsInvalidArgument());
}

TEST(PcsaSketchTest, MergeIsIdempotent) {
  Rng rng(3);
  PcsaSketch a(32, 24);
  for (int i = 0; i < 500; ++i) a.AddHash(rng.Next());
  PcsaSketch copy = a;
  ASSERT_TRUE(a.Merge(copy).ok());
  EXPECT_EQ(a.Estimate(), copy.Estimate());
}

TEST(PcsaSketchTest, ClearResets) {
  PcsaSketch sketch(16, 24);
  sketch.AddHash(12345);
  EXPECT_FALSE(sketch.Empty());
  sketch.Clear();
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.Estimate(), 0.0);
}

TEST(PcsaSketchTest, SerializeRoundTrip) {
  Rng rng(4);
  PcsaSketch sketch(128, 24);
  for (int i = 0; i < 5000; ++i) sketch.AddHash(rng.Next());
  const std::string bytes = sketch.Serialize();
  EXPECT_EQ(bytes.size(), sketch.SerializedBytes());
  auto restored = PcsaSketch::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Estimate(), sketch.Estimate());
  EXPECT_EQ(restored->num_bitmaps(), 128);
  EXPECT_EQ(restored->bits(), 24);
}

TEST(PcsaSketchTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PcsaSketch::Deserialize("").ok());
  EXPECT_FALSE(PcsaSketch::Deserialize("short").ok());
  PcsaSketch sketch(16, 24);
  std::string bytes = sketch.Serialize();
  bytes.pop_back();
  EXPECT_FALSE(PcsaSketch::Deserialize(bytes).ok());
  // Corrupt m to a non-power-of-two.
  std::string bad = sketch.Serialize();
  bad[0] = 3;
  EXPECT_FALSE(PcsaSketch::Deserialize(bad).ok());
}

TEST(PcsaSketchTest, SerializedBytesMatchesFormula) {
  PcsaSketch sketch(512, 24);
  // header 8 + 512 * ceil(24/8 = 3)
  EXPECT_EQ(sketch.SerializedBytes(), 8u + 512u * 3u);
}

// Accuracy sweep: relative error should be within ~4 standard errors of
// the published 0.78/sqrt(m) across m.
class PcsaAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(PcsaAccuracyTest, ErrorWithinTheory) {
  const int m = GetParam();
  Rng rng(1000 + m);
  constexpr uint64_t kN = 100000;
  StreamingStats errors;
  for (int trial = 0; trial < 12; ++trial) {
    PcsaSketch sketch(m, 24);
    for (uint64_t i = 0; i < kN; ++i) sketch.AddHash(rng.Next());
    errors.Add((sketch.Estimate() - kN) / static_cast<double>(kN));
  }
  const double standard_error = 0.78 / std::sqrt(static_cast<double>(m));
  EXPECT_LT(std::fabs(errors.mean()), 4 * standard_error) << "m=" << m;
  EXPECT_LT(errors.stddev(), 3 * standard_error) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PcsaAccuracyTest,
                         ::testing::Values(16, 64, 256, 1024));

}  // namespace
}  // namespace dhs
