#include "sketch/rho.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace dhs {
namespace {

TEST(RhoTest, ZeroSaturatesToBits) {
  EXPECT_EQ(Rho(0, 24), 24);
  EXPECT_EQ(Rho(0, 8), 8);
}

TEST(RhoTest, LeastSignificantOne) {
  EXPECT_EQ(Rho(1, 24), 0);
  EXPECT_EQ(Rho(2, 24), 1);
  EXPECT_EQ(Rho(0b101000, 24), 3);
  EXPECT_EQ(Rho(uint64_t{1} << 63, 64), 63);
}

TEST(RhoTest, ClampsToBits) {
  // rho of 2^30 with a 24-bit budget clamps to 24.
  EXPECT_EQ(Rho(uint64_t{1} << 30, 24), 24);
}

TEST(RhoTest, GeometricDistribution) {
  // P(rho = r) = 2^-(r+1) under uniform hashes.
  Rng rng(123);
  constexpr int kDraws = 1 << 18;
  int counts[8] = {0};
  for (int i = 0; i < kDraws; ++i) {
    const int r = Rho(rng.Next(), 64);
    if (r < 8) counts[r]++;
  }
  for (int r = 0; r < 8; ++r) {
    const double expected = kDraws * std::pow(2.0, -(r + 1));
    EXPECT_NEAR(counts[r], expected, 6 * std::sqrt(expected)) << r;
  }
}

TEST(LeastSignificantZeroTest, Basics) {
  EXPECT_EQ(LeastSignificantZero(0b0000, 24), 0);
  EXPECT_EQ(LeastSignificantZero(0b0001, 24), 1);
  EXPECT_EQ(LeastSignificantZero(0b0111, 24), 3);
  EXPECT_EQ(LeastSignificantZero(0b1011, 24), 2);
}

TEST(LeastSignificantZeroTest, SaturatedBitmap) {
  EXPECT_EQ(LeastSignificantZero(0xffffff, 24), 24);
  EXPECT_EQ(LeastSignificantZero(~uint64_t{0}, 64), 64);
}

TEST(MostSignificantOneTest, Basics) {
  EXPECT_EQ(MostSignificantOne(0, 24), -1);
  EXPECT_EQ(MostSignificantOne(1, 24), 0);
  EXPECT_EQ(MostSignificantOne(0b0110, 24), 2);
  EXPECT_EQ(MostSignificantOne(uint64_t{1} << 23, 24), 23);
}

TEST(MostSignificantOneTest, IgnoresBitsBeyondLength) {
  // Bit 30 is outside a 24-bit bitmap and must not count.
  EXPECT_EQ(MostSignificantOne((uint64_t{1} << 30) | 0b10, 24), 1);
  EXPECT_EQ(MostSignificantOne(uint64_t{1} << 30, 24), -1);
}

TEST(RhoIdentityTest, RhoAndScanAgree) {
  // Setting bit Rho(x) in an empty bitmap makes MostSignificantOne and
  // LeastSignificantZero consistent with that position.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.Next() | 1;  // ensure rho < 64
    const int r = Rho(x, 64);
    const uint64_t bitmap = uint64_t{1} << r;
    EXPECT_EQ(MostSignificantOne(bitmap, 64), r);
    EXPECT_EQ(LeastSignificantZero(bitmap, 64), r == 0 ? 1 : 0);
  }
}

}  // namespace
}  // namespace dhs
