#include "sketch/loglog.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace dhs {
namespace {

TEST(LogLogSketchTest, EmptyEstimatesZero) {
  LogLogSketch sketch(64, 24);
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.Estimate(), 0.0);
}

TEST(LogLogSketchTest, DuplicateInsensitive) {
  LogLogSketch once(64, 24);
  LogLogSketch many(64, 24);
  Rng rng(1);
  std::vector<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.push_back(rng.Next());
  for (uint64_t h : hashes) once.AddHash(h);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t h : hashes) many.AddHash(h);
  }
  EXPECT_EQ(once.Estimate(), many.Estimate());
}

TEST(LogLogSketchTest, RegistersTrackMaxRho) {
  LogLogSketch sketch(2, 24);
  auto m = sketch.ObservablesM();
  EXPECT_EQ(m[0], -1);
  sketch.OfferM(0, 5);
  sketch.OfferM(0, 3);  // lower value must not regress the register
  m = sketch.ObservablesM();
  EXPECT_EQ(m[0], 5);
  EXPECT_EQ(m[1], -1);
  sketch.OfferM(0, 9);
  EXPECT_EQ(sketch.ObservablesM()[0], 9);
}

TEST(LogLogSketchTest, MergeTakesMax) {
  LogLogSketch a(4, 24);
  LogLogSketch b(4, 24);
  a.OfferM(0, 3);
  a.OfferM(1, 7);
  b.OfferM(0, 5);
  b.OfferM(2, 2);
  ASSERT_TRUE(a.Merge(b).ok());
  const auto m = a.ObservablesM();
  EXPECT_EQ(m[0], 5);
  EXPECT_EQ(m[1], 7);
  EXPECT_EQ(m[2], 2);
  EXPECT_EQ(m[3], -1);
}

TEST(LogLogSketchTest, MergeMatchesUnionEstimate) {
  Rng rng(2);
  LogLogSketch a(64, 24);
  LogLogSketch b(64, 24);
  LogLogSketch both(64, 24);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t h = rng.Next();
    (i % 2 == 0 ? a : b).AddHash(h);
    both.AddHash(h);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Estimate(), both.Estimate());
}

TEST(LogLogSketchTest, MergeParameterMismatchFails) {
  LogLogSketch a(64, 24);
  LogLogSketch b(32, 24);
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
}

TEST(LogLogSketchTest, MergeRejectsOtherSketchType) {
  LogLogSketch a(64, 24);
  // A PcsaSketch is not a LogLogSketch; exercise the dynamic_cast guard
  // via the base interface.
  class Fake : public CardinalityEstimator {
   public:
    void AddHash(uint64_t) override {}
    double Estimate() const override { return 0; }
    int num_bitmaps() const override { return 64; }
    size_t SerializedBytes() const override { return 0; }
    Status Merge(const CardinalityEstimator&) override {
      return Status::OK();
    }
    void Clear() override {}
  };
  Fake fake;
  EXPECT_TRUE(a.Merge(fake).IsInvalidArgument());
}

TEST(LogLogSketchTest, ClearResets) {
  LogLogSketch sketch(16, 24);
  sketch.AddHash(999);
  EXPECT_FALSE(sketch.Empty());
  sketch.Clear();
  EXPECT_TRUE(sketch.Empty());
}

TEST(LogLogSketchTest, SerializeRoundTrip) {
  Rng rng(4);
  LogLogSketch sketch(128, 24, LogLogSketch::Mode::kSuperTrunc);
  for (int i = 0; i < 5000; ++i) sketch.AddHash(rng.Next());
  const std::string bytes = sketch.Serialize();
  EXPECT_EQ(bytes.size(), sketch.SerializedBytes());
  auto restored = LogLogSketch::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Estimate(), sketch.Estimate());
  EXPECT_EQ(restored->mode(), LogLogSketch::Mode::kSuperTrunc);
}

TEST(LogLogSketchTest, SerializePreservesEmptyRegisters) {
  LogLogSketch sketch(4, 24);
  sketch.OfferM(2, 7);
  auto restored = LogLogSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(restored.ok());
  const auto m = restored->ObservablesM();
  EXPECT_EQ(m[0], -1);
  EXPECT_EQ(m[2], 7);
}

TEST(LogLogSketchTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(LogLogSketch::Deserialize("").ok());
  LogLogSketch sketch(16, 24);
  std::string bytes = sketch.Serialize();
  bytes.pop_back();
  EXPECT_FALSE(LogLogSketch::Deserialize(bytes).ok());
  // Register value beyond `bits` must be rejected.
  std::string bad = sketch.Serialize();
  bad[9] = 60;
  EXPECT_FALSE(LogLogSketch::Deserialize(bad).ok());
}

TEST(LogLogSketchTest, SpaceIsOneBytePerRegister) {
  LogLogSketch sketch(512, 24);
  EXPECT_EQ(sketch.SerializedBytes(), 9u + 512u);
  // Much smaller than PCSA at equal m (the [11] space claim).
}

// Accuracy sweep for the truncated (super-LogLog) estimator: standard
// error ~= 1.05 / sqrt(m).
class SllAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(SllAccuracyTest, ErrorWithinTheory) {
  const int m = GetParam();
  Rng rng(2000 + m);
  constexpr uint64_t kN = 100000;
  StreamingStats errors;
  for (int trial = 0; trial < 12; ++trial) {
    LogLogSketch sketch(m, 32);
    for (uint64_t i = 0; i < kN; ++i) sketch.AddHash(rng.Next());
    errors.Add((sketch.Estimate() - kN) / static_cast<double>(kN));
  }
  const double standard_error = 1.05 / std::sqrt(static_cast<double>(m));
  EXPECT_LT(std::fabs(errors.mean()), 4 * standard_error) << "m=" << m;
  EXPECT_LT(errors.stddev(), 3 * standard_error) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SllAccuracyTest,
                         ::testing::Values(16, 64, 256, 1024));

TEST(LogLogModeTest, PlainModeAlsoEstimates) {
  Rng rng(5);
  LogLogSketch sketch(256, 32, LogLogSketch::Mode::kPlain);
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) sketch.AddHash(rng.Next());
  // Plain LogLog: stderr ~= 1.30/sqrt(m); allow 5 sigma.
  EXPECT_NEAR(sketch.Estimate(), static_cast<double>(kN),
              5 * 1.30 / std::sqrt(256.0) * kN);
}

}  // namespace
}  // namespace dhs
