// Fuzz target: DHS wire-frame parsers (dht/wire.h).
//
// Feeds arbitrary bytes to ParseFrame, AccountedPayloadBytes,
// RoutedDstKey and every typed decoder. Contract under test:
//
//   * no crash / UB on any input — malformed frames come back as error
//     Status values, never a CHECK failure or out-of-bounds read;
//   * accepted frames are canonical: Encode(Decode(b)) == b
//     byte-for-byte for every decoder that accepts b (strict parsing
//     leaves no room for two encodings of the same message);
//   * parser agreement: a frame any typed decoder accepts also parses
//     at the header level, and its accounted payload never exceeds the
//     body.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "dht/store.h"
#include "dht/wire.h"

namespace {

using dhs::AccountedPayloadBytes;
using dhs::FrameType;
using dhs::ParseFrame;
using dhs::RoutedDstKey;

template <typename Decoded, typename Decode, typename Encode>
void CheckCanonical(const std::string& input, Decode decode, Encode encode,
                    const char* what) {
  auto decoded = decode(input);
  if (!decoded.ok()) return;  // rejected: fine, as long as it's a Status
  const std::string round = encode(*decoded);
  CHECK(round == input) << "accepted " << what << " frame is not canonical: "
                        << input.size() << " bytes in, " << round.size()
                        << " bytes back";
  // Anything a typed decoder accepts must be a well-formed frame with a
  // payload no larger than its body.
  auto view = ParseFrame(input);
  CHECK_OK(view);
  auto accounted = AccountedPayloadBytes(input);
  CHECK_OK(accounted);
  CHECK(*accounted <= view->body.size())
      << what << " accounted payload exceeds the body";
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  (void)ParseFrame(input);
  (void)AccountedPayloadBytes(input);
  (void)RoutedDstKey(input);
  CheckCanonical<dhs::ProbeOpenFrame>(input, dhs::DecodeProbeOpen,
                                      dhs::EncodeProbeOpen, "probe_open");
  CheckCanonical<dhs::MetricQueryFrame>(input, dhs::DecodeMetricQuery,
                                        dhs::EncodeMetricQuery,
                                        "metric_query");
  CheckCanonical<dhs::VectorResponseFrame>(input, dhs::DecodeVectorResponse,
                                           dhs::EncodeVectorResponse,
                                           "vector_response");
  CheckCanonical<dhs::PutFrame>(input, dhs::DecodePut, dhs::EncodePut, "put");
  CheckCanonical<dhs::AckFrame>(input, dhs::DecodeAck, dhs::EncodeAck, "ack");
  CheckCanonical<dhs::MigrateFrame>(input, dhs::DecodeMigrate,
                                    dhs::EncodeMigrate, "migrate");
  CheckCanonical<dhs::CountRequestFrame>(input, dhs::DecodeCountRequest,
                                         dhs::EncodeCountRequest,
                                         "count_request");
  CheckCanonical<dhs::CountResponseFrame>(input, dhs::DecodeCountResponse,
                                          dhs::EncodeCountResponse,
                                          "count_response");
  CheckCanonical<dhs::SketchFrame>(input, dhs::DecodeSketch,
                                   dhs::EncodeSketch, "sketch");
  return 0;
}

std::vector<std::string> FuzzSeedCorpus() {
  std::vector<std::string> seeds;
  seeds.push_back(dhs::EncodeProbeOpen({0x0123456789abcdef, 17}));
  seeds.push_back(dhs::EncodeMetricQuery({42, 9}));
  {
    dhs::VectorResponseFrame response;
    response.metric_id = 42;
    response.vector_ids = {0, 3, 17, 65535};
    seeds.push_back(dhs::EncodeVectorResponse(response));
  }
  {
    dhs::PutFrame put;
    put.dst_key = 0xfeedface;
    put.metric_id = 0x1122334455667788;
    put.expiry = 1000;
    for (int v : {1, 2, 3}) {
      put.keys.push_back(dhs::StoreKey::Dhs(put.metric_id, 5, v));
    }
    seeds.push_back(dhs::EncodePut(put));
    put.absolute_expiry = true;
    seeds.push_back(dhs::EncodePut(put));
  }
  seeds.push_back(dhs::EncodeAck({0, 0xabcd, 3}));
  {
    dhs::MigrateFrame migrate;
    dhs::MigrateRecord record;
    record.dht_key = 7;
    record.key = dhs::StoreKey::Dhs(9, 4, 2);
    record.expires_at = dhs::kNoExpiry;
    record.value = "value bytes";
    migrate.records.push_back(record);
    seeds.push_back(dhs::EncodeMigrate(migrate));
  }
  {
    dhs::CountRequestFrame request;
    request.metric_ids = {1, 2, 3};
    seeds.push_back(dhs::EncodeCountRequest(request));
  }
  {
    dhs::CountResponseFrame response;
    response.gave_up = true;
    response.bitmaps_unresolved = 2;
    dhs::CountResponseEntry entry;
    entry.estimate = 12345.5;
    entry.observables = {-1, 0, 7};
    response.entries.push_back(entry);
    seeds.push_back(dhs::EncodeCountResponse(response));
  }
  seeds.push_back(
      dhs::EncodeSketch({dhs::kSketchFamilyHyperLogLog, "0123456789"}));
  return seeds;
}
#include "fuzz_driver.h"
