// Deterministic driver for libFuzzer-style fuzz targets.
//
// Each target defines the standard entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
//
// plus FuzzSeedCorpus(), a small set of structurally valid inputs. When
// built with a real fuzzing runtime (-fsanitize=fuzzer provides main),
// define DHS_FUZZ_NO_MAIN and the target links unchanged. In this
// repo's default CI the targets are plain ctest binaries: this header
// supplies a main() that replays a deterministic pseudo-random corpus —
// a mix of fully random buffers and mutated seeds (byte flips,
// truncations, extensions, splices) — so every run exercises the same
// inputs and a failure reproduces offline from the iteration number
// alone.
//
// Iteration budget: DHS_FUZZ_ITERS env var (default 25000). CI smoke
// jobs set a budget sized to ~30s per target; local runs can crank it.

#ifndef DHS_TESTS_FUZZ_FUZZ_DRIVER_H_
#define DHS_TESTS_FUZZ_FUZZ_DRIVER_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

/// Structurally valid inputs the mutation stage starts from.
std::vector<std::string> FuzzSeedCorpus();

#ifndef DHS_FUZZ_NO_MAIN
int main() {
  uint64_t iters = 25000;
  // Single-threaded driver main; read before anything else runs.
  if (const char* env = std::getenv("DHS_FUZZ_ITERS")) {  // NOLINT(concurrency-mt-unsafe)
    iters = std::strtoull(env, nullptr, 10);
    if (iters == 0) iters = 1;
  }
  dhs::Rng rng(0xf0220915u);
  const std::vector<std::string> seeds = FuzzSeedCorpus();

  // Replay the seeds verbatim first: the valid inputs themselves must
  // never crash the target.
  for (const std::string& seed : seeds) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(seed.data()),
                           seed.size());
  }

  std::string input;
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t mode = rng.UniformU64(4);
    if (mode == 0 || seeds.empty()) {
      // Fully random buffer (short lengths favored: headers live there).
      const size_t len = static_cast<size_t>(
          rng.UniformU64(rng.UniformU64(2) == 0 ? 32 : 600));
      input.resize(len);
      for (size_t j = 0; j < len; ++j) {
        input[j] = static_cast<char>(rng.UniformU64(256));
      }
    } else {
      // Mutate a seed.
      input = seeds[rng.UniformU64(seeds.size())];
      const uint64_t muts = 1 + rng.UniformU64(4);
      for (uint64_t mu = 0; mu < muts && !input.empty(); ++mu) {
        switch (rng.UniformU64(4)) {
          case 0:  // flip a byte
            input[rng.UniformU64(input.size())] ^=
                static_cast<char>(1 + rng.UniformU64(255));
            break;
          case 1:  // truncate
            input.resize(rng.UniformU64(input.size() + 1));
            break;
          case 2:  // extend with junk
            input.push_back(static_cast<char>(rng.UniformU64(256)));
            break;
          default:  // splice: overwrite a run with random bytes
          {
            const size_t at = rng.UniformU64(input.size());
            const size_t run = 1 + rng.UniformU64(8);
            for (size_t j = at; j < input.size() && j < at + run; ++j) {
              input[j] = static_cast<char>(rng.UniformU64(256));
            }
            break;
          }
        }
      }
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }
  std::printf("fuzz driver: %llu iterations + %zu seeds, no failures\n",
              static_cast<unsigned long long>(iters), seeds.size());
  return 0;
}
#endif  // DHS_FUZZ_NO_MAIN

#endif  // DHS_TESTS_FUZZ_FUZZ_DRIVER_H_
