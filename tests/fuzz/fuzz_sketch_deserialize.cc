// Fuzz target: sketch wire-format parsers.
//
// Feeds arbitrary bytes to PcsaSketch/LogLogSketch/HllSketch
// ::Deserialize. Contract under test:
//
//   * no crash / UB on any input — malformed data must come back as an
//     error Status, never trip a CHECK or read out of bounds;
//   * accepted inputs are canonical: Serialize(Deserialize(b)) == b
//     byte-for-byte (strict parsing leaves no room for two encodings of
//     the same sketch);
//   * accepted sketches are usable: Estimate() returns a finite,
//     non-negative value.

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "hashing/hasher.h"
#include "sketch/hyperloglog.h"
#include "sketch/loglog.h"
#include "sketch/pcsa.h"

namespace {

template <typename Sketch>
void CheckOne(const std::string& data) {
  auto sketch = Sketch::Deserialize(data);
  if (!sketch.ok()) return;  // rejected: fine, as long as it's a Status
  const std::string round = sketch->Serialize();
  CHECK(round == data) << "accepted input is not canonical: "
                       << data.size() << " bytes in, " << round.size()
                       << " bytes back";
  const double estimate = sketch->Estimate();
  CHECK(std::isfinite(estimate) && estimate >= 0.0)
      << "deserialized sketch produced estimate " << estimate;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  CheckOne<dhs::PcsaSketch>(input);
  CheckOne<dhs::LogLogSketch>(input);
  CheckOne<dhs::HllSketch>(input);
  return 0;
}

std::vector<std::string> FuzzSeedCorpus() {
  std::vector<std::string> seeds;
  dhs::MixHasher hasher(7);
  {
    dhs::PcsaSketch sketch(16, 24);
    for (uint64_t i = 0; i < 500; ++i) sketch.AddHash(hasher.HashU64(i));
    seeds.push_back(sketch.Serialize());
    seeds.push_back(dhs::PcsaSketch(4, 7).Serialize());  // ragged width
  }
  {
    dhs::LogLogSketch sketch(16, 24, dhs::LogLogSketch::Mode::kSuperTrunc);
    for (uint64_t i = 0; i < 500; ++i) {
      sketch.AddHash(hasher.HashU64(1000 + i));
    }
    seeds.push_back(sketch.Serialize());
    seeds.push_back(
        dhs::LogLogSketch(4, 16, dhs::LogLogSketch::Mode::kPlain)
            .Serialize());
  }
  {
    dhs::HllSketch sketch(16, 24);
    for (uint64_t i = 0; i < 500; ++i) {
      sketch.AddHash(hasher.HashU64(2000 + i));
    }
    seeds.push_back(sketch.Serialize());
    seeds.push_back(dhs::HllSketch(16, 8).Serialize());
  }
  return seeds;
}

#include "fuzz_driver.h"
