// Fuzz target: StoreKey wire-format parsing and ordering.
//
// Contract under test:
//
//   * ToBytes(FromBytes(b)) == b for every byte string (the parser and
//     encoder are exact inverses on the wire side);
//   * FromBytes classifies exactly: 12 bytes starting 'D' => packed DHS
//     key, anything else => raw key carrying the bytes verbatim;
//   * SizeBytes() matches the encoded length either way;
//   * comparison operators stay a strict weak order consistent with the
//     historical byte encoding (the property range scans depend on).

#include <string>
#include <vector>

#include "common/check.h"
#include "dht/store.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  const dhs::StoreKey key = dhs::StoreKey::FromBytes(input);

  const std::string round = key.ToBytes();
  CHECK(round == input) << "ToBytes(FromBytes(b)) != b for " << input.size()
                        << " bytes";
  const bool dhs_shaped =
      input.size() == dhs::StoreKey::kDhsEncodedBytes && input[0] == 'D';
  CHECK_EQ(key.is_dhs(), dhs_shaped) << "misclassified key";
  CHECK_EQ(key.SizeBytes(), input.size()) << "size accounting";
  CHECK(!(key < key)) << "irreflexivity";
  CHECK(key == dhs::StoreKey::FromBytes(round)) << "reparse equality";

  // Split the buffer in half and check order consistency with the byte
  // encoding: packed keys sort before raw keys, and within a section
  // the order must match the historical string order.
  const std::string left = input.substr(0, size / 2);
  const dhs::StoreKey other = dhs::StoreKey::FromBytes(left);
  if (key.is_dhs() == other.is_dhs()) {
    const bool byte_less = key.ToBytes() < other.ToBytes();
    CHECK_EQ(key < other, byte_less)
        << "section-local order disagrees with the byte encoding";
  } else {
    CHECK_EQ(key < other, key.is_dhs())
        << "packed keys must sort before raw keys";
  }
  return 0;
}

std::vector<std::string> FuzzSeedCorpus() {
  std::vector<std::string> seeds;
  seeds.push_back(dhs::StoreKey::Dhs(0, 0, 0).ToBytes());
  seeds.push_back(dhs::StoreKey::Dhs(77, 12, 500).ToBytes());
  seeds.push_back(dhs::StoreKey::Dhs(~uint64_t{0}, 255, 65535).ToBytes());
  seeds.push_back("rec-42");
  seeds.push_back("D not a packed key");  // 'D' prefix, wrong length
  seeds.push_back(std::string(12, 'D'));  // right length, packed-shaped
  seeds.push_back(std::string());
  return seeds;
}

#include "fuzz_driver.h"
