// Fuzz target: MD4 incremental hashing.
//
// Contract under test: splitting the input into arbitrary chunk
// sequences (including empty updates) must produce exactly the one-shot
// digest — the incremental buffering logic around the 64-byte block
// boundary is where off-by-ones would live. The chunk layout is derived
// deterministically from the input bytes themselves, so every corpus
// entry doubles as a chunking pattern.

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "hashing/md4.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const dhs::Md4::Digest oneshot = dhs::Md4::Hash(data, size);

  // Chunking pattern 1: sizes taken from the data itself.
  {
    dhs::Md4 md4;
    size_t off = 0;
    size_t salt = 0;
    while (off < size) {
      const size_t step = 1 + (static_cast<size_t>(data[off]) + salt++) % 97;
      const size_t len = step > size - off ? size - off : step;
      md4.Update(data + off, len);
      md4.Update(data + off, 0);  // zero-length update must be a no-op
      off += len;
    }
    CHECK(md4.Finalize() == oneshot)
        << "data-derived chunking diverged from one-shot digest ("
        << size << " bytes)";
  }

  // Chunking pattern 2: byte-at-a-time (worst case for the buffer).
  {
    dhs::Md4 md4;
    for (size_t i = 0; i < size; ++i) md4.Update(data + i, 1);
    CHECK(md4.Finalize() == oneshot)
        << "byte-at-a-time chunking diverged from one-shot digest ("
        << size << " bytes)";
  }

  // Digest helpers must be total on every digest.
  const std::string hex = dhs::Md4::ToHex(oneshot);
  CHECK_EQ(hex.size(), 32u) << "hex digest length";
  (void)dhs::Md4::DigestToU64(oneshot);
  return 0;
}

std::vector<std::string> FuzzSeedCorpus() {
  // Lengths straddling the 56/64-byte padding boundaries, where MD4's
  // length-encoding logic branches.
  std::vector<std::string> seeds = {"", "a", "abc",
                                    "message digest suffix"};
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u, 300u}) {
    seeds.push_back(std::string(len, 'x'));
  }
  return seeds;
}

#include "fuzz_driver.h"
