// Fuzz target: the Tracer's Chrome-trace / JSONL writers always emit
// well-formed JSON, no matter what span names, annotation keys/values,
// or nesting the caller throws at them.
//
// Contract under test:
//
//   * WriteChromeTrace produces exactly one syntactically valid JSON
//     document (string escaping covers quotes, backslashes and control
//     characters; see WriteEscaped in src/obs/trace.cc);
//   * WriteJsonl produces one valid JSON object per line, same count of
//     events as the Chrome export;
//   * arbitrarily deep span nesting round-trips through both writers
//     without breaking bracket balance;
//   * the export pass is a pure walk: writing twice yields identical
//     bytes, and writing does not disturb recorded state.
//
// The input stream is interpreted as a little op machine over one
// Tracer (begin span / end span / annotate / instant / clear), with
// names and values sliced verbatim from the fuzz input so embedded
// quotes, backslashes, NULs and control bytes all reach the escaper.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"

namespace {

// --- Minimal strict JSON syntax checker -------------------------------------
//
// Accepts the JSON grammar (objects, arrays, strings, numbers, the
// three literals) with two deliberate relaxations matching the
// writers' contract: string bytes >= 0x20 are passed through without
// UTF-8 validation, and numbers use the standard JSON number grammar.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  // Whole input is exactly one JSON value (plus whitespace).
  bool ValidDocument() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control byte: escaping failed
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t p = pos_;
    if (p < text_.size() && text_[p] == '-') ++p;
    size_t digits = 0;
    while (p < text_.size() && std::isdigit(static_cast<unsigned char>(text_[p]))) {
      ++p;
      ++digits;
    }
    if (digits == 0) return false;
    if (p < text_.size() && text_[p] == '.') {
      ++p;
      size_t frac = 0;
      while (p < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[p]))) {
        ++p;
        ++frac;
      }
      if (frac == 0) return false;
    }
    if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
      ++p;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      size_t exp = 0;
      while (p < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[p]))) {
        ++p;
        ++exp;
      }
      if (exp == 0) return false;
    }
    pos_ = p;
    return true;
  }

  bool Value() {
    if (++depth_ > 512) return false;  // the checker itself recurses
    SkipWs();
    bool ok = false;
    if (pos_ >= text_.size()) {
      ok = false;
    } else if (text_[pos_] == '{') {
      ok = Object();
    } else if (text_[pos_] == '[') {
      ok = Array();
    } else if (text_[pos_] == '"') {
      ok = String();
    } else if (text_[pos_] == 't') {
      ok = Literal("true");
    } else if (text_[pos_] == 'f') {
      ok = Literal("false");
    } else if (text_[pos_] == 'n') {
      ok = Literal("null");
    } else {
      ok = Number();
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

// Slices a length-prefixed string out of the op stream: one length
// byte, then up to that many raw bytes (short reads allowed at EOF).
std::string TakeString(const uint8_t* data, size_t size, size_t& off) {
  if (off >= size) return "s";
  const size_t want = data[off] % 24;
  ++off;
  const size_t take = std::min(want, size - off);
  std::string s(reinterpret_cast<const char*>(data + off), take);
  off += take;
  return s;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  dhs::Tracer tracer;
  uint64_t clock = 0;
  dhs::MessageStats stats;
  tracer.Bind(&stats, &clock);

  std::vector<uint64_t> open;  // span ids, innermost last
  size_t off = 0;
  while (off < size) {
    const uint8_t op = data[off] % 8;
    ++off;
    ++clock;  // every op advances the virtual clock
    switch (op) {
      case 0:
      case 1:  // weighted toward nesting deeper
        open.push_back(tracer.BeginSpan(TakeString(data, size, off)));
        break;
      case 2:
        if (!open.empty()) {
          tracer.EndSpan(open.back());
          open.pop_back();
        }
        break;
      case 3:
        if (!open.empty()) {
          tracer.AnnotateSpan(
              open.back(),
              dhs::TraceArg::Str(TakeString(data, size, off),
                                 TakeString(data, size, off)));
        }
        break;
      case 4:
        if (!open.empty()) {
          // Finite by construction: F64 from raw bytes could render
          // nan/inf, which JSON has no token for and the writer is not
          // expected to accept.
          tracer.AnnotateSpan(open.back(),
                              dhs::TraceArg::F64(
                                  "f", static_cast<double>(clock) / 7.0));
          tracer.AnnotateSpan(open.back(),
                              dhs::TraceArg::Bool("b", (clock & 1) != 0));
        }
        break;
      case 5:
        tracer.Instant(TakeString(data, size, off),
                       {dhs::TraceArg::U64("u", clock),
                        dhs::TraceArg::I64("i", -static_cast<int64_t>(clock)),
                        dhs::TraceArg::Str("s", TakeString(data, size, off))});
        break;
      case 6:
        if (open.empty()) {
          tracer.Clear();
        }
        break;
      default:
        stats.messages += 1;  // vary the span deltas the end events carry
        stats.bytes += op;
        break;
    }
  }
  while (!open.empty()) {  // spans close LIFO before export
    tracer.EndSpan(open.back());
    open.pop_back();
  }

  std::ostringstream chrome;
  tracer.WriteChromeTrace(chrome);
  const std::string chrome_text = chrome.str();
  CHECK(JsonChecker(chrome_text).ValidDocument())
      << "Chrome trace export is not valid JSON (" << chrome_text.size()
      << " bytes)";

  std::ostringstream jsonl;
  tracer.WriteJsonl(jsonl);
  const std::string jsonl_text = jsonl.str();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl_text.size()) {
    size_t end = jsonl_text.find('\n', start);
    if (end == std::string::npos) end = jsonl_text.size();
    const std::string_view line(jsonl_text.data() + start, end - start);
    if (!line.empty()) {
      CHECK(JsonChecker(line).ValidDocument())
          << "JSONL line " << lines << " is not valid JSON";
      ++lines;
    }
    start = end + 1;
  }
  CHECK_EQ(lines, static_cast<size_t>(tracer.NumEvents()))
      << "JSONL line count must equal recorded event count";

  // Export is a pure walk: a second pass is byte-identical.
  std::ostringstream chrome2;
  tracer.WriteChromeTrace(chrome2);
  CHECK(chrome2.str() == chrome_text) << "re-export changed bytes";
  return 0;
}

std::vector<std::string> FuzzSeedCorpus() {
  std::vector<std::string> seeds;
  // Escaping torture: names/values with quotes, backslashes, newlines,
  // NULs and high bytes. Layout: op bytes interleaved with
  // length-prefixed strings (see TakeString).
  seeds.push_back(std::string("\x00\x07", 2) + "a\"b\\c\nd" +
                  std::string("\x03\x02\x01", 3) + "\"\"" +
                  std::string("\x02", 1));
  seeds.push_back(std::string("\x00\x05\"\\\n\x01\xff", 7));
  // Deep nesting: 20 BeginSpans with tiny names, no closes (the
  // harness closes them), then an instant.
  std::string deep;
  for (int i = 0; i < 20; ++i) {
    deep += '\x00';     // op: begin
    deep += '\x01';     // name length 1
    deep += static_cast<char>('a' + (i % 26));
  }
  deep += '\x05';  // op: instant
  deep += '\x03';
  deep += "i\x1f\x7f";  // control + DEL bytes in the name
  seeds.push_back(deep);
  // Clear between batches, annotations, stats drift.
  seeds.push_back(std::string("\x07\x00\x01x\x03\x01k\x01v\x02\x06", 11));
  seeds.emplace_back();  // empty input: empty but valid exports
  return seeds;
}

#include "fuzz_driver.h"
