#include "queryopt/optimizer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dhs {
namespace {

JoinInput MakeInput(const std::string& name, double per_bucket,
                    size_t tuple_bytes = 1024) {
  return JoinInput{name,
                   AttributeStats{HistogramSpec(1, 100, 10),
                                  std::vector<double>(10, per_bucket)},
                   tuple_bytes};
}

JoinQuery ThreeWayQuery() {
  JoinQuery query;
  query.inputs.push_back(MakeInput("small", 10));    // 100 tuples
  query.inputs.push_back(MakeInput("medium", 100));  // 1000 tuples
  query.inputs.push_back(MakeInput("large", 1000));  // 10000 tuples
  return query;
}

TEST(JoinQueryTest, SpecsAligned) {
  JoinQuery query = ThreeWayQuery();
  EXPECT_TRUE(query.SpecsAligned());
  query.inputs.push_back(
      JoinInput{"odd",
                AttributeStats{HistogramSpec(1, 50, 10),
                               std::vector<double>(10, 1.0)},
                1024});
  EXPECT_FALSE(query.SpecsAligned());
}

TEST(JoinOptimizerTest, EvaluateRejectsBadOrders) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  EXPECT_FALSE(optimizer.Evaluate({0, 1}).ok());        // too short
  EXPECT_FALSE(optimizer.Evaluate({0, 1, 1}).ok());     // repeated
  EXPECT_FALSE(optimizer.Evaluate({0, 1, 5}).ok());     // out of range
  EXPECT_TRUE(optimizer.Evaluate({0, 1, 2}).ok());
}

TEST(JoinOptimizerTest, TransferCostMatchesHandComputation) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto plan = optimizer.Evaluate({0, 1, 2});
  ASSERT_TRUE(plan.ok());
  // Step 1: ship small (100 * 1024) + medium (1000 * 1024).
  // J1 = 10 buckets of 10*100/10 = 100 -> 1000 tuples of 2048 bytes.
  // Step 2: ship J1 (1000 * 2048) + large (10000 * 1024).
  const double expected = 100 * 1024.0 + 1000 * 1024.0 +
                          1000 * 2048.0 + 10000 * 1024.0;
  EXPECT_NEAR(plan->transfer_bytes, expected, 1e-6);
  // Final size: J1 x large: per bucket 100 * 1000 / 10 = 10000 -> 100k.
  EXPECT_NEAR(plan->result_tuples, 100000.0, 1e-6);
}

TEST(JoinOptimizerTest, ResultSizeIndependentOfOrder) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto a = optimizer.Evaluate({0, 1, 2});
  auto b = optimizer.Evaluate({2, 1, 0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->result_tuples, b->result_tuples, 1e-3);
}

TEST(JoinOptimizerTest, BestBeatsWorst) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto best = optimizer.Best();
  auto worst = optimizer.Worst();
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(worst.ok());
  EXPECT_LT(best->transfer_bytes, worst->transfer_bytes);
}

TEST(JoinOptimizerTest, BestStartsWithSmallRelations) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto best = optimizer.Best();
  ASSERT_TRUE(best.ok());
  // Joining small x medium first minimizes the shipped intermediate.
  EXPECT_EQ(best->order[2], 2) << best->OrderString(query);
}

TEST(JoinOptimizerTest, AverageBetweenBestAndWorst) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto avg = optimizer.AverageTransfer();
  ASSERT_TRUE(avg.ok());
  EXPECT_GE(*avg, optimizer.Best()->transfer_bytes);
  EXPECT_LE(*avg, optimizer.Worst()->transfer_bytes);
}

TEST(JoinOptimizerTest, TwoRelationOrderIrrelevantForBytes) {
  JoinQuery query;
  query.inputs.push_back(MakeInput("a", 10));
  query.inputs.push_back(MakeInput("b", 100));
  JoinOptimizer optimizer(&query);
  auto ab = optimizer.Evaluate({0, 1});
  auto ba = optimizer.Evaluate({1, 0});
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  // Symmetric hash join ships both inputs either way.
  EXPECT_DOUBLE_EQ(ab->transfer_bytes, ba->transfer_bytes);
}

TEST(JoinOptimizerTest, SkewChangesOptimalOrder) {
  // Relations whose histograms overlap differently: joining the two
  // disjoint ones first gives an empty intermediate and a near-free
  // second join.
  JoinQuery query;
  AttributeStats head{HistogramSpec(1, 100, 10),
                      {1000, 0, 0, 0, 0, 0, 0, 0, 0, 0}};
  AttributeStats tail{HistogramSpec(1, 100, 10),
                      {0, 0, 0, 0, 0, 0, 0, 0, 0, 1000}};
  AttributeStats flat{HistogramSpec(1, 100, 10),
                      std::vector<double>(10, 100)};
  query.inputs.push_back(JoinInput{"head", head, 1024});
  query.inputs.push_back(JoinInput{"tail", tail, 1024});
  query.inputs.push_back(JoinInput{"flat", flat, 1024});
  JoinOptimizer optimizer(&query);
  auto best = optimizer.Best();
  ASSERT_TRUE(best.ok());
  // Best plan joins head x tail first (result 0), leaving flat last.
  EXPECT_EQ(best->order[2], 2) << best->OrderString(query);
  EXPECT_NEAR(best->result_tuples, 0.0, 1e-9);
}

TEST(BushyOptimizerTest, NeverWorseThanLeftDeep) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    JoinQuery query;
    const int relations = 2 + static_cast<int>(rng.UniformU64(4));
    for (int r = 0; r < relations; ++r) {
      std::vector<double> buckets(10);
      for (double& b : buckets) {
        b = rng.Bernoulli(0.3) ? 0.0
                               : static_cast<double>(rng.UniformU64(5000));
      }
      query.inputs.push_back(
          JoinInput{"R" + std::to_string(r),
                    AttributeStats{HistogramSpec(1, 100, 10), buckets},
                    1024});
    }
    JoinOptimizer optimizer(&query);
    auto left_deep = optimizer.Best();
    auto bushy = optimizer.BestBushy();
    ASSERT_TRUE(left_deep.ok());
    ASSERT_TRUE(bushy.ok());
    EXPECT_LE(bushy->transfer_bytes, left_deep->transfer_bytes + 1e-6)
        << trial;
    EXPECT_NEAR(bushy->result_tuples, left_deep->result_tuples,
                1e-6 * (1 + left_deep->result_tuples))
        << trial;
  }
}

TEST(BushyOptimizerTest, MatchesLeftDeepForTwoRelations) {
  JoinQuery query;
  query.inputs.push_back(MakeInput("a", 10));
  query.inputs.push_back(MakeInput("b", 100));
  JoinOptimizer optimizer(&query);
  auto left_deep = optimizer.Best();
  auto bushy = optimizer.BestBushy();
  ASSERT_TRUE(left_deep.ok());
  ASSERT_TRUE(bushy.ok());
  EXPECT_DOUBLE_EQ(bushy->transfer_bytes, left_deep->transfer_bytes);
}

TEST(BushyOptimizerTest, ExpressionCoversEveryRelation) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto bushy = optimizer.BestBushy();
  ASSERT_TRUE(bushy.ok());
  for (const JoinInput& input : query.inputs) {
    EXPECT_NE(bushy->expression.find(input.name), std::string::npos);
  }
}

TEST(BushyOptimizerTest, RejectsOversizedQueries) {
  JoinQuery query;
  for (int i = 0; i < 15; ++i) {
    query.inputs.push_back(MakeInput("r" + std::to_string(i), 1));
  }
  JoinOptimizer optimizer(&query);
  EXPECT_TRUE(optimizer.BestBushy().status().IsInvalidArgument());
}

TEST(BushyOptimizerTest, SingleRelationIsFree) {
  JoinQuery query;
  query.inputs.push_back(MakeInput("solo", 10));
  JoinOptimizer optimizer(&query);
  auto bushy = optimizer.BestBushy();
  ASSERT_TRUE(bushy.ok());
  EXPECT_DOUBLE_EQ(bushy->transfer_bytes, 0.0);
  EXPECT_EQ(bushy->expression, "solo");
}

TEST(JoinPlanTest, OrderStringNamesRelations) {
  JoinQuery query = ThreeWayQuery();
  JoinOptimizer optimizer(&query);
  auto plan = optimizer.Evaluate({2, 0, 1});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->OrderString(query), "large ⋈ small ⋈ medium");
}

}  // namespace
}  // namespace dhs
