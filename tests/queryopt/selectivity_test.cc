#include "queryopt/selectivity.h"

#include <gtest/gtest.h>

namespace dhs {
namespace {

AttributeStats UniformStats(double per_bucket) {
  return AttributeStats{HistogramSpec(1, 100, 10),
                        std::vector<double>(10, per_bucket)};
}

TEST(AttributeStatsTest, TotalCardinality) {
  EXPECT_DOUBLE_EQ(UniformStats(50).TotalCardinality(), 500.0);
  EXPECT_DOUBLE_EQ(UniformStats(0).TotalCardinality(), 0.0);
}

TEST(RangeSelectivityTest, FullRangeIsOne) {
  EXPECT_DOUBLE_EQ(EstimateRangeSelectivity(UniformStats(50), 1, 100), 1.0);
}

TEST(RangeSelectivityTest, HalfRange) {
  EXPECT_NEAR(EstimateRangeSelectivity(UniformStats(50), 1, 50), 0.5, 1e-9);
}

TEST(RangeSelectivityTest, EmptyRelationIsZero) {
  EXPECT_EQ(EstimateRangeSelectivity(UniformStats(0), 1, 100), 0.0);
}

TEST(RangeSelectivityTest, ClampedToUnitInterval) {
  AttributeStats stats = UniformStats(50);
  EXPECT_LE(EstimateRangeSelectivity(stats, -100, 1000), 1.0);
  EXPECT_GE(EstimateRangeSelectivity(stats, 60, 50), 0.0);
}

TEST(RangeSelectivityTest, SkewedHistogram) {
  AttributeStats stats{HistogramSpec(1, 100, 10),
                       {900, 0, 0, 0, 0, 0, 0, 0, 0, 100}};
  EXPECT_NEAR(EstimateRangeSelectivity(stats, 1, 10), 0.9, 1e-9);
  EXPECT_NEAR(EstimateRangeSelectivity(stats, 91, 100), 0.1, 1e-9);
  EXPECT_NEAR(EstimateRangeSelectivity(stats, 11, 90), 0.0, 1e-9);
}

TEST(EquiJoinSizeTest, UniformJoin) {
  // r_b = s_b = 100 per bucket, width 10: per bucket 100*100/10 = 1000.
  AttributeStats a = UniformStats(100);
  AttributeStats b = UniformStats(100);
  EXPECT_NEAR(EstimateEquiJoinSize(a, b), 10 * 1000.0, 1e-9);
}

TEST(EquiJoinSizeTest, DisjointHistogramsJoinEmpty) {
  AttributeStats a{HistogramSpec(1, 100, 10),
                   {100, 0, 0, 0, 0, 0, 0, 0, 0, 0}};
  AttributeStats b{HistogramSpec(1, 100, 10),
                   {0, 0, 0, 0, 0, 0, 0, 0, 0, 100}};
  EXPECT_EQ(EstimateEquiJoinSize(a, b), 0.0);
}

TEST(EquiJoinSizeTest, MatchesExactForSingleValueBuckets) {
  // Width-1 buckets make the uniform-spread assumption exact:
  // join size = sum_v r_v * s_v.
  AttributeStats a{HistogramSpec(1, 4, 4), {2, 3, 0, 1}};
  AttributeStats b{HistogramSpec(1, 4, 4), {5, 1, 7, 2}};
  EXPECT_DOUBLE_EQ(EstimateEquiJoinSize(a, b), 2 * 5 + 3 * 1 + 0 + 1 * 2);
}

TEST(ComposeJoinTest, HistogramOfJoinResult) {
  AttributeStats a = UniformStats(100);
  AttributeStats b = UniformStats(50);
  const AttributeStats joined = ComposeJoin(a, b);
  EXPECT_DOUBLE_EQ(joined.buckets[0], 100.0 * 50.0 / 10.0);
  EXPECT_DOUBLE_EQ(joined.TotalCardinality(), EstimateEquiJoinSize(a, b));
}

TEST(ComposeJoinTest, CompositionIsAssociativeForUniform) {
  AttributeStats a = UniformStats(100);
  AttributeStats b = UniformStats(50);
  AttributeStats c = UniformStats(20);
  const double abc1 =
      EstimateEquiJoinSize(ComposeJoin(a, b), c);
  const double abc2 =
      EstimateEquiJoinSize(a, ComposeJoin(b, c));
  EXPECT_NEAR(abc1, abc2, 1e-6);
}

}  // namespace
}  // namespace dhs
