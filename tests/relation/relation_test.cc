#include "relation/relation.h"

#include <gtest/gtest.h>

#include <set>

namespace dhs {
namespace {

RelationSpec SmallSpec() {
  RelationSpec spec;
  spec.name = "Q";
  spec.num_tuples = 10000;
  spec.min_value = 1;
  spec.domain_size = 100;
  spec.zipf_theta = 0.7;
  spec.tuple_bytes = 1024;
  return spec;
}

TEST(RelationGeneratorTest, GeneratesRequestedTuples) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 1);
  EXPECT_EQ(relation.NumTuples(), 10000u);
  EXPECT_EQ(relation.TotalBytes(), 10000u * 1024u);
}

TEST(RelationGeneratorTest, DeterministicForSeed) {
  const Relation a = RelationGenerator::Generate(SmallSpec(), 1);
  const Relation b = RelationGenerator::Generate(SmallSpec(), 1);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Value(i), b.Value(i));
    EXPECT_EQ(a.TupleId(i), b.TupleId(i));
  }
}

TEST(RelationGeneratorTest, DifferentSeedsDiffer) {
  const Relation a = RelationGenerator::Generate(SmallSpec(), 1);
  const Relation b = RelationGenerator::Generate(SmallSpec(), 2);
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.Value(i) == b.Value(i)) ++same;
  }
  EXPECT_LT(same, 1000);
}

TEST(RelationTest, ValuesWithinDomain) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 3);
  for (uint64_t i = 0; i < relation.NumTuples(); ++i) {
    EXPECT_GE(relation.Value(i), 1);
    EXPECT_LE(relation.Value(i), 100);
  }
}

TEST(RelationTest, MinValueOffsetApplied) {
  RelationSpec spec = SmallSpec();
  spec.min_value = 500;
  const Relation relation = RelationGenerator::Generate(spec, 3);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_GE(relation.Value(i), 500);
    EXPECT_LE(relation.Value(i), 599);
  }
}

TEST(RelationTest, TupleIdsAreUnique) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 4);
  std::set<uint64_t> ids;
  for (uint64_t i = 0; i < relation.NumTuples(); ++i) {
    EXPECT_TRUE(ids.insert(relation.TupleId(i)).second) << i;
  }
}

TEST(RelationTest, TupleIdsDifferAcrossRelations) {
  RelationSpec q = SmallSpec();
  RelationSpec r = SmallSpec();
  r.name = "R";
  const Relation rel_q = RelationGenerator::Generate(q, 1);
  const Relation rel_r = RelationGenerator::Generate(r, 1);
  std::set<uint64_t> ids;
  for (uint64_t i = 0; i < 1000; ++i) {
    ids.insert(rel_q.TupleId(i));
    ids.insert(rel_r.TupleId(i));
  }
  EXPECT_EQ(ids.size(), 2000u);
}

TEST(RelationTest, ValueCountsSumToTuples) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 5);
  uint64_t total = 0;
  for (uint64_t c : relation.ValueCounts()) total += c;
  EXPECT_EQ(total, relation.NumTuples());
}

TEST(RelationTest, ZipfSkewShowsInCounts) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 6);
  const auto& counts = relation.ValueCounts();
  // Value 1 must be the most frequent under Zipf(0.7).
  for (size_t v = 1; v < counts.size(); ++v) {
    EXPECT_GE(counts[0] + 50, counts[v]);  // allow sampling noise
  }
  EXPECT_GT(counts[0], counts[counts.size() - 1]);
}

TEST(RelationTest, CountValueRange) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 7);
  EXPECT_EQ(relation.CountValueRange(1, 100), relation.NumTuples());
  const uint64_t lo_half = relation.CountValueRange(1, 50);
  const uint64_t hi_half = relation.CountValueRange(51, 100);
  EXPECT_EQ(lo_half + hi_half, relation.NumTuples());
  EXPECT_GT(lo_half, hi_half);  // Zipf skew
}

TEST(RelationTest, CountValueRangeEdges) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 8);
  EXPECT_EQ(relation.CountValueRange(50, 40), 0u);
  EXPECT_EQ(relation.CountValueRange(200, 300), 0u);
  EXPECT_EQ(relation.CountValueRange(-10, 0), 0u);
  // Out-of-domain bounds clamp.
  EXPECT_EQ(relation.CountValueRange(-10, 200), relation.NumTuples());
}

TEST(AssignTuplesTest, EveryTupleAssignedExactlyOnce) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 9);
  Rng rng(1);
  std::vector<uint64_t> nodes = {10, 20, 30, 40};
  const auto assignment = AssignTuplesToNodes(relation, nodes, rng);
  ASSERT_EQ(assignment.size(), 4u);
  std::set<uint64_t> seen;
  for (const auto& [node, tuples] : assignment) {
    for (uint64_t t : tuples) {
      EXPECT_TRUE(seen.insert(t).second);
      EXPECT_LT(t, relation.NumTuples());
    }
  }
  EXPECT_EQ(seen.size(), relation.NumTuples());
}

TEST(AssignTuplesTest, RoughlyBalanced) {
  const Relation relation = RelationGenerator::Generate(SmallSpec(), 10);
  Rng rng(2);
  std::vector<uint64_t> nodes = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto assignment = AssignTuplesToNodes(relation, nodes, rng);
  for (const auto& [node, tuples] : assignment) {
    EXPECT_NEAR(static_cast<double>(tuples.size()), 1250, 200);
  }
}

}  // namespace
}  // namespace dhs
