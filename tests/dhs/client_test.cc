#include "dht/chord.h"
#include "dhs/client.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/stats.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

ChordConfig FastChord() {
  ChordConfig config;
  config.hasher = "mix";
  return config;
}

// A small but dense testbed: N = 256 nodes, m = 64 bitmaps, so that
// n = 50k items satisfies the paper's lim-guarantee density n >= m*N.
class DhsClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(20260705);
    for (int i = 0; i < 256; ++i) {
      ASSERT_TRUE(net_.AddNode(rng.Next()).ok());
    }
  }

  // Every test ends with a full cross-check of the simulator's redundant
  // state; a bug in any DHS code path that corrupts the network shows up
  // here even if the test's own assertions pass.
  void TearDown() override {
    const Status audit = net_.AuditFull();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }

  DhsConfig Config(DhsEstimator estimator) {
    DhsConfig config;
    config.k = 24;
    config.m = 64;
    config.estimator = estimator;
    return config;
  }

  // Inserts n distinct items under `metric` from random origins.
  void Populate(DhsClient& client, uint64_t metric, uint64_t n,
                uint64_t salt) {
    Rng rng(salt);
    MixHasher hasher(salt);
    std::vector<uint64_t> batch;
    batch.reserve(4096);
    for (uint64_t i = 0; i < n; ++i) {
      batch.push_back(hasher.HashU64(i));
      if (batch.size() == 250) {
        ASSERT_TRUE(
            client.InsertBatch(net_.RandomNode(rng), metric, batch, rng)
                .ok());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          client.InsertBatch(net_.RandomNode(rng), metric, batch, rng).ok());
    }
  }

  ChordNetwork net_{FastChord()};
};

TEST_F(DhsClientTest, CreateRejectsNullNetwork) {
  EXPECT_FALSE(DhsClient::Create(nullptr, DhsConfig()).ok());
}

TEST_F(DhsClientTest, CreateRejectsInvalidConfig) {
  DhsConfig config;
  config.m = 3;
  EXPECT_FALSE(DhsClient::Create(&net_, config).ok());
}

TEST_F(DhsClientTest, PlaceItemDecomposition) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Rng rng(1);
  int rho_zero = 0;
  constexpr int kDraws = 20000;
  std::vector<int> vector_counts(64, 0);
  for (int i = 0; i < kDraws; ++i) {
    const DhsPlacement p = client->PlaceItem(rng.Next());
    ASSERT_GE(p.vector_id, 0);
    ASSERT_LT(p.vector_id, 64);
    ASSERT_GE(p.rho, 0);
    ASSERT_LE(p.rho, 24);
    vector_counts[p.vector_id]++;
    if (p.rho == 0) ++rho_zero;
  }
  // rho = 0 for half the items; vectors roughly uniform.
  EXPECT_NEAR(rho_zero, kDraws / 2, 5 * std::sqrt(kDraws / 2.0));
  for (int c : vector_counts) {
    EXPECT_NEAR(c, kDraws / 64, 6 * std::sqrt(kDraws / 64.0));
  }
}

TEST_F(DhsClientTest, PlaceItemDeterministic) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kPcsa));
  ASSERT_TRUE(client.ok());
  const DhsPlacement a = client->PlaceItem(0xabcdef);
  const DhsPlacement b = client->PlaceItem(0xabcdef);
  EXPECT_EQ(a.vector_id, b.vector_id);
  EXPECT_EQ(a.rho, b.rho);
}

TEST_F(DhsClientTest, InsertStoresTupleInCorrectInterval) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Rng rng(2);
  const uint64_t item = 0x2;  // rho(lsb24 = 2) = 1
  const DhsPlacement p = client->PlaceItem(item);
  EXPECT_EQ(p.rho, 1);
  ASSERT_TRUE(client->Insert(net_.RandomNode(rng), 77, item, rng).ok());

  // Exactly one node must now hold the tuple, keyed within bit 1's
  // interval, findable under the (metric, bit) range scan.
  int holders = 0;
  for (uint64_t node : net_.NodeIds()) {
    net_.StoreAt(node)->ForEachDhs(
        77, 1, net_.now(), [&](const StoreKey& key, const StoreRecord& rec) {
          EXPECT_EQ(key.vector_id(), p.vector_id);
          EXPECT_TRUE(client->mapping().IntervalForBit(1)->Contains(
              rec.dht_key));
          ++holders;
        });
  }
  EXPECT_EQ(holders, 1);
}

TEST_F(DhsClientTest, InsertSkipsShiftedBits) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.shift_bits = 4;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Rng rng(3);
  // rho(lsb24 = 1) = 0 < 4: the insert must be a silent no-op.
  net_.ResetStats();
  ASSERT_TRUE(client->Insert(net_.RandomNode(rng), 5, 0x1, rng).ok());
  EXPECT_EQ(net_.stats().messages, 0u);
}

TEST_F(DhsClientTest, InsertBatchDeduplicatesTuples) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Rng rng(4);
  // 1000 copies of the same item: one lookup, one tuple.
  std::vector<uint64_t> batch(1000, 0x12345);
  net_.ResetStats();
  ASSERT_TRUE(client->InsertBatch(net_.RandomNode(rng), 9, batch, rng).ok());
  EXPECT_EQ(net_.stats().messages, 1u);
}

TEST_F(DhsClientTest, AuditModeExercisesFullPipeline) {
  // config.audit = true runs the network + DHS audit after every insert,
  // batch and count; any stale cache, broken byte accounting or
  // misplaced tuple aborts via CHECK_OK inside the client.
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.audit = true;
  config.ttl_ticks = 50;
  config.replication = 2;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Rng rng(41);
  MixHasher hasher(41);
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < 2000; ++i) batch.push_back(hasher.HashU64(i));
  ASSERT_TRUE(client->InsertBatch(net_.RandomNode(rng), 3, batch, rng).ok());
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        client->Insert(net_.RandomNode(rng), 3, hasher.HashU64(5000 + i), rng)
            .ok());
  }
  net_.AdvanceClock(10);
  auto result = client->Count(net_.RandomNode(rng), 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->estimate, 0.0);
  // Age everything out and audit again: the expiry path must leave the
  // heap/watermark bookkeeping consistent too.
  net_.AdvanceClock(100);
  const Status audit = client->AuditFull();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST_F(DhsClientTest, BatchCostIsBoundedByKLookups) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Rng rng(5);
  MixHasher hasher(5);
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < 10000; ++i) batch.push_back(hasher.HashU64(i));
  net_.ResetStats();
  ASSERT_TRUE(client->InsertBatch(net_.RandomNode(rng), 9, batch, rng).ok());
  // §3.2: at most k + 1 target contacts per bulk round.
  EXPECT_LE(net_.stats().messages, 25u);
}

TEST_F(DhsClientTest, CountUnknownMetricIsZero) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Rng rng(6);
  auto result = client->Count(net_.RandomNode(rng), 404, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->estimate, 0.0);
}

TEST_F(DhsClientTest, CountRejectsBadOrigin) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Rng rng(7);
  EXPECT_FALSE(client->Count(0xdead, 1, rng).ok());
  EXPECT_FALSE(client->CountMany(net_.RandomNode(rng), {}, rng).ok());
}

class DhsClientEstimatorTest
    : public DhsClientTest,
      public ::testing::WithParamInterface<DhsEstimator> {};

TEST_P(DhsClientEstimatorTest, EndToEndAccuracy) {
  auto client = DhsClient::Create(&net_, Config(GetParam()));
  ASSERT_TRUE(client.ok());
  constexpr uint64_t kN = 50000;
  Populate(*client, 1, kN, 42);
  Rng rng(8);
  StreamingStats errors;
  for (int trial = 0; trial < 8; ++trial) {
    auto result = client->Count(net_.RandomNode(rng), 1, rng);
    ASSERT_TRUE(result.ok());
    errors.Add((result->estimate - kN) / static_cast<double>(kN));
  }
  // Statistical error ~ 1.05/sqrt(64) ~ 13% plus distributed-probe error;
  // the mean over 8 counts of the same sketch state is one realization,
  // so allow a generous 3-sigma band.
  EXPECT_LT(std::fabs(errors.mean()), 0.4) << DhsEstimatorName(GetParam());
}

TEST_P(DhsClientEstimatorTest, DuplicateInsensitivity) {
  auto client = DhsClient::Create(&net_, Config(GetParam()));
  ASSERT_TRUE(client.ok());
  constexpr uint64_t kN = 20000;
  Populate(*client, 2, kN, 77);

  // The duplicate-insensitivity invariant is on the *logical* sketch: the
  // set of distinct (bit, vector) coordinates present in the network.
  // Re-inserting the same items may add physical copies on other nodes,
  // but must not create any new coordinate.
  auto logical_state = [&] {
    std::set<std::pair<int, int>> coords;
    for (uint64_t node : net_.NodeIds()) {
      net_.StoreAt(node)->ForEachDhsMetric(
          2, net_.now(), [&](const StoreKey& key, const StoreRecord&) {
            coords.emplace(key.bit(), key.vector_id());
          });
    }
    return coords;
  };
  const auto before = logical_state();
  Populate(*client, 2, kN, 77);  // same items again
  EXPECT_EQ(logical_state(), before);
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, DhsClientEstimatorTest,
                         ::testing::Values(DhsEstimator::kSuperLogLog,
                                           DhsEstimator::kPcsa,
                                           DhsEstimator::kHyperLogLog));

TEST_F(DhsClientTest, MultiMetricCostIsShared) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  for (uint64_t metric = 1; metric <= 4; ++metric) {
    Populate(*client, metric, 20000, 100 + metric);
  }
  Rng rng(10);
  auto single = client->Count(net_.RandomNode(rng), 1, rng);
  ASSERT_TRUE(single.ok());
  auto many = client->CountMany(net_.RandomNode(rng), {1, 2, 3, 4}, rng);
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->estimates.size(), 4u);
  // §4.2: hop cost independent of the number of metrics — allow 2x slack
  // for probe randomness, far below the 4x of separate counts.
  EXPECT_LT(many->cost.hops, 2.5 * single->cost.hops);
  for (double estimate : many->estimates) {
    EXPECT_NEAR(estimate, 20000, 0.5 * 20000);
  }
}

TEST_F(DhsClientTest, MetricsAreIndependent) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Populate(*client, 1, 30000, 1);
  Rng rng(11);
  auto other = client->Count(net_.RandomNode(rng), 2, rng);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->estimate, 0.0);
}

TEST_F(DhsClientTest, SoftStateAgesOut) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.ttl_ticks = 100;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Populate(*client, 3, 20000, 5);
  Rng rng(12);
  auto fresh = client->Count(net_.RandomNode(rng), 3, rng);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->estimate, 0.0);
  net_.AdvanceClock(100);
  auto stale = client->Count(net_.RandomNode(rng), 3, rng);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->estimate, 0.0);
}

TEST_F(DhsClientTest, RefreshExtendsTtl) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.ttl_ticks = 100;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Rng rng(13);
  const uint64_t origin = net_.RandomNode(rng);
  const DhsPlacement p = client->PlaceItem(0xbeef);
  auto count_holders = [&] {
    int holders = 0;
    for (uint64_t node : net_.NodeIds()) {
      net_.StoreAt(node)->ForEachDhs(
          4, p.rho, net_.now(),
          [&](const StoreKey&, const StoreRecord&) { ++holders; });
    }
    return holders;
  };
  ASSERT_TRUE(client->Insert(origin, 4, 0xbeef, rng).ok());
  net_.AdvanceClock(60);
  ASSERT_TRUE(client->Insert(origin, 4, 0xbeef, rng).ok());  // refresh
  net_.AdvanceClock(60);  // t = 120: the refreshed copy lives until 160
  EXPECT_GE(count_holders(), 1);
  net_.AdvanceClock(100);  // t = 220: everything has aged out
  EXPECT_EQ(count_holders(), 0);
}

TEST_F(DhsClientTest, ReplicationStoresExtraCopies) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.replication = 3;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Rng rng(14);
  ASSERT_TRUE(client->Insert(net_.RandomNode(rng), 6, 0x4, rng).ok());
  const DhsPlacement p = client->PlaceItem(0x4);
  int holders = 0;
  for (uint64_t node : net_.NodeIds()) {
    net_.StoreAt(node)->ForEachDhs(
        6, p.rho, net_.now(),
        [&](const StoreKey&, const StoreRecord&) { ++holders; });
  }
  EXPECT_EQ(holders, 3);
}

TEST_F(DhsClientTest, CostReportIsConsistent) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Populate(*client, 7, 30000, 21);
  Rng rng(15);
  net_.ResetStats();
  const MessageStats before = net_.stats();
  auto result = client->Count(net_.RandomNode(rng), 7, rng);
  ASSERT_TRUE(result.ok());
  const MessageStats delta = net_.stats() - before;
  // The client's self-reported cost must agree with the network's books.
  EXPECT_EQ(result->cost.bytes, delta.bytes);
  EXPECT_EQ(static_cast<uint64_t>(result->cost.hops), delta.hops);
  EXPECT_GE(result->cost.nodes_visited, result->cost.dht_lookups);
  // Never more probes than lim per interval.
  EXPECT_LE(result->cost.nodes_visited,
            client->config().lim * (client->config().RhoBits() + 1));
}

TEST_F(DhsClientTest, ObservablesHaveOnePerBitmap) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kPcsa));
  ASSERT_TRUE(client.ok());
  Populate(*client, 8, 30000, 31);
  Rng rng(16);
  auto result = client->Count(net_.RandomNode(rng), 8, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->observables.size(), 64u);
  for (int m : result->observables) {
    EXPECT_GE(m, 0);
    EXPECT_LE(m, 25);
  }
}

TEST_F(DhsClientTest, AdaptiveLimRescuesSmallSets) {
  // n = 2000 items with m = 64 over 256 nodes: far below the n >= m*N
  // density, where the flat lim = 5 misses most tuples. The §4.1
  // adaptive budget (eq. 6) must recover a usable estimate.
  constexpr uint64_t kN = 2000;
  DhsConfig flat = Config(DhsEstimator::kHyperLogLog);
  DhsConfig adaptive = flat;
  adaptive.adaptive_lim = true;
  adaptive.expected_cardinality = kN;

  auto flat_client = DhsClient::Create(&net_, flat);
  auto adaptive_client = DhsClient::Create(&net_, adaptive);
  ASSERT_TRUE(flat_client.ok());
  ASSERT_TRUE(adaptive_client.ok());
  Populate(*flat_client, 11, kN, 71);  // shared state

  Rng rng(18);
  StreamingStats flat_error;
  StreamingStats adaptive_error;
  for (int t = 0; t < 6; ++t) {
    auto a = flat_client->Count(net_.RandomNode(rng), 11, rng);
    auto b = adaptive_client->Count(net_.RandomNode(rng), 11, rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    flat_error.Add(RelativeError(a->estimate, static_cast<double>(kN)));
    adaptive_error.Add(RelativeError(b->estimate, static_cast<double>(kN)));
  }
  EXPECT_LT(adaptive_error.mean(), flat_error.mean());
  EXPECT_LT(adaptive_error.mean(), 0.35);
}

TEST_F(DhsClientTest, AdaptiveLimDoesNotInflateDenseCounts) {
  // At comfortable density eq. 6 yields ~the flat budget: cost must not
  // blow up.
  constexpr uint64_t kN = 60000;
  DhsConfig flat = Config(DhsEstimator::kSuperLogLog);
  DhsConfig adaptive = flat;
  adaptive.adaptive_lim = true;
  adaptive.expected_cardinality = kN;
  auto flat_client = DhsClient::Create(&net_, flat);
  auto adaptive_client = DhsClient::Create(&net_, adaptive);
  ASSERT_TRUE(flat_client.ok());
  ASSERT_TRUE(adaptive_client.ok());
  Populate(*flat_client, 12, kN, 72);
  Rng rng(19);
  auto a = flat_client->Count(net_.RandomNode(rng), 12, rng);
  auto b = adaptive_client->Count(net_.RandomNode(rng), 12, rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b->cost.hops, 3 * a->cost.hops + 50);
}

TEST_F(DhsClientTest, SllSurvivesModerateFailures) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.replication = 2;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  constexpr uint64_t kN = 50000;
  Populate(*client, 9, kN, 41);
  Rng rng(17);
  // Fail 10% of nodes abruptly.
  auto ids = net_.NodeIds();
  for (size_t i = 0; i < ids.size(); i += 10) {
    ASSERT_TRUE(net_.FailNode(ids[i]).ok());
  }
  auto result = client->Count(net_.RandomNode(rng), 9, rng);
  ASSERT_TRUE(result.ok());
  // Failures can only lose bits (underestimate); with replication the
  // estimate should stay within a factor of ~2.
  EXPECT_GT(result->estimate, 0.3 * kN);
  EXPECT_LT(result->estimate, 2.0 * kN);
}

TEST_F(DhsClientTest, InsertReportsReplicationCost) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.replication = 3;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Rng rng(31);
  auto cost = client->Insert(net_.RandomNode(rng), 1, 0xdeadbeefcafef00dull,
                             rng);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->replicas_requested, 3);
  EXPECT_EQ(cost->replicas_written, 3);  // 256 live nodes: no excuse
  EXPECT_EQ(cost->retries, 0);
  EXPECT_EQ(cost->failed_probes, 0);
  EXPECT_EQ(cost->bit_groups_failed, 0);
  EXPECT_EQ(cost->direct_probes, 2);  // primary write rides the lookup
}

TEST_F(DhsClientTest, InsertFailsCleanlyWhenEveryMessageDrops) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  FaultConfig faults;
  faults.drop_probability = 1.0;
  ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
  Rng rng(32);
  auto cost = client->Insert(net_.RandomNode(rng), 1, 42, rng);
  ASSERT_FALSE(cost.ok());
  EXPECT_TRUE(cost.status().IsUnavailable()) << cost.status().ToString();
  net_.ClearFaultPlan();
}

TEST_F(DhsClientTest, CountDegradesInsteadOfFailingUnderTotalLoss) {
  auto client = DhsClient::Create(&net_, Config(DhsEstimator::kSuperLogLog));
  ASSERT_TRUE(client.ok());
  Populate(*client, 13, 20000, 83);
  FaultConfig faults;
  faults.drop_probability = 1.0;
  ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
  Rng rng(33);
  auto result = client->Count(net_.RandomNode(rng), 13, rng);
  net_.ClearFaultPlan();
  // Even with every message lost the count returns a (degraded) result.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->gave_up);
  EXPECT_GT(result->bitmaps_unresolved, 0);
  EXPECT_GT(result->cost.retries, 0);
}

TEST_F(DhsClientTest, RetryBackoffAdvancesClockExponentially) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.retry_attempts = 3;
  config.retry_backoff_ticks = 2;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  FaultConfig faults;
  faults.drop_probability = 1.0;
  ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
  Rng rng(34);
  const uint64_t before = net_.now();
  ASSERT_FALSE(client->Insert(net_.RandomNode(rng), 1, 7, rng).ok());
  net_.ClearFaultPlan();
  // Three attempts, backoff after the first two: 2 + 4 ticks.
  EXPECT_EQ(net_.now() - before, 6u);
}

TEST_F(DhsClientTest, InsertBatchContinuesPastFailedBitGroups) {
  // A transient failure in one bit group must not silently drop the
  // remaining groups: the batch records the failure and keeps going.
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.retry_attempts = 1;  // make per-group failure likely
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  FaultConfig faults;
  faults.drop_probability = 0.5;
  faults.seed = 21;
  ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
  Rng rng(36);
  MixHasher hasher(36);
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < 400; ++i) batch.push_back(hasher.HashU64(i));
  auto cost = client->InsertBatch(net_.RandomNode(rng), 15, batch, rng);
  net_.ClearFaultPlan();
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GT(cost->bit_groups_failed, 0);
  // The groups that survived are stored and countable.
  auto result = client->Count(net_.RandomNode(rng), 15, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->estimate, 0.0);
}

TEST_F(DhsClientTest, CountCompletesCleanlyUnderModerateDrops) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.replication = 2;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Populate(*client, 14, 20000, 91);
  FaultConfig faults;
  faults.drop_probability = 0.05;
  faults.seed = 5;
  ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
  Rng rng(35);
  for (int trial = 0; trial < 4; ++trial) {
    auto result = client->Count(net_.RandomNode(rng), 14, rng);
    ASSERT_TRUE(result.ok());
    // The default retry policy rides out 5% loss: no interval abandoned.
    EXPECT_FALSE(result->gave_up) << "trial " << trial;
    EXPECT_EQ(result->bitmaps_unresolved, 0) << "trial " << trial;
  }
  net_.ClearFaultPlan();
}

// ---------------------------------------------------------------------------
// Retry backoff ladder (free function RetryBackoffTicks).

TEST(RetryBackoffTicksTest, DoublesPerAttempt) {
  EXPECT_EQ(RetryBackoffTicks(100, 0), 100u);
  EXPECT_EQ(RetryBackoffTicks(100, 1), 200u);
  EXPECT_EQ(RetryBackoffTicks(100, 3), 800u);
  EXPECT_EQ(RetryBackoffTicks(0, 7), 0u);
}

// Regression: `base << attempt` is undefined for attempt >= 64 and
// silently wraps below that — a huge base and a modest attempt count
// used to produce a tiny (or zero) backoff exactly when the system was
// struggling hardest.
TEST(RetryBackoffTicksTest, SaturatesInsteadOfOverflowing) {
  const uint64_t max = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(RetryBackoffTicks(uint64_t{1} << 62, 5), max);
  EXPECT_EQ(RetryBackoffTicks(3, 63), max);
  EXPECT_EQ(RetryBackoffTicks(1, 200), uint64_t{1} << 63)
      << "the shift clamps at 63 (attempt 200 is not UB)";
  EXPECT_EQ(RetryBackoffTicks(1, 63), uint64_t{1} << 63)
      << "the deepest exact rung still computes";
  EXPECT_EQ(RetryBackoffTicks(max, 1), max);
}

// ---------------------------------------------------------------------------
// Frontier cache under faults.

// Regression: a count that skipped probe candidates (failed_probes > 0)
// but did not give up used to populate the frontier cache with its
// possibly-low observables; every later frontier-started count would
// then begin the scan below the true max rho and silently undercount
// until an insert invalidated the entry. The fault matrix hunts for a
// seed whose faulted count is visibly wrong yet "successful", then
// checks a clean count afterwards still matches the pre-fault truth.
TEST_F(DhsClientTest, FaultedCountDoesNotPoisonFrontierCache) {
  DhsConfig config = Config(DhsEstimator::kSuperLogLog);
  config.frontier_cache = true;
  config.retry_attempts = 2;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Populate(*client, 7, 30000, 42);

  Rng rng(100);
  auto clean = client->CountMany(net_.RandomNode(rng), {7}, rng);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean->gave_up);
  ASSERT_EQ(clean->cost.failed_probes, 0);
  const double reference = clean->estimates[0];

  bool exercised = false;
  for (uint64_t seed = 1; seed <= 100 && !exercised; ++seed) {
    FaultConfig faults;
    faults.drop_probability = 0.25;
    faults.timeout_probability = 0.15;
    faults.seed = seed;
    ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
    Rng faulted_rng(seed);
    auto faulted =
        client->CountMany(net_.RandomNode(faulted_rng), {7}, faulted_rng);
    net_.ClearFaultPlan();
    if (!faulted.ok()) continue;
    // The poisoning scenario: probes were skipped, the count still
    // "succeeded", and the skipped probes actually hid information.
    if (faulted->gave_up || faulted->cost.failed_probes == 0) continue;
    if (faulted->estimates[0] == reference) continue;
    exercised = true;

    Rng verify_rng(seed + 1000);
    auto after =
        client->CountMany(net_.RandomNode(verify_rng), {7}, verify_rng);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->estimates[0], reference)
        << "fault seed " << seed
        << ": the faulted count's partial observables leaked into the "
           "frontier cache and pinned the clean rescan low";
  }
  EXPECT_TRUE(exercised)
      << "no fault seed produced a skipped-probe count that differed; "
         "the regression scenario was never exercised";
}

}  // namespace
}  // namespace dhs
