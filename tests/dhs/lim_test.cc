#include "dhs/lim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/random.h"

namespace dhs {
namespace {

TEST(ProbEmptyTest, Equation5SpotValues) {
  // ((N'-t)/N')^n'
  EXPECT_NEAR(ProbAllProbesEmpty(10, 5, 1), std::pow(0.9, 5), 1e-12);
  EXPECT_NEAR(ProbAllProbesEmpty(10, 5, 3), std::pow(0.7, 5), 1e-12);
}

TEST(ProbEmptyTest, EdgeCases) {
  EXPECT_EQ(ProbAllProbesEmpty(10, 0, 3), 1.0);   // nothing stored
  EXPECT_EQ(ProbAllProbesEmpty(10, 5, 0), 1.0);   // no probes yet
  EXPECT_EQ(ProbAllProbesEmpty(10, 5, 10), 0.0);  // probed every bin
  EXPECT_EQ(ProbAllProbesEmpty(10, 5, 15), 0.0);
}

TEST(ProbEmptyTest, MonotoneDecreasingInProbes) {
  for (int t = 1; t < 10; ++t) {
    EXPECT_LE(ProbAllProbesEmpty(10, 7, t + 1), ProbAllProbesEmpty(10, 7, t));
  }
}

TEST(ProbEmptyTest, MatchesSimulation) {
  // Empirical validation of eq. 5: throw n' balls into N' bins, probe t
  // distinct bins, check the all-empty frequency.
  Rng rng(99);
  constexpr uint64_t kBins = 20;
  constexpr uint64_t kItems = 15;
  constexpr int kProbes = 3;
  constexpr int kTrials = 40000;
  int all_empty = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    bool occupied[kBins] = {};
    for (uint64_t i = 0; i < kItems; ++i) {
      occupied[rng.UniformU64(kBins)] = true;
    }
    // Probe 3 distinct random bins.
    uint64_t probes[kProbes];
    int found = 0;
    for (int p = 0; p < kProbes; ++p) {
      uint64_t bin;
      bool fresh;
      do {
        bin = rng.UniformU64(kBins);
        fresh = true;
        for (int q = 0; q < p; ++q) fresh &= probes[q] != bin;
      } while (!fresh);
      probes[p] = bin;
      if (occupied[bin]) ++found;
    }
    if (found == 0) ++all_empty;
  }
  const double expected = ProbAllProbesEmpty(kBins, kItems, kProbes);
  EXPECT_NEAR(static_cast<double>(all_empty) / kTrials, expected, 0.01);
}

TEST(RequiredProbesTest, SolvesEquationFive) {
  // t = ceil(N' (1 - p_miss^(1/n'))), p_miss the residual all-empty
  // probability (see lim.h on the paper's inverted notation).
  EXPECT_EQ(RequiredProbes(100, 50, 0.01),
            static_cast<int>(
                std::ceil(100 * (1 - std::pow(0.01, 1.0 / 50)))));
}

TEST(RequiredProbesTest, MatchesThePapersLimFiveClaim) {
  // §4.1: lim = 5 guarantees >= 0.99 success when the items mapped to an
  // interval match its node count (alpha = 1) — the corrected inversion
  // reproduces that design point.
  for (uint64_t bins : {64u, 128u, 256u, 1024u}) {
    const int required = RequiredProbes(bins, bins, 0.01);
    EXPECT_GE(required, 4) << bins;
    EXPECT_LE(required, 5) << bins;
  }
}

TEST(RequiredProbesTest, AtLeastOne) {
  EXPECT_GE(RequiredProbes(10, 1000000, 0.99), 1);
}

TEST(RequiredProbesTest, EmptyIntervalNeedsFullScan) {
  EXPECT_EQ(RequiredProbes(64, 0, 0.01), 64);
}

TEST(RequiredProbesTest, DenserIntervalsNeedFewerProbes) {
  EXPECT_LE(RequiredProbes(100, 1000, 0.01), RequiredProbes(100, 10, 0.01));
}

TEST(RequiredProbesTest, TighterMissBoundNeedsMoreProbes) {
  EXPECT_LE(RequiredProbes(100, 50, 0.1), RequiredProbes(100, 50, 0.001));
}

TEST(RequiredProbesTest, InversionIsConsistentWithEquationFive) {
  // Probing the required number of bins indeed leaves at most p_miss
  // all-empty probability.
  for (double p_miss : {0.1, 0.01}) {
    for (uint64_t items : {20u, 50u, 200u}) {
      const int t = RequiredProbes(100, items, p_miss);
      EXPECT_LE(ProbAllProbesEmpty(100, items, t), p_miss + 1e-9)
          << items << " " << p_miss;
    }
  }
}

TEST(RequiredProbesReplicatedTest, Equation6) {
  // alpha = n'/N'; lim = ceil(N'(1 - p^(m/(R alpha N')))).
  const uint64_t bins = 128;
  const uint64_t items = 512;
  const int m = 4;
  const int r = 2;
  const double alpha = static_cast<double>(items) / bins;
  const double expected =
      std::ceil(bins * (1 - std::pow(0.01, m / (r * alpha * bins))));
  EXPECT_EQ(RequiredProbesReplicated(bins, items, m, r, 0.01),
            static_cast<int>(expected));
}

TEST(RequiredProbesReplicatedTest, ReplicationReducesProbes) {
  EXPECT_LE(RequiredProbesReplicated(100, 200, 8, 4, 0.01),
            RequiredProbesReplicated(100, 200, 8, 1, 0.01));
}

TEST(RequiredProbesReplicatedTest, MoreBitmapsNeedMoreProbes) {
  EXPECT_LE(RequiredProbesReplicated(100, 400, 1, 1, 0.01),
            RequiredProbesReplicated(100, 400, 64, 1, 0.01));
}

TEST(HitProbabilityTest, PaperDefaultLimGuarantee) {
  // §4.1: lim = 5 guarantees >= 0.99 hit probability when the items
  // mapped to an interval outnumber its nodes (alpha >= 1).
  for (uint64_t bins : {16u, 64u, 256u, 1024u}) {
    EXPECT_GE(HitProbability(bins, bins, 5), 0.99) << bins;
  }
}

TEST(HitProbabilityTest, SparseIntervalsBreakTheGuarantee) {
  // With far fewer items than nodes, 5 probes are not enough — the
  // regime behind the paper's m >= 4096 accuracy collapse.
  EXPECT_LT(HitProbability(1024, 64, 5), 0.99);
}

TEST(HitProbabilityTest, ComplementOfProbEmpty) {
  EXPECT_NEAR(HitProbability(50, 20, 3),
              1.0 - ProbAllProbesEmpty(50, 20, 3), 1e-12);
}

// Regression: for n_items == 0 both budget functions returned
// static_cast<int>(n_bins), which wraps negative once n_bins exceeds
// INT_MAX (Internet-scale N') — a negative lim means "probe nothing"
// where the math says "probe everything".
TEST(RequiredProbesTest, HugeEmptyIntervalSaturatesToIntMax) {
  const uint64_t huge = uint64_t{1} << 62;
  EXPECT_EQ(RequiredProbes(huge, 0, 0.01), std::numeric_limits<int>::max());
  EXPECT_EQ(RequiredProbesReplicated(huge, 0, 4, 2, 0.01),
            std::numeric_limits<int>::max());
  // Just past INT_MAX is the first wrapping width.
  const uint64_t past = static_cast<uint64_t>(
                            std::numeric_limits<int>::max()) + 1;
  EXPECT_EQ(RequiredProbes(past, 0, 0.01), std::numeric_limits<int>::max());
}

// The pinned result is always a usable probe budget: at least one,
// never more than there are bins, for both budget functions across
// extreme densities and miss bounds.
TEST(RequiredProbesTest, ResultAlwaysWithinOneToNBins) {
  for (uint64_t bins : {uint64_t{1}, uint64_t{4}, uint64_t{1000}}) {
    for (uint64_t items : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40}) {
      for (double p_miss : {0.9, 0.5, 1e-12}) {
        const int t = RequiredProbes(bins, items, p_miss);
        EXPECT_GE(t, 1) << bins << " " << items << " " << p_miss;
        EXPECT_LE(static_cast<uint64_t>(t), bins)
            << bins << " " << items << " " << p_miss;
        const int tr = RequiredProbesReplicated(bins, items, 8, 3, p_miss);
        EXPECT_GE(tr, 1) << bins << " " << items << " " << p_miss;
        EXPECT_LE(static_cast<uint64_t>(tr), bins)
            << bins << " " << items << " " << p_miss;
      }
    }
  }
}

// A sub-one requirement (dense interval, loose bound) pins to one
// probe, and an absurdly tight bound pins to a full scan rather than
// overshooting n_bins through ceil.
TEST(RequiredProbesTest, PinsTinyAndOversizedRequirements) {
  EXPECT_EQ(RequiredProbes(10, uint64_t{1} << 50, 0.99), 1);
  EXPECT_EQ(RequiredProbes(4, 1, 1e-300), 4);
}

// ---------------------------------------------------------------------------
// FlatLimTarget: the worst-case eq. 6 requirement over the flat bits,
// the value DhsServing's online tuner converges to.

TEST(FlatLimTargetTest, DegenerateWorldsReturnFloor) {
  // No items: every interval is expected-empty, nothing to insure.
  EXPECT_EQ(FlatLimTarget(1024, 0, 0, 18, 8, 2, 0.01, 3, 100), 3);
  // Fewer than two nodes: no interval can even hold two candidates.
  EXPECT_EQ(FlatLimTarget(1, uint64_t{1} << 20, 0, 18, 8, 2, 0.01, 3, 100), 3);
  EXPECT_EQ(FlatLimTarget(0, uint64_t{1} << 20, 0, 18, 8, 2, 0.01, 3, 100), 3);
}

TEST(FlatLimTargetTest, SubOneItemIntervalsAreSkippedNotInsured) {
  // One item: every interval expects < 1 item (n' = 1 * 2^-(r+1)), so
  // no bit contributes and the floor stands, regardless of how many
  // nodes each interval holds.
  EXPECT_EQ(FlatLimTarget(uint64_t{1} << 20, 1, 0, 18, 8, 2, 0.01, 1, 1000),
            1);
}

TEST(FlatLimTargetTest, SubTwoNodeIntervalsFallBackToTheFloor) {
  // Four nodes: only r=0 has >= 2 expected nodes (N' = 4 * 2^-1), so
  // the target is exactly the eq. 6 requirement of that one interval.
  const uint64_t cardinality = uint64_t{1} << 20;
  const int expected =
      RequiredProbesReplicated(2, cardinality >> 1, 8, 2, 0.01);
  EXPECT_EQ(FlatLimTarget(4, cardinality, 0, 18, 8, 2, 0.01, 1, 1000),
            expected);
}

TEST(FlatLimTargetTest, IsTheMaxOverQualifyingBits) {
  // With the §3.5 bit shift (min_bit > 0) the node exponent rebases to
  // min_bit while the item exponent does not: hand-evaluate each
  // qualifying bit and take the max.
  const uint64_t nodes = 1024;
  const uint64_t cardinality = uint64_t{1} << 12;
  int expected = 1;
  for (int r = 6; r <= 8; ++r) {
    const uint64_t n_bins = nodes >> (r - 6 + 1);
    const uint64_t n_items = cardinality >> (r + 1);
    if (n_bins < 2 || n_items < 1) continue;
    expected = std::max(
        expected, RequiredProbesReplicated(n_bins, n_items, 8, 2, 0.01));
  }
  EXPECT_EQ(FlatLimTarget(nodes, cardinality, 6, 8, 8, 2, 0.01, 1, 1000),
            expected);
}

TEST(FlatLimTargetTest, TighterMissBoundNeverNeedsFewerProbes) {
  const int loose = FlatLimTarget(4096, 100000, 0, 18, 8, 2, 0.1, 1, 100000);
  const int tight = FlatLimTarget(4096, 100000, 0, 18, 8, 2, 0.001, 1, 100000);
  EXPECT_GE(tight, loose);
  EXPECT_GE(loose, 1);
}

TEST(FlatLimTargetTest, ClampsToFloorAndCeiling) {
  // Dense world, loose bound: raw requirement is 1, floor lifts it.
  EXPECT_EQ(FlatLimTarget(64, uint64_t{1} << 30, 0, 18, 8, 2, 0.5, 7, 100), 7);
  // Sparse Internet-scale world, tight bound: requirement exceeds any
  // practical budget, ceiling caps it.
  EXPECT_EQ(FlatLimTarget(uint64_t{1} << 30, uint64_t{1} << 20, 0, 18, 8, 2,
                          1e-6, 1, 48),
            48);
}

TEST(FlatLimTargetTest, InternetScaleBinCountsSaturateInsteadOfWrapping) {
  // N' at r=0 is 2^61 bins — far past INT_MAX. The per-bit requirement
  // saturates (SaturateToInt / PinProbes) and the clamp turns it into
  // the ceiling; a wrapped negative would surface as the floor.
  const int target = FlatLimTarget(uint64_t{1} << 62, uint64_t{1} << 20, 0, 18,
                                   8, 2, 0.01, 1, 200);
  EXPECT_EQ(target, 200);
}

}  // namespace
}  // namespace dhs
