#include "dhs/maintainer.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dht/chord.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

class MaintainerTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kTtl = 10;
  static constexpr uint64_t kMetric = 1;
  static constexpr uint64_t kItems = 30000;

  void SetUp() override {
    ChordConfig chord;
    chord.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(chord);
    Rng rng(1);
    for (int i = 0; i < 128; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());

    DhsConfig config;
    config.k = 24;
    config.m = 32;
    config.ttl_ticks = kTtl;
    auto client = DhsClient::Create(net_.get(), config);
    ASSERT_TRUE(client.ok());
    client_ = std::make_unique<DhsClient>(std::move(client.value()));
    maintainer_ = std::make_unique<DhsMaintainer>(client_.get());

    // Spread items over nodes and register them with the maintainer.
    Rng item_rng(2);
    MixHasher hasher(3);
    const auto nodes = net_->NodeIds();
    for (uint64_t i = 0; i < kItems; ++i) {
      const uint64_t node = nodes[item_rng.UniformU64(nodes.size())];
      maintainer_->RegisterItem(node, kMetric, hasher.HashU64(i));
    }
  }

  // Registry structure, DHS placement and network bookkeeping must all
  // survive whatever churn/refresh sequence the test ran.
  void TearDown() override {
    const Status audit = maintainer_->AuditFull();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
    const Status net_audit = net_->AuditFull();
    EXPECT_TRUE(net_audit.ok()) << net_audit.ToString();
  }

  double CountNow(uint64_t seed) {
    Rng rng(seed);
    auto result = client_->Count(net_->RandomNode(rng), kMetric, rng);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->estimate : -1.0;
  }

  std::unique_ptr<ChordNetwork> net_;
  std::unique_ptr<DhsClient> client_;
  std::unique_ptr<DhsMaintainer> maintainer_;
};

TEST_F(MaintainerTest, RegistrationsTracked) {
  EXPECT_EQ(maintainer_->NumRegistrations(), kItems);
}

TEST_F(MaintainerTest, RefreshKeepsStateAliveIndefinitely) {
  Rng rng(4);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  // Five TTL periods, refreshing every kTtl - 1 ticks.
  for (int period = 0; period < 5; ++period) {
    net_->AdvanceClock(kTtl - 1);
    ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  }
  EXPECT_LT(RelativeError(CountNow(5), static_cast<double>(kItems)), 0.5);
}

TEST_F(MaintainerTest, WithoutRefreshStateAgesOut) {
  Rng rng(6);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  net_->AdvanceClock(kTtl);
  EXPECT_EQ(CountNow(7), 0.0);
}

TEST_F(MaintainerTest, UnregisteredItemsFadeAfterTtl) {
  Rng rng(8);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  // Every node drops its registrations for half the items: re-register
  // from scratch with only even items.
  MixHasher hasher(3);
  for (uint64_t node : net_->NodeIds()) maintainer_->DropNode(node);
  const auto nodes = net_->NodeIds();
  Rng item_rng(2);
  for (uint64_t i = 0; i < kItems; ++i) {
    const uint64_t node = nodes[item_rng.UniformU64(nodes.size())];
    if (i % 2 == 0) {
      maintainer_->RegisterItem(node, kMetric, hasher.HashU64(i));
    }
  }
  EXPECT_EQ(maintainer_->NumRegistrations(), kItems / 2);
  // One TTL period with refreshes: only the kept half survives.
  net_->AdvanceClock(kTtl - 1);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  net_->AdvanceClock(kTtl - 1);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  net_->AdvanceClock(2);  // pre-drop tuples (age kTtl+...) are gone now
  const double estimate = CountNow(9);
  EXPECT_LT(RelativeError(estimate, kItems / 2.0), 0.5);
}

TEST_F(MaintainerTest, SurvivesNodeDepartures) {
  Rng rng(10);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  // A quarter of the nodes fail; their registry entries are dropped (the
  // documents they held are gone for real).
  auto ids = net_->NodeIds();
  for (size_t i = 0; i < ids.size(); i += 4) {
    ASSERT_TRUE(net_->FailNode(ids[i]).ok());
    maintainer_->DropNode(ids[i]);
  }
  // Refresh rounds keep working for the surviving nodes.
  net_->AdvanceClock(kTtl - 1);
  auto rounds = maintainer_->RefreshRound(rng);
  ASSERT_TRUE(rounds.ok());
  EXPECT_GT(*rounds, 0u);
  net_->AdvanceClock(kTtl - 1);
  ASSERT_TRUE(maintainer_->RefreshRound(rng).ok());
  // The count now reflects only surviving items (~3/4 of the original).
  net_->AdvanceClock(2);
  const double estimate = CountNow(11);
  EXPECT_LT(estimate, 1.1 * kItems);
  EXPECT_GT(estimate, 0.3 * kItems);
}

TEST_F(MaintainerTest, UnregisterSingleItem) {
  maintainer_->UnregisterItem(12345, kMetric, 999);  // unknown: no-op
  const uint64_t node = net_->NodeIds()[0];
  maintainer_->RegisterItem(node, 7, 42);
  EXPECT_EQ(maintainer_->NumRegistrations(), kItems + 1);
  maintainer_->UnregisterItem(node, 7, 42);
  EXPECT_EQ(maintainer_->NumRegistrations(), kItems);
}

}  // namespace
}  // namespace dhs
