#include "dhs/config.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace dhs {
namespace {

TEST(DhsConfigTest, DefaultsMatchPaperSetup) {
  DhsConfig config;
  EXPECT_EQ(config.k, 24);
  EXPECT_EQ(config.m, 512);
  EXPECT_EQ(config.lim, 5);
  EXPECT_EQ(config.replication, 1);
  EXPECT_EQ(config.estimator, DhsEstimator::kSuperLogLog);
  EXPECT_DOUBLE_EQ(config.theta0, 0.7);
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, TupleIsEightBytes) {
  // §5.1: metric 8b + vector 16b + bit 8b + timeout 32b = 8 bytes.
  EXPECT_EQ(DhsConfig().TupleBytes(), 8u);
}

TEST(DhsConfigTest, IndexBits) {
  DhsConfig config;
  config.m = 1;
  EXPECT_EQ(config.IndexBits(), 0);
  config.m = 2;
  EXPECT_EQ(config.IndexBits(), 1);
  config.m = 512;
  EXPECT_EQ(config.IndexBits(), 9);
}

TEST(DhsConfigTest, RhoBitsIndependentOfM) {
  DhsConfig config;
  config.k = 24;
  for (int m : {1, 64, 1024}) {
    config.m = m;
    EXPECT_EQ(config.RhoBits(), 24);
  }
}

TEST(DhsConfigTest, RejectsBadK) {
  DhsConfig config;
  config.k = 2;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.k = 65;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.k = 40;
  EXPECT_FALSE(config.Validate(IdSpace(32)).ok());  // k > L
}

TEST(DhsConfigTest, RejectsNonPowerOfTwoM) {
  DhsConfig config;
  config.m = 100;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.m = 0;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, RejectsSllWithOneBitmap) {
  DhsConfig config;
  config.m = 1;
  config.estimator = DhsEstimator::kSuperLogLog;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.estimator = DhsEstimator::kPcsa;
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, RejectsKPlusIndexBeyondSpace) {
  DhsConfig config;
  config.k = 24;
  config.m = 512;  // 24 + 9 = 33 > 32
  EXPECT_FALSE(config.Validate(IdSpace(32)).ok());
  config.m = 64;  // 24 + 6 = 30 <= 32
  EXPECT_TRUE(config.Validate(IdSpace(32)).ok());
}

TEST(DhsConfigTest, RejectsBadLimAndReplication) {
  DhsConfig config;
  config.lim = 0;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.lim = 5;
  config.replication = 0;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, RejectsBadShift) {
  DhsConfig config;
  config.shift_bits = -1;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.shift_bits = 24;  // == RhoBits()
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.shift_bits = 10;
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, RejectsBadTheta) {
  DhsConfig config;
  config.theta0 = 0.0;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.theta0 = 1.5;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.theta0 = 1.0;
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, RejectsBadAdaptiveParameters) {
  DhsConfig config;
  config.adaptive_confidence = 1.0;
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.adaptive_confidence = 0.99;
  config.max_lim = 3;  // below lim = 5
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());
  config.max_lim = 200;
  config.adaptive_lim = true;
  config.expected_cardinality = 100000;
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, ProbeByteFormulas) {
  DhsConfig config;
  EXPECT_EQ(config.ProbeRequestBytes(), 12u);
  EXPECT_EQ(config.ProbeResponseBytes(0), 8u);
  EXPECT_EQ(config.ProbeResponseBytes(10), 28u);
}

// Regression: the retry ladder computes retry_backoff_ticks << attempt
// (client.h RetryBackoffTicks); a config whose deepest shift cannot fit
// in 64 bits used to pass validation and overflow at run time.
TEST(DhsConfigTest, RejectsOverflowingBackoffLadder) {
  DhsConfig config;
  config.retry_backoff_ticks = 100;
  config.retry_attempts = 4;  // deepest shift: 100 << 3
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());

  config.retry_backoff_ticks = uint64_t{1} << 60;
  config.retry_attempts = 10;  // (1 << 60) << 9 overflows
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());

  config.retry_backoff_ticks = 1;
  config.retry_attempts = 64;  // 1 << 63: the deepest representable rung
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
  config.retry_attempts = 65;  // 1 << 64 does not exist
  EXPECT_FALSE(config.Validate(IdSpace(64)).ok());

  // With no backoff the attempt count alone is not a ladder: any depth
  // is fine.
  config.retry_backoff_ticks = 0;
  config.retry_attempts = 200;
  EXPECT_TRUE(config.Validate(IdSpace(64)).ok());
}

TEST(DhsConfigTest, EstimatorNames) {
  EXPECT_STREQ(DhsEstimatorName(DhsEstimator::kPcsa), "DHS-PCSA");
  EXPECT_STREQ(DhsEstimatorName(DhsEstimator::kSuperLogLog), "DHS-sLL");
}

}  // namespace
}  // namespace dhs
