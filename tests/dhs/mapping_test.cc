#include "dhs/mapping.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dhs {
namespace {

DhsConfig Config(int k = 24, int m = 512, int shift = 0) {
  DhsConfig config;
  config.k = k;
  config.m = m;
  config.shift_bits = shift;
  return config;
}

TEST(BitMappingTest, IntervalGeometryMatchesPaper) {
  // thr(r) = 2^(L-r-1): I_0 = [2^63, 2^64), I_1 = [2^62, 2^63), ...
  const IdSpace space(64);
  BitMapping mapping(space, Config());
  auto i0 = mapping.IntervalForBit(0);
  ASSERT_TRUE(i0.ok());
  EXPECT_EQ(i0->lo, uint64_t{1} << 63);
  EXPECT_EQ(i0->size, uint64_t{1} << 63);

  auto i5 = mapping.IntervalForBit(5);
  ASSERT_TRUE(i5.ok());
  EXPECT_EQ(i5->lo, uint64_t{1} << 58);
  EXPECT_EQ(i5->size, uint64_t{1} << 58);
}

TEST(BitMappingTest, SaturationIntervalIsResidual) {
  const IdSpace space(64);
  BitMapping mapping(space, Config(24));
  EXPECT_EQ(mapping.MaxBit(), 24);
  auto last = mapping.IntervalForBit(24);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->lo, 0u);
  EXPECT_EQ(last->size, uint64_t{1} << 40);  // [0, 2^(64-24))
}

TEST(BitMappingTest, IntervalsPartitionTheSpace) {
  const IdSpace space(64);
  BitMapping mapping(space, Config(24));
  // Sum of all interval sizes must equal 2^64 (i.e. overflow to 0).
  uint64_t total = 0;
  for (int r = mapping.MinBit(); r <= mapping.MaxBit(); ++r) {
    total += mapping.IntervalForBit(r)->size;
  }
  EXPECT_EQ(total, 0u);  // 2^64 mod 2^64

  // Adjacent intervals must be contiguous: lo(r) + size(r) == lo(r-1).
  for (int r = 1; r <= mapping.MaxBit(); ++r) {
    auto cur = mapping.IntervalForBit(r);
    auto prev = mapping.IntervalForBit(r - 1);
    EXPECT_EQ(cur->lo + cur->size, prev->lo) << r;
  }
}

TEST(BitMappingTest, OutOfRangeBitsRejected) {
  const IdSpace space(64);
  BitMapping mapping(space, Config(24));
  EXPECT_TRUE(mapping.IntervalForBit(-1).status().IsOutOfRange());
  EXPECT_TRUE(mapping.IntervalForBit(25).status().IsOutOfRange());
}

TEST(BitMappingTest, BitForIdRoundTrips) {
  const IdSpace space(64);
  BitMapping mapping(space, Config(24));
  Rng rng(1);
  for (int r = mapping.MinBit(); r <= mapping.MaxBit(); ++r) {
    const IdInterval interval = *mapping.IntervalForBit(r);
    for (int i = 0; i < 50; ++i) {
      const uint64_t id = mapping.RandomIdIn(interval, rng);
      EXPECT_TRUE(interval.Contains(id));
      EXPECT_EQ(mapping.BitForId(id), r) << "r=" << r;
    }
  }
}

TEST(BitMappingTest, BitForIdBoundaries) {
  const IdSpace space(64);
  BitMapping mapping(space, Config(24));
  EXPECT_EQ(mapping.BitForId(uint64_t{1} << 63), 0);
  EXPECT_EQ(mapping.BitForId(~uint64_t{0}), 0);
  EXPECT_EQ(mapping.BitForId((uint64_t{1} << 63) - 1), 1);
  EXPECT_EQ(mapping.BitForId(0), 24);  // saturation interval
  EXPECT_EQ(mapping.BitForId(1), 24);
}

TEST(BitMappingTest, ShiftMovesBitsToLargerIntervals) {
  const IdSpace space(64);
  BitMapping plain(space, Config(24, 512, 0));
  BitMapping shifted(space, Config(24, 512, 4));
  EXPECT_EQ(shifted.MinBit(), 4);
  // Bit 4 under shift=4 gets interval index 0, i.e. the largest interval.
  auto interval = shifted.IntervalForBit(4);
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval->lo, uint64_t{1} << 63);
  // Bits below the shift are unmapped.
  EXPECT_TRUE(shifted.IntervalForBit(3).status().IsOutOfRange());
  // Bit 4 without shift sits in a 16x smaller interval.
  EXPECT_EQ(plain.IntervalForBit(4)->size, interval->size >> 4);
}

TEST(BitMappingTest, AuditFullPassesAcrossConfigurations) {
  // The structural self-check must hold for every (L, k, shift) corner
  // the rest of the suite exercises: full and narrow spaces, with and
  // without the bit-shift rule.
  for (int L : {8, 16, 24, 64}) {
    const IdSpace space(L);
    for (int k : {4, 8, 24}) {
      for (int shift : {0, 1, 3}) {
        DhsConfig config = Config(k, 16, shift);
        if (!config.Validate(space).ok()) continue;
        BitMapping mapping(space, config);
        const Status audit = mapping.AuditFull();
        EXPECT_TRUE(audit.ok())
            << "L=" << L << " k=" << k << " shift=" << shift << ": "
            << audit.ToString();
      }
    }
  }
}

TEST(BitMappingTest, SmallIdSpace) {
  const IdSpace space(16);
  DhsConfig config = Config(8, 4);
  BitMapping mapping(space, config);
  uint64_t total = 0;
  for (int r = 0; r <= mapping.MaxBit(); ++r) {
    total += mapping.IntervalForBit(r)->size;
  }
  EXPECT_EQ(total, uint64_t{1} << 16);
}

TEST(DhsKeyTest, RoundTripCoordinates) {
  const StoreKey key = MakeDhsKey(0xdeadbeef, 7, 511);
  EXPECT_TRUE(key.is_dhs());
  EXPECT_EQ(key.metric_id(), 0xdeadbeefu);
  EXPECT_EQ(key.bit(), 7);
  EXPECT_EQ(key.vector_id(), 511);
  EXPECT_EQ(MakeDhsKey(1, 2, 0).vector_id(), 0);
  EXPECT_EQ(MakeDhsKey(1, 2, 65535).vector_id(), 65535);
}

TEST(DhsKeyTest, LegacyEncodingPreserved) {
  // The on-the-wire byte layout is unchanged from the string-keyed
  // store: 'D' | metric (8B BE) | bit (1B) | vector (2B BE).
  const std::string bytes = MakeDhsKey(0xdeadbeef, 7, 12).ToBytes();
  ASSERT_EQ(bytes.size(), StoreKey::kDhsEncodedBytes);
  EXPECT_EQ(bytes[0], 'D');
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]), 0xde);
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 0xef);
  EXPECT_EQ(static_cast<uint8_t>(bytes[9]), 7);
  EXPECT_EQ(static_cast<uint8_t>(bytes[10]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[11]), 12);
  EXPECT_EQ(MakeDhsKey(0xdeadbeef, 7, 12).SizeBytes(), bytes.size());
}

TEST(DhsKeyTest, DistinctCoordinatesDistinctKeys) {
  EXPECT_NE(MakeDhsKey(1, 2, 3), MakeDhsKey(1, 2, 4));
  EXPECT_NE(MakeDhsKey(1, 2, 3), MakeDhsKey(1, 3, 3));
  EXPECT_NE(MakeDhsKey(1, 2, 3), MakeDhsKey(2, 2, 3));
  EXPECT_EQ(MakeDhsKey(1, 2, 3), MakeDhsKey(1, 2, 3));
}

TEST(DhsKeyTest, OrdersByMetricThenBitThenVector) {
  // Matches the byte order of the legacy string encoding, so range scans
  // visit records in the historical order.
  EXPECT_LT(MakeDhsKey(1, 9, 9), MakeDhsKey(2, 0, 0));
  EXPECT_LT(MakeDhsKey(1, 2, 9), MakeDhsKey(1, 3, 0));
  EXPECT_LT(MakeDhsKey(1, 2, 3), MakeDhsKey(1, 2, 4));
  // DHS keys sort before raw string keys.
  EXPECT_LT(MakeDhsKey(0xffffffffffffffffull, 255, 65535), StoreKey(""));
}

TEST(IdIntervalTest, ContainsIsHalfOpen) {
  IdInterval interval{100, 50};
  EXPECT_TRUE(interval.Contains(100));
  EXPECT_TRUE(interval.Contains(149));
  EXPECT_FALSE(interval.Contains(150));
  EXPECT_FALSE(interval.Contains(99));
}

}  // namespace
}  // namespace dhs
