// Serving-layer suite (dhs/serving.h): the headline guarantee is that
// every answer the serving layer produces — coalesced, pipelined,
// frontier-cached, lim-tuned — is byte-identical to the unoptimized
// path under fixed seeds. The tests pin that via wave-log replay
// (serving world vs a twin plain world with identical seeds), plus the
// frontier-cache invalidation contract, the lim tuner's convergence to
// the eq. 5/6 prediction, and the serving metrics export.

#include "dhs/serving.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/shard.h"
#include "dhs/client.h"
#include "dhs/front_door.h"
#include "dhs/lim.h"
#include "dhs/maintainer.h"
#include "hashing/hasher.h"
#include "obs/metrics.h"

namespace dhs {
namespace {

OverlayConfig FastOverlay() {
  OverlayConfig overlay;
  overlay.hasher = "mix";
  return overlay;
}

/// An item that deterministically places onto (vector_id, rho):
/// PlaceItem reads the vector from the bits above k and rho from the
/// least significant 1-bit of the low k bits, so h = (vec << k) | 2^r
/// yields exactly (vec, r) for r < k.
uint64_t CraftedItem(int k, int vec, int r) {
  return (static_cast<uint64_t>(vec) << k) | (uint64_t{1} << r);
}

void ExpectSameMulti(const DhsClient::MultiCountResult& a,
                     const DhsClient::MultiCountResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.estimates, b.estimates) << what;
  EXPECT_EQ(a.observables, b.observables) << what;
  EXPECT_EQ(a.gave_up, b.gave_up) << what;
  EXPECT_EQ(a.bitmaps_unresolved, b.bitmaps_unresolved) << what;
  EXPECT_EQ(a.cost.nodes_visited, b.cost.nodes_visited) << what;
  EXPECT_EQ(a.cost.hops, b.cost.hops) << what;
  EXPECT_EQ(a.cost.bytes, b.cost.bytes) << what;
  EXPECT_EQ(a.cost.dht_lookups, b.cost.dht_lookups) << what;
  EXPECT_EQ(a.cost.direct_probes, b.cost.direct_probes) << what;
  EXPECT_EQ(a.cost.retries, b.cost.retries) << what;
  EXPECT_EQ(a.cost.failed_probes, b.cost.failed_probes) << what;
}

void ExpectSameCost(const DhsCostReport& a, const DhsCostReport& b,
                    const std::string& what) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << what;
  EXPECT_EQ(a.hops, b.hops) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.dht_lookups, b.dht_lookups) << what;
  EXPECT_EQ(a.direct_probes, b.direct_probes) << what;
  EXPECT_EQ(a.retries, b.retries) << what;
  EXPECT_EQ(a.failed_probes, b.failed_probes) << what;
  EXPECT_EQ(a.replicas_requested, b.replicas_requested) << what;
  EXPECT_EQ(a.replicas_written, b.replicas_written) << what;
  EXPECT_EQ(a.bit_groups_failed, b.bit_groups_failed) << what;
}

/// Serializes the observable world state (stats, clock, every live
/// record) so two worlds can be compared byte for byte.
std::string WorldDigest(const DhtNetwork& net) {
  std::ostringstream os;
  os << "now " << net.now() << " stats " << net.stats().messages << ' '
     << net.stats().hops << ' ' << net.stats().bytes << " storage "
     << net.TotalStorageBytes() << '\n';
  for (uint64_t id : net.NodeIds()) {
    const NodeStore* store = net.StoreAt(id);
    CHECK(store != nullptr);
    store->ForEach(net.now(), [&](const StoreKey& key, const StoreRecord& rec) {
      os << "rec " << id << ' ' << key.ToBytes() << ' ' << rec.dht_key << ' '
         << rec.value << ' ' << rec.expires_at << '\n';
    });
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Config validation.

TEST(DhsServingConfigTest, ValidatesTunerParameters) {
  DhsServingConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.tuner_gain = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.tuner_gain = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = DhsServingConfig{};
  config.tuner_floor = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = DhsServingConfig{};
  config.tuner_ceiling = 3;
  config.tuner_floor = 5;
  EXPECT_FALSE(config.Validate().ok());
  config = DhsServingConfig{};
  config.tuner_p_miss = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(DhsServingConfigTest, CreateRejectsNullBackends) {
  EXPECT_FALSE(
      DhsServing::Create(static_cast<DhsClient*>(nullptr), DhsServingConfig{})
          .ok());
  EXPECT_FALSE(DhsServing::Create(static_cast<DhsFrontDoor*>(nullptr),
                                  DhsServingConfig{})
                   .ok());
}

// ---------------------------------------------------------------------------
// LimTuner: damped convergence to the eq. 5/6 target.

TEST(LimTunerTest, ConvergesFromAboveWithinOneBand) {
  LimTuner tuner(100, 1, 200, 0.5);
  for (int i = 0; i < 12; ++i) tuner.Observe(6, /*degraded=*/false);
  EXPECT_TRUE(tuner.Converged());
  EXPECT_LE(std::abs(tuner.lim() - 6), tuner.band());
  EXPECT_EQ(tuner.band(), 2);  // max(1, (6+3)/4)
}

TEST(LimTunerTest, ConvergesFromBelowWithinOneBand) {
  LimTuner tuner(1, 1, 200, 0.5);
  for (int i = 0; i < 12; ++i) tuner.Observe(40, /*degraded=*/false);
  EXPECT_TRUE(tuner.Converged());
  EXPECT_LE(std::abs(tuner.lim() - 40), tuner.band());
}

TEST(LimTunerTest, NeverOvershootsTheGoal) {
  // gain <= 1 implies each step is at most the remaining gap, so the
  // trajectory is monotone until it lands exactly on the goal.
  LimTuner tuner(100, 1, 200, 0.5);
  int prev = tuner.lim();
  for (int i = 0; i < 20; ++i) {
    tuner.Observe(6, false);
    EXPECT_LE(tuner.lim(), prev);
    EXPECT_GE(tuner.lim(), 6);
    prev = tuner.lim();
  }
  EXPECT_EQ(tuner.lim(), 6);
}

TEST(LimTunerTest, DegradedWavesAimOneBandAboveTarget) {
  LimTuner tuner(6, 1, 200, 1.0);  // gain 1: jump straight to the goal
  tuner.Observe(6, /*degraded=*/true);
  EXPECT_EQ(tuner.lim(), 6 + tuner.band());
  // A clean wave pulls it back to the target itself.
  tuner.Observe(6, /*degraded=*/false);
  EXPECT_EQ(tuner.lim(), 6);
}

TEST(LimTunerTest, StaysInsideClampRange) {
  LimTuner tuner(10, 4, 20, 1.0);
  tuner.Observe(1, false);  // target below floor
  EXPECT_EQ(tuner.lim(), 4);
  tuner.Observe(500, false);  // target above ceiling
  EXPECT_EQ(tuner.lim(), 20);
  tuner.Observe(20, true);  // degraded at the ceiling cannot escape it
  EXPECT_EQ(tuner.lim(), 20);
}

TEST(LimTunerTest, TrajectoryIsDeterministic) {
  std::vector<int> runs[2];
  for (auto& run : runs) {
    LimTuner tuner(100, 1, 200, 0.5);
    for (int i = 0; i < 8; ++i) {
      tuner.Observe(i % 3 == 0 ? 12 : 9, /*degraded=*/i % 4 == 1);
      run.push_back(tuner.lim());
    }
  }
  EXPECT_EQ(runs[0], runs[1]);
}

// ---------------------------------------------------------------------------
// Coalescing: duplicate counts ride one wave, and the wave-log replay
// through a plain DhsClient reproduces every waiter's answer exactly.

class ServingClientTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 192;

  DhsConfig Config() {
    DhsConfig config;
    config.k = 24;
    config.m = 64;
    config.replication = 2;
    config.frontier_cache = true;
    return config;
  }

  /// Two identically seeded worlds.
  struct World {
    explicit World(const DhsConfig& config) : net(FastOverlay()) {
      Rng rng(20260705);
      for (int i = 0; i < kNodes; ++i) CHECK_OK(net.AddNode(rng.Next()));
      auto created = DhsClient::Create(&net, config);
      CHECK_OK(created);
      client = std::make_unique<DhsClient>(std::move(created.value()));
    }
    void Populate(uint64_t metric, uint64_t n, uint64_t salt) {
      Rng rng(salt);
      MixHasher hasher(salt);
      std::vector<uint64_t> batch;
      for (uint64_t i = 0; i < n; ++i) {
        batch.push_back(hasher.HashU64(i));
        if (batch.size() == 250) {
          CHECK_OK(client->InsertBatch(net.RandomNode(rng), metric, batch,
                                       rng));
          batch.clear();
        }
      }
      if (!batch.empty()) {
        CHECK_OK(client->InsertBatch(net.RandomNode(rng), metric, batch, rng));
      }
    }
    ChordNetwork net;
    std::unique_ptr<DhsClient> client;
  };
};

TEST_F(ServingClientTest, CoalescedCountsMatchPlainReplay) {
  World serving_world(Config());
  World plain_world(Config());
  for (World* w : {&serving_world, &plain_world}) {
    w->Populate(3, 8000, 11);
    w->Populate(4, 4000, 12);
  }

  auto serving = DhsServing::Create(serving_world.client.get(),
                                    DhsServingConfig{});
  ASSERT_TRUE(serving.ok());

  Rng pick(77);
  const uint64_t origin_a = serving_world.net.RandomNode(pick);
  const uint64_t origin_b = serving_world.net.RandomNode(pick);

  // Six requests over three distinct metric sets: {3} x3, {3,4} x2,
  // {4} x1 — three waves total.
  std::vector<uint64_t> tickets;
  tickets.push_back(serving->SubmitCount(origin_a, {3}));
  tickets.push_back(serving->SubmitCount(origin_b, {3, 4}));
  tickets.push_back(serving->SubmitCount(origin_b, {3}));
  tickets.push_back(serving->SubmitCount(origin_a, {4}));
  tickets.push_back(serving->SubmitCount(origin_a, {3, 4}));
  tickets.push_back(serving->SubmitCount(origin_b, {3}));

  Rng serve_rng(2026);
  ASSERT_TRUE(serving->Flush(serve_rng).ok());
  EXPECT_EQ(serving->stats().count_requests, 6u);
  EXPECT_EQ(serving->stats().count_waves, 3u);
  EXPECT_EQ(serving->stats().coalesced, 3u);

  // Replay the wave log through the plain twin with the same seed.
  Rng replay_rng(2026);
  std::vector<DhsClient::MultiCountResult> wave_results;
  for (const ServingWave& wave : serving->wave_log()) {
    ASSERT_EQ(wave.kind, ServingWave::kCountWave);
    DhsCountOptions options;
    options.lim_override = wave.lim_override;
    auto replayed = plain_world.client->CountMany(wave.origin, wave.metric_ids,
                                                  replay_rng, options);
    ASSERT_TRUE(replayed.ok());
    wave_results.push_back(std::move(replayed.value()));
  }
  ASSERT_EQ(wave_results.size(), 3u);

  // Waves formed in first-seen order: {3}, {3,4}, {4}. Every waiter of
  // a set got that wave's exact result.
  const std::vector<size_t> wave_of_ticket = {0, 1, 0, 2, 1, 0};
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto result = serving->TakeCount(tickets[i]);
    ASSERT_TRUE(result.ok());
    ExpectSameMulti(result.value(), wave_results[wave_of_ticket[i]],
                    "ticket " + std::to_string(i));
  }
  // A ticket is gone once taken.
  EXPECT_FALSE(serving->TakeCount(tickets[0]).ok());

  // Both worlds issued identical network traffic.
  EXPECT_EQ(WorldDigest(serving_world.net), WorldDigest(plain_world.net));
}

TEST_F(ServingClientTest, CoalescingOffRunsEveryRequestAsItsOwnWave) {
  World world(Config());
  world.Populate(3, 2000, 21);
  DhsServingConfig config;
  config.coalesce_counts = false;
  auto serving = DhsServing::Create(world.client.get(), config);
  ASSERT_TRUE(serving.ok());
  Rng pick(5);
  const uint64_t origin = world.net.RandomNode(pick);
  serving->SubmitCount(origin, {3});
  serving->SubmitCount(origin, {3});
  serving->SubmitCount(origin, {3});
  Rng rng(6);
  ASSERT_TRUE(serving->Flush(rng).ok());
  EXPECT_EQ(serving->stats().count_waves, 3u);
  EXPECT_EQ(serving->stats().coalesced, 0u);
}

// Inserts flush before counts: a mixed flush's counts observe its own
// inserts, exactly as a caller issuing the requests back to back.
TEST_F(ServingClientTest, MixedFlushRunsInsertsBeforeCounts) {
  World world(Config());
  auto serving = DhsServing::Create(world.client.get(), DhsServingConfig{});
  ASSERT_TRUE(serving.ok());

  Rng pick(9);
  const uint64_t origin = world.net.RandomNode(pick);
  MixHasher hasher(33);
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < 500; ++i) items.push_back(hasher.HashU64(i));

  const uint64_t count_ticket = serving->SubmitCount(origin, {8});
  const uint64_t insert_ticket = serving->SubmitInsertBatch(origin, 8, items);
  Rng rng(10);
  ASSERT_TRUE(serving->Flush(rng).ok());

  ASSERT_EQ(serving->wave_log().size(), 2u);
  EXPECT_EQ(serving->wave_log()[0].kind, ServingWave::kInsertWave);
  EXPECT_EQ(serving->wave_log()[1].kind, ServingWave::kCountWave);

  auto inserted = serving->TakeInsert(insert_ticket);
  ASSERT_TRUE(inserted.ok());
  EXPECT_GT(inserted->replicas_written, 0);
  auto counted = serving->TakeCount(count_ticket);
  ASSERT_TRUE(counted.ok());
  EXPECT_GT(counted->estimates[0], 0.0) << "count ran before the insert";
}

// ---------------------------------------------------------------------------
// Pipelined inserts through the sharded front door: one engine batch,
// byte-identical to sequential per-batch execution.

class ServingFrontDoorTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 64;

  DhsConfig Config() {
    DhsConfig config;
    config.k = 16;
    config.m = 16;
    config.lim = 3;
    config.replication = 2;
    config.ttl_ticks = 4096;
    return config;
  }

  struct World {
    World(const DhsConfig& config, int shards) : net(FastOverlay()) {
      Rng rng(0x5eed);
      std::vector<uint64_t> ids;
      for (int i = 0; i < kNodes; ++i) ids.push_back(rng.Next());
      CHECK(net.BulkAddNodes(std::move(ids)) == static_cast<size_t>(kNodes));
      engine = std::make_unique<ShardedNetwork>(&net, shards);
      auto created = DhsFrontDoor::Create(engine.get(), config);
      CHECK_OK(created);
      door = std::make_unique<DhsFrontDoor>(std::move(created.value()));
    }
    ChordNetwork net;
    std::unique_ptr<ShardedNetwork> engine;
    std::unique_ptr<DhsFrontDoor> door;
  };

  /// Five insert batches over three metrics, as submitted to serving
  /// (pipelined) or executed back to back (plain).
  static std::vector<std::pair<uint64_t, std::vector<uint64_t>>> Batches() {
    std::vector<std::pair<uint64_t, std::vector<uint64_t>>> batches;
    MixHasher hasher(71);
    uint64_t next = 0;
    for (uint64_t metric : {5u, 9u, 5u, 2u, 9u}) {
      std::vector<uint64_t> items;
      for (int i = 0; i < 120; ++i) items.push_back(hasher.HashU64(next++));
      batches.emplace_back(metric, std::move(items));
    }
    return batches;
  }
};

TEST_F(ServingFrontDoorTest, PipelinedInsertsMatchSequentialExecution) {
  for (int shards : {1, 4}) {
    World serving_world(Config(), shards);
    World plain_world(Config(), shards);
    auto serving =
        DhsServing::Create(serving_world.door.get(), DhsServingConfig{});
    ASSERT_TRUE(serving.ok());

    const auto batches = Batches();
    Rng pick(3);
    std::vector<uint64_t> origins;
    for (size_t i = 0; i < batches.size(); ++i) {
      origins.push_back(serving_world.net.RandomNode(pick));
    }

    std::vector<uint64_t> tickets;
    for (size_t i = 0; i < batches.size(); ++i) {
      tickets.push_back(serving->SubmitInsertBatch(origins[i],
                                                   batches[i].first,
                                                   batches[i].second));
    }
    Rng serve_rng(44);
    ASSERT_TRUE(serving->Flush(serve_rng).ok());
    EXPECT_EQ(serving->stats().insert_waves, 1u)
        << "pipelining must merge all batches into one engine wave";

    // Sequential twin: same batches, same order, same seed.
    Rng plain_rng(44);
    for (size_t i = 0; i < batches.size(); ++i) {
      auto cost = plain_world.door->InsertBatch(origins[i], batches[i].first,
                                                batches[i].second, plain_rng);
      ASSERT_TRUE(cost.ok());
      auto served = serving->TakeInsert(tickets[i]);
      ASSERT_TRUE(served.ok());
      ExpectSameCost(served.value(), cost.value(),
                     "batch " + std::to_string(i) + " shards " +
                         std::to_string(shards));
    }
    EXPECT_EQ(WorldDigest(serving_world.net), WorldDigest(plain_world.net))
        << "shards " << shards;
  }
}

TEST_F(ServingFrontDoorTest, PipeliningOffExecutesBatchesSequentially) {
  World world(Config(), 2);
  DhsServingConfig config;
  config.pipeline_inserts = false;
  auto serving = DhsServing::Create(world.door.get(), config);
  ASSERT_TRUE(serving.ok());
  const auto batches = Batches();
  Rng pick(3);
  for (const auto& [metric, items] : batches) {
    serving->SubmitInsertBatch(world.net.RandomNode(pick), metric, items);
  }
  Rng rng(44);
  ASSERT_TRUE(serving->Flush(rng).ok());
  EXPECT_EQ(serving->stats().insert_waves, batches.size());
}

// ---------------------------------------------------------------------------
// Frontier-cache invalidation: inserts that grow the frontier, faulted
// counts, and out-of-band growth (another client, a maintainer
// republish) must not serve stale frontiers. Crafted items make the
// undercount deterministic: with an exhaustive lim every probe wave
// sees exactly what is stored, so a stale frontier is the ONLY way a
// repeat count can miss the new high bit.

class FrontierInvalidationTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 64;
  static constexpr uint64_t kMetric = 17;
  static constexpr int kLowBit = 6;
  static constexpr int kHighBit = 12;

  DhsConfig Config() {
    DhsConfig config;
    config.k = 20;
    config.m = 16;
    config.lim = kNodes + 8;  // exhaustive probing: counts are exact
    config.max_lim = 2 * kNodes;
    config.replication = 2;
    config.ttl_ticks = 1 << 20;
    config.frontier_cache = true;
    return config;
  }

  void SetUp() override {
    Rng rng(20260808);
    for (int i = 0; i < kNodes; ++i) ASSERT_TRUE(net_.AddNode(rng.Next()).ok());
  }

  /// Seeds the metric with items up to kLowBit and performs the count
  /// that populates the frontier cache. Returns the cached observable
  /// of vector 0 (== kLowBit).
  int SeedAndPrime(DhsServing& serving, Rng& rng) {
    std::vector<uint64_t> items;
    for (int r = 0; r <= kLowBit; ++r) items.push_back(CraftedItem(20, 0, r));
    CHECK_OK(serving.InsertBatch(net_.RandomNode(rng), kMetric, items, rng));
    auto primed = serving.Count(net_.RandomNode(rng), kMetric, rng);
    CHECK_OK(primed);
    CHECK(!primed->gave_up && primed->cost.failed_probes == 0)
        << "priming count must be complete to cache the frontier";
    CHECK(primed->observables[0] == kLowBit) << primed->observables[0];
    return primed->observables[0];
  }

  ChordNetwork net_{FastOverlay()};
};

TEST_F(FrontierInvalidationTest, TableDrivenGrowthScenarios) {
  struct Case {
    const char* name;
    // How the high-rho item reaches the DHS.
    enum { kThroughServing, kOtherClient, kMaintainer } growth;
    // Whether the serving layer is told (InvalidateMetric).
    bool signalled;
    // The observable a post-growth count must report.
    int expected_bit;
  };
  const Case cases[] = {
      // Inserts through the serving layer invalidate implicitly.
      {"insert-through-serving", Case::kThroughServing, false, kHighBit},
      // Out-of-band growth with the contract honoured: fresh answer.
      {"other-client-signalled", Case::kOtherClient, true, kHighBit},
      {"maintainer-republish-signalled", Case::kMaintainer, true, kHighBit},
      // The contract violated: the stale frontier undercounts — this
      // pins WHY the invalidation signal is required, not a desired
      // behaviour.
      {"other-client-unsignalled", Case::kOtherClient, false, kLowBit},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ChordNetwork net(FastOverlay());
    Rng setup(20260808);
    for (int i = 0; i < kNodes; ++i) ASSERT_TRUE(net.AddNode(setup.Next()).ok());

    auto client = DhsClient::Create(&net, Config());
    ASSERT_TRUE(client.ok());
    auto serving = DhsServing::Create(&client.value(), DhsServingConfig{});
    ASSERT_TRUE(serving.ok());

    Rng rng(91);
    std::vector<uint64_t> low;
    for (int r = 0; r <= kLowBit; ++r) low.push_back(CraftedItem(20, 0, r));
    ASSERT_TRUE(
        serving->InsertBatch(net.RandomNode(rng), kMetric, low, rng).ok());
    auto primed = serving->Count(net.RandomNode(rng), kMetric, rng);
    ASSERT_TRUE(primed.ok());
    ASSERT_EQ(primed->observables[0], kLowBit);
    ASSERT_TRUE(client->HasFrontier(kMetric));

    // Grow the metric past the cached frontier.
    const std::vector<uint64_t> high = {CraftedItem(20, 0, kHighBit)};
    switch (c.growth) {
      case Case::kThroughServing:
        ASSERT_TRUE(
            serving->InsertBatch(net.RandomNode(rng), kMetric, high, rng)
                .ok());
        break;
      case Case::kOtherClient: {
        auto other = DhsClient::Create(&net, Config());
        ASSERT_TRUE(other.ok());
        ASSERT_TRUE(
            other->InsertBatch(net.RandomNode(rng), kMetric, high, rng).ok());
        break;
      }
      case Case::kMaintainer: {
        auto other = DhsClient::Create(&net, Config());
        ASSERT_TRUE(other.ok());
        DhsMaintainer maintainer(&other.value());
        maintainer.RegisterItem(net.RandomNode(rng), kMetric, high[0]);
        auto rounds = maintainer.RefreshRound(rng);
        ASSERT_TRUE(rounds.ok());
        ASSERT_GT(*rounds, 0u);
        break;
      }
    }
    if (c.signalled) serving->InvalidateMetric(kMetric);

    auto after = serving->Count(net.RandomNode(rng), kMetric, rng);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->observables[0], c.expected_bit);
    if (c.signalled) {
      // The signal landed in the wave log so replay mirrors it.
      bool logged = false;
      for (const ServingWave& w : serving->wave_log()) {
        logged |= w.kind == ServingWave::kInvalidate && w.metric_id == kMetric;
      }
      EXPECT_TRUE(logged);
    }
  }
}

// A degraded count wave (gave_up or skipped probes) drops the served
// metrics' frontiers: the degradation is evidence the world changed
// under the cache. Seed-hunts for a wave that degrades without
// erroring, as in the client's FaultedCountDoesNotPoison regression.
TEST_F(FrontierInvalidationTest, DegradedWaveInvalidatesFrontier) {
  auto client = DhsClient::Create(&net_, Config());
  ASSERT_TRUE(client.ok());
  auto serving = DhsServing::Create(&client.value(), DhsServingConfig{});
  ASSERT_TRUE(serving.ok());
  Rng rng(91);
  SeedAndPrime(*serving, rng);
  ASSERT_TRUE(client->HasFrontier(kMetric));

  bool exercised = false;
  for (uint64_t seed = 1; seed <= 60 && !exercised; ++seed) {
    FaultConfig faults;
    faults.drop_probability = 0.35;
    faults.timeout_probability = 0.2;
    faults.seed = seed;
    ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
    Rng faulted_rng(seed);
    auto faulted =
        serving->Count(net_.RandomNode(faulted_rng), kMetric, faulted_rng);
    net_.ClearFaultPlan();
    if (!faulted.ok()) continue;
    if (!faulted->gave_up && faulted->cost.failed_probes == 0) {
      // Clean despite the plan; the cache write is legitimate.
      EXPECT_TRUE(client->HasFrontier(kMetric));
      continue;
    }
    exercised = true;
    EXPECT_FALSE(client->HasFrontier(kMetric))
        << "seed " << seed << ": degraded wave left the frontier cached";
    EXPECT_GT(serving->stats().degraded_waves, 0u);
  }
  ASSERT_TRUE(exercised) << "no fault seed produced a degraded-but-ok count";
}

// invalidate_on_fault can be turned off: the cache entry survives a
// degraded wave (it is still a sound upper bound — only external
// inserts can invalidate it semantically).
TEST_F(FrontierInvalidationTest, FaultInvalidationIsOptional) {
  auto client = DhsClient::Create(&net_, Config());
  ASSERT_TRUE(client.ok());
  DhsServingConfig config;
  config.invalidate_on_fault = false;
  auto serving = DhsServing::Create(&client.value(), config);
  ASSERT_TRUE(serving.ok());
  Rng rng(91);
  SeedAndPrime(*serving, rng);

  bool exercised = false;
  for (uint64_t seed = 1; seed <= 60 && !exercised; ++seed) {
    FaultConfig faults;
    faults.drop_probability = 0.35;
    faults.timeout_probability = 0.2;
    faults.seed = seed;
    ASSERT_TRUE(net_.SetFaultPlan(faults).ok());
    Rng faulted_rng(seed);
    auto faulted =
        serving->Count(net_.RandomNode(faulted_rng), kMetric, faulted_rng);
    net_.ClearFaultPlan();
    if (!faulted.ok()) continue;
    if (!faulted->gave_up && faulted->cost.failed_probes == 0) continue;
    exercised = true;
    EXPECT_TRUE(client->HasFrontier(kMetric));
  }
  ASSERT_TRUE(exercised);
}

// The sharded front door honours the same cache semantics: a repeat
// count starts at the cached frontier, inserts through the door
// invalidate, and the serving signal reaches the door's cache.
TEST_F(FrontierInvalidationTest, FrontDoorFrontierServedAndInvalidated) {
  ShardedNetwork engine(&net_, 2);
  auto door = DhsFrontDoor::Create(&engine, Config());
  ASSERT_TRUE(door.ok());
  auto serving = DhsServing::Create(&door.value(), DhsServingConfig{});
  ASSERT_TRUE(serving.ok());

  Rng rng(91);
  SeedAndPrime(*serving, rng);
  ASSERT_TRUE(door->HasFrontier(kMetric));

  // The cached repeat count returns the same observables.
  auto repeat = serving->Count(net_.RandomNode(rng), kMetric, rng);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->observables[0], kLowBit);

  // Out-of-band growth through a second front door + signal.
  ShardedNetwork other_engine(&net_, 2);
  auto other = DhsFrontDoor::Create(&other_engine, Config());
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(other
                  ->InsertBatch(net_.RandomNode(rng), kMetric,
                                {CraftedItem(20, 0, kHighBit)}, rng)
                  .ok());
  serving->InvalidateMetric(kMetric);
  EXPECT_FALSE(door->HasFrontier(kMetric));
  auto fresh = serving->Count(net_.RandomNode(rng), kMetric, rng);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->observables[0], kHighBit);
}

// frontier_max_entries bounds the cache; the lowest metric id is
// evicted (deterministic, so twin worlds evict identically).
TEST_F(FrontierInvalidationTest, FrontierCacheEvictsLowestMetricId) {
  DhsConfig config = Config();
  config.frontier_max_entries = 2;
  auto client = DhsClient::Create(&net_, config);
  ASSERT_TRUE(client.ok());
  Rng rng(17);
  for (uint64_t metric : {5u, 9u, 3u}) {
    std::vector<uint64_t> items;
    for (int r = 0; r <= 4; ++r) items.push_back(CraftedItem(20, 0, r));
    ASSERT_TRUE(
        client->InsertBatch(net_.RandomNode(rng), metric, items, rng).ok());
    auto counted = client->CountMany(net_.RandomNode(rng), {metric}, rng);
    ASSERT_TRUE(counted.ok());
    ASSERT_FALSE(counted->gave_up);
  }
  EXPECT_EQ(client->FrontierEntries(), 2u);
  EXPECT_TRUE(client->HasFrontier(9));
  EXPECT_TRUE(client->HasFrontier(3));
  EXPECT_FALSE(client->HasFrontier(5)) << "lowest id at eviction time";
}

// ---------------------------------------------------------------------------
// Online lim tuning: from a mis-sized configured lim, the serving
// layer converges to within one retry band of the eq. 5/6 prediction,
// deterministically.

TEST(ServingLimTunerTest, ConvergesToFlatLimTargetFromBothSides) {
  for (int initial_lim : {100, 1}) {
    SCOPED_TRACE(initial_lim);
    std::vector<int> trajectories[2];
    for (auto& trajectory : trajectories) {
      ChordNetwork net(FastOverlay());
      Rng setup(20260705);
      for (int i = 0; i < 192; ++i) CHECK_OK(net.AddNode(setup.Next()));
      DhsConfig config;
      config.k = 24;
      config.m = 64;
      config.replication = 2;
      config.lim = initial_lim;
      config.max_lim = 256;
      auto client = DhsClient::Create(&net, config);
      ASSERT_TRUE(client.ok());

      // Populate, then serve repeated counts with the tuner on.
      Rng rng(55);
      MixHasher hasher(55);
      std::vector<uint64_t> batch;
      for (uint64_t i = 0; i < 20000; ++i) {
        batch.push_back(hasher.HashU64(i));
        if (batch.size() == 500) {
          ASSERT_TRUE(
              client->InsertBatch(net.RandomNode(rng), 6, batch, rng).ok());
          batch.clear();
        }
      }

      DhsServingConfig serving_config;
      serving_config.tune_lim = true;
      serving_config.tuner_gain = 0.5;
      auto serving = DhsServing::Create(&client.value(), serving_config);
      ASSERT_TRUE(serving.ok());

      double last_estimate = 0.0;
      for (int wave = 0; wave < 14; ++wave) {
        auto result = serving->Count(net.RandomNode(rng), 6, rng);
        ASSERT_TRUE(result.ok());
        last_estimate = result->estimate;
        trajectory.push_back(serving->tuner()->lim());
      }

      const LimTuner* tuner = serving->tuner();
      ASSERT_NE(tuner, nullptr);
      EXPECT_TRUE(tuner->Converged())
          << "lim " << tuner->lim() << " target " << tuner->target();
      EXPECT_LE(std::abs(tuner->lim() - tuner->target()), tuner->band());
      // The tuner's target is exactly the eq. 5/6 prediction for the
      // observed cardinality.
      const int expected = FlatLimTarget(
          192, static_cast<uint64_t>(std::llround(last_estimate)),
          client->mapping().MinBit(), client->mapping().MaxBit(), config.m,
          config.replication, 1.0 - config.adaptive_confidence,
          serving_config.tuner_floor, config.max_lim);
      EXPECT_EQ(tuner->target(), expected);
      // The tuned budget actually reaches count waves.
      EXPECT_EQ(serving->lim_override(), tuner->lim());
    }
    EXPECT_EQ(trajectories[0], trajectories[1])
        << "tuner trajectory must be deterministic under fixed seeds";
  }
}

// ---------------------------------------------------------------------------
// Property test: randomized schedules over both geometries and all
// three estimators, clean and faulted — every coalesced / cached /
// tuned answer equals the same schedule replayed through a plain
// DhsClient, wave for wave.

template <typename Network>
void RunRandomScheduleEquivalence(DhsEstimator estimator, uint64_t seed) {
  DhsConfig config;
  config.k = 24;
  config.m = estimator == DhsEstimator::kHyperLogLog ? 16 : 8;
  config.replication = 2;
  config.retry_attempts = 2;
  config.estimator = estimator;
  config.frontier_cache = true;

  Network serving_net(FastOverlay());
  Network plain_net(FastOverlay());
  Rng setup(20260705);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 96; ++i) ids.push_back(setup.Next());
  for (uint64_t id : ids) {
    CHECK_OK(serving_net.AddNode(id));
    CHECK_OK(plain_net.AddNode(id));
  }
  auto serving_client = DhsClient::Create(&serving_net, config);
  ASSERT_TRUE(serving_client.ok());
  auto plain_client = DhsClient::Create(&plain_net, config);
  ASSERT_TRUE(plain_client.ok());

  DhsServingConfig serving_config;
  serving_config.tune_lim = true;  // the override rides the wave log
  auto serving = DhsServing::Create(&serving_client.value(), serving_config);
  ASSERT_TRUE(serving.ok());

  constexpr int kEpochs = 8;
  constexpr uint64_t kMetrics[] = {2, 3, 5, 8};
  Rng schedule(seed);
  MixHasher hasher(seed);
  uint64_t next_item = 0;

  // Per epoch: the submitted tickets, to compare after replay.
  struct EpochCounts {
    std::vector<uint64_t> tickets;
    std::vector<std::vector<uint64_t>> sets;  // parallel to tickets
  };
  std::vector<std::vector<uint64_t>> insert_tickets(kEpochs);
  std::vector<EpochCounts> count_tickets(kEpochs);
  std::vector<size_t> log_end(kEpochs);  // wave-log size after each epoch
  // Faulted middle segment, bounded by wave-log indices for replay.
  const FaultConfig faults = [] {
    FaultConfig f;
    f.drop_probability = 0.15;
    f.timeout_probability = 0.05;
    f.seed = 1234;
    return f;
  }();
  constexpr int kFaultOnEpoch = 3;
  constexpr int kFaultOffEpoch = 6;

  Rng serve_rng(seed ^ 0xf00d);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (epoch == kFaultOnEpoch) ASSERT_TRUE(serving_net.SetFaultPlan(faults).ok());
    if (epoch == kFaultOffEpoch) serving_net.ClearFaultPlan();
    const int requests = 3 + static_cast<int>(schedule.UniformU64(4));
    for (int r = 0; r < requests; ++r) {
      const uint64_t origin = serving_net.RandomNode(schedule);
      if (schedule.UniformU64(100) < 40) {
        const uint64_t metric = kMetrics[schedule.UniformU64(4)];
        std::vector<uint64_t> items;
        const int n = 20 + static_cast<int>(schedule.UniformU64(60));
        for (int i = 0; i < n; ++i) items.push_back(hasher.HashU64(next_item++));
        insert_tickets[epoch].push_back(
            serving->SubmitInsertBatch(origin, metric, items));
      } else {
        std::vector<uint64_t> set;
        set.push_back(kMetrics[schedule.UniformU64(4)]);
        if (schedule.UniformU64(2) == 0) {
          const uint64_t extra = kMetrics[schedule.UniformU64(4)];
          if (extra != set[0]) set.push_back(extra);
        }
        count_tickets[epoch].sets.push_back(set);
        count_tickets[epoch].tickets.push_back(
            serving->SubmitCount(origin, set));
      }
    }
    ASSERT_TRUE(serving->Flush(serve_rng).ok() || epoch >= kFaultOnEpoch);
    log_end[epoch] = serving->wave_log().size();
  }
  serving_net.ClearFaultPlan();

  // Replay the wave log through the plain twin, toggling the fault
  // plan at the recorded epoch boundaries.
  Rng replay_rng(seed ^ 0xf00d);
  const auto& log = serving->wave_log();
  size_t wave_index = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (epoch == kFaultOnEpoch) ASSERT_TRUE(plain_net.SetFaultPlan(faults).ok());
    if (epoch == kFaultOffEpoch) plain_net.ClearFaultPlan();

    // Group the epoch's count tickets exactly as the serving layer
    // does: by metric set, first-seen order.
    std::map<std::vector<uint64_t>, std::vector<uint64_t>> by_set;
    std::vector<const std::vector<uint64_t>*> group_order;
    const EpochCounts& counts = count_tickets[epoch];
    for (size_t i = 0; i < counts.tickets.size(); ++i) {
      auto [it, inserted] = by_set.emplace(counts.sets[i],
                                           std::vector<uint64_t>{});
      if (inserted) group_order.push_back(&it->first);
      it->second.push_back(counts.tickets[i]);
    }

    size_t insert_i = 0;
    size_t group_i = 0;
    for (; wave_index < log_end[epoch]; ++wave_index) {
      const ServingWave& wave = log[wave_index];
      switch (wave.kind) {
        case ServingWave::kInsertWave: {
          auto replayed = plain_client->InsertBatch(wave.origin, wave.metric_id,
                                                    wave.hashes, replay_rng);
          ASSERT_LT(insert_i, insert_tickets[epoch].size());
          auto served =
              serving->TakeInsert(insert_tickets[epoch][insert_i++]);
          ASSERT_EQ(served.ok(), replayed.ok());
          if (served.ok()) {
            ExpectSameCost(served.value(), replayed.value(),
                           "epoch " + std::to_string(epoch) + " insert");
          }
          break;
        }
        case ServingWave::kCountWave: {
          DhsCountOptions options;
          options.lim_override = wave.lim_override;
          auto replayed = plain_client->CountMany(wave.origin, wave.metric_ids,
                                                  replay_rng, options);
          ASSERT_LT(group_i, group_order.size());
          const auto& tickets = by_set[*group_order[group_i]];
          EXPECT_EQ(tickets.size(), wave.waiters);
          ++group_i;
          for (uint64_t ticket : tickets) {
            auto served = serving->TakeCount(ticket);
            ASSERT_EQ(served.ok(), replayed.ok())
                << served.status().ToString() << " vs "
                << replayed.status().ToString();
            if (served.ok()) {
              ExpectSameMulti(served.value(), replayed.value(),
                              "epoch " + std::to_string(epoch) + " count");
            }
          }
          break;
        }
        case ServingWave::kInvalidate:
          plain_client->InvalidateFrontier(wave.metric_id);
          break;
      }
    }
    EXPECT_EQ(group_i, group_order.size()) << "epoch " << epoch;
    EXPECT_EQ(insert_i, insert_tickets[epoch].size()) << "epoch " << epoch;
  }
  plain_net.ClearFaultPlan();

  // Identical op streams drew identical faults and identical bytes.
  EXPECT_EQ(serving_net.fault_plan().stats().decisions,
            plain_net.fault_plan().stats().decisions);
  EXPECT_EQ(WorldDigest(serving_net), WorldDigest(plain_net));
}

TEST(ServingScheduleEquivalenceTest, ChordSuperLogLog) {
  RunRandomScheduleEquivalence<ChordNetwork>(DhsEstimator::kSuperLogLog, 1001);
}
TEST(ServingScheduleEquivalenceTest, ChordPcsa) {
  RunRandomScheduleEquivalence<ChordNetwork>(DhsEstimator::kPcsa, 1002);
}
TEST(ServingScheduleEquivalenceTest, ChordHyperLogLog) {
  RunRandomScheduleEquivalence<ChordNetwork>(DhsEstimator::kHyperLogLog, 1003);
}
TEST(ServingScheduleEquivalenceTest, KademliaSuperLogLog) {
  RunRandomScheduleEquivalence<KademliaNetwork>(DhsEstimator::kSuperLogLog,
                                                2001);
}
TEST(ServingScheduleEquivalenceTest, KademliaPcsa) {
  RunRandomScheduleEquivalence<KademliaNetwork>(DhsEstimator::kPcsa, 2002);
}
TEST(ServingScheduleEquivalenceTest, KademliaHyperLogLog) {
  RunRandomScheduleEquivalence<KademliaNetwork>(DhsEstimator::kHyperLogLog,
                                                2003);
}

// ---------------------------------------------------------------------------
// Serving metrics export.

TEST(ServingMetricsExportTest, CountsWavesCoalescingAndLim) {
  ChordNetwork net(FastOverlay());
  MetricsRegistry registry;
  net.AttachMetrics(&registry);
  Rng setup(20260705);
  for (int i = 0; i < 96; ++i) ASSERT_TRUE(net.AddNode(setup.Next()).ok());

  DhsConfig config;
  config.k = 24;
  config.m = 8;
  config.frontier_cache = true;
  auto client = DhsClient::Create(&net, config);
  ASSERT_TRUE(client.ok());
  DhsServingConfig serving_config;
  serving_config.tune_lim = true;
  auto serving = DhsServing::Create(&client.value(), serving_config);
  ASSERT_TRUE(serving.ok());

  Rng rng(12);
  MixHasher hasher(12);
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < 200; ++i) items.push_back(hasher.HashU64(i));
  const uint64_t origin = net.RandomNode(rng);
  serving->SubmitInsertBatch(origin, 4, items);
  serving->SubmitCount(origin, {4});
  serving->SubmitCount(origin, {4});
  ASSERT_TRUE(serving->Flush(rng).ok());
  serving->InvalidateMetric(4);

  const MetricLabels base = {{"geometry", net.GeometryName()},
                             {"estimator", DhsEstimatorName(config.estimator)}};
  auto with = [&](const char* key, const char* value) {
    MetricLabels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  EXPECT_EQ(registry.GetCounter("dhs_serving_requests_total",
                                with("op", "count"))->value(), 2u);
  EXPECT_EQ(registry.GetCounter("dhs_serving_requests_total",
                                with("op", "insert"))->value(), 1u);
  EXPECT_EQ(registry.GetCounter("dhs_serving_waves_total",
                                with("op", "count"))->value(), 1u);
  EXPECT_EQ(registry.GetCounter("dhs_serving_waves_total",
                                with("op", "insert"))->value(), 1u);
  EXPECT_EQ(registry.GetCounter("dhs_serving_coalesced_total", base)->value(),
            1u);
  EXPECT_EQ(registry.GetCounter("dhs_serving_frontier_invalidations_total",
                                with("reason", "insert"))->value(), 1u);
  EXPECT_EQ(registry.GetCounter("dhs_serving_frontier_invalidations_total",
                                with("reason", "signal"))->value(), 1u);
  EXPECT_EQ(registry.GetGauge("dhs_serving_lim", base)->value(),
            static_cast<double>(serving->tuner()->lim()));
}

}  // namespace
}  // namespace dhs
