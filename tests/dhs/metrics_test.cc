#include "dhs/metrics.h"

#include <gtest/gtest.h>

#include <set>

#include "hashing/md4.h"

namespace dhs {
namespace {

TEST(MetricsTest, NamesAreStableAcrossCalls) {
  EXPECT_EQ(MetricFromName("shared-documents"),
            MetricFromName("shared-documents"));
}

TEST(MetricsTest, NameDerivationIsMd4) {
  // The convention is pinned to MD4 so independent implementations agree.
  EXPECT_EQ(MetricFromName("x"), Md4::DigestToU64(Md4::Hash("x")));
}

TEST(MetricsTest, DistinctNamesDistinctIds) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(ids.insert(MetricFromName("metric-" + std::to_string(i)))
                    .second)
        << i;
  }
}

TEST(MetricsTest, SubMetricFamiliesDoNotCollide) {
  const uint64_t a = MetricFromName("family-a");
  const uint64_t b = MetricFromName("family-b");
  std::set<uint64_t> ids;
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ids.insert(SubMetric(a, i)).second);
    EXPECT_TRUE(ids.insert(SubMetric(b, i)).second);
  }
}

TEST(MetricsTest, SubMetricDiffersFromBase) {
  const uint64_t base = MetricFromName("base");
  EXPECT_NE(SubMetric(base, 0), base);
}

TEST(MetricsTest, HistogramNamingConvention) {
  EXPECT_EQ(HistogramMetricName("orders", "amount"),
            "histogram:orders.amount");
  EXPECT_NE(MetricFromName(HistogramMetricName("orders", "amount")),
            MetricFromName(HistogramMetricName("orders", "total")));
}

}  // namespace
}  // namespace dhs
