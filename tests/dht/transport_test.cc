// Transport-layer tests (dht/transport.h, dht/loopback.h): the
// frame-tap reconciliation property (every byte MessageStats charges is
// attributable to one observed frame — clean runs and faulted runs),
// sim-vs-loopback byte identity on a full workload, the shared serving
// logic's error paths, large frames streaming through the socket pair,
// and the per-frame wire metrics.

#include "dht/transport.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dht/chord.h"
#include "dht/loopback.h"
#include "dht/wire.h"
#include "dhs/client.h"
#include "hashing/hasher.h"
#include "obs/metrics.h"

namespace dhs {
namespace {

ChordConfig FastChord() {
  ChordConfig config;
  config.hasher = "mix";
  return config;
}

DhsConfig SmallDhs() {
  DhsConfig config;
  config.k = 24;
  config.m = 64;
  return config;
}

void BuildNodes(ChordNetwork& net, int n, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(net.AddNode(rng.Next()).ok());
  }
}

// Runs a fixed insert + count workload and returns the estimates.
std::vector<double> RunWorkload(DhsClient& client, ChordNetwork& net,
                                uint64_t salt) {
  Rng rng(salt);
  MixHasher hasher(salt);
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < 3000; ++i) {
    batch.push_back(hasher.HashU64(i));
    if (batch.size() == 250) {
      EXPECT_TRUE(
          client.InsertBatch(net.RandomNode(rng), 7, batch, rng).ok());
      batch.clear();
    }
  }
  std::vector<double> estimates;
  auto count = client.Count(net.RandomNode(rng), 7, rng);
  if (count.ok()) estimates.push_back(count->estimate);
  return estimates;
}

TEST(SimTransportTest, FrameTapReconcilesWithMessageStatsClean) {
  ChordNetwork net(FastChord());
  BuildNodes(net, 128, 20260705);
  auto client = DhsClient::Create(&net, SmallDhs());
  ASSERT_TRUE(client.ok());

  uint64_t charged = 0;
  uint64_t frames = 0;
  client->transport()->set_frame_tap([&](const FrameTapEvent& event) {
    charged += event.charged_bytes;
    frames += 1;
    EXPECT_GE(event.wire_bytes, kWireHeaderBytes);
  });
  const MessageStats before = net.stats();
  RunWorkload(*client, net, 1);
  const MessageStats delta = net.stats() - before;
  EXPECT_GT(frames, 0u);
  EXPECT_EQ(charged, delta.bytes)
      << "every charged byte must be attributable to one tapped frame";
}

TEST(SimTransportTest, FrameTapReconcilesWithMessageStatsUnderFaults) {
  ChordNetwork net(FastChord());
  BuildNodes(net, 128, 20260705);
  FaultConfig faults;
  faults.drop_probability = 0.08;
  faults.timeout_probability = 0.05;
  faults.seed = 99;
  ASSERT_TRUE(net.SetFaultPlan(faults).ok());

  DhsConfig config = SmallDhs();
  config.retry_attempts = 3;
  auto client = DhsClient::Create(&net, config);
  ASSERT_TRUE(client.ok());

  uint64_t charged = 0;
  uint64_t faulted_frames = 0;
  client->transport()->set_frame_tap([&](const FrameTapEvent& event) {
    charged += event.charged_bytes;
    if (!event.delivered) {
      faulted_frames += 1;
      EXPECT_EQ(event.charged_bytes, 0u) << "faulted frames charge no bytes";
      EXPECT_EQ(event.hops, 0);
    }
  });
  const MessageStats before = net.stats();
  RunWorkload(*client, net, 2);
  const MessageStats delta = net.stats() - before;
  EXPECT_GT(faulted_frames, 0u) << "fault rates were chosen to fire";
  EXPECT_EQ(charged, delta.bytes);
}

TEST(LoopbackTransportTest, ByteIdenticalToSimBackend) {
  ChordNetwork sim_net(FastChord());
  ChordNetwork loop_net(FastChord());
  BuildNodes(sim_net, 128, 20260705);
  BuildNodes(loop_net, 128, 20260705);

  auto sim_client = DhsClient::Create(&sim_net, SmallDhs());
  ASSERT_TRUE(sim_client.ok());
  auto loopback = std::make_shared<LoopbackTransport>(&loop_net);
  LoopbackTransport* loopback_raw = loopback.get();
  auto loop_client =
      DhsClient::Create(&loop_net, SmallDhs(), std::move(loopback));
  ASSERT_TRUE(loop_client.ok());

  const auto sim_estimates = RunWorkload(*sim_client, sim_net, 3);
  const auto loop_estimates = RunWorkload(*loop_client, loop_net, 3);

  EXPECT_EQ(sim_estimates, loop_estimates);
  EXPECT_EQ(sim_net.stats().messages, loop_net.stats().messages);
  EXPECT_EQ(sim_net.stats().hops, loop_net.stats().hops);
  EXPECT_EQ(sim_net.stats().bytes, loop_net.stats().bytes);
  EXPECT_GT(loopback_raw->socket_bytes_sent(), 0u);
  EXPECT_GT(loopback_raw->socket_bytes_received(), 0u);
  EXPECT_TRUE(loop_net.AuditFull().ok());
}

TEST(LoopbackTransportTest, ByteIdenticalToSimBackendUnderFaults) {
  ChordNetwork sim_net(FastChord());
  ChordNetwork loop_net(FastChord());
  BuildNodes(sim_net, 128, 20260705);
  BuildNodes(loop_net, 128, 20260705);
  FaultConfig faults;
  faults.drop_probability = 0.08;
  faults.timeout_probability = 0.05;
  faults.seed = 99;
  ASSERT_TRUE(sim_net.SetFaultPlan(faults).ok());
  ASSERT_TRUE(loop_net.SetFaultPlan(faults).ok());

  DhsConfig config = SmallDhs();
  config.retry_attempts = 3;
  auto sim_client = DhsClient::Create(&sim_net, config);
  ASSERT_TRUE(sim_client.ok());
  auto loop_client = DhsClient::Create(
      &loop_net, config, std::make_shared<LoopbackTransport>(&loop_net));
  ASSERT_TRUE(loop_client.ok());

  EXPECT_EQ(RunWorkload(*sim_client, sim_net, 4),
            RunWorkload(*loop_client, loop_net, 4));
  EXPECT_EQ(sim_net.stats().messages, loop_net.stats().messages);
  EXPECT_EQ(sim_net.stats().hops, loop_net.stats().hops);
  EXPECT_EQ(sim_net.stats().bytes, loop_net.stats().bytes);
}

TEST(LoopbackTransportTest, ErrorStatusCrossesTheSocketIntact) {
  ChordNetwork net(FastChord());
  BuildNodes(net, 32, 1);
  LoopbackTransport transport(&net);
  // Query a node that does not exist: the serving side's NotFound must
  // come back through the response record with code and message.
  auto result = transport.Query(0xdeadbeef, EncodeMetricQuery({1, 2}));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound()) << result.status().ToString();
}

TEST(LoopbackTransportTest, LargeFrameStreamsThroughTheSocketPair) {
  ChordNetwork net(FastChord());
  BuildNodes(net, 32, 2);
  LoopbackTransport transport(&net);
  // ~512 KiB of tuples: far beyond a default AF_UNIX buffer, so the
  // single-threaded pump must interleave writes and reads.
  PutFrame put;
  put.dst_key = 0x1234;
  put.metric_id = 9;
  put.expiry = kNoExpiry;
  for (int v = 0; v < 65536; ++v) {
    put.keys.push_back(StoreKey::Dhs(put.metric_id, 3, v));
  }
  const std::string frame = EncodePut(put);
  ASSERT_GT(frame.size(), 500u * 1024);
  Rng rng(5);
  auto delivery = transport.Route(net.RandomNode(rng), frame);
  ASSERT_TRUE(delivery.ok()) << delivery.status().ToString();
  auto ack = DecodeAck(delivery->response);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->code, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_TRUE(net.AuditFull().ok());
}

TEST(ServeFrameTest, RejectsFramesThatDoNotBelongOnTheServer) {
  ChordNetwork net(FastChord());
  BuildNodes(net, 32, 3);
  Rng rng(6);
  const uint64_t node = net.RandomNode(rng);
  // Counting needs a DhsClient: the dht-layer server must refuse it.
  CountRequestFrame count;
  count.metric_ids = {1};
  auto counted = ServeFrame(net, node, EncodeCountRequest(count));
  ASSERT_FALSE(counted.ok());
  EXPECT_TRUE(counted.status().IsInvalidArgument());
  // Reply frames are not servable requests.
  EXPECT_FALSE(ServeFrame(net, node, EncodeAck({0, 1, 2})).ok());
  VectorResponseFrame response;
  EXPECT_FALSE(ServeFrame(net, node, EncodeVectorResponse(response)).ok());
  // Garbage is rejected at parse time.
  EXPECT_FALSE(ServeFrame(net, node, "not a frame").ok());
}

TEST(SimTransportTest, WireMetricsExportPerFrameSeries) {
  ChordNetwork net(FastChord());
  BuildNodes(net, 128, 20260705);
  MetricsRegistry registry;
  net.AttachMetrics(&registry);
  auto client = DhsClient::Create(&net, SmallDhs());
  ASSERT_TRUE(client.ok());
  RunWorkload(*client, net, 5);

  // Puts and probe walks both crossed the transport, so their series
  // exist and the full-wire counter exceeds the accounted one (headers
  // and envelopes are never free on the real wire).
  Counter* put_wire = registry.GetCounter(
      "dht_wire_bytes_total", {{"frame", "put"}, {"transport", "sim"}});
  Counter* put_payload = registry.GetCounter(
      "dht_wire_payload_bytes_total",
      {{"frame", "put"}, {"transport", "sim"}});
  Counter* probe_frames = registry.GetCounter(
      "dht_wire_frames_total",
      {{"frame", "probe_open"}, {"transport", "sim"}});
  EXPECT_GT(put_wire->value(), put_payload->value());
  EXPECT_GT(put_payload->value(), 0u);
  EXPECT_GT(probe_frames->value(), 0u);
}

}  // namespace
}  // namespace dhs
