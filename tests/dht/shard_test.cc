// Sharded-engine tests: shard-plan bookkeeping under churn at shard
// boundaries, record migration and replica placement across shard
// boundaries, fault injection on cross-shard messages, and the central
// determinism contract — a fixed-seed scenario produces byte-identical
// observables (stores, loads, stats, traces, estimates) at 1, 4 and 8
// shards. The 1-shard engine runs inline on the calling thread, so the
// multi-shard runs are compared against genuinely unthreaded execution.
//
// The golden sharded trace lives next to the other goldens; regenerate
// after an intentional change with:
//
//   DHS_REGEN_GOLDEN=1 ./build/tests/dht_test --gtest_filter='ShardGolden*'

#include "dht/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dhs/client.h"
#include "dhs/front_door.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dhs {
namespace {

constexpr const char* kGoldenPath =
    DHS_DHT_GOLDEN_DIR "/golden_shard_trace.chord.txt";

void AppendCost(std::ostringstream& os, const DhsCostReport& c) {
  os << "cost " << c.nodes_visited << ' ' << c.hops << ' ' << c.bytes << ' '
     << c.dht_lookups << ' ' << c.direct_probes << ' ' << c.retries << ' '
     << c.failed_probes << ' ' << c.replicas_requested << ' '
     << c.replicas_written << ' ' << c.bit_groups_failed << '\n';
}

/// Serializes every observable of the world: per-node loads, every
/// live store record, message stats, fault stats, and the clock.
void AppendNetwork(std::ostringstream& os, const DhtNetwork& net) {
  os << "now " << net.now() << " stats " << net.stats().messages << ' '
     << net.stats().hops << ' ' << net.stats().bytes << " storage "
     << net.TotalStorageBytes() << '\n';
  const FaultStats& fs = net.fault_plan().stats();
  os << "faults " << fs.drops << ' ' << fs.timeouts << ' ' << fs.crashes
     << '\n';
  for (const auto& [id, load] : net.Loads()) {
    os << "load " << id << ' ' << load.routed << ' ' << load.served << ' '
       << load.stores << ' ' << load.probes << '\n';
  }
  for (uint64_t id : net.NodeIds()) {
    const NodeStore* store = net.StoreAt(id);
    ASSERT_NE(store, nullptr);
    store->ForEach(net.now(), [&](const StoreKey& key, const StoreRecord& rec) {
      os << "rec " << id << ' ' << key.metric_id() << ' ' << key.bit() << ' '
         << key.vector_id() << ' ' << rec.expires_at << '\n';
    });
  }
}

DhsConfig ScenarioConfig() {
  DhsConfig config;
  config.k = 12;
  config.m = 4;
  config.lim = 3;
  config.replication = 2;
  config.ttl_ticks = 64;
  config.estimator = DhsEstimator::kSuperLogLog;
  return config;
}

/// The pinned fixed-seed scenario, observable-for-observable. Must be
/// a pure function of `shards` modulo the determinism contract: the
/// returned string is expected to be byte-identical for any K.
template <typename Network>
std::string RunScenario(int shards) {
  OverlayConfig overlay;
  overlay.hasher = "mix";
  Network net(overlay);
  Tracer tracer;
  net.AttachTracer(&tracer);
  MetricsRegistry registry;
  net.AttachMetrics(&registry);

  Rng rng(0x5eed);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(rng.Next());
  EXPECT_EQ(net.BulkAddNodes(std::move(ids)), 64u);

  ShardedNetwork engine(&net, shards);
  auto fd = DhsFrontDoor::Create(&engine, ScenarioConfig());
  EXPECT_TRUE(fd.ok());

  std::ostringstream os;
  const uint64_t metric = 7;
  for (int round = 0; round < 3; ++round) {
    std::vector<uint64_t> batch;
    for (int i = 0; i < 16; ++i) batch.push_back(rng.Next());
    auto cost = fd->InsertBatch(net.RandomNode(rng), metric, batch, rng);
    EXPECT_TRUE(cost.ok());
    if (cost.ok()) AppendCost(os, *cost);
    engine.AdvanceClock(2);
  }
  auto count = fd->Count(net.RandomNode(rng), metric, rng);
  EXPECT_TRUE(count.ok());
  if (count.ok()) {
    os << "estimate " << std::setprecision(17) << count->estimate
       << " gave_up " << count->gave_up << " unresolved "
       << count->bitmaps_unresolved << '\n';
    for (int v : count->observables) os << "obs " << v << '\n';
    AppendCost(os, count->cost);
  }

  // Faulted segment: drops and timeouts land on cross-shard lookups
  // and direct hops, driving the retry/degradation paths.
  FaultConfig faults;
  faults.drop_probability = 0.2;
  faults.timeout_probability = 0.1;
  faults.seed = 9;
  EXPECT_TRUE(net.SetFaultPlan(faults).ok());
  {
    std::vector<uint64_t> batch;
    for (int i = 0; i < 16; ++i) batch.push_back(rng.Next());
    auto cost = fd->InsertBatch(net.RandomNode(rng), metric, batch, rng);
    if (cost.ok()) AppendCost(os, *cost);
    auto faulted = fd->Count(net.RandomNode(rng), metric, rng);
    if (faulted.ok()) {
      os << "estimate " << std::setprecision(17) << faulted->estimate
         << " gave_up " << faulted->gave_up << '\n';
      AppendCost(os, faulted->cost);
    }
  }
  net.ClearFaultPlan();

  // Churn through the engine: graceful leave (records migrate, maybe
  // across shards), a join, and an abrupt failure.
  EXPECT_TRUE(engine.LeaveNode(net.RandomNode(rng)).ok());
  EXPECT_TRUE(engine.JoinNode(rng.Next()).ok());
  EXPECT_TRUE(engine.CrashNode(net.RandomNode(rng)).ok());
  auto after_churn = fd->Count(net.RandomNode(rng), metric, rng);
  EXPECT_TRUE(after_churn.ok());
  if (after_churn.ok()) {
    os << "estimate " << std::setprecision(17) << after_churn->estimate
       << '\n';
    AppendCost(os, after_churn->cost);
  }

  // Mass expiry through the parallel per-shard expiry path, then a
  // count over the emptied world.
  engine.AdvanceClock(256);
  auto empty = fd->Count(net.RandomNode(rng), metric, rng);
  EXPECT_TRUE(empty.ok());
  if (empty.ok()) {
    os << "estimate " << std::setprecision(17) << empty->estimate << '\n';
    AppendCost(os, empty->cost);
  }

  EXPECT_TRUE(net.AuditFull().ok());
  AppendNetwork(os, net);
  os << "trace ";
  tracer.WriteChromeTrace(os);
  return os.str();
}

void ExpectByteIdentical(const std::string& a, const std::string& b,
                         const char* what) {
  if (a == b) return;
  size_t offset = 0;
  const size_t limit = std::min(a.size(), b.size());
  while (offset < limit && a[offset] == b[offset]) ++offset;
  FAIL() << what << " diverges at byte " << offset << " (sizes " << a.size()
         << " vs " << b.size() << "); context: ..."
         << a.substr(offset > 40 ? offset - 40 : 0, 80) << "... vs ..."
         << b.substr(offset > 40 ? offset - 40 : 0, 80) << "...";
}

TEST(ShardDeterminismTest, ChordByteIdenticalAt148Shards) {
  const std::string one = RunScenario<ChordNetwork>(1);
  const std::string four = RunScenario<ChordNetwork>(4);
  const std::string eight = RunScenario<ChordNetwork>(8);
  ASSERT_FALSE(one.empty());
  ExpectByteIdentical(one, four, "1-shard vs 4-shard run");
  ExpectByteIdentical(one, eight, "1-shard vs 8-shard run");
}

TEST(ShardDeterminismTest, KademliaByteIdenticalAt148Shards) {
  const std::string one = RunScenario<KademliaNetwork>(1);
  const std::string four = RunScenario<KademliaNetwork>(4);
  const std::string eight = RunScenario<KademliaNetwork>(8);
  ASSERT_FALSE(one.empty());
  ExpectByteIdentical(one, four, "1-shard vs 4-shard run");
  ExpectByteIdentical(one, eight, "1-shard vs 8-shard run");
}

TEST(ShardGoldenTest, MatchesCheckedInGolden) {
  const std::string snapshot = RunScenario<ChordNetwork>(4);
  if (std::getenv("DHS_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write " << kGoldenPath;
    os << snapshot;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  std::ifstream is(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(is.good())
      << kGoldenPath
      << " missing — regenerate with DHS_REGEN_GOLDEN=1 (see file header)";
  std::ostringstream buffer;
  buffer << is.rdbuf();
  ExpectByteIdentical(snapshot, buffer.str(), "sharded snapshot vs golden");
}

TEST(ShardChurnTest, JoinAndLeaveOnShardBoundary) {
  ChordNetwork net;
  Rng rng(0x0b0e);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(rng.Next());
  ASSERT_EQ(net.BulkAddNodes(std::move(ids)), 32u);
  ShardedNetwork engine(&net, 4);

  // Nodes exactly at (and just below) a shard's lower bound: ownership
  // of the two is split between adjacent shards.
  const uint64_t boundary = net.shard_plan().LowerBound(2);
  ASSERT_EQ(net.shard_plan().ShardOf(boundary), 2);
  ASSERT_EQ(net.shard_plan().ShardOf(boundary - 1), 1);
  ASSERT_TRUE(engine.JoinNode(boundary).ok());
  ASSERT_TRUE(engine.JoinNode(boundary - 1).ok());
  EXPECT_TRUE(net.AuditFull().ok());

  // A batch after boundary churn routes and serves normally.
  std::vector<ShardOp> ops;
  for (int i = 0; i < 8; ++i) {
    ShardOp op;
    op.kind = ShardOp::kLookup;
    op.origin = boundary;
    op.key = rng.Next();
    ops.push_back(op);
  }
  auto outcomes = engine.ExecuteBatch(ops);
  ASSERT_TRUE(outcomes.ok());
  for (const ShardOpOutcome& o : *outcomes) {
    EXPECT_TRUE(o.status.ok());
    EXPECT_EQ(static_cast<uint64_t>(o.lookup_hops), o.delta.hops);
    // Conservation: every issued message is a lookup or a direct hop.
    EXPECT_EQ(o.delta.messages,
              static_cast<uint64_t>(o.lookups_issued + o.direct_issued));
  }

  ASSERT_TRUE(engine.LeaveNode(boundary).ok());
  ASSERT_TRUE(engine.LeaveNode(boundary - 1).ok());
  EXPECT_TRUE(net.AuditFull().ok());
}

TEST(ShardChurnTest, MigrationCrossesShards) {
  ChordNetwork net;
  Rng rng(0x316);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(rng.Next());
  ASSERT_EQ(net.BulkAddNodes(std::move(ids)), 24u);
  ShardedNetwork engine(&net, 4);
  DhsConfig config = ScenarioConfig();
  config.ttl_ticks = kNoExpiry;
  auto fd = DhsFrontDoor::Create(&engine, config);
  ASSERT_TRUE(fd.ok());

  std::vector<uint64_t> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(rng.Next());
  ASSERT_TRUE(fd->InsertBatch(net.RandomNode(rng), 3, batch, rng).ok());
  auto before = fd->Count(net.RandomNode(rng), 3, rng);
  ASSERT_TRUE(before.ok());
  const size_t storage = net.TotalStorageBytes();
  ASSERT_GT(storage, 0u);

  // Joins spread across the ring: graceful migration re-homes records,
  // frequently across shard boundaries; nothing may be lost and the
  // count must still find the same observables.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.JoinNode(rng.Next()).ok());
  }
  EXPECT_TRUE(net.AuditFull().ok());
  EXPECT_EQ(net.TotalStorageBytes(), storage);
  auto after = fd->Count(net.RandomNode(rng), 3, rng);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->observables, after->observables);
}

TEST(ShardPutTest, ReplicaPlacementSpansShards) {
  ChordNetwork net;
  Rng rng(0x44);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 48; ++i) ids.push_back(rng.Next());
  ASSERT_EQ(net.BulkAddNodes(std::move(ids)), 48u);
  ShardedNetwork engine(&net, 8);
  DhsConfig config = ScenarioConfig();
  config.replication = 3;
  auto fd = DhsFrontDoor::Create(&engine, config);
  ASSERT_TRUE(fd.ok());

  std::vector<uint64_t> batch;
  for (int i = 0; i < 32; ++i) batch.push_back(rng.Next());
  auto cost = fd->InsertBatch(net.RandomNode(rng), 5, batch, rng);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->replicas_written, cost->replicas_requested);
  EXPECT_TRUE(net.AuditFull().ok());

  // With 48 nodes over 8 shards, some replica set must straddle a
  // shard boundary: count the holders of each record's shard set.
  bool spans = false;
  std::map<std::pair<uint64_t, int>, std::set<int>> holder_shards;
  for (uint64_t id : net.NodeIds()) {
    const NodeStore* store = net.StoreAt(id);
    ASSERT_NE(store, nullptr);
    store->ForEach(net.now(), [&](const StoreKey& key, const StoreRecord&) {
      holder_shards[{key.metric_id(), key.bit() * 1000 + key.vector_id()}]
          .insert(net.shard_plan().ShardOf(id));
    });
  }
  for (const auto& [record, shards] : holder_shards) {
    if (shards.size() > 1) spans = true;
  }
  EXPECT_TRUE(spans) << "no replica set crossed a shard boundary";
}

TEST(ShardFaultTest, CrossShardFaultsMatchSingleShard) {
  auto run = [](int shards) {
    ChordNetwork net;
    Rng rng(0xfa17);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 40; ++i) ids.push_back(rng.Next());
    EXPECT_EQ(net.BulkAddNodes(std::move(ids)), 40u);
    ShardedNetwork engine(&net, shards);
    auto fd = DhsFrontDoor::Create(&engine, ScenarioConfig());
    EXPECT_TRUE(fd.ok());
    FaultConfig faults;
    faults.drop_probability = 0.25;
    faults.timeout_probability = 0.15;
    faults.seed = 31;
    EXPECT_TRUE(net.SetFaultPlan(faults).ok());
    std::vector<uint64_t> batch;
    for (int i = 0; i < 32; ++i) batch.push_back(rng.Next());
    DhsCostReport insert_cost;
    auto cost = fd->InsertBatch(net.RandomNode(rng), 11, batch, rng);
    if (cost.ok()) insert_cost = *cost;
    auto count = fd->Count(net.RandomNode(rng), 11, rng);
    std::ostringstream os;
    AppendCost(os, insert_cost);
    if (count.ok()) AppendCost(os, count->cost);
    AppendNetwork(os, net);
    return std::make_pair(os.str(), insert_cost);
  };
  auto [one, cost1] = run(1);
  auto [four, cost4] = run(4);
  // The fault rates are high enough that retries and degradation
  // actually fire — otherwise this test would pass vacuously.
  EXPECT_GT(cost1.retries, 0);
  ExpectByteIdentical(one, four, "faulted 1-shard vs 4-shard run");
}

TEST(ShardFaultTest, CrashFaultsAreRejected) {
  ChordNetwork net;
  Rng rng(0xdead);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(rng.Next());
  ASSERT_EQ(net.BulkAddNodes(std::move(ids)), 8u);
  ShardedNetwork engine(&net, 4);
  FaultConfig faults;
  faults.crash_probability = 0.1;
  faults.seed = 1;
  ASSERT_TRUE(net.SetFaultPlan(faults).ok());
  std::vector<ShardOp> ops(1);
  ops[0].origin = net.NodeIds()[0];
  ops[0].key = 42;
  auto outcomes = engine.ExecuteBatch(ops);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_TRUE(outcomes.status().IsInvalidArgument());
}

}  // namespace
}  // namespace dhs
