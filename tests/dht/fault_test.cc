// FaultPlan unit tests and the DhtNetwork fault-injection contract:
// deterministic decisions, per-message accounting under each fault
// type, the self-delivery downgrade, and pause semantics.

#include "dht/fault.h"

#include <gtest/gtest.h>

#include <memory>

#include "dht/chord.h"
#include "dht/kademlia.h"

namespace dhs {
namespace {

FaultConfig MakeConfig(double drop, double timeout, double crash,
                       uint64_t seed = 99) {
  FaultConfig config;
  config.drop_probability = drop;
  config.timeout_probability = timeout;
  config.crash_probability = crash;
  config.seed = seed;
  return config;
}

TEST(FaultConfigTest, ValidatesProbabilities) {
  EXPECT_TRUE(MakeConfig(0.0, 0.0, 0.0).Validate().ok());
  EXPECT_TRUE(MakeConfig(0.5, 0.3, 0.2).Validate().ok());
  EXPECT_FALSE(MakeConfig(-0.1, 0.0, 0.0).Validate().ok());
  EXPECT_FALSE(MakeConfig(0.0, 1.5, 0.0).Validate().ok());
  EXPECT_FALSE(MakeConfig(0.6, 0.6, 0.0).Validate().ok());  // sum > 1
}

TEST(FaultPlanTest, DecisionForIsPureAndDeterministic) {
  const FaultConfig config = MakeConfig(0.2, 0.1, 0.05, 42);
  for (uint64_t seq = 0; seq < 512; ++seq) {
    EXPECT_EQ(FaultPlan::DecisionFor(config, seq),
              FaultPlan::DecisionFor(config, seq))
        << "seq " << seq;
  }
  // A different seed must give a different stream (overwhelmingly).
  FaultConfig other = config;
  other.seed = 43;
  int diffs = 0;
  for (uint64_t seq = 0; seq < 512; ++seq) {
    if (FaultPlan::DecisionFor(config, seq) !=
        FaultPlan::DecisionFor(other, seq)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultPlanTest, DecisionFrequenciesMatchProbabilities) {
  const FaultConfig config = MakeConfig(0.3, 0.2, 0.1, 7);
  const int kDraws = 20000;
  int drops = 0, timeouts = 0, crashes = 0;
  for (uint64_t seq = 0; seq < kDraws; ++seq) {
    switch (FaultPlan::DecisionFor(config, seq)) {
      case FaultType::kDrop: ++drops; break;
      case FaultType::kTimeout: ++timeouts; break;
      case FaultType::kCrash: ++crashes; break;
      case FaultType::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / kDraws, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(timeouts) / kDraws, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(crashes) / kDraws, 0.1, 0.02);
}

TEST(FaultPlanTest, NextDecisionAdvancesSeqAndCountsDecisions) {
  FaultPlan plan(MakeConfig(0.5, 0.0, 0.0, 3));
  ASSERT_TRUE(plan.active());
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(plan.seq(), i);
    const FaultType expected = FaultPlan::DecisionFor(plan.config(), i);
    EXPECT_EQ(plan.NextDecision(), expected);
  }
  EXPECT_EQ(plan.stats().decisions, 16u);
}

class FaultInjectionTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    OverlayConfig config;
    config.hasher = "mix";
    if (GetParam()) {
      net_ = std::make_unique<ChordNetwork>(config);
    } else {
      net_ = std::make_unique<KademliaNetwork>(config);
    }
    Rng rng(17);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    }
  }

  void TearDown() override {
    const Status audit = net_->AuditFull();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }

  // A (from, key) pair whose lookup crosses the network: the responsible
  // node differs from the origin, so no self-delivery downgrade applies.
  std::pair<uint64_t, uint64_t> CrossNetworkLookup(Rng& rng) {
    while (true) {
      const uint64_t from = net_->RandomNode(rng);
      const uint64_t key = rng.Next();
      auto responsible = net_->ResponsibleNode(key);
      EXPECT_TRUE(responsible.ok());
      if (responsible.value() != from) return {from, key};
    }
  }

  std::unique_ptr<DhtNetwork> net_;
};

TEST_P(FaultInjectionTest, CertainDropFailsLookupAndChargesOneMessage) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(1.0, 0.0, 0.0)).ok());
  Rng rng(1);
  const auto [from, key] = CrossNetworkLookup(rng);
  const MessageStats before = net_->stats();
  auto result = net_->Lookup(from, key);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  // The attempt is on the books; the undelivered work is not.
  EXPECT_EQ(net_->stats().messages - before.messages, 1u);
  EXPECT_EQ(net_->stats().hops, before.hops);
  EXPECT_EQ(net_->stats().bytes, before.bytes);
  EXPECT_EQ(net_->fault_plan().stats().drops, 1u);
}

TEST_P(FaultInjectionTest, CertainTimeoutReturnsDeadlineExceeded) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(0.0, 1.0, 0.0)).ok());
  Rng rng(2);
  const auto [from, key] = CrossNetworkLookup(rng);
  auto result = net_->Lookup(from, key);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST_P(FaultInjectionTest, CrashFailsTargetAndLogsVictim) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(0.0, 0.0, 1.0)).ok());
  Rng rng(3);
  const auto [from, key] = CrossNetworkLookup(rng);
  const uint64_t victim = net_->ResponsibleNode(key).value();
  const size_t nodes_before = net_->NumNodes();
  auto result = net_->Lookup(from, key);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_EQ(net_->NumNodes(), nodes_before - 1);
  EXPECT_FALSE(net_->Contains(victim));
  ASSERT_EQ(net_->crash_log().size(), 1u);
  EXPECT_EQ(net_->crash_log().front(), victim);
}

TEST_P(FaultInjectionTest, SelfDeliveryIsDowngradedToDelivery) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(0.0, 0.0, 1.0)).ok());
  Rng rng(4);
  const uint64_t node = net_->RandomNode(rng);
  // A direct hop to oneself cannot be faulted: there is no wire to cut.
  const uint64_t seq_before = net_->fault_plan().seq();
  EXPECT_TRUE(net_->DirectHop(node, node, 8).ok());
  // The decision was still drawn (the stream stays aligned) but not
  // applied.
  EXPECT_EQ(net_->fault_plan().seq(), seq_before + 1);
  EXPECT_EQ(net_->fault_plan().stats().Applied(), 0u);
  EXPECT_TRUE(net_->crash_log().empty());
}

TEST_P(FaultInjectionTest, PausedPlanDeliversWithoutDrawingDecisions) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(1.0, 0.0, 0.0)).ok());
  net_->PauseFaults(true);
  Rng rng(5);
  const auto [from, key] = CrossNetworkLookup(rng);
  const uint64_t seq_before = net_->fault_plan().seq();
  EXPECT_TRUE(net_->Lookup(from, key).ok());
  EXPECT_EQ(net_->fault_plan().seq(), seq_before);
  net_->PauseFaults(false);
  EXPECT_FALSE(net_->Lookup(from, key).ok());
}

TEST_P(FaultInjectionTest, ClearFaultPlanRestoresReliability) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(1.0, 0.0, 0.0)).ok());
  Rng rng(6);
  const auto [from, key] = CrossNetworkLookup(rng);
  EXPECT_FALSE(net_->Lookup(from, key).ok());
  net_->ClearFaultPlan();
  EXPECT_TRUE(net_->Lookup(from, key).ok());
}

TEST_P(FaultInjectionTest, InvalidPlanIsRejected) {
  EXPECT_FALSE(net_->SetFaultPlan(MakeConfig(0.7, 0.7, 0.0)).ok());
  EXPECT_FALSE(net_->fault_plan().active());
}

TEST_P(FaultInjectionTest, EveryMessageDrawsExactlyOneDecision) {
  ASSERT_TRUE(net_->SetFaultPlan(MakeConfig(0.2, 0.1, 0.0, 11)).ok());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t seq_before = net_->fault_plan().seq();
    const MessageStats before = net_->stats();
    (void)net_->Lookup(net_->RandomNode(rng), rng.Next());
    EXPECT_EQ(net_->fault_plan().seq(), seq_before + 1);
    EXPECT_EQ(net_->stats().messages - before.messages, 1u);
  }
  EXPECT_EQ(net_->fault_plan().stats().decisions, 200u);
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, FaultInjectionTest,
                         ::testing::Bool(), [](const auto& param_info) {
                           return param_info.param ? "Chord" : "Kademlia";
                         });

}  // namespace
}  // namespace dhs
