// Geometry-parameterized conformance suite for the DhtNetwork
// abstraction: every property here must hold for ANY overlay the DHS can
// run on (the paper's DHT-agnostic requirement). Instantiated for Chord
// and Kademlia.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "common/stats.h"
#include "dht/chord.h"
#include "dht/kademlia.h"

namespace dhs {
namespace {

enum class Geometry { kChord, kKademlia };

std::unique_ptr<DhtNetwork> MakeOverlay(Geometry geometry) {
  OverlayConfig config;
  config.hasher = "mix";
  if (geometry == Geometry::kChord) {
    return std::make_unique<ChordNetwork>(config);
  }
  return std::make_unique<KademliaNetwork>(config);
}

class NetworkConformanceTest : public ::testing::TestWithParam<Geometry> {
 protected:
  void SetUp() override { net_ = MakeOverlay(GetParam()); }

  // Both geometries must leave every redundant structure (ring index,
  // routing caches, expiry heaps, byte accounting) consistent no matter
  // which operations the test performed.
  void TearDown() override {
    const Status audit = net_->AuditFull();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }

  void Build(int n, uint64_t seed = 7) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    }
  }

  std::unique_ptr<DhtNetwork> net_;
};

TEST_P(NetworkConformanceTest, ResponsibilityIsTotalAndStable) {
  Build(100);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const uint64_t key = rng.Next();
    auto first = net_->ResponsibleNode(key);
    auto second = net_->ResponsibleNode(key);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value(), second.value());
    EXPECT_TRUE(net_->Contains(first.value()));
  }
}

TEST_P(NetworkConformanceTest, LookupAgreesWithResponsibility) {
  Build(100);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = rng.Next();
    auto lookup = net_->Lookup(net_->RandomNode(rng), key);
    ASSERT_TRUE(lookup.ok());
    EXPECT_EQ(lookup->node, net_->ResponsibleNode(key).value());
  }
}

TEST_P(NetworkConformanceTest, LookupFromEveryNodeTerminates) {
  Build(64);
  Rng rng(3);
  const uint64_t key = rng.Next();
  for (uint64_t origin : net_->NodeIds()) {
    auto lookup = net_->Lookup(origin, key);
    ASSERT_TRUE(lookup.ok());
    EXPECT_LE(lookup->hops, 64);
  }
}

TEST_P(NetworkConformanceTest, PutGetAcrossArbitraryPairs) {
  Build(64);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const uint64_t key = rng.Next();
    const std::string app_key = "key-" + std::to_string(i);
    ASSERT_TRUE(net_->Put(net_->RandomNode(rng), key, app_key,
                          "value-" + std::to_string(i), kNoExpiry)
                    .ok());
    auto value = net_->GetValue(net_->RandomNode(rng), key, app_key);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value.value(), "value-" + std::to_string(i));
  }
}

TEST_P(NetworkConformanceTest, DataFollowsResponsibilityThroughChurn) {
  Build(48);
  Rng rng(5);
  std::vector<std::pair<uint64_t, std::string>> stored;
  for (int i = 0; i < 150; ++i) {
    const uint64_t key = rng.Next();
    const std::string app_key = "churn-" + std::to_string(i);
    ASSERT_TRUE(
        net_->Put(net_->RandomNode(rng), key, app_key, "v", kNoExpiry).ok());
    stored.emplace_back(key, app_key);
  }
  // Interleave joins and graceful leaves.
  for (int round = 0; round < 20; ++round) {
    if (round % 2 == 0) {
      ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    } else {
      ASSERT_TRUE(net_->RemoveNode(net_->RandomNode(rng)).ok());
    }
  }
  // Every record must still be reachable AND stored at its current
  // responsible node.
  for (const auto& [key, app_key] : stored) {
    auto value = net_->GetValue(net_->RandomNode(rng), key, app_key);
    ASSERT_TRUE(value.ok()) << app_key;
    const uint64_t responsible = net_->ResponsibleNode(key).value();
    EXPECT_NE(net_->StoreAt(responsible)->Get(app_key, net_->now()),
              nullptr)
        << app_key;
  }
}

TEST_P(NetworkConformanceTest, FailureLosesOnlyTheFailedNodesData) {
  Build(48);
  Rng rng(6);
  std::vector<std::pair<uint64_t, std::string>> stored;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.Next();
    const std::string app_key = "f-" + std::to_string(i);
    ASSERT_TRUE(
        net_->Put(net_->RandomNode(rng), key, app_key, "v", kNoExpiry).ok());
    stored.emplace_back(key, app_key);
  }
  const uint64_t victim = net_->RandomNode(rng);
  std::set<std::string> on_victim;
  net_->StoreAt(victim)->ForEachWithPrefix(
      "", net_->now(),
      [&](const std::string& key, const StoreRecord&) {
        on_victim.insert(key);
      });
  ASSERT_TRUE(net_->FailNode(victim).ok());
  for (const auto& [key, app_key] : stored) {
    auto value = net_->GetValue(net_->RandomNode(rng), key, app_key);
    if (on_victim.count(app_key) > 0) {
      EXPECT_FALSE(value.ok()) << app_key;  // lost with the node
    } else {
      EXPECT_TRUE(value.ok()) << app_key;  // unaffected
    }
  }
}

TEST_P(NetworkConformanceTest, ProbeCandidatesAreLiveDistinctAndBounded) {
  Build(128);
  Rng rng(7);
  for (int size_log = 50; size_log < 64; ++size_log) {
    IdInterval interval{uint64_t{1} << size_log, uint64_t{1} << size_log};
    const uint64_t probe_key =
        interval.lo + rng.UniformU64(interval.size);
    auto start = net_->ResponsibleNode(probe_key);
    ASSERT_TRUE(start.ok());
    const auto candidates =
        net_->ProbeCandidates(interval, probe_key, start.value(), 5);
    EXPECT_LE(candidates.size(), 5u);
    std::set<uint64_t> seen;
    for (uint64_t candidate : candidates) {
      EXPECT_TRUE(net_->Contains(candidate));
      EXPECT_NE(candidate, start.value());
      EXPECT_TRUE(seen.insert(candidate).second);  // distinct
    }
  }
}

TEST_P(NetworkConformanceTest, NonEmptyIntervalCandidatesCoverHolders) {
  Build(256);
  Rng rng(8);
  // Large interval (top half of the space): store 20 keys, then check
  // that {responsible(probe)} + candidates includes every holder when
  // max_candidates is large.
  IdInterval interval{uint64_t{1} << 63, uint64_t{1} << 63};
  std::set<uint64_t> holders;
  for (int i = 0; i < 20; ++i) {
    const uint64_t key = interval.lo + rng.UniformU64(interval.size);
    auto holder = net_->Put(net_->RandomNode(rng), key,
                            "cover-" + std::to_string(i), "v", kNoExpiry);
    ASSERT_TRUE(holder.ok());
    holders.insert(holder.value());
  }
  const uint64_t probe_key = interval.lo + rng.UniformU64(interval.size);
  const uint64_t start = net_->ResponsibleNode(probe_key).value();
  const auto candidates = net_->ProbeCandidates(
      interval, probe_key, start, static_cast<int>(net_->NumNodes()));
  std::set<uint64_t> reachable(candidates.begin(), candidates.end());
  reachable.insert(start);
  for (uint64_t holder : holders) {
    EXPECT_TRUE(reachable.count(holder) > 0) << holder;
  }
}

TEST_P(NetworkConformanceTest, ReplicaCandidatesAreLiveDistinctAndBounded) {
  Build(128);
  Rng rng(11);
  for (int size_log = 50; size_log < 64; ++size_log) {
    IdInterval interval{uint64_t{1} << size_log, uint64_t{1} << size_log};
    const uint64_t key = interval.lo + rng.UniformU64(interval.size);
    auto primary = net_->ResponsibleNode(key);
    ASSERT_TRUE(primary.ok());
    const auto replicas =
        net_->ReplicaCandidates(interval, key, primary.value(), 4);
    EXPECT_LE(replicas.size(), 4u);
    std::set<uint64_t> seen;
    for (uint64_t replica : replicas) {
      EXPECT_TRUE(net_->Contains(replica));
      EXPECT_NE(replica, primary.value());
      EXPECT_TRUE(seen.insert(replica).second);  // distinct
    }
  }
}

TEST_P(NetworkConformanceTest, FirstReplicaTakesOverResponsibilityOnFailure) {
  // The point of geometry-aware placement: the first replica candidate
  // is the node that *becomes responsible* for the key once the primary
  // fails, so a copy there keeps the key resolvable — and its DHS bits
  // countable — across the failure. (Ring-successor placement violates
  // this under Kademlia: the XOR-nearest survivor took over, but the
  // copy sat on the ring successor.)
  Build(96);
  Rng rng(12);
  for (int trial = 0; trial < 64; ++trial) {
    const int size_log = 50 + static_cast<int>(rng.UniformU64(14));
    IdInterval interval{uint64_t{1} << size_log, uint64_t{1} << size_log};
    const uint64_t key = interval.lo + rng.UniformU64(interval.size);
    const uint64_t primary = net_->ResponsibleNode(key).value();
    const auto replicas = net_->ReplicaCandidates(interval, key, primary, 1);
    ASSERT_EQ(replicas.size(), 1u) << "trial " << trial;
    ASSERT_TRUE(net_->FailNode(primary).ok());
    EXPECT_EQ(net_->ResponsibleNode(key).value(), replicas.front())
        << "trial " << trial;
    ASSERT_TRUE(net_->AddNode(primary).ok());  // restore for the next trial
  }
}

TEST_P(NetworkConformanceTest, LoadServedMatchesLookups) {
  Build(64);
  Rng rng(9);
  net_->ResetLoads();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(net_->Lookup(net_->RandomNode(rng), rng.Next()).ok());
  }
  uint64_t served = 0;
  for (const auto& [id, load] : net_->Loads()) served += load.served;
  EXPECT_EQ(served, 200u);
}

TEST_P(NetworkConformanceTest, ClockExpiryIsGeometryIndependent) {
  Build(32);
  Rng rng(10);
  ASSERT_TRUE(net_->Put(net_->RandomNode(rng), 42, "ttl", "v", 5).ok());
  EXPECT_TRUE(net_->GetValue(net_->RandomNode(rng), 42, "ttl").ok());
  net_->AdvanceClock(5);
  EXPECT_TRUE(net_->GetValue(net_->RandomNode(rng), 42, "ttl")
                  .status()
                  .IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(AllGeometries, NetworkConformanceTest,
                         ::testing::Values(Geometry::kChord,
                                           Geometry::kKademlia),
                         [](const auto& param_info) {
                           return param_info.param == Geometry::kChord
                                      ? "Chord"
                                      : "Kademlia";
                         });

}  // namespace
}  // namespace dhs
