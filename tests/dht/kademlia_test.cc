#include "dht/kademlia.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "dhs/client.h"
#include "hashing/hasher.h"

namespace dhs {
namespace {

OverlayConfig FastConfig() {
  OverlayConfig config;
  config.hasher = "mix";
  return config;
}

uint64_t BruteForceXorClosest(const std::vector<uint64_t>& nodes,
                              uint64_t key) {
  uint64_t best = nodes.front();
  for (uint64_t node : nodes) {
    if ((node ^ key) < (best ^ key)) best = node;
  }
  return best;
}

class KademliaTest : public ::testing::Test {
 protected:
  void Build(int n, uint64_t seed = 7) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(net_.AddNode(rng.Next()).ok());
    }
  }

  // The bucket caches filled during the test must match a brute-force
  // recomputation, and the store/ring bookkeeping must balance.
  void TearDown() override {
    const Status audit = net_.AuditFull();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }

  KademliaNetwork net_{FastConfig()};
};

TEST_F(KademliaTest, GeometryName) {
  EXPECT_STREQ(net_.GeometryName(), "kademlia");
}

TEST_F(KademliaTest, ResponsibleNodeIsXorClosest) {
  Build(200);
  const auto nodes = net_.NodeIds();
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.Next();
    auto responsible = net_.ResponsibleNode(key);
    ASSERT_TRUE(responsible.ok());
    EXPECT_EQ(responsible.value(), BruteForceXorClosest(nodes, key)) << key;
  }
}

TEST_F(KademliaTest, ResponsibleNodeExactKeyMatch) {
  Build(64);
  for (uint64_t node : net_.NodeIds()) {
    EXPECT_EQ(net_.ResponsibleNode(node).value(), node);
  }
}

TEST_F(KademliaTest, EmptyNetworkFails) {
  EXPECT_TRUE(net_.ResponsibleNode(1).status().IsFailedPrecondition());
}

TEST_F(KademliaTest, SingleNodeOwnsEverything) {
  ASSERT_TRUE(net_.AddNode(42).ok());
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(net_.ResponsibleNode(rng.Next()).value(), 42u);
  }
}

TEST_F(KademliaTest, LookupReachesXorClosest) {
  Build(256);
  const auto nodes = net_.NodeIds();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const uint64_t key = rng.Next();
    auto result = net_.Lookup(net_.RandomNode(rng), key);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->node, BruteForceXorClosest(nodes, key));
  }
}

TEST_F(KademliaTest, LookupHopsAreLogarithmic) {
  Build(1024);
  Rng rng(4);
  StreamingStats hops;
  for (int i = 0; i < 2000; ++i) {
    auto result = net_.Lookup(net_.RandomNode(rng), rng.Next());
    ASSERT_TRUE(result.ok());
    hops.Add(result->hops);
  }
  // Each hop fixes at least one prefix bit; expected ~log2(N)/2 with the
  // idealized buckets.
  EXPECT_LE(hops.mean(), std::log2(1024.0) + 1);
  EXPECT_GE(hops.mean(), 2.0);
}

TEST_F(KademliaTest, PutAndGetRoundTrip) {
  Build(128);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const uint64_t key = rng.Next();
    const std::string app_key = "k" + std::to_string(i);
    ASSERT_TRUE(
        net_.Put(net_.RandomNode(rng), key, app_key, "v", kNoExpiry).ok());
    auto value = net_.GetValue(net_.RandomNode(rng), key, app_key);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value.value(), "v");
  }
}

TEST_F(KademliaTest, JoinMigratesOwnership) {
  Build(64);
  Rng rng(6);
  std::vector<std::pair<uint64_t, std::string>> stored;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.Next();
    const std::string app_key = "k" + std::to_string(i);
    ASSERT_TRUE(
        net_.Put(net_.RandomNode(rng), key, app_key, "v", kNoExpiry).ok());
    stored.emplace_back(key, app_key);
  }
  // New joiners must receive the records they are now closest to.
  for (int j = 0; j < 32; ++j) {
    ASSERT_TRUE(net_.AddNode(rng.Next()).ok());
  }
  for (const auto& [key, app_key] : stored) {
    auto value = net_.GetValue(net_.RandomNode(rng), key, app_key);
    ASSERT_TRUE(value.ok()) << app_key;
  }
}

TEST_F(KademliaTest, GracefulLeavePreservesData) {
  Build(64);
  Rng rng(7);
  std::vector<std::pair<uint64_t, std::string>> stored;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.Next();
    const std::string app_key = "k" + std::to_string(i);
    ASSERT_TRUE(
        net_.Put(net_.RandomNode(rng), key, app_key, "v", kNoExpiry).ok());
    stored.emplace_back(key, app_key);
  }
  auto ids = net_.NodeIds();
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(net_.RemoveNode(ids[i]).ok());
  }
  for (const auto& [key, app_key] : stored) {
    EXPECT_TRUE(net_.GetValue(net_.RandomNode(rng), key, app_key).ok())
        << app_key;
  }
}

TEST_F(KademliaTest, ProbeCandidatesStayRelevantForEmptyBlocks) {
  Build(64);
  // A sub-node interval: candidates must come from the smallest
  // enclosing non-empty block, ordered by XOR distance to the probe key.
  IdInterval interval{uint64_t{1} << 20, uint64_t{1} << 20};
  const uint64_t probe_key = interval.lo + 12345;
  auto responsible = net_.ResponsibleNode(probe_key);
  ASSERT_TRUE(responsible.ok());
  const auto candidates =
      net_.ProbeCandidates(interval, probe_key, responsible.value(), 5);
  EXPECT_LE(candidates.size(), 5u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1] ^ probe_key, candidates[i] ^ probe_key);
  }
  for (uint64_t candidate : candidates) {
    EXPECT_NE(candidate, responsible.value());
  }
}

// The headline: DHS runs unchanged over the XOR geometry.
TEST_F(KademliaTest, ReplicaCandidatesShareProbeOrdering) {
  // Replica placement and the counting walk must rank holders the same
  // way, or replicas land where no walk looks (the bug this pins): with
  // identical arguments the two candidate lists are identical.
  Build(128);
  Rng rng(23);
  for (int trial = 0; trial < 32; ++trial) {
    const int size_log = 48 + static_cast<int>(rng.UniformU64(16));
    IdInterval interval{uint64_t{1} << size_log, uint64_t{1} << size_log};
    const uint64_t key = interval.lo + rng.UniformU64(interval.size);
    auto primary = net_.ResponsibleNode(key);
    ASSERT_TRUE(primary.ok());
    EXPECT_EQ(net_.ReplicaCandidates(interval, key, primary.value(), 6),
              net_.ProbeCandidates(interval, key, primary.value(), 6))
        << "trial " << trial;
  }
}

class DhsOverKademliaTest
    : public ::testing::TestWithParam<DhsEstimator> {};

TEST_P(DhsOverKademliaTest, EndToEndCounting) {
  KademliaNetwork net(FastConfig());
  Rng rng(8);
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(net.AddNode(rng.Next()).ok());

  DhsConfig config;
  config.k = 24;
  config.m = 64;
  config.estimator = GetParam();
  auto client_or = DhsClient::Create(&net, config);
  ASSERT_TRUE(client_or.ok());
  DhsClient client = std::move(client_or.value());

  constexpr uint64_t kN = 50000;
  MixHasher hasher(9);
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < kN; ++i) {
    batch.push_back(hasher.HashU64(i));
    if (batch.size() == 250) {
      ASSERT_TRUE(client.InsertBatch(net.RandomNode(rng), 1, batch, rng).ok());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    ASSERT_TRUE(client.InsertBatch(net.RandomNode(rng), 1, batch, rng).ok());
  }

  StreamingStats errors;
  for (int t = 0; t < 6; ++t) {
    auto result = client.Count(net.RandomNode(rng), 1, rng);
    ASSERT_TRUE(result.ok());
    errors.Add(RelativeError(result->estimate, static_cast<double>(kN)));
  }
  EXPECT_LT(errors.mean(), 0.45) << DhsEstimatorName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, DhsOverKademliaTest,
                         ::testing::Values(DhsEstimator::kSuperLogLog,
                                           DhsEstimator::kPcsa,
                                           DhsEstimator::kHyperLogLog));

}  // namespace
}  // namespace dhs
