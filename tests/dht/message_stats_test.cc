#include "dht/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/check.h"

namespace dhs {
namespace {

TEST(MessageStatsTest, SubtractionYieldsComponentwiseDelta) {
  MessageStats end;
  end.messages = 10;
  end.hops = 20;
  end.bytes = 300;
  MessageStats begin;
  begin.messages = 4;
  begin.hops = 5;
  begin.bytes = 100;
  const MessageStats delta = end - begin;
  EXPECT_EQ(delta.messages, 6u);
  EXPECT_EQ(delta.hops, 15u);
  EXPECT_EQ(delta.bytes, 200u);
}

// Regression test: operator-= used to wrap silently on underflow,
// which would have turned a snapshot-ordering bug in the tracer into
// absurd ~2^64 span deltas instead of a crash at the fault site.
TEST(MessageStatsTest, SubtractionUnderflowTripsDcheck) {
  struct CheckFired : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  CheckFailureHandler previous = SetCheckFailureHandler(
      +[](const char* /*file*/, int /*line*/, const std::string& message) {
        throw CheckFired(message);
      });

  MessageStats small;
  small.messages = 1;
  MessageStats big;
  big.messages = 2;
  EXPECT_THROW(small -= big, CheckFired);

  // Each component is checked independently; equal values pass.
  MessageStats a;
  a.messages = 3;
  a.hops = 7;
  a.bytes = 9;
  MessageStats b = a;
  a -= b;
  EXPECT_EQ(a.messages, 0u);
  EXPECT_EQ(a.hops, 0u);
  EXPECT_EQ(a.bytes, 0u);

  MessageStats fewer_bytes;
  fewer_bytes.messages = 5;
  MessageStats more_bytes = fewer_bytes;
  more_bytes.bytes = 1;
  EXPECT_THROW(fewer_bytes -= more_bytes, CheckFired);

  SetCheckFailureHandler(previous);
}

}  // namespace
}  // namespace dhs
