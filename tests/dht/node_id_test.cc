#include "dht/node_id.h"

#include <gtest/gtest.h>

namespace dhs {
namespace {

TEST(IdSpaceTest, MaskForVariousWidths) {
  EXPECT_EQ(IdSpace(8).Mask(), 0xffu);
  EXPECT_EQ(IdSpace(24).Mask(), 0xffffffu);
  EXPECT_EQ(IdSpace(64).Mask(), ~uint64_t{0});
}

TEST(IdSpaceTest, ClampWraps) {
  IdSpace space(8);
  EXPECT_EQ(space.Clamp(256), 0u);
  EXPECT_EQ(space.Clamp(257), 1u);
  EXPECT_EQ(space.Clamp(255), 255u);
}

TEST(IdSpaceTest, DistanceIsClockwise) {
  IdSpace space(8);
  EXPECT_EQ(space.Distance(10, 20), 10u);
  EXPECT_EQ(space.Distance(20, 10), 246u);  // wraps
  EXPECT_EQ(space.Distance(5, 5), 0u);
}

TEST(IdSpaceTest, DistanceFullWidth) {
  IdSpace space(64);
  EXPECT_EQ(space.Distance(~uint64_t{0}, 0), 1u);
  EXPECT_EQ(space.Distance(0, ~uint64_t{0}), ~uint64_t{0});
}

TEST(IdSpaceTest, AddWraps) {
  IdSpace space(8);
  EXPECT_EQ(space.Add(250, 10), 4u);
  EXPECT_EQ(space.Add(0, 255), 255u);
}

TEST(IdSpaceTest, IntervalExclInclBasic) {
  IdSpace space(8);
  EXPECT_TRUE(space.InIntervalExclIncl(15, 10, 20));
  EXPECT_TRUE(space.InIntervalExclIncl(20, 10, 20));   // hi inclusive
  EXPECT_FALSE(space.InIntervalExclIncl(10, 10, 20));  // lo exclusive
  EXPECT_FALSE(space.InIntervalExclIncl(21, 10, 20));
}

TEST(IdSpaceTest, IntervalExclInclWrapping) {
  IdSpace space(8);
  // (250, 5] wraps through zero.
  EXPECT_TRUE(space.InIntervalExclIncl(255, 250, 5));
  EXPECT_TRUE(space.InIntervalExclIncl(0, 250, 5));
  EXPECT_TRUE(space.InIntervalExclIncl(5, 250, 5));
  EXPECT_FALSE(space.InIntervalExclIncl(250, 250, 5));
  EXPECT_FALSE(space.InIntervalExclIncl(6, 250, 5));
  EXPECT_FALSE(space.InIntervalExclIncl(100, 250, 5));
}

TEST(IdSpaceTest, IntervalDegenerateIsWholeRing) {
  IdSpace space(8);
  // Chord convention: (a, a] is the whole ring (single-node case).
  EXPECT_TRUE(space.InIntervalExclIncl(5, 10, 10));
  EXPECT_TRUE(space.InIntervalExclIncl(10, 10, 10));
}

TEST(IdSpaceTest, IntervalExclExclBasic) {
  IdSpace space(8);
  EXPECT_TRUE(space.InIntervalExclExcl(15, 10, 20));
  EXPECT_FALSE(space.InIntervalExclExcl(10, 10, 20));
  EXPECT_FALSE(space.InIntervalExclExcl(20, 10, 20));
}

TEST(IdSpaceTest, IntervalExclExclWrapping) {
  IdSpace space(8);
  EXPECT_TRUE(space.InIntervalExclExcl(0, 250, 5));
  EXPECT_FALSE(space.InIntervalExclExcl(5, 250, 5));
  EXPECT_FALSE(space.InIntervalExclExcl(250, 250, 5));
}

TEST(IdSpaceTest, IntervalExclExclDegenerate) {
  IdSpace space(8);
  // (a, a) is everything except a.
  EXPECT_TRUE(space.InIntervalExclExcl(5, 10, 10));
  EXPECT_FALSE(space.InIntervalExclExcl(10, 10, 10));
}

TEST(IdSpaceTest, ToStringPadsHex) {
  EXPECT_EQ(IdSpace(8).ToString(0xa), "0a");
  EXPECT_EQ(IdSpace(24).ToString(0xa), "00000a");
  EXPECT_EQ(IdSpace(64).ToString(0), "0000000000000000");
}

}  // namespace
}  // namespace dhs
