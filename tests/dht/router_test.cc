#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "dht/chord.h"

namespace dhs {
namespace {

ChordConfig FastConfig() {
  ChordConfig config;
  config.hasher = "mix";
  return config;
}

class RouterTest : public ::testing::Test {
 protected:
  void Build(int n, uint64_t seed = 7) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(net_.AddNode(rng.Next()).ok());
    }
  }
  ChordNetwork net_{FastConfig()};
};

TEST_F(RouterTest, LookupReachesResponsibleNode) {
  Build(128);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const uint64_t key = rng.Next();
    auto result = net_.Lookup(net_.RandomNode(rng), key);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->node, net_.ResponsibleNode(key).value());
  }
}

TEST_F(RouterTest, SelfLookupIsZeroHops) {
  Build(64);
  // A node looking up a key it owns: key = its own ID.
  const uint64_t node = net_.NodeIds()[10];
  auto result = net_.Lookup(node, node);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node, node);
  EXPECT_EQ(result->hops, 0);
}

TEST_F(RouterTest, SingleNodeNetworkAlwaysZeroHops) {
  ASSERT_TRUE(net_.AddNode(42).ok());
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto result = net_.Lookup(42, rng.Next());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->node, 42u);
    EXPECT_EQ(result->hops, 0);
  }
}

TEST_F(RouterTest, UnknownOriginRejected) {
  Build(8);
  EXPECT_TRUE(net_.Lookup(12345, 1).status().IsInvalidArgument());
}

TEST_F(RouterTest, HopCountIsLogarithmic) {
  // Average hops must stay well under log2(N) and grow slowly with N.
  double avg_256 = 0;
  double avg_2048 = 0;
  for (auto [n, avg] : {std::pair<int, double*>{256, &avg_256},
                        std::pair<int, double*>{2048, &avg_2048}}) {
    ChordNetwork net(FastConfig());
    Rng rng(7);
    for (int i = 0; i < n; ++i) ASSERT_TRUE(net.AddNode(rng.Next()).ok());
    StreamingStats hops;
    for (int i = 0; i < 2000; ++i) {
      auto result = net.Lookup(net.RandomNode(rng), rng.Next());
      ASSERT_TRUE(result.ok());
      hops.Add(result->hops);
    }
    *avg = hops.mean();
    EXPECT_LE(hops.mean(), std::log2(n)) << n;
    EXPECT_GE(hops.mean(), 0.3 * std::log2(n)) << n;
  }
  EXPECT_GT(avg_2048, avg_256);  // grows with N
  EXPECT_LT(avg_2048 - avg_256, 4.0);  // ... but only logarithmically
}

TEST_F(RouterTest, BytesChargedPerHop) {
  Build(256);
  Rng rng(2);
  net_.ResetStats();
  uint64_t expected_bytes = 0;
  for (int i = 0; i < 100; ++i) {
    auto result = net_.Lookup(net_.RandomNode(rng), rng.Next(), 10);
    ASSERT_TRUE(result.ok());
    expected_bytes += static_cast<uint64_t>(result->hops) * 10;
  }
  EXPECT_EQ(net_.stats().bytes, expected_bytes);
  EXPECT_EQ(net_.stats().messages, 100u);
}

TEST_F(RouterTest, DirectHopCharges) {
  Build(16);
  const auto ids = net_.NodeIds();
  net_.ResetStats();
  ASSERT_TRUE(net_.DirectHop(ids[0], ids[1], 25).ok());
  EXPECT_EQ(net_.stats().hops, 1u);
  EXPECT_EQ(net_.stats().bytes, 25u);
  // Self-hop is free.
  ASSERT_TRUE(net_.DirectHop(ids[0], ids[0], 25).ok());
  EXPECT_EQ(net_.stats().hops, 1u);
}

TEST_F(RouterTest, DirectHopUnknownNodesRejected) {
  Build(4);
  EXPECT_TRUE(net_.DirectHop(999, net_.NodeIds()[0], 1).IsInvalidArgument());
  EXPECT_TRUE(net_.DirectHop(net_.NodeIds()[0], 999, 1).IsInvalidArgument());
}

TEST_F(RouterTest, ChargeBytesAddsWithoutHops) {
  Build(4);
  net_.ResetStats();
  net_.ChargeBytes(123);
  EXPECT_EQ(net_.stats().bytes, 123u);
  EXPECT_EQ(net_.stats().hops, 0u);
}

TEST_F(RouterTest, LookupsWorkAfterChurn) {
  Build(128);
  Rng rng(9);
  // Fail a third of the nodes, then verify routing still terminates and
  // reaches the (new) responsible node.
  auto ids = net_.NodeIds();
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(net_.FailNode(ids[i]).ok());
  }
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = rng.Next();
    auto result = net_.Lookup(net_.RandomNode(rng), key);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->node, net_.ResponsibleNode(key).value());
  }
}

TEST_F(RouterTest, StatsAccumulateAcrossOperations) {
  Build(64);
  Rng rng(3);
  net_.ResetStats();
  auto r1 = net_.Lookup(net_.RandomNode(rng), rng.Next(), 4);
  auto r2 = net_.Lookup(net_.RandomNode(rng), rng.Next(), 4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(net_.stats().hops,
            static_cast<uint64_t>(r1->hops) + static_cast<uint64_t>(r2->hops));
  net_.ResetStats();
  EXPECT_EQ(net_.stats().hops, 0u);
}

}  // namespace
}  // namespace dhs
