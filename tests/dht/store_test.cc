#include "dht/store.h"

#include <gtest/gtest.h>

#include <vector>

namespace dhs {
namespace {

TEST(NodeStoreTest, PutAndGet) {
  NodeStore store;
  store.Put(42, "key", "value", kNoExpiry);
  const StoreRecord* rec = store.Get("key", 0);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->value, "value");
  EXPECT_EQ(rec->dht_key, 42u);
}

TEST(NodeStoreTest, GetMissingReturnsNull) {
  NodeStore store;
  EXPECT_EQ(store.Get("nope", 0), nullptr);
}

TEST(NodeStoreTest, PutRefreshesValueAndExpiry) {
  NodeStore store;
  store.Put(1, "k", "v1", 100);
  store.Put(2, "k", "v2", 200);
  EXPECT_EQ(store.NumRecords(), 1u);
  const StoreRecord* rec = store.Get("k", 150);
  ASSERT_NE(rec, nullptr);  // refreshed expiry keeps it alive at t=150
  EXPECT_EQ(rec->value, "v2");
  EXPECT_EQ(rec->dht_key, 2u);
}

TEST(NodeStoreTest, ExpiredRecordTreatedAbsent) {
  NodeStore store;
  store.Put(1, "k", "v", 100);
  EXPECT_NE(store.Get("k", 99), nullptr);
  EXPECT_EQ(store.Get("k", 100), nullptr);  // expires_at <= now
  EXPECT_EQ(store.NumRecords(), 0u);        // lazily erased
}

TEST(NodeStoreTest, ExpireUntilDropsOnlyOld) {
  NodeStore store;
  store.Put(1, "a", "", 50);
  store.Put(1, "b", "", 150);
  store.Put(1, "c", "", kNoExpiry);
  EXPECT_EQ(store.ExpireUntil(100), 1u);
  EXPECT_EQ(store.NumRecords(), 2u);
  EXPECT_EQ(store.ExpireUntil(200), 1u);
  EXPECT_EQ(store.NumRecords(), 1u);
}

TEST(NodeStoreTest, Erase) {
  NodeStore store;
  store.Put(1, "k", "", kNoExpiry);
  EXPECT_TRUE(store.Erase("k"));
  EXPECT_FALSE(store.Erase("k"));
  EXPECT_EQ(store.NumRecords(), 0u);
}

TEST(NodeStoreTest, PrefixScanFindsAllMatches) {
  NodeStore store;
  store.Put(1, "ab1", "", kNoExpiry);
  store.Put(1, "ab2", "", kNoExpiry);
  store.Put(1, "ac3", "", kNoExpiry);
  store.Put(1, "b", "", kNoExpiry);
  std::vector<std::string> keys;
  store.ForEachWithPrefix("ab", 0, [&](const std::string& k,
                                       const StoreRecord&) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"ab1", "ab2"}));
}

TEST(NodeStoreTest, PrefixScanSkipsExpired) {
  NodeStore store;
  store.Put(1, "p1", "", 10);
  store.Put(1, "p2", "", kNoExpiry);
  int count = 0;
  store.ForEachWithPrefix("p", 50,
                          [&](const std::string&, const StoreRecord&) {
                            ++count;
                          });
  EXPECT_EQ(count, 1);
}

TEST(NodeStoreTest, PrefixScanEmptyPrefixSeesEverything) {
  NodeStore store;
  store.Put(1, "x", "", kNoExpiry);
  store.Put(1, "y", "", kNoExpiry);
  int count = 0;
  store.ForEachWithPrefix("", 0,
                          [&](const std::string&, const StoreRecord&) {
                            ++count;
                          });
  EXPECT_EQ(count, 2);
}

TEST(NodeStoreTest, MigrateIfMovesSelectedRecords) {
  NodeStore src;
  NodeStore dst;
  src.Put(10, "low", "", kNoExpiry);
  src.Put(90, "high", "", kNoExpiry);
  src.MigrateIf([](uint64_t key) { return key < 50; }, dst);
  EXPECT_EQ(src.NumRecords(), 1u);
  EXPECT_EQ(dst.NumRecords(), 1u);
  EXPECT_NE(dst.Get("low", 0), nullptr);
  EXPECT_NE(src.Get("high", 0), nullptr);
}

TEST(NodeStoreTest, MigrateAll) {
  NodeStore src;
  NodeStore dst;
  src.Put(1, "a", "va", kNoExpiry);
  src.Put(2, "b", "vb", kNoExpiry);
  dst.Put(3, "c", "vc", kNoExpiry);
  src.MigrateAll(dst);
  EXPECT_EQ(src.NumRecords(), 0u);
  EXPECT_EQ(dst.NumRecords(), 3u);
}

TEST(NodeStoreTest, SizeBytesCountsKeysAndValues) {
  NodeStore store;
  store.Put(1, "abc", "12345", kNoExpiry);
  EXPECT_EQ(store.SizeBytes(), 8u);
  store.Put(1, "d", "", kNoExpiry);
  EXPECT_EQ(store.SizeBytes(), 9u);
}

TEST(NodeStoreTest, ClearEmpties) {
  NodeStore store;
  store.Put(1, "a", "", kNoExpiry);
  store.Clear();
  EXPECT_EQ(store.NumRecords(), 0u);
}

}  // namespace
}  // namespace dhs
