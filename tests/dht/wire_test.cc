// Wire-format tests for the DHS frame codecs (dht/wire.h): round-trips
// across a value grid for every frame type, strict rejection of every
// truncation point and one-byte extension, corrupted headers / lengths
// / payloads coming back as error Status values, and the canonical
// encoding property Encode(Decode(b)) == b for every accepted b —
// mirroring tests/sketch/serialization_test.cc for the sketch formats.
// Random inputs are covered by tests/fuzz/wire_fuzz.cc; this file pins
// down the specific corruption classes.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "dhs/config.h"
#include "dht/store.h"
#include "dht/wire.h"
#include "hashing/hasher.h"
#include "sketch/hyperloglog.h"
#include "sketch/loglog.h"
#include "sketch/pcsa.h"

namespace dhs {
namespace {

std::string WithByte(const std::string& wire, size_t at, uint8_t value) {
  std::string out = wire;
  out[at] = static_cast<char>(value);
  return out;
}

// Every strict prefix of a frame changes the actual body length away
// from the header's body_len (or cuts the header itself), and a
// one-byte tail does the same in the other direction: all of them must
// be rejected at parse time, before any typed decoding runs.
void ExpectLengthStrict(const std::string& wire) {
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(ParseFrame(wire.substr(0, len)).ok())
        << "accepted a " << len << "-byte prefix of a " << wire.size()
        << "-byte frame";
  }
  EXPECT_FALSE(ParseFrame(wire + '\0').ok()) << "accepted a tail";
}

// The header corruptions every type must reject: bad magic, unknown
// version, unknown type, stray flag bits (0x80 is allowed for no type).
void ExpectHeaderStrict(const std::string& wire) {
  EXPECT_FALSE(ParseFrame(WithByte(wire, 0, 0x00)).ok()) << "bad magic";
  EXPECT_FALSE(ParseFrame(WithByte(wire, 1, kWireVersion + 1)).ok())
      << "future version";
  EXPECT_FALSE(ParseFrame(WithByte(wire, 2, 0)).ok()) << "type zero";
  EXPECT_FALSE(ParseFrame(WithByte(wire, 2, 200)).ok()) << "unknown type";
  EXPECT_FALSE(
      ParseFrame(WithByte(wire, 3,
                          static_cast<uint8_t>(wire[3]) | uint8_t{0x80}))
          .ok())
      << "stray flag bit";
}

TEST(ParseFrameTest, RejectsTruncatedHeader) {
  for (size_t len = 0; len < kWireHeaderBytes; ++len) {
    auto parsed = ParseFrame(std::string(len, '\0'));
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(parsed.status().IsInvalidArgument());
  }
}

TEST(ParseFrameTest, RejectsBodyLenMismatch) {
  std::string wire = EncodeProbeOpen({0x1234, 7});
  // Understate and overstate body_len without changing the body.
  EXPECT_FALSE(ParseFrame(WithByte(wire, 4, 11)).ok());
  EXPECT_FALSE(ParseFrame(WithByte(wire, 4, 13)).ok());
  EXPECT_FALSE(ParseFrame(WithByte(wire, 7, 1)).ok());  // high LE32 byte
}

TEST(ParseFrameTest, BodyShorterThanEnvelopeRejected) {
  // A syntactically consistent kPut frame whose body is smaller than
  // the 24-byte kPut envelope.
  std::string wire;
  wire.push_back(static_cast<char>(kWireMagic));
  wire.push_back(static_cast<char>(kWireVersion));
  wire.push_back(static_cast<char>(FrameType::kPut));
  wire.push_back('\0');
  wire.push_back(8);  // body_len = 8 < 24
  wire.append(3, '\0');
  wire.append(8, '\0');
  auto parsed = ParseFrame(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(ProbeOpenTest, RoundTripGrid) {
  for (uint64_t key : {uint64_t{0}, uint64_t{0x0123456789abcdef},
                       std::numeric_limits<uint64_t>::max()}) {
    for (int bit : {0, 1, 23, 255}) {
      ProbeOpenFrame frame;
      frame.target_key = key;
      frame.bit = bit;
      const std::string wire = EncodeProbeOpen(frame);
      EXPECT_EQ(wire.size(), kWireHeaderBytes + kProbeOpenPayloadBytes);
      auto decoded = DecodeProbeOpen(wire);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->target_key, key);
      EXPECT_EQ(decoded->bit, bit);
      EXPECT_EQ(EncodeProbeOpen(*decoded), wire) << "non-canonical";
      ExpectLengthStrict(wire);
      ExpectHeaderStrict(wire);
    }
  }
}

TEST(ProbeOpenTest, RejectsCorruptPayload) {
  const std::string wire = EncodeProbeOpen({42, 9});
  // Reserved field must be zero; the bit field is one byte wide in
  // range but two on the wire, so its high byte must be zero too.
  EXPECT_FALSE(DecodeProbeOpen(WithByte(wire, kWireHeaderBytes + 10, 1)).ok());
  EXPECT_FALSE(DecodeProbeOpen(WithByte(wire, kWireHeaderBytes + 9, 1)).ok());
  // Wrong frame type reaches the typed decoder.
  EXPECT_FALSE(DecodeProbeOpen(EncodeMetricQuery({1, 2})).ok());
}

TEST(MetricQueryTest, RoundTripGrid) {
  for (uint64_t metric : {uint64_t{0}, uint64_t{77},
                          std::numeric_limits<uint64_t>::max()}) {
    for (int bit : {0, 128, 255}) {
      const std::string wire = EncodeMetricQuery({metric, bit});
      EXPECT_EQ(wire.size(), kWireHeaderBytes + kMetricQueryEnvelopeBytes);
      auto decoded = DecodeMetricQuery(wire);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->metric_id, metric);
      EXPECT_EQ(decoded->bit, bit);
      EXPECT_EQ(EncodeMetricQuery(*decoded), wire);
      ExpectLengthStrict(wire);
      ExpectHeaderStrict(wire);
    }
  }
}

TEST(VectorResponseTest, RoundTripGrid) {
  const std::vector<std::vector<int>> grids = {
      {}, {0}, {65535}, {0, 1, 2}, {3, 17, 9000, 65535}};
  for (const auto& ids : grids) {
    VectorResponseFrame frame;
    frame.metric_id = 0xfeed;
    frame.vector_ids = ids;
    const std::string wire = EncodeVectorResponse(frame);
    EXPECT_EQ(wire.size(),
              kWireHeaderBytes + VectorResponsePayloadBytes(ids.size()));
    auto decoded = DecodeVectorResponse(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->metric_id, frame.metric_id);
    EXPECT_EQ(decoded->vector_ids, ids);
    EXPECT_EQ(EncodeVectorResponse(*decoded), wire);
    ExpectLengthStrict(wire);
    ExpectHeaderStrict(wire);
  }
}

TEST(VectorResponseTest, RejectsCorruptPayload) {
  VectorResponseFrame frame;
  frame.metric_id = 5;
  frame.vector_ids = {10, 20};
  const std::string wire = EncodeVectorResponse(frame);
  // Duplicate (equal) ids break the strictly-ascending invariant.
  std::string dup = wire;
  dup[kWireHeaderBytes + 10] = dup[kWireHeaderBytes + 8];
  dup[kWireHeaderBytes + 11] = dup[kWireHeaderBytes + 9];
  EXPECT_FALSE(DecodeVectorResponse(dup).ok());
  // Descending ids too.
  std::string desc = dup;
  desc[kWireHeaderBytes + 10] = 1;
  EXPECT_FALSE(DecodeVectorResponse(desc).ok());
}

std::vector<StoreKey> DhsKeys(uint64_t metric, int bit,
                              const std::vector<int>& vectors) {
  std::vector<StoreKey> keys;
  keys.reserve(vectors.size());
  for (int v : vectors) keys.push_back(StoreKey::Dhs(metric, bit, v));
  return keys;
}

TEST(PutTest, RoundTripGrid) {
  for (uint64_t expiry : {uint64_t{0}, uint64_t{1000}, kNoExpiry}) {
    for (bool absolute : {false, true}) {
      for (const auto& vectors :
           std::vector<std::vector<int>>{{0}, {1, 2, 3}, {65535}}) {
        PutFrame frame;
        frame.dst_key = 0xabcdef;
        frame.metric_id = 0x1122334455667788;
        frame.expiry = expiry;
        frame.absolute_expiry = absolute;
        frame.keys = DhsKeys(frame.metric_id, 6, vectors);
        const std::string wire = EncodePut(frame);
        EXPECT_EQ(wire.size(), kWireHeaderBytes + kPutEnvelopeBytes +
                                   PutPayloadBytes(vectors.size()));
        auto decoded = DecodePut(wire);
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        EXPECT_EQ(decoded->dst_key, frame.dst_key);
        EXPECT_EQ(decoded->metric_id, frame.metric_id);
        EXPECT_EQ(decoded->expiry, expiry);
        EXPECT_EQ(decoded->absolute_expiry, absolute);
        ASSERT_EQ(decoded->keys.size(), vectors.size());
        for (size_t i = 0; i < vectors.size(); ++i) {
          EXPECT_EQ(decoded->keys[i].metric_id(), frame.metric_id);
          EXPECT_EQ(decoded->keys[i].bit(), 6);
          EXPECT_EQ(decoded->keys[i].vector_id(), vectors[i]);
        }
        EXPECT_EQ(EncodePut(*decoded), wire);
        ExpectLengthStrict(wire);
        ExpectHeaderStrict(wire);
      }
    }
  }
}

TEST(PutTest, RejectsCorruptPayload) {
  PutFrame frame;
  frame.metric_id = 0x42;
  frame.expiry = 500;
  frame.keys = DhsKeys(frame.metric_id, 3, {7});
  const std::string wire = EncodePut(frame);
  const size_t tuple = kWireHeaderBytes + kPutEnvelopeBytes;
  // Tuple metric_low must be a projection of the envelope metric.
  EXPECT_FALSE(DecodePut(WithByte(wire, tuple, 0x43)).ok());
  // Tuple timeout must be a projection of the envelope expiry.
  EXPECT_FALSE(DecodePut(WithByte(wire, tuple + 4, 0xee)).ok());
  // An empty put group has no meaning on the wire.
  PutFrame empty = frame;
  empty.keys.clear();
  EXPECT_FALSE(DecodePut(EncodePut(empty)).ok());
}

TEST(AckTest, RoundTripGrid) {
  for (uint8_t code : {uint8_t{0}, uint8_t{3},
                       static_cast<uint8_t>(StatusCode::kInternal)}) {
    for (int hops : {0, 1, 65535}) {
      AckFrame frame;
      frame.code = code;
      frame.node = 0x8000000000000001;
      frame.hops = hops;
      const std::string wire = EncodeAck(frame);
      EXPECT_EQ(wire.size(), kWireHeaderBytes + kAckEnvelopeBytes);
      auto decoded = DecodeAck(wire);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->code, code);
      EXPECT_EQ(decoded->node, frame.node);
      EXPECT_EQ(decoded->hops, hops);
      EXPECT_EQ(EncodeAck(*decoded), wire);
      ExpectLengthStrict(wire);
      ExpectHeaderStrict(wire);
    }
  }
}

TEST(AckTest, RejectsUnknownStatusCode) {
  const std::string wire = EncodeAck({0, 9, 2});
  EXPECT_FALSE(DecodeAck(WithByte(wire, kWireHeaderBytes, 0xff)).ok());
}

TEST(MigrateTest, RoundTripGrid) {
  MigrateFrame frame;
  const std::string wire_empty = EncodeMigrate(frame);
  auto decoded_empty = DecodeMigrate(wire_empty);
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_TRUE(decoded_empty->records.empty());

  MigrateRecord a;
  a.dht_key = 0x1111;
  a.key = StoreKey::Dhs(9, 4, 2);
  a.expires_at = 777;
  a.value = "payload bytes";
  MigrateRecord b;
  b.dht_key = 0x2222;
  b.key = StoreKey::Dhs(10, 0, 0);
  b.expires_at = kNoExpiry;
  frame.records = {a, b};
  const std::string wire = EncodeMigrate(frame);
  auto decoded = DecodeMigrate(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(decoded->records[0].dht_key, a.dht_key);
  EXPECT_EQ(decoded->records[0].value, a.value);
  EXPECT_EQ(decoded->records[1].expires_at, kNoExpiry);
  EXPECT_EQ(EncodeMigrate(*decoded), wire);
  ExpectLengthStrict(wire);
  ExpectHeaderStrict(wire);
}

TEST(MigrateTest, RejectsCorruptPayload) {
  MigrateFrame frame;
  MigrateRecord record;
  record.dht_key = 5;
  record.key = StoreKey::Dhs(1, 1, 1);
  record.value = "v";
  frame.records = {record};
  std::string wire = EncodeMigrate(frame);
  // Overstate the record count: the decoder runs out of body.
  EXPECT_FALSE(DecodeMigrate(WithByte(wire, kWireHeaderBytes, 2)).ok());
  // Understate it: trailing bytes after the declared records.
  EXPECT_FALSE(DecodeMigrate(WithByte(wire, kWireHeaderBytes, 0)).ok());
}

TEST(CountRequestTest, RoundTripGrid) {
  for (const auto& metrics : std::vector<std::vector<uint64_t>>{
           {1}, {0, std::numeric_limits<uint64_t>::max()}, {5, 6, 7, 8}}) {
    CountRequestFrame frame;
    frame.metric_ids = metrics;
    const std::string wire = EncodeCountRequest(frame);
    auto decoded = DecodeCountRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->metric_ids, metrics);
    EXPECT_EQ(EncodeCountRequest(*decoded), wire);
    ExpectLengthStrict(wire);
    ExpectHeaderStrict(wire);
  }
}

TEST(CountRequestTest, RejectsEmptyRequest) {
  EXPECT_FALSE(DecodeCountRequest(EncodeCountRequest({})).ok());
}

TEST(CountResponseTest, RoundTripGrid) {
  for (bool gave_up : {false, true}) {
    CountResponseFrame frame;
    frame.gave_up = gave_up;
    frame.bitmaps_unresolved = 3;
    CountResponseEntry resolved;
    resolved.estimate = 123456.789;
    resolved.observables = {-1, 0, 5, 32767};
    CountResponseEntry empty_entry;
    empty_entry.estimate = 0.0;
    frame.entries = {resolved, empty_entry};
    const std::string wire = EncodeCountResponse(frame);
    auto decoded = DecodeCountResponse(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->gave_up, gave_up);
    EXPECT_EQ(decoded->bitmaps_unresolved, 3u);
    ASSERT_EQ(decoded->entries.size(), 2u);
    EXPECT_EQ(decoded->entries[0].estimate, resolved.estimate);
    EXPECT_EQ(decoded->entries[0].observables, resolved.observables);
    EXPECT_TRUE(decoded->entries[1].observables.empty());
    EXPECT_EQ(EncodeCountResponse(*decoded), wire);
    ExpectLengthStrict(wire);
    ExpectHeaderStrict(wire);
  }
}

TEST(CountResponseTest, RejectsCorruptPayload) {
  CountResponseFrame frame;
  CountResponseEntry entry;
  entry.estimate = 9.5;
  entry.observables = {4};
  frame.entries = {entry};
  const std::string wire = EncodeCountResponse(frame);
  // Overstate the observable count: truncated observables.
  const size_t m_at = kWireHeaderBytes + kCountResponseEnvelopeBytes + 8;
  EXPECT_FALSE(DecodeCountResponse(WithByte(wire, m_at, 7)).ok());
  // An observable of -2 (0xfffe) is below the -1 floor.
  std::string low = wire;
  low[m_at + 2] = static_cast<char>(0xfe);
  low[m_at + 3] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeCountResponse(low).ok());
}

TEST(SketchFrameTest, RoundTripsEveryFamilySerialization) {
  MixHasher hasher(11);
  uint64_t salt = 0;

  PcsaSketch pcsa(16, 24);
  LogLogSketch loglog(16, 24);
  HllSketch hll(16, 24);
  for (int i = 0; i < 500; ++i) {
    const uint64_t hash = hasher.HashU64(salt++);
    pcsa.AddHash(hash);
    loglog.AddHash(hash);
    hll.AddHash(hash);
  }

  struct Case {
    uint8_t family;
    std::string payload;
  };
  const std::vector<Case> cases = {{kSketchFamilyPcsa, pcsa.Serialize()},
                                   {kSketchFamilyLogLog, loglog.Serialize()},
                                   {kSketchFamilyHyperLogLog, hll.Serialize()}};
  for (const Case& c : cases) {
    SketchFrame frame;
    frame.family = c.family;
    frame.payload = c.payload;
    const std::string wire = EncodeSketch(frame);
    EXPECT_EQ(wire.size(),
              kWireHeaderBytes + kSketchEnvelopeBytes + c.payload.size());
    auto decoded = DecodeSketch(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->family, c.family);
    EXPECT_EQ(decoded->payload, c.payload);
    EXPECT_EQ(EncodeSketch(*decoded), wire);
    ExpectLengthStrict(wire);
    ExpectHeaderStrict(wire);
  }

  // The carried bytes deserialize back to an estimator with the same
  // estimate — the frame is a faithful envelope around the PR 2 codecs.
  auto carried = DecodeSketch(EncodeSketch({kSketchFamilyHyperLogLog,
                                            hll.Serialize()}));
  ASSERT_TRUE(carried.ok());
  auto revived = HllSketch::Deserialize(carried->payload);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->Estimate(), hll.Estimate());
}

TEST(SketchFrameTest, RejectsCorruptPayload) {
  const std::string wire = EncodeSketch({kSketchFamilyPcsa, "abc"});
  EXPECT_FALSE(DecodeSketch(WithByte(wire, kWireHeaderBytes, 0)).ok());
  EXPECT_FALSE(DecodeSketch(WithByte(wire, kWireHeaderBytes, 4)).ok());
  // A family byte with no payload behind it.
  std::string empty;
  empty.push_back(static_cast<char>(kWireMagic));
  empty.push_back(static_cast<char>(kWireVersion));
  empty.push_back(static_cast<char>(FrameType::kSketch));
  empty.push_back('\0');
  empty.push_back(1);
  empty.append(3, '\0');
  empty.push_back(static_cast<char>(kSketchFamilyPcsa));
  EXPECT_FALSE(DecodeSketch(empty).ok());
}

// ---------------------------------------------------------------------------
// Accounting invariants: the encoded frames charge exactly the paper's
// §5.1 sizes, so the measured transports reproduce the accounted runs.

TEST(AccountingTest, SizeHelpersMatchConfigFormulas) {
  const DhsConfig config;
  EXPECT_EQ(kProbeOpenPayloadBytes, config.ProbeRequestBytes());
  EXPECT_EQ(PutPayloadBytes(1), config.TupleBytes());
  EXPECT_EQ(PutPayloadBytes(17), 17 * config.TupleBytes());
  for (size_t v : {size_t{0}, size_t{1}, size_t{9}, size_t{128}}) {
    EXPECT_EQ(VectorResponsePayloadBytes(v), config.ProbeResponseBytes(v));
  }
}

TEST(AccountingTest, AccountedPayloadPerType) {
  auto accounted = [](const std::string& wire) {
    auto bytes = AccountedPayloadBytes(wire);
    CHECK_OK(bytes);
    return *bytes;
  };
  EXPECT_EQ(accounted(EncodeProbeOpen({1, 2})), kProbeOpenPayloadBytes);
  EXPECT_EQ(accounted(EncodeMetricQuery({1, 2})), 0u);
  VectorResponseFrame response;
  response.vector_ids = {1, 2, 3};
  EXPECT_EQ(accounted(EncodeVectorResponse(response)),
            VectorResponsePayloadBytes(3));
  PutFrame put;
  put.metric_id = 4;
  put.keys = DhsKeys(4, 2, {1, 2});
  EXPECT_EQ(accounted(EncodePut(put)), PutPayloadBytes(2));
  EXPECT_EQ(accounted(EncodeAck({0, 1, 2})), 0u);
  MigrateFrame migrate;
  MigrateRecord record;
  record.key = StoreKey::Dhs(1, 1, 1);
  record.value = "vvv";
  migrate.records = {record};
  EXPECT_EQ(accounted(EncodeMigrate(migrate)), 0u) << "repair is uncharged";
  CountRequestFrame count;
  count.metric_ids = {1, 2, 3};
  EXPECT_EQ(accounted(EncodeCountRequest(count)), 24u);
  EXPECT_EQ(accounted(EncodeSketch({kSketchFamilyPcsa, "abcd"})), 4u);
}

TEST(AccountingTest, FrameOverheadCoversHeaderAndEnvelope) {
  EXPECT_EQ(FrameOverheadBytes(FrameType::kProbeOpen), kWireHeaderBytes);
  EXPECT_EQ(FrameOverheadBytes(FrameType::kMetricQuery),
            kWireHeaderBytes + kMetricQueryEnvelopeBytes);
  EXPECT_EQ(FrameOverheadBytes(FrameType::kPut),
            kWireHeaderBytes + kPutEnvelopeBytes);
  EXPECT_EQ(FrameOverheadBytes(FrameType::kAck),
            kWireHeaderBytes + kAckEnvelopeBytes);
}

TEST(RoutedDstKeyTest, RoutableTypesLeadWithTheKey) {
  auto probe_key = RoutedDstKey(EncodeProbeOpen({0xdead, 3}));
  ASSERT_TRUE(probe_key.ok());
  EXPECT_EQ(*probe_key, 0xdeadu);
  PutFrame put;
  put.dst_key = 0xbeef;
  put.metric_id = 1;
  put.keys = DhsKeys(1, 0, {0});
  auto put_key = RoutedDstKey(EncodePut(put));
  ASSERT_TRUE(put_key.ok());
  EXPECT_EQ(*put_key, 0xbeefu);
  EXPECT_FALSE(RoutedDstKey(EncodeAck({0, 1, 2})).ok());
  EXPECT_FALSE(RoutedDstKey(EncodeMetricQuery({1, 2})).ok());
}

}  // namespace
}  // namespace dhs
