// Adversarial schedule exploration (common/schedule.h): the
// controllers serialize the ShardPool into explicitly chosen task
// orders, and the sharded engine's determinism contract must hold at
// EVERY explored order — each schedule's world digest byte-identical
// to the 1-shard sequential oracle, clean and under fault injection.
// Also pins the controller mechanics themselves: one task at a time,
// and exhaustive enumeration visiting every order of a round exactly
// once. (audit_sim --interleave drives the same machinery at scale.)

#include "common/schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "dht/chord.h"
#include "dht/shard.h"
#include "dhs/front_door.h"

namespace dhs {
namespace {

/// Serializes every observable of the world (the shard_test digest):
/// clock, stats, storage, fault stats, per-node loads, live records.
void AppendNetwork(std::ostringstream& os, const DhtNetwork& net) {
  os << "now " << net.now() << " stats " << net.stats().messages << ' '
     << net.stats().hops << ' ' << net.stats().bytes << " storage "
     << net.TotalStorageBytes() << '\n';
  const FaultStats& fs = net.fault_plan().stats();
  os << "faults " << fs.drops << ' ' << fs.timeouts << ' ' << fs.crashes
     << '\n';
  for (const auto& [id, load] : net.Loads()) {
    os << "load " << id << ' ' << load.routed << ' ' << load.served << ' '
       << load.stores << ' ' << load.probes << '\n';
  }
  for (uint64_t id : net.NodeIds()) {
    const NodeStore* store = net.StoreAt(id);
    ASSERT_NE(store, nullptr);
    store->ForEach(net.now(), [&](const StoreKey& key, const StoreRecord& rec) {
      os << "rec " << id << ' ' << key.metric_id() << ' ' << key.bit() << ' '
         << key.vector_id() << ' ' << rec.expires_at << '\n';
    });
  }
}

DhsConfig ScenarioConfig() {
  DhsConfig config;
  config.k = 12;
  config.m = 4;
  config.lim = 3;
  config.replication = 2;
  config.ttl_ticks = 64;
  config.estimator = DhsEstimator::kSuperLogLog;
  return config;
}

/// The fixed-seed scenario under an installed controller. A pure
/// function of (shards, schedule): insert, tick, count, then a faulted
/// insert + count driving the retry/degradation paths. The returned
/// digest must be byte-identical for every shard count and schedule.
std::string RunScenario(int shards, ScheduleController* controller) {
  ChordNetwork net;
  Rng rng(0x5c4ed);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(rng.Next());
  EXPECT_EQ(net.BulkAddNodes(std::move(ids)), 24u);
  ShardedNetwork engine(&net, shards);
  engine.SetScheduleController(controller);
  auto fd = DhsFrontDoor::Create(&engine, ScenarioConfig());
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return std::string();

  std::ostringstream os;
  const uint64_t metric = 3;
  std::vector<uint64_t> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(rng.Next());
  auto cost = fd->InsertBatch(net.RandomNode(rng), metric, batch, rng);
  EXPECT_TRUE(cost.ok());
  engine.AdvanceClock(2);
  auto count = fd->Count(net.RandomNode(rng), metric, rng);
  EXPECT_TRUE(count.ok());
  if (count.ok()) {
    os << "estimate " << std::setprecision(17) << count->estimate
       << " gave_up " << count->gave_up << '\n';
    for (int v : count->observables) os << "obs " << v << '\n';
  }

  FaultConfig faults;
  faults.drop_probability = 0.2;
  faults.timeout_probability = 0.1;
  faults.seed = 9;
  EXPECT_TRUE(net.SetFaultPlan(faults).ok());
  std::vector<uint64_t> faulted_batch;
  for (int i = 0; i < 8; ++i) faulted_batch.push_back(rng.Next());
  auto faulted_cost =
      fd->InsertBatch(net.RandomNode(rng), metric, faulted_batch, rng);
  if (faulted_cost.ok()) {
    os << "faulted retries " << faulted_cost->retries << " failed "
       << faulted_cost->failed_probes << '\n';
  }
  auto faulted = fd->Count(net.RandomNode(rng), metric, rng);
  if (faulted.ok()) {
    os << "faulted estimate " << std::setprecision(17) << faulted->estimate
       << " gave_up " << faulted->gave_up << '\n';
  }
  net.ClearFaultPlan();

  AppendNetwork(os, net);
  return os.str();
}

void ExpectByteIdentical(const std::string& a, const std::string& b,
                         const std::string& what) {
  if (a == b) return;
  size_t offset = 0;
  const size_t limit = std::min(a.size(), b.size());
  while (offset < limit && a[offset] == b[offset]) ++offset;
  FAIL() << what << " diverges at byte " << offset << " (sizes " << a.size()
         << " vs " << b.size() << "); context: ..."
         << a.substr(offset > 40 ? offset - 40 : 0, 80) << "... vs ..."
         << b.substr(offset > 40 ? offset - 40 : 0, 80) << "...";
}

TEST(ScheduleDeterminismTest, PctSchedulesReproduceTheOracle) {
  const std::string want = RunScenario(1, nullptr);
  ASSERT_FALSE(want.empty());
  uint64_t total_steps = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PctScheduleController controller(4, seed);
    const std::string got = RunScenario(4, &controller);
    std::ostringstream what;
    what << "PCT schedule (seed " << seed << ") vs oracle";
    ExpectByteIdentical(got, want, what.str());
    // The controller actually mediated the run: every executed task was
    // an explicit grant.
    EXPECT_GT(controller.steps(), 0u) << "seed " << seed;
    total_steps += controller.steps();
  }
  EXPECT_GT(total_steps, 0u);
}

TEST(ScheduleDeterminismTest, ExhaustiveEnumerationReproducesTheOracle) {
  const std::string want = RunScenario(1, nullptr);
  ASSERT_FALSE(want.empty());
  // 2 shards keeps branching factors small; the budget caps the DFS
  // (the full tree is astronomically larger than 24 leaves).
  ExhaustiveScheduleController controller(2);
  constexpr int kBudget = 24;
  int explored = 0;
  bool more = true;
  while (more && explored < kBudget) {
    const std::string got = RunScenario(2, &controller);
    std::ostringstream what;
    what << "exhaustive schedule " << explored << " vs oracle";
    ExpectByteIdentical(got, want, what.str());
    ++explored;
    more = controller.NextSchedule();
  }
  // The scenario has real branch points (every AdvanceClock round posts
  // an expiry task to both shards), so the DFS must have found more
  // than one distinct schedule.
  EXPECT_GE(explored, 2);
  EXPECT_GT(controller.steps(), 0u);
}

TEST(ScheduleControllerTest, ControllerSerializesThePool) {
  PctScheduleController controller(4, /*seed=*/7);
  ShardPool pool(4);
  pool.SetScheduleController(&controller);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.RunRound([&](int) {
      const int now = running.fetch_add(1, std::memory_order_relaxed) + 1;
      int prev = max_running.load(std::memory_order_relaxed);
      while (now > prev &&
             !max_running.compare_exchange_weak(prev, now,
                                                std::memory_order_relaxed)) {
      }
      total.fetch_add(1, std::memory_order_relaxed);
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 20);
  // An installed controller grants one slot at a time: never two tasks
  // in flight, one step per executed task.
  EXPECT_EQ(max_running.load(), 1);
  EXPECT_EQ(controller.steps(), 20u);
}

TEST(ScheduleControllerTest, ExhaustiveEnumeratesEveryOrderOfOneRound) {
  // One round, one task per shard, 3 shards: the schedule tree has
  // exactly 3! = 6 leaves, and the DFS must visit each order once.
  ExhaustiveScheduleController controller(3);
  ShardPool pool(3);
  pool.SetScheduleController(&controller);
  std::set<std::vector<int>> orders;
  int runs = 0;
  bool more = true;
  while (more) {
    // Serialized execution hands `order` from task to task through the
    // controller's grant protocol (that happens-before edge is part of
    // what the TSan leg checks here).
    std::vector<int> order;
    pool.RunRound([&order](int shard) { order.push_back(shard); });
    orders.insert(order);
    ++runs;
    ASSERT_LE(runs, 6) << "more schedules than orders of one round";
    more = controller.NextSchedule();
  }
  EXPECT_EQ(runs, 6);
  EXPECT_EQ(orders.size(), 6u);
  EXPECT_EQ(controller.schedules_run(), 6u);
}

}  // namespace
}  // namespace dhs
