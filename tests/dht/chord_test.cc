#include "dht/chord.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dhs {
namespace {

ChordConfig FastConfig() {
  ChordConfig config;
  config.hasher = "mix";
  return config;
}

TEST(ChordMembershipTest, AddAndContains) {
  ChordNetwork net(FastConfig());
  EXPECT_TRUE(net.AddNode(100).ok());
  EXPECT_TRUE(net.Contains(100));
  EXPECT_FALSE(net.Contains(101));
  EXPECT_EQ(net.NumNodes(), 1u);
}

TEST(ChordMembershipTest, DuplicateAddFails) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(100).ok());
  EXPECT_TRUE(net.AddNode(100).IsInvalidArgument());
}

TEST(ChordMembershipTest, AddNodeFromNameIsDeterministic) {
  ChordNetwork a(FastConfig());
  ChordNetwork b(FastConfig());
  auto ida = a.AddNodeFromName("peer-1");
  auto idb = b.AddNodeFromName("peer-1");
  ASSERT_TRUE(ida.ok());
  ASSERT_TRUE(idb.ok());
  EXPECT_EQ(ida.value(), idb.value());
}

TEST(ChordMembershipTest, Md4NamesMatchPaperHash) {
  ChordConfig config;  // default hasher: md4
  ChordNetwork net(config);
  auto id = net.AddNodeFromName("10.0.0.1:4001");
  ASSERT_TRUE(id.ok());
  Md4Hasher md4;
  EXPECT_EQ(id.value(), md4.Hash("10.0.0.1:4001"));
}

TEST(ChordMembershipTest, NodeIdsSorted) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {50u, 10u, 90u}) ASSERT_TRUE(net.AddNode(id).ok());
  EXPECT_EQ(net.NodeIds(), (std::vector<uint64_t>{10, 50, 90}));
}

TEST(ChordRingTest, ResponsibleNodeIsSuccessor) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u}) ASSERT_TRUE(net.AddNode(id).ok());
  EXPECT_EQ(net.ResponsibleNode(150).value(), 200u);
  EXPECT_EQ(net.ResponsibleNode(200).value(), 200u);  // exact hit
  EXPECT_EQ(net.ResponsibleNode(301).value(), 100u);  // wraps
  EXPECT_EQ(net.ResponsibleNode(50).value(), 100u);
}

TEST(ChordRingTest, SuccessorPredecessorOfNode) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u}) ASSERT_TRUE(net.AddNode(id).ok());
  EXPECT_EQ(net.SuccessorOfNode(100).value(), 200u);
  EXPECT_EQ(net.SuccessorOfNode(300).value(), 100u);  // wraps
  EXPECT_EQ(net.PredecessorOfNode(100).value(), 300u);
  EXPECT_EQ(net.PredecessorOfNode(200).value(), 100u);
}

TEST(ChordRingTest, SingleNodeIsItsOwnNeighbours) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(42).ok());
  EXPECT_EQ(net.SuccessorOfNode(42).value(), 42u);
  EXPECT_EQ(net.PredecessorOfNode(42).value(), 42u);
  EXPECT_EQ(net.ResponsibleNode(7).value(), 42u);
}

TEST(ChordRingTest, EmptyNetworkFailsPrecondition) {
  ChordNetwork net(FastConfig());
  EXPECT_TRUE(net.ResponsibleNode(1).status().IsFailedPrecondition());
  EXPECT_TRUE(net.SuccessorOfNode(1).status().IsFailedPrecondition());
}

TEST(ChordRingTest, CountNodesInRange) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u}) ASSERT_TRUE(net.AddNode(id).ok());
  EXPECT_EQ(net.CountNodesInRange(100, 300), 2u);  // [100, 300): 100, 200
  EXPECT_EQ(net.CountNodesInRange(50, 350), 3u);
  EXPECT_EQ(net.CountNodesInRange(150, 150), 0u);
  // Wrapping range [250, 150): nodes 300 and 100.
  EXPECT_EQ(net.CountNodesInRange(250, 150), 2u);
}

TEST(ChordRingTest, ReplicaCandidatesAreRingSuccessorsOfPrimary) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u, 400u}) {
    ASSERT_TRUE(net.AddNode(id).ok());
  }
  const IdInterval interval{0, uint64_t{1} << 62};
  const std::vector<uint64_t> expected{300u, 400u, 100u};  // wraps past 400
  EXPECT_EQ(net.ReplicaCandidates(interval, 150, 200, 3), expected);
  // Requesting a full ring's worth stops before revisiting the primary.
  EXPECT_EQ(net.ReplicaCandidates(interval, 150, 200, 10).size(), 3u);
  // A single node has nowhere to replicate.
  ChordNetwork lonely(FastConfig());
  ASSERT_TRUE(lonely.AddNode(7).ok());
  EXPECT_TRUE(lonely.ReplicaCandidates(interval, 5, 7, 3).empty());
}

TEST(ChordDataTest, PutAndGetValue) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u}) ASSERT_TRUE(net.AddNode(id).ok());
  auto holder = net.Put(100, 150, "app-key", "payload", kNoExpiry);
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(holder.value(), 200u);  // successor of 150
  auto value = net.GetValue(300, 150, "app-key");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), "payload");
}

TEST(ChordDataTest, GetMissingIsNotFound) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(1).ok());
  EXPECT_TRUE(net.GetValue(1, 5, "nope").status().IsNotFound());
}

TEST(ChordDataTest, TtlExpiresViaClock) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.Put(1, 5, "k", "v", 10).ok());
  EXPECT_TRUE(net.GetValue(1, 5, "k").ok());
  net.AdvanceClock(10);
  EXPECT_TRUE(net.GetValue(1, 5, "k").status().IsNotFound());
}

TEST(ChordDataTest, JoinTakesOverKeys) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(100).ok());
  ASSERT_TRUE(net.AddNode(300).ok());
  // Key 150 currently owned by 300.
  ASSERT_TRUE(net.Put(100, 150, "k", "v", kNoExpiry).ok());
  EXPECT_NE(net.StoreAt(300)->Get("k", 0), nullptr);
  // Node 200 joins and becomes responsible for (100, 200].
  ASSERT_TRUE(net.AddNode(200).ok());
  EXPECT_EQ(net.StoreAt(300)->Get("k", 0), nullptr);
  EXPECT_NE(net.StoreAt(200)->Get("k", 0), nullptr);
  // Lookups now resolve to the new owner.
  EXPECT_EQ(net.GetValue(100, 150, "k").value(), "v");
}

TEST(ChordDataTest, GracefulLeaveHandsOverKeys) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u}) ASSERT_TRUE(net.AddNode(id).ok());
  ASSERT_TRUE(net.Put(100, 150, "k", "v", kNoExpiry).ok());
  ASSERT_TRUE(net.RemoveNode(200).ok());
  EXPECT_EQ(net.GetValue(100, 150, "k").value(), "v");  // now at 300
  EXPECT_NE(net.StoreAt(300)->Get("k", 0), nullptr);
}

TEST(ChordDataTest, FailureLosesData) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {100u, 200u, 300u}) ASSERT_TRUE(net.AddNode(id).ok());
  ASSERT_TRUE(net.Put(100, 150, "k", "v", kNoExpiry).ok());
  ASSERT_TRUE(net.FailNode(200).ok());
  EXPECT_FALSE(net.Contains(200));
  EXPECT_TRUE(net.GetValue(100, 150, "k").status().IsNotFound());
}

TEST(ChordDataTest, RemoveUnknownNodeIsNotFound) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(1).ok());
  EXPECT_TRUE(net.RemoveNode(99).IsNotFound());
  EXPECT_TRUE(net.FailNode(99).IsNotFound());
}

TEST(ChordAuditTest, AuditPassesUnderChurnTtlAndRouting) {
  ChordNetwork net(FastConfig());
  Rng rng(31);
  std::vector<uint64_t> live;
  for (int i = 0; i < 48; ++i) {
    const uint64_t id = rng.Next();
    if (net.AddNode(id).ok()) live.push_back(id);
  }
  for (int round = 0; round < 30; ++round) {
    // Mixed workload: puts with finite TTLs, routed gets (fills finger
    // tables), clock advances (drains expiry heaps), churn (invalidates
    // cached routing state).
    const uint64_t key = rng.Next();
    ASSERT_TRUE(net.Put(live[rng.UniformU64(live.size())], key, "k", "v",
                        1 + rng.UniformU64(20))
                    .ok());
    // NotFound is the expected outcome for random keys; only the charged
    // routing cost matters here.
    (void)net.GetValue(live[rng.UniformU64(live.size())], rng.Next(), "k");
    if (round % 3 == 0) net.AdvanceClock(rng.UniformU64(8));
    if (round % 4 == 1 && live.size() > 8) {
      const size_t victim = rng.UniformU64(live.size());
      ASSERT_TRUE((round % 8 == 1 ? net.FailNode(live[victim])
                                  : net.RemoveNode(live[victim]))
                      .ok());
      live.erase(live.begin() + static_cast<long>(victim));
    }
    const Status audit = net.AuditFull();
    ASSERT_TRUE(audit.ok()) << "round " << round << ": " << audit.ToString();
    net.CheckInvariants();  // DCHECK wrapper: fatal in debug builds
  }
}

TEST(ChordStatsTest, LoadAccounting) {
  ChordNetwork net(FastConfig());
  Rng rng(1);
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(net.AddNode(rng.Next()).ok());
  net.ResetLoads();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(net.Lookup(net.RandomNode(rng), rng.Next(), 8).ok());
  }
  uint64_t served = 0;
  for (const auto& [id, load] : net.Loads()) served += load.served;
  EXPECT_EQ(served, 100u);
}

TEST(ChordStatsTest, TotalStorageBytes) {
  ChordNetwork net(FastConfig());
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(1ull << 63).ok());
  ASSERT_TRUE(net.Put(1, 2, "abc", "1234", kNoExpiry).ok());
  EXPECT_EQ(net.TotalStorageBytes(), 7u);
}

TEST(ChordStatsTest, RandomNodeIsUniformIsh) {
  ChordNetwork net(FastConfig());
  for (uint64_t id : {10u, 20u, 30u, 40u}) ASSERT_TRUE(net.AddNode(id).ok());
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 4000; ++i) {
    counts[net.RandomNode(rng) / 10]++;
  }
  for (int i = 1; i <= 4; ++i) {
    EXPECT_NEAR(counts[i], 1000, 150) << i;
  }
}

}  // namespace
}  // namespace dhs
