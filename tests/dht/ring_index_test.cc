// Regression tests for the flat ring index (sorted live-ID vector) and
// the derived routing state hung off it (Chord finger tables, Kademlia
// bucket caches). Focus areas:
//
//   * wrap-around correctness — CountNodesInRange across the 2^L
//     boundary, Successor/Predecessor at the ring extremes;
//   * invalidation — after interleaved AddNode/RemoveNode/FailNode the
//     cached state must never serve routes from a stale membership view
//     (every route is checked against a brute-force reference).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/kademlia.h"

namespace dhs {
namespace {

enum class Geometry { kChord, kKademlia };

std::unique_ptr<DhtNetwork> MakeOverlay(Geometry geometry, int id_bits = 64) {
  OverlayConfig config;
  config.id_bits = id_bits;
  config.hasher = "mix";
  if (geometry == Geometry::kChord) {
    return std::make_unique<ChordNetwork>(config);
  }
  return std::make_unique<KademliaNetwork>(config);
}

// O(N) reference for CountNodesInRange over an explicit ID list.
size_t BruteCount(const std::vector<uint64_t>& ids, uint64_t lo,
                  uint64_t hi) {
  if (lo == hi) return 0;
  size_t count = 0;
  for (uint64_t id : ids) {
    const bool inside = lo < hi ? (id >= lo && id < hi)   // plain range
                                : (id >= lo || id < hi);  // wraps 2^L
    if (inside) ++count;
  }
  return count;
}

class RingIndexTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(RingIndexTest, CountNodesInRangeWrapsAroundTop) {
  auto net = MakeOverlay(GetParam());
  const uint64_t top = ~uint64_t{0};
  const std::vector<uint64_t> ids = {0,       1,         top,
                                     top - 1, uint64_t{1} << 63, 42};
  for (uint64_t id : ids) ASSERT_TRUE(net->AddNode(id).ok());

  // Range straddling the 2^64 boundary: [top-1, 2) = {top-1, top, 0, 1}.
  EXPECT_EQ(net->CountNodesInRange(top - 1, 2), 4u);
  // Degenerate empty range.
  EXPECT_EQ(net->CountNodesInRange(5, 5), 0u);
  // lo > hi with nothing between: (top of ring only).
  EXPECT_EQ(net->CountNodesInRange(top, 0), 1u);
  // Full sweep of random ranges against the brute-force reference.
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = rng.Next();
    ASSERT_EQ(net->CountNodesInRange(lo, hi), BruteCount(ids, lo, hi))
        << "lo=" << lo << " hi=" << hi;
  }
}

TEST_P(RingIndexTest, CountNodesInRangeWrapsInNarrowSpace) {
  // Same property in a 16-bit space, where Clamp actually truncates.
  auto net = MakeOverlay(GetParam(), 16);
  std::vector<uint64_t> ids = {0, 1, 0xfffe, 0xffff, 0x8000};
  for (uint64_t id : ids) ASSERT_TRUE(net->AddNode(id).ok());
  EXPECT_EQ(net->CountNodesInRange(0xfffe, 2), 4u);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t lo = rng.Next() & 0xffff;
    const uint64_t hi = rng.Next() & 0xffff;
    ASSERT_EQ(net->CountNodesInRange(lo, hi), BruteCount(ids, lo, hi));
  }
}

TEST_P(RingIndexTest, SuccessorPredecessorAtExtremes) {
  auto net = MakeOverlay(GetParam());
  const uint64_t top = ~uint64_t{0};
  for (uint64_t id : {uint64_t{0}, uint64_t{100}, top}) {
    ASSERT_TRUE(net->AddNode(id).ok());
  }
  // Successor walks wrap highest -> lowest.
  EXPECT_EQ(net->SuccessorOfNode(top).value(), 0u);
  EXPECT_EQ(net->SuccessorOfNode(0).value(), 100u);
  EXPECT_EQ(net->SuccessorOfNode(100).value(), top);
  // Predecessor walks wrap lowest -> highest.
  EXPECT_EQ(net->PredecessorOfNode(0).value(), top);
  EXPECT_EQ(net->PredecessorOfNode(top).value(), 100u);
  EXPECT_EQ(net->PredecessorOfNode(100).value(), 0u);
  // Queries between nodes resolve to ring neighbours as well.
  EXPECT_EQ(net->SuccessorOfNode(101).value(), top);
  EXPECT_EQ(net->PredecessorOfNode(99).value(), 0u);
}

TEST_P(RingIndexTest, SingleNodeRingIsItsOwnNeighbour) {
  auto net = MakeOverlay(GetParam());
  ASSERT_TRUE(net->AddNode(12345).ok());
  EXPECT_EQ(net->SuccessorOfNode(12345).value(), 12345u);
  EXPECT_EQ(net->PredecessorOfNode(12345).value(), 12345u);
  EXPECT_EQ(net->CountNodesInRange(0, 12345), 0u);
  EXPECT_EQ(net->CountNodesInRange(12345, 12346), 1u);
}

// After every membership change, routed lookups must land on the node a
// brute-force scan says is responsible, and hop counts must stay sane.
// This is the regression net for stale finger tables / bucket caches:
// a cache that survives a membership change routes to dead or wrong
// nodes here.
TEST_P(RingIndexTest, RoutesMatchBruteForceUnderChurn) {
  auto net = MakeOverlay(GetParam());
  Rng rng(2026);
  std::vector<uint64_t> live;
  for (int i = 0; i < 64; ++i) {
    const uint64_t id = rng.Next();
    if (net->AddNode(id).ok()) live.push_back(id);
  }

  auto brute_responsible = [&](uint64_t key) {
    // Chord: successor on the ring. Kademlia: XOR-closest.
    uint64_t best = live[0];
    for (uint64_t id : live) {
      if (GetParam() == Geometry::kChord) {
        const uint64_t dist_best = best - key;  // (best - key) mod 2^64
        const uint64_t dist_id = id - key;
        if (dist_id < dist_best) best = id;
      } else {
        if ((id ^ key) < (best ^ key)) best = id;
      }
    }
    return best;
  };

  auto check_routes = [&](int probes) {
    for (int i = 0; i < probes; ++i) {
      const uint64_t key = rng.Next();
      const uint64_t from = live[rng.UniformU64(live.size())];
      auto result = net->Lookup(from, key);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->node, brute_responsible(key)) << "key=" << key;
      ASSERT_LE(result->hops, 64);
    }
  };

  check_routes(50);
  for (int round = 0; round < 40; ++round) {
    const int action = static_cast<int>(rng.UniformU64(3));
    if (action == 0 || live.size() < 8) {
      const uint64_t id = rng.Next();
      if (net->AddNode(id).ok()) live.push_back(id);
    } else {
      const size_t victim = rng.UniformU64(live.size());
      const uint64_t id = live[victim];
      live.erase(live.begin() + static_cast<long>(victim));
      if (action == 1) {
        ASSERT_TRUE(net->RemoveNode(id).ok());
      } else {
        ASSERT_TRUE(net->FailNode(id).ok());
      }
    }
    check_routes(25);  // every round revalidates cached routing state
    // The caches the routes just repopulated must match a brute-force
    // re-derivation (epoch-freshness of fingers / bucket contacts).
    const Status audit = net->AuditFull();
    ASSERT_TRUE(audit.ok()) << "round " << round << ": " << audit.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, RingIndexTest,
                         ::testing::Values(Geometry::kChord,
                                           Geometry::kKademlia),
                         [](const ::testing::TestParamInfo<Geometry>& param_info) {
                           return param_info.param == Geometry::kChord
                                      ? "Chord"
                                      : "Kademlia";
                         });

}  // namespace
}  // namespace dhs
