#include "hashing/hasher.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dhs {
namespace {

template <typename HasherT>
void ExpectUniformLowBits(const HasherT& hasher) {
  // Bucket 64k hashes by their 4 low bits; each bucket should get ~1/16.
  constexpr int kDraws = 65536;
  std::vector<int> counts(16, 0);
  for (uint64_t i = 0; i < kDraws; ++i) {
    counts[hasher.HashU64ToBits(i, 4)]++;
  }
  const double expected = kDraws / 16.0;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 6 * std::sqrt(expected));
  }
}

TEST(Md4HasherTest, Deterministic) {
  Md4Hasher hasher;
  EXPECT_EQ(hasher.Hash("x"), hasher.Hash("x"));
  EXPECT_NE(hasher.Hash("x"), hasher.Hash("y"));
}

TEST(Md4HasherTest, HashU64MatchesByteEncoding) {
  Md4Hasher hasher;
  const uint64_t value = 0x0123456789abcdefULL;
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  EXPECT_EQ(hasher.HashU64(value), hasher.Hash(std::string_view(bytes, 8)));
}

TEST(Md4HasherTest, LowBitsAreUniform) {
  ExpectUniformLowBits(Md4Hasher());
}

TEST(MixHasherTest, Deterministic) {
  MixHasher hasher;
  EXPECT_EQ(hasher.Hash("x"), hasher.Hash("x"));
  EXPECT_NE(hasher.Hash("x"), hasher.Hash("y"));
}

TEST(MixHasherTest, SaltDecorrelates) {
  MixHasher a(1);
  MixHasher b(2);
  int equal = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.HashU64(i) == b.HashU64(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(MixHasherTest, LowBitsAreUniform) {
  ExpectUniformLowBits(MixHasher());
}

TEST(MixHasherTest, StringAndU64PathsDiffer) {
  // They are different hash functions; just ensure both behave sanely.
  MixHasher hasher;
  EXPECT_NE(hasher.Hash("abc"), hasher.Hash("abd"));
  EXPECT_NE(hasher.HashU64(1), hasher.HashU64(2));
}

TEST(HashToBitsTest, MasksCorrectly) {
  MixHasher hasher;
  for (int bits : {1, 8, 24, 63}) {
    const uint64_t h = hasher.HashU64ToBits(12345, bits);
    EXPECT_LT(h, uint64_t{1} << bits) << bits;
  }
}

TEST(MakeHasherTest, FactoryNames) {
  EXPECT_NE(MakeHasher("md4"), nullptr);
  EXPECT_NE(MakeHasher("mix"), nullptr);
  EXPECT_EQ(MakeHasher("sha1"), nullptr);
  EXPECT_EQ(MakeHasher(""), nullptr);
}

TEST(MakeHasherTest, FactoryProducesWorkingHashers) {
  auto md4 = MakeHasher("md4");
  auto mix = MakeHasher("mix");
  EXPECT_EQ(md4->Hash("abc"), Md4Hasher().Hash("abc"));
  EXPECT_EQ(mix->Hash("abc"), MixHasher().Hash("abc"));
}

}  // namespace
}  // namespace dhs
