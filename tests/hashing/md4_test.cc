#include "hashing/md4.h"

#include <gtest/gtest.h>

#include <string>

namespace dhs {
namespace {

std::string HexOf(std::string_view data) {
  return Md4::ToHex(Md4::Hash(data));
}

// The seven official test vectors from RFC 1320 appendix A.5.
TEST(Md4Test, Rfc1320EmptyString) {
  EXPECT_EQ(HexOf(""), "31d6cfe0d16ae931b73c59d7e0c089c0");
}

TEST(Md4Test, Rfc1320SingleA) {
  EXPECT_EQ(HexOf("a"), "bde52cb31de33e46245e05fbdbd6fb24");
}

TEST(Md4Test, Rfc1320Abc) {
  EXPECT_EQ(HexOf("abc"), "a448017aaf21d8525fc10ae87aa6729d");
}

TEST(Md4Test, Rfc1320MessageDigest) {
  EXPECT_EQ(HexOf("message digest"), "d9130a8164549fe818874806e1c7014b");
}

TEST(Md4Test, Rfc1320Alphabet) {
  EXPECT_EQ(HexOf("abcdefghijklmnopqrstuvwxyz"),
            "d79e1c308aa5bbcdeea8ed63df412da9");
}

TEST(Md4Test, Rfc1320AlphaNumeric) {
  EXPECT_EQ(
      HexOf("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "043f8582f241db351ce627e153e7f0e4");
}

TEST(Md4Test, Rfc1320EightyDigits) {
  EXPECT_EQ(HexOf("12345678901234567890123456789012345678901234567890123456"
                  "789012345678901234567890"),
            "e33b4ddc9c38f2199c3e7b164fcc0536");
}

TEST(Md4Test, IncrementalMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "several 64-byte block boundaries in this test message.";
  Md4 incremental;
  // Feed in awkward chunk sizes to cross block boundaries.
  size_t offset = 0;
  const size_t chunks[] = {1, 3, 7, 13, 64, 100, 1000};
  size_t i = 0;
  while (offset < message.size()) {
    const size_t take =
        std::min(chunks[i++ % 7], message.size() - offset);
    incremental.Update(message.data() + offset, take);
    offset += take;
  }
  EXPECT_EQ(Md4::ToHex(incremental.Finalize()),
            Md4::ToHex(Md4::Hash(message)));
}

TEST(Md4Test, ExactBlockSizeMessages) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string message(len, 'x');
    Md4 a;
    a.Update(message);
    Md4 b;
    for (char c : message) b.Update(&c, 1);
    EXPECT_EQ(a.Finalize(), b.Finalize()) << "len=" << len;
  }
}

TEST(Md4Test, ResetAllowsReuse) {
  Md4 md4;
  md4.Update("first message");
  (void)md4.Finalize();
  md4.Reset();
  md4.Update("abc");
  EXPECT_EQ(Md4::ToHex(md4.Finalize()), "a448017aaf21d8525fc10ae87aa6729d");
}

TEST(Md4Test, DigestToU64IsLittleEndianPrefix) {
  Md4::Digest digest{};
  for (int i = 0; i < 16; ++i) digest[i] = static_cast<uint8_t>(i + 1);
  EXPECT_EQ(Md4::DigestToU64(digest), 0x0807060504030201ULL);
}

TEST(Md4Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md4::Hash("node-1"), Md4::Hash("node-2"));
}

}  // namespace
}  // namespace dhs
