#!/usr/bin/env python3
"""Self-tests for tools/analysis/dhs_analyze.py.

Fixture contract: every deliberate violation in
tests/analysis/fixtures/ carries an `// expect-finding: rule[, rule]`
comment ON THE OFFENDING LINE. The analyzer must report exactly that
set — same file, same line, same rule — and nothing else. Negative
fixtures (the disciplined twins of each positive) prove the checkers
don't fire on compliant code; tests/analysis/CMakeLists.txt compiles
both kinds, so the fixtures can never rot into non-C++.

Also covered here: the suppression-baseline round trip (write ->
clean run -> stale entries reported as findings, not silently kept)
and both inline waiver spellings.

Run directly (`python3 analyzer_test.py`) or via ctest
(analysis_selftest).
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TESTS_DIR))
ANALYZER = os.path.join(REPO_ROOT, "tools", "analysis", "dhs_analyze.py")
FIXTURES = os.path.join(TESTS_DIR, "fixtures")

EXPECT_RE = re.compile(r"//\s*expect-finding:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")
FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): (?P<rule>[a-z-]+): ")


def run_analyzer(root, *extra):
    """Returns (exit_code, findings, stdout) where findings is a set of
    (relative path, line, rule)."""
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--root", root, *extra],
        capture_output=True, text=True, check=False)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group("path"), int(m.group("line")),
                          m.group("rule")))
    return proc.returncode, findings, proc.stdout + proc.stderr


def expected_findings(root):
    expected = set()
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for num, line in enumerate(f, start=1):
                    m = EXPECT_RE.search(line)
                    if m:
                        for rule in re.split(r"\s*,\s*", m.group(1)):
                            expected.add((rel, num, rule))
    return expected


class FixtureFindingsTest(unittest.TestCase):
    """The analyzer over the fixture tree reports exactly the
    expect-finding annotations: every checker family has at least one
    positive that fires and the negatives stay silent."""

    @classmethod
    def setUpClass(cls):
        cls.exit_code, cls.findings, cls.output = run_analyzer(FIXTURES)
        cls.expected = expected_findings(FIXTURES)

    def test_annotations_are_exhaustive(self):
        missing = self.expected - self.findings
        self.assertFalse(
            missing,
            "expected findings not reported:\n  " +
            "\n  ".join(map(str, sorted(missing))) +
            "\nanalyzer output:\n" + self.output)

    def test_no_unexpected_findings(self):
        extra = self.findings - self.expected
        self.assertFalse(
            extra,
            "unexpected findings (false positives or annotate the "
            "fixture):\n  " + "\n  ".join(map(str, sorted(extra))))

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.exit_code, 1, self.output)

    def test_every_family_has_a_positive(self):
        rules = {rule for (_, _, rule) in self.expected}
        for family_rule in ("layer-dep", "layer-transitive",
                            "det-unordered-iter", "det-wallclock",
                            "det-rng", "det-float-accum",
                            "lock-unguarded-member", "lock-blocking-call",
                            "statusor-unchecked", "serial-raw-bytes"):
            self.assertIn(family_rule, rules,
                          f"fixture tree lost its {family_rule} positive")


class BaselineRoundTripTest(unittest.TestCase):
    """--write-baseline + --baseline suppress current findings exactly;
    entries whose finding disappears are reported as stale-baseline
    findings (exit 1), never silently dropped."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="dhs_analyze_test_")
        self.root = os.path.join(self.tmp, "fixtures")
        shutil.copytree(FIXTURES, self.root)
        self.baseline = os.path.join(self.tmp, "baseline.txt")

    def tearDown(self):
        shutil.rmtree(self.tmp, ignore_errors=True)

    def test_round_trip_then_stale(self):
        code, _, out = run_analyzer(
            self.root, "--baseline", self.baseline, "--write-baseline")
        self.assertEqual(code, 0, out)
        self.assertTrue(os.path.exists(self.baseline))

        code, findings, out = run_analyzer(
            self.root, "--baseline", self.baseline)
        self.assertEqual(code, 0, "baselined run must be clean:\n" + out)
        self.assertFalse(findings, out)

        # Baseline file is sorted and tab-separated (merge-friendly).
        with open(self.baseline, encoding="utf-8") as f:
            rows = [ln for ln in f if ln.strip() and not ln.startswith("#")]
        self.assertEqual(rows, sorted(rows))
        self.assertTrue(all(len(r.split("\t")) >= 3 for r in rows))

        # Fix one violation: its baseline entry must turn stale.
        victim = os.path.join(self.root, "src", "common", "layering_pos.h")
        os.remove(victim)
        code, findings, out = run_analyzer(
            self.root, "--baseline", self.baseline)
        self.assertEqual(code, 1, "stale baseline must fail the run:\n" + out)
        stale = {f for f in findings if f[2] == "stale-baseline"}
        self.assertTrue(stale, out)
        self.assertTrue(
            any(path == "src/common/layering_pos.h" for path, _, _ in stale),
            out)


class WaiverTest(unittest.TestCase):
    """Both waiver spellings (`dhs-analyze: allow(rule)` and the legacy
    `det-lint: allow(rule)`) suppress a finding on their own line and
    the line below, and a waiver for the wrong rule suppresses
    nothing."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="dhs_analyze_waiver_")
        os.makedirs(os.path.join(self.tmp, "src", "sketch"))

    def tearDown(self):
        shutil.rmtree(self.tmp, ignore_errors=True)

    def write(self, text):
        path = os.path.join(self.tmp, "src", "sketch", "w.cc")
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def test_both_spellings_and_line_below(self):
        self.write(
            "#include <chrono>\n"
            "void f() {\n"
            "  auto a = std::chrono::steady_clock::now();"
            "  // dhs-analyze: allow(det-wallclock)\n"
            "  auto b = std::chrono::steady_clock::now();"
            "  // det-lint: allow(det-wallclock)\n"
            "  // dhs-analyze: allow(det-wallclock)\n"
            "  auto c = std::chrono::steady_clock::now();\n"
            "  (void)a; (void)b; (void)c;\n"
            "}\n")
        code, findings, out = run_analyzer(self.tmp)
        self.assertEqual(code, 0, out)
        self.assertFalse(findings, out)

    def test_wrong_rule_does_not_waive(self):
        self.write(
            "#include <chrono>\n"
            "void f() {\n"
            "  auto a = std::chrono::steady_clock::now();"
            "  // dhs-analyze: allow(det-rng)\n"
            "  (void)a;\n"
            "}\n")
        code, findings, out = run_analyzer(self.tmp)
        self.assertEqual(code, 1, out)
        self.assertEqual({f[2] for f in findings}, {"det-wallclock"}, out)


class RepoCleanTest(unittest.TestCase):
    """The real tree stays clean: zero unwaived, unbaselined findings
    over src/, tools/, and bench/ (the same invariant CI enforces)."""

    def test_repo_is_clean(self):
        code, findings, out = run_analyzer(REPO_ROOT)
        self.assertEqual(code, 0, out)
        self.assertFalse(findings, out)


if __name__ == "__main__":
    unittest.main()
