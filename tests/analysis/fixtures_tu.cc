// Aggregator TU for the header fixtures in
// tests/analysis/fixtures/src/: compiling this file (plus the fixture
// .cc files listed in tests/CMakeLists.txt) keeps every fixture real
// C++ against the repo's actual headers, so the analyzer's self-test
// inputs can't silently rot. Never linked into anything that runs.

#include "common/layering_helper.h"
#include "common/layering_neg.h"
#include "common/layering_pos.h"
#include "common/lock_members_neg.h"
#include "common/lock_members_pos.h"
#include "dht/dep.h"
#include "dht/trans_pos.h"
#include "obs/bad_reach.h"
#include "sketch/leaf.h"
