// Fixture: POSITIVE for layer-dep — obs may only include common, so an
// obs -> sketch edge is a direct violation. It also makes this header
// the middle of the layer-transitive chain pinned by
// src/dht/trans_pos.h.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_OBS_BAD_REACH_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_OBS_BAD_REACH_H_

#include "sketch/leaf.h"  // expect-finding: layer-dep

namespace dhs_fixture {

inline int ObsUsingSketch() { return SketchLayerValue(); }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_OBS_BAD_REACH_H_
