// Fixture: NEGATIVES for the determinism family — the deterministic
// twins of determinism_pos.cc. Value-keyed hash iteration feeding a
// per-key accumulator is order-insensitive (one addition per key),
// explicitly seeded engines are replayable, and an inline waiver
// documents the one legitimately nondeterministic line.

#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <unordered_map>

namespace dhs_fixture {

inline double DeterminismNegatives(
    const std::unordered_map<uint64_t, double>& weights) {
  // Per-key accumulation: value[node] gets exactly one += per loop
  // iteration, so hash order cannot change any individual sum.
  std::unordered_map<uint64_t, double> scaled;
  for (const auto& entry : weights) {
    scaled[entry.first] += entry.second * 2.0;
  }

  // Sorted iteration is deterministic regardless of value types.
  std::map<uint64_t, double> ordered(weights.begin(), weights.end());
  double total = 0.0;
  for (const auto& entry : ordered) {
    total += entry.second;
  }

  std::mt19937 seeded(12345u);  // explicit seed: replayable
  (void)seeded;

  // Waiver syntax check: the line below would be det-wallclock.
  // dhs-analyze: allow(det-wallclock)
  auto waived = std::chrono::steady_clock::now();
  (void)waived;

  return total;
}

}  // namespace dhs_fixture
