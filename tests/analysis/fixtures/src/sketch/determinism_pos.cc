// Fixture: POSITIVES for the determinism family. Each marked line is a
// pattern that would silently break byte-identical replay in simulator
// code: pointer-keyed hash iteration (order = allocator addresses),
// wall-clock reads, unseeded RNG engines, and float accumulation in
// hash-iteration order. The pointer-keyed container hides behind a
// typedef on purpose: the checker must see through the alias.

#include <chrono>
#include <random>
#include <unordered_map>

namespace dhs_fixture {

struct Node {
  int weight = 0;
};

using NodeWeights = std::unordered_map<const Node*, double>;

inline double DeterminismPositives(const NodeWeights& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {  // expect-finding: det-unordered-iter
    total += entry.second;  // expect-finding: det-float-accum
  }

  auto now = std::chrono::steady_clock::now();  // expect-finding: det-wallclock
  (void)now;

  std::mt19937 engine;  // expect-finding: det-rng
  (void)engine;

  return total;
}

}  // namespace dhs_fixture
