// Fixture: NEGATIVE for serial-raw-bytes — the blessed codec path:
// endianness spelled out through the common/bit_util.h helpers, plus
// the byte-wise operations the rule deliberately leaves alone (single
// bytes and string copies carry no byte-order assumption).

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bit_util.h"

namespace dhs_fixture {

inline std::string EncodeExplicit(uint32_t value, uint16_t tag) {
  std::string out;
  dhs::AppendLE32(out, value);
  dhs::AppendBE16(out, tag);
  out.push_back(static_cast<char>(0x7f));  // single byte: no order
  return out;
}

inline uint32_t DecodeExplicit(const std::string& wire) {
  return dhs::LoadLE32(wire.data());
}

inline void CopyOpaque(char* dst, const char* src, size_t n) {
  std::memcpy(dst, src, n);  // dhs-analyze: allow(serial-raw-bytes)
}

}  // namespace dhs_fixture
