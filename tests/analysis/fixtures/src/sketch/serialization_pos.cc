// Fixture: POSITIVES for serial-raw-bytes — the two type-punning
// shapes banned in wire-format code (src/sketch/, src/dht/): memcpy of
// a multi-byte integer, and reinterpret_cast of a byte pointer to a
// multi-byte integer pointer. Both silently bake the host's byte order
// (and, for the cast, its alignment rules) into the wire format.

#include <cstdint>
#include <cstring>
#include <string>

namespace dhs_fixture {

inline std::string EncodeHostOrder(uint32_t value) {
  char buf[sizeof(value)];
  std::memcpy(buf, &value, sizeof(value));  // expect-finding: serial-raw-bytes
  return std::string(buf, sizeof(value));
}

inline uint32_t DecodeHostOrder(const std::string& wire) {
  const uint32_t* raw =
      reinterpret_cast<const uint32_t*>(wire.data());  // expect-finding: serial-raw-bytes
  return *raw;
}

}  // namespace dhs_fixture
