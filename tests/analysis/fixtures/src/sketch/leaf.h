// Fixture: an innocuous sketch-layer header, the far end of the
// transitive-layering chain.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_SKETCH_LEAF_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_SKETCH_LEAF_H_

namespace dhs_fixture {

inline int SketchLayerValue() { return 3; }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_SKETCH_LEAF_H_
