// Fixture: NEGATIVES for statusor-unchecked — the two blessed
// establishers (an ok() test that dominates the access, and CHECK_OK
// on the bound StatusOr), plus status()-only access, which never
// touches the value.

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/status.h"

namespace dhs_fixture {

inline dhs::StatusOr<uint64_t> ParseSize(const std::string& text) {
  if (text.empty()) return dhs::Status::InvalidArgument("empty");
  return static_cast<uint64_t>(text.size());
}

inline uint64_t GuardedByOkTest(const std::string& text) {
  dhs::StatusOr<uint64_t> size_or = ParseSize(text);
  if (!size_or.ok()) return 0;
  return size_or.value();
}

inline uint64_t GuardedByCheckOk(const std::string& text) {
  dhs::StatusOr<uint64_t> size_or = ParseSize(text);
  CHECK_OK(size_or);
  return size_or.value();
}

inline std::string StatusOnly(const std::string& text) {
  dhs::StatusOr<uint64_t> size_or = ParseSize(text);
  return size_or.status().ToString();
}

}  // namespace dhs_fixture
