// Fixture: POSITIVES for statusor-unchecked — .value() reached without
// an ok() / CHECK_OK establisher in the same function, in both shapes
// the checker knows: a bound StatusOr local, and a .value() chained
// straight onto a StatusOr-returning call's temporary.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dhs_fixture {

inline dhs::StatusOr<uint64_t> ParseCount(const std::string& text) {
  if (text.empty()) return dhs::Status::InvalidArgument("empty");
  return static_cast<uint64_t>(text.size());
}

inline uint64_t UseWithoutCheck(const std::string& text) {
  dhs::StatusOr<uint64_t> count_or = ParseCount(text);
  return count_or.value();  // expect-finding: statusor-unchecked
}

inline uint64_t ChainOnTemporary(const std::string& text) {
  return ParseCount(text).value();  // expect-finding: statusor-unchecked
}

}  // namespace dhs_fixture
