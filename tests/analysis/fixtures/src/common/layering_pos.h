// Fixture: POSITIVE for layer-dep — common is the bottom layer and
// must not include anything above itself.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_POS_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_POS_H_

#include "dht/dep.h"  // expect-finding: layer-dep

namespace dhs_fixture {

inline int CommonUsingDht() { return DhtLayerValue(); }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_POS_H_
