// Fixture: NEGATIVE for layer-dep — common including common is always
// allowed (same module), and system headers are never layering edges.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_NEG_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_NEG_H_

#include <cstdint>

#include "common/layering_helper.h"

namespace dhs_fixture {

inline uint32_t CommonUsingCommon() { return HelperValue(); }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_NEG_H_
