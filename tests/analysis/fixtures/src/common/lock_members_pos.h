// Fixture: POSITIVE for lock-unguarded-member — a class that owns a
// Mutex must say, per sibling field, whether that mutex guards it
// (GUARDED_BY), or why not (const/atomic/waiver). `hits_` says
// nothing, which is exactly the latent-race shape the checker exists
// to catch.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LOCK_MEMBERS_POS_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LOCK_MEMBERS_POS_H_

#include <cstdint>

#include "common/sync.h"

namespace dhs_fixture {

class UnguardedCounter {
 public:
  void Add(uint64_t n) {
    dhs::MutexLock lock(mu_);
    hits_ += n;
  }

 private:
  dhs::Mutex mu_{"fixture_unguarded"};
  uint64_t hits_ = 0;  // expect-finding: lock-unguarded-member
};

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LOCK_MEMBERS_POS_H_
