// Fixture: NEGATIVE for lock-unguarded-member — every sibling of the
// mutex is accounted for: GUARDED_BY annotation, const (immutable),
// atomic (its own synchronization), CondVar (used with the mutex), or
// an explicit waiver with the synchronization story.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LOCK_MEMBERS_NEG_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LOCK_MEMBERS_NEG_H_

#include <atomic>
#include <cstdint>

#include "common/sync.h"

namespace dhs_fixture {

class GuardedCounter {
 public:
  void Add(uint64_t n) {
    dhs::MutexLock lock(mu_);
    hits_ += n;
    cv_.SignalAll();
  }

 private:
  dhs::Mutex mu_{"fixture_guarded"};
  dhs::CondVar cv_;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  const int capacity_ = 64;
  std::atomic<uint64_t> fast_path_{0};
  // Set once before any thread can observe this object.
  // dhs-analyze: allow(lock-unguarded-member)
  uint64_t config_epoch_ = 0;
};

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LOCK_MEMBERS_NEG_H_
