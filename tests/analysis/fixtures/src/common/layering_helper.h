// Fixture: helper for the layering negatives (a plain common header).

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_HELPER_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_HELPER_H_

#include <cstdint>

namespace dhs_fixture {

inline uint32_t HelperValue() { return 7; }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_COMMON_LAYERING_HELPER_H_
