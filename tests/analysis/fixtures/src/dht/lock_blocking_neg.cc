// Fixture: NEGATIVE for lock-blocking-call — the disciplined shape:
// snapshot state under the lock, release it (scope ends), then submit
// to the pool and wait with no lock held. CondVar::Wait holding only
// the waited mutex is also fine: Wait releases that mutex while
// blocked.

#include "common/sync.h"
#include "common/thread_pool.h"

namespace dhs_fixture {

class PoliteFanout {
 public:
  void FanOutAfterUnlock() {
    int snapshot = 0;
    {
      dhs::MutexLock lock(mu_);
      snapshot = pending_;
    }
    if (snapshot > 0) {
      pool_.Submit([] {});
      pool_.Wait();
    }
  }

  void WaitReleasesTheWaitedMutex() {
    dhs::MutexLock lock(mu_);
    while (pending_ == 0) {
      cv_.Wait(mu_);  // releases mu_ while blocked: allowed
    }
    pending_--;
  }

 private:
  dhs::Mutex mu_{"fixture_polite"};
  dhs::CondVar cv_;
  int pending_ GUARDED_BY(mu_) = 0;
  dhs::ThreadPool pool_{1};
};

}  // namespace dhs_fixture
