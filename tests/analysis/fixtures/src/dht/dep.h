// Fixture: an innocuous dht-layer header for layering fixtures to
// include. (Part of the dhs_analyze self-test tree; see
// tests/analysis/analyzer_test.py.)

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_DHT_DEP_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_DHT_DEP_H_

namespace dhs_fixture {

inline int DhtLayerValue() { return 4; }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_DHT_DEP_H_
