// Fixture: POSITIVE for layer-transitive — every direct edge here is
// legal (dht -> obs), but the included obs header reaches sketch,
// which dht must not depend on, so the chain
// dht/trans_pos.h -> obs/bad_reach.h -> sketch/leaf.h is reported
// against this file.

#ifndef DHS_TESTS_ANALYSIS_FIXTURES_SRC_DHT_TRANS_POS_H_
#define DHS_TESTS_ANALYSIS_FIXTURES_SRC_DHT_TRANS_POS_H_

#include "obs/bad_reach.h"  // expect-finding: layer-transitive

namespace dhs_fixture {

inline int DhtReachingSketch() { return ObsUsingSketch(); }

}  // namespace dhs_fixture

#endif  // DHS_TESTS_ANALYSIS_FIXTURES_SRC_DHT_TRANS_POS_H_
