// Fixture: POSITIVES for lock-blocking-call — pool submission while a
// MutexLock is live on this thread (workers that need the same mutex
// deadlock; even when they don't, the lock is held for an unbounded
// pool round-trip), and a CondVar::Wait that releases only one of two
// held mutexes. The second case goes through a helper to exercise the
// transitive call-graph closure.

#include "common/sync.h"
#include "common/thread_pool.h"

namespace dhs_fixture {

class BlockyFanout {
 public:
  void FanOutUnderLock() {
    dhs::MutexLock lock(mu_);
    pending_++;
    pool_.Submit([] {});  // expect-finding: lock-blocking-call
  }

  void WaitHelper() {
    dhs::MutexLock inner_lock(inner_);
    cv_.Wait(inner_);  // blocks: makes WaitHelper() a blocking callee
  }

  void TransitiveBlockUnderLock() {
    dhs::MutexLock lock(mu_);
    pending_++;
    WaitHelper();  // expect-finding: lock-blocking-call
  }

 private:
  dhs::Mutex mu_{"fixture_blocky_outer"};
  dhs::Mutex inner_{"fixture_blocky_inner"};
  dhs::CondVar cv_;
  int pending_ GUARDED_BY(mu_) = 0;
  dhs::ThreadPool pool_{1};
};

}  // namespace dhs_fixture
