#include "dht/chord.h"
#include "baselines/convergecast.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace dhs {
namespace {

class ConvergecastTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChordConfig config;
    config.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(config);
    Rng rng(1);
    for (int i = 0; i < 128; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    // Hash every item ID so sketches see uniform values; shared-pool IDs
    // hash identically wherever they are replicated.
    Rng item_rng(2);
    uint64_t next_unique = 1;
    for (uint64_t node : net_->NodeIds()) {
      auto& items = local_items_[node];
      for (int i = 0; i < 50; ++i) {
        if (item_rng.Bernoulli(0.3)) {
          items.push_back(SplitMix64(item_rng.UniformU64(800)));
        } else {
          items.push_back(SplitMix64(0xabcd0000 + next_unique++));
        }
        distinct_.insert(items.back());
      }
      total_ += items.size();
    }
  }

  std::unique_ptr<ChordNetwork> net_;
  LocalItems local_items_;
  std::set<uint64_t> distinct_;
  uint64_t total_ = 0;
};

TEST_F(ConvergecastTest, BroadcastReachesEveryNodeExactlyOnce) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  auto result = agg.Count(net_->NodeIds()[5],
                          ConvergecastAggregator::Mode::kTallySum, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes_reached, net_->NumNodes());
  EXPECT_EQ(result->tree_edges, net_->NumNodes() - 1);
}

TEST_F(ConvergecastTest, TallySumIsExactTotal) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  auto result = agg.Count(net_->NodeIds()[0],
                          ConvergecastAggregator::Mode::kTallySum, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->estimate, static_cast<double>(total_));
}

TEST_F(ConvergecastTest, TallySumOvercountsDuplicates) {
  // Duplicate-sensitive: total_ strictly exceeds the distinct count.
  EXPECT_GT(total_, distinct_.size());
}

TEST_F(ConvergecastTest, SketchModesAreDuplicateInsensitive) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  for (auto mode : {ConvergecastAggregator::Mode::kSketchPcsa,
                    ConvergecastAggregator::Mode::kSketchSll}) {
    auto result = agg.Count(net_->NodeIds()[0], mode, 64, 24);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->estimate, static_cast<double>(distinct_.size()),
                0.45 * static_cast<double>(distinct_.size()));
  }
}

TEST_F(ConvergecastTest, TreeDepthIsLogarithmic) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  auto result = agg.Count(net_->NodeIds()[0],
                          ConvergecastAggregator::Mode::kTallySum, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tree_depth, 2 * 7 + 2);  // ~log2(128) with slack
  EXPECT_GE(result->tree_depth, 3);
}

TEST_F(ConvergecastTest, EveryQueryTouchesWholeNetwork) {
  // The §1 critique: per-query cost is Θ(N) messages even for one number.
  ConvergecastAggregator agg(net_.get(), local_items_);
  net_->ResetStats();
  auto result = agg.Count(net_->NodeIds()[0],
                          ConvergecastAggregator::Mode::kSketchPcsa, 64, 24);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(net_->stats().hops, 2 * (net_->NumNodes() - 1));
}

TEST_F(ConvergecastTest, SketchBandwidthDominates) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  net_->ResetStats();
  ASSERT_TRUE(agg.Count(net_->NodeIds()[0],
                        ConvergecastAggregator::Mode::kSketchPcsa, 64, 24)
                  .ok());
  const uint64_t sketch_bytes = net_->stats().bytes;
  net_->ResetStats();
  ASSERT_TRUE(agg.Count(net_->NodeIds()[0],
                        ConvergecastAggregator::Mode::kTallySum, 0, 0)
                  .ok());
  EXPECT_GT(sketch_bytes, net_->stats().bytes);
}

TEST_F(ConvergecastTest, RejectsBadOrigin) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  EXPECT_FALSE(
      agg.Count(0xdead, ConvergecastAggregator::Mode::kTallySum, 0, 0).ok());
}

TEST_F(ConvergecastTest, WorksFromEveryOrigin) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  for (size_t i = 0; i < net_->NumNodes(); i += 17) {
    auto result = agg.Count(net_->NodeIds()[i],
                            ConvergecastAggregator::Mode::kTallySum, 0, 0);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->estimate, static_cast<double>(total_));
  }
}

TEST_F(ConvergecastTest, TinyNetworks) {
  ChordConfig config;
  config.hasher = "mix";
  ChordNetwork tiny(config);
  ASSERT_TRUE(tiny.AddNode(42).ok());
  LocalItems items;
  items[42] = {1, 2, 3};
  ConvergecastAggregator agg(&tiny, items);
  auto result =
      agg.Count(42, ConvergecastAggregator::Mode::kTallySum, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->estimate, 3.0);
  EXPECT_EQ(result->tree_edges, 0u);
}

}  // namespace
}  // namespace dhs
