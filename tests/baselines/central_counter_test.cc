#include "dht/chord.h"
#include "baselines/central_counter.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dhs {
namespace {

class CentralCounterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChordConfig config;
    config.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(config);
    Rng rng(1);
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
  }
  std::unique_ptr<ChordNetwork> net_;
};

TEST_F(CentralCounterTest, TallyCountsEverything) {
  CentralCounter counter(net_.get(), 42, CentralCounter::Mode::kTally);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(counter.Add(net_->RandomNode(rng), i).ok());
  }
  auto value = counter.Read(net_->RandomNode(rng));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 100.0);
}

TEST_F(CentralCounterTest, TallyIsDuplicateSensitive) {
  CentralCounter counter(net_.get(), 42, CentralCounter::Mode::kTally);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(counter.Add(net_->RandomNode(rng), 7).ok());  // same item
  }
  EXPECT_EQ(*counter.Read(net_->RandomNode(rng)), 50.0);
}

TEST_F(CentralCounterTest, ExactSetIsDuplicateInsensitive) {
  CentralCounter counter(net_.get(), 42, CentralCounter::Mode::kExactSet);
  Rng rng(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(counter.Add(net_->RandomNode(rng), i).ok());
    }
  }
  EXPECT_EQ(*counter.Read(net_->RandomNode(rng)), 40.0);
}

TEST_F(CentralCounterTest, FreshCounterReadsZero) {
  CentralCounter counter(net_.get(), 99, CentralCounter::Mode::kTally);
  Rng rng(5);
  EXPECT_EQ(*counter.Read(net_->RandomNode(rng)), 0.0);
}

TEST_F(CentralCounterTest, DistinctMetricsDoNotInterfere) {
  CentralCounter a(net_.get(), 1, CentralCounter::Mode::kTally);
  CentralCounter b(net_.get(), 2, CentralCounter::Mode::kTally);
  Rng rng(6);
  ASSERT_TRUE(a.Add(net_->RandomNode(rng), 1).ok());
  EXPECT_EQ(*a.Read(net_->RandomNode(rng)), 1.0);
  EXPECT_EQ(*b.Read(net_->RandomNode(rng)), 0.0);
}

TEST_F(CentralCounterTest, AllLoadConcentratesOnOneNode) {
  // The pathology the paper calls out: every update hits the same node.
  CentralCounter counter(net_.get(), 42, CentralCounter::Mode::kTally);
  auto host = counter.CounterNode();
  ASSERT_TRUE(host.ok());
  net_->ResetLoads();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(counter.Add(net_->RandomNode(rng), i).ok());
  }
  uint64_t host_stores = 0;
  uint64_t other_stores = 0;
  for (const auto& [id, load] : net_->Loads()) {
    (id == host.value() ? host_stores : other_stores) += load.stores;
  }
  EXPECT_EQ(host_stores, 200u);
  EXPECT_EQ(other_stores, 0u);
}

TEST_F(CentralCounterTest, CounterLostWhenHostFails) {
  CentralCounter counter(net_.get(), 42, CentralCounter::Mode::kTally);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(counter.Add(net_->RandomNode(rng), i).ok());
  }
  auto host = counter.CounterNode();
  ASSERT_TRUE(host.ok());
  ASSERT_TRUE(net_->FailNode(host.value()).ok());
  // The availability pathology: the count is simply gone.
  EXPECT_EQ(*counter.Read(net_->RandomNode(rng)), 0.0);
}

}  // namespace
}  // namespace dhs
