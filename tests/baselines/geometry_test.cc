// The baseline counters only depend on the DhtNetwork abstraction, so
// they too must work over either geometry — parameterized smoke checks
// mirroring their Chord suites.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/central_counter.h"
#include "baselines/convergecast.h"
#include "baselines/gossip.h"
#include "baselines/sampling.h"
#include "common/stats.h"
#include "dht/chord.h"
#include "dht/kademlia.h"

namespace dhs {
namespace {

class BaselineGeometryTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    OverlayConfig config;
    config.hasher = "mix";
    if (GetParam()) {
      net_ = std::make_unique<KademliaNetwork>(config);
    } else {
      net_ = std::make_unique<ChordNetwork>(config);
    }
    Rng rng(1);
    for (int i = 0; i < 96; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    Rng item_rng(2);
    for (uint64_t node : net_->NodeIds()) {
      auto& items = local_items_[node];
      for (int i = 0; i < 30; ++i) {
        const uint64_t id = item_rng.Bernoulli(0.25)
                                ? SplitMix64(item_rng.UniformU64(300))
                                : SplitMix64(0xfeed + node * 64 +
                                             static_cast<uint64_t>(i));
        items.push_back(id);
        distinct_.insert(id);
      }
      total_ += items.size();
    }
  }

  std::unique_ptr<DhtNetwork> net_;
  LocalItems local_items_;
  std::set<uint64_t> distinct_;
  uint64_t total_ = 0;
};

TEST_P(BaselineGeometryTest, CentralCounterWorks) {
  CentralCounter counter(net_.get(), 42, CentralCounter::Mode::kExactSet);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(counter.Add(net_->RandomNode(rng), SplitMix64(i)).ok());
  }
  EXPECT_EQ(*counter.Read(net_->RandomNode(rng)), 100.0);
}

TEST_P(BaselineGeometryTest, ConvergecastReachesEveryone) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  auto result = agg.Count(net_->NodeIds()[7],
                          ConvergecastAggregator::Mode::kTallySum, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes_reached, net_->NumNodes());
  EXPECT_EQ(result->estimate, static_cast<double>(total_));
}

TEST_P(BaselineGeometryTest, ConvergecastSketchCountsDistinct) {
  ConvergecastAggregator agg(net_.get(), local_items_);
  auto result = agg.Count(net_->NodeIds()[0],
                          ConvergecastAggregator::Mode::kSketchPcsa, 64, 24);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, static_cast<double>(distinct_.size()),
              0.5 * static_cast<double>(distinct_.size()));
}

TEST_P(BaselineGeometryTest, PushSumConverges) {
  PushSumGossip gossip(net_.get(), local_items_);
  Rng rng(4);
  auto result = gossip.Run(net_->NodeIds()[0], 150, 1e-4, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, static_cast<double>(total_),
              0.05 * static_cast<double>(total_));
}

TEST_P(BaselineGeometryTest, SamplingExtrapolates) {
  if (GetParam()) {
    // The sampling estimator's Horvitz-Thompson weights use ring-arc
    // ownership, which is exact for Chord only; under XOR responsibility
    // a node's key cell is not its ring arc (see sampling.h). Skip.
    GTEST_SKIP() << "HT weights are ring-specific";
  }
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(5);
  StreamingStats estimates;
  for (int run = 0; run < 30; ++run) {
    auto result = estimator.EstimateTotal(net_->RandomNode(rng), 48, rng);
    ASSERT_TRUE(result.ok());
    estimates.Add(result->estimate);
  }
  EXPECT_NEAR(estimates.mean(), static_cast<double>(total_),
              0.25 * static_cast<double>(total_));
}

INSTANTIATE_TEST_SUITE_P(BothGeometries, BaselineGeometryTest,
                         ::testing::Values(false, true),
                         [](const auto& param_info) {
                           return param_info.param ? "Kademlia" : "Chord";
                         });

}  // namespace
}  // namespace dhs
