#include "dht/chord.h"
#include "baselines/sampling.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dhs {
namespace {

class SamplingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChordConfig config;
    config.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(config);
    Rng rng(1);
    for (int i = 0; i < 256; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    Rng item_rng(2);
    for (uint64_t node : net_->NodeIds()) {
      auto& items = local_items_[node];
      const int count = 20 + static_cast<int>(item_rng.UniformU64(40));
      for (int i = 0; i < count; ++i) items.push_back(item_rng.Next());
      total_ += items.size();
    }
  }

  std::unique_ptr<ChordNetwork> net_;
  LocalItems local_items_;
  uint64_t total_ = 0;
};

TEST_F(SamplingTest, EstimateIsUnbiasedOverManyRuns) {
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(3);
  StreamingStats estimates;
  for (int run = 0; run < 50; ++run) {
    auto result = estimator.EstimateTotal(net_->RandomNode(rng), 64, rng);
    ASSERT_TRUE(result.ok());
    estimates.Add(result->estimate);
  }
  EXPECT_NEAR(estimates.mean(), static_cast<double>(total_),
              0.15 * static_cast<double>(total_));
}

TEST_F(SamplingTest, SingleRunHasHighVariance) {
  // The accuracy critique (§1): individual sampling runs scatter widely.
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(4);
  StreamingStats estimates;
  for (int run = 0; run < 30; ++run) {
    auto result = estimator.EstimateTotal(net_->RandomNode(rng), 16, rng);
    ASSERT_TRUE(result.ok());
    estimates.Add(result->estimate);
  }
  // Relative scatter well above the ~3% a DHS count achieves at m = 512.
  EXPECT_GT(estimates.stddev() / estimates.mean(), 0.05);
}

TEST_F(SamplingTest, MoreSamplesReduceVariance) {
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(5);
  StreamingStats small;
  StreamingStats large;
  for (int run = 0; run < 25; ++run) {
    auto a = estimator.EstimateTotal(net_->RandomNode(rng), 8, rng);
    auto b = estimator.EstimateTotal(net_->RandomNode(rng), 128, rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    small.Add(a->estimate);
    large.Add(b->estimate);
  }
  EXPECT_LT(large.stddev(), small.stddev());
}

TEST_F(SamplingTest, CostScalesWithSampleSize) {
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(6);
  net_->ResetStats();
  ASSERT_TRUE(estimator.EstimateTotal(net_->RandomNode(rng), 32, rng).ok());
  const uint64_t hops_32 = net_->stats().hops;
  net_->ResetStats();
  ASSERT_TRUE(estimator.EstimateTotal(net_->RandomNode(rng), 64, rng).ok());
  EXPECT_GT(net_->stats().hops, hops_32);
  EXPECT_LT(net_->stats().hops, 4 * hops_32);
}

TEST_F(SamplingTest, ReportsSampleCountAndSpread) {
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(7);
  auto result = estimator.EstimateTotal(net_->RandomNode(rng), 10, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes_sampled, 10);
  EXPECT_GT(result->sample_stddev, 0.0);
}

TEST_F(SamplingTest, RejectsBadArguments) {
  SamplingEstimator estimator(net_.get(), local_items_);
  Rng rng(8);
  EXPECT_FALSE(estimator.EstimateTotal(0xdead, 8, rng).ok());
  EXPECT_FALSE(
      estimator.EstimateTotal(net_->RandomNode(rng), 0, rng).ok());
}

TEST_F(SamplingTest, EmptyNodesEstimateZero) {
  LocalItems empty;
  SamplingEstimator estimator(net_.get(), empty);
  Rng rng(9);
  auto result = estimator.EstimateTotal(net_->RandomNode(rng), 16, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->estimate, 0.0);
}

}  // namespace
}  // namespace dhs
