#include "dht/chord.h"
#include "baselines/gossip.h"

#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"

namespace dhs {
namespace {

class GossipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChordConfig config;
    config.hasher = "mix";
    net_ = std::make_unique<ChordNetwork>(config);
    Rng rng(1);
    for (int i = 0; i < 128; ++i) ASSERT_TRUE(net_->AddNode(rng.Next()).ok());
    // 40 items on each node, ~25% of them shared duplicates. Item IDs
    // are hashed (SplitMix64) so sketches see uniform values; shared-pool
    // IDs hash identically on every node that holds them.
    Rng item_rng(2);
    uint64_t next_unique = 1000;
    for (uint64_t node : net_->NodeIds()) {
      auto& items = local_items_[node];
      for (int i = 0; i < 40; ++i) {
        if (item_rng.Bernoulli(0.25)) {
          items.push_back(SplitMix64(item_rng.UniformU64(500)));
        } else {
          items.push_back(SplitMix64(next_unique++));
        }
      }
      total_items_ += items.size();
    }
  }

  std::unique_ptr<ChordNetwork> net_;
  LocalItems local_items_;
  uint64_t total_items_ = 0;
};

TEST_F(GossipTest, PushSumConvergesToTotal) {
  PushSumGossip gossip(net_.get(), local_items_);
  Rng rng(3);
  auto result = gossip.Run(net_->NodeIds()[0], 200, 1e-4, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, static_cast<double>(total_items_),
              0.02 * static_cast<double>(total_items_));
}

TEST_F(GossipTest, PushSumIsDuplicateSensitive) {
  // Push-sum sums local counts; it cannot deduplicate shared items, so
  // its "distinct count" overshoots the true distinct cardinality.
  std::set<uint64_t> distinct;
  for (const auto& [node, items] : local_items_) {
    distinct.insert(items.begin(), items.end());
  }
  PushSumGossip gossip(net_.get(), local_items_);
  Rng rng(4);
  auto result = gossip.Run(net_->NodeIds()[0], 200, 1e-4, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->estimate, 1.1 * static_cast<double>(distinct.size()));
}

TEST_F(GossipTest, PushSumCostScalesWithRounds) {
  PushSumGossip gossip(net_.get(), local_items_);
  Rng rng(5);
  net_->ResetStats();
  auto result = gossip.Run(net_->NodeIds()[0], 200, 1e-4, rng);
  ASSERT_TRUE(result.ok());
  // One message per node per round (self-picks are free), so the hop
  // count is huge compared with a single DHS count (~100 hops).
  const uint64_t messages =
      static_cast<uint64_t>(result->rounds) * net_->NumNodes();
  EXPECT_LE(net_->stats().hops, messages);
  EXPECT_GE(net_->stats().hops, messages * 9 / 10);
  EXPECT_GT(net_->stats().hops, 1000u);
}

TEST_F(GossipTest, PushSumRejectsBadOrigin) {
  PushSumGossip gossip(net_.get(), local_items_);
  Rng rng(6);
  EXPECT_FALSE(gossip.Run(0xdeadbeef, 10, 1e-4, rng).ok());
}

TEST_F(GossipTest, SketchGossipConvergesToDistinctCount) {
  std::set<uint64_t> distinct;
  for (const auto& [node, items] : local_items_) {
    distinct.insert(items.begin(), items.end());
  }
  SketchGossip gossip(net_.get(), local_items_, 64, 24);
  Rng rng(7);
  // log2(128) ~ 7 rounds spreads every sketch with high probability;
  // use a few more.
  auto result = gossip.Run(net_->NodeIds()[0], 12, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, static_cast<double>(distinct.size()),
              0.5 * static_cast<double>(distinct.size()));
  EXPECT_GT(result->converged_fraction, 0.9);
}

TEST_F(GossipTest, SketchGossipFewRoundsNotConverged) {
  SketchGossip gossip(net_.get(), local_items_, 64, 24);
  Rng rng(8);
  auto result = gossip.Run(net_->NodeIds()[0], 1, rng);
  ASSERT_TRUE(result.ok());
  // After one round almost no node holds the global union — the
  // "eventual consistency" weakness (§1).
  EXPECT_LT(result->converged_fraction, 0.5);
}

TEST_F(GossipTest, SketchGossipBandwidthIsSketchSized) {
  SketchGossip gossip(net_.get(), local_items_, 64, 24);
  Rng rng(9);
  net_->ResetStats();
  auto result = gossip.Run(net_->NodeIds()[0], 5, rng);
  ASSERT_TRUE(result.ok());
  // >= hops * sketch bytes (~200B each); vastly above a DHS count.
  EXPECT_GT(net_->stats().bytes, 50000u);
}

}  // namespace
}  // namespace dhs
