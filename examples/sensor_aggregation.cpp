// Duplicate-insensitive sensor aggregation — the paper's sensor-network
// motivation (§1): many sensors observe (and report) the SAME events, so
// a naive sum over-counts; hash sketches count each distinct event once.
// This example also exercises the soft-state machinery (§3.3): events
// expire unless refreshed, so the count tracks a sliding window, and
// abrupt sensor-gateway failures (§3.5) only degrade the estimate
// gracefully.
//
//   $ ./examples/sensor_aggregation

#include "dht/chord.h"
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "dhs/client.h"
#include "hashing/hasher.h"

int main() {
  // 128 gateway nodes forming the overlay; thousands of sensors report
  // through them.
  dhs::ChordNetwork network;
  for (int i = 0; i < 128; ++i) {
    (void)network.AddNodeFromName("gateway-" + std::to_string(i));
  }
  dhs::DhsConfig config;
  config.m = 128;
  config.ttl_ticks = 3;       // an observation lives for 3 epochs
  config.replication = 2;     // §3.5: tolerate gateway failures
  auto client_or = dhs::DhsClient::Create(&network, config);
  if (!client_or.ok()) return 1;
  dhs::DhsClient client = std::move(client_or.value());

  const uint64_t kEventsMetric = 0xeee1;
  dhs::MixHasher event_hasher(0x5e50);
  dhs::Rng rng(3);
  const auto gateways = network.NodeIds();

  std::printf("epoch  active-events  estimate  error%%   note\n");
  std::set<uint64_t> window_truth;
  for (int epoch = 0; epoch < 8; ++epoch) {
    // Traffic profile: a burst in epochs 2-3, quiet epochs 6-7.
    const int events_this_epoch = (epoch == 2 || epoch == 3) ? 30000
                                  : (epoch >= 6)             ? 2000
                                                             : 10000;
    // Each event is observed by ~4 sensors attached to different
    // gateways — duplicates by construction.
    std::vector<std::vector<uint64_t>> per_gateway(gateways.size());
    for (int e = 0; e < events_this_epoch; ++e) {
      const uint64_t event_id =
          event_hasher.Hash("event-" + std::to_string(epoch) + "-" +
                            std::to_string(e));
      window_truth.insert(event_id);
      const int observers = 1 + static_cast<int>(rng.UniformU64(6));
      for (int o = 0; o < observers; ++o) {
        per_gateway[rng.UniformU64(gateways.size())].push_back(event_id);
      }
    }
    for (size_t g = 0; g < gateways.size(); ++g) {
      if (!per_gateway[g].empty()) {
        (void)client.InsertBatch(gateways[g], kEventsMetric,
                                 per_gateway[g], rng);
      }
    }

    // One epoch passes and soft state ages. An observation inserted in
    // epoch p expires at tick p + 3, so after this tick the live window
    // covers epochs p >= epoch - 1 (two epochs).
    network.AdvanceClock(1);
    if (epoch == 4) {
      // 12 random gateways die abruptly, taking their DHS state along.
      // (Failing a *contiguous* ring run would also defeat the
      // successor-replication — see tests/integration for that case.)
      auto ids = network.NodeIds();
      int failed = 0;
      while (failed < 12) {
        const uint64_t victim = ids[rng.UniformU64(ids.size())];
        if (network.FailNode(victim).ok()) ++failed;
      }
    }

    // Ground truth for the live (2-epoch) sliding window.
    window_truth.clear();
    for (int past = std::max(0, epoch - 1); past <= epoch; ++past) {
      const int count = (past == 2 || past == 3) ? 30000
                        : (past >= 6)            ? 2000
                                                 : 10000;
      for (int e = 0; e < count; ++e) {
        window_truth.insert(event_hasher.Hash(
            "event-" + std::to_string(past) + "-" + std::to_string(e)));
      }
    }

    auto result = client.Count(network.RandomNode(rng), kEventsMetric, rng);
    if (!result.ok()) return 1;
    const double truth = static_cast<double>(window_truth.size());
    std::printf("%5d  %13zu  %8.0f  %6.1f   %s\n", epoch,
                window_truth.size(), result->estimate,
                100 * (result->estimate - truth) / truth,
                epoch == 2   ? "burst begins"
                : epoch == 4 ? "12 gateways failed"
                : epoch == 6 ? "quiet period"
                             : "");
  }
  std::printf("\nthe estimate tracks the sliding window through bursts, "
              "failures and decay — each count costing O(k log N) hops, "
              "duplicate-free by construction\n");
  return 0;
}
