// Distributed search-engine keyword significance — the paper's
// information-retrieval motivation (§1): a P2P search engine needs the
// significance of each keyword, i.e.
//
//     idf-like score = |distinct docs with keyword| / |distinct docs|
//
// with both counts duplicate-insensitive (documents are replicated on
// many peers). Each keyword is one DHS metric; thanks to §4.2
// multi-dimension counting, scoring ALL keywords costs the hop count of
// a single cardinality estimate.
//
//   $ ./examples/search_engine

#include "dht/chord.h"
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dhs/client.h"
#include "hashing/hasher.h"

namespace {

// A toy corpus model: keyword k appears in a document with probability
// falling off by keyword rank (frequent words in many docs, rare words
// in few).
const char* kKeywords[] = {"music", "video", "linux", "chord",
                           "sketch", "flajolet"};
constexpr int kNumKeywords = 6;

double KeywordProbability(int rank) { return 0.6 / std::pow(2.2, rank); }

}  // namespace

int main() {
  dhs::ChordNetwork network;  // defaults: md4-hashed node IDs
  for (int i = 0; i < 512; ++i) {
    (void)network.AddNodeFromName("peer-" + std::to_string(i));
  }

  dhs::DhsConfig config;
  config.m = 256;
  auto client_or = dhs::DhsClient::Create(&network, config);
  if (!client_or.ok()) return 1;
  dhs::DhsClient client = std::move(client_or.value());

  // Metric 0 counts all documents; metric 1 + r counts documents with
  // keyword rank r. Every peer derives the same IDs from keyword text.
  dhs::MixHasher metric_namer(0x5ea7c4);
  const uint64_t kAllDocsMetric = metric_namer.Hash("__all_documents__");
  std::vector<uint64_t> keyword_metrics;
  for (int r = 0; r < kNumKeywords; ++r) {
    keyword_metrics.push_back(metric_namer.Hash(kKeywords[r]));
  }

  // Peers index documents; popular documents are replicated on up to 20
  // peers (duplicates the counts must NOT double-count).
  dhs::Md4Hasher doc_hasher;
  dhs::Rng rng(7);
  std::set<uint64_t> all_docs;
  std::map<int, std::set<uint64_t>> docs_with_keyword;
  const auto peers = network.NodeIds();
  constexpr int kDistinctDocs = 30000;
  for (int doc = 0; doc < kDistinctDocs; ++doc) {
    const std::string name = "doc-" + std::to_string(doc);
    const uint64_t doc_hash = doc_hasher.Hash(name);
    all_docs.insert(doc_hash);
    // Which keywords does this document contain? (deterministic per doc)
    dhs::Rng doc_rng(doc_hash);
    std::vector<int> ranks;
    for (int r = 0; r < kNumKeywords; ++r) {
      if (doc_rng.Bernoulli(KeywordProbability(r))) {
        ranks.push_back(r);
        docs_with_keyword[r].insert(doc_hash);
      }
    }
    // Replicate the document on 1..20 random peers; each replica host
    // records it in the DHS (that is the realistic, uncoordinated case).
    const int replicas = 1 + static_cast<int>(rng.UniformU64(20));
    for (int c = 0; c < replicas; ++c) {
      const uint64_t peer = peers[rng.UniformU64(peers.size())];
      (void)client.Insert(peer, kAllDocsMetric, doc_hash, rng);
      for (int r : ranks) {
        (void)client.Insert(peer, keyword_metrics[r], doc_hash, rng);
      }
    }
  }

  // One peer scores every keyword with a single multi-metric sweep.
  network.ResetStats();
  std::vector<uint64_t> metrics = keyword_metrics;
  metrics.push_back(kAllDocsMetric);
  auto result = client.CountMany(network.RandomNode(rng), metrics, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "count failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double total_estimate = result->estimates.back();
  std::printf("distinct documents: estimated %.0f, true %zu\n\n",
              total_estimate, all_docs.size());
  std::printf("%-10s %14s %14s %14s %14s\n", "keyword", "est docs",
              "true docs", "est signif", "true signif");
  for (int r = 0; r < kNumKeywords; ++r) {
    const double est = result->estimates[static_cast<size_t>(r)];
    const double truth =
        static_cast<double>(docs_with_keyword[r].size());
    std::printf("%-10s %14.0f %14.0f %14.4f %14.4f\n", kKeywords[r], est,
                truth, est / total_estimate,
                truth / static_cast<double>(all_docs.size()));
  }
  std::printf("\nscored %d keywords + the corpus size in ONE sweep: %d "
              "hops, %.1f kB (cost is independent of the number of "
              "keywords, paper §4.2)\n",
              kNumKeywords, result->cost.hops,
              static_cast<double>(result->cost.bytes) / 1024.0);
  return 0;
}
