// DHS-based histograms driving a join-order optimizer — the paper's
// database motivation (§4.3/§5.2): an internet-scale query engine (a la
// PIER) stores relations across the overlay; a node that wants to run a
// multi-way join reconstructs equi-width histograms from the DHS at
// ~kilobyte cost and picks the join order that minimizes data transfer.
//
//   $ ./examples/histogram_optimizer

#include "dht/chord.h"
#include <cstdio>
#include <string>
#include <vector>

#include "dhs/client.h"
#include "hashing/hasher.h"
#include "histogram/dhs_histogram.h"
#include "queryopt/optimizer.h"
#include "relation/relation.h"

int main() {
  dhs::ChordNetwork network;
  for (int i = 0; i < 256; ++i) {
    (void)network.AddNodeFromName("db-node-" + std::to_string(i));
  }
  dhs::DhsConfig config;
  config.m = 64;
  auto client_or = dhs::DhsClient::Create(&network, config);
  if (!client_or.ok()) return 1;
  dhs::DhsClient client = std::move(client_or.value());

  // Three relations sharing join attribute `a` over [1, 100000]:
  // orders (small), customers (medium), events (large, skewed).
  struct Table {
    const char* name;
    uint64_t tuples;
    double theta;
  };
  const Table tables[] = {
      {"orders", 20000, 0.0},
      {"customers", 80000, 0.3},
      {"events", 300000, 0.8},
  };
  const dhs::HistogramSpec hspec(1, 100000, 50);
  dhs::Rng rng(11);

  dhs::JoinQuery query;
  uint64_t reconstruction_bytes = 0;
  for (size_t i = 0; i < 3; ++i) {
    dhs::RelationSpec spec;
    spec.name = tables[i].name;
    spec.num_tuples = tables[i].tuples;
    spec.domain_size = 100000;
    spec.zipf_theta = tables[i].theta;
    spec.tuple_bytes = 1024;
    const dhs::Relation relation =
        dhs::RelationGenerator::Generate(spec, 30 + i);

    // Each node records its local tuples under the histogram's bucket
    // metrics (one-time cost, amortized over every future query).
    dhs::DhsHistogram histogram(&client, hspec, 0x41aa + i);
    dhs::MixHasher hasher(i);
    const auto assignment =
        dhs::AssignTuplesToNodes(relation, network.NodeIds(), rng);
    for (const auto& [node, tuples] : assignment) {
      std::vector<std::pair<uint64_t, int64_t>> items;
      for (uint64_t t : tuples) {
        items.emplace_back(hasher.HashU64(relation.TupleId(t)),
                           relation.Value(t));
      }
      (void)histogram.InsertBatch(node, items, rng);
    }

    // The querying node reconstructs the histogram over the DHS.
    network.ResetStats();
    auto reconstruction =
        histogram.Reconstruct(network.RandomNode(rng), rng);
    if (!reconstruction.ok()) return 1;
    reconstruction_bytes += network.stats().bytes;
    std::printf("%-10s: |R| = %llu tuples, histogram reconstructed for "
                "%.1f kB in %d hops\n",
                tables[i].name,
                static_cast<unsigned long long>(relation.NumTuples()),
                static_cast<double>(network.stats().bytes) / 1024.0,
                reconstruction->cost.hops);

    query.inputs.push_back(dhs::JoinInput{
        tables[i].name,
        dhs::AttributeStats{hspec, reconstruction->buckets}, 1024});
  }

  // Enumerate left-deep join orders against the reconstructed stats.
  dhs::JoinOptimizer optimizer(&query);
  auto best = optimizer.Best();
  auto worst = optimizer.Worst();
  if (!best.ok() || !worst.ok()) return 1;
  std::printf("\noptimizer verdict (PIER-style transfer cost):\n");
  std::printf("  best plan : %-34s  ~%.1f MB shipped\n",
              best->OrderString(query).c_str(),
              best->transfer_bytes / 1e6);
  std::printf("  worst plan: %-34s  ~%.1f MB shipped\n",
              worst->OrderString(query).c_str(),
              worst->transfer_bytes / 1e6);
  std::printf("  statistics cost: %.2f MB for all three histograms — "
              "%.0fx cheaper than the savings (%.1f MB)\n",
              static_cast<double>(reconstruction_bytes) / 1e6,
              (worst->transfer_bytes - best->transfer_bytes) /
                  static_cast<double>(reconstruction_bytes),
              (worst->transfer_bytes - best->transfer_bytes) / 1e6);

  // Bonus: the histograms also answer range-selectivity questions.
  const auto& events = query.inputs[2].stats;
  std::printf("\nselectivity(events.a <= 10000) ~ %.1f%% (Zipf head)\n",
              100 * dhs::EstimateRangeSelectivity(events, 1, 10000));
  std::printf("selectivity(events.a >  90000) ~ %.1f%% (Zipf tail)\n",
              100 * dhs::EstimateRangeSelectivity(events, 90001, 100000));
  return 0;
}
