// Estimating the size of the network itself — the paper's most basic
// motivating metric ("the cardinality of the node population", §3.2):
// every node simply inserts ITS OWN ID into a well-known DHS metric, and
// anyone can then estimate N without any census, broadcast or gossip.
// Soft-state TTLs make the estimate track departures automatically.
//
//   $ ./examples/network_size

#include "dht/chord.h"

#include <cstdio>
#include <string>

#include "dhs/client.h"
#include "dhs/maintainer.h"
#include "hashing/hasher.h"

int main() {
  dhs::ChordNetwork network;
  dhs::Rng rng(1);

  dhs::DhsConfig config;
  config.ttl_ticks = 2;  // membership info goes stale after 2 epochs
  // Counting a set as small as the overlay itself (n ~ N) is the
  // paper's hardest regime: with the default parameters most probe
  // targets store nothing (eq. 5). The paper's own remedies (§4.1):
  // fewer bitmaps, explicit replication of DHS bits, and a larger retry
  // limit per eq. 6 — plus the HyperLogLog estimator, whose linear-
  // counting correction stays accurate where PCSA/sLL saturate.
  config.m = 32;
  config.replication = 8;
  config.lim = 30;
  config.estimator = dhs::DhsEstimator::kHyperLogLog;
  // A node's own ID is already a uniform hash — the DHS can consume it
  // directly (the paper's "DHTs already feature a pseudo-uniform hash").

  // Bootstrap: 400 nodes join and register themselves.
  for (int i = 0; i < 400; ++i) {
    (void)network.AddNodeFromName("peer-" + std::to_string(i));
  }
  auto client_or = dhs::DhsClient::Create(&network, config);
  if (!client_or.ok()) return 1;
  dhs::DhsClient client = std::move(client_or.value());
  dhs::DhsMaintainer maintainer(&client);

  const uint64_t kPopulationMetric = 0x90b;
  for (uint64_t node : network.NodeIds()) {
    maintainer.RegisterItem(node, kPopulationMetric, node);
  }

  std::printf("epoch  true N  estimate  error%%  event\n");
  int next_name = 400;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const char* event = "";
    if (epoch == 3) {
      // Flash crowd: 300 nodes join.
      for (int i = 0; i < 300; ++i) {
        auto id = network.AddNodeFromName("peer-" +
                                          std::to_string(next_name++));
        if (id.ok()) {
          maintainer.RegisterItem(id.value(), kPopulationMetric,
                                  id.value());
        }
      }
      event = "flash crowd: +300 nodes";
    }
    if (epoch == 7) {
      // Mass departure: 350 random nodes leave without notice.
      auto ids = network.NodeIds();
      dhs::Rng pick(epoch);
      int gone = 0;
      while (gone < 350 && network.NumNodes() > 50) {
        const uint64_t victim = ids[pick.UniformU64(ids.size())];
        if (network.FailNode(victim).ok()) {
          maintainer.DropNode(victim);
          ++gone;
        }
      }
      event = "mass failure: -350 nodes";
    }

    // Each epoch every live node refreshes its registration, then time
    // advances one tick (stale entries from departed nodes expire).
    (void)maintainer.RefreshRound(rng);
    network.AdvanceClock(1);

    auto estimate = client.Count(network.RandomNode(rng),
                                 kPopulationMetric, rng);
    if (!estimate.ok()) return 1;
    const double truth = static_cast<double>(network.NumNodes());
    std::printf("%5d  %6zu  %8.0f  %5.1f   %s\n", epoch,
                network.NumNodes(), estimate->estimate,
                100 * (estimate->estimate - truth) / truth, event);
  }
  std::printf("\nN tracked through a flash crowd and a mass failure with "
              "zero coordination: each node refreshes one 8-byte tuple "
              "per epoch.\n");
  return 0;
}
