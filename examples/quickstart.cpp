// Quickstart: build a small Chord overlay, spread items across nodes,
// and estimate how many *distinct* items the network holds — without
// any node ever seeing more than a handful of 8-byte DHS tuples.
//
//   $ ./examples/quickstart
//
// Walks through the three core API calls: ChordNetwork (the overlay),
// DhsClient::InsertBatch (recording items), DhsClient::Count (the
// distributed estimate), and prints the exact cost of each step.

#include "dht/chord.h"
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "dhs/client.h"
#include "hashing/hasher.h"

int main() {
  // 1. An overlay of 256 nodes. Node IDs are hashes of a name — in a
  //    real deployment, of the node's address (the paper uses MD4).
  dhs::ChordConfig chord_config;
  chord_config.hasher = "md4";
  dhs::ChordNetwork network(chord_config);
  for (int i = 0; i < 256; ++i) {
    auto id = network.AddNodeFromName("node-" + std::to_string(i));
    if (!id.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("overlay up: %zu nodes\n", network.NumNodes());

  // 2. A DHS with near-default paper parameters (k = 24-bit bitmaps,
  //    super-LogLog estimation).
  dhs::DhsConfig config;
  config.m = 256;  // plenty for a demo: stderr ~ 1.05/sqrt(256) ~ 6.6%
  auto client_or = dhs::DhsClient::Create(&network, config);
  if (!client_or.ok()) {
    std::fprintf(stderr, "config rejected: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  dhs::DhsClient client = std::move(client_or.value());

  // 3. Every node records its local items. Items are identified by a
  //    pseudo-uniform 64-bit hash (here: MD4 of a document name); note
  //    the deliberate duplicates — many nodes share popular documents.
  const uint64_t kMetric = 1;  // "distinct documents in the network"
  dhs::Md4Hasher hasher;
  dhs::Rng rng(42);
  std::set<std::string> distinct_titles;
  const auto node_ids = network.NodeIds();
  for (size_t i = 0; i < node_ids.size(); ++i) {
    std::vector<uint64_t> local_hashes;
    for (int d = 0; d < 200; ++d) {
      // 30% of a node's library is from the popular shared pool.
      std::string title =
          rng.Bernoulli(0.3)
              ? "bestseller-" + std::to_string(rng.UniformU64(5000))
              : "node" + std::to_string(i) + "-doc" + std::to_string(d);
      distinct_titles.insert(title);
      local_hashes.push_back(hasher.Hash(title));
    }
    auto inserted =
        client.InsertBatch(node_ids[i], kMetric, local_hashes, rng);
    if (!inserted.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   inserted.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("inserted %zu document copies (%zu distinct titles)\n",
              node_ids.size() * 200, distinct_titles.size());
  std::printf("insertion totals: %llu hops, %.1f kB over the wire\n",
              static_cast<unsigned long long>(network.stats().hops),
              static_cast<double>(network.stats().bytes) / 1024.0);

  // 4. Any node can now count — here an arbitrary one.
  network.ResetStats();
  auto result = client.Count(network.RandomNode(rng), kMetric, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "count failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double truth = static_cast<double>(distinct_titles.size());
  std::printf("\nDHS estimate:   %.0f distinct documents\n",
              result->estimate);
  std::printf("exact answer:   %.0f\n", truth);
  std::printf("relative error: %.1f%%\n",
              100.0 * (result->estimate - truth) / truth);
  std::printf("query cost:     %d nodes probed, %d hops, %.1f kB\n",
              result->cost.nodes_visited, result->cost.hops,
              static_cast<double>(result->cost.bytes) / 1024.0);
  std::printf("(a broadcast would have touched all %zu nodes)\n",
              network.NumNodes());
  return 0;
}
