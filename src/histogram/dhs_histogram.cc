#include "histogram/dhs_histogram.h"

#include <map>

#include "dhs/metrics.h"

namespace dhs {

DhsHistogram::DhsHistogram(DhsClient* client, HistogramSpec spec,
                           uint64_t histogram_id)
    : client_(client), spec_(std::move(spec)), histogram_id_(histogram_id) {}

uint64_t DhsHistogram::MetricForBucket(int i) const {
  return SubMetric(histogram_id_, static_cast<uint64_t>(i));
}

Status DhsHistogram::InsertBatch(
    uint64_t origin_node,
    const std::vector<std::pair<uint64_t, int64_t>>& items, Rng& rng) {
  std::map<int, std::vector<uint64_t>> by_bucket;
  for (const auto& [hash, value] : items) {
    by_bucket[spec_.BucketOf(value)].push_back(hash);
  }
  for (const auto& [bucket, hashes] : by_bucket) {
    auto inserted = client_->InsertBatch(origin_node,
                                         MetricForBucket(bucket), hashes,
                                         rng);
    if (!inserted.ok()) return inserted.status();
  }
  return Status::OK();
}

StatusOr<DhsHistogram::Reconstruction> DhsHistogram::Reconstruct(
    uint64_t origin_node, Rng& rng) {
  return ReconstructRange(origin_node, spec_.min_value(), spec_.max_value(),
                          rng);
}

StatusOr<DhsHistogram::Reconstruction> DhsHistogram::ReconstructRange(
    uint64_t origin_node, int64_t lo, int64_t hi, Rng& rng) {
  std::vector<uint64_t> metrics;
  std::vector<int> requested;
  for (int i = 0; i < spec_.num_buckets(); ++i) {
    const auto [b_lo, b_hi] = spec_.BucketBounds(i);
    if (b_hi < lo || b_lo > hi) continue;
    requested.push_back(i);
    metrics.push_back(MetricForBucket(i));
  }
  Reconstruction result;
  result.buckets.assign(static_cast<size_t>(spec_.num_buckets()), 0.0);
  if (metrics.empty()) return result;

  auto counts = client_->CountMany(origin_node, metrics, rng);
  if (!counts.ok()) return counts.status();
  for (size_t j = 0; j < requested.size(); ++j) {
    result.buckets[static_cast<size_t>(requested[j])] =
        counts->estimates[j];
  }
  result.cost = counts->cost;
  return result;
}

}  // namespace dhs
