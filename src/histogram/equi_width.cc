#include "histogram/equi_width.h"

#include <algorithm>

#include "common/check.h"

namespace dhs {

HistogramSpec::HistogramSpec(int64_t min_value, int64_t max_value,
                             int num_buckets)
    : min_value_(min_value),
      max_value_(max_value),
      num_buckets_(num_buckets) {
  CHECK_GE(max_value, min_value);
  CHECK_GE(num_buckets, 1);
  const int64_t span = max_value - min_value + 1;
  width_ = std::max<int64_t>(1, span / num_buckets);
}

int HistogramSpec::BucketOf(int64_t value) const {
  if (value < min_value_) return 0;
  if (value > max_value_) return num_buckets_ - 1;
  const int64_t index = (value - min_value_) / width_;
  return static_cast<int>(
      std::min<int64_t>(index, num_buckets_ - 1));
}

std::pair<int64_t, int64_t> HistogramSpec::BucketBounds(int i) const {
  DCHECK(i >= 0 && i < num_buckets_) << "bucket " << i;
  const int64_t lo = min_value_ + static_cast<int64_t>(i) * width_;
  const int64_t hi =
      i == num_buckets_ - 1 ? max_value_ : lo + width_ - 1;
  return {lo, hi};
}

std::vector<uint64_t> BuildExactHistogram(const Relation& relation,
                                          const HistogramSpec& spec) {
  std::vector<uint64_t> buckets(spec.num_buckets(), 0);
  const auto& counts = relation.ValueCounts();
  for (size_t offset = 0; offset < counts.size(); ++offset) {
    const int64_t value =
        relation.spec().min_value + static_cast<int64_t>(offset);
    buckets[spec.BucketOf(value)] += counts[offset];
  }
  return buckets;
}

double EstimateRangeFromHistogram(const std::vector<double>& buckets,
                                  const HistogramSpec& spec, int64_t lo,
                                  int64_t hi) {
  if (hi < lo) return 0.0;
  lo = std::max(lo, spec.min_value());
  hi = std::min(hi, spec.max_value());
  if (hi < lo) return 0.0;
  double total = 0.0;
  for (int i = 0; i < spec.num_buckets(); ++i) {
    const auto [b_lo, b_hi] = spec.BucketBounds(i);
    const int64_t overlap_lo = std::max(lo, b_lo);
    const int64_t overlap_hi = std::min(hi, b_hi);
    if (overlap_hi < overlap_lo) continue;
    const double fraction =
        static_cast<double>(overlap_hi - overlap_lo + 1) /
        static_cast<double>(b_hi - b_lo + 1);
    total += buckets[static_cast<size_t>(i)] * fraction;
  }
  return total;
}

}  // namespace dhs
