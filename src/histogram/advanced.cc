#include "histogram/advanced.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dhs {

namespace {

Status ValidateArgs(const std::vector<double>& frequencies,
                    int num_buckets) {
  if (frequencies.empty()) {
    return Status::InvalidArgument("empty frequency vector");
  }
  if (num_buckets < 1 ||
      static_cast<size_t>(num_buckets) > frequencies.size()) {
    return Status::InvalidArgument("bucket count out of range");
  }
  return Status::OK();
}

std::vector<VarBucket> BucketsFromBoundaries(
    const std::vector<double>& frequencies,
    const std::vector<int>& right_open_boundaries) {
  // boundaries are sorted indices i meaning "a bucket ends at i - 1".
  std::vector<VarBucket> buckets;
  int lo = 0;
  auto flush = [&](int hi) {
    VarBucket bucket;
    bucket.lo_index = lo;
    bucket.hi_index = hi;
    bucket.total = std::accumulate(frequencies.begin() + lo,
                                   frequencies.begin() + hi + 1, 0.0);
    buckets.push_back(bucket);
    lo = hi + 1;
  };
  for (int boundary : right_open_boundaries) flush(boundary - 1);
  flush(static_cast<int>(frequencies.size()) - 1);
  return buckets;
}

}  // namespace

StatusOr<std::vector<VarBucket>> BuildMaxDiffHistogram(
    const std::vector<double>& frequencies, int num_buckets) {
  Status s = ValidateArgs(frequencies, num_buckets);
  if (!s.ok()) return s;

  // Rank adjacent differences |f[i] - f[i-1]| and cut at the largest
  // num_buckets - 1 of them.
  std::vector<std::pair<double, int>> diffs;
  diffs.reserve(frequencies.size() - 1);
  for (size_t i = 1; i < frequencies.size(); ++i) {
    diffs.emplace_back(std::fabs(frequencies[i] - frequencies[i - 1]),
                       static_cast<int>(i));
  }
  std::sort(diffs.begin(), diffs.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  std::vector<int> boundaries;
  for (int c = 0; c < num_buckets - 1 && c < static_cast<int>(diffs.size());
       ++c) {
    boundaries.push_back(diffs[static_cast<size_t>(c)].second);
  }
  std::sort(boundaries.begin(), boundaries.end());
  return BucketsFromBoundaries(frequencies, boundaries);
}

StatusOr<std::vector<VarBucket>> BuildVOptimalHistogram(
    const std::vector<double>& frequencies, int num_buckets) {
  Status s = ValidateArgs(frequencies, num_buckets);
  if (!s.ok()) return s;
  const int v = static_cast<int>(frequencies.size());
  const int b = num_buckets;

  // Prefix sums for O(1) segment SSE: sse(i, j) = sum(sq) - sum^2/len.
  std::vector<double> prefix(v + 1, 0.0);
  std::vector<double> prefix_sq(v + 1, 0.0);
  for (int i = 0; i < v; ++i) {
    prefix[i + 1] = prefix[i] + frequencies[i];
    prefix_sq[i + 1] = prefix_sq[i] + frequencies[i] * frequencies[i];
  }
  auto segment_sse = [&](int i, int j) {  // inclusive [i, j]
    const double sum = prefix[j + 1] - prefix[i];
    const double sum_sq = prefix_sq[j + 1] - prefix_sq[i];
    const double len = static_cast<double>(j - i + 1);
    return sum_sq - sum * sum / len;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[k][j]: min SSE covering the first j values with k buckets.
  std::vector<std::vector<double>> dp(
      static_cast<size_t>(b + 1), std::vector<double>(v + 1, kInf));
  std::vector<std::vector<int>> cut(
      static_cast<size_t>(b + 1), std::vector<int>(v + 1, 0));
  dp[0][0] = 0.0;
  for (int k = 1; k <= b; ++k) {
    for (int j = k; j <= v; ++j) {
      for (int i = k - 1; i < j; ++i) {
        if (dp[k - 1][i] == kInf) continue;
        const double candidate = dp[k - 1][i] + segment_sse(i, j - 1);
        if (candidate < dp[k][j]) {
          dp[k][j] = candidate;
          cut[k][j] = i;
        }
      }
    }
  }

  std::vector<int> boundaries;
  int j = v;
  for (int k = b; k > 1; --k) {
    j = cut[k][j];
    boundaries.push_back(j);
  }
  std::sort(boundaries.begin(), boundaries.end());
  return BucketsFromBoundaries(frequencies, boundaries);
}

double CompressedHistogram::TotalCount() const {
  double total = 0.0;
  for (const auto& [index, count] : singletons) total += count;
  for (const VarBucket& bucket : grouped) total += bucket.total;
  return total;
}

StatusOr<CompressedHistogram> BuildCompressedHistogram(
    const std::vector<double>& frequencies, int num_buckets) {
  Status s = ValidateArgs(frequencies, num_buckets);
  if (!s.ok()) return s;
  const int v = static_cast<int>(frequencies.size());
  double total = 0.0;
  for (double f : frequencies) total += f;

  CompressedHistogram result;
  // Singleton rule: a cell above the equi-share total/B gets its own
  // exact bucket. At most B-1 cells can exceed that threshold, but keep
  // one grouped bucket in reserve regardless.
  const double threshold = total / num_buckets;
  std::vector<bool> is_singleton(frequencies.size(), false);
  for (int i = 0; i < v; ++i) {
    if (frequencies[static_cast<size_t>(i)] > threshold &&
        static_cast<int>(result.singletons.size()) < num_buckets - 1) {
      result.singletons.emplace_back(i, frequencies[static_cast<size_t>(i)]);
      is_singleton[static_cast<size_t>(i)] = true;
    }
  }

  // Equi-sum partition of the remaining mass.
  const int grouped_budget =
      num_buckets - static_cast<int>(result.singletons.size());
  double rest_total = total;
  for (const auto& [index, count] : result.singletons) rest_total -= count;

  int closed = 0;
  double cumulative = 0.0;
  VarBucket current;
  current.lo_index = 0;
  for (int i = 0; i < v; ++i) {
    if (!is_singleton[static_cast<size_t>(i)]) {
      current.total += frequencies[static_cast<size_t>(i)];
      cumulative += frequencies[static_cast<size_t>(i)];
    }
    const bool last_cell = i == v - 1;
    const bool quota_met =
        grouped_budget > 0 &&
        cumulative >=
            (closed + 1) * rest_total / static_cast<double>(grouped_budget);
    if (last_cell || (quota_met && closed < grouped_budget - 1)) {
      current.hi_index = i;
      result.grouped.push_back(current);
      ++closed;
      current = VarBucket();
      current.lo_index = i + 1;
    }
  }
  return result;
}

double EstimateRangeFromCompressed(const CompressedHistogram& histogram,
                                   int lo_index, int hi_index) {
  if (hi_index < lo_index) return 0.0;
  double estimate = 0.0;
  for (const auto& [index, count] : histogram.singletons) {
    if (index >= lo_index && index <= hi_index) estimate += count;
  }
  // Grouped buckets spread uniformly over their NON-singleton cells.
  auto singletons_in = [&histogram](int lo, int hi) {
    int count = 0;
    for (const auto& [index, freq] : histogram.singletons) {
      if (index >= lo && index <= hi) ++count;
    }
    return count;
  };
  for (const VarBucket& bucket : histogram.grouped) {
    const int overlap_lo = std::max(lo_index, bucket.lo_index);
    const int overlap_hi = std::min(hi_index, bucket.hi_index);
    if (overlap_hi < overlap_lo) continue;
    const int bucket_cells =
        bucket.Width() - singletons_in(bucket.lo_index, bucket.hi_index);
    if (bucket_cells <= 0) continue;
    const int overlap_cells = overlap_hi - overlap_lo + 1 -
                              singletons_in(overlap_lo, overlap_hi);
    estimate += bucket.total * overlap_cells / bucket_cells;
  }
  return estimate;
}

double SseOfPartition(const std::vector<double>& frequencies,
                      const std::vector<VarBucket>& buckets) {
  double sse = 0.0;
  for (const VarBucket& bucket : buckets) {
    const double mean = bucket.total / bucket.Width();
    for (int i = bucket.lo_index; i <= bucket.hi_index; ++i) {
      const double d = frequencies[static_cast<size_t>(i)] - mean;
      sse += d * d;
    }
  }
  return sse;
}

double EstimateRangeFromVarBuckets(const std::vector<VarBucket>& buckets,
                                   int lo_index, int hi_index) {
  if (hi_index < lo_index) return 0.0;
  double total = 0.0;
  for (const VarBucket& bucket : buckets) {
    const int overlap_lo = std::max(lo_index, bucket.lo_index);
    const int overlap_hi = std::min(hi_index, bucket.hi_index);
    if (overlap_hi < overlap_lo) continue;
    total += bucket.total * (overlap_hi - overlap_lo + 1) / bucket.Width();
  }
  return total;
}

StatusOr<AdvancedHistogramResult> BuildAdvancedFromDhs(
    DhsHistogram& base_histogram, AdvancedHistogramKind kind,
    int num_buckets, uint64_t origin_node, Rng& rng) {
  auto reconstruction = base_histogram.Reconstruct(origin_node, rng);
  if (!reconstruction.ok()) return reconstruction.status();

  AdvancedHistogramResult result;
  result.base_cells = reconstruction->buckets;
  result.cost = reconstruction->cost;
  auto buckets =
      kind == AdvancedHistogramKind::kMaxDiff
          ? BuildMaxDiffHistogram(result.base_cells, num_buckets)
          : BuildVOptimalHistogram(result.base_cells, num_buckets);
  if (!buckets.ok()) return buckets.status();
  result.buckets = std::move(buckets.value());
  return result;
}

}  // namespace dhs
