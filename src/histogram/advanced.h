// Advanced histogram types — the paper's footnote 5 names compressed,
// v-optimal and maxdiff histograms as work in progress on top of DHS.
// This module implements the two classic bucketization algorithms
// (Poosala/Ioannidis SIGMOD '96 family) over per-value frequency
// vectors, plus the two-phase DHS realization: reconstruct a
// fine-grained equi-width histogram from the DHS (bucket boundaries must
// be fixed network-wide, §4.3), then re-bucketize the estimates locally
// into a v-optimal or maxdiff histogram. The expensive distributed step
// stays bucket-count-independent; the re-bucketization is free and
// local.

#ifndef DHS_HISTOGRAM_ADVANCED_H_
#define DHS_HISTOGRAM_ADVANCED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "histogram/dhs_histogram.h"

namespace dhs {

/// One variable-width bucket over value indices [lo_index, hi_index]
/// (inclusive, 0-based positions in the underlying frequency vector).
struct VarBucket {
  int lo_index = 0;
  int hi_index = 0;
  double total = 0.0;

  int Width() const { return hi_index - lo_index + 1; }
};

/// MaxDiff(V, F): places the num_buckets - 1 boundaries at the largest
/// adjacent frequency differences. O(V log V). Requires
/// 1 <= num_buckets <= frequencies.size().
[[nodiscard]] StatusOr<std::vector<VarBucket>> BuildMaxDiffHistogram(
    const std::vector<double>& frequencies, int num_buckets);

/// V-optimal: minimizes the total within-bucket frequency variance
/// (sum of squared errors against the bucket mean) by dynamic
/// programming. O(V^2 * B) time, O(V * B) space — intended for the
/// re-bucketization of a few hundred base cells, not raw domains.
[[nodiscard]] StatusOr<std::vector<VarBucket>> BuildVOptimalHistogram(
    const std::vector<double>& frequencies, int num_buckets);

/// Sum of squared within-bucket deviations — the objective v-optimal
/// minimizes; exposed for tests and quality comparisons.
double SseOfPartition(const std::vector<double>& frequencies,
                      const std::vector<VarBucket>& buckets);

/// Compressed(V, F) histogram (Poosala et al.): values whose frequency
/// exceeds the equi-share threshold total/B get exact singleton buckets;
/// the remaining values are grouped into equi-sum buckets. Total bucket
/// budget (singletons + grouped) is `num_buckets`.
struct CompressedHistogram {
  /// Exact cells: (value index, frequency).
  std::vector<std::pair<int, double>> singletons;
  /// Equi-sum buckets over the remaining (non-singleton) cells. Bucket
  /// index ranges may *span* singleton positions; singleton cells
  /// contribute nothing to them.
  std::vector<VarBucket> grouped;

  double TotalCount() const;
};

[[nodiscard]] StatusOr<CompressedHistogram> BuildCompressedHistogram(
    const std::vector<double>& frequencies, int num_buckets);

/// Range estimate from a compressed histogram: singletons are exact, the
/// grouped remainder interpolates uniformly over its non-singleton
/// cells.
double EstimateRangeFromCompressed(const CompressedHistogram& histogram,
                                   int lo_index, int hi_index);

/// Range-cardinality estimate |{t : lo_idx <= index(t) <= hi_idx}| from a
/// variable-width histogram, uniform within buckets.
double EstimateRangeFromVarBuckets(const std::vector<VarBucket>& buckets,
                                   int lo_index, int hi_index);

/// Two-phase distributed construction: reconstructs `base_cells`
/// equi-width cells from a DhsHistogram-compatible layout, then
/// re-bucketizes into `num_buckets` buckets with the chosen algorithm.
enum class AdvancedHistogramKind { kMaxDiff, kVOptimal };

struct AdvancedHistogramResult {
  std::vector<VarBucket> buckets;   // indices refer to base cells
  std::vector<double> base_cells;   // the reconstructed fine grid
  DhsCostReport cost;               // the (shared) DHS sweep cost
};

[[nodiscard]] StatusOr<AdvancedHistogramResult> BuildAdvancedFromDhs(
    DhsHistogram& base_histogram, AdvancedHistogramKind kind,
    int num_buckets, uint64_t origin_node, Rng& rng);

}  // namespace dhs

#endif  // DHS_HISTOGRAM_ADVANCED_H_
