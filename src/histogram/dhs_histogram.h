// Histograms over DHS (§4.3): one DHS metric per histogram bucket. Nodes
// record each locally stored tuple under its bucket's metric; any node can
// then reconstruct the full histogram with a single multi-dimension DHS
// count, whose hop cost is independent of the number of buckets (§4.2).

#ifndef DHS_HISTOGRAM_DHS_HISTOGRAM_H_
#define DHS_HISTOGRAM_DHS_HISTOGRAM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dhs/client.h"
#include "histogram/equi_width.h"

namespace dhs {

/// A distributed equi-width histogram bound to a DhsClient.
///
/// The histogram is identified by `histogram_id` (e.g. a hash of
/// "relation.attribute"); bucket i's DHS metric is derived from it
/// deterministically, so every node agrees on the metric IDs without
/// coordination — the paper's requirement that bucket boundaries be
/// "constant and known in advance".
class DhsHistogram {
 public:
  /// The client must outlive the histogram.
  DhsHistogram(DhsClient* client, HistogramSpec spec, uint64_t histogram_id);

  const HistogramSpec& spec() const { return spec_; }

  /// DHS metric for bucket i.
  uint64_t MetricForBucket(int i) const;

  /// Records a batch of locally stored tuples from `origin_node`. Each
  /// item is (tuple_hash, attribute_value); tuples are grouped by bucket
  /// and bulk-inserted (§3.2).
  [[nodiscard]] Status InsertBatch(
      uint64_t origin_node,
      const std::vector<std::pair<uint64_t, int64_t>>& items, Rng& rng);

  /// A reconstructed histogram: per-bucket cardinality estimates plus the
  /// (bucket-count-independent) sweep cost.
  struct Reconstruction {
    std::vector<double> buckets;
    DhsCostReport cost;
  };

  /// Reconstructs all buckets from `origin_node` with one multi-metric
  /// DHS count.
  [[nodiscard]] StatusOr<Reconstruction> Reconstruct(uint64_t origin_node, Rng& rng);

  /// Reconstructs only the buckets overlapping [lo, hi] (the paper's
  /// note: query processing may need only the buckets a predicate
  /// touches). Non-requested buckets are returned as 0.
  [[nodiscard]] StatusOr<Reconstruction> ReconstructRange(uint64_t origin_node, int64_t lo,
                                            int64_t hi, Rng& rng);

 private:
  DhsClient* client_;
  HistogramSpec spec_;
  uint64_t histogram_id_;
};

}  // namespace dhs

#endif  // DHS_HISTOGRAM_DHS_HISTOGRAM_H_
