// Equi-width histogram vocabulary (§4.3): bucket geometry over an integer
// attribute domain, plus the exact (centralized) histogram used as ground
// truth in the evaluation.

#ifndef DHS_HISTOGRAM_EQUI_WIDTH_H_
#define DHS_HISTOGRAM_EQUI_WIDTH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace dhs {

/// Geometry of an I-bucket equi-width histogram over [min_value,
/// max_value]: bucket B_i covers [min + i*S, min + (i+1)*S) with
/// S = (max - min + 1) / I (the paper's partitioning).
class HistogramSpec {
 public:
  /// Bucket count must divide cleanly enough: the last bucket absorbs any
  /// remainder so the whole domain is always covered.
  HistogramSpec(int64_t min_value, int64_t max_value, int num_buckets);

  int num_buckets() const { return num_buckets_; }
  int64_t min_value() const { return min_value_; }
  int64_t max_value() const { return max_value_; }
  int64_t bucket_width() const { return width_; }

  /// Index of the bucket containing `value`; values outside the domain
  /// clamp to the first/last bucket.
  int BucketOf(int64_t value) const;

  /// Inclusive-lo / inclusive-hi value bounds of bucket i.
  std::pair<int64_t, int64_t> BucketBounds(int i) const;

 private:
  int64_t min_value_;
  int64_t max_value_;
  int num_buckets_;
  int64_t width_;
};

/// Exact equi-width histogram (tuple counts per bucket) computed
/// centrally from a relation — the evaluation's ground truth.
std::vector<uint64_t> BuildExactHistogram(const Relation& relation,
                                          const HistogramSpec& spec);

/// Estimates |{t : lo <= t.a <= hi}| from per-bucket counts, assuming a
/// uniform value distribution within each bucket (standard equi-width
/// interpolation).
double EstimateRangeFromHistogram(const std::vector<double>& buckets,
                                  const HistogramSpec& spec, int64_t lo,
                                  int64_t hi);

}  // namespace dhs

#endif  // DHS_HISTOGRAM_EQUI_WIDTH_H_
