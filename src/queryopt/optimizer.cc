#include "queryopt/optimizer.h"

#include <algorithm>
#include <numeric>
#include "common/check.h"

namespace dhs {

std::string JoinPlan::OrderString(const JoinQuery& query) const {
  std::string out;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += " ⋈ ";
    out += query.inputs[static_cast<size_t>(order[i])].name;
  }
  return out;
}

JoinOptimizer::JoinOptimizer(const JoinQuery* query) : query_(query) {
  CHECK(query != nullptr);
  CHECK(query->SpecsAligned()) << "query relations have misaligned specs";
}

StatusOr<JoinPlan> JoinOptimizer::Evaluate(
    const std::vector<int>& order) const {
  const size_t n = query_->NumRelations();
  if (order.size() != n) {
    return Status::InvalidArgument("order size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (int idx : order) {
    if (idx < 0 || static_cast<size_t>(idx) >= n || seen[idx]) {
      return Status::InvalidArgument("order is not a permutation");
    }
    seen[idx] = true;
  }
  if (n == 0) return JoinPlan{};

  JoinPlan plan;
  plan.order = order;

  // Fold the left-deep pipeline: at each step ship both inputs, then
  // compose the per-bucket histograms into the intermediate result.
  const JoinInput& first = query_->inputs[static_cast<size_t>(order[0])];
  AttributeStats current = first.stats;
  double current_tuple_bytes = static_cast<double>(first.tuple_bytes);

  for (size_t step = 1; step < n; ++step) {
    const JoinInput& right = query_->inputs[static_cast<size_t>(order[step])];
    const double left_bytes =
        current.TotalCardinality() * current_tuple_bytes;
    plan.transfer_bytes += left_bytes + right.TotalBytes();
    current = ComposeJoin(current, right.stats);
    current_tuple_bytes += static_cast<double>(right.tuple_bytes);
  }
  plan.result_tuples = current.TotalCardinality();
  return plan;
}

template <typename Select>
StatusOr<JoinPlan> JoinOptimizer::Extremal(Select&& better) const {
  const size_t n = query_->NumRelations();
  if (n == 0) return Status::FailedPrecondition("empty query");
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  bool have_best = false;
  JoinPlan best;
  do {
    auto plan = Evaluate(order);
    if (!plan.ok()) return plan.status();
    if (!have_best || better(*plan, best)) {
      best = *plan;
      have_best = true;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

StatusOr<JoinPlan> JoinOptimizer::Best() const {
  return Extremal([](const JoinPlan& a, const JoinPlan& b) {
    return a.transfer_bytes < b.transfer_bytes;
  });
}

StatusOr<JoinPlan> JoinOptimizer::Worst() const {
  return Extremal([](const JoinPlan& a, const JoinPlan& b) {
    return a.transfer_bytes > b.transfer_bytes;
  });
}

StatusOr<BushyPlan> JoinOptimizer::BestBushy() const {
  const size_t n = query_->NumRelations();
  if (n == 0) return Status::FailedPrecondition("empty query");
  if (n > 14) {
    return Status::InvalidArgument("bushy DP supports at most 14 relations");
  }
  const uint32_t full = (1u << n) - 1;

  struct Entry {
    bool valid = false;
    double cost = 0.0;         // shipped bytes to materialize this subset
    double tuples = 0.0;       // estimated cardinality of the subset join
    double tuple_bytes = 0.0;  // width of its tuples
    std::vector<double> buckets;
    std::string expression;
  };
  std::vector<Entry> table(full + 1);

  for (size_t i = 0; i < n; ++i) {
    Entry& entry = table[1u << i];
    const JoinInput& input = query_->inputs[i];
    entry.valid = true;
    entry.cost = 0.0;  // base relations are shipped by the join step
    entry.tuples = input.Cardinality();
    entry.tuple_bytes = static_cast<double>(input.tuple_bytes);
    entry.buckets = input.stats.buckets;
    entry.expression = input.name;
  }

  const HistogramSpec& spec = query_->inputs.front().stats.spec;
  for (uint32_t subset = 1; subset <= full; ++subset) {
    if ((subset & (subset - 1)) == 0) continue;  // singletons done
    Entry& entry = table[subset];
    // Enumerate proper splits; visit each unordered pair once by
    // requiring the split to contain the subset's lowest set bit.
    const uint32_t low_bit = subset & (~subset + 1);
    for (uint32_t left = (subset - 1) & subset; left > 0;
         left = (left - 1) & subset) {
      if ((left & low_bit) == 0) continue;
      const uint32_t right = subset ^ left;
      const Entry& a = table[left];
      const Entry& b = table[right];
      if (!a.valid || !b.valid) continue;
      const double ship =
          a.tuples * a.tuple_bytes + b.tuples * b.tuple_bytes;
      const double cost = a.cost + b.cost + ship;
      if (!entry.valid || cost < entry.cost) {
        entry.valid = true;
        entry.cost = cost;
        entry.tuple_bytes = a.tuple_bytes + b.tuple_bytes;
        const AttributeStats joined = ComposeJoin(
            AttributeStats{spec, a.buckets}, AttributeStats{spec, b.buckets});
        entry.buckets = joined.buckets;
        entry.tuples = joined.TotalCardinality();
        entry.expression = "(" + a.expression + " ⋈ " + b.expression + ")";
      }
    }
  }

  const Entry& root = table[full];
  if (!root.valid) return Status::Internal("bushy DP failed");
  BushyPlan plan;
  plan.expression = n == 1 ? root.expression : root.expression;
  plan.result_tuples = root.tuples;
  plan.transfer_bytes = root.cost;
  return plan;
}

StatusOr<double> JoinOptimizer::AverageTransfer() const {
  const size_t n = query_->NumRelations();
  if (n == 0) return Status::FailedPrecondition("empty query");
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  double total = 0.0;
  size_t count = 0;
  do {
    auto plan = Evaluate(order);
    if (!plan.ok()) return plan.status();
    total += plan->transfer_bytes;
    ++count;
  } while (std::next_permutation(order.begin(), order.end()));
  return total / static_cast<double>(count);
}

}  // namespace dhs
