#include "queryopt/selectivity.h"

#include <algorithm>
#include "common/check.h"

namespace dhs {

double AttributeStats::TotalCardinality() const {
  double total = 0.0;
  for (double b : buckets) total += b;
  return total;
}

double EstimateRangeSelectivity(const AttributeStats& stats, int64_t lo,
                                int64_t hi) {
  const double total = stats.TotalCardinality();
  if (total <= 0.0) return 0.0;
  const double in_range =
      EstimateRangeFromHistogram(stats.buckets, stats.spec, lo, hi);
  return std::clamp(in_range / total, 0.0, 1.0);
}

namespace {

bool SpecsMatch(const HistogramSpec& a, const HistogramSpec& b) {
  return a.min_value() == b.min_value() && a.max_value() == b.max_value() &&
         a.num_buckets() == b.num_buckets();
}

double BucketDistinctValues(const HistogramSpec& spec, int i) {
  const auto [lo, hi] = spec.BucketBounds(i);
  return static_cast<double>(hi - lo + 1);
}

}  // namespace

double EstimateEquiJoinSize(const AttributeStats& a,
                            const AttributeStats& b) {
  CHECK(SpecsMatch(a.spec, b.spec)) << "joining misaligned histograms";
  double total = 0.0;
  for (int i = 0; i < a.spec.num_buckets(); ++i) {
    total += a.buckets[static_cast<size_t>(i)] *
             b.buckets[static_cast<size_t>(i)] /
             BucketDistinctValues(a.spec, i);
  }
  return total;
}

AttributeStats ComposeJoin(const AttributeStats& a,
                           const AttributeStats& b) {
  CHECK(SpecsMatch(a.spec, b.spec)) << "joining misaligned histograms";
  AttributeStats out{a.spec, std::vector<double>(a.buckets.size(), 0.0)};
  for (int i = 0; i < a.spec.num_buckets(); ++i) {
    out.buckets[static_cast<size_t>(i)] =
        a.buckets[static_cast<size_t>(i)] *
        b.buckets[static_cast<size_t>(i)] /
        BucketDistinctValues(a.spec, i);
  }
  return out;
}

}  // namespace dhs
