// Multi-way equi-join queries over the shared integer attribute — the
// workload of the paper's query-processing experiment (§5.2: multi-way
// joins over four relations a la PIER/FREddies).

#ifndef DHS_QUERYOPT_JOIN_GRAPH_H_
#define DHS_QUERYOPT_JOIN_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "queryopt/selectivity.h"

namespace dhs {

/// One input relation of a join query.
struct JoinInput {
  std::string name;
  AttributeStats stats;   // per-bucket cardinalities (exact or estimated)
  size_t tuple_bytes = 1024;

  double Cardinality() const { return stats.TotalCardinality(); }
  double TotalBytes() const {
    return Cardinality() * static_cast<double>(tuple_bytes);
  }
};

/// A natural multi-way equi-join of `inputs` on the histogram attribute.
/// All inputs must share the same HistogramSpec.
struct JoinQuery {
  std::vector<JoinInput> inputs;

  size_t NumRelations() const { return inputs.size(); }

  /// Validates spec alignment; call once after construction.
  bool SpecsAligned() const;
};

}  // namespace dhs

#endif  // DHS_QUERYOPT_JOIN_GRAPH_H_
