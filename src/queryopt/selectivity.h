// Selectivity and join-size estimation from (exact or DHS-reconstructed)
// equi-width histograms — the query-optimizer machinery of §5.2
// "Histograms and Query Processing".

#ifndef DHS_QUERYOPT_SELECTIVITY_H_
#define DHS_QUERYOPT_SELECTIVITY_H_

#include <cstdint>
#include <vector>

#include "histogram/equi_width.h"

namespace dhs {

/// Per-attribute statistics: bucket cardinalities over a shared
/// HistogramSpec. `buckets` may come from BuildExactHistogram (ground
/// truth) or DhsHistogram::Reconstruct (estimates).
struct AttributeStats {
  HistogramSpec spec;
  std::vector<double> buckets;

  double TotalCardinality() const;
};

/// Fraction of the relation satisfying lo <= a <= hi (in [0, 1]), with
/// uniform interpolation inside buckets.
double EstimateRangeSelectivity(const AttributeStats& stats, int64_t lo,
                                int64_t hi);

/// Estimated size (tuples) of the equi-join of two relations on the
/// histogram attribute. Per-bucket model with the uniform-spread
/// assumption: |R ⋈ S|_b = r_b * s_b / W_b, where W_b is the number of
/// distinct values the bucket can hold. Requires identical specs.
double EstimateEquiJoinSize(const AttributeStats& a,
                            const AttributeStats& b);

/// Per-bucket join composition: returns the histogram of R ⋈ S so that
/// multi-way joins can be estimated by folding. Requires identical specs.
AttributeStats ComposeJoin(const AttributeStats& a, const AttributeStats& b);

}  // namespace dhs

#endif  // DHS_QUERYOPT_SELECTIVITY_H_
