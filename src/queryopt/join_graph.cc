#include "queryopt/join_graph.h"

namespace dhs {

bool JoinQuery::SpecsAligned() const {
  if (inputs.empty()) return true;
  const HistogramSpec& first = inputs.front().stats.spec;
  for (const JoinInput& input : inputs) {
    const HistogramSpec& spec = input.stats.spec;
    if (spec.min_value() != first.min_value() ||
        spec.max_value() != first.max_value() ||
        spec.num_buckets() != first.num_buckets()) {
      return false;
    }
  }
  return true;
}

}  // namespace dhs
