// Left-deep join-order enumeration with a PIER-style data-transfer cost
// model.
//
// In a DHT query engine every binary (symmetric hash) join rehashes both
// inputs across the network, so the cost of a join step is the byte size
// of both inputs; the cost of a plan is the sum over its join steps. The
// optimizer enumerates all left-deep orders (exact for the 3-4 relation
// queries of the evaluation) and ranks them by estimated transfer.

#ifndef DHS_QUERYOPT_OPTIMIZER_H_
#define DHS_QUERYOPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "queryopt/join_graph.h"

namespace dhs {

/// One evaluated left-deep plan.
struct JoinPlan {
  std::vector<int> order;       // permutation of relation indices
  double result_tuples = 0.0;   // estimated final result size
  double transfer_bytes = 0.0;  // total shipped bytes under the cost model

  std::string OrderString(const JoinQuery& query) const;
};

/// A general (bushy) plan produced by the subset-DP optimizer.
struct BushyPlan {
  std::string expression;       // e.g. "((A ⋈ B) ⋈ (C ⋈ D))"
  double result_tuples = 0.0;
  double transfer_bytes = 0.0;
};

/// Enumerates left-deep plans for a JoinQuery.
class JoinOptimizer {
 public:
  /// The query must outlive the optimizer and have aligned specs.
  explicit JoinOptimizer(const JoinQuery* query);

  /// Evaluates one explicit order (size must equal NumRelations()).
  [[nodiscard]] StatusOr<JoinPlan> Evaluate(const std::vector<int>& order) const;

  /// Cheapest left-deep plan (exhaustive enumeration).
  [[nodiscard]] StatusOr<JoinPlan> Best() const;

  /// Most expensive left-deep plan — the "pessimal optimizer" bound.
  [[nodiscard]] StatusOr<JoinPlan> Worst() const;

  /// Cheapest plan over ALL join trees (bushy included), by dynamic
  /// programming over relation subsets (Selinger-style, exact).
  /// O(3^n) time; intended for n <= ~14 relations. Never returns a plan
  /// costlier than Best().
  [[nodiscard]] StatusOr<BushyPlan> BestBushy() const;

  /// Average transfer over all left-deep orders — a model of an
  /// optimizer-less engine that picks an arbitrary order.
  [[nodiscard]] StatusOr<double> AverageTransfer() const;

 private:
  template <typename Select>
  [[nodiscard]] StatusOr<JoinPlan> Extremal(Select&& better) const;

  const JoinQuery* query_;
};

}  // namespace dhs

#endif  // DHS_QUERYOPT_OPTIMIZER_H_
