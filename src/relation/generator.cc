#include <utility>

#include "common/zipf.h"
#include "hashing/hasher.h"
#include "relation/relation.h"

namespace dhs {

Relation RelationGenerator::Generate(const RelationSpec& spec,
                                     uint64_t seed) {
  Rng rng(SplitMix64(seed));
  ZipfGenerator zipf(spec.domain_size, spec.zipf_theta);
  std::vector<uint32_t> offsets;
  offsets.reserve(spec.num_tuples);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    offsets.push_back(static_cast<uint32_t>(zipf.Sample(rng) - 1));
  }
  // The ID salt depends on name and seed so two relations never share
  // tuple IDs (distinct items in the DHS).
  const uint64_t salt =
      SplitMix64(MixHasher(seed).Hash(spec.name) ^ 0xd1575b07u);
  return Relation(spec, std::move(offsets), salt);
}

std::vector<std::pair<uint64_t, std::vector<uint64_t>>> AssignTuplesToNodes(
    const Relation& relation, const std::vector<uint64_t>& node_ids,
    Rng& rng) {
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> assignment;
  assignment.reserve(node_ids.size());
  for (uint64_t node : node_ids) assignment.emplace_back(node, std::vector<uint64_t>{});
  for (uint64_t i = 0; i < relation.NumTuples(); ++i) {
    const size_t node_index = rng.UniformU64(node_ids.size());
    assignment[node_index].second.push_back(i);
  }
  return assignment;
}

}  // namespace dhs
