#include "relation/relation.h"

#include <algorithm>

#include "common/check.h"

namespace dhs {

Relation::Relation(RelationSpec spec, std::vector<uint32_t> value_offsets,
                   uint64_t id_salt)
    : spec_(std::move(spec)),
      value_offsets_(std::move(value_offsets)),
      value_counts_(spec_.domain_size, 0),
      id_salt_(id_salt) {
  for (uint32_t offset : value_offsets_) {
    CHECK_LT(offset, spec_.domain_size)
        << "tuple value offset outside the attribute domain";
    value_counts_[offset] += 1;
  }
  cumulative_counts_.resize(value_counts_.size() + 1, 0);
  for (size_t i = 0; i < value_counts_.size(); ++i) {
    cumulative_counts_[i + 1] = cumulative_counts_[i] + value_counts_[i];
  }
}

uint64_t Relation::CountValueRange(int64_t lo, int64_t hi) const {
  if (hi < lo) return 0;
  const int64_t max_value =
      spec_.min_value + static_cast<int64_t>(spec_.domain_size) - 1;
  lo = std::max(lo, spec_.min_value);
  hi = std::min(hi, max_value);
  if (hi < lo) return 0;
  const size_t lo_idx = static_cast<size_t>(lo - spec_.min_value);
  const size_t hi_idx = static_cast<size_t>(hi - spec_.min_value);
  return cumulative_counts_[hi_idx + 1] - cumulative_counts_[lo_idx];
}

}  // namespace dhs
