// Relational workload substrate (§5.1 of the paper): relations of 1 kB
// tuples with a single integer attribute drawn from Zipf(theta), tuples
// uniformly assigned to overlay nodes.

#ifndef DHS_RELATION_RELATION_H_
#define DHS_RELATION_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace dhs {

/// Static description of a generated relation.
struct RelationSpec {
  std::string name;
  uint64_t num_tuples = 0;
  /// Attribute values are drawn from [min_value, min_value + domain - 1].
  int64_t min_value = 1;
  uint64_t domain_size = 1000;
  /// Zipf skew; 0 = uniform. The paper uses theta = 0.7.
  double zipf_theta = 0.7;
  /// Logical tuple width for data-transfer accounting (paper: 1 kB).
  size_t tuple_bytes = 1024;
};

/// A materialized relation: one integer attribute per tuple plus a unique
/// 64-bit tuple identifier (the DHS item ID). Attribute values are stored
/// column-wise; value-frequency counts are precomputed as ground truth.
class Relation {
 public:
  Relation(RelationSpec spec, std::vector<uint32_t> value_offsets,
           uint64_t id_salt);

  const RelationSpec& spec() const { return spec_; }
  uint64_t NumTuples() const { return value_offsets_.size(); }

  /// Attribute value of tuple i.
  int64_t Value(uint64_t i) const {
    return spec_.min_value + static_cast<int64_t>(value_offsets_[i]);
  }

  /// Globally unique tuple identifier (deterministic given the relation's
  /// name-derived salt) — the item fed to the DHS hash.
  uint64_t TupleId(uint64_t i) const { return SplitMix64(id_salt_ + i); }

  /// Exact number of tuples with value in [lo, hi] (ground truth).
  uint64_t CountValueRange(int64_t lo, int64_t hi) const;

  /// Exact per-domain-value tuple counts; index v = value - min_value.
  const std::vector<uint64_t>& ValueCounts() const { return value_counts_; }

  /// Total bytes of the relation under the spec's tuple width.
  uint64_t TotalBytes() const { return NumTuples() * spec_.tuple_bytes; }

 private:
  RelationSpec spec_;
  std::vector<uint32_t> value_offsets_;  // value - min_value per tuple
  std::vector<uint64_t> value_counts_;   // per domain offset
  std::vector<uint64_t> cumulative_counts_;
  uint64_t id_salt_;
};

/// Deterministic generator for RelationSpec workloads.
class RelationGenerator {
 public:
  /// Materializes `spec` with Zipf(theta)-distributed values; fully
  /// reproducible for a given seed.
  static Relation Generate(const RelationSpec& spec, uint64_t seed);
};

/// Uniform assignment of tuples to overlay nodes: returns, for each node
/// (keyed by node ID), the tuple indices it hosts. Every tuple is placed
/// on exactly one node (the paper's storage model).
std::vector<std::pair<uint64_t, std::vector<uint64_t>>> AssignTuplesToNodes(
    const Relation& relation, const std::vector<uint64_t>& node_ids,
    Rng& rng);

}  // namespace dhs

#endif  // DHS_RELATION_RELATION_H_
