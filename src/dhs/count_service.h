// Count service: serves kCountRequest wire frames by running the local
// DhsClient's multi-metric count and encoding the result as a
// kCountResponse frame.
//
// This is the piece of frame serving that cannot live in the transport
// layer: answering a count means executing the paper's probe walks
// through a DhsClient, and src/dht/ sits below src/dhs/ in the layering
// DAG (ServeFrame in dht/transport.cc rejects kCountRequest for exactly
// this reason). A deployment stacks one DhsCountService per front-door
// node on top of whatever Transport the node speaks; remote callers
// encode a kCountRequest, ship it over the wire, and decode estimates
// from the kCountResponse without holding any DHS state themselves.

#ifndef DHS_DHS_COUNT_SERVICE_H_
#define DHS_DHS_COUNT_SERVICE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"
#include "dhs/client.h"

namespace dhs {

class DhsCountService {
 public:
  /// The client must outlive the service.
  explicit DhsCountService(DhsClient* client) : client_(client) {}

  /// Decodes a kCountRequest frame, runs CountMany from origin_node and
  /// returns the encoded kCountResponse. Malformed frames and count
  /// failures surface as errors; a degraded count (gave_up) is still a
  /// successful response carrying the gave-up flag.
  [[nodiscard]] StatusOr<std::string> Handle(uint64_t origin_node,
                                             std::string_view request_frame,
                                             Rng& rng);

 private:
  DhsClient* client_;
};

}  // namespace dhs

#endif  // DHS_DHS_COUNT_SERVICE_H_
