// Soft-state maintenance driver (§3.3).
//
// DHS deletion is implicit: every tuple carries a time_out and vanishes
// unless refreshed. The paper discusses the resulting trade-off —
// larger timeouts mean fewer refresh rounds but slower adaptation to
// fluctuation. DhsMaintainer packages the refresh protocol: each node
// registers the items it currently holds per metric; RefreshRound()
// re-inserts every node's registry (one bulk round per node, §3.2),
// resetting the timestamps of all live tuples.
//
// Driving AdvanceClock() and RefreshRound() from an experiment loop
// simulates churn: items removed from a registry silently age out after
// ttl_ticks, newly registered items appear at the next round.

#ifndef DHS_DHS_MAINTAINER_H_
#define DHS_DHS_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dhs/client.h"

namespace dhs {

class DhsMaintainer {
 public:
  /// The client (and its network) must outlive the maintainer.
  explicit DhsMaintainer(DhsClient* client) : client_(client) {}

  /// Registers an item as locally held by `node` under `metric`. It will
  /// be (re-)inserted on every subsequent refresh round.
  void RegisterItem(uint64_t node, uint64_t metric, uint64_t item_hash);

  /// Registers a batch.
  void RegisterItems(uint64_t node, uint64_t metric,
                     const std::vector<uint64_t>& item_hashes);

  /// Deregisters an item (e.g. the node deleted the document). The DHS
  /// forgets it automatically once its TTL lapses.
  void UnregisterItem(uint64_t node, uint64_t metric, uint64_t item_hash);

  /// Drops every registration of a node (the node left or failed).
  void DropNode(uint64_t node);

  /// One maintenance round: every registered node bulk-inserts its items
  /// for each metric, refreshing the soft state. Nodes no longer in the
  /// network are skipped. Returns the number of bulk rounds issued.
  [[nodiscard]] StatusOr<size_t> RefreshRound(Rng& rng);

  /// Total registered (node, metric, item) entries.
  size_t NumRegistrations() const;

  /// Structural audit: the registry must hold no empty metric maps or
  /// item sets (Unregister/Drop prune them eagerly), every registered
  /// item must place onto a mapped bit or be covered by the §3.5
  /// bit-shift rule, and the underlying client state must pass
  /// DhsClient::AuditFull. Returns OK or Internal naming the violation.
  [[nodiscard]] Status AuditFull() const;

 private:
  DhsClient* client_;
  // node -> metric -> item hashes.
  std::unordered_map<uint64_t,
                     std::map<uint64_t, std::unordered_set<uint64_t>>>
      registry_;
};

}  // namespace dhs

#endif  // DHS_DHS_MAINTAINER_H_
