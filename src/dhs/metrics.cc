#include "dhs/metrics.h"

#include "common/random.h"
#include "hashing/md4.h"

namespace dhs {

uint64_t MetricFromName(std::string_view name) {
  return Md4::DigestToU64(Md4::Hash(name));
}

uint64_t SubMetric(uint64_t base_metric, uint64_t index) {
  return SplitMix64(base_metric * 0x9e3779b97f4a7c15ULL + index);
}

std::string HistogramMetricName(std::string_view relation,
                                std::string_view attribute) {
  std::string name = "histogram:";
  name.append(relation);
  name.push_back('.');
  name.append(attribute);
  return name;
}

}  // namespace dhs
