#include "dhs/mapping.h"

#include <cassert>

#include "common/bit_util.h"

namespace dhs {

BitMapping::BitMapping(const IdSpace& space, const DhsConfig& config)
    : space_(space),
      rho_bits_(config.RhoBits()),
      shift_(config.shift_bits),
      max_bit_(config.RhoBits()) {
  assert(rho_bits_ >= 1);
  assert(shift_ >= 0 && shift_ < rho_bits_);
}

StatusOr<IdInterval> BitMapping::IntervalForBit(int r) const {
  if (r < shift_ || r > max_bit_) {
    return Status::OutOfRange("bit position outside mapped range");
  }
  const int L = space_.bits();
  const int idx = r - shift_;             // DHT interval index
  const int num_plain = max_bit_ - shift_;  // non-saturation intervals
  IdInterval interval;
  if (idx < num_plain) {
    // I_idx = [2^(L-idx-1), 2^(L-idx)).
    interval.lo = uint64_t{1} << (L - idx - 1);
    interval.size = interval.lo;
    if (L - idx - 1 >= 64) {  // defensive; cannot happen for L <= 64
      return Status::Internal("interval overflow");
    }
  } else {
    // Saturation position: the residual interval [0, 2^(L - num_plain)).
    interval.lo = 0;
    interval.size = uint64_t{1} << (L - num_plain);
  }
  return interval;
}

uint64_t BitMapping::RandomIdIn(const IdInterval& interval, Rng& rng) const {
  assert(interval.size > 0);
  return interval.lo + rng.UniformU64(interval.size);
}

int BitMapping::BitForId(uint64_t id) const {
  id = space_.Clamp(id);
  const int L = space_.bits();
  const int num_plain = max_bit_ - shift_;
  if (id == 0) return max_bit_;
  const int idx = L - 1 - Log2Floor(id);
  if (idx >= num_plain) return max_bit_;
  return idx + shift_;
}

}  // namespace dhs
