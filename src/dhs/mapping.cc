#include "dhs/mapping.h"

#include "common/bit_util.h"
#include "common/check.h"

namespace dhs {

BitMapping::BitMapping(const IdSpace& space, const DhsConfig& config)
    : space_(space),
      rho_bits_(config.RhoBits()),
      shift_(config.shift_bits),
      max_bit_(config.RhoBits()) {
  CHECK_GE(rho_bits_, 1);
  CHECK(shift_ >= 0 && shift_ < rho_bits_)
      << "shift_bits " << shift_ << " outside [0, " << rho_bits_ << ")";
}

StatusOr<IdInterval> BitMapping::IntervalForBit(int r) const {
  if (r < shift_ || r > max_bit_) {
    return Status::OutOfRange("bit position outside mapped range");
  }
  const int L = space_.bits();
  const int idx = r - shift_;             // DHT interval index
  const int num_plain = max_bit_ - shift_;  // non-saturation intervals
  IdInterval interval;
  if (idx < num_plain) {
    // I_idx = [2^(L-idx-1), 2^(L-idx)).
    interval.lo = uint64_t{1} << (L - idx - 1);
    interval.size = interval.lo;
    if (L - idx - 1 >= 64) {  // defensive; cannot happen for L <= 64
      return Status::Internal("interval overflow");
    }
  } else {
    // Saturation position: the residual interval [0, 2^(L - num_plain)).
    interval.lo = 0;
    interval.size = uint64_t{1} << (L - num_plain);
  }
  return interval;
}

uint64_t BitMapping::RandomIdIn(const IdInterval& interval, Rng& rng) const {
  DCHECK_GT(interval.size, 0u);
  return interval.lo + rng.UniformU64(interval.size);
}

Status BitMapping::AuditFull() const {
  const auto fail = [](const std::string& what) {
    return Status::Internal("mapping audit: " + what);
  };
  // Walk intervals from the highest bit (the residual block at 0) up to
  // the lowest mapped bit: together they must tile [0, 2^L) exactly.
  uint64_t expected_lo = 0;
  for (int r = max_bit_; r >= shift_; --r) {
    auto interval = IntervalForBit(r);
    if (!interval.ok()) {
      return fail("IntervalForBit(" + std::to_string(r) +
                  ") failed: " + interval.status().ToString());
    }
    if (interval->size == 0) {
      return fail("bit " + std::to_string(r) + " maps to an empty interval");
    }
    if (interval->lo != expected_lo) {
      return fail("bit " + std::to_string(r) + " interval starts at " +
                  std::to_string(interval->lo) + ", expected " +
                  std::to_string(expected_lo) + " (gap or overlap)");
    }
    // Both endpoints must resolve back to r.
    if (BitForId(interval->lo) != r) {
      return fail("BitForId(lo) disagrees for bit " + std::to_string(r));
    }
    if (BitForId(interval->lo + (interval->size - 1)) != r) {
      return fail("BitForId(hi) disagrees for bit " + std::to_string(r));
    }
    expected_lo = interval->lo + interval->size;  // wraps to 0 at the top
  }
  if (expected_lo != (space_.Mask() == ~uint64_t{0}
                          ? uint64_t{0}  // 2^64 wraps
                          : space_.Mask() + 1)) {
    return fail("intervals do not cover the ID space: top is " +
                std::to_string(expected_lo));
  }
  return Status::OK();
}

int BitMapping::BitForId(uint64_t id) const {
  id = space_.Clamp(id);
  const int L = space_.bits();
  const int num_plain = max_bit_ - shift_;
  if (id == 0) return max_bit_;
  const int idx = L - 1 - Log2Floor(id);
  if (idx >= num_plain) return max_bit_;
  return idx + shift_;
}

}  // namespace dhs
