// Retry-limit theory (§4.1, eq. 5/6).
//
// When n' items are spread uniformly over the N' nodes of an ID-space
// interval, a counting probe may land on a node storing nothing for the
// probed bit. Eq. 5 gives the probability that t successive probes are
// all empty; solving for t yields the number of probes needed to find a
// non-empty node with probability >= p.

#ifndef DHS_DHS_LIM_H_
#define DHS_DHS_LIM_H_

#include <cstdint>

namespace dhs {

/// P(X = t): probability that the first t probed bins are all empty when
/// n_items are uniformly placed into n_bins (eq. 5: ((N'-t)/N')^n').
/// Returns 0 when t >= n_bins and n_items > 0.
double ProbAllProbesEmpty(uint64_t n_bins, uint64_t n_items, int t);

/// Minimum probes t guaranteeing a residual all-empty probability of at
/// most p_miss, for a single bitmap: t = ceil(N' * (1 - p_miss^(1/n')))
/// (eq. 5 solved for t).
///
/// NOTE on the paper's notation: §4.1 writes this formula with "p" and
/// describes it as the probability of success ("non-empty with
/// probability at least p"), but the algebra only works out when the
/// exponentiated quantity is the residual miss probability — with a
/// success-p of 0.99 the printed formula yields t < 1 for any realistic
/// density, while the paper's own claim (lim = 5 gives >= 0.99 success
/// when n >= m*N) matches exactly when p = 0.01 is the miss bound:
/// N'(1 - 0.01^(1/N')) ~ 4.6 for N' = 128. We therefore expose p_miss.
int RequiredProbes(uint64_t n_bins, uint64_t n_items, double p_miss);

/// Eq. 6: lim for m bitmaps and replication degree R —
/// lim = ceil(N' * (1 - p_miss^(m / (R * alpha * N')))), alpha = n'/N'
/// being the per-interval item/node ratio. n_items counts items over ALL
/// bitmaps mapped to the interval; the m in the exponent reduces it to
/// the per-bitmap share. Same p_miss convention as RequiredProbes.
int RequiredProbesReplicated(uint64_t n_bins, uint64_t n_items, int m,
                             int replication, double p_miss);

/// The paper's guarantee behind the default lim = 5: hit probability of
/// one probe batch, i.e. 1 - ProbAllProbesEmpty(N', n', lim).
double HitProbability(uint64_t n_bins, uint64_t n_items, int lim);

/// The eq. 5/6 set point for a *flat* probe budget covering a whole
/// counting scan: the max over bit positions r in [min_bit, max_bit]
/// of RequiredProbesReplicated evaluated at that interval's geometric
/// node/item split — interval i = r - min_bit holds an expected
/// nodes * 2^-(i+1) of the overlay, and the items with rho = r are
/// cardinality * 2^-(r+1) (the two exponents differ only under the
/// §3.5 bit-shift rule, where min_bit > 0). Intervals expected to hold
/// < 1 item are skipped (an empty-handed walk there is the correct
/// outcome, not a miss to insure against), as are sub-2-node intervals
/// (the flat floor suffices). The result is clamped to
/// [floor, ceiling]; DhsServing's online lim tuner converges to this
/// value, replacing the static expected_cardinality hint with the
/// served estimates themselves.
int FlatLimTarget(uint64_t nodes, uint64_t cardinality, int min_bit,
                  int max_bit, int m, int replication, double p_miss,
                  int floor, int ceiling);

}  // namespace dhs

#endif  // DHS_DHS_LIM_H_
