// The Distributed Hash Sketch client: insertion (§3.2), soft-state
// refresh (§3.3), replication (§3.5) and the distributed counting
// algorithm (§4, Alg. 1) for both DHS-PCSA and DHS-sLL.
//
// A DhsClient is a *protocol endpoint*, not a server: any overlay node can
// act through it. All network effects go through the DhtNetwork, so
// every hop and byte is accounted.

#ifndef DHS_DHS_CLIENT_H_
#define DHS_DHS_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dht/network.h"
#include "dht/transport.h"
#include "dhs/config.h"
#include "dhs/mapping.h"

namespace dhs {

/// Backoff delay before retry `attempt` (0-based): base_ticks doubled
/// per attempt, with the shift clamped to 63 and the product saturated
/// at UINT64_MAX instead of the historical unchecked `base << attempt`
/// (undefined behaviour from attempt 64 on, silent overflow before
/// that). DhsConfig::Validate additionally rejects configs whose
/// deepest reachable shift would overflow, so a validated client never
/// saturates; the clamp protects direct callers and future config
/// surface.
uint64_t RetryBackoffTicks(uint64_t base_ticks, int attempt);

/// Cost of one DHS operation, in the paper's metrics, plus the
/// fault-tolerance accounting (retries issued, probes abandoned,
/// replication achieved). Every *issued* message attempt — including
/// ones a FaultPlan then fails — counts toward dht_lookups /
/// direct_probes, so `network stats messages delta == dht_lookups +
/// direct_probes` holds with or without faults (audit_sim pins this).
struct DhsCostReport {
  int nodes_visited = 0;   // distinct nodes probed for DHS state
  int hops = 0;            // routing hops + one-hop retries
  uint64_t bytes = 0;      // request + response payload bytes
  int dht_lookups = 0;     // full O(log N) lookups issued
  int direct_probes = 0;   // one-hop candidate/replica messages issued
  int retries = 0;         // re-issued messages after a transient failure
  int failed_probes = 0;   // candidate holders skipped after retries ran out
  int replicas_requested = 0;  // copies the replication config asked for
  int replicas_written = 0;    // copies durably stored (>= 1 per stored bit)
  int bit_groups_failed = 0;   // insert bit groups whose primary write failed

  DhsCostReport& operator+=(const DhsCostReport& o) {
    nodes_visited += o.nodes_visited;
    hops += o.hops;
    bytes += o.bytes;
    dht_lookups += o.dht_lookups;
    direct_probes += o.direct_probes;
    retries += o.retries;
    failed_probes += o.failed_probes;
    replicas_requested += o.replicas_requested;
    replicas_written += o.replicas_written;
    bit_groups_failed += o.bit_groups_failed;
    return *this;
  }
};

/// Result of a distributed count. Counting degrades gracefully under
/// faults: an interval whose probes cannot be completed is skipped
/// rather than aborting the count, and the degradation is reported
/// instead of silently biasing the estimate.
struct DhsCountResult {
  double estimate = 0.0;
  /// Reconstructed per-bitmap observables M^<i> (semantics depend on the
  /// estimator: leftmost zero for PCSA, max rho for sLL with -1 = none
  /// found).
  std::vector<int> observables;
  /// True when at least one ID-space interval had to be abandoned
  /// (its routed lookup failed through all retry attempts); the
  /// estimate then reflects partial information.
  bool gave_up = false;
  /// Upper bound on the number of bitmap coordinates whose observable
  /// may have been affected by abandoned intervals (the count of
  /// still-unresolved coordinates at the first abandoned interval).
  /// 0 when gave_up is false.
  int bitmaps_unresolved = 0;
  DhsCostReport cost;
};

/// Decomposition of an item into its DHS coordinates.
struct DhsPlacement {
  int vector_id = 0;  // bitmap index in [0, m)
  int rho = 0;        // bit position in [0, RhoBits()]
};

/// Per-count overrides, threaded through CountMany by callers that
/// manage the probe budget themselves (the serving layer's online lim
/// tuner). Defaults leave the configured behaviour untouched.
struct DhsCountOptions {
  /// > 0: replaces the configured flat `lim` for this count (and the
  /// adaptive floor when adaptive_lim is on), clamped to
  /// [1, config.max_lim]. 0 = use config.lim.
  int lim_override = 0;
};

class DhsClient {
 public:
  /// The network must outlive the client. Call Validate()d configs only;
  /// Create() checks for you. The two-argument overload speaks the
  /// simulator transport (SimTransport over `network`); pass a
  /// transport explicitly to serve the same protocol over another
  /// backend (e.g. LoopbackTransport). The transport must act on the
  /// same network (it shares the clock, fault plan and stats ledger).
  static StatusOr<DhsClient> Create(DhtNetwork* network,
                                    const DhsConfig& config);
  static StatusOr<DhsClient> Create(DhtNetwork* network,
                                    const DhsConfig& config,
                                    std::shared_ptr<Transport> transport);

  const DhsConfig& config() const { return config_; }
  const BitMapping& mapping() const { return mapping_; }

  /// The transport every data-plane frame travels through (never null).
  Transport* transport() const { return transport_.get(); }

  /// The overlay this client acts through (never null). Observability
  /// riders (DhsMaintainer, the baselines, tools) reach the attached
  /// tracer / metrics registry through it.
  DhtNetwork* network() const { return network_; }

  /// Splits an item hash into (vector_id, rho) using the k low-order bits
  /// of the hash: vector = lsb_k(h) mod m, rho = rho(lsb_k(h) div m).
  DhsPlacement PlaceItem(uint64_t item_hash) const;

  /// Records one item under `metric_id`, starting from `origin_node`,
  /// and reports the operation's cost (including achieved replication).
  /// Duplicate-insensitive: re-inserting refreshes the soft-state TTL.
  /// The primary write is durable-or-error: a failed replica copy never
  /// fails the insert (it shows up as replicas_written <
  /// replicas_requested), but a primary write that fails through all
  /// retries returns the transient error.
  [[nodiscard]] StatusOr<DhsCostReport> Insert(uint64_t origin_node,
                                               uint64_t metric_id,
                                               uint64_t item_hash, Rng& rng);

  /// Bulk insertion (§3.2): groups items by bit position and contacts one
  /// random target per bit, so a node records any number of items with at
  /// most k + 1 lookups per round. A bit group whose primary write fails
  /// through all retries is recorded in bit_groups_failed and the batch
  /// *continues with the remaining groups*; the error status is returned
  /// only when every group failed (nothing was stored).
  [[nodiscard]] StatusOr<DhsCostReport> InsertBatch(
      uint64_t origin_node, uint64_t metric_id,
      const std::vector<uint64_t>& item_hashes, Rng& rng);

  /// Distributed count of `metric_id` from `origin_node` (Alg. 1).
  [[nodiscard]] StatusOr<DhsCountResult> Count(uint64_t origin_node, uint64_t metric_id,
                                 Rng& rng);

  /// Multi-dimension counting (§4.2): estimates all `metric_ids` in one
  /// interval sweep. Hop-count cost is shared across metrics — the
  /// defining DHS property used for histogram reconstruction.
  struct MultiCountResult {
    std::vector<double> estimates;             // parallel to metric_ids
    std::vector<std::vector<int>> observables;  // parallel to metric_ids
    bool gave_up = false;          // see DhsCountResult
    int bitmaps_unresolved = 0;    // over all metrics of the sweep
    DhsCostReport cost;                        // shared sweep cost
  };
  [[nodiscard]] StatusOr<MultiCountResult> CountMany(uint64_t origin_node,
                                       const std::vector<uint64_t>& metric_ids,
                                       Rng& rng);
  [[nodiscard]] StatusOr<MultiCountResult> CountMany(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
      const DhsCountOptions& options);

  /// Explicit frontier-cache invalidation: drops the cached observables
  /// for `metric_id`. Required when inserts for the metric bypass this
  /// client (another endpoint, a maintainer on its own client, record
  /// migration after churn) — those can raise a bitmap's max rho above
  /// the cached frontier, and a frontier-started scan would silently
  /// undercount. No-op when the metric is not cached.
  void InvalidateFrontier(uint64_t metric_id) { frontier_.erase(metric_id); }
  void InvalidateAllFrontiers() { frontier_.clear(); }

  /// Frontier-cache introspection (tests and the serving layer).
  size_t FrontierEntries() const { return frontier_.size(); }
  bool HasFrontier(uint64_t metric_id) const {
    return frontier_.count(metric_id) > 0;
  }

  /// DHS-level audit: BitMapping::AuditFull plus placement agreement —
  /// every DHS-typed record in the network must carry a bit inside the
  /// mapped range [MinBit, MaxBit], a vector id inside [0, m), and a
  /// routing key inside the mapping interval of its bit (otherwise
  /// counting walks would never find it). Always available; returns OK
  /// or Internal naming the first violation.
  [[nodiscard]] Status AuditFull() const;

 private:
  DhsClient(DhtNetwork* network, const DhsConfig& config,
            std::shared_ptr<Transport> transport);

  /// Runs the full invariant audit (network + DHS placement) when
  /// config_.audit is set; CHECK-fatal on any violation.
  void MaybeAudit() const;

  /// Routes an encoded frame with the configured retry policy:
  /// re-issues the frame on transient failures (Unavailable /
  /// DeadlineExceeded), sleeping RetryBackoffTicks(backoff, attempt)
  /// between attempts. Every issued attempt is charged to cost
  /// (dht_lookups; hops/bytes only on success — a faulted frame does no
  /// observable work); re-issues count as retries. Non-transient errors
  /// are terminal and uncharged (the transport rejected the frame
  /// without sending it). `accounted_bytes` is the frame's §5.1 payload
  /// (AccountedPayloadBytes), charged per hop on delivery.
  [[nodiscard]] StatusOr<Transport::Delivery> RouteFrameWithRetry(
      uint64_t origin_node, const std::string& frame, size_t accounted_bytes,
      DhsCostReport* cost);

  /// One-hop frame forward with the same retry policy and accounting
  /// (direct_probes instead of dht_lookups).
  [[nodiscard]] StatusOr<Transport::Delivery> SendFrameWithRetry(
      uint64_t from_node, uint64_t to_node, const std::string& frame,
      size_t accounted_bytes, DhsCostReport* cost);

  /// Stores one tuple at the node responsible for a random ID in bit r's
  /// interval, plus `replication - 1` copies on the overlay's
  /// ReplicaCandidates. The target key is freshly randomized per call
  /// (load balancing). The primary write is durable-or-error; replica
  /// copies that fail through retries degrade replicas_written instead
  /// of failing the store.
  [[nodiscard]] Status StoreTuple(uint64_t origin_node, uint64_t metric_id, int bit,
                    const std::vector<int>& vector_ids, Rng& rng,
                    DhsCostReport* cost);

  /// Probes the interval of bit r: up to config_.lim nodes starting from
  /// a random in-interval target, walking the overlay's candidate order
  /// (Alg. 1 lines 3-17). Calls visit(node_id) for each probed node and
  /// lets the caller decide when the interval is exhausted via
  /// `done()`. A candidate that cannot be reached (dead, or transient
  /// failures through all retries) is skipped (failed_probes) and the
  /// walk continues from the last reached node; when the *initial*
  /// routed lookup fails through all retries the interval is abandoned:
  /// `*abandoned` is set and OK is returned so the count can continue
  /// degraded.
  template <typename VisitFn, typename DoneFn>
  [[nodiscard]] Status ProbeInterval(uint64_t origin_node, int bit,
                       const DhsCountOptions& options, Rng& rng,
                       DhsCostReport* cost, VisitFn&& visit, DoneFn&& done,
                       bool* abandoned);

  /// Reads the vectors present at `node` for (metric, bit) and charges
  /// the response bytes. Returns the vector ids found.
  std::vector<int> ProbeNodeForMetric(uint64_t node, uint64_t metric_id,
                                      int bit, DhsCostReport* cost);

  /// Probe budget for bit r: the flat lim (config, or the options
  /// override), or the eq. 6 value for the interval's expected density
  /// when adaptive_lim is enabled (the flat lim stays the floor).
  int LimForBit(int bit, const DhsCountOptions& options) const;

  [[nodiscard]] StatusOr<MultiCountResult> CountManySll(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
      const DhsCountOptions& options);
  [[nodiscard]] StatusOr<MultiCountResult> CountManyPcsa(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
      const DhsCountOptions& options);

  /// Caches `observables` as `metric_id`'s frontier, enforcing the
  /// config_.frontier_max_entries bound (evicting the lowest cached
  /// metric id when full — deterministic, so twin worlds agree).
  void StoreFrontier(uint64_t metric_id, const std::vector<int>& observables);

  /// Client-level op instruments, one set per root operation.
  enum OpIndex { kOpInsert = 0, kOpInsertBatch, kOpCount, kNumOps };
  struct OpMetrics {
    Counter* ops = nullptr;
    Counter* errors = nullptr;
    Histogram* hops = nullptr;
    Histogram* bytes = nullptr;
    Counter* retries = nullptr;
    Counter* failed_probes = nullptr;
  };

  /// Instruments for op `op`, interned lazily against the registry
  /// currently attached to the network (re-interned when the registry
  /// changes); nullptr when none is attached.
  const OpMetrics* MetricsFor(OpIndex op);

  /// Closes out a root op: annotates `span` with every DhsCostReport
  /// field and records the op's metrics. Call on every exit path.
  void FinishOp(ScopedSpan& span, OpIndex op, const DhsCostReport& cost,
                bool ok);

  DhtNetwork* network_;
  /// Data-plane backend; shared so DhsClient stays copyable (StatusOr
  /// plumbing) while a loopback transport keeps its sockets alive.
  std::shared_ptr<Transport> transport_;
  DhsConfig config_;
  BitMapping mapping_;
  int space_bits_cached_ = 64;  // L, for eq. 6 density computations

  /// Registry the cached op instruments were interned against.
  MetricsRegistry* metrics_cached_ = nullptr;
  OpMetrics op_metrics_[kNumOps];

  /// Frontier cache (config_.frontier_cache, sLL/HLL only): per metric,
  /// the raw observables (max rho per vector, -1 = none) of the last
  /// complete count. Invalidated by Insert/InsertBatch for the metric;
  /// never written by a count that gave up.
  std::map<uint64_t, std::vector<int>> frontier_;
  Counter* m_frontier_hits_ = nullptr;    // interned with op metrics
  Counter* m_frontier_misses_ = nullptr;
};

}  // namespace dhs

#endif  // DHS_DHS_CLIENT_H_
