// Configuration of a Distributed Hash Sketch instance.

#ifndef DHS_DHS_CONFIG_H_
#define DHS_DHS_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "dht/node_id.h"
#include "dht/store.h"

namespace dhs {

/// Which hash-sketch estimator drives the DHS (§3: both are implemented
/// on the identical insertion path; they differ in counting order and
/// estimate formula).
enum class DhsEstimator {
  kPcsa,         // DHS-PCSA: leftmost-zero scan, eq. 4
  kSuperLogLog,  // DHS-sLL: rightmost-one scan, truncated estimate, eq. 2
  kHyperLogLog,  // DHS-HLL (extension): same scan as sLL, harmonic-mean
                 // estimate with linear-counting small-range correction
};

const char* DhsEstimatorName(DhsEstimator estimator);

/// Tunables of one DHS deployment. Defaults reproduce the paper's
/// evaluation setup (§5.1): k = 24-bit bitmaps, m = 512 vectors, lim = 5.
struct DhsConfig {
  /// Bitmap length k <= L: items are inserted using the k low-order bits
  /// of their DHT keys. Must leave log2(m) index bits available.
  int k = 24;

  /// Number of bitmap vectors m (power of two). More vectors lower the
  /// statistical error (~0.78/sqrt(m) PCSA, ~1.05/sqrt(m) sLL) at equal
  /// hop-count cost.
  int m = 512;

  DhsEstimator estimator = DhsEstimator::kSuperLogLog;

  /// Max probes (initial + successor/predecessor retries) per ID-space
  /// interval during counting (§4.1; default 5 guarantees >= 0.99 hit
  /// probability when n >= m * N).
  int lim = 5;

  /// §4.1: "there is a different optimal lim for every ID-space
  /// interval". When enabled (and expected_cardinality is set), the
  /// counting walk computes each interval's probe budget from eq. 6
  /// instead of using the flat `lim` — more probes for sparse intervals,
  /// fewer for saturated ones. `lim` remains the floor.
  bool adaptive_lim = false;

  /// Cardinality hint for the adaptive limit — the paper's "maximum
  /// cardinality estimated" n_max (eq. 3 makes the same assumption for
  /// sizing hashes). 0 disables adaptation.
  uint64_t expected_cardinality = 0;

  /// Hit-probability target p of eq. 6 and cap on the adaptive budget.
  double adaptive_confidence = 0.99;
  int max_lim = 200;

  /// Replication degree: total copies of each DHS tuple (1 = only the
  /// responsible node). Extra copies go to the overlay's
  /// ReplicaCandidates — ring successors on Chord, XOR-nearest block
  /// members on Kademlia (§3.5) — so they sit exactly where counting
  /// walks probe after the primary.
  int replication = 1;

  /// Transient-failure retry policy: how many times a single DHT
  /// message (lookup or direct probe) is attempted before the client
  /// gives up on it. 1 = no retries. Transient means Unavailable or
  /// DeadlineExceeded, the codes a FaultPlan produces; other errors are
  /// terminal immediately.
  int retry_attempts = 4;

  /// Virtual-clock ticks slept before the first retry; doubles per
  /// subsequent retry (exponential backoff). 0 = retry immediately
  /// without advancing the clock (the default: backoff ages soft state,
  /// which only matters when ttl_ticks is finite).
  uint64_t retry_backoff_ticks = 0;

  /// §3.5 bit-shift rule: disregard the first shift_bits bits of each
  /// item, assigning the i-th DHT interval to the (i + shift_bits)-th bit.
  /// Only cardinalities above 2^shift_bits are then measurable.
  int shift_bits = 0;

  /// Soft-state TTL of DHS tuples in virtual-clock ticks (§3.3).
  /// kNoExpiry disables aging.
  uint64_t ttl_ticks = kNoExpiry;

  /// Frontier cache for sLL/HLL counting (honoured by both DhsClient
  /// and the sharded DhsFrontDoor): remember the raw observables of
  /// the last complete count per metric and start the next high -> low
  /// scan at the cached max rho instead of MaxBit — sound because
  /// soft-state decay and node failures can only *lower* a bitmap's
  /// max rho, and the cache is invalidated on every insert through the
  /// caching endpoint. Inserts that bypass it (another client, a
  /// maintainer on its own client, record migration) must be signalled
  /// via InvalidateFrontier / DhsServing::InvalidateMetric or the next
  /// count may undercount. Off by default (it changes probe costs, so
  /// golden traces keep it off). PCSA counts ignore it (the
  /// leftmost-zero scan is low -> high). Hits/misses are exported as
  /// dhs_frontier_cache_{hits,misses}_total when metrics are attached.
  bool frontier_cache = false;

  /// Upper bound on cached frontier entries (distinct metrics); when
  /// full, caching a new metric evicts the lowest metric id first (a
  /// deterministic rule, so twin worlds with equal configs stay
  /// byte-identical). 0 = unbounded.
  int frontier_max_entries = 0;

  /// Debug-audit mode: when set, the client runs the full invariant
  /// audit (DhtNetwork::CheckInvariants + DhsClient::AuditFull, both
  /// CHECK-fatal on violation) after every mutating or counting
  /// operation. Expensive — O(total records) per operation — so meant
  /// for tests and correctness experiments, not benchmarks.
  bool audit = false;

  /// Truncation parameter theta0 of super-LogLog.
  double theta0 = 0.7;

  /// Checks parameter consistency against the overlay's ID space.
  [[nodiscard]] Status Validate(const IdSpace& space) const;

  /// Wire size of one DHS tuple <metric_id, vector_id, bit, time_out>.
  /// The paper's accounting (§5.1): 8 + 16 + 8 + 32 bits = 8 bytes.
  size_t TupleBytes() const { return 8; }

  /// Wire size of a counting probe request (metric id + bit + flags).
  size_t ProbeRequestBytes() const { return 12; }

  /// Wire size of a probe response listing `vectors_reported` vector IDs.
  size_t ProbeResponseBytes(size_t vectors_reported) const {
    return 8 + 2 * vectors_reported;
  }

  /// Number of vector-index bits c = log2(m). The vector is selected from
  /// the hash bits *above* the k low-order bits (h >> k mod m), so the
  /// full k-bit range remains available to rho regardless of m; the DHT
  /// interval layout is then identical for every m — the property behind
  /// §4.2's m-independent counting cost.
  int IndexBits() const;

  /// Bit positions available to rho: the k low-order bits. The
  /// per-bitmap observable M lies in [0, k] (k = rho saturation).
  int RhoBits() const { return k; }
};

}  // namespace dhs

#endif  // DHS_DHS_CONFIG_H_
