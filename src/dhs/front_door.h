// Sharded DHS front door: the batch entry point that drives the
// sharded engine (dht/shard.h) with DHS semantics — bulk insertion
// (§3.2) and multi-metric counting (§4, Alg. 1) expressed as ShardOp
// batches instead of sequential client calls.
//
// The front door owns a DhsClient purely for its validated config,
// bit mapping, item placement and audit logic; all network traffic
// goes through ShardedNetwork::ExecuteBatch. Outcome accounting maps
// 1:1 onto DhsCostReport (the engine mirrors the client's charging
// rules), and each root operation is wrapped in the same root span
// ("insert_batch" / "count") with the same cost annotations, so the
// tracer's root-span reconciliation invariant holds unchanged.
//
// Observable equivalence: for a fixed seed the sharded path produces
// identical estimates and observables at any shard count (pinned by
// tests/dht/shard_test.cc). Relative to the *sequential* client the
// observables agree but costs may differ: counting walks probe the
// full candidate list instead of stopping at done() (the skipped
// probes cannot change max-rho or leftmost-zero observables), every
// bit interval of a count is swept (the sequential scan stops once all
// bitmaps resolve), and RNG draw order differs. DESIGN.md ("Sharding
// model") discusses the trade.

#ifndef DHS_DHS_FRONT_DOOR_H_
#define DHS_DHS_FRONT_DOOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dht/shard.h"
#include "dhs/client.h"
#include "dhs/config.h"

namespace dhs {

/// One compiled bulk insertion: the §3.2 bit-group kPut ops of a
/// single InsertBatch call, ready for engine execution. Built by
/// DhsFrontDoor::CompileInsertBatch and executed either by the front
/// door itself (InsertBatch) or merged with other compiled batches
/// into one engine wave by the serving layer; FoldInsertOutcomes maps
/// the engine outcomes (parallel to `ops`) back to the per-batch
/// DhsCostReport. Because kPut ops never read stores, engine fault
/// ordinals accumulate across batches and the virtual clock is frozen
/// inside a batch, a merged execution is byte-identical to executing
/// the batches back to back (pinned by tests/dhs/serving_test.cc).
struct CompiledInsertBatch {
  std::vector<ShardOp> ops;   // one kPut per bit group that compiled
  size_t groups_total = 0;    // bit groups in the batch (ops + pre-failed)
  DhsCostReport cost;         // pre-execution accounting (replicas
                              // requested, compile-stage failures)
  Status first_failure;       // first compile-stage failure, if any
};

class DhsFrontDoor {
 public:
  /// The engine (and its network) must outlive the front door. The
  /// config is validated; the engine's retry budget is set from it.
  static StatusOr<DhsFrontDoor> Create(ShardedNetwork* engine,
                                       const DhsConfig& config);

  const DhsConfig& config() const { return client_.config(); }
  const BitMapping& mapping() const { return client_.mapping(); }
  ShardedNetwork* engine() const { return engine_; }
  DhtNetwork* network() const { return engine_->network(); }

  /// Bulk insertion (§3.2): groups items by bit position and issues one
  /// kPut per group as a single engine batch. Degradation semantics
  /// match DhsClient::InsertBatch: a failed group is counted in
  /// bit_groups_failed and the batch continues; the error is returned
  /// only when every group failed.
  [[nodiscard]] StatusOr<DhsCostReport> InsertBatch(
      uint64_t origin_node, uint64_t metric_id,
      const std::vector<uint64_t>& item_hashes, Rng& rng);

  /// Compiles one InsertBatch into its kPut ops without executing them
  /// (the serving layer's pipelined hand-off: several compiled batches
  /// merge into one ExecuteBatch). Draws the same RNG sequence as
  /// InsertBatch and invalidates the metric's cached frontier.
  [[nodiscard]] StatusOr<CompiledInsertBatch> CompileInsertBatch(
      uint64_t origin_node, uint64_t metric_id,
      const std::vector<uint64_t>& item_hashes, Rng& rng);

  /// Folds the engine outcomes of `compiled.ops` (same order, same
  /// length) into the batch's final report, applying the client's
  /// degradation contract: a failed group degrades (bit_groups_failed),
  /// and the first failure is returned only when every group failed —
  /// `*cost` is filled either way (failed batches still did work).
  [[nodiscard]] Status FoldInsertOutcomes(const CompiledInsertBatch& compiled,
                                          const ShardOpOutcome* outcomes,
                                          size_t num_outcomes,
                                          DhsCostReport* cost);

  /// Multi-metric count (§4.2): issues one kProbe per bit interval —
  /// all intervals in a single engine batch — and reconstructs the
  /// observables from the probe results in scan order (high -> low for
  /// sLL/HLL, low -> high for PCSA), with the same first-hit /
  /// leftmost-zero and degradation rules as the sequential client.
  /// With config.frontier_cache set, sLL/HLL sweeps start at the
  /// metric-set's cached frontier (the client's cache semantics,
  /// extended to the sharded path).
  [[nodiscard]] StatusOr<DhsClient::MultiCountResult> CountMany(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids,
      Rng& rng);
  [[nodiscard]] StatusOr<DhsClient::MultiCountResult> CountMany(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
      const DhsCountOptions& options);

  /// Single-metric convenience wrapper over CountMany.
  [[nodiscard]] StatusOr<DhsCountResult> Count(uint64_t origin_node,
                                               uint64_t metric_id, Rng& rng);

  /// Frontier-cache invalidation and introspection, mirroring
  /// DhsClient (see client.h InvalidateFrontier on when signalling is
  /// required).
  void InvalidateFrontier(uint64_t metric_id) { frontier_.erase(metric_id); }
  void InvalidateAllFrontiers() { frontier_.clear(); }
  size_t FrontierEntries() const { return frontier_.size(); }
  bool HasFrontier(uint64_t metric_id) const {
    return frontier_.count(metric_id) > 0;
  }

 private:
  DhsFrontDoor(ShardedNetwork* engine, DhsClient client)
      : engine_(engine), client_(std::move(client)) {}

  /// Probe budget for bit r (the client's LimForBit: flat lim or the
  /// options override, or the eq. 6 adaptive value).
  int LimForBit(int bit, const DhsCountOptions& options) const;

  /// Builds the kProbe op for bit r (shared by both scan directions).
  ShardOp MakeProbeOp(uint64_t origin, int bit,
                      const std::vector<uint64_t>& metric_ids,
                      const IdInterval& interval,
                      const DhsCountOptions& options, Rng& rng) const;

  /// Caches `observables` as `metric_id`'s frontier under the
  /// config frontier_max_entries bound (the client's eviction rule).
  void StoreFrontier(uint64_t metric_id, const std::vector<int>& observables);

  void MaybeAudit() const;

  /// Root-span + metrics close-out, mirroring DhsClient::FinishOp
  /// (same instrument names and labels, ops "insert_batch" / "count").
  enum OpIndex { kOpInsertBatch = 0, kOpCount, kNumOps };
  struct OpMetrics {
    Counter* ops = nullptr;
    Counter* errors = nullptr;
    Histogram* hops = nullptr;
    Histogram* bytes = nullptr;
    Counter* retries = nullptr;
    Counter* failed_probes = nullptr;
  };
  const OpMetrics* MetricsFor(OpIndex op);
  void FinishOp(ScopedSpan& span, OpIndex op, const DhsCostReport& cost,
                bool ok);

  ShardedNetwork* engine_;
  DhsClient client_;
  MetricsRegistry* metrics_cached_ = nullptr;
  OpMetrics op_metrics_[kNumOps];

  /// Frontier cache (config.frontier_cache, sLL/HLL only): the
  /// client's cache semantics on the sharded path — raw observables of
  /// the last complete count per metric, invalidated by every
  /// InsertBatch/CompileInsertBatch through this front door, never
  /// written by a degraded count.
  std::map<uint64_t, std::vector<int>> frontier_;
  Counter* m_frontier_hits_ = nullptr;    // interned with op metrics
  Counter* m_frontier_misses_ = nullptr;
};

}  // namespace dhs

#endif  // DHS_DHS_FRONT_DOOR_H_
