// Sharded DHS front door: the batch entry point that drives the
// sharded engine (dht/shard.h) with DHS semantics — bulk insertion
// (§3.2) and multi-metric counting (§4, Alg. 1) expressed as ShardOp
// batches instead of sequential client calls.
//
// The front door owns a DhsClient purely for its validated config,
// bit mapping, item placement and audit logic; all network traffic
// goes through ShardedNetwork::ExecuteBatch. Outcome accounting maps
// 1:1 onto DhsCostReport (the engine mirrors the client's charging
// rules), and each root operation is wrapped in the same root span
// ("insert_batch" / "count") with the same cost annotations, so the
// tracer's root-span reconciliation invariant holds unchanged.
//
// Observable equivalence: for a fixed seed the sharded path produces
// identical estimates and observables at any shard count (pinned by
// tests/dht/shard_test.cc). Relative to the *sequential* client the
// observables agree but costs may differ: counting walks probe the
// full candidate list instead of stopping at done() (the skipped
// probes cannot change max-rho or leftmost-zero observables), every
// bit interval of a count is swept (the sequential scan stops once all
// bitmaps resolve), and RNG draw order differs. DESIGN.md ("Sharding
// model") discusses the trade.

#ifndef DHS_DHS_FRONT_DOOR_H_
#define DHS_DHS_FRONT_DOOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dht/shard.h"
#include "dhs/client.h"
#include "dhs/config.h"

namespace dhs {

class DhsFrontDoor {
 public:
  /// The engine (and its network) must outlive the front door. The
  /// config is validated; the engine's retry budget is set from it.
  static StatusOr<DhsFrontDoor> Create(ShardedNetwork* engine,
                                       const DhsConfig& config);

  const DhsConfig& config() const { return client_.config(); }
  const BitMapping& mapping() const { return client_.mapping(); }
  ShardedNetwork* engine() const { return engine_; }
  DhtNetwork* network() const { return engine_->network(); }

  /// Bulk insertion (§3.2): groups items by bit position and issues one
  /// kPut per group as a single engine batch. Degradation semantics
  /// match DhsClient::InsertBatch: a failed group is counted in
  /// bit_groups_failed and the batch continues; the error is returned
  /// only when every group failed.
  [[nodiscard]] StatusOr<DhsCostReport> InsertBatch(
      uint64_t origin_node, uint64_t metric_id,
      const std::vector<uint64_t>& item_hashes, Rng& rng);

  /// Multi-metric count (§4.2): issues one kProbe per bit interval —
  /// all intervals in a single engine batch — and reconstructs the
  /// observables from the probe results in scan order (high -> low for
  /// sLL/HLL, low -> high for PCSA), with the same first-hit /
  /// leftmost-zero and degradation rules as the sequential client.
  [[nodiscard]] StatusOr<DhsClient::MultiCountResult> CountMany(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids,
      Rng& rng);

  /// Single-metric convenience wrapper over CountMany.
  [[nodiscard]] StatusOr<DhsCountResult> Count(uint64_t origin_node,
                                               uint64_t metric_id, Rng& rng);

 private:
  DhsFrontDoor(ShardedNetwork* engine, DhsClient client)
      : engine_(engine), client_(std::move(client)) {}

  /// Probe budget for bit r (the client's LimForBit: flat lim, or the
  /// eq. 6 adaptive value).
  int LimForBit(int bit) const;

  /// Builds the kProbe op for bit r (shared by both scan directions).
  ShardOp MakeProbeOp(uint64_t origin, int bit,
                      const std::vector<uint64_t>& metric_ids,
                      const IdInterval& interval, Rng& rng) const;

  void MaybeAudit() const;

  /// Root-span + metrics close-out, mirroring DhsClient::FinishOp
  /// (same instrument names and labels, ops "insert_batch" / "count").
  enum OpIndex { kOpInsertBatch = 0, kOpCount, kNumOps };
  struct OpMetrics {
    Counter* ops = nullptr;
    Counter* errors = nullptr;
    Histogram* hops = nullptr;
    Histogram* bytes = nullptr;
    Counter* retries = nullptr;
    Counter* failed_probes = nullptr;
  };
  const OpMetrics* MetricsFor(OpIndex op);
  void FinishOp(ScopedSpan& span, OpIndex op, const DhsCostReport& cost,
                bool ok);

  ShardedNetwork* engine_;
  DhsClient client_;
  MetricsRegistry* metrics_cached_ = nullptr;
  OpMetrics op_metrics_[kNumOps];
};

}  // namespace dhs

#endif  // DHS_DHS_FRONT_DOOR_H_
