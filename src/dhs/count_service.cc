#include "dhs/count_service.h"

#include <string>
#include <utility>

#include "dht/wire.h"

namespace dhs {

StatusOr<std::string> DhsCountService::Handle(uint64_t origin_node,
                                              std::string_view request_frame,
                                              Rng& rng) {
  auto request = DecodeCountRequest(request_frame);
  if (!request.ok()) return request.status();
  auto result = client_->CountMany(origin_node, request->metric_ids, rng);
  if (!result.ok()) return result.status();

  CountResponseFrame response;
  response.gave_up = result->gave_up;
  response.bitmaps_unresolved =
      result->bitmaps_unresolved < 0
          ? 0
          : static_cast<uint32_t>(result->bitmaps_unresolved);
  response.entries.reserve(request->metric_ids.size());
  for (size_t i = 0; i < request->metric_ids.size(); ++i) {
    CountResponseEntry entry;
    entry.estimate = result->estimates[i];
    entry.observables = result->observables[i];
    response.entries.push_back(std::move(entry));
  }
  return EncodeCountResponse(response);
}

}  // namespace dhs
