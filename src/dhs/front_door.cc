#include "dhs/front_door.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/check.h"
#include "dht/fault.h"
#include "dht/wire.h"
#include "dhs/lim.h"
#include "dhs/mapping.h"
#include "sketch/estimator.h"
#include "sketch/hyperloglog.h"

namespace dhs {

namespace {

// Extra ReplicaCandidates requested beyond the copies still needed
// (the client's kReplicaSlack), so unreachable candidates fall through.
constexpr int kReplicaSlack = 2;

// Indexed by DhsFrontDoor::OpIndex; the same op names the sequential
// client uses, so both paths feed the same metric series.
constexpr const char* kOpNames[] = {"insert_batch", "count"};

/// Folds one engine outcome into the client-style cost report. The
/// engine's charging rules mirror the sequential client's, so the
/// mapping is field-for-field.
void AccumulateCost(const ShardOpOutcome& outcome, DhsCostReport* cost) {
  cost->nodes_visited += static_cast<int>(outcome.visited.size());
  cost->hops += static_cast<int>(outcome.delta.hops);
  cost->bytes += outcome.delta.bytes;
  cost->dht_lookups += outcome.lookups_issued;
  cost->direct_probes += outcome.direct_issued;
  cost->retries += outcome.retries;
  cost->failed_probes += outcome.failed_candidates;
  cost->replicas_written += outcome.replicas_written;
}

}  // namespace

StatusOr<DhsFrontDoor> DhsFrontDoor::Create(ShardedNetwork* engine,
                                            const DhsConfig& config) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  auto client = DhsClient::Create(engine->network(), config);
  if (!client.ok()) return client.status();
  engine->set_retry_attempts(config.retry_attempts);
  return DhsFrontDoor(engine, std::move(client.value()));
}

int DhsFrontDoor::LimForBit(int bit, const DhsCountOptions& options) const {
  const DhsConfig& config = client_.config();
  const int flat = options.lim_override > 0
                       ? std::clamp(options.lim_override, 1, config.max_lim)
                       : config.lim;
  if (!config.adaptive_lim || config.expected_cardinality == 0) {
    return flat;
  }
  auto interval = client_.mapping().IntervalForBit(bit);
  if (!interval.ok()) return flat;
  const double fraction =
      std::ldexp(static_cast<double>(interval->size),
                 -network()->space().bits());
  const double n_bins =
      fraction * static_cast<double>(network()->NumNodes());
  if (n_bins < 2.0) return flat;
  const double n_items = std::ldexp(
      static_cast<double>(config.expected_cardinality), -(bit + 1));
  const int required = RequiredProbesReplicated(
      static_cast<uint64_t>(n_bins), static_cast<uint64_t>(n_items),
      config.m, config.replication,
      /*p_miss=*/1.0 - config.adaptive_confidence);
  return std::clamp(required, flat, config.max_lim);
}

void DhsFrontDoor::MaybeAudit() const {
  if (!client_.config().audit) return;
  CHECK_OK(network()->AuditFull()) << "after a sharded DHS operation";
  CHECK_OK(client_.AuditFull()) << "after a sharded DHS operation";
}

const DhsFrontDoor::OpMetrics* DhsFrontDoor::MetricsFor(OpIndex op) {
  MetricsRegistry* registry = network()->metrics();
  if (registry == nullptr) return nullptr;
  if (registry != metrics_cached_) {
    for (int i = 0; i < kNumOps; ++i) {
      const MetricLabels labels = {
          {"op", kOpNames[i]},
          {"geometry", network()->GeometryName()},
          {"estimator", DhsEstimatorName(client_.config().estimator)}};
      OpMetrics& m = op_metrics_[i];
      m.ops = registry->GetCounter("dhs_ops_total", labels);
      m.errors = registry->GetCounter("dhs_op_errors_total", labels);
      m.hops = registry->GetHistogram(
          "dhs_op_hops", {4, 16, 64, 256, 1024, 4096}, labels);
      m.bytes = registry->GetHistogram(
          "dhs_op_bytes", {64, 256, 1024, 4096, 16384, 65536}, labels);
      m.retries = registry->GetCounter("dhs_op_retries_total", labels);
      m.failed_probes =
          registry->GetCounter("dhs_op_failed_probes_total", labels);
    }
    const MetricLabels cache_labels = {
        {"geometry", network()->GeometryName()},
        {"estimator", DhsEstimatorName(client_.config().estimator)}};
    m_frontier_hits_ = registry->GetCounter(
        "dhs_frontier_cache_hits_total", cache_labels);
    m_frontier_misses_ = registry->GetCounter(
        "dhs_frontier_cache_misses_total", cache_labels);
    metrics_cached_ = registry;
  }
  return &op_metrics_[op];
}

void DhsFrontDoor::FinishOp(ScopedSpan& span, OpIndex op,
                            const DhsCostReport& cost, bool ok) {
  if (span.active()) {
    span.Arg(TraceArg::Str("op", kOpNames[op]));
    span.Arg(TraceArg::Bool("ok", ok));
    span.Arg(TraceArg::I64("nodes_visited", cost.nodes_visited));
    span.Arg(TraceArg::I64("op_hops", cost.hops));
    span.Arg(TraceArg::U64("op_bytes", cost.bytes));
    span.Arg(TraceArg::I64("dht_lookups", cost.dht_lookups));
    span.Arg(TraceArg::I64("direct_probes", cost.direct_probes));
    span.Arg(TraceArg::I64("retries", cost.retries));
    span.Arg(TraceArg::I64("failed_probes", cost.failed_probes));
    span.Arg(TraceArg::I64("replicas_requested", cost.replicas_requested));
    span.Arg(TraceArg::I64("replicas_written", cost.replicas_written));
    span.Arg(TraceArg::I64("bit_groups_failed", cost.bit_groups_failed));
  }
  const OpMetrics* m = MetricsFor(op);
  if (m == nullptr) return;
  m->ops->Increment();
  if (!ok) m->errors->Increment();
  m->hops->Observe(cost.hops);
  m->bytes->Observe(static_cast<double>(cost.bytes));
  m->retries->Increment(static_cast<uint64_t>(cost.retries));
  m->failed_probes->Increment(static_cast<uint64_t>(cost.failed_probes));
}

StatusOr<CompiledInsertBatch> DhsFrontDoor::CompileInsertBatch(
    uint64_t origin_node, uint64_t metric_id,
    const std::vector<uint64_t>& item_hashes, Rng& rng) {
  if (!network()->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  const DhsConfig& config = client_.config();
  if (config.frontier_cache) frontier_.erase(metric_id);

  // §3.2 bulk insertion: one kPut per bit position carrying that
  // position's deduplicated vector updates.
  std::map<int, std::set<int>> by_bit;
  for (uint64_t hash : item_hashes) {
    const DhsPlacement placement = client_.PlaceItem(hash);
    if (placement.rho < config.shift_bits) continue;
    by_bit[placement.rho].insert(placement.vector_id);
  }

  CompiledInsertBatch compiled;
  compiled.groups_total = by_bit.size();
  compiled.ops.reserve(by_bit.size());
  for (const auto& [bit, vectors] : by_bit) {
    auto interval = client_.mapping().IntervalForBit(bit);
    if (!interval.ok()) {
      compiled.cost.bit_groups_failed += 1;
      if (compiled.first_failure.ok()) {
        compiled.first_failure = interval.status();
      }
      continue;
    }
    ShardOp op;
    op.kind = ShardOp::kPut;
    op.origin = origin_node;
    op.key = client_.mapping().RandomIdIn(*interval, rng);
    op.interval = *interval;
    op.payload_bytes = config.TupleBytes() * vectors.size();
    op.put_keys.reserve(vectors.size());
    for (int vector_id : vectors) {
      op.put_keys.push_back(MakeDhsKey(metric_id, bit, vector_id));
    }
    op.ttl_ticks = config.ttl_ticks;
    op.replication = config.replication;
    op.replica_slack = kReplicaSlack;
    // Hand the engine the encoded kPut frame; it re-derives the routed
    // fields from the wire bytes (shard.h ShardOp::frame).
    PutFrame put;
    put.dst_key = op.key;
    put.metric_id = metric_id;
    put.expiry = config.ttl_ticks;
    put.keys = op.put_keys;
    op.frame = EncodePut(put);
    compiled.ops.push_back(std::move(op));
    compiled.cost.replicas_requested += config.replication;
  }
  return compiled;
}

Status DhsFrontDoor::FoldInsertOutcomes(const CompiledInsertBatch& compiled,
                                        const ShardOpOutcome* outcomes,
                                        size_t num_outcomes,
                                        DhsCostReport* cost) {
  CHECK_EQ(num_outcomes, compiled.ops.size())
      << "outcome slice does not match the compiled batch";
  *cost = compiled.cost;
  Status first_failure = compiled.first_failure;
  for (size_t i = 0; i < num_outcomes; ++i) {
    AccumulateCost(outcomes[i], cost);
    if (!outcomes[i].status.ok()) {
      // A failed primary write degrades this group only, as in the
      // sequential InsertBatch.
      cost->bit_groups_failed += 1;
      if (first_failure.ok()) first_failure = outcomes[i].status;
    }
  }
  const bool all_failed = !first_failure.ok() &&
      cost->bit_groups_failed == static_cast<int>(compiled.groups_total);
  if (all_failed) return first_failure;  // nothing was stored
  return Status::OK();
}

StatusOr<DhsCostReport> DhsFrontDoor::InsertBatch(
    uint64_t origin_node, uint64_t metric_id,
    const std::vector<uint64_t>& item_hashes, Rng& rng) {
  if (!network()->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  ScopedSpan span(network()->tracer(), "insert_batch");
  if (span.active()) {
    span.Arg(TraceArg::U64("metric", metric_id));
    span.Arg(TraceArg::U64("items", item_hashes.size()));
  }
  auto compiled = CompileInsertBatch(origin_node, metric_id, item_hashes, rng);
  if (!compiled.ok()) return compiled.status();

  std::vector<ShardOpOutcome> outcomes;
  if (!compiled->ops.empty()) {
    auto executed = engine_->ExecuteBatch(compiled->ops);
    if (!executed.ok()) return executed.status();
    outcomes = std::move(executed.value());
  }
  DhsCostReport cost;
  const Status folded =
      FoldInsertOutcomes(*compiled, outcomes.data(), outcomes.size(), &cost);

  MaybeAudit();
  FinishOp(span, kOpInsertBatch, cost, folded.ok());
  if (!folded.ok()) return folded;
  return cost;
}

ShardOp DhsFrontDoor::MakeProbeOp(uint64_t origin, int bit,
                                  const std::vector<uint64_t>& metric_ids,
                                  const IdInterval& interval,
                                  const DhsCountOptions& options,
                                  Rng& rng) const {
  const DhsConfig& config = client_.config();
  ShardOp op;
  op.kind = ShardOp::kProbe;
  op.origin = origin;
  op.key = client_.mapping().RandomIdIn(interval, rng);
  op.interval = interval;
  op.payload_bytes = config.ProbeRequestBytes();
  op.lim = LimForBit(bit, options);
  op.queries.reserve(metric_ids.size());
  for (uint64_t metric_id : metric_ids) {
    op.queries.emplace_back(metric_id, bit);
  }
  op.response_base_bytes = config.ProbeResponseBytes(0);
  op.response_per_record_bytes =
      config.ProbeResponseBytes(1) - config.ProbeResponseBytes(0);
  ProbeOpenFrame probe;
  probe.target_key = op.key;
  probe.bit = bit;
  op.frame = EncodeProbeOpen(probe);
  return op;
}

StatusOr<DhsClient::MultiCountResult> DhsFrontDoor::CountMany(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids,
    Rng& rng) {
  return CountMany(origin_node, metric_ids, rng, DhsCountOptions{});
}

StatusOr<DhsClient::MultiCountResult> DhsFrontDoor::CountMany(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
    const DhsCountOptions& options) {
  if (metric_ids.empty()) {
    return Status::InvalidArgument("no metrics given");
  }
  if (!network()->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  const DhsConfig& config = client_.config();
  const BitMapping& mapping = client_.mapping();
  ScopedSpan span(network()->tracer(), "count");
  if (span.active()) {
    span.Arg(TraceArg::U64("metrics", metric_ids.size()));
  }

  const bool pcsa = config.estimator == DhsEstimator::kPcsa;

  // Frontier cache (sLL/HLL): when every metric of the sweep has a
  // cached raw observable set, bits above the cached max rho were
  // empty at the last complete count — absent (invalidating) inserts,
  // decay can only have emptied more — so the sweep starts at the
  // frontier (the client's cache semantics on the sharded path).
  int start_bit = mapping.MaxBit();
  if (config.frontier_cache && !pcsa) {
    MetricsFor(kOpCount);  // interns the hit/miss counters
    bool hit = true;
    int frontier = mapping.MinBit() - 1;
    for (uint64_t metric_id : metric_ids) {
      auto it = frontier_.find(metric_id);
      if (it == frontier_.end()) {
        hit = false;
        break;
      }
      for (int v : it->second) frontier = std::max(frontier, v);
    }
    if (hit) {
      start_bit = std::min(start_bit, frontier);
      if (m_frontier_hits_ != nullptr) m_frontier_hits_->Increment();
    } else {
      if (m_frontier_misses_ != nullptr) m_frontier_misses_->Increment();
    }
  }

  // One kProbe per bit interval, issued as a single batch in scan
  // order (the sequential client scans sequentially and can stop
  // early; the batch always sweeps the full range below the start bit
  // — the extra probes cannot change the observables, only the cost).
  std::vector<int> bits;
  if (pcsa) {
    for (int r = mapping.MinBit(); r <= mapping.MaxBit(); ++r) {
      bits.push_back(r);
    }
  } else {
    for (int r = start_bit; r >= mapping.MinBit(); --r) {  // high -> low
      bits.push_back(r);
    }
  }

  std::vector<ShardOp> ops;
  ops.reserve(bits.size());
  for (int r : bits) {
    auto interval = mapping.IntervalForBit(r);
    if (!interval.ok()) {
      FinishOp(span, kOpCount, DhsCostReport{}, /*ok=*/false);
      return interval.status();
    }
    ops.push_back(
        MakeProbeOp(origin_node, r, metric_ids, *interval, options, rng));
  }

  auto outcomes = engine_->ExecuteBatch(ops);
  if (!outcomes.ok()) {
    FinishOp(span, kOpCount, DhsCostReport{}, /*ok=*/false);
    return outcomes.status();
  }

  const size_t num_metrics = metric_ids.size();
  const int m = config.m;
  DhsClient::MultiCountResult result;
  result.observables.assign(num_metrics, std::vector<int>(m, -1));

  // Replay the outcomes in scan order with the sequential client's
  // resolution rules, so observables / gave_up / bitmaps_unresolved
  // match the sequential semantics bit for bit. Costs accumulate over
  // every probed interval (the full sweep).
  for (const ShardOpOutcome& outcome : *outcomes) {
    AccumulateCost(outcome, &result.cost);
    if (!outcome.status.ok() && !IsTransientFault(outcome.status)) {
      FinishOp(span, kOpCount, DhsCostReport{}, /*ok=*/false);
      return outcome.status;
    }
  }

  if (!pcsa) {
    // sLL/HLL: first set bit found (high -> low) is the max rho.
    size_t total_unresolved = num_metrics * static_cast<size_t>(m);
    for (size_t i = 0; i < bits.size() && total_unresolved > 0; ++i) {
      const ShardOpOutcome& outcome = (*outcomes)[i];
      const int r = bits[i];
      if (!outcome.status.ok()) {  // interval abandoned
        result.gave_up = true;
        result.bitmaps_unresolved = std::max(
            result.bitmaps_unresolved, static_cast<int>(total_unresolved));
        continue;
      }
      for (size_t v = 0; v < outcome.visited.size(); ++v) {
        for (size_t mi = 0; mi < num_metrics; ++mi) {
          std::vector<int>& observed = result.observables[mi];
          for (int vec : outcome.found[v][mi]) {
            if (vec < m && observed[vec] < 0) {
              observed[vec] = r;
              --total_unresolved;
            }
          }
        }
      }
    }
    // Cache raw observables (before the bit-shift backfill mutates
    // them) — only from a fully resolved count: an abandoned interval
    // OR a skipped probe candidate (failed_probes) could have hidden a
    // higher rho, and caching it would pin future scans low.
    if (config.frontier_cache && !result.gave_up &&
        result.cost.failed_probes == 0) {
      for (size_t mi = 0; mi < num_metrics; ++mi) {
        StoreFrontier(metric_ids[mi], result.observables[mi]);
      }
    }
    result.estimates.reserve(num_metrics);
    for (auto& observed : result.observables) {
      const bool all_empty = std::all_of(
          observed.begin(), observed.end(), [](int v) { return v < 0; });
      if (!all_empty && config.shift_bits > 0) {
        // Bit-shift rule: unobserved bitmaps still have rho up to
        // shift_bits - 1 among the assumed-set positions.
        for (int& v : observed) {
          if (v < 0) v = config.shift_bits - 1;
        }
      }
      result.estimates.push_back(
          config.estimator == DhsEstimator::kHyperLogLog
              ? HyperLogLogEstimateFromM(observed)
              : SuperLogLogEstimateFromM(observed, config.theta0));
    }
  } else {
    // PCSA: the observable is the first position (low -> high) with no
    // set bit found (the leftmost zero).
    size_t total_open = num_metrics * static_cast<size_t>(m);
    std::vector<std::vector<char>> observed_here(
        num_metrics, std::vector<char>(static_cast<size_t>(m), 0));
    for (size_t i = 0; i < bits.size() && total_open > 0; ++i) {
      const ShardOpOutcome& outcome = (*outcomes)[i];
      const int r = bits[i];
      if (!outcome.status.ok()) {
        // No information at r: leave open bitmaps open (mildly high)
        // rather than collapsing them to r.
        result.gave_up = true;
        result.bitmaps_unresolved = std::max(result.bitmaps_unresolved,
                                             static_cast<int>(total_open));
        continue;
      }
      for (auto& flags : observed_here) {
        std::fill(flags.begin(), flags.end(), 0);
      }
      for (size_t v = 0; v < outcome.visited.size(); ++v) {
        for (size_t mi = 0; mi < num_metrics; ++mi) {
          for (int vec : outcome.found[v][mi]) {
            if (vec < m && result.observables[mi][vec] < 0) {
              observed_here[mi][static_cast<size_t>(vec)] = 1;
            }
          }
        }
      }
      for (size_t mi = 0; mi < num_metrics; ++mi) {
        for (int v = 0; v < m; ++v) {
          if (result.observables[mi][v] < 0 && !observed_here[mi][v]) {
            result.observables[mi][v] = r;
            --total_open;
          }
        }
      }
    }
    // Bitmaps saturated through the last position.
    for (auto& observed : result.observables) {
      for (int& v : observed) {
        if (v < 0) v = mapping.MaxBit() + 1;
      }
    }
    result.estimates.reserve(num_metrics);
    for (const auto& observed : result.observables) {
      result.estimates.push_back(PcsaEstimateFromM(observed));
    }
  }

  MaybeAudit();
  if (span.active()) {
    span.Arg(TraceArg::Bool("gave_up", result.gave_up));
  }
  FinishOp(span, kOpCount, result.cost, /*ok=*/true);
  return result;
}

void DhsFrontDoor::StoreFrontier(uint64_t metric_id,
                                 const std::vector<int>& observables) {
  auto it = frontier_.find(metric_id);
  if (it != frontier_.end()) {
    it->second = observables;
    return;
  }
  if (client_.config().frontier_max_entries > 0 &&
      frontier_.size() >=
          static_cast<size_t>(client_.config().frontier_max_entries)) {
    frontier_.erase(frontier_.begin());
  }
  frontier_.emplace(metric_id, observables);
}

StatusOr<DhsCountResult> DhsFrontDoor::Count(uint64_t origin_node,
                                             uint64_t metric_id, Rng& rng) {
  auto many = CountMany(origin_node, {metric_id}, rng);
  if (!many.ok()) return many.status();
  DhsCountResult result;
  result.estimate = many->estimates[0];
  result.observables = std::move(many->observables[0]);
  result.gave_up = many->gave_up;
  result.bitmaps_unresolved = many->bitmaps_unresolved;
  result.cost = many->cost;
  return result;
}

}  // namespace dhs
