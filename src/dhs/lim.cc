#include "dhs/lim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dhs {

double ProbAllProbesEmpty(uint64_t n_bins, uint64_t n_items, int t) {
  CHECK_GT(n_bins, 0u);
  if (n_items == 0) return 1.0;
  if (t <= 0) return 1.0;
  if (static_cast<uint64_t>(t) >= n_bins) return 0.0;
  const double ratio =
      static_cast<double>(n_bins - static_cast<uint64_t>(t)) /
      static_cast<double>(n_bins);
  return std::pow(ratio, static_cast<double>(n_items));
}

int RequiredProbes(uint64_t n_bins, uint64_t n_items, double p_miss) {
  CHECK_GT(n_bins, 0u);
  CHECK(p_miss > 0.0 && p_miss < 1.0) << "p_miss = " << p_miss;
  if (n_items == 0) return static_cast<int>(n_bins);  // can never succeed
  // t >= N' * (1 - p_miss^(1/n')): probing that many bins leaves the
  // all-empty probability below p_miss (see lim.h on the paper's
  // notation).
  const double exponent = 1.0 / static_cast<double>(n_items);
  const double t = static_cast<double>(n_bins) *
                   (1.0 - std::pow(p_miss, exponent));
  return std::max(1, static_cast<int>(std::ceil(t)));
}

int RequiredProbesReplicated(uint64_t n_bins, uint64_t n_items, int m,
                             int replication, double p_miss) {
  CHECK_GT(n_bins, 0u);
  CHECK(m >= 1 && replication >= 1);
  CHECK(p_miss > 0.0 && p_miss < 1.0) << "p_miss = " << p_miss;
  if (n_items == 0) return static_cast<int>(n_bins);
  const double alpha =
      static_cast<double>(n_items) / static_cast<double>(n_bins);
  const double exponent =
      static_cast<double>(m) /
      (static_cast<double>(replication) * alpha *
       static_cast<double>(n_bins));
  const double t = static_cast<double>(n_bins) *
                   (1.0 - std::pow(p_miss, exponent));
  return std::max(1, static_cast<int>(std::ceil(t)));
}

double HitProbability(uint64_t n_bins, uint64_t n_items, int lim) {
  return 1.0 - ProbAllProbesEmpty(n_bins, n_items, lim);
}

}  // namespace dhs
