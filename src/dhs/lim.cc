#include "dhs/lim.h"

#include <algorithm>
#include <cmath>

#include <cstdint>
#include <limits>

#include "common/check.h"

namespace dhs {

namespace {

// Probe budgets are ints, but n_bins is a bin count that can exceed
// INT_MAX (Internet-scale N'): saturate instead of letting the
// narrowing cast wrap negative.
int SaturateToInt(uint64_t n) {
  constexpr uint64_t kMax =
      static_cast<uint64_t>(std::numeric_limits<int>::max());
  return n > kMax ? std::numeric_limits<int>::max() : static_cast<int>(n);
}

// Pins a real-valued probe requirement to the representable range
// [1, n_bins]: ceil(t) probes, never fewer than one, never more than
// there are bins to probe (t can also be inf/NaN when the formula's
// exponent underflows for extreme inputs).
int PinProbes(double t, uint64_t n_bins) {
  const int cap = SaturateToInt(n_bins);
  if (!(t > 0.0)) return 1;
  if (t >= static_cast<double>(cap)) return cap;
  return std::clamp(static_cast<int>(std::ceil(t)), 1, cap);
}

}  // namespace

double ProbAllProbesEmpty(uint64_t n_bins, uint64_t n_items, int t) {
  CHECK_GT(n_bins, 0u);
  if (n_items == 0) return 1.0;
  if (t <= 0) return 1.0;
  if (static_cast<uint64_t>(t) >= n_bins) return 0.0;
  const double ratio =
      static_cast<double>(n_bins - static_cast<uint64_t>(t)) /
      static_cast<double>(n_bins);
  return std::pow(ratio, static_cast<double>(n_items));
}

int RequiredProbes(uint64_t n_bins, uint64_t n_items, double p_miss) {
  CHECK_GT(n_bins, 0u);
  CHECK(p_miss > 0.0 && p_miss < 1.0) << "p_miss = " << p_miss;
  if (n_items == 0) return SaturateToInt(n_bins);  // can never succeed
  // t >= N' * (1 - p_miss^(1/n')): probing that many bins leaves the
  // all-empty probability below p_miss (see lim.h on the paper's
  // notation).
  const double exponent = 1.0 / static_cast<double>(n_items);
  const double t = static_cast<double>(n_bins) *
                   (1.0 - std::pow(p_miss, exponent));
  return PinProbes(t, n_bins);
}

int RequiredProbesReplicated(uint64_t n_bins, uint64_t n_items, int m,
                             int replication, double p_miss) {
  CHECK_GT(n_bins, 0u);
  CHECK(m >= 1 && replication >= 1);
  CHECK(p_miss > 0.0 && p_miss < 1.0) << "p_miss = " << p_miss;
  if (n_items == 0) return SaturateToInt(n_bins);
  const double alpha =
      static_cast<double>(n_items) / static_cast<double>(n_bins);
  const double exponent =
      static_cast<double>(m) /
      (static_cast<double>(replication) * alpha *
       static_cast<double>(n_bins));
  const double t = static_cast<double>(n_bins) *
                   (1.0 - std::pow(p_miss, exponent));
  return PinProbes(t, n_bins);
}

double HitProbability(uint64_t n_bins, uint64_t n_items, int lim) {
  return 1.0 - ProbAllProbesEmpty(n_bins, n_items, lim);
}

int FlatLimTarget(uint64_t nodes, uint64_t cardinality, int min_bit,
                  int max_bit, int m, int replication, double p_miss,
                  int floor, int ceiling) {
  CHECK(floor >= 1 && ceiling >= floor)
      << "floor = " << floor << " ceiling = " << ceiling;
  CHECK(min_bit >= 0 && max_bit >= min_bit)
      << "min_bit = " << min_bit << " max_bit = " << max_bit;
  CHECK(p_miss > 0.0 && p_miss < 1.0) << "p_miss = " << p_miss;
  if (nodes < 2 || cardinality == 0) return floor;
  int target = floor;
  for (int r = min_bit; r <= max_bit; ++r) {
    const double n_bins = std::ldexp(static_cast<double>(nodes),
                                     -(r - min_bit + 1));
    // Intervals shrink geometrically with r, so once one drops below
    // two expected nodes every later one has too.
    if (n_bins < 2.0) break;
    const double n_items =
        std::ldexp(static_cast<double>(cardinality), -(r + 1));
    if (n_items < 1.0) continue;
    const int required = RequiredProbesReplicated(
        static_cast<uint64_t>(n_bins), static_cast<uint64_t>(n_items), m,
        replication, p_miss);
    target = std::max(target, required);
  }
  return std::clamp(target, floor, ceiling);
}

}  // namespace dhs
