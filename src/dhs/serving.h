// High-throughput DHS serving layer: the front-end that turns many
// client requests into few engine waves.
//
// Callers submit Count / InsertBatch requests as tickets; Flush
// executes everything pending in one deterministic pass and fans
// results back out:
//
//   * Coalescing — concurrent counts of the same metric set become ONE
//     probe wave whose result answers every waiter (hot metrics under
//     a Zipf-skewed tenant mix are counted once per flush, not once
//     per request).
//   * Pipelining — pending insert batches compile to their §3.2 kPut
//     groups up front and execute as a single engine batch instead of
//     one interval at a time (sound because kPut ops never read
//     stores, fault ordinals accumulate across batches, and the
//     virtual clock is frozen inside a batch — see front_door.h
//     CompiledInsertBatch).
//   * Frontier cache — the backend's memoized flat-bit frontier
//     (client.h) answers repeat counts from the cached start bit; the
//     serving layer closes the invalidation loop, invalidating on
//     inserts (backend-side), on degraded count waves
//     (invalidate_on_fault) and on external signals
//     (InvalidateMetric, e.g. a maintainer migration).
//   * Adaptive lim — an online tuner (LimTuner) nudges the count probe
//     budget toward the eq. 5/6 prediction (lim.h FlatLimTarget) from
//     observed wave outcomes, passed to the backend as
//     DhsCountOptions::lim_override.
//
// Headline guarantee: served answers are byte-identical to the
// unoptimized path under fixed seeds. Every wave is appended to a
// replayable log (wave_log); replaying the log through a plain
// DhsClient / DhsFrontDoor with an identically seeded RNG reproduces
// every estimate, observable and DhsCostReport bit for bit (pinned by
// tests/dhs/serving_test.cc and the audit_sim --serving differential
// leg).

#ifndef DHS_DHS_SERVING_H_
#define DHS_DHS_SERVING_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dhs/client.h"
#include "dhs/config.h"
#include "dhs/front_door.h"
#include "obs/serving_metrics.h"

namespace dhs {

struct DhsServingConfig {
  /// Merge pending counts of the same metric set into one wave.
  bool coalesce_counts = true;
  /// Merge pending insert batches into one engine batch (front-door
  /// backends only; the sequential client has no batch hand-off).
  bool pipeline_inserts = true;
  /// Invalidate the cached frontier of every metric served by a
  /// degraded count wave (gave_up or failed probes): the degradation
  /// is evidence the world changed under the cache.
  bool invalidate_on_fault = true;

  /// Enable the online lim tuner. Off by default: with the tuner off
  /// the serving layer never overrides the backend's configured lim.
  bool tune_lim = false;
  /// Fraction of the gap to the eq. 5/6 target closed per observation
  /// (damped so a noisy single wave cannot whipsaw the budget).
  double tuner_gain = 0.5;
  /// Clamp range for the tuned lim; ceiling 0 means the backend's
  /// max_lim.
  int tuner_floor = 1;
  int tuner_ceiling = 0;
  /// Residual miss probability fed to the eq. 5/6 calculator; 0 means
  /// 1 - backend adaptive_confidence.
  double tuner_p_miss = 0.0;

  Status Validate() const;
};

/// Online probe-budget tuner: one damped step per observed count wave
/// toward the eq. 5/6 required-probes target, with degraded waves
/// pushing the goal one band above the target (the wave's outcome says
/// the prediction was optimistic). Deterministic: the trajectory is a
/// pure function of the observation sequence.
class LimTuner {
 public:
  LimTuner(int initial, int floor, int ceiling, double gain);

  /// Feeds one count-wave outcome: `target` is the eq. 5/6 prediction
  /// for the wave's observed cardinality, `degraded` whether the wave
  /// gave up or skipped probe candidates.
  void Observe(int target, bool degraded);

  int lim() const { return lim_; }
  int target() const { return target_; }
  /// Convergence tolerance: one "retry band" around the target.
  int band() const { return target_ > 0 ? (target_ + 3) / 4 : 1; }
  bool Converged() const {
    return observations_ > 0 && std::abs(lim_ - target_) <= band();
  }
  int observations() const { return observations_; }

 private:
  int lim_;
  int floor_;
  int ceiling_;
  double gain_;
  int target_ = 0;
  int observations_ = 0;
};

/// One executed serving decision, in execution order. Replaying the
/// log against a plain backend (same world, same seed) reproduces the
/// serving layer's answers byte for byte:
///   kInsertWave  -> InsertBatch(origin, metric_id, hashes)
///   kCountWave   -> CountMany(origin, metric_ids, {lim_override})
///   kInvalidate  -> InvalidateFrontier(metric_id)
struct ServingWave {
  enum Kind { kInsertWave, kCountWave, kInvalidate };
  Kind kind = kCountWave;
  uint64_t origin = 0;
  uint64_t metric_id = 0;             // kInsertWave / kInvalidate
  std::vector<uint64_t> metric_ids;   // kCountWave
  std::vector<uint64_t> hashes;       // kInsertWave
  int lim_override = 0;               // kCountWave (0 = backend lim)
  size_t waiters = 1;                 // requests answered by this wave
};

struct ServingStats {
  uint64_t count_requests = 0;
  uint64_t count_waves = 0;      // backend CountMany calls issued
  uint64_t coalesced = 0;        // count requests served by another's wave
  uint64_t insert_requests = 0;
  uint64_t insert_waves = 0;     // engine insert batches issued
  uint64_t degraded_waves = 0;   // count waves that gave up / skipped probes
  uint64_t invalidations = 0;    // frontier entries dropped by this layer
  uint64_t flushes = 0;
};

class DhsServing {
 public:
  /// The backend (and its network) must outlive the serving layer.
  /// Exactly one backend: the sharded front door (full pipelining) or
  /// the sequential client (pipeline_inserts degrades to sequential
  /// execution — the client has no batch hand-off).
  static StatusOr<DhsServing> Create(DhsFrontDoor* front_door,
                                     const DhsServingConfig& config);
  static StatusOr<DhsServing> Create(DhsClient* client,
                                     const DhsServingConfig& config);

  /// Ticket interface: Submit* enqueues, Flush executes everything
  /// pending (inserts first, then counts), Take* claims a result once
  /// (a ticket is claimable after the flush that executed it).
  uint64_t SubmitCount(uint64_t origin_node, std::vector<uint64_t> metric_ids);
  uint64_t SubmitInsertBatch(uint64_t origin_node, uint64_t metric_id,
                             std::vector<uint64_t> item_hashes);
  [[nodiscard]] Status Flush(Rng& rng);
  [[nodiscard]] StatusOr<DhsClient::MultiCountResult> TakeCount(
      uint64_t ticket);
  [[nodiscard]] StatusOr<DhsCostReport> TakeInsert(uint64_t ticket);

  /// Synchronous conveniences: submit + flush + take in one call.
  [[nodiscard]] StatusOr<DhsCountResult> Count(uint64_t origin_node,
                                               uint64_t metric_id, Rng& rng);
  [[nodiscard]] StatusOr<DhsClient::MultiCountResult> CountMany(
      uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng);
  [[nodiscard]] StatusOr<DhsCostReport> InsertBatch(
      uint64_t origin_node, uint64_t metric_id,
      const std::vector<uint64_t>& item_hashes, Rng& rng);

  /// External invalidation signal (client.h InvalidateFrontier): call
  /// when state changed behind the serving layer's back — an insert
  /// through another client, a maintainer republish after migration.
  void InvalidateMetric(uint64_t metric_id);
  void InvalidateAll();

  const DhsConfig& config() const {
    return door_ != nullptr ? door_->config() : client_->config();
  }
  const DhsServingConfig& serving_config() const { return config_; }
  DhtNetwork* network() const {
    return door_ != nullptr ? door_->network() : client_->network();
  }
  const ServingStats& stats() const { return stats_; }

  /// The replayable wave log (cleared by the caller between phases so
  /// it does not grow without bound in soaks).
  const std::vector<ServingWave>& wave_log() const { return wave_log_; }
  void ClearWaveLog() { wave_log_.clear(); }

  /// Null unless tune_lim is on.
  const LimTuner* tuner() const { return tune_lim_ ? &tuner_ : nullptr; }
  /// The lim_override the next count wave will carry (0 = none).
  int lim_override() const { return tune_lim_ ? tuner_.lim() : 0; }

  size_t PendingCounts() const { return pending_counts_.size(); }
  size_t PendingInserts() const { return pending_inserts_.size(); }

 private:
  DhsServing(DhsFrontDoor* door, DhsClient* client,
             const DhsServingConfig& config);

  struct PendingCount {
    uint64_t ticket;
    uint64_t origin;
    std::vector<uint64_t> metric_ids;
  };
  struct PendingInsert {
    uint64_t ticket;
    uint64_t origin;
    uint64_t metric_id;
    std::vector<uint64_t> hashes;
  };

  [[nodiscard]] Status FlushInserts(Rng& rng);
  void FlushCounts(Rng& rng);
  /// Executes one coalesced count wave and fans the result out to
  /// `group` (ticket indices into pending_counts_).
  void RunCountWave(const std::vector<size_t>& group, Rng& rng);
  /// Tuner + invalidate-on-fault bookkeeping after a completed wave.
  void ObserveCountWave(const PendingCount& head,
                        const DhsClient::MultiCountResult& result);

  [[nodiscard]] StatusOr<DhsClient::MultiCountResult> BackendCount(
      uint64_t origin, const std::vector<uint64_t>& metric_ids, Rng& rng,
      const DhsCountOptions& options);
  void BackendInvalidate(uint64_t metric_id);

  DhsFrontDoor* door_;   // exactly one of door_ / client_ is set
  DhsClient* client_;
  DhsServingConfig config_;
  bool tune_lim_;
  LimTuner tuner_;
  ServingMetrics metrics_;
  MetricsRegistry* metrics_attached_ = nullptr;
  void MaybeAttachMetrics();

  uint64_t next_ticket_ = 1;
  std::vector<PendingCount> pending_counts_;
  std::vector<PendingInsert> pending_inserts_;
  std::map<uint64_t, StatusOr<DhsClient::MultiCountResult>> count_results_;
  std::map<uint64_t, StatusOr<DhsCostReport>> insert_results_;

  ServingStats stats_;
  std::vector<ServingWave> wave_log_;
};

}  // namespace dhs

#endif  // DHS_DHS_SERVING_H_
