#include "dhs/config.h"

#include <limits>

#include "common/bit_util.h"

namespace dhs {

const char* DhsEstimatorName(DhsEstimator estimator) {
  switch (estimator) {
    case DhsEstimator::kPcsa:
      return "DHS-PCSA";
    case DhsEstimator::kSuperLogLog:
      return "DHS-sLL";
    case DhsEstimator::kHyperLogLog:
      return "DHS-HLL";
  }
  return "unknown";
}

int DhsConfig::IndexBits() const {
  return m > 1 ? Log2Floor(static_cast<uint64_t>(m)) : 0;
}

Status DhsConfig::Validate(const IdSpace& space) const {
  if (k < 4 || k > space.bits()) {
    return Status::InvalidArgument("k must be in [4, L]");
  }
  if (m < 1 || m > (1 << 16) || !IsPowerOfTwo(static_cast<uint64_t>(m))) {
    return Status::InvalidArgument("m must be a power of two in [1, 65536]");
  }
  if (estimator == DhsEstimator::kSuperLogLog && m < 2) {
    return Status::InvalidArgument("super-LogLog needs m >= 2");
  }
  if (estimator == DhsEstimator::kHyperLogLog && m < 16) {
    return Status::InvalidArgument("HyperLogLog needs m >= 16");
  }
  if (IndexBits() + k > space.bits()) {
    return Status::InvalidArgument("k + log2(m) must be <= L");
  }
  if (lim < 1) {
    return Status::InvalidArgument("lim must be >= 1");
  }
  if (replication < 1) {
    return Status::InvalidArgument("replication degree must be >= 1");
  }
  if (retry_attempts < 1) {
    return Status::InvalidArgument("retry_attempts must be >= 1");
  }
  if (retry_backoff_ticks > 0) {
    // The backoff ladder doubles per attempt (client.h
    // RetryBackoffTicks); the deepest shift a run can reach must not
    // overflow the 64-bit tick counter, or the virtual clock would leap
    // to nonsense on the last retries.
    const int max_shift = retry_attempts - 1;
    if (max_shift >= 64 ||
        retry_backoff_ticks >
            (std::numeric_limits<uint64_t>::max() >> max_shift)) {
      return Status::InvalidArgument(
          "retry_backoff_ticks << (retry_attempts - 1) must fit in 64 bits");
    }
  }
  if (shift_bits < 0 || shift_bits >= RhoBits()) {
    return Status::InvalidArgument("shift_bits must be in [0, k - log2 m)");
  }
  if (theta0 <= 0.0 || theta0 > 1.0) {
    return Status::InvalidArgument("theta0 must be in (0, 1]");
  }
  if (adaptive_confidence <= 0.0 || adaptive_confidence >= 1.0) {
    return Status::InvalidArgument("adaptive_confidence must be in (0, 1)");
  }
  if (max_lim < lim) {
    return Status::InvalidArgument("max_lim must be >= lim");
  }
  if (frontier_max_entries < 0) {
    return Status::InvalidArgument("frontier_max_entries must be >= 0");
  }
  return Status::OK();
}

}  // namespace dhs
