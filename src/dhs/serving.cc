#include "dhs/serving.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "dhs/lim.h"
#include "obs/trace.h"

namespace dhs {

Status DhsServingConfig::Validate() const {
  if (tuner_gain <= 0.0 || tuner_gain > 1.0) {
    return Status::InvalidArgument("tuner_gain must be in (0, 1]");
  }
  if (tuner_floor < 1) {
    return Status::InvalidArgument("tuner_floor must be >= 1");
  }
  if (tuner_ceiling != 0 && tuner_ceiling < tuner_floor) {
    return Status::InvalidArgument("tuner_ceiling must be 0 or >= tuner_floor");
  }
  if (tuner_p_miss < 0.0 || tuner_p_miss >= 1.0) {
    return Status::InvalidArgument("tuner_p_miss must be in [0, 1)");
  }
  return Status::OK();
}

LimTuner::LimTuner(int initial, int floor, int ceiling, double gain)
    : lim_(std::clamp(initial, floor, ceiling)),
      floor_(floor),
      ceiling_(ceiling),
      gain_(gain) {
  CHECK(floor >= 1 && ceiling >= floor) << "invalid tuner clamp range";
  CHECK(gain > 0.0 && gain <= 1.0) << "invalid tuner gain";
}

void LimTuner::Observe(int target, bool degraded) {
  target_ = std::clamp(target, floor_, ceiling_);
  ++observations_;
  // A degraded wave says the prediction was optimistic for the live
  // world (faults, churn): aim one band above it so the next waves
  // have slack to complete.
  const int goal =
      degraded ? std::min(target_ + band(), ceiling_) : target_;
  const int gap = goal - lim_;
  if (gap == 0) return;
  // Damped step: close `gain` of the gap, always at least one probe of
  // progress, never past the goal (gain <= 1 implies step <= |gap|).
  const int step = std::max(
      1,
      static_cast<int>(std::ceil(gain_ * static_cast<double>(std::abs(gap)))));
  lim_ = std::clamp(lim_ + (gap > 0 ? step : -step), floor_, ceiling_);
}

StatusOr<DhsServing> DhsServing::Create(DhsFrontDoor* front_door,
                                        const DhsServingConfig& config) {
  if (front_door == nullptr) {
    return Status::InvalidArgument("front door must not be null");
  }
  Status s = config.Validate();
  if (!s.ok()) return s;
  return DhsServing(front_door, nullptr, config);
}

StatusOr<DhsServing> DhsServing::Create(DhsClient* client,
                                        const DhsServingConfig& config) {
  if (client == nullptr) {
    return Status::InvalidArgument("client must not be null");
  }
  Status s = config.Validate();
  if (!s.ok()) return s;
  return DhsServing(nullptr, client, config);
}

DhsServing::DhsServing(DhsFrontDoor* door, DhsClient* client,
                       const DhsServingConfig& config)
    : door_(door),
      client_(client),
      config_(config),
      tune_lim_(config.tune_lim),
      tuner_(/*initial=*/(door != nullptr ? door->config() : client->config())
                 .lim,
             config.tuner_floor,
             /*ceiling=*/config.tuner_ceiling > 0
                 ? std::max(config.tuner_ceiling, config.tuner_floor)
                 : std::max((door != nullptr ? door->config()
                                             : client->config())
                                .max_lim,
                            config.tuner_floor),
             config.tuner_gain) {}

void DhsServing::MaybeAttachMetrics() {
  MetricsRegistry* registry = network()->metrics();
  if (registry == metrics_attached_) return;
  metrics_.Attach(registry, network()->GeometryName(),
                  DhsEstimatorName(config().estimator));
  metrics_attached_ = registry;
}

uint64_t DhsServing::SubmitCount(uint64_t origin_node,
                                 std::vector<uint64_t> metric_ids) {
  const uint64_t ticket = next_ticket_++;
  pending_counts_.push_back(
      PendingCount{ticket, origin_node, std::move(metric_ids)});
  ++stats_.count_requests;
  MaybeAttachMetrics();
  metrics_.RecordCountRequests(1);
  return ticket;
}

uint64_t DhsServing::SubmitInsertBatch(uint64_t origin_node,
                                       uint64_t metric_id,
                                       std::vector<uint64_t> item_hashes) {
  const uint64_t ticket = next_ticket_++;
  pending_inserts_.push_back(
      PendingInsert{ticket, origin_node, metric_id, std::move(item_hashes)});
  ++stats_.insert_requests;
  MaybeAttachMetrics();
  metrics_.RecordInsertRequests(1);
  return ticket;
}

Status DhsServing::Flush(Rng& rng) {
  if (pending_counts_.empty() && pending_inserts_.empty()) {
    return Status::OK();
  }
  MaybeAttachMetrics();
  ++stats_.flushes;
  ScopedSpan span(network()->tracer(), "serving_flush");
  if (span.active()) {
    span.Arg(TraceArg::U64("pending_inserts", pending_inserts_.size()));
    span.Arg(TraceArg::U64("pending_counts", pending_counts_.size()));
  }
  // Inserts before counts: a flush's counts observe its inserts, the
  // same order a caller issuing the requests back to back would get.
  const Status insert_status = FlushInserts(rng);
  FlushCounts(rng);
  pending_inserts_.clear();
  pending_counts_.clear();
  return insert_status;
}

Status DhsServing::FlushInserts(Rng& rng) {
  if (pending_inserts_.empty()) return Status::OK();
  const bool pipelined = config_.pipeline_inserts && door_ != nullptr &&
                         pending_inserts_.size() > 1;

  // Every insert batch lands in the wave log as its own entry: the
  // replay path executes them back to back, which is byte-identical to
  // the merged execution (front_door.h CompiledInsertBatch).
  for (const PendingInsert& p : pending_inserts_) {
    ServingWave wave;
    wave.kind = ServingWave::kInsertWave;
    wave.origin = p.origin;
    wave.metric_id = p.metric_id;
    wave.hashes = p.hashes;
    wave_log_.push_back(std::move(wave));
    metrics_.RecordInsertInvalidation();
  }

  if (!pipelined) {
    for (const PendingInsert& p : pending_inserts_) {
      auto result =
          door_ != nullptr
              ? door_->InsertBatch(p.origin, p.metric_id, p.hashes, rng)
              : client_->InsertBatch(p.origin, p.metric_id, p.hashes, rng);
      ++stats_.insert_waves;
      metrics_.RecordInsertWave();
      insert_results_.emplace(p.ticket, std::move(result));
    }
    return Status::OK();
  }

  // Pipelined hand-off: compile every batch up front (same RNG draws,
  // same order as sequential execution), run ONE engine batch over the
  // merged kPut ops, then fold each batch's slice of outcomes back
  // into its own report.
  struct Compiled {
    size_t pending_index;
    CompiledInsertBatch batch;
    size_t op_offset = 0;
  };
  std::vector<Compiled> compiled;
  compiled.reserve(pending_inserts_.size());
  std::vector<ShardOp> merged;
  for (size_t i = 0; i < pending_inserts_.size(); ++i) {
    const PendingInsert& p = pending_inserts_[i];
    auto c = door_->CompileInsertBatch(p.origin, p.metric_id, p.hashes, rng);
    if (!c.ok()) {
      insert_results_.emplace(p.ticket, c.status());
      continue;
    }
    Compiled entry{i, std::move(c.value()), merged.size()};
    merged.insert(merged.end(), entry.batch.ops.begin(),
                  entry.batch.ops.end());
    compiled.push_back(std::move(entry));
  }

  std::vector<ShardOpOutcome> outcomes;
  if (!merged.empty()) {
    auto executed = door_->engine()->ExecuteBatch(merged);
    if (!executed.ok()) {
      // Engine-level failure (not a per-op fault): every batch of the
      // wave fails the same way.
      for (const Compiled& c : compiled) {
        insert_results_.emplace(pending_inserts_[c.pending_index].ticket,
                                executed.status());
      }
      return executed.status();
    }
    outcomes = std::move(executed.value());
  }
  ++stats_.insert_waves;
  metrics_.RecordInsertWave();

  for (const Compiled& c : compiled) {
    const PendingInsert& p = pending_inserts_[c.pending_index];
    DhsCostReport cost;
    const Status folded = door_->FoldInsertOutcomes(
        c.batch, outcomes.data() + c.op_offset, c.batch.ops.size(), &cost);
    if (!folded.ok()) {
      insert_results_.emplace(p.ticket, folded);
    } else {
      insert_results_.emplace(p.ticket, cost);
    }
  }
  return Status::OK();
}

void DhsServing::FlushCounts(Rng& rng) {
  if (pending_counts_.empty()) return;
  if (!config_.coalesce_counts) {
    for (size_t i = 0; i < pending_counts_.size(); ++i) {
      RunCountWave({i}, rng);
    }
    return;
  }
  // Coalesce by exact metric set, first-seen order. Distinct sets are
  // NOT merged into one sweep: overlapping sets interact through the
  // frontier cache, and sequential replay must see the same waves.
  std::map<std::vector<uint64_t>, size_t> group_of;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < pending_counts_.size(); ++i) {
    auto [it, inserted] =
        group_of.emplace(pending_counts_[i].metric_ids, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  for (const std::vector<size_t>& group : groups) {
    RunCountWave(group, rng);
  }
}

void DhsServing::RunCountWave(const std::vector<size_t>& group, Rng& rng) {
  const PendingCount& head = pending_counts_[group.front()];
  DhsCountOptions options;
  options.lim_override = lim_override();

  ServingWave wave;
  wave.kind = ServingWave::kCountWave;
  wave.origin = head.origin;
  wave.metric_ids = head.metric_ids;
  wave.lim_override = options.lim_override;
  wave.waiters = group.size();
  wave_log_.push_back(std::move(wave));

  auto result = BackendCount(head.origin, head.metric_ids, rng, options);
  ++stats_.count_waves;
  stats_.coalesced += group.size() - 1;
  metrics_.RecordCountWave();
  metrics_.RecordCoalesced(group.size() - 1);

  if (result.ok()) {
    ObserveCountWave(head, result.value());
  }
  // Fan the one wave result out to every waiter (copies for all but
  // the last, which takes the original).
  for (size_t i = 0; i + 1 < group.size(); ++i) {
    if (result.ok()) {
      count_results_.emplace(pending_counts_[group[i]].ticket,
                             result.value());
    } else {
      count_results_.emplace(pending_counts_[group[i]].ticket,
                             result.status());
    }
  }
  count_results_.emplace(pending_counts_[group.back()].ticket,
                         std::move(result));
}

void DhsServing::ObserveCountWave(const PendingCount& head,
                                  const DhsClient::MultiCountResult& result) {
  const bool degraded = result.gave_up || result.cost.failed_probes > 0;
  if (degraded) ++stats_.degraded_waves;

  if (degraded && config_.invalidate_on_fault && config().frontier_cache) {
    // The wave's degradation is evidence of faults or churn under the
    // cache; drop the served metrics' frontiers so the next count
    // re-establishes them from a full sweep. Logged so replay mirrors
    // the cache state transition.
    for (uint64_t metric_id : head.metric_ids) {
      BackendInvalidate(metric_id);
      ++stats_.invalidations;
      ServingWave wave;
      wave.kind = ServingWave::kInvalidate;
      wave.metric_id = metric_id;
      wave.waiters = 0;
      wave_log_.push_back(std::move(wave));
    }
    metrics_.RecordFaultInvalidation(head.metric_ids.size());
  }

  if (!tune_lim_) return;
  // Feed the tuner the eq. 5/6 prediction for the cardinality this
  // wave actually observed (max over the served metrics: lim must
  // cover the busiest one).
  double max_estimate = 0.0;
  for (double e : result.estimates) max_estimate = std::max(max_estimate, e);
  const uint64_t cardinality =
      max_estimate > 0.0 ? static_cast<uint64_t>(std::llround(max_estimate))
                         : 0;
  const DhsConfig& backend = config();
  const BitMapping& mapping =
      door_ != nullptr ? door_->mapping() : client_->mapping();
  const double p_miss = config_.tuner_p_miss > 0.0
                            ? config_.tuner_p_miss
                            : 1.0 - backend.adaptive_confidence;
  const int target = FlatLimTarget(
      static_cast<uint64_t>(network()->NumNodes()), cardinality,
      mapping.MinBit(), mapping.MaxBit(), backend.m, backend.replication,
      p_miss, config_.tuner_floor,
      config_.tuner_ceiling > 0
          ? std::max(config_.tuner_ceiling, config_.tuner_floor)
          : std::max(backend.max_lim, config_.tuner_floor));
  tuner_.Observe(target, degraded);
  metrics_.RecordLim(tuner_.lim());
}

StatusOr<DhsClient::MultiCountResult> DhsServing::BackendCount(
    uint64_t origin, const std::vector<uint64_t>& metric_ids, Rng& rng,
    const DhsCountOptions& options) {
  return door_ != nullptr
             ? door_->CountMany(origin, metric_ids, rng, options)
             : client_->CountMany(origin, metric_ids, rng, options);
}

void DhsServing::BackendInvalidate(uint64_t metric_id) {
  if (door_ != nullptr) {
    door_->InvalidateFrontier(metric_id);
  } else {
    client_->InvalidateFrontier(metric_id);
  }
}

StatusOr<DhsClient::MultiCountResult> DhsServing::TakeCount(uint64_t ticket) {
  auto it = count_results_.find(ticket);
  if (it == count_results_.end()) {
    return Status::InvalidArgument("unknown or unflushed count ticket");
  }
  StatusOr<DhsClient::MultiCountResult> result = std::move(it->second);
  count_results_.erase(it);
  return result;
}

StatusOr<DhsCostReport> DhsServing::TakeInsert(uint64_t ticket) {
  auto it = insert_results_.find(ticket);
  if (it == insert_results_.end()) {
    return Status::InvalidArgument("unknown or unflushed insert ticket");
  }
  StatusOr<DhsCostReport> result = std::move(it->second);
  insert_results_.erase(it);
  return result;
}

StatusOr<DhsCountResult> DhsServing::Count(uint64_t origin_node,
                                           uint64_t metric_id, Rng& rng) {
  auto many = CountMany(origin_node, {metric_id}, rng);
  if (!many.ok()) return many.status();
  DhsCountResult result;
  result.estimate = many->estimates[0];
  result.observables = std::move(many->observables[0]);
  result.gave_up = many->gave_up;
  result.bitmaps_unresolved = many->bitmaps_unresolved;
  result.cost = many->cost;
  return result;
}

StatusOr<DhsClient::MultiCountResult> DhsServing::CountMany(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng) {
  const uint64_t ticket = SubmitCount(origin_node, metric_ids);
  Status s = Flush(rng);
  (void)s;  // the per-ticket result carries any failure
  return TakeCount(ticket);
}

StatusOr<DhsCostReport> DhsServing::InsertBatch(
    uint64_t origin_node, uint64_t metric_id,
    const std::vector<uint64_t>& item_hashes, Rng& rng) {
  const uint64_t ticket = SubmitInsertBatch(origin_node, metric_id,
                                            item_hashes);
  Status s = Flush(rng);
  (void)s;
  return TakeInsert(ticket);
}

void DhsServing::InvalidateMetric(uint64_t metric_id) {
  MaybeAttachMetrics();
  BackendInvalidate(metric_id);
  ++stats_.invalidations;
  ServingWave wave;
  wave.kind = ServingWave::kInvalidate;
  wave.metric_id = metric_id;
  wave.waiters = 0;
  wave_log_.push_back(std::move(wave));
  metrics_.RecordSignalInvalidation();
}

void DhsServing::InvalidateAll() {
  // Ops/test helper; NOT wave-logged (the replay contract covers
  // metric-granular invalidation only).
  if (door_ != nullptr) {
    door_->InvalidateAllFrontiers();
  } else {
    client_->InvalidateAllFrontiers();
  }
}

}  // namespace dhs
