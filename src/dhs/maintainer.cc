#include "dhs/maintainer.h"

namespace dhs {

void DhsMaintainer::RegisterItem(uint64_t node, uint64_t metric,
                                 uint64_t item_hash) {
  registry_[node][metric].insert(item_hash);
}

void DhsMaintainer::RegisterItems(uint64_t node, uint64_t metric,
                                  const std::vector<uint64_t>& item_hashes) {
  auto& items = registry_[node][metric];
  items.insert(item_hashes.begin(), item_hashes.end());
}

void DhsMaintainer::UnregisterItem(uint64_t node, uint64_t metric,
                                   uint64_t item_hash) {
  auto node_it = registry_.find(node);
  if (node_it == registry_.end()) return;
  auto metric_it = node_it->second.find(metric);
  if (metric_it == node_it->second.end()) return;
  metric_it->second.erase(item_hash);
  if (metric_it->second.empty()) node_it->second.erase(metric_it);
  if (node_it->second.empty()) registry_.erase(node_it);
}

void DhsMaintainer::DropNode(uint64_t node) { registry_.erase(node); }

StatusOr<size_t> DhsMaintainer::RefreshRound(Rng& rng) {
  // The refresh round is one root span; the per-(node, metric) batches
  // nest as the client's own insert_batch spans.
  ScopedSpan span(client_->network()->tracer(), "refresh_round");
  size_t rounds = 0;
  std::vector<uint64_t> batch;
  for (const auto& [node, metrics] : registry_) {
    for (const auto& [metric, items] : metrics) {
      batch.assign(items.begin(), items.end());
      auto refreshed = client_->InsertBatch(node, metric, batch, rng);
      if (!refreshed.ok()) {
        if (refreshed.status().IsInvalidArgument()) {
          continue;  // node left the overlay
        }
        return refreshed.status();
      }
      ++rounds;
    }
  }
  if (span.active()) {
    span.Arg(TraceArg::U64("batches", rounds));
  }
  if (MetricsRegistry* registry = client_->network()->metrics();
      registry != nullptr) {
    registry->GetCounter("dhs_refresh_rounds_total")->Increment();
    registry->GetCounter("dhs_refresh_batches_total")
        ->Increment(static_cast<uint64_t>(rounds));
  }
  return rounds;
}

size_t DhsMaintainer::NumRegistrations() const {
  size_t total = 0;
  for (const auto& [node, metrics] : registry_) {
    for (const auto& [metric, items] : metrics) total += items.size();
  }
  return total;
}

Status DhsMaintainer::AuditFull() const {
  const BitMapping& mapping = client_->mapping();
  const DhsConfig& config = client_->config();
  for (const auto& [node, metrics] : registry_) {
    if (metrics.empty()) {
      return Status::Internal("maintainer audit: node " +
                              std::to_string(node) +
                              " has an empty metric map (not pruned)");
    }
    for (const auto& [metric, items] : metrics) {
      if (items.empty()) {
        return Status::Internal(
            "maintainer audit: node " + std::to_string(node) + " metric " +
            std::to_string(metric) + " has an empty item set (not pruned)");
      }
      for (uint64_t item : items) {
        const DhsPlacement placement = client_->PlaceItem(item);
        if (placement.vector_id < 0 || placement.vector_id >= config.m) {
          return Status::Internal(
              "maintainer audit: item " + std::to_string(item) +
              " places into vector " + std::to_string(placement.vector_id) +
              ", outside [0, " + std::to_string(config.m) + ")");
        }
        // rho below shift_bits is legal: the bit-shift rule assumes those
        // positions set and skips the insert entirely.
        if (placement.rho < 0 || placement.rho > mapping.MaxBit()) {
          return Status::Internal(
              "maintainer audit: item " + std::to_string(item) +
              " places onto bit " + std::to_string(placement.rho) +
              ", outside [0, " + std::to_string(mapping.MaxBit()) + "]");
        }
      }
    }
  }
  return client_->AuditFull();
}

}  // namespace dhs
