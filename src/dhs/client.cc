#include "dhs/client.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"
#include "dht/fault.h"
#include "dht/wire.h"
#include "dhs/lim.h"
#include "sketch/estimator.h"
#include "sketch/hyperloglog.h"
#include "sketch/rho.h"

namespace dhs {

uint64_t RetryBackoffTicks(uint64_t base_ticks, int attempt) {
  if (base_ticks == 0) return 0;
  const int shift = std::clamp(attempt, 0, 63);
  if (base_ticks > (std::numeric_limits<uint64_t>::max() >> shift)) {
    return std::numeric_limits<uint64_t>::max();
  }
  return base_ticks << shift;
}

DhsClient::DhsClient(DhtNetwork* network, const DhsConfig& config,
                     std::shared_ptr<Transport> transport)
    : network_(network),
      transport_(std::move(transport)),
      config_(config),
      mapping_(network->space(), config),
      space_bits_cached_(network->space().bits()) {}

StatusOr<DhsClient> DhsClient::Create(DhtNetwork* network,
                                      const DhsConfig& config) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  return Create(network, config, std::make_shared<SimTransport>(network));
}

StatusOr<DhsClient> DhsClient::Create(DhtNetwork* network,
                                      const DhsConfig& config,
                                      std::shared_ptr<Transport> transport) {
  if (network == nullptr) {
    return Status::InvalidArgument("network must not be null");
  }
  if (transport == nullptr) {
    return Status::InvalidArgument("transport must not be null");
  }
  Status s = config.Validate(network->space());
  if (!s.ok()) return s;
  return DhsClient(network, config, std::move(transport));
}

DhsPlacement DhsClient::PlaceItem(uint64_t item_hash) const {
  // Vector selection uses hash bits above the k low-order bits, so that
  // rho keeps the full k-bit range and the DHT interval layout (hence the
  // counting cost) is independent of m.
  DhsPlacement placement;
  placement.vector_id =
      static_cast<int>(LowBits(item_hash >> config_.k, config_.IndexBits()));
  placement.rho = Rho(LowBits(item_hash, config_.k), config_.RhoBits());
  return placement;
}

// Extra ReplicaCandidates requested beyond the copies still needed, so
// a crashed or unreachable candidate can be skipped without running the
// list dry.
constexpr int kReplicaSlack = 2;

namespace {

// Indexed by DhsClient::OpIndex.
constexpr const char* kOpNames[] = {"insert", "insert_batch", "count"};

/// Records a retry instant inside the enclosing span (no-op when
/// tracing is off).
void TraceRetry(DhtNetwork* network, const char* what, int attempt) {
  Tracer* tracer = network->tracer();
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer->Instant("retry", {TraceArg::Str("what", what),
                            TraceArg::I64("attempt", attempt)});
}

}  // namespace

const DhsClient::OpMetrics* DhsClient::MetricsFor(OpIndex op) {
  MetricsRegistry* registry = network_->metrics();
  if (registry == nullptr) return nullptr;
  if (registry != metrics_cached_) {
    for (int i = 0; i < kNumOps; ++i) {
      const MetricLabels labels = {
          {"op", kOpNames[i]},
          {"geometry", network_->GeometryName()},
          {"estimator", DhsEstimatorName(config_.estimator)}};
      OpMetrics& m = op_metrics_[i];
      m.ops = registry->GetCounter("dhs_ops_total", labels);
      m.errors = registry->GetCounter("dhs_op_errors_total", labels);
      // Counting sweeps the whole bit range, so per-op hop and byte
      // totals reach well beyond a single O(log N) route.
      m.hops = registry->GetHistogram(
          "dhs_op_hops", {4, 16, 64, 256, 1024, 4096}, labels);
      m.bytes = registry->GetHistogram(
          "dhs_op_bytes", {64, 256, 1024, 4096, 16384, 65536}, labels);
      m.retries = registry->GetCounter("dhs_op_retries_total", labels);
      m.failed_probes =
          registry->GetCounter("dhs_op_failed_probes_total", labels);
    }
    const MetricLabels cache_labels = {
        {"geometry", network_->GeometryName()},
        {"estimator", DhsEstimatorName(config_.estimator)}};
    m_frontier_hits_ = registry->GetCounter(
        "dhs_frontier_cache_hits_total", cache_labels);
    m_frontier_misses_ = registry->GetCounter(
        "dhs_frontier_cache_misses_total", cache_labels);
    metrics_cached_ = registry;
  }
  return &op_metrics_[op];
}

void DhsClient::FinishOp(ScopedSpan& span, OpIndex op,
                         const DhsCostReport& cost, bool ok) {
  if (span.active()) {
    span.Arg(TraceArg::Str("op", kOpNames[op]));
    span.Arg(TraceArg::Bool("ok", ok));
    span.Arg(TraceArg::I64("nodes_visited", cost.nodes_visited));
    span.Arg(TraceArg::I64("op_hops", cost.hops));
    span.Arg(TraceArg::U64("op_bytes", cost.bytes));
    span.Arg(TraceArg::I64("dht_lookups", cost.dht_lookups));
    span.Arg(TraceArg::I64("direct_probes", cost.direct_probes));
    span.Arg(TraceArg::I64("retries", cost.retries));
    span.Arg(TraceArg::I64("failed_probes", cost.failed_probes));
    span.Arg(TraceArg::I64("replicas_requested", cost.replicas_requested));
    span.Arg(TraceArg::I64("replicas_written", cost.replicas_written));
    span.Arg(TraceArg::I64("bit_groups_failed", cost.bit_groups_failed));
  }
  const OpMetrics* m = MetricsFor(op);
  if (m == nullptr) return;
  m->ops->Increment();
  if (!ok) m->errors->Increment();
  m->hops->Observe(cost.hops);
  m->bytes->Observe(static_cast<double>(cost.bytes));
  m->retries->Increment(static_cast<uint64_t>(cost.retries));
  m->failed_probes->Increment(static_cast<uint64_t>(cost.failed_probes));
}

StatusOr<Transport::Delivery> DhsClient::RouteFrameWithRetry(
    uint64_t origin_node, const std::string& frame, size_t accounted_bytes,
    DhsCostReport* cost) {
  for (int attempt = 0;; ++attempt) {
    auto delivery = transport_->Route(origin_node, frame);
    if (delivery.ok()) {
      cost->dht_lookups += 1;
      cost->hops += delivery->hops;
      cost->bytes += accounted_bytes * static_cast<size_t>(delivery->hops);
      return delivery;
    }
    if (!IsTransientFault(delivery.status())) return delivery.status();
    cost->dht_lookups += 1;  // issued and charged, then lost in flight
    if (attempt + 1 >= config_.retry_attempts) return delivery.status();
    cost->retries += 1;
    TraceRetry(network_, "lookup", attempt + 1);
    if (config_.retry_backoff_ticks > 0) {
      network_->AdvanceClock(
          RetryBackoffTicks(config_.retry_backoff_ticks, attempt));
    }
  }
}

StatusOr<Transport::Delivery> DhsClient::SendFrameWithRetry(
    uint64_t from_node, uint64_t to_node, const std::string& frame,
    size_t accounted_bytes, DhsCostReport* cost) {
  for (int attempt = 0;; ++attempt) {
    auto delivery = transport_->Send(from_node, to_node, frame);
    if (delivery.ok()) {
      cost->direct_probes += 1;
      if (from_node != to_node) {
        cost->hops += 1;
        cost->bytes += accounted_bytes;
      }
      return delivery;
    }
    if (!IsTransientFault(delivery.status())) return delivery.status();
    cost->direct_probes += 1;  // issued and charged, then lost in flight
    if (attempt + 1 >= config_.retry_attempts) return delivery.status();
    cost->retries += 1;
    TraceRetry(network_, "direct_hop", attempt + 1);
    if (config_.retry_backoff_ticks > 0) {
      network_->AdvanceClock(
          RetryBackoffTicks(config_.retry_backoff_ticks, attempt));
    }
  }
}

Status DhsClient::StoreTuple(uint64_t origin_node, uint64_t metric_id,
                             int bit, const std::vector<int>& vector_ids,
                             Rng& rng, DhsCostReport* cost) {
  auto interval = mapping_.IntervalForBit(bit);
  if (!interval.ok()) return interval.status();

  ScopedSpan span(network_->tracer(), "store_bit");
  if (span.active()) {
    span.Arg(TraceArg::I64("bit", bit));
    span.Arg(TraceArg::U64("vectors", vector_ids.size()));
  }

  const uint64_t target_key = mapping_.RandomIdIn(*interval, rng);

  // The insertion group as one kPut frame: the §5.1 tuples in the
  // payload, addressing in the envelope, and a *relative* TTL so the
  // serving side anchors expiry at the delivery tick.
  PutFrame put;
  put.dst_key = target_key;
  put.metric_id = metric_id;
  put.expiry = config_.ttl_ticks;
  put.keys.reserve(vector_ids.size());
  for (int vector_id : vector_ids) {
    put.keys.push_back(MakeDhsKey(metric_id, bit, vector_id));
  }
  const std::string frame = EncodePut(put);
  const size_t payload = PutPayloadBytes(vector_ids.size());

  cost->replicas_requested += config_.replication;
  // The primary write is durable once the routed frame reached the
  // responsible node (the transport applied it on delivery); replica
  // failures below degrade, never error.
  auto delivery = RouteFrameWithRetry(origin_node, frame, payload, cost);
  if (!delivery.ok()) return delivery.status();
  cost->replicas_written += 1;

  int extra_needed = config_.replication - 1;
  if (extra_needed <= 0) return Status::OK();

  // Replica copies reuse the primary's expiry even if retries advance
  // the clock below, so all copies of a group age out together: the
  // replica frame carries the *absolute* tick the primary's TTL
  // resolved to.
  const uint64_t ttl = config_.ttl_ticks;
  PutFrame replica_put = put;
  replica_put.absolute_expiry = true;
  replica_put.expiry = ttl == kNoExpiry ? kNoExpiry : network_->now() + ttl;
  const std::string replica_frame = EncodePut(replica_put);

  // §3.5 replication, geometry-aware: the extra copies go to the nodes
  // the counting walk probes after the primary (ReplicaCandidates
  // shares its ordering with ProbeCandidates), falling through
  // candidates that cannot be reached.
  const uint64_t primary = delivery->node;
  const std::vector<uint64_t> replicas = network_->ReplicaCandidates(
      *interval, target_key, primary, extra_needed + kReplicaSlack);
  for (uint64_t replica : replicas) {
    auto hop = SendFrameWithRetry(primary, replica, replica_frame, payload,
                                  cost);
    if (!hop.ok()) {
      if (hop.status().IsInvalidArgument() ||
          IsTransientFault(hop.status())) {
        cost->failed_probes += 1;
        continue;
      }
      return hop.status();
    }
    cost->replicas_written += 1;
    if (--extra_needed == 0) break;
  }
  return Status::OK();
}

void DhsClient::MaybeAudit() const {
  if (!config_.audit) return;
  CHECK_OK(network_->AuditFull()) << "after a DHS operation";
  CHECK_OK(AuditFull()) << "after a DHS operation";
}

StatusOr<DhsCostReport> DhsClient::Insert(uint64_t origin_node,
                                          uint64_t metric_id,
                                          uint64_t item_hash, Rng& rng) {
  ScopedSpan span(network_->tracer(), "insert");
  if (span.active()) span.Arg(TraceArg::U64("metric", metric_id));
  if (config_.frontier_cache) frontier_.erase(metric_id);
  const DhsPlacement placement = PlaceItem(item_hash);
  DhsCostReport cost;
  if (placement.rho < config_.shift_bits) {
    // Bit-shift rule: the lowest shift_bits positions are assumed set.
    FinishOp(span, kOpInsert, cost, /*ok=*/true);
    return cost;
  }
  Status s = StoreTuple(origin_node, metric_id, placement.rho,
                        {placement.vector_id}, rng, &cost);
  MaybeAudit();
  FinishOp(span, kOpInsert, cost, s.ok());
  if (!s.ok()) return s;
  return cost;
}

StatusOr<DhsCostReport> DhsClient::InsertBatch(
    uint64_t origin_node, uint64_t metric_id,
    const std::vector<uint64_t>& item_hashes, Rng& rng) {
  if (!network_->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  ScopedSpan span(network_->tracer(), "insert_batch");
  if (span.active()) {
    span.Arg(TraceArg::U64("metric", metric_id));
    span.Arg(TraceArg::U64("items", item_hashes.size()));
  }
  if (config_.frontier_cache) frontier_.erase(metric_id);
  // §3.2 bulk insertion: group by bit position r; one message per r
  // carries all (deduplicated) vector updates for that position.
  std::map<int, std::set<int>> by_bit;
  for (uint64_t hash : item_hashes) {
    const DhsPlacement placement = PlaceItem(hash);
    if (placement.rho < config_.shift_bits) continue;
    by_bit[placement.rho].insert(placement.vector_id);
  }
  DhsCostReport cost;
  Status first_failure = Status::OK();
  for (const auto& [bit, vectors] : by_bit) {
    std::vector<int> vector_ids(vectors.begin(), vectors.end());
    Status s = StoreTuple(origin_node, metric_id, bit, vector_ids, rng,
                          &cost);
    if (!s.ok()) {
      // A failed primary write degrades this group only; the remaining
      // groups still store (no silent drop of the batch's tail).
      cost.bit_groups_failed += 1;
      if (first_failure.ok()) first_failure = s;
    }
  }
  MaybeAudit();
  const bool all_failed = !first_failure.ok() &&
      cost.bit_groups_failed == static_cast<int>(by_bit.size());
  FinishOp(span, kOpInsertBatch, cost, !all_failed);
  if (all_failed) {
    return first_failure;  // nothing was stored
  }
  return cost;
}

std::vector<int> DhsClient::ProbeNodeForMetric(uint64_t node,
                                               uint64_t metric_id, int bit,
                                               DhsCostReport* cost) {
  MetricQueryFrame query;
  query.metric_id = metric_id;
  query.bit = bit;
  auto response = transport_->Query(node, EncodeMetricQuery(query));
  if (!response.ok()) {
    // The holder vanished between the walk reaching it and the read:
    // empty-handed, nothing charged (matching the historical in-process
    // probe).
    return {};
  }
  auto decoded = DecodeVectorResponse(*response);
  CHECK_OK(decoded) << "transport returned a malformed probe response";
  // The response-side charge (ProbeResponseBytes(v) == 8 + 2v) happened
  // where the frame was served; mirror it into this op's cost report.
  cost->bytes += VectorResponsePayloadBytes(decoded->vector_ids.size());
  return std::move(decoded->vector_ids);
}

int DhsClient::LimForBit(int bit, const DhsCountOptions& options) const {
  const int flat = options.lim_override > 0
                       ? std::clamp(options.lim_override, 1, config_.max_lim)
                       : config_.lim;
  if (!config_.adaptive_lim || config_.expected_cardinality == 0) {
    return flat;
  }
  auto interval = mapping_.IntervalForBit(bit);
  if (!interval.ok()) return flat;
  // Expected nodes in the interval (N') and items mapped to it (n', over
  // all bitmaps): eq. 6 then gives the probes needed for the configured
  // hit probability. Sub-node intervals have at most a couple of
  // holders; the flat lim suffices there.
  const double fraction =
      std::ldexp(static_cast<double>(interval->size),
                 -space_bits_cached_);
  const double n_bins = fraction * static_cast<double>(network_->NumNodes());
  if (n_bins < 2.0) return flat;
  const double n_items = std::ldexp(
      static_cast<double>(config_.expected_cardinality), -(bit + 1));
  const int required = RequiredProbesReplicated(
      static_cast<uint64_t>(n_bins), static_cast<uint64_t>(n_items),
      config_.m, config_.replication,
      /*p_miss=*/1.0 - config_.adaptive_confidence);
  return std::clamp(required, flat, config_.max_lim);
}

template <typename VisitFn, typename DoneFn>
Status DhsClient::ProbeInterval(uint64_t origin_node, int bit,
                                const DhsCountOptions& options, Rng& rng,
                                DhsCostReport* cost, VisitFn&& visit,
                                DoneFn&& done, bool* abandoned) {
  *abandoned = false;
  auto interval_or = mapping_.IntervalForBit(bit);
  if (!interval_or.ok()) return interval_or.status();
  const IdInterval interval = *interval_or;
  const int lim = LimForBit(bit, options);

  ScopedSpan span(network_->tracer(), "probe_interval");
  if (span.active()) {
    span.Arg(TraceArg::I64("bit", bit));
    span.Arg(TraceArg::I64("lim", lim));
  }

  // Initial random probe into the interval: a kProbeOpen frame routed
  // via the DHT (ProbeRequestBytes == 12 accounted bytes per hop).
  const uint64_t target_key = mapping_.RandomIdIn(interval, rng);
  ProbeOpenFrame open;
  open.target_key = target_key;
  open.bit = bit;
  const std::string request_frame = EncodeProbeOpen(open);
  const size_t request = kProbeOpenPayloadBytes;
  auto lookup = RouteFrameWithRetry(origin_node, request_frame, request, cost);
  if (!lookup.ok()) {
    if (IsTransientFault(lookup.status())) {
      // The interval could not be reached through all retry attempts:
      // abandon it and let the count continue degraded (reported via
      // gave_up / bitmaps_unresolved, never as silent bias).
      *abandoned = true;
      span.Arg(TraceArg::Bool("abandoned", true));
      return Status::OK();
    }
    return lookup.status();
  }

  // Probe the responsible node, then walk the overlay's candidate
  // holders (Alg. 1 lines 13-17; the candidate order is geometry-
  // specific — ring neighbours for Chord, XOR-nearest for Kademlia).
  const uint64_t start = lookup->node;
  cost->nodes_visited += 1;
  visit(start);
  if (done()) return Status::OK();

  const std::vector<uint64_t> candidates =
      network_->ProbeCandidates(interval, target_key, start, lim - 1);
  uint64_t current = start;
  for (uint64_t next : candidates) {
    auto hop =
        SendFrameWithRetry(current, next, request_frame, request, cost);
    if (!hop.ok()) {
      if (hop.status().IsInvalidArgument() ||
          IsTransientFault(hop.status())) {
        // Unreachable candidate (crashed, or lost through all
        // retries): skip it and walk on from the last node reached.
        cost->failed_probes += 1;
        continue;
      }
      return hop.status();
    }
    cost->nodes_visited += 1;
    current = next;
    visit(current);
    if (done()) break;
  }
  return Status::OK();
}

StatusOr<DhsCountResult> DhsClient::Count(uint64_t origin_node,
                                          uint64_t metric_id, Rng& rng) {
  auto many = CountMany(origin_node, {metric_id}, rng);
  if (!many.ok()) return many.status();
  DhsCountResult result;
  result.estimate = many->estimates[0];
  result.observables = std::move(many->observables[0]);
  result.gave_up = many->gave_up;
  result.bitmaps_unresolved = many->bitmaps_unresolved;
  result.cost = many->cost;
  return result;
}

StatusOr<DhsClient::MultiCountResult> DhsClient::CountMany(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids,
    Rng& rng) {
  return CountMany(origin_node, metric_ids, rng, DhsCountOptions{});
}

StatusOr<DhsClient::MultiCountResult> DhsClient::CountMany(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
    const DhsCountOptions& options) {
  if (metric_ids.empty()) {
    return Status::InvalidArgument("no metrics given");
  }
  if (!network_->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  ScopedSpan span(network_->tracer(), "count");
  if (span.active()) {
    span.Arg(TraceArg::U64("metrics", metric_ids.size()));
  }
  // sLL and HLL share the max-rho (high -> low) scan; PCSA scans for the
  // leftmost zero (low -> high).
  auto result = config_.estimator == DhsEstimator::kPcsa
                    ? CountManyPcsa(origin_node, metric_ids, rng, options)
                    : CountManySll(origin_node, metric_ids, rng, options);
  MaybeAudit();
  if (result.ok()) {
    if (span.active()) {
      span.Arg(TraceArg::Bool("gave_up", result->gave_up));
    }
    FinishOp(span, kOpCount, result->cost, /*ok=*/true);
  } else {
    FinishOp(span, kOpCount, DhsCostReport{}, /*ok=*/false);
  }
  return result;
}

StatusOr<DhsClient::MultiCountResult> DhsClient::CountManySll(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
    const DhsCountOptions& options) {
  const size_t num_metrics = metric_ids.size();
  const int m = config_.m;
  MultiCountResult result;
  result.observables.assign(num_metrics, std::vector<int>(m, -1));
  size_t total_unresolved = num_metrics * static_cast<size_t>(m);

  // Frontier cache: when every metric of the sweep has a cached raw
  // observable set, bits above the cached max rho were empty at the
  // last complete count and — absent inserts, which invalidate — decay
  // can only have emptied more, so the scan starts at the frontier.
  int start_bit = mapping_.MaxBit();
  if (config_.frontier_cache) {
    MetricsFor(kOpCount);  // interns the hit/miss counters
    bool hit = true;
    int frontier = mapping_.MinBit() - 1;
    for (uint64_t metric_id : metric_ids) {
      auto it = frontier_.find(metric_id);
      if (it == frontier_.end()) {
        hit = false;
        break;
      }
      for (int v : it->second) frontier = std::max(frontier, v);
    }
    if (hit) {
      start_bit = std::min(start_bit, frontier);
      if (m_frontier_hits_ != nullptr) m_frontier_hits_->Increment();
    } else {
      if (m_frontier_misses_ != nullptr) m_frontier_misses_->Increment();
    }
  }

  // Scan bit positions high -> low: the first set bit found for a bitmap
  // is its maximal rho (the sLL observable).
  for (int r = start_bit; r >= mapping_.MinBit() && total_unresolved > 0;
       --r) {
    bool abandoned = false;
    Status s = ProbeInterval(
        origin_node, r, options, rng, &result.cost,
        [&](uint64_t node) {
          for (size_t mi = 0; mi < num_metrics; ++mi) {
            std::vector<int>& observed = result.observables[mi];
            const std::vector<int> vectors =
                ProbeNodeForMetric(node, metric_ids[mi], r, &result.cost);
            for (int v : vectors) {
              if (v < m && observed[v] < 0) {
                observed[v] = r;
                --total_unresolved;
              }
            }
          }
        },
        [&] { return total_unresolved == 0; },
        &abandoned);
    if (!s.ok()) return s;
    if (abandoned) {
      // Every still-unresolved bitmap could have held its max rho at r;
      // lower intervals may still resolve it (slightly low), so the
      // count completes — degraded, not aborted.
      result.gave_up = true;
      result.bitmaps_unresolved = std::max(
          result.bitmaps_unresolved, static_cast<int>(total_unresolved));
    }
  }

  // Cache raw observables (before the bit-shift backfill mutates them)
  // — only from a fully resolved count: an abandoned interval OR a
  // skipped probe candidate (failed_probes) could have hidden a higher
  // rho, and caching it would pin future scans low — every later
  // frontier-started count would silently undercount until the entry
  // is invalidated.
  if (config_.frontier_cache && !result.gave_up &&
      result.cost.failed_probes == 0) {
    for (size_t mi = 0; mi < num_metrics; ++mi) {
      StoreFrontier(metric_ids[mi], result.observables[mi]);
    }
  }

  result.estimates.reserve(num_metrics);
  for (auto& observed : result.observables) {
    const bool all_empty = std::all_of(observed.begin(), observed.end(),
                                       [](int v) { return v < 0; });
    if (!all_empty && config_.shift_bits > 0) {
      // Bit-shift rule: bitmaps with no observed bit still have rho up to
      // shift_bits - 1 among the disregarded (assumed-set) positions.
      for (int& v : observed) {
        if (v < 0) v = config_.shift_bits - 1;
      }
    }
    result.estimates.push_back(
        config_.estimator == DhsEstimator::kHyperLogLog
            ? HyperLogLogEstimateFromM(observed)
            : SuperLogLogEstimateFromM(observed, config_.theta0));
  }
  return result;
}

void DhsClient::StoreFrontier(uint64_t metric_id,
                              const std::vector<int>& observables) {
  auto it = frontier_.find(metric_id);
  if (it != frontier_.end()) {
    it->second = observables;
    return;
  }
  if (config_.frontier_max_entries > 0 &&
      frontier_.size() >=
          static_cast<size_t>(config_.frontier_max_entries)) {
    frontier_.erase(frontier_.begin());
  }
  frontier_.emplace(metric_id, observables);
}

StatusOr<DhsClient::MultiCountResult> DhsClient::CountManyPcsa(
    uint64_t origin_node, const std::vector<uint64_t>& metric_ids, Rng& rng,
    const DhsCountOptions& options) {
  const size_t num_metrics = metric_ids.size();
  const int m = config_.m;
  MultiCountResult result;
  // -1 = still open (all positions so far were observed set).
  result.observables.assign(num_metrics, std::vector<int>(m, -1));
  size_t total_open = num_metrics * static_cast<size_t>(m);

  // Scan bit positions low -> high: a bitmap's observable M is the first
  // position at which no set bit can be found (the leftmost zero).
  std::vector<std::vector<char>> observed_here(
      num_metrics, std::vector<char>(static_cast<size_t>(m), 0));
  for (int r = mapping_.MinBit(); r <= mapping_.MaxBit() && total_open > 0;
       ++r) {
    for (auto& flags : observed_here) {
      std::fill(flags.begin(), flags.end(), 0);
    }
    size_t open_observed = 0;
    size_t open_now = total_open;

    bool abandoned = false;
    Status s = ProbeInterval(
        origin_node, r, options, rng, &result.cost,
        [&](uint64_t node) {
          for (size_t mi = 0; mi < num_metrics; ++mi) {
            const std::vector<int> vectors =
                ProbeNodeForMetric(node, metric_ids[mi], r, &result.cost);
            for (int v : vectors) {
              if (v < m && result.observables[mi][v] < 0 &&
                  !observed_here[mi][v]) {
                observed_here[mi][v] = 1;
                ++open_observed;
              }
            }
          }
        },
        [&] { return open_observed == open_now; },
        &abandoned);
    if (!s.ok()) return s;
    if (abandoned) {
      // No information at r: leaving the open bitmaps open (they close
      // at a later position, or saturate) biases mildly high, instead
      // of collapsing every open observable to r.
      result.gave_up = true;
      result.bitmaps_unresolved =
          std::max(result.bitmaps_unresolved, static_cast<int>(total_open));
      continue;
    }

    // Open bitmaps with no set bit found at r: M = r.
    for (size_t mi = 0; mi < num_metrics; ++mi) {
      for (int v = 0; v < m; ++v) {
        if (result.observables[mi][v] < 0 && !observed_here[mi][v]) {
          result.observables[mi][v] = r;
          --total_open;
        }
      }
    }
  }
  // Bitmaps saturated through the last position.
  for (auto& observed : result.observables) {
    for (int& v : observed) {
      if (v < 0) v = mapping_.MaxBit() + 1;
    }
  }
  result.estimates.reserve(num_metrics);
  for (const auto& observed : result.observables) {
    result.estimates.push_back(PcsaEstimateFromM(observed));
  }
  return result;
}

Status DhsClient::AuditFull() const {
  Status mapping_ok = mapping_.AuditFull();
  if (!mapping_ok.ok()) return mapping_ok;

  // Placement <-> mapping agreement: walk every DHS record in every live
  // store and re-derive where the mapping says it must live.
  Status violation = Status::OK();
  const uint64_t now = network_->now();
  for (uint64_t node_id : network_->NodeIds()) {
    const NodeStore* store = network_->StoreAt(node_id);
    CHECK(store != nullptr) << "live node " << node_id << " has no store";
    store->ForEach(now, [&](const StoreKey& key, const StoreRecord& rec) {
      if (!violation.ok() || !key.is_dhs()) return;
      const auto fail = [&](const std::string& what) {
        violation = Status::Internal(
            "dhs audit: node " + std::to_string(node_id) + " record (metric " +
            std::to_string(key.metric_id()) + ", bit " +
            std::to_string(key.bit()) + ", vector " +
            std::to_string(key.vector_id()) + "): " + what);
      };
      if (key.bit() < mapping_.MinBit() || key.bit() > mapping_.MaxBit()) {
        fail("bit outside the mapped range [" +
             std::to_string(mapping_.MinBit()) + ", " +
             std::to_string(mapping_.MaxBit()) + "]");
        return;
      }
      if (key.vector_id() < 0 || key.vector_id() >= config_.m) {
        fail("vector id outside [0, " + std::to_string(config_.m) + ")");
        return;
      }
      auto interval = mapping_.IntervalForBit(key.bit());
      if (!interval.ok()) {
        fail("IntervalForBit failed: " + interval.status().ToString());
        return;
      }
      if (!interval->Contains(rec.dht_key)) {
        fail("routing key " + std::to_string(rec.dht_key) +
             " outside the bit's interval [" + std::to_string(interval->lo) +
             ", +" + std::to_string(interval->size) +
             ") — counting walks cannot find it");
      }
    });
    if (!violation.ok()) return violation;
  }
  return Status::OK();
}

}  // namespace dhs
