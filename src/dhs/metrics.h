// Metric naming.
//
// Every DHS operation identifies its target by a 64-bit metric_id that
// all nodes must agree on without coordination (the paper assumes such
// agreement implicitly: "a metric_id uniquely identifying the metric").
// This header fixes the convention: IDs are derived from human-readable
// names with MD4 — the paper's own hash, so the derivation is identical
// on every node and across platforms — and families of related metrics
// (histogram buckets, per-keyword counters) hang off a base ID via
// SubMetric.

#ifndef DHS_DHS_METRICS_H_
#define DHS_DHS_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dhs {

/// Stable 64-bit metric ID for a human-readable name, e.g.
/// MetricFromName("shared-documents") or
/// MetricFromName("histogram:orders.amount").
uint64_t MetricFromName(std::string_view name);

/// The index-th member of a metric family (histogram bucket, keyword
/// rank, ...). Distinct (base, index) pairs map to distinct IDs; the
/// derivation is a bijective mix, so collisions are no more likely than
/// for independently hashed names.
uint64_t SubMetric(uint64_t base_metric, uint64_t index);

/// Conventional name for a histogram over relation.attribute.
std::string HistogramMetricName(std::string_view relation,
                                std::string_view attribute);

}  // namespace dhs

#endif  // DHS_DHS_METRICS_H_
