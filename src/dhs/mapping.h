// Mapping of DHS bit positions to DHT ID-space intervals (§3.1).
//
// The node-ID space [0, 2^L) is partitioned into consecutive intervals
// I_r = [thr(r), thr(r-1)) with thr(r) = 2^(L-r-1), so |I_r| = 2^(L-r-1):
// bit r of the bitmap, which receives n * 2^-(r+1) of the items, maps to
// an interval holding an expected N * 2^-(r+1) of the nodes. The expected
// per-node load is therefore uniform — the paper's central load-balancing
// property. The residual interval [0, thr(k_eff - 1)) absorbs the
// rho-saturation position ("bit k").
//
// With the §3.5 bit-shift rule (shift_bits = b > 0) the i-th interval is
// assigned to the (i + b)-th bit, trading the ability to measure
// cardinalities below 2^b for more nodes per bit.

#ifndef DHS_DHS_MAPPING_H_
#define DHS_DHS_MAPPING_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "dht/node_id.h"
#include "dht/store.h"
#include "dhs/config.h"

namespace dhs {

/// Resolves bit positions to intervals (dht/node_id.h::IdInterval) for
/// one (IdSpace, DhsConfig) pair.
class BitMapping {
 public:
  BitMapping(const IdSpace& space, const DhsConfig& config);

  /// Number of distinct bit positions handled: rho values in
  /// [shift_bits, rho_bits] inclusive.
  int MinBit() const { return shift_; }
  int MaxBit() const { return max_bit_; }

  /// Interval for bit position r (r in [MinBit(), MaxBit()]).
  [[nodiscard]] StatusOr<IdInterval> IntervalForBit(int r) const;

  /// Uniformly random ID within the interval.
  uint64_t RandomIdIn(const IdInterval& interval, Rng& rng) const;

  /// The bit position whose interval contains `id`, or -1 if `id` falls
  /// outside every mapped interval (cannot happen when shift_bits == 0).
  int BitForId(uint64_t id) const;

  /// Structural self-check: the mapped intervals must tile the ID space
  /// exactly once (consecutive, non-overlapping, sizes summing to 2^L)
  /// and IntervalForBit must agree with BitForId at both endpoints of
  /// every interval. Returns OK or Internal naming the violation.
  [[nodiscard]] Status AuditFull() const;

 private:
  IdSpace space_;
  int rho_bits_;  // config.RhoBits()
  int shift_;     // config.shift_bits
  int max_bit_;   // rho_bits_ (the saturation position)
};

/// Storage key for DHS tuples: a packed (metric, bit, vector) StoreKey.
/// Keys order as (metric_id, bit, vector_id), so one typed range scan
/// (NodeStore::ForEachDhs / ForEachDhsMetric) retrieves every vector
/// stored at a node for a given (metric, bit) or metric.
inline StoreKey MakeDhsKey(uint64_t metric_id, int bit, int vector_id) {
  return StoreKey::Dhs(metric_id, bit, vector_id);
}

}  // namespace dhs

#endif  // DHS_DHS_MAPPING_H_
