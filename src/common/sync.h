// Synchronization primitives with Clang Thread Safety Analysis
// annotations, runtime lock diagnostics, and the thread-hostility
// marker trait.
//
// The simulator core is single-threaded by design (dht/network.h); the
// parallelism the repo does use — the multi-trial experiment runner and
// the sharded engine's pinned workers in common/thread_pool.h — shares
// very little mutable state between threads. This header makes those
// facts machine-checkable along two axes:
//
//   * Static: Mutex / MutexLock / CondVar wrap the std primitives and
//     carry Clang `capability` attributes, so any code that does share
//     state must say which mutex guards it (GUARDED_BY) and which
//     functions need it held (REQUIRES). Under Clang, -Wthread-safety
//     -Wthread-safety-beta are enabled globally (see the top-level
//     CMakeLists.txt) and promoted to errors by DHS_WERROR; a missing
//     annotation is a broken build, not a latent race.
//
//   * Runtime: every Mutex carries a registered name and per-mutex
//     contention counters (acquisitions, contended acquisitions, wait
//     nanoseconds — SnapshotMutexProfiles(), exported to the metrics
//     registry by obs/sync_metrics.h), and a global lock-order
//     deadlock detector watches every acquisition. The detector keeps
//     a per-thread held-lock stack plus a global acquisition-order
//     graph keyed by mutex identity; acquiring B while holding A adds
//     the edge A -> B, and an acquisition that would close a cycle
//     (the classic AB/BA inversion) or re-acquire a mutex the thread
//     already holds (self deadlock on a non-recursive mutex) is
//     reported through the CHECK failure hook — with the acquisition
//     sites of both sides, captured via std::source_location — BEFORE
//     the thread blocks on the native lock. The graph machinery is
//     compiled in when the DHS_DEADLOCK_DETECTOR CMake option is ON
//     (the default; see the top-level CMakeLists.txt) and can be
//     toggled at runtime with SetDeadlockDetectorEnabled; the
//     contention counters are always maintained (three relaxed atomic
//     adds per acquisition).
//
//   * ThreadHostile is an explicit marker for types that mutate
//     internal state on logically-const paths (lazily built caches:
//     Chord finger tables, Kademlia bucket caches, SampleStats' lazy
//     sort). Such objects are unsafe to share across threads even
//     read-only. RunTrials statically rejects trial results that leak
//     (pointers to) thread-hostile objects out of their trial.
//
// On non-Clang compilers every annotation macro expands to nothing;
// the primitives still work, the static analysis just does not run
// (CI runs a Clang leg so annotations cannot rot). The runtime
// diagnostics are compiler-independent.

#ifndef DHS_COMMON_SYNC_H_
#define DHS_COMMON_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <source_location>
#include <type_traits>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (the attribute spelling
// follows clang.llvm.org/docs/ThreadSafetyAnalysis.html).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define DHS_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define DHS_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) DHS_TS_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY DHS_TS_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reads require the capability held shared, writes exclusive.
#define GUARDED_BY(x) DHS_TS_ATTRIBUTE(guarded_by(x))

/// Like GUARDED_BY for pointers: the pointed-to data is protected.
#define PT_GUARDED_BY(x) DHS_TS_ATTRIBUTE(pt_guarded_by(x))

/// The function may be called only with the listed capabilities held
/// (exclusively / shared); it does not acquire or release them.
#define REQUIRES(...) \
  DHS_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DHS_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities and must be
/// called without / with them held.
#define ACQUIRE(...) DHS_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DHS_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DHS_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DHS_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define TRY_ACQUIRE(result, ...) \
  DHS_TS_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (it acquires them itself; holding them would deadlock).
#define EXCLUDES(...) DHS_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function asserts (at runtime) that the capability is held, and
/// the analysis believes it from that point on. Use on debug-check
/// helpers like Mutex::AssertHeld().
#define ASSERT_CAPABILITY(x) DHS_TS_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) DHS_TS_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the truth.
#define NO_THREAD_SAFETY_ANALYSIS \
  DHS_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace dhs {

class Mutex;
struct MutexProfile;
std::vector<MutexProfile> SnapshotMutexProfiles();

namespace sync_internal {

/// Per-mutex contention counters. Relaxed atomics: the counts feed
/// diagnostics, never synchronization, and exactness per-counter is
/// preserved (each add is atomic; only cross-counter snapshots are
/// unordered).
struct MutexCounters {
  std::atomic<uint64_t> acquisitions{0};
  std::atomic<uint64_t> contended{0};
  std::atomic<uint64_t> wait_ns{0};
  /// Set by the first acquisition, which registers the mutex with the
  /// profile registry so SnapshotMutexProfiles() sees it while live.
  std::atomic<bool> registered{false};
};

/// Called by Mutex before blocking on the native lock: runs the
/// self-deadlock and lock-order cycle checks (when the detector is
/// enabled) and records the would-be acquisition edge. May fire the
/// CHECK failure hook and never return (the default handler aborts,
/// the test handler throws).
void PreAcquire(const Mutex* mu, const std::source_location& loc);
/// Called once the native lock is held: pushes the per-thread held
/// entry.
void PostAcquire(const Mutex* mu, const std::source_location& loc);
/// Called before releasing the native lock: pops the held entry.
void PreRelease(const Mutex* mu);
/// True when the calling thread's held stack contains `mu`.
bool HeldByThisThread(const Mutex* mu);
/// Fires the CHECK failure hook for a violated AssertHeld.
void AssertHeldFailure(const Mutex* mu, const std::source_location& loc);
/// Unregisters a destroyed mutex: folds its counters into the retired
/// per-name aggregate and drops its lock-order graph node.
void Retire(const Mutex* mu);

}  // namespace sync_internal

// ---------------------------------------------------------------------------
// Annotated primitives
// ---------------------------------------------------------------------------

/// A standard exclusive mutex carrying the `capability` attribute, so
/// members can be declared GUARDED_BY an instance and the analysis can
/// track acquire/release through Lock()/Unlock()/MutexLock.
///
/// Every Mutex may carry a registered name: diagnostics (deadlock
/// reports, contention metrics) aggregate by that name, so give every
/// long-lived mutex one — the determinism linter (tools/lint) flags
/// unnamed members. Acquisition sites are captured automatically via
/// std::source_location default arguments.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` must outlive the mutex (string literals only).
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { sync_internal::Retire(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(std::source_location loc =
                std::source_location::current()) ACQUIRE() {
    sync_internal::PreAcquire(this, loc);
    if (!mu_.try_lock()) {
      LockContended();
    }
    counters_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    sync_internal::PostAcquire(this, loc);
  }

  void Unlock() RELEASE() {
    sync_internal::PreRelease(this);
    mu_.unlock();
  }

  /// Never blocks, so it runs no deadlock check: a failed try_lock
  /// cannot deadlock, and a successful one established no wait-for
  /// edge.
  bool TryLock(std::source_location loc =
                   std::source_location::current()) TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    counters_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    sync_internal::PostAcquire(this, loc);
    return true;
  }

  /// CHECK-fails unless the calling thread holds this mutex; tells the
  /// static analysis the capability is held from here on. Use it in
  /// helpers reached only under the lock where threading the REQUIRES
  /// annotation through is impossible (type-erased callbacks).
  void AssertHeld(std::source_location loc = std::source_location::current())
      const ASSERT_CAPABILITY(this) {
    if (!sync_internal::HeldByThisThread(this)) {
      sync_internal::AssertHeldFailure(this, loc);
    }
  }

  /// The registered name ("unnamed" when default-constructed).
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  friend void sync_internal::PostAcquire(const Mutex* mu,
                                         const std::source_location& loc);
  friend void sync_internal::Retire(const Mutex* mu);
  friend std::vector<MutexProfile> SnapshotMutexProfiles();

  /// Out-of-line slow path: counts the contention and the nanoseconds
  /// spent blocked on the native lock.
  void LockContended();

  std::mutex mu_;
  const char* name_ = "unnamed";
  mutable sync_internal::MutexCounters counters_;
};

/// RAII lock of a Mutex for a scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, std::source_location loc =
                                    std::source_location::current())
      ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(loc);
  }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Wait() must be called with the
/// mutex held (enforced statically by REQUIRES and at runtime by
/// AssertHeld); it atomically releases the mutex while blocked and
/// re-acquires it before returning. The caller's held-lock entry stays
/// in place across the wait — the caller logically holds the mutex for
/// the whole scope, and the blocked thread cannot acquire anything
/// else, so the deadlock detector sees a consistent picture.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    mu.AssertHeld();
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back without unlocking (the caller still holds it).
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until pred() holds; pred is evaluated under the mutex.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// Lock diagnostics
// ---------------------------------------------------------------------------

/// Snapshot of one mutex name's accumulated contention counters:
/// destroyed mutexes fold into their name's aggregate, live ones are
/// summed in at snapshot time.
struct MutexProfile {
  const char* name = "unnamed";
  uint64_t acquisitions = 0;  // successful Lock() + TryLock() == true
  uint64_t contended = 0;     // Lock() calls that had to block
  uint64_t wait_ns = 0;       // nanoseconds spent blocked in Lock()
};

/// All known mutex profiles aggregated by registered name, sorted by
/// name. obs/sync_metrics.h exports this through the MetricsRegistry.
std::vector<MutexProfile> SnapshotMutexProfiles();

/// Toggles the lock-order deadlock detector at runtime and returns the
/// previous setting. The build-time default is ON when the
/// DHS_DEADLOCK_DETECTOR CMake option is enabled (it is by default)
/// and OFF otherwise; either way the code is compiled in and this
/// switch decides whether acquisitions feed the lock-order graph.
bool SetDeadlockDetectorEnabled(bool enabled);
bool DeadlockDetectorEnabled();

// ---------------------------------------------------------------------------
// Thread-hostility marker
// ---------------------------------------------------------------------------

/// Inherit (privately) to declare a type *thread-hostile*: it mutates
/// internal state behind const methods (lazily built caches), so
/// instances are unsafe to share between threads even when every access
/// is through a const path. Confinement — one thread owns the object for
/// its whole lifetime, or hands it over with proper synchronization — is
/// the only safe usage. The trial runner (common/thread_pool.h) keeps
/// such objects per-trial and statically rejects results that would leak
/// them across the trial boundary.
class ThreadHostile {
 protected:
  ThreadHostile() = default;
  ~ThreadHostile() = default;
  ThreadHostile(const ThreadHostile&) = default;
  ThreadHostile& operator=(const ThreadHostile&) = default;
};

namespace sync_internal {

template <typename T>
struct StripPointer {
  using type = T;
};
template <typename T>
struct StripPointer<T*> {
  using type = T;
};

template <typename T>
using Unwrap = std::remove_cv_t<typename StripPointer<
    std::remove_cv_t<std::remove_reference_t<T>>>::type>;

}  // namespace sync_internal

/// True when T is (a reference or pointer to) a thread-hostile type.
template <typename T>
inline constexpr bool kThreadHostile =
    std::is_base_of_v<ThreadHostile, sync_internal::Unwrap<T>>;

}  // namespace dhs

#endif  // DHS_COMMON_SYNC_H_
