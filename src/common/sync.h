// Synchronization primitives with Clang Thread Safety Analysis
// annotations, plus the thread-hostility marker trait.
//
// The simulator core is single-threaded by design (dht/network.h); the
// parallelism the repo does use — the multi-trial experiment runner in
// common/thread_pool.h — shares nothing mutable between threads. This
// header makes both facts machine-checkable:
//
//   * Mutex / MutexLock / CondVar wrap the std primitives and carry
//     Clang `capability` attributes, so any code that does share state
//     must say which mutex guards it (GUARDED_BY) and which functions
//     need it held (REQUIRES). Under Clang, -Wthread-safety
//     -Wthread-safety-beta are enabled globally (see the top-level
//     CMakeLists.txt) and promoted to errors by DHS_WERROR; a missing
//     annotation is a broken build, not a latent race.
//
//   * ThreadHostile is an explicit marker for types that mutate
//     internal state on logically-const paths (lazily built caches:
//     Chord finger tables, Kademlia bucket caches, SampleStats' lazy
//     sort). Such objects are unsafe to share across threads even
//     read-only. RunTrials statically rejects trial results that leak
//     (pointers to) thread-hostile objects out of their trial.
//
// On non-Clang compilers every annotation macro expands to nothing;
// the primitives still work, the analysis just does not run (CI runs a
// Clang leg so annotations cannot rot).

#ifndef DHS_COMMON_SYNC_H_
#define DHS_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <type_traits>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (the attribute spelling
// follows clang.llvm.org/docs/ThreadSafetyAnalysis.html).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define DHS_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define DHS_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) DHS_TS_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY DHS_TS_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reads require the capability held shared, writes exclusive.
#define GUARDED_BY(x) DHS_TS_ATTRIBUTE(guarded_by(x))

/// Like GUARDED_BY for pointers: the pointed-to data is protected.
#define PT_GUARDED_BY(x) DHS_TS_ATTRIBUTE(pt_guarded_by(x))

/// The function may be called only with the listed capabilities held
/// (exclusively / shared); it does not acquire or release them.
#define REQUIRES(...) \
  DHS_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DHS_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities and must be
/// called without / with them held.
#define ACQUIRE(...) DHS_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DHS_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DHS_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DHS_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define TRY_ACQUIRE(result, ...) \
  DHS_TS_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (it acquires them itself; holding them would deadlock).
#define EXCLUDES(...) DHS_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) DHS_TS_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the truth.
#define NO_THREAD_SAFETY_ANALYSIS \
  DHS_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace dhs {

// ---------------------------------------------------------------------------
// Annotated primitives
// ---------------------------------------------------------------------------

/// A standard exclusive mutex carrying the `capability` attribute, so
/// members can be declared GUARDED_BY an instance and the analysis can
/// track acquire/release through Lock()/Unlock()/MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock of a Mutex for a scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Wait() must be called with the
/// mutex held (enforced by the analysis); it atomically releases the
/// mutex while blocked and re-acquires it before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back without unlocking (the caller still holds it).
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until pred() holds; pred is evaluated under the mutex.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// Thread-hostility marker
// ---------------------------------------------------------------------------

/// Inherit (privately) to declare a type *thread-hostile*: it mutates
/// internal state behind const methods (lazily built caches), so
/// instances are unsafe to share between threads even when every access
/// is through a const path. Confinement — one thread owns the object for
/// its whole lifetime, or hands it over with proper synchronization — is
/// the only safe usage. The trial runner (common/thread_pool.h) keeps
/// such objects per-trial and statically rejects results that would leak
/// them across the trial boundary.
class ThreadHostile {
 protected:
  ThreadHostile() = default;
  ~ThreadHostile() = default;
  ThreadHostile(const ThreadHostile&) = default;
  ThreadHostile& operator=(const ThreadHostile&) = default;
};

namespace sync_internal {

template <typename T>
struct StripPointer {
  using type = T;
};
template <typename T>
struct StripPointer<T*> {
  using type = T;
};

template <typename T>
using Unwrap = std::remove_cv_t<typename StripPointer<
    std::remove_cv_t<std::remove_reference_t<T>>>::type>;

}  // namespace sync_internal

/// True when T is (a reference or pointer to) a thread-hostile type.
template <typename T>
inline constexpr bool kThreadHostile =
    std::is_base_of_v<ThreadHostile, sync_internal::Unwrap<T>>;

}  // namespace dhs

#endif  // DHS_COMMON_SYNC_H_
