#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dhs {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const { return count_ > 0 ? min_ : 0.0; }

double StreamingStats::max() const { return count_ > 0 ? max_ : 0.0; }

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double x : samples_) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size()));
}

double SampleStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleStats::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 1.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return std::fabs(estimate);
  return std::fabs(estimate - truth) / std::fabs(truth);
}

std::string FormatDouble(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace dhs
