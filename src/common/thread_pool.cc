#include "common/thread_pool.h"

#include <cstdlib>

namespace dhs {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    CHECK(!shutdown_) << "Submit on a shut-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.SignalAll();
    }
  }
}

ShardPool::ShardPool(int shards) : shards_(shards < 1 ? 1 : shards) {
  queues_.resize(static_cast<size_t>(shards_));
  if (shards_ <= 1) return;  // inline mode: no workers
  threads_.reserve(static_cast<size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    threads_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

ShardPool::~ShardPool() {
  if (inlined()) return;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::Post(int shard, std::function<void()> task) {
  CHECK(shard >= 0 && shard < shards_)
      << "posting to shard " << shard << " of " << shards_;
  if (inlined()) {
    task();  // single-shard baseline: run on the posting thread
    return;
  }
  // Announce BEFORE enqueueing: the controller's pending count must
  // never lag behind a worker's AcquireSlot for this task.
  ScheduleController* controller =
      controller_.load(std::memory_order_acquire);
  if (controller != nullptr) controller->TaskPosted(shard);
  {
    MutexLock lock(mu_);
    CHECK(!shutdown_) << "Post on a shut-down ShardPool";
    queues_[static_cast<size_t>(shard)].push_back(std::move(task));
    ++queued_;
  }
  work_cv_.SignalAll();
}

void ShardPool::Barrier() {
  if (inlined()) return;  // tasks already ran inline
  MutexLock lock(mu_);
  while (queued_ != 0 || active_ != 0) idle_cv_.Wait(mu_);
}

void ShardPool::RunRound(const std::function<void(int)>& fn) {
  ScheduleController* controller =
      inlined() ? nullptr : controller_.load(std::memory_order_acquire);
  if (controller != nullptr) controller->BatchBegin();
  for (int s = 0; s < shards_; ++s) {
    Post(s, [&fn, s] { fn(s); });
  }
  if (controller != nullptr) controller->BatchEnd();
  Barrier();
}

void ShardPool::SetScheduleController(ScheduleController* controller) {
  if (inlined()) return;  // a single thread is already a total order
  MutexLock lock(mu_);
  CHECK(queued_ == 0 && active_ == 0)
      << "SetScheduleController on a busy ShardPool";
  controller_.store(controller, std::memory_order_release);
}

void ShardPool::WorkerLoop(int shard) {
  std::deque<std::function<void()>>& queue =
      queues_[static_cast<size_t>(shard)];
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue.empty() && !shutdown_) work_cv_.Wait(mu_);
      if (queue.empty()) return;  // shutdown with a drained queue
      task = std::move(queue.front());
      queue.pop_front();
      --queued_;
      ++active_;
    }
    ScheduleController* controller =
        controller_.load(std::memory_order_acquire);
    if (controller != nullptr) controller->AcquireSlot(shard);
    task();
    if (controller != nullptr) controller->ReleaseSlot(shard);
    {
      MutexLock lock(mu_);
      --active_;
      if (queued_ == 0 && active_ == 0) idle_cv_.SignalAll();
    }
  }
}

int DefaultTrialThreads() {
  // Read once: DHS_THREADS is consulted before any worker exists, and
  // nothing in the codebase calls setenv.
  const char* env = std::getenv("DHS_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

uint64_t TrialSeed(uint64_t seed_base, int trial) {
  // The canonical SplitMix64 stream seeded at `seed_base`, indexed at
  // position trial + 1: mix(base + (trial+1) * golden-gamma). Unlike a
  // symmetric XOR of the two inputs, (base, trial) -> seed is injective
  // for all trial counts below 2^63, so distinct trials can never share
  // a seed — even across the small seed_base values the benches use.
  constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ull;  // SplitMix64's step
  return SplitMix64(seed_base + (static_cast<uint64_t>(trial) + 1) * kGamma);
}

}  // namespace dhs
