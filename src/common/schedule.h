// Adversarial schedule exploration for the sharded engine (CHESS/PCT
// style systematic concurrency testing).
//
// PR 6's determinism contract says a fixed-seed sharded run is
// byte-identical to the sequential oracle *under every legal
// interleaving* — but ordinary runs only witness the one interleaving
// the OS scheduler happens to produce. The controllers here serialize
// ShardPool execution into an explicitly chosen total order: every
// posted task runs alone, and whenever several shards have a runnable
// task the controller — not the OS — picks which goes next. Driving
// many such schedules (random-priority PCT, or exhaustive enumeration
// for small worlds) through audit_sim --interleave and checking the
// world digest against the 1-shard oracle turns the determinism claim
// into a property checked over the schedule space.
//
// Choice points are deterministic: grants are held while a RunRound is
// still posting (BatchBegin/BatchEnd) and until every shard with a
// posted-but-unstarted task has its worker waiting in AcquireSlot, so
// the option set at each step is a pure function of the batch — which
// is what lets ExhaustiveScheduleController replay a decided prefix
// and take the next branch.
//
// This is test-only infrastructure: nothing in src/ installs a
// controller outside the harnesses, and an installed controller
// serializes the pool (one task at a time), so it is strictly a
// correctness tool, never a performance mode.

#ifndef DHS_COMMON_SCHEDULE_H_
#define DHS_COMMON_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/sync.h"
#include "common/thread_pool.h"

namespace dhs {

/// Implements the ScheduleController protocol: tracks pending tasks
/// per shard, holds workers at AcquireSlot, and grants one slot at a
/// time at stable points (no task running, no posting in flight, and
/// every shard with pending tasks has a ready worker). Subclasses only
/// choose which ready shard runs next.
class SerializingScheduleController : public ScheduleController {
 public:
  explicit SerializingScheduleController(int shards);

  void BatchBegin() final EXCLUDES(mu_);
  void BatchEnd() final EXCLUDES(mu_);
  void TaskPosted(int shard) final EXCLUDES(mu_);
  void AcquireSlot(int shard) final EXCLUDES(mu_);
  void ReleaseSlot(int shard) final EXCLUDES(mu_);

  /// Tasks granted so far (one grant per executed task).
  uint64_t steps() const EXCLUDES(mu_);

 protected:
  /// Picks the shard to run next from `options` (sorted ascending,
  /// never empty). Called at each stable point with the controller
  /// lock held.
  virtual int PickNext(const std::vector<int>& options) REQUIRES(mu_) = 0;

  mutable Mutex mu_{"schedule_controller"};

 private:
  /// Grants one ready worker if the state is stable; no-op otherwise.
  void MaybeGrant() REQUIRES(mu_);

  CondVar cv_;  // grant hand-off: signaled on every state change
  std::vector<uint64_t> pending_ GUARDED_BY(mu_);  // posted, not started
  std::vector<bool> ready_ GUARDED_BY(mu_);    // waiting in AcquireSlot
  std::vector<bool> granted_ GUARDED_BY(mu_);  // may leave AcquireSlot
  int posting_depth_ GUARDED_BY(mu_) = 0;      // BatchBegin nesting
  bool running_ GUARDED_BY(mu_) = false;       // a granted task runs
  uint64_t steps_ GUARDED_BY(mu_) = 0;
};

/// PCT-style randomized scheduling (Burckhardt et al., "A Randomized
/// Scheduler with Probabilistic Guarantees of Finding Bugs"): shards
/// get random distinct priorities, the highest-priority ready shard
/// always runs, and with probability `change_prob` per step the chosen
/// shard is demoted below everyone — the random priority change points
/// that give PCT its bug-depth guarantee. Different seeds explore
/// different schedules; a fixed seed replays the same one.
class PctScheduleController : public SerializingScheduleController {
 public:
  PctScheduleController(int shards, uint64_t seed,
                        double change_prob = 0.1);

 protected:
  int PickNext(const std::vector<int>& options) override REQUIRES(mu_);

 private:
  Rng rng_ GUARDED_BY(mu_);
  std::vector<int64_t> priority_ GUARDED_BY(mu_);  // larger runs first
  int64_t floor_ GUARDED_BY(mu_) = 0;  // next demotion priority
  double change_prob_;
};

/// Exhaustive depth-first enumeration of the schedule tree for small
/// worlds: each run follows the decided prefix, then takes the first
/// untried branch at every new choice point. NextSchedule() advances
/// the prefix to the next unexplored leaf; drive it as
///
///   ExhaustiveScheduleController ctrl(shards);
///   do { <run the scenario with ctrl installed> }
///   while (ctrl.NextSchedule() && <schedule budget left>);
///
/// Replaying a prefix CHECKs that the recorded option set reappears
/// verbatim — if the program's choice points depend on the schedule,
/// determinism is already broken and the harness reports it.
class ExhaustiveScheduleController : public SerializingScheduleController {
 public:
  explicit ExhaustiveScheduleController(int shards);

  /// Moves to the next unexplored schedule; false when the whole tree
  /// has been visited. Call only between runs (pool drained).
  bool NextSchedule() EXCLUDES(mu_);

  /// Completed schedules so far (== leaves visited).
  uint64_t schedules_run() const EXCLUDES(mu_);

 protected:
  int PickNext(const std::vector<int>& options) override REQUIRES(mu_);

 private:
  struct Choice {
    std::vector<int> options;
    size_t index;  // branch taken in the current run
  };
  std::vector<Choice> path_ GUARDED_BY(mu_);
  size_t depth_ GUARDED_BY(mu_) = 0;  // position in the current run
  uint64_t schedules_run_ GUARDED_BY(mu_) = 0;
};

}  // namespace dhs

#endif  // DHS_COMMON_SCHEDULE_H_
