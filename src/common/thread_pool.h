// Fixed-size worker pool, the deterministic multi-trial runner, and the
// per-shard worker set used by the sharded single-world engine.
//
// The experiment harness (bench/, tools/audit_sim) averages many
// independent seeded simulator trials. Each trial owns its entire world
// — network, clients, RNG — so trials parallelize embarrassingly; the
// only shared state is the pool's own queue, which is annotated and
// checked by Clang Thread Safety Analysis (common/sync.h).
//
// Determinism contract of RunTrials: the result vector is a function of
// (n_trials, seed_base, fn) only. Trial i always runs with
// Rng(TrialSeed(seed_base, i)), results land in slot i regardless of
// completion order, and aggregation happens on the calling thread after
// every trial finished — so 1, 2 and 8 threads produce bit-identical
// output (tests/common/thread_pool_test.cc pins this).
//
// ShardPool is the other parallelism shape: one *pinned* worker per
// shard, each draining its own FIFO task queue, plus a barrier that
// the sharded network engine (dht/shard.h) uses as its tick barrier.
// Unlike ThreadPool's shared queue, work posted to shard s always runs
// on worker s — shard-owned state (stores, routing caches, load
// slices) is therefore mutated by exactly one thread, and the barrier
// provides the happens-before edge for the coordinator to exchange
// cross-shard messages between rounds.

#ifndef DHS_COMMON_THREAD_POOL_H_
#define DHS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/sync.h"

namespace dhs {

/// A fixed pool of worker threads draining a FIFO task queue.
/// Thread-safe: Submit/Wait may be called from any thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool() EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (run trial bodies through
  /// RunTrials, which captures exceptions per-trial).
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle.
  void Wait() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_{"thread_pool"};
  CondVar work_cv_;  // signaled on new work / shutdown
  CondVar idle_cv_;  // signaled when the pool may have drained
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  int active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  // Written only by the constructor (before any worker exists) and
  // joined by the destructor (after shutdown drains); concurrent reads
  // see a vector that never changes size.
  // dhs-analyze: allow(lock-unguarded-member)
  std::vector<std::thread> threads_;
};

/// Test-only hook serializing ShardPool task execution into a
/// controlled total order, so the schedule-exploration harness
/// (common/schedule.h, audit_sim --interleave) can drive adversarial
/// interleavings instead of whatever the OS scheduler produces.
///
/// Protocol, all calls made by the pool:
///   * BatchBegin/BatchEnd bracket RunRound's posting loop — grants
///     are held until the whole round is visible, which keeps the
///     controller's choice points deterministic.
///   * TaskPosted(shard) fires on the posting thread BEFORE the task
///     is enqueued, so the controller's pending count is never behind
///     a worker's AcquireSlot.
///   * AcquireSlot(shard) fires on worker `shard` after it popped a
///     task and blocks until the controller grants the slot;
///     ReleaseSlot(shard) fires when the task completed.
///
/// Implementations must be thread-safe. Inline pools (shards <= 1)
/// never invoke the controller: a single thread is already a total
/// order.
class ScheduleController {
 public:
  virtual ~ScheduleController() = default;
  virtual void BatchBegin() = 0;
  virtual void BatchEnd() = 0;
  virtual void TaskPosted(int shard) = 0;
  virtual void AcquireSlot(int shard) = 0;
  virtual void ReleaseSlot(int shard) = 0;
};

/// One worker thread per shard, each with its own task queue, plus a
/// tick barrier. `shards() <= 1` runs every task inline on the posting
/// thread (the deterministic single-shard baseline) — no thread is
/// spawned, so a 1-shard engine behaves exactly like unsharded code.
class ShardPool {
 public:
  /// Spawns one pinned worker per shard when `shards >= 2`.
  explicit ShardPool(int shards);

  /// Drains every queue, then joins the workers.
  ~ShardPool() EXCLUDES(mu_);

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Enqueues a task on shard `shard`'s worker (run inline when the
  /// pool is inline). Tasks must not throw. Post and Barrier are meant
  /// to be called from one coordinating thread; tasks themselves must
  /// not Post.
  void Post(int shard, std::function<void()> task) EXCLUDES(mu_);

  /// Tick barrier: blocks until every shard queue is empty and every
  /// worker is idle. Returning establishes a happens-before edge from
  /// all completed tasks to the caller.
  void Barrier() EXCLUDES(mu_);

  /// Convenience round: posts fn(shard) to every shard, then Barrier().
  /// When a controller is installed the posting loop is bracketed in
  /// BatchBegin/BatchEnd so the whole round is one choice frontier.
  void RunRound(const std::function<void(int)>& fn) EXCLUDES(mu_);

  /// Installs (or clears, with nullptr) the schedule controller. Not
  /// owned; must outlive its installation. Only legal while the pool
  /// is idle (between Barrier and the next Post). Ignored on inline
  /// pools.
  void SetScheduleController(ScheduleController* controller) EXCLUDES(mu_);

  int shards() const { return shards_; }

  /// True when tasks run inline on the posting thread (shards <= 1).
  bool inlined() const { return threads_.empty(); }

 private:
  void WorkerLoop(int shard) EXCLUDES(mu_);

  const int shards_;
  Mutex mu_{"shard_pool"};
  CondVar work_cv_;  // signaled on new work / shutdown
  CondVar idle_cv_;  // signaled when a worker may have drained
  std::vector<std::deque<std::function<void()>>> queues_ GUARDED_BY(mu_);
  int active_ GUARDED_BY(mu_) = 0;
  size_t queued_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  // Atomic rather than GUARDED_BY(mu_): workers load it after popping
  // a task, outside the queue lock; installation is fenced by the
  // idle-pool precondition of SetScheduleController.
  std::atomic<ScheduleController*> controller_{nullptr};
  // Constructor/destructor-only, like ThreadPool::threads_ above.
  // dhs-analyze: allow(lock-unguarded-member)
  std::vector<std::thread> threads_;
};

/// Worker count for trial runners: DHS_THREADS when set (>= 1), else
/// std::thread::hardware_concurrency().
int DefaultTrialThreads();

/// The RNG seed of trial `trial` under `seed_base`: the SplitMix64
/// stream seeded at `seed_base`, indexed at position trial + 1.
/// Injective in (seed_base, trial), so neighbouring trials get
/// decorrelated, collision-free streams, and the mapping is stable
/// across thread counts.
uint64_t TrialSeed(uint64_t seed_base, int trial);

/// Runs fn(trial_index, rng) for trial_index in [0, n_trials) across
/// `num_threads` workers and returns the results ordered by trial
/// index — never by completion order. Each trial gets a fresh
/// Rng(TrialSeed(seed_base, trial_index)) and must be self-contained:
/// build every DhtNetwork / client inside fn, return aggregates by
/// value. num_threads <= 1 runs inline on the calling thread with the
/// same seeds, producing bit-identical results.
///
/// If any trial throws, the exception from the lowest-indexed failing
/// trial is rethrown after all trials finished.
template <typename Fn>
auto RunTrials(int n_trials, uint64_t seed_base, int num_threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, int, Rng&>> {
  using Result = std::invoke_result_t<Fn&, int, Rng&>;
  static_assert(
      !kThreadHostile<Result>,
      "trial results leak (a pointer/reference to) a ThreadHostile "
      "object out of its trial; return aggregates by value instead");
  CHECK_GE(n_trials, 0);

  std::vector<std::optional<Result>> slots(
      static_cast<size_t>(n_trials));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n_trials));
  auto run_one = [&](int trial) {
    Rng rng(TrialSeed(seed_base, trial));
    try {
      slots[static_cast<size_t>(trial)].emplace(fn(trial, rng));
    } catch (...) {
      errors[static_cast<size_t>(trial)] = std::current_exception();
    }
  };

  if (num_threads <= 1 || n_trials <= 1) {
    for (int t = 0; t < n_trials; ++t) run_one(t);
  } else {
    ThreadPool pool(num_threads < n_trials ? num_threads : n_trials);
    for (int t = 0; t < n_trials; ++t) {
      pool.Submit([&run_one, t] { run_one(t); });
    }
    pool.Wait();
  }

  std::vector<Result> results;
  results.reserve(static_cast<size_t>(n_trials));
  for (int t = 0; t < n_trials; ++t) {
    if (errors[static_cast<size_t>(t)]) {
      std::rethrow_exception(errors[static_cast<size_t>(t)]);
    }
    CHECK(slots[static_cast<size_t>(t)].has_value())
        << "trial " << t << " produced no result";
    // The CHECK above aborts on a disengaged slot.
    results.push_back(std::move(
        *slots[static_cast<size_t>(t)]));  // NOLINT(bugprone-unchecked-optional-access)
  }
  return results;
}

}  // namespace dhs

#endif  // DHS_COMMON_THREAD_POOL_H_
