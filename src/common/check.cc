#include "common/check.h"

#include <cstdio>

namespace dhs {
namespace {

void DefaultCheckFailureHandler(const char* file, int line,
                                const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailureHandler g_handler = &DefaultCheckFailureHandler;

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  CheckFailureHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &DefaultCheckFailureHandler;
  return previous;
}

namespace check_internal {

FailureStream::FailureStream(const char* file, int line, const char* prefix)
    : file_(file), line_(line) {
  message_ << prefix;
}

FailureStream::~FailureStream() noexcept(false) {
  g_handler(file_, line_, message_.str());
  // A handler that returns would let execution continue past a violated
  // invariant; refuse.
  std::abort();
}

}  // namespace check_internal
}  // namespace dhs
