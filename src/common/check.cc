#include "common/check.h"

#include <atomic>
#include <cstdio>

namespace dhs {
namespace {

void DefaultCheckFailureHandler(const char* file, int line,
                                const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Atomic so CHECKs failing on one thread race neither with each other
// nor with a concurrent SetCheckFailureHandler (tests install throwing
// handlers; the parallel trial runner can fail CHECKs on any worker).
std::atomic<CheckFailureHandler> g_handler{&DefaultCheckFailureHandler};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  return g_handler.exchange(
      handler != nullptr ? handler : &DefaultCheckFailureHandler,
      std::memory_order_acq_rel);
}

namespace check_internal {

FailureStream::FailureStream(const char* file, int line, const char* prefix)
    : file_(file), line_(line) {
  message_ << prefix;
}

FailureStream::~FailureStream() noexcept(false) {
  g_handler.load(std::memory_order_acquire)(file_, line_, message_.str());
  // A handler that returns would let execution continue past a violated
  // invariant; refuse.
  std::abort();
}

}  // namespace check_internal
}  // namespace dhs
