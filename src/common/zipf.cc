#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dhs {

ZipfGenerator::ZipfGenerator(uint64_t domain, double theta)
    : domain_(domain), theta_(theta), cdf_(domain) {
  CHECK_GE(domain, 1u);
  CHECK_GE(theta, 0.0);
  double sum = 0.0;
  for (uint64_t i = 0; i < domain; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < domain; ++i) {
    cdf_[i] /= sum;
  }
  cdf_[domain - 1] = 1.0;  // guard against rounding
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfGenerator::Probability(uint64_t value) const {
  if (value < 1 || value > domain_) return 0.0;
  const double above = cdf_[value - 1];
  const double below = value >= 2 ? cdf_[value - 2] : 0.0;
  return above - below;
}

}  // namespace dhs
