#include "common/random.h"

namespace dhs {

namespace {

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // Seed expansion per the xoshiro reference implementation: run SplitMix64
  // as a stream starting at `seed`.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    s = z ^ (z >> 31);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection in the biased zone.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformInRange(uint64_t lo, uint64_t hi) {
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  return lo + UniformU64(span);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace dhs
