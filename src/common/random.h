// Deterministic pseudo-random number generation.
//
// Every randomized component in the library takes an explicit seed or an
// Rng&; there is no global RNG state. The generator is xoshiro256**, seeded
// via SplitMix64 (the construction recommended by the xoshiro authors). It
// is fast, has a 2^256-1 period, and passes BigCrush — more than adequate
// for simulation workloads; it is NOT cryptographic.

#ifndef DHS_COMMON_RANDOM_H_
#define DHS_COMMON_RANDOM_H_

#include <cstdint>

namespace dhs {

/// SplitMix64 single-step mix; also usable as a 64-bit hash finalizer.
/// Bijective on uint64_t.
uint64_t SplitMix64(uint64_t x);

/// xoshiro256** pseudo-random generator. Copyable (cheap, 32 bytes of
/// state) so simulations can fork deterministic sub-streams.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless method with rejection, so it is exactly uniform.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Forks an independent generator; deterministic given this Rng's state.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace dhs

#endif  // DHS_COMMON_RANDOM_H_
