// Runtime lock diagnostics behind common/sync.h: the per-thread held
// stack, the global acquisition-order graph with cycle detection, and
// the per-name contention aggregates.
//
// The registry below deliberately uses raw std:: primitives — wrapping
// them in dhs::Mutex would recurse straight back into this file. That
// is the one sanctioned home for them; the determinism linter
// (tools/lint) enforces it for the rest of the tree.
//
// Cost model: the held stack is a thread_local vector push/pop per
// acquisition, and the contention counters are relaxed atomic adds.
// Only acquisitions taken while the thread ALREADY holds another mutex
// touch the global graph (one std::mutex-guarded map update plus a
// DFS over recorded edges) — in this codebase every locking site is a
// leaf (pool queues, the schedule controller), so the graph path is
// cold unless someone introduces nesting, which is exactly when it
// must be watching.

#include "common/sync.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "common/check.h"

#ifndef DHS_DEADLOCK_DETECTOR_DEFAULT
#define DHS_DEADLOCK_DETECTOR_DEFAULT 0
#endif

namespace dhs {
namespace sync_internal {
namespace {

/// One acquisition site, stored by value (source_location data points
/// into static storage, so copies stay valid).
struct Site {
  const char* file = "?";
  unsigned line = 0;
};

Site MakeSite(const std::source_location& loc) {
  return Site{loc.file_name(), loc.line()};
}

struct Held {
  const Mutex* mu;
  Site site;
};

/// The held stack must survive use during thread_local destruction
/// (detached worker teardown can release locks late), so it is a plain
/// pointer to a leaked vector rather than a vector with a destructor.
std::vector<Held>& HeldStack() {
  thread_local std::vector<Held>* stack = new std::vector<Held>();
  return *stack;
}

/// An observed acquisition ordering: `holder` was held at holder_site
/// when `acquired` was taken at acquired_site (first observation wins;
/// later identical orderings are no-ops).
struct Edge {
  const Mutex* acquired;
  const char* holder_name;
  const char* acquired_name;
  Site holder_site;
  Site acquired_site;
};

struct Registry {
  std::mutex mu;
  std::atomic<bool> detector_enabled{DHS_DEADLOCK_DETECTOR_DEFAULT != 0};
  /// Adjacency: edges[A] = the orderings A -> B observed so far.
  std::map<const Mutex*, std::vector<Edge>> edges;
  /// Counters of destroyed mutexes, folded by registered name.
  std::map<std::string, MutexProfile> retired;
  /// Live mutexes that ever recorded a counter or an edge.
  std::set<const Mutex*> live;
};

/// Leaked singleton: mutexes with static storage duration may be
/// destroyed (and Retire()d) after any registry destructor would run.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

void AppendSite(std::ostringstream& os, const Site& site) {
  os << site.file << ":" << site.line;
}

/// DFS over the recorded orderings: is `to` reachable from `from`?
/// Fills `path` with the edges of one witness path when it is.
bool FindPath(const Registry& registry, const Mutex* from, const Mutex* to,
              std::set<const Mutex*>& visited, std::vector<Edge>& path) {
  if (from == to) return true;
  if (!visited.insert(from).second) return false;
  auto it = registry.edges.find(from);
  if (it == registry.edges.end()) return false;
  for (const Edge& edge : it->second) {
    path.push_back(edge);
    if (FindPath(registry, edge.acquired, to, visited, path)) return true;
    path.pop_back();
  }
  return false;
}

/// Fires the CHECK failure hook from the acquiring site. Never returns
/// normally (the default handler aborts, the test handler throws).
void FireDeadlockReport(const Site& site, const std::string& message) {
  check_internal::FailureStream(site.file, static_cast<int>(site.line),
                                "DEADLOCK: ")
      << message;
}

}  // namespace

void PreAcquire(const Mutex* mu, const std::source_location& loc) {
  const std::vector<Held>& held = HeldStack();
  // Self-deadlock: a non-recursive mutex re-acquired by its holder
  // would block forever, so report before touching the native lock.
  for (const Held& h : held) {
    if (h.mu != mu) continue;
    std::ostringstream os;
    os << "self deadlock: Mutex \"" << mu->name()
       << "\" is already held by this thread (acquired at ";
    AppendSite(os, h.site);
    os << ") and re-acquiring it here would block forever";
    FireDeadlockReport(MakeSite(loc), os.str());
    return;  // unreachable unless the handler misbehaves
  }
  Registry& registry = GetRegistry();
  if (held.empty() ||
      !registry.detector_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  const Site acquire_site = MakeSite(loc);
  std::string report;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const Held& h : held) {
      // Cycle check BEFORE inserting: would the new ordering
      // h.mu -> mu close a loop mu ~> h.mu built from earlier
      // acquisitions?
      std::set<const Mutex*> visited;
      std::vector<Edge> path;
      if (FindPath(registry, mu, h.mu, visited, path)) {
        std::ostringstream os;
        os << "lock-order inversion: acquiring Mutex \"" << mu->name()
           << "\" while holding Mutex \"" << h.mu->name()
           << "\" (held since ";
        AppendSite(os, h.site);
        os << "), but the reversed order is already established:";
        for (const Edge& edge : path) {
          os << " [\"" << edge.holder_name << "\" held at ";
          AppendSite(os, edge.holder_site);
          os << " -> \"" << edge.acquired_name << "\" acquired at ";
          AppendSite(os, edge.acquired_site);
          os << "]";
        }
        report = os.str();
        break;
      }
      std::vector<Edge>& out = registry.edges[h.mu];
      const bool known =
          std::any_of(out.begin(), out.end(),
                      [mu](const Edge& e) { return e.acquired == mu; });
      if (!known) {
        out.push_back(Edge{mu, h.mu->name(), mu->name(), h.site,
                           acquire_site});
        registry.live.insert(h.mu);
        registry.live.insert(mu);
      }
    }
  }
  // Fire outside the registry lock: the installed handler may throw
  // (the test hook) and must not leave the registry poisoned.
  if (!report.empty()) FireDeadlockReport(acquire_site, report);
}

void PostAcquire(const Mutex* mu, const std::source_location& loc) {
  HeldStack().push_back(Held{mu, MakeSite(loc)});
  // First acquisition registers the mutex with the profile registry, so
  // SnapshotMutexProfiles() covers live leaf mutexes too (not just ones
  // that formed an ordering edge or were already destroyed). One-time
  // cost per mutex; later acquisitions see the flag and skip.
  if (!mu->counters_.registered.exchange(true, std::memory_order_relaxed)) {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.live.insert(mu);
  }
}

void PreRelease(const Mutex* mu) {
  std::vector<Held>& held = HeldStack();
  // Unlock order need not be LIFO (manual Lock/Unlock pairs), so drop
  // the most recent matching entry.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Unlocking a mutex this thread never locked is a usage bug severe
  // enough to flag unconditionally.
  check_internal::FailureStream(__FILE__, __LINE__, "DEADLOCK: ")
      << "Mutex \"" << mu->name()
      << "\" unlocked by a thread that does not hold it";
}

bool HeldByThisThread(const Mutex* mu) {
  const std::vector<Held>& held = HeldStack();
  return std::any_of(held.begin(), held.end(),
                     [mu](const Held& h) { return h.mu == mu; });
}

void AssertHeldFailure(const Mutex* mu, const std::source_location& loc) {
  check_internal::FailureStream(loc.file_name(),
                                static_cast<int>(loc.line()),
                                "DEADLOCK: ")
      << "AssertHeld: Mutex \"" << mu->name()
      << "\" is not held by this thread";
}

void Retire(const Mutex* mu) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  MutexProfile& agg = registry.retired[mu->name()];
  agg.name = "retired";  // real name lives in the map key
  agg.acquisitions +=
      mu->counters_.acquisitions.load(std::memory_order_relaxed);
  agg.contended += mu->counters_.contended.load(std::memory_order_relaxed);
  agg.wait_ns += mu->counters_.wait_ns.load(std::memory_order_relaxed);
  // Drop the graph node: a new mutex allocated at this address must
  // not inherit stale orderings.
  registry.edges.erase(mu);
  for (auto& [holder, out] : registry.edges) {
    (void)holder;
    out.erase(std::remove_if(
                  out.begin(), out.end(),
                  [mu](const Edge& e) { return e.acquired == mu; }),
              out.end());
  }
  registry.live.erase(mu);
}

}  // namespace sync_internal

void Mutex::LockContended() {
  counters_.contended.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  mu_.lock();
  const auto waited = std::chrono::steady_clock::now() - t0;
  counters_.wait_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count()),
      std::memory_order_relaxed);
}

std::vector<MutexProfile> SnapshotMutexProfiles() {
  sync_internal::Registry& registry = sync_internal::GetRegistry();
  std::map<std::string, MutexProfile> by_name;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    by_name = registry.retired;
    for (const Mutex* mu : registry.live) {
      MutexProfile& agg = by_name[mu->name()];
      agg.acquisitions +=
          mu->counters_.acquisitions.load(std::memory_order_relaxed);
      agg.contended +=
          mu->counters_.contended.load(std::memory_order_relaxed);
      agg.wait_ns += mu->counters_.wait_ns.load(std::memory_order_relaxed);
    }
  }
  std::vector<MutexProfile> profiles;
  profiles.reserve(by_name.size());
  for (auto& [name, profile] : by_name) {
    // The map key owns the string only inside this function; point the
    // profile at the mutex's interned literal instead. Retired names
    // come from string literals too (Mutex requires it), so find any
    // live or retired literal... they are literals by contract, but we
    // only have the std::string key here. Keep the bytes alive by
    // interning into a leaked set.
    static std::set<std::string>* interned = new std::set<std::string>();
    static std::mutex* interned_mu = new std::mutex();
    std::lock_guard<std::mutex> lock(*interned_mu);
    profile.name = interned->insert(name).first->c_str();
    profiles.push_back(profile);
  }
  return profiles;
}

bool SetDeadlockDetectorEnabled(bool enabled) {
  return sync_internal::GetRegistry().detector_enabled.exchange(enabled);
}

bool DeadlockDetectorEnabled() {
  return sync_internal::GetRegistry().detector_enabled.load();
}

}  // namespace dhs
