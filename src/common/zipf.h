// Zipf-distributed integer generator, used by the paper's workload:
// relation attributes receive values from Zipf(theta = 0.7).
//
// P(value = i) is proportional to 1 / i^theta for i in [1, domain]. The
// paper's convention (as in most P2P/database literature, e.g. Gray et al.
// SIGMOD '94) has theta = 0 as uniform and larger theta as more skewed.

#ifndef DHS_COMMON_ZIPF_H_
#define DHS_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace dhs {

/// Generates Zipf(theta)-distributed values over [1, domain].
///
/// The constructor precomputes the CDF (O(domain) time and space); each
/// sample is then a binary search, O(log domain). For the domain sizes used
/// in the evaluation (up to a few thousand distinct attribute values) this
/// is both exact and fast.
class ZipfGenerator {
 public:
  /// `domain` >= 1 distinct values; `theta` >= 0 (0 = uniform).
  ZipfGenerator(uint64_t domain, double theta);

  /// Draws one value in [1, domain].
  uint64_t Sample(Rng& rng) const;

  /// Exact probability of drawing `value` (1-based); 0 outside the domain.
  double Probability(uint64_t value) const;

  uint64_t domain() const { return domain_; }
  double theta() const { return theta_; }

 private:
  uint64_t domain_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i + 1)
};

}  // namespace dhs

#endif  // DHS_COMMON_ZIPF_H_
