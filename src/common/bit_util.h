// Small bit-manipulation helpers shared by the sketch and DHT layers.

#ifndef DHS_COMMON_BIT_UTIL_H_
#define DHS_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace dhs {

/// True iff x is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); undefined for x == 0.
constexpr int Log2Floor(uint64_t x) {
  return 63 - std::countl_zero(x);
}

/// ceil(log2(x)); Log2Ceil(1) == 0. Undefined for x == 0.
constexpr int Log2Ceil(uint64_t x) {
  return IsPowerOfTwo(x) ? Log2Floor(x) : Log2Floor(x) + 1;
}

/// The k low-order bits of x. LowBits(x, 64) == x; LowBits(x, 0) == 0.
constexpr uint64_t LowBits(uint64_t x, int k) {
  if (k >= 64) return x;
  if (k <= 0) return 0;
  return x & ((uint64_t{1} << k) - 1);
}

/// The value of bit position k (0 = least significant) of x.
constexpr int GetBit(uint64_t x, int k) {
  return static_cast<int>((x >> k) & 1u);
}

}  // namespace dhs

#endif  // DHS_COMMON_BIT_UTIL_H_
