// Small bit-manipulation helpers shared by the sketch and DHT layers.

#ifndef DHS_COMMON_BIT_UTIL_H_
#define DHS_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>
#include <string>

namespace dhs {

/// True iff x is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); undefined for x == 0.
constexpr int Log2Floor(uint64_t x) {
  return 63 - std::countl_zero(x);
}

/// ceil(log2(x)); Log2Ceil(1) == 0. Undefined for x == 0.
constexpr int Log2Ceil(uint64_t x) {
  return IsPowerOfTwo(x) ? Log2Floor(x) : Log2Floor(x) + 1;
}

/// The k low-order bits of x. LowBits(x, 64) == x; LowBits(x, 0) == 0.
constexpr uint64_t LowBits(uint64_t x, int k) {
  if (k >= 64) return x;
  if (k <= 0) return 0;
  return x & ((uint64_t{1} << k) - 1);
}

/// The value of bit position k (0 = least significant) of x.
constexpr int GetBit(uint64_t x, int k) {
  return static_cast<int>((x >> k) & 1u);
}

// Endian-explicit byte codecs. All wire formats in src/sketch/ and
// src/dht/ route through these (enforced by the serial-raw-bytes rule
// in tools/analysis/dhs_analyze.py) so byte order is always spelled
// out and never depends on host endianness or type-punning.

/// Appends x to out, least-significant byte first.
inline void AppendLE16(std::string& out, uint16_t x) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>(x >> (8 * i)));
}
inline void AppendLE32(std::string& out, uint32_t x) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(x >> (8 * i)));
}
inline void AppendLE64(std::string& out, uint64_t x) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(x >> (8 * i)));
}

/// Appends x to out, most-significant byte first.
inline void AppendBE16(std::string& out, uint16_t x) {
  for (int i = 1; i >= 0; --i) out.push_back(static_cast<char>(x >> (8 * i)));
}
inline void AppendBE32(std::string& out, uint32_t x) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<char>(x >> (8 * i)));
}
inline void AppendBE64(std::string& out, uint64_t x) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<char>(x >> (8 * i)));
}

/// Reads a little-endian integer from p (any alignment, any host).
constexpr uint16_t LoadLE16(const char* p) {
  uint16_t x = 0;
  for (int i = 1; i >= 0; --i) x = (x << 8) | static_cast<uint8_t>(p[i]);
  return x;
}
constexpr uint32_t LoadLE32(const char* p) {
  uint32_t x = 0;
  for (int i = 3; i >= 0; --i) x = (x << 8) | static_cast<uint8_t>(p[i]);
  return x;
}
constexpr uint64_t LoadLE64(const char* p) {
  uint64_t x = 0;
  for (int i = 7; i >= 0; --i) x = (x << 8) | static_cast<uint8_t>(p[i]);
  return x;
}

/// Reads a big-endian integer from p (any alignment, any host).
constexpr uint16_t LoadBE16(const char* p) {
  uint16_t x = 0;
  for (int i = 0; i < 2; ++i) x = (x << 8) | static_cast<uint8_t>(p[i]);
  return x;
}
constexpr uint32_t LoadBE32(const char* p) {
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x = (x << 8) | static_cast<uint8_t>(p[i]);
  return x;
}
constexpr uint64_t LoadBE64(const char* p) {
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | static_cast<uint8_t>(p[i]);
  return x;
}

}  // namespace dhs

#endif  // DHS_COMMON_BIT_UTIL_H_
