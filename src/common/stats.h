// Statistics accumulators used for experiment reporting: streaming
// mean/variance (Welford), and a sample collector for percentiles and
// relative-error summaries.

#ifndef DHS_COMMON_STATS_H_
#define DHS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

namespace dhs {

/// Streaming count/mean/variance/min/max accumulator (Welford's method).
/// O(1) space; numerically stable. Thread-compatible: const accessors
/// mutate nothing, so distinct threads may read a shared instance; any
/// writer needs external synchronization. The parallel trial runner
/// accumulates one instance per trial and Merge()s them serially in
/// trial order (common/thread_pool.h).
class StreamingStats {
 public:
  StreamingStats() = default;

  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const StreamingStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples for percentile queries. O(n) space.
///
/// ThreadHostile: Percentile()/Median() lazily sort the sample buffer
/// behind const, so even concurrent *readers* race. Keep instances
/// confined to one thread (per-trial in the parallel runner) and merge
/// on the aggregating thread.
class SampleStats : private ThreadHostile {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  /// Appends every sample of `other` (aggregation across trials).
  void Merge(const SampleStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// p in [0, 1]; nearest-rank percentile. Returns 0 when empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// |estimate - truth| / truth. Returns |estimate| when truth == 0 (so a
/// correct zero estimate reports zero error).
double RelativeError(double estimate, double truth);

/// Formats a double with `digits` significant decimals (reporting helper).
std::string FormatDouble(double x, int digits = 2);

}  // namespace dhs

#endif  // DHS_COMMON_STATS_H_
