// Minimal Status / StatusOr error-handling vocabulary, in the style of
// RocksDB / absl. The library does not use exceptions for control flow;
// fallible operations return Status (or StatusOr<T> when they produce a
// value). Statuses are cheap to copy: OK carries no allocation.

#ifndef DHS_COMMON_STATUS_H_
#define DHS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace dhs {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,   // e.g. all replicas of a DHT key are on failed nodes
  kDeadlineExceeded,  // a message timed out in flight (transient; retryable)
  kInternal,
};

/// Returns a human-readable name for a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. Instances are immutable after creation.
///
/// [[nodiscard]] at class level: silently dropping a Status hides
/// failures, so every call site must consume it (check ok(), CHECK_OK,
/// propagate) or cast to void with a comment justifying why the error
/// is genuinely irrelevant.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: either holds a T or a non-OK Status.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr usage.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // NOLINT justification below: ok() implies value_ is engaged (the only
  // constructors are from-value and from-non-OK-status), and the CHECK
  // on the preceding line aborts before the access on the error path —
  // bugprone-unchecked-optional-access cannot see through either.
  const T& value() const& {
    CHECK(ok()) << "value() on error status: " << status_.ToString();
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  T& value() & {
    CHECK(ok()) << "value() on error status: " << status_.ToString();
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  T&& value() && {
    CHECK(ok()) << "value() on error status: " << status_.ToString();
    return std::move(*value_);  // NOLINT(bugprone-unchecked-optional-access)
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dhs

#endif  // DHS_COMMON_STATUS_H_
