#include "common/schedule.h"

#include <algorithm>

#include "common/check.h"

namespace dhs {

SerializingScheduleController::SerializingScheduleController(int shards) {
  CHECK_GE(shards, 1);
  // The CHECK never returns on failure, but the optimizer cannot see
  // that; the clamp keeps a hypothetical negative `shards` from
  // reaching the allocations (-Wstringop-overflow).
  const size_t n = static_cast<size_t>(shards < 1 ? 1 : shards);
  pending_.assign(n, 0);
  ready_.assign(n, false);
  granted_.assign(n, false);
}

void SerializingScheduleController::BatchBegin() {
  MutexLock lock(mu_);
  ++posting_depth_;
}

void SerializingScheduleController::BatchEnd() {
  {
    MutexLock lock(mu_);
    CHECK_GT(posting_depth_, 0);
    --posting_depth_;
    MaybeGrant();
  }
  cv_.SignalAll();
}

void SerializingScheduleController::TaskPosted(int shard) {
  MutexLock lock(mu_);
  // A new pending task can only shrink the stable set, never grant.
  ++pending_[static_cast<size_t>(shard)];
}

void SerializingScheduleController::AcquireSlot(int shard) {
  const size_t s = static_cast<size_t>(shard);
  MutexLock lock(mu_);
  CHECK_GT(pending_[s], 0u) << "AcquireSlot without a matching Post";
  CHECK(!ready_[s]) << "one worker per shard may wait at a time";
  --pending_[s];
  ready_[s] = true;
  MaybeGrant();
  cv_.SignalAll();
  while (!granted_[s]) cv_.Wait(mu_);
  granted_[s] = false;
}

void SerializingScheduleController::ReleaseSlot(int shard) {
  (void)shard;
  {
    MutexLock lock(mu_);
    CHECK(running_) << "ReleaseSlot without a running task";
    running_ = false;
    MaybeGrant();
  }
  cv_.SignalAll();
}

uint64_t SerializingScheduleController::steps() const {
  MutexLock lock(mu_);
  return steps_;
}

void SerializingScheduleController::MaybeGrant() {
  if (running_ || posting_depth_ > 0) return;
  std::vector<int> options;
  for (size_t s = 0; s < ready_.size(); ++s) {
    // Stability: a pending task whose worker is not yet waiting means
    // a pop is in flight — that worker will reach AcquireSlot and
    // retrigger, so hold the grant to keep the option set complete.
    if (pending_[s] > 0 && !ready_[s]) return;
    if (ready_[s]) options.push_back(static_cast<int>(s));
  }
  if (options.empty()) return;
  const int pick = PickNext(options);
  CHECK(std::find(options.begin(), options.end(), pick) != options.end())
      << "PickNext returned shard " << pick << " outside the option set";
  ready_[static_cast<size_t>(pick)] = false;
  granted_[static_cast<size_t>(pick)] = true;
  running_ = true;
  ++steps_;
}

PctScheduleController::PctScheduleController(int shards, uint64_t seed,
                                             double change_prob)
    : SerializingScheduleController(shards),
      rng_(seed),
      change_prob_(change_prob) {
  MutexLock lock(mu_);
  // Random distinct initial priorities: a Fisher-Yates permutation of
  // 1..shards (higher runs first).
  std::vector<int64_t> perm(static_cast<size_t>(shards));
  for (size_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<int64_t>(i) + 1;
  }
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng_.UniformU64(i)]);
  }
  priority_ = std::move(perm);
}

int PctScheduleController::PickNext(const std::vector<int>& options) {
  int pick = options.front();
  for (int s : options) {
    if (priority_[static_cast<size_t>(s)] >
        priority_[static_cast<size_t>(pick)]) {
      pick = s;
    }
  }
  // PCT priority change point: demote the chosen shard below every
  // other so a different shard leads at the next step.
  if (rng_.Bernoulli(change_prob_)) {
    priority_[static_cast<size_t>(pick)] = --floor_;
  }
  return pick;
}

ExhaustiveScheduleController::ExhaustiveScheduleController(int shards)
    : SerializingScheduleController(shards) {}

int ExhaustiveScheduleController::PickNext(const std::vector<int>& options) {
  if (depth_ < path_.size()) {
    const Choice& decided = path_[depth_];
    CHECK(decided.options == options)
        << "schedule-dependent choice point at depth " << depth_
        << ": the option set changed across runs, so the program's "
           "control flow is not schedule-independent";
    const int pick = decided.options[decided.index];
    ++depth_;
    return pick;
  }
  path_.push_back(Choice{options, 0});
  ++depth_;
  return options.front();
}

bool ExhaustiveScheduleController::NextSchedule() {
  MutexLock lock(mu_);
  ++schedules_run_;
  depth_ = 0;
  // Backtrack: advance the deepest choice with an untried branch and
  // drop everything below it.
  while (!path_.empty()) {
    Choice& last = path_.back();
    if (++last.index < last.options.size()) return true;
    path_.pop_back();
  }
  return false;
}

uint64_t ExhaustiveScheduleController::schedules_run() const {
  MutexLock lock(mu_);
  return schedules_run_;
}

}  // namespace dhs
