// CHECK / DCHECK / CHECK_OK invariant macros with streamed messages.
//
// CHECK(cond) aborts the process (via the installed failure handler) when
// `cond` is false, printing file:line, the failed expression and any
// streamed context:
//
//   CHECK(idx < ring_.size()) << "node " << id << " not in ring";
//   CHECK_EQ(loads_.size(), ring_.size());
//   CHECK_OK(network->AuditFull());
//
// DCHECK* variants compile to nothing under NDEBUG (this repo keeps
// NDEBUG off in all build types, so they are normally live). CHECK*
// variants are always on; use them where the cost is off the hot path or
// the invariant guards memory safety.
//
// The failure handler is replaceable (SetCheckFailureHandler), so tests
// can observe CHECK failures without dying — the test handler typically
// throws. The default handler writes the message to stderr and aborts.
// A handler must not return: returning would continue execution past a
// violated invariant, so the CHECK machinery aborts if one does.

#ifndef DHS_COMMON_CHECK_H_
#define DHS_COMMON_CHECK_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace dhs {

/// Receives every CHECK failure: source location and the fully formatted
/// message (expression plus streamed context). Must not return; throwing
/// is allowed (the test hook).
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const std::string& message);

/// Installs `handler` (nullptr restores the default abort handler) and
/// returns the previously installed one. Thread-safe: the handler slot
/// is a single atomic pointer, so concurrent installs and concurrent
/// CHECK failures are race-free (each failing CHECK fires whichever
/// handler was installed when it completed). Intended for test setup.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

namespace check_internal {

/// Accumulates the streamed message for one failing CHECK and fires the
/// failure handler at the end of the full expression.
class FailureStream {
 public:
  FailureStream(const char* file, int line, const char* prefix);
  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  /// Fires the handler. noexcept(false): the test hook throws through it.
  ~FailureStream() noexcept(false);

  template <typename T>
  FailureStream& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream message_;
};

/// Ternary-operator glue: makes the failure branch void. Takes const&
/// so it binds both a bare FailureStream temporary and the lvalue
/// reference operator<< returns.
struct Voidify {
  void operator&(const FailureStream&) {}
};

/// Renders one operand of a binary CHECK (CHECK_EQ etc.). The generic
/// overload streams the value; (un)signed char prints numerically so a
/// failure message never embeds raw bytes.
template <typename T>
void AppendValue(std::ostringstream& os, const T& v) {
  os << v;
}
inline void AppendValue(std::ostringstream& os, char v) {
  os << static_cast<int>(v);
}
inline void AppendValue(std::ostringstream& os, signed char v) {
  os << static_cast<int>(v);
}
inline void AppendValue(std::ostringstream& os, unsigned char v) {
  os << static_cast<int>(v);
}

/// Builds the " (a vs b)" operand rendering for binary CHECKs.
template <typename A, typename B>
std::string FormatBinary(const A& a, const B& b) {
  std::ostringstream os;
  os << " (";
  AppendValue(os, a);
  os << " vs ";
  AppendValue(os, b);
  os << ")";
  return os.str();
}

/// True when a Status-like object (anything with ok()) is OK. Duck-typed
/// so check.h needs no include of status.h (status.h includes check.h).
template <typename StatusLike>
bool IsOk(const StatusLike& s) {
  return s.ok();
}

/// Error text of a failed Status or StatusOr.
template <typename StatusLike>
std::string ErrorText(const StatusLike& s) {
  if constexpr (requires { s.status(); }) {
    return s.status().ToString();  // StatusOr
  } else {
    return s.ToString();  // Status
  }
}

}  // namespace check_internal
}  // namespace dhs

// The ternary keeps CHECK usable in unbraced if/else bodies; the
// FailureStream temporary lives to the end of the full expression, so all
// streamed context is collected before the handler fires.
#define DHS_CHECK_IMPL(cond, message)                              \
  (cond) ? (void)0                                                 \
         : ::dhs::check_internal::Voidify() &                      \
               ::dhs::check_internal::FailureStream(__FILE__,      \
                                                    __LINE__,      \
                                                    message)

#define CHECK(cond) DHS_CHECK_IMPL((cond), "CHECK failed: " #cond)

#define DHS_CHECK_BINARY_IMPL(a, b, op, name)                              \
  DHS_CHECK_IMPL((a)op(b), "CHECK_" name " failed: " #a " " #op " " #b)    \
      << ::dhs::check_internal::FormatBinary((a), (b))

#define CHECK_EQ(a, b) DHS_CHECK_BINARY_IMPL(a, b, ==, "EQ")
#define CHECK_NE(a, b) DHS_CHECK_BINARY_IMPL(a, b, !=, "NE")
#define CHECK_LT(a, b) DHS_CHECK_BINARY_IMPL(a, b, <, "LT")
#define CHECK_LE(a, b) DHS_CHECK_BINARY_IMPL(a, b, <=, "LE")
#define CHECK_GT(a, b) DHS_CHECK_BINARY_IMPL(a, b, >, "GT")
#define CHECK_GE(a, b) DHS_CHECK_BINARY_IMPL(a, b, >=, "GE")

// CHECK_OK evaluates its argument exactly once (auto&& extends a
// temporary's lifetime across the loop). The for-loop avoids the
// dangling-else hazard; it runs at most one iteration because the
// handler does not return (a returning handler hits the abort in the
// increment clause).
#define CHECK_OK(expr)                                                     \
  for (auto&& dhs_check_status = (expr);                                   \
       !::dhs::check_internal::IsOk(dhs_check_status); std::abort())       \
  ::dhs::check_internal::FailureStream(__FILE__, __LINE__,                 \
                                       "CHECK_OK failed: " #expr)          \
      << " " << ::dhs::check_internal::ErrorText(dhs_check_status) << " "

#ifdef NDEBUG
// The glog pattern: the body (including the streamed operands and the
// condition itself) is compiled but never executed, so variables used
// only in DCHECKs do not become -Wunused warnings in NDEBUG builds.
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) \
  while (false) CHECK_NE(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_GT(a, b) \
  while (false) CHECK_GT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#define DCHECK_OK(expr) \
  while (false) CHECK_OK(expr)
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#define DCHECK_OK(expr) CHECK_OK(expr)
#endif

#endif  // DHS_COMMON_CHECK_H_
