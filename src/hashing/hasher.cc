#include "hashing/hasher.h"

#include "common/random.h"
#include "hashing/md4.h"

namespace dhs {

uint64_t UniformHasher::HashU64(uint64_t value) const {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>(value >> (8 * i));
  }
  return Hash(std::string_view(bytes, 8));
}

uint64_t Md4Hasher::Hash(std::string_view data) const {
  return Md4::DigestToU64(Md4::Hash(data));
}

uint64_t Md4Hasher::HashU64(uint64_t value) const {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return Md4::DigestToU64(Md4::Hash(bytes, 8));
}

uint64_t MixHasher::Hash(std::string_view data) const {
  // FNV-1a accumulation, then SplitMix64 finalization for avalanche.
  uint64_t h = 0xcbf29ce484222325ULL ^ salt_;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h);
}

uint64_t MixHasher::HashU64(uint64_t value) const {
  return SplitMix64(SplitMix64(value ^ salt_) + 0x9e3779b97f4a7c15ULL);
}

std::unique_ptr<UniformHasher> MakeHasher(const std::string& name) {
  if (name == "md4") return std::make_unique<Md4Hasher>();
  if (name == "mix") return std::make_unique<MixHasher>();
  return nullptr;
}

}  // namespace dhs
