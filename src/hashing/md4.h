// MD4 message digest (RFC 1320), implemented from the specification.
//
// The paper's evaluation creates node and item IDs with MD4 ("selected due
// to its speed on 32-bit CPUs"). MD4 is cryptographically broken and is
// used here only as the paper's pseudo-uniform hash; see hasher.h for the
// general hashing interface.

#ifndef DHS_HASHING_MD4_H_
#define DHS_HASHING_MD4_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dhs {

/// Incremental MD4 hasher. Usage:
///   Md4 md4;
///   md4.Update(data, len);
///   Md4::Digest d = md4.Finalize();
/// Finalize() may be called once; afterwards the object must be Reset().
class Md4 {
 public:
  using Digest = std::array<uint8_t, 16>;

  Md4() { Reset(); }

  /// Restores the initial state so the object can hash a new message.
  void Reset();

  /// Appends `len` bytes of message data.
  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  /// Completes padding and returns the 128-bit digest.
  Digest Finalize();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);
  static Digest Hash(const void* data, size_t len);

  /// Digest rendered as 32 lowercase hex characters.
  static std::string ToHex(const Digest& digest);

  /// First 8 digest bytes interpreted as a little-endian uint64 — the
  /// L-bit ID derivation used by the DHT layer.
  static uint64_t DigestToU64(const Digest& digest);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t total_len_ = 0;     // message length in bytes
  uint8_t buffer_[64];         // partial block
  size_t buffer_len_ = 0;
};

}  // namespace dhs

#endif  // DHS_HASHING_MD4_H_
