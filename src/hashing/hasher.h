// Pseudo-uniform hashing of items to L-bit IDs.
//
// Hash sketches (and DHTs) assume a hash h : D -> [0, 2^L) that distributes
// items uniformly. DHTs already provide such IDs (the paper's key insight:
// the DHT hash doubles as the sketch hash). Two implementations:
//   * Md4Hasher   — the paper's choice (MD4 over the item bytes);
//   * MixHasher   — SplitMix64 finalizer, ~20x faster, same uniformity for
//                   simulation purposes.

#ifndef DHS_HASHING_HASHER_H_
#define DHS_HASHING_HASHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/bit_util.h"

namespace dhs {

/// Maps items to pseudo-uniform 64-bit values; the DHT/DHS layers truncate
/// to L (resp. k) bits. Implementations must be deterministic and stateless
/// (const Hash*), so one instance can be shared across the simulation.
class UniformHasher {
 public:
  virtual ~UniformHasher() = default;

  /// Hash of an arbitrary byte string.
  virtual uint64_t Hash(std::string_view data) const = 0;

  /// Hash of a 64-bit item identifier. Default implementation hashes the
  /// 8 little-endian bytes of `value`.
  virtual uint64_t HashU64(uint64_t value) const;

  /// Hash truncated to the low `bits` bits, i.e. an ID in [0, 2^bits).
  uint64_t HashToBits(std::string_view data, int bits) const {
    return LowBits(Hash(data), bits);
  }
  uint64_t HashU64ToBits(uint64_t value, int bits) const {
    return LowBits(HashU64(value), bits);
  }
};

/// MD4-based hasher (RFC 1320), as used in the paper's evaluation.
class Md4Hasher : public UniformHasher {
 public:
  uint64_t Hash(std::string_view data) const override;
  uint64_t HashU64(uint64_t value) const override;
};

/// SplitMix64-finalizer hasher: fast, high-quality avalanche, suitable for
/// large simulated workloads. Byte strings are combined with an FNV-1a pass
/// followed by the finalizer.
class MixHasher : public UniformHasher {
 public:
  /// `salt` decorrelates independent hash functions (e.g. per metric).
  explicit MixHasher(uint64_t salt = 0) : salt_(salt) {}

  uint64_t Hash(std::string_view data) const override;
  uint64_t HashU64(uint64_t value) const override;

 private:
  uint64_t salt_;
};

/// Named constructor for the hasher selected by a config string:
/// "md4" -> Md4Hasher, "mix" -> MixHasher. Returns nullptr for unknown
/// names.
std::unique_ptr<UniformHasher> MakeHasher(const std::string& name);

}  // namespace dhs

#endif  // DHS_HASHING_HASHER_H_
