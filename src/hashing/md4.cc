#include "hashing/md4.h"

#include <algorithm>
#include <cstring>

namespace dhs {

namespace {

constexpr uint32_t Rotl32(uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

// The three auxiliary functions from RFC 1320 §3.4.
constexpr uint32_t F(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) | (~x & z);
}
constexpr uint32_t G(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) | (x & z) | (y & z);
}
constexpr uint32_t H(uint32_t x, uint32_t y, uint32_t z) {
  return x ^ y ^ z;
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreLe32(uint8_t* p, uint32_t x) {
  p[0] = static_cast<uint8_t>(x);
  p[1] = static_cast<uint8_t>(x >> 8);
  p[2] = static_cast<uint8_t>(x >> 16);
  p[3] = static_cast<uint8_t>(x >> 24);
}

}  // namespace

void Md4::Reset() {
  state_[0] = 0x67452301u;
  state_[1] = 0xefcdab89u;
  state_[2] = 0x98badcfeu;
  state_[3] = 0x10325476u;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Md4::ProcessBlock(const uint8_t block[64]) {
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = LoadLe32(block + 4 * i);

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  // Round 1: [abcd k s]  a = (a + F(b,c,d) + X[k]) <<< s.
  auto ff = [&x](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k,
                 int s) { aa = Rotl32(aa + F(bb, cc, dd) + x[k], s); };
  for (int k = 0; k < 16; k += 4) {
    ff(a, b, c, d, k + 0, 3);
    ff(d, a, b, c, k + 1, 7);
    ff(c, d, a, b, k + 2, 11);
    ff(b, c, d, a, k + 3, 19);
  }

  // Round 2: a = (a + G(b,c,d) + X[k] + 0x5a827999) <<< s.
  auto gg = [&x](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k,
                 int s) {
    aa = Rotl32(aa + G(bb, cc, dd) + x[k] + 0x5a827999u, s);
  };
  for (int k = 0; k < 4; ++k) {
    gg(a, b, c, d, k + 0, 3);
    gg(d, a, b, c, k + 4, 5);
    gg(c, d, a, b, k + 8, 9);
    gg(b, c, d, a, k + 12, 13);
  }

  // Round 3: a = (a + H(b,c,d) + X[k] + 0x6ed9eba1) <<< s.
  auto hh = [&x](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k,
                 int s) {
    aa = Rotl32(aa + H(bb, cc, dd) + x[k] + 0x6ed9eba1u, s);
  };
  static constexpr int kRound3Order[16] = {0, 8,  4, 12, 2, 10, 6, 14,
                                           1, 9,  5, 13, 3, 11, 7, 15};
  for (int i = 0; i < 16; i += 4) {
    hh(a, b, c, d, kRound3Order[i + 0], 3);
    hh(d, a, b, c, kRound3Order[i + 1], 9);
    hh(c, d, a, b, kRound3Order[i + 2], 11);
    hh(b, c, d, a, kRound3Order[i + 3], 15);
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md4::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Md4::Digest Md4::Finalize() {
  // Padding: a single 0x80 byte, zeros, then the 64-bit bit-length (LE).
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t pad_byte = 0x80;
  Update(&pad_byte, 1);
  const uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);

  uint8_t length_bytes[8];
  StoreLe32(length_bytes, static_cast<uint32_t>(bit_len));
  StoreLe32(length_bytes + 4, static_cast<uint32_t>(bit_len >> 32));
  Update(length_bytes, 8);

  Digest digest;
  for (int i = 0; i < 4; ++i) StoreLe32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Md4::Digest Md4::Hash(std::string_view data) {
  return Hash(data.data(), data.size());
}

Md4::Digest Md4::Hash(const void* data, size_t len) {
  Md4 md4;
  md4.Update(data, len);
  return md4.Finalize();
}

std::string Md4::ToHex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

uint64_t Md4::DigestToU64(const Digest& digest) {
  uint64_t x = 0;
  for (int i = 7; i >= 0; --i) x = (x << 8) | digest[i];
  return x;
}

}  // namespace dhs
