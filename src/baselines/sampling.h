// Random-sampling baseline (§1's fourth family, e.g. Bharambe et al.
// Mercury, Manku PODC '03): estimate a global total by probing a uniform
// sample of nodes and extrapolating. Duplicate-sensitive, and accuracy is
// bounded by sample variance (the Chaudhuri-Motwani-Narasayya critique
// the paper cites).

#ifndef DHS_BASELINES_SAMPLING_H_
#define DHS_BASELINES_SAMPLING_H_

#include <cstdint>

#include "baselines/baseline.h"
#include "common/random.h"
#include "common/status.h"
#include "dht/network.h"

namespace dhs {

class SamplingEstimator {
 public:
  SamplingEstimator(DhtNetwork* network, const LocalItems& local_items);

  struct Result {
    double estimate = 0.0;    // N * mean(sampled local counts)
    int nodes_sampled = 0;
    double sample_stddev = 0.0;
  };

  /// Samples `sample_size` nodes by routing to uniformly random IDs (one
  /// O(log N) lookup per sample). A node's chance of being hit is
  /// proportional to its ring-arc length, so the total is extrapolated
  /// with the Horvitz-Thompson correction (count / arc-fraction), which
  /// the sampled node computes locally from its predecessor pointer.
  ///
  /// Geometry caveat: the arc-length weights are exact under ring
  /// (Chord) responsibility only. Under Kademlia's XOR responsibility a
  /// node's key cell is generally NOT its ring arc, so the estimator is
  /// biased there — a geometry-general version would need the overlay to
  /// expose its ownership measure.
  [[nodiscard]] StatusOr<Result> EstimateTotal(uint64_t origin_node, int sample_size,
                                 Rng& rng);

 private:
  DhtNetwork* network_;
  const LocalItems* local_items_;
};

}  // namespace dhs

#endif  // DHS_BASELINES_SAMPLING_H_
