#include "baselines/gossip.h"

#include <bit>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "sketch/pcsa.h"

namespace dhs {

PushSumGossip::PushSumGossip(DhtNetwork* network,
                             const LocalItems& local_items)
    : network_(network), local_items_(&local_items) {}

StatusOr<GossipResult> PushSumGossip::Run(uint64_t origin_node,
                                          int max_rounds, double tolerance,
                                          Rng& rng) {
  const std::vector<uint64_t> nodes = network_->NodeIds();
  if (nodes.empty()) return Status::FailedPrecondition("empty network");
  if (!network_->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  ScopedSpan span(network_->tracer(), "gossip_push_sum");
  if (MetricsRegistry* mr = network_->metrics(); mr != nullptr) {
    mr->GetCounter("baseline_ops_total", {{"op", "gossip_push_sum"}})
        ->Increment();
  }

  // Push-sum state: sum_i value_i converges to the global sum when read
  // as value/weight at the node holding weight mass.
  std::unordered_map<uint64_t, double> value;
  std::unordered_map<uint64_t, double> weight;
  for (uint64_t node : nodes) {
    auto it = local_items_->find(node);
    value[node] =
        it == local_items_->end() ? 0.0 : static_cast<double>(it->second.size());
    weight[node] = 0.0;
  }
  weight[origin_node] = 1.0;

  GossipResult result;
  double previous = -1.0;
  int stable_rounds = 0;
  constexpr size_t kMessageBytes = 16;  // (value, weight) pair
  // Push-sum needs ~log N rounds just to mix mass; transient plateaus
  // before that must not trigger the convergence detector.
  const int min_rounds =
      4 * (64 - std::countl_zero(static_cast<uint64_t>(nodes.size())));

  for (int round = 0; round < max_rounds; ++round) {
    // Synchronous round: every node halves its mass and pushes one share
    // to a uniformly random peer.
    std::unordered_map<uint64_t, double> value_in;
    std::unordered_map<uint64_t, double> weight_in;
    for (uint64_t node : nodes) {
      const uint64_t peer = nodes[rng.UniformU64(nodes.size())];
      const double v_half = value[node] / 2.0;
      const double w_half = weight[node] / 2.0;
      value[node] = v_half;
      weight[node] = w_half;
      value_in[peer] += v_half;
      weight_in[peer] += w_half;
      Status s = network_->DirectHop(node, peer, kMessageBytes);
      if (!s.ok()) return s;
    }
    for (const auto& [node, v] : value_in) value[node] += v;
    for (const auto& [node, w] : weight_in) weight[node] += w;
    result.rounds = round + 1;

    const double w0 = weight[origin_node];
    const double estimate = w0 > 0.0 ? value[origin_node] / w0 : 0.0;
    if (round >= min_rounds && previous > 0.0 && estimate > 0.0 &&
        std::fabs(estimate - previous) / previous < tolerance) {
      if (++stable_rounds >= 5) {
        result.estimate = estimate;
        break;
      }
    } else {
      stable_rounds = 0;
    }
    previous = estimate;
    result.estimate = estimate;
  }

  // Convergence diagnostic: how many nodes hold a mass ratio within 1% of
  // the true sum (nodes with negligible weight are counted as not
  // converged — they cannot answer the query locally).
  double true_sum = 0.0;
  for (uint64_t node : nodes) {
    auto it = local_items_->find(node);
    if (it != local_items_->end()) {
      true_sum += static_cast<double>(it->second.size());
    }
  }
  size_t converged = 0;
  for (uint64_t node : nodes) {
    const double w = weight[node];
    if (w > 1e-9) {
      const double est = value[node] / w;
      if (true_sum > 0.0 && std::fabs(est - true_sum) / true_sum < 0.01) {
        ++converged;
      }
    }
  }
  result.converged_fraction =
      static_cast<double>(converged) / static_cast<double>(nodes.size());
  if (span.active()) span.Arg(TraceArg::I64("rounds", result.rounds));
  return result;
}

SketchGossip::SketchGossip(DhtNetwork* network,
                           const LocalItems& local_items, int num_bitmaps,
                           int bits)
    : network_(network),
      local_items_(&local_items),
      num_bitmaps_(num_bitmaps),
      bits_(bits) {}

StatusOr<GossipResult> SketchGossip::Run(uint64_t origin_node, int rounds,
                                         Rng& rng) {
  const std::vector<uint64_t> nodes = network_->NodeIds();
  if (nodes.empty()) return Status::FailedPrecondition("empty network");
  if (!network_->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  ScopedSpan span(network_->tracer(), "gossip_sketch");
  if (MetricsRegistry* mr = network_->metrics(); mr != nullptr) {
    mr->GetCounter("baseline_ops_total", {{"op", "gossip_sketch"}})
        ->Increment();
  }

  std::unordered_map<uint64_t, PcsaSketch> sketches;
  sketches.reserve(nodes.size());
  for (uint64_t node : nodes) {
    PcsaSketch sketch(num_bitmaps_, bits_);
    auto it = local_items_->find(node);
    if (it != local_items_->end()) {
      for (uint64_t hash : it->second) sketch.AddHash(hash);
    }
    sketches.emplace(node, std::move(sketch));
  }
  const size_t message_bytes = sketches.begin()->second.SerializedBytes();

  for (int round = 0; round < rounds; ++round) {
    // Push round: sends are based on the start-of-round sketches.
    std::vector<std::pair<uint64_t, PcsaSketch>> inbox;
    inbox.reserve(nodes.size());
    for (uint64_t node : nodes) {
      const uint64_t peer = nodes[rng.UniformU64(nodes.size())];
      inbox.emplace_back(peer, sketches.at(node));
      Status s = network_->DirectHop(node, peer, message_bytes);
      if (!s.ok()) return s;
    }
    for (auto& [peer, sketch] : inbox) {
      Status s = sketches.at(peer).Merge(sketch);
      if (!s.ok()) return s;
    }
  }

  // Convergence diagnostic: fraction of nodes whose sketch equals the
  // global union (same estimate).
  PcsaSketch global(num_bitmaps_, bits_);
  for (const auto& [node, sketch] : sketches) {
    Status s = global.Merge(sketch);
    if (!s.ok()) return s;
  }
  const double global_estimate = global.Estimate();
  size_t converged = 0;
  for (const auto& [node, sketch] : sketches) {
    if (sketch.Estimate() == global_estimate) ++converged;
  }

  GossipResult result;
  result.rounds = rounds;
  result.estimate = sketches.at(origin_node).Estimate();
  result.converged_fraction =
      static_cast<double>(converged) / static_cast<double>(nodes.size());
  return result;
}

}  // namespace dhs
