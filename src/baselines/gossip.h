// Gossip-based aggregation baselines (§1's second family, e.g. Kempe et
// al. FOCS '03). Two variants:
//
//  * PushSumGossip — classic push-sum: converges to the *sum* of local
//    values at the querying node. Duplicate-sensitive (it sums local
//    counts; shared items are counted once per holder).
//  * SketchGossip — anti-entropy dissemination of mergeable hash
//    sketches: every node pushes its current sketch to a random peer
//    each round; the union converges to the global sketch at all nodes.
//    Duplicate-insensitive but pays sketch-sized messages every round.
//
// Both run in synchronous rounds: every live node sends one message per
// round (charged as one hop each, i.e. assuming an ideal peer-sampling
// service — a *lower bound* on real gossip cost over a DHT).

#ifndef DHS_BASELINES_GOSSIP_H_
#define DHS_BASELINES_GOSSIP_H_

#include <cstdint>

#include "baselines/baseline.h"
#include "common/random.h"
#include "common/status.h"
#include "dht/network.h"

namespace dhs {

/// Outcome of a gossip run.
struct GossipResult {
  double estimate = 0.0;
  int rounds = 0;
  /// Fraction of nodes whose local view already equals the converged
  /// value within the tolerance (the "eventual consistency" caveat).
  double converged_fraction = 0.0;
};

/// Push-sum protocol computing the sum of per-node values.
class PushSumGossip {
 public:
  /// `local_items`: per-node item lists; the per-node value is the list
  /// size (local item count).
  PushSumGossip(DhtNetwork* network, const LocalItems& local_items);

  /// Runs until the querying node's estimate changes by less than
  /// `tolerance` (relative) for 3 consecutive rounds, or `max_rounds`.
  [[nodiscard]] StatusOr<GossipResult> Run(uint64_t origin_node, int max_rounds,
                             double tolerance, Rng& rng);

 private:
  DhtNetwork* network_;
  const LocalItems* local_items_;
};

/// Anti-entropy union of per-node PCSA sketches.
class SketchGossip {
 public:
  SketchGossip(DhtNetwork* network, const LocalItems& local_items,
               int num_bitmaps, int bits);

  /// Runs exactly `rounds` rounds and reads the estimate at the origin.
  [[nodiscard]] StatusOr<GossipResult> Run(uint64_t origin_node, int rounds, Rng& rng);

 private:
  DhtNetwork* network_;
  const LocalItems* local_items_;
  int num_bitmaps_;
  int bits_;
};

}  // namespace dhs

#endif  // DHS_BASELINES_GOSSIP_H_
