#include "baselines/sampling.h"

#include <cmath>

namespace dhs {

SamplingEstimator::SamplingEstimator(DhtNetwork* network,
                                     const LocalItems& local_items)
    : network_(network), local_items_(&local_items) {}

StatusOr<SamplingEstimator::Result> SamplingEstimator::EstimateTotal(
    uint64_t origin_node, int sample_size, Rng& rng) {
  if (!network_->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  if (sample_size < 1) {
    return Status::InvalidArgument("sample_size must be >= 1");
  }
  ScopedSpan span(network_->tracer(), "sampling");
  if (span.active()) span.Arg(TraceArg::I64("sample_size", sample_size));
  if (MetricsRegistry* mr = network_->metrics(); mr != nullptr) {
    mr->GetCounter("baseline_ops_total", {{"op", "sampling"}})->Increment();
  }
  const IdSpace& space = network_->space();
  // 2^L as a double (exact for L = 64 in double's exponent range).
  const double space_size = std::ldexp(1.0, space.bits());

  Result result;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < sample_size; ++i) {
    const uint64_t key = space.Clamp(rng.Next());
    auto lookup = network_->Lookup(origin_node, key, 8);
    if (!lookup.ok()) return lookup.status();
    const uint64_t node = lookup->node;
    network_->ChargeBytes(16);  // response: count + arc length

    auto pred = network_->PredecessorOfNode(node);
    if (!pred.ok()) return pred.status();
    uint64_t arc = space.Distance(pred.value(), node);
    if (arc == 0) arc = space.Mask();  // single-node ring owns everything

    auto items_it = local_items_->find(node);
    const double count =
        items_it == local_items_->end()
            ? 0.0
            : static_cast<double>(items_it->second.size());
    // Horvitz-Thompson term: count / P(node sampled).
    const double weighted = count * space_size / static_cast<double>(arc);
    sum += weighted;
    sum_sq += weighted * weighted;
    result.nodes_sampled += 1;
  }
  const double n = static_cast<double>(sample_size);
  result.estimate = sum / n;
  const double variance = sum_sq / n - (sum / n) * (sum / n);
  result.sample_stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return result;
}

}  // namespace dhs
