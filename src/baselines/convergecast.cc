#include "baselines/convergecast.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "sketch/loglog.h"
#include "sketch/pcsa.h"

namespace dhs {

namespace {

// The partial aggregate carried up the tree.
struct Partial {
  double tally = 0.0;
  std::unique_ptr<CardinalityEstimator> sketch;  // null in tally mode
  uint64_t nodes = 0;
  uint64_t edges = 0;
  int depth = 0;
};

}  // namespace

ConvergecastAggregator::ConvergecastAggregator(DhtNetwork* network,
                                               const LocalItems& local_items)
    : network_(network), local_items_(&local_items) {}

StatusOr<ConvergecastAggregator::Result> ConvergecastAggregator::Count(
    uint64_t origin_node, Mode mode, int num_bitmaps, int bits) {
  if (!network_->Contains(origin_node)) {
    return Status::InvalidArgument("origin is not a live node");
  }
  ScopedSpan span(network_->tracer(), "convergecast");
  if (MetricsRegistry* mr = network_->metrics(); mr != nullptr) {
    mr->GetCounter("baseline_ops_total", {{"op", "convergecast"}})
        ->Increment();
  }
  const std::vector<uint64_t> nodes = network_->NodeIds();
  const IdSpace& space = network_->space();

  auto make_sketch = [&]() -> std::unique_ptr<CardinalityEstimator> {
    switch (mode) {
      case Mode::kTallySum:
        return nullptr;
      case Mode::kSketchPcsa:
        return std::make_unique<PcsaSketch>(num_bitmaps, bits);
      case Mode::kSketchSll:
        return std::make_unique<LogLogSketch>(num_bitmaps, bits);
    }
    return nullptr;
  };
  const size_t message_bytes =
      mode == Mode::kTallySum
          ? 8
          : make_sketch()->SerializedBytes();

  // Recursive Chord broadcast: `node` owns the ring range (node, limit]
  // and delegates disjoint sub-ranges to its fingers inside that range.
  // Captured recursion via explicit lambda fixpoint.
  struct Frame {
    uint64_t node;
    uint64_t limit;  // exclusive ring bound of the delegated range
    int depth;
  };

  // Process the query locally, then recurse.
  std::function<StatusOr<Partial>(uint64_t, uint64_t, int)> cover =
      [&](uint64_t node, uint64_t limit,
          int depth) -> StatusOr<Partial> {
    Partial partial;
    partial.nodes = 1;
    partial.depth = depth;
    partial.sketch = make_sketch();
    auto items_it = local_items_->find(node);
    if (items_it != local_items_->end()) {
      if (mode == Mode::kTallySum) {
        partial.tally += static_cast<double>(items_it->second.size());
      } else {
        for (uint64_t hash : items_it->second) {
          partial.sketch->AddHash(hash);
        }
      }
    }

    // Fingers strictly inside (node, limit), deduplicated and processed
    // farthest-first so each child covers (child, previous-child). The
    // tree is built from the numeric ring (first live node at or after
    // node + 2^i), which both overlay geometries expose — the broadcast
    // is structural, independent of key responsibility.
    std::vector<uint64_t> children;
    for (int i = space.bits() - 1; i >= 0; --i) {
      const uint64_t start = space.Add(node, uint64_t{1} << i);
      // First node >= start, wrapping: successor of (start - 1).
      auto finger =
          network_->SuccessorOfNode(space.Add(start, space.Mask()));
      if (!finger.ok()) return finger.status();
      const uint64_t child = finger.value();
      if (child == node) continue;
      if (!space.InIntervalExclExcl(child, node, limit)) continue;
      if (!children.empty() && children.back() == child) continue;
      if (std::find(children.begin(), children.end(), child) !=
          children.end()) {
        continue;
      }
      children.push_back(child);
    }
    // children are ordered by decreasing finger span, i.e. decreasing
    // ring position within (node, limit): child i covers up to the
    // previous child (or `limit` for the farthest one).
    uint64_t upper = limit;
    for (uint64_t child : children) {
      // Query down (small request) and aggregate up (message_bytes).
      Status down = network_->DirectHop(node, child, 8);
      if (!down.ok()) return down;
      auto sub = cover(child, upper, depth + 1);
      if (!sub.ok()) return sub.status();
      Status up = network_->DirectHop(child, node, message_bytes);
      if (!up.ok()) return up;

      partial.tally += sub->tally;
      partial.nodes += sub->nodes;
      partial.edges += sub->edges + 1;
      partial.depth = std::max(partial.depth, sub->depth);
      if (partial.sketch != nullptr) {
        Status merged = partial.sketch->Merge(*sub->sketch);
        if (!merged.ok()) return merged;
      }
      upper = child;
    }
    return partial;
  };

  auto root = cover(origin_node, origin_node, 0);
  if (!root.ok()) return root.status();

  Result result;
  result.nodes_reached = root->nodes;
  result.tree_edges = root->edges;
  result.tree_depth = root->depth;
  result.estimate = mode == Mode::kTallySum ? root->tally
                                            : root->sketch->Estimate();
  if (result.nodes_reached != nodes.size()) {
    return Status::Internal("broadcast did not reach every node");
  }
  return result;
}

}  // namespace dhs
