// Common vocabulary for the related-work baseline counters (§1 "Related
// Work"): one-node-per-counter, gossip, broadcast/convergecast, and
// sampling. All run against the same DhtNetwork as DHS, so costs and
// load distributions are directly comparable.

#ifndef DHS_BASELINES_BASELINE_H_
#define DHS_BASELINES_BASELINE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dhs {

/// The application state baselines aggregate over: for each node (by ID),
/// the hashes of the items it locally stores. DHS does not need this —
/// its state lives in the DHT — but gossip/convergecast/sampling
/// protocols aggregate local state directly.
using LocalItems = std::unordered_map<uint64_t, std::vector<uint64_t>>;

}  // namespace dhs

#endif  // DHS_BASELINES_BASELINE_H_
