#include "baselines/central_counter.h"

#include <string>

namespace dhs {

namespace {

std::string TallyKey(uint64_t metric_id) {
  std::string key = "C";
  for (int i = 7; i >= 0; --i) {
    key.push_back(static_cast<char>((metric_id >> (8 * i)) & 0xff));
  }
  return key;
}

std::string ItemKey(uint64_t metric_id, uint64_t item_hash) {
  std::string key = TallyKey(metric_id);
  key[0] = 'S';
  for (int i = 7; i >= 0; --i) {
    key.push_back(static_cast<char>((item_hash >> (8 * i)) & 0xff));
  }
  return key;
}

uint64_t DecodeCount(const std::string& value) {
  uint64_t count = 0;
  for (char c : value) count = (count << 8) | static_cast<uint8_t>(c);
  return count;
}

std::string EncodeCount(uint64_t count) {
  std::string value(8, '\0');
  for (int i = 0; i < 8; ++i) {
    value[static_cast<size_t>(7 - i)] = static_cast<char>(count >> (8 * i));
  }
  return value;
}

}  // namespace

CentralCounter::CentralCounter(DhtNetwork* network, uint64_t metric_id,
                               Mode mode)
    : network_(network), metric_id_(metric_id), mode_(mode) {}

StatusOr<uint64_t> CentralCounter::CounterNode() const {
  return network_->ResponsibleNode(metric_id_);
}

Status CentralCounter::Add(uint64_t origin_node, uint64_t item_hash) {
  ScopedSpan span(network_->tracer(), "central_add");
  if (MetricsRegistry* mr = network_->metrics(); mr != nullptr) {
    mr->GetCounter("baseline_ops_total", {{"op", "central_add"}})
        ->Increment();
  }
  const size_t payload = 8;
  auto lookup = network_->Lookup(origin_node, metric_id_, payload);
  if (!lookup.ok()) return lookup.status();
  NodeStore* store = network_->StoreAt(lookup->node);
  NodeLoad* load = network_->LoadAt(lookup->node);
  load->stores += 1;
  if (mode_ == Mode::kExactSet) {
    store->Put(metric_id_, ItemKey(metric_id_, item_hash), std::string(),
               kNoExpiry);
    return Status::OK();
  }
  const std::string key = TallyKey(metric_id_);
  uint64_t count = 0;
  if (const StoreRecord* rec = store->Get(key, network_->now())) {
    count = DecodeCount(rec->value);
  }
  store->Put(metric_id_, key, EncodeCount(count + 1), kNoExpiry);
  return Status::OK();
}

StatusOr<double> CentralCounter::Read(uint64_t origin_node) {
  ScopedSpan span(network_->tracer(), "central_read");
  if (MetricsRegistry* mr = network_->metrics(); mr != nullptr) {
    mr->GetCounter("baseline_ops_total", {{"op", "central_read"}})
        ->Increment();
  }
  auto lookup = network_->Lookup(origin_node, metric_id_, 8);
  if (!lookup.ok()) return lookup.status();
  NodeStore* store = network_->StoreAt(lookup->node);
  network_->ChargeBytes(8);  // response
  if (mode_ == Mode::kExactSet) {
    // Count the stored item records under this metric's prefix.
    std::string prefix = "S";
    for (int i = 7; i >= 0; --i) {
      prefix.push_back(static_cast<char>((metric_id_ >> (8 * i)) & 0xff));
    }
    uint64_t count = 0;
    store->ForEachWithPrefix(prefix, network_->now(),
                             [&count](const std::string&, const StoreRecord&) {
                               ++count;
                             });
    return static_cast<double>(count);
  }
  const StoreRecord* rec = store->Get(TallyKey(metric_id_), network_->now());
  return rec == nullptr ? 0.0 : static_cast<double>(DecodeCount(rec->value));
}

}  // namespace dhs
