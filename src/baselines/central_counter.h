// One-node-per-counter baseline: the first solution the paper dismisses —
// hash the metric name to a node and let that node keep the counter.
// Exhibits the scalability and load-balance pathologies of §1: every
// update and every read hits the same node.

#ifndef DHS_BASELINES_CENTRAL_COUNTER_H_
#define DHS_BASELINES_CENTRAL_COUNTER_H_

#include <cstdint>

#include "common/status.h"
#include "dht/network.h"

namespace dhs {

class CentralCounter {
 public:
  enum class Mode {
    kTally,     // duplicate-sensitive running count (8-byte messages)
    kExactSet,  // stores every item hash: exact distinct count, O(n) storage
  };

  /// The counter lives at the node responsible for `metric_id`.
  CentralCounter(DhtNetwork* network, uint64_t metric_id, Mode mode);

  /// ID of the (current) hosting node.
  [[nodiscard]] StatusOr<uint64_t> CounterNode() const;

  /// Records one item from `origin_node` (one O(log N) lookup).
  [[nodiscard]] Status Add(uint64_t origin_node, uint64_t item_hash);

  /// Reads the counter value from `origin_node` (one O(log N) lookup).
  [[nodiscard]] StatusOr<double> Read(uint64_t origin_node);

 private:
  DhtNetwork* network_;
  uint64_t metric_id_;
  Mode mode_;
};

}  // namespace dhs

#endif  // DHS_BASELINES_CENTRAL_COUNTER_H_
