// Broadcast/convergecast baseline (§1's third family: Astrolabe, SDIMS,
// Bawa et al., Considine et al.). The querying node broadcasts over a
// spanning tree implicitly defined by Chord fingers (each node delegates
// disjoint ID sub-ranges to its fingers); partial aggregates flow back up
// the same tree.
//
// Aggregate modes:
//  * kTallySum   — sums per-node local counts (duplicate-sensitive);
//  * kSketchPcsa / kSketchSll — tree-merges per-node hash sketches
//    (duplicate-insensitive, as in Considine et al. ICDE '04).
//
// Every query touches all N nodes: 2(N-1) tree-edge messages.

#ifndef DHS_BASELINES_CONVERGECAST_H_
#define DHS_BASELINES_CONVERGECAST_H_

#include <cstdint>

#include "baselines/baseline.h"
#include "common/status.h"
#include "dht/network.h"

namespace dhs {

class ConvergecastAggregator {
 public:
  enum class Mode { kTallySum, kSketchPcsa, kSketchSll };

  struct Result {
    double estimate = 0.0;
    uint64_t nodes_reached = 0;
    uint64_t tree_edges = 0;
    int tree_depth = 0;
  };

  ConvergecastAggregator(DhtNetwork* network,
                         const LocalItems& local_items);

  /// Runs one full broadcast/convergecast query from `origin_node`.
  /// `num_bitmaps`/`bits` configure the sketches (ignored for kTallySum).
  [[nodiscard]] StatusOr<Result> Count(uint64_t origin_node, Mode mode, int num_bitmaps,
                         int bits);

 private:
  DhtNetwork* network_;
  const LocalItems* local_items_;
};

}  // namespace dhs

#endif  // DHS_BASELINES_CONVERGECAST_H_
