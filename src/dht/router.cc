// Greedy Chord finger routing over materialized finger tables.

#include "common/bit_util.h"
#include "dht/chord.h"

namespace dhs {

size_t ChordNetwork::NextHopIndex(size_t current_idx, uint64_t current_id,
                                  uint64_t key) const {
  FingerTable& table = TableAt(current_idx);

  // Responsible already? Chord: `current` is responsible for key when
  // key in (predecessor(current), current].
  if (space_.InIntervalExclIncl(key, table.predecessor, current_id)) {
    return current_idx;
  }

  // Closest preceding finger: the farthest finger that lands strictly
  // between current and key. Finger i points at successor(current + 2^i).
  const uint64_t dist = space_.Distance(current_id, key);
  for (int i = dist > 1 ? Log2Floor(dist) : 0; i >= 0; --i) {
    const size_t finger_idx = FingerIndex(table, current_id, i);
    if (space_.InIntervalExclExcl(ring()[finger_idx], current_id, key)) {
      return finger_idx;
    }
  }
  // No finger strictly precedes the key: the successor (finger 0) is
  // responsible.
  return FingerIndex(table, current_id, 0);
}

}  // namespace dhs
