// Greedy Chord finger routing.

#include <cassert>

#include "common/bit_util.h"
#include "dht/chord.h"

namespace dhs {

uint64_t ChordNetwork::NextHop(uint64_t current, uint64_t key) const {
  // Responsible already? Chord: `current` is responsible for key when
  // key in (predecessor(current), current].
  auto pred = PredecessorOfNode(current);
  assert(pred.ok());
  if (space_.InIntervalExclIncl(key, pred.value(), current)) {
    return current;
  }

  // Closest preceding finger: the farthest finger that lands strictly
  // between current and key. Finger i points at successor(current + 2^i).
  const uint64_t dist = space_.Distance(current, key);
  for (int i = dist > 1 ? Log2Floor(dist) : 0; i >= 0; --i) {
    const uint64_t finger_start = space_.Add(current, uint64_t{1} << i);
    const uint64_t finger = RingSuccessor(finger_start)->first;
    if (space_.InIntervalExclExcl(finger, current, key)) {
      return finger;
    }
  }
  // No finger strictly precedes the key: the successor is responsible.
  auto succ = SuccessorOfNode(current);
  assert(succ.ok());
  return succ.value();
}

}  // namespace dhs
