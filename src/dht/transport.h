// Pluggable message transport for the DHS protocol.
//
// The DHS client/front-door data plane speaks encoded wire frames
// (wire.h) through this interface instead of calling the simulator
// directly, so one code path serves both worlds:
//
//   SimTransport       — the virtual-clock simulator: frames are routed
//                        with DhtNetwork::Lookup / DirectHop (same fault
//                        draws, same clock, same tracer spans as the
//                        pre-wire in-process calls), and MessageStats
//                        charges are derived from the encoded frames —
//                        measured bytes, not config-formula estimates.
//   LoopbackTransport  — loopback.h: every frame crosses a real
//                        AF_UNIX socket pair before the shared serving
//                        logic applies it, so genuine network traffic
//                        exercises the identical client code.
//
// Charging discipline (must stay byte-identical to the pre-wire
// accounting; see wire.h on accounted-vs-overhead): a routed or
// forwarded frame costs AccountedPayloadBytes per overlay hop; a query
// exchange costs the response's accounted bytes once; acks and
// migration bodies are free. The fault layer acts at frame granularity:
// each Route/Send is one fault draw on the frame as issued (a faulted
// frame charges one message, no hops, no bytes).

#ifndef DHS_DHT_TRANSPORT_H_
#define DHS_DHT_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "dht/network.h"
#include "dht/wire.h"
#include "obs/wire_metrics.h"

namespace dhs {

/// One frame crossing a transport, as observed by the byte-metrics tap:
/// full wire length vs the accounted §5.1 bytes actually charged to
/// MessageStats for this frame (0 for faulted frames, acks, queries and
/// migrations; payload x hops for routed frames). The reconciliation
/// property (tests/obs/reconcile_test.cc) sums charged_bytes and must
/// match the network's MessageStats byte delta exactly.
struct FrameTapEvent {
  FrameType type = FrameType::kAck;
  size_t wire_bytes = 0;
  size_t charged_bytes = 0;
  int hops = 0;
  bool delivered = false;
};
using FrameTap = std::function<void(const FrameTapEvent&)>;

/// Transport interface. All methods are synchronous: the paper's
/// protocol is strictly request/response and the simulator's virtual
/// clock only advances between messages.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Stable backend name ("sim", "loopback") — used as a metrics label.
  virtual const char* name() const = 0;

  /// Where a routed/forwarded frame landed.
  struct Delivery {
    uint64_t node = 0;      // serving node
    int hops = 0;           // overlay hops charged
    std::string response;   // encoded reply frame (kAck for writes)
  };

  /// Routes a key-addressed frame (kProbeOpen, kPut) from origin_node
  /// through the overlay to the responsible node, applies it there and
  /// returns the reply. Transient routing faults surface as
  /// Unavailable/DeadlineExceeded, exactly like DhtNetwork::Lookup.
  virtual StatusOr<Delivery> Route(uint64_t origin_node,
                                   const std::string& frame) = 0;

  /// Forwards a frame one hop to a known node (probe-walk hand-off,
  /// replica writes), applies it there and returns the reply.
  /// from == to is a local delivery: no hop, no bytes.
  virtual StatusOr<Delivery> Send(uint64_t from_node, uint64_t to_node,
                                  const std::string& frame) = 0;

  /// Request/response exchange with an already-reached node (metric
  /// queries, count requests). Charges the response's accounted bytes;
  /// the request rides on the walk that reached the node (§5.1).
  /// NotFound means the node is gone — nothing charged.
  virtual StatusOr<std::string> Query(uint64_t node,
                                      const std::string& frame) = 0;

  /// Installs a tap observing every frame this transport moves
  /// (requests and replies). Pass nullptr to detach.
  virtual void set_frame_tap(FrameTap tap) = 0;
};

/// Applies a delivered frame at `node` and encodes the reply — the
/// serving half of the protocol, shared verbatim by both backends so
/// sim and loopback worlds stay byte-identical. For kPut this performs
/// the store writes (CHECK-failing if the holder vanished, matching the
/// historical client invariant); for kMetricQuery it reads the store
/// and charges the response; kProbeOpen/kMigrate acknowledge.
/// kCountRequest is NOT served here: counting needs a DhsClient, which
/// lives a layer above (dhs/count_service.h).
StatusOr<std::string> ServeFrame(DhtNetwork& network, uint64_t node,
                                 std::string_view frame);

/// The simulator backend. Does not own the network. The label is what
/// the obs wire metrics tag the series with — LoopbackTransport reuses
/// this class as its serving half under the "loopback" label.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(DhtNetwork* network, const char* label = "sim")
      : network_(network), label_(label) {}

  const char* name() const override { return label_; }
  StatusOr<Delivery> Route(uint64_t origin_node,
                           const std::string& frame) override;
  StatusOr<Delivery> Send(uint64_t from_node, uint64_t to_node,
                          const std::string& frame) override;
  StatusOr<std::string> Query(uint64_t node,
                              const std::string& frame) override;
  void set_frame_tap(FrameTap tap) override { tap_ = std::move(tap); }

 private:
  // Fans one frame into the tap and the obs wire-byte counters
  // (re-attaching lazily if the network's metrics registry changed).
  void Tap(std::string_view frame, size_t charged, int hops, bool delivered);

  DhtNetwork* network_;
  const char* label_;
  FrameTap tap_;
  WireMetrics wire_metrics_;
  MetricsRegistry* wire_registry_ = nullptr;
};

}  // namespace dhs

#endif  // DHS_DHT_TRANSPORT_H_
