#include "dht/kademlia.h"

#include <algorithm>
#include <sstream>

#include "common/bit_util.h"
#include "common/check.h"

namespace dhs {

bool KademliaNetwork::BlockNonEmpty(uint64_t lo, uint64_t size) const {
  const std::vector<uint64_t>& r = ring();
  auto it = std::lower_bound(r.begin(), r.end(), lo);
  return it != r.end() && *it - lo < size;
}

uint64_t KademliaNetwork::ClosestWithin(uint64_t lo, uint64_t size,
                                        uint64_t key) const {
  DCHECK(size > 0 && IsPowerOfTwo(size)) << "misaligned block size " << size;
  DCHECK(BlockNonEmpty(lo, size)) << "descent into an empty block";
  int level = Log2Floor(size);
  while (level > 0) {
    const uint64_t child_size = uint64_t{1} << (level - 1);
    // Prefer the half the key falls into (it minimizes the XOR bit at
    // this level); fall back to the sibling if it holds no node.
    const uint64_t key_half =
        lo + ((key & child_size) != 0 ? child_size : 0);
    const uint64_t other_half = key_half == lo ? lo + child_size : lo;
    lo = BlockNonEmpty(key_half, child_size) ? key_half : other_half;
    level -= 1;
  }
  return lo;
}

StatusOr<uint64_t> KademliaNetwork::ResponsibleNode(uint64_t key) const {
  if (NumNodes() == 0) return Status::FailedPrecondition("empty network");
  key = space_.Clamp(key);
  const int L = space_.bits();
  // Split the full space manually (2^64 does not fit in uint64_t).
  const uint64_t half_size = uint64_t{1} << (L - 1);
  const uint64_t key_half = (key & half_size) != 0 ? half_size : 0;
  const uint64_t other_half = key_half == 0 ? half_size : 0;
  const uint64_t lo =
      BlockNonEmpty(key_half, half_size) ? key_half : other_half;
  return ClosestWithin(lo, half_size, key);
}

KademliaNetwork::BucketTable& KademliaNetwork::TableAt(
    size_t node_idx) const {
  if (tables_.size() < ring().size()) tables_.resize(ring().size());
  BucketTable& table = tables_[node_idx];
  if (table.epoch != epoch_) {
    table.epoch = epoch_;
    table.contact.assign(static_cast<size_t>(space_.bits()), 0);
    table.state.assign(static_cast<size_t>(space_.bits()), kUnknown);
  }
  return table;
}

size_t KademliaNetwork::NextHopIndex(size_t current_idx,
                                     uint64_t current_id,
                                     uint64_t key) const {
  key = space_.Clamp(key);
  const uint64_t diff = current_id ^ key;
  // A live node with the key's own ID is trivially XOR-closest.
  if (diff == 0) return current_idx;

  // Jump to a node sharing a strictly longer prefix with the key: a
  // member of the key's aligned block at the level of the current
  // highest differing bit. A real node's k-bucket holds a few
  // *arbitrary* contacts of that block, not the one closest to the key,
  // so we model the contact as the block member XOR-closest to `current`
  // — its deeper bits are uncorrelated with the key's, giving the
  // classic one-bit-per-hop O(log N) routing.
  //
  // The block at level b is (current ^ 2^b) & ~(2^b - 1): a function of
  // (current, b) only, so the chosen contact is cacheable per node per
  // bucket. When the block is non-empty its members are strictly
  // XOR-closer to the key than current, so the pre-cache early return
  // "current is already responsible" can only have fired on empty
  // blocks — the kEmptyBlock path below covers it.
  const int b = Log2Floor(diff);
  BucketTable& table = TableAt(current_idx);
  uint8_t& state = table.state[static_cast<size_t>(b)];
  if (state == kUnknown) {
    const uint64_t block_size = uint64_t{1} << b;
    const uint64_t block_lo = (current_id ^ block_size) & ~(block_size - 1);
    if (BlockNonEmpty(block_lo, block_size)) {
      table.contact[static_cast<size_t>(b)] = RingIndexOf(
          ClosestWithin(block_lo, block_size, current_id));
      state = kContact;
    } else {
      state = kEmptyBlock;
    }
  }
  if (state == kContact) {
    return static_cast<size_t>(table.contact[static_cast<size_t>(b)]);
  }
  auto closest = ResponsibleNode(key);
  CHECK_OK(closest) << "routing on an empty network";
  return RingIndexOf(closest.value());
}

Status KademliaNetwork::AuditDerivedState() const {
  const std::vector<uint64_t>& r = ring();
  const size_t rows = std::min(tables_.size(), r.size());
  for (size_t idx = 0; idx < rows; ++idx) {
    const BucketTable& table = tables_[idx];
    if (table.epoch != epoch_) continue;  // stale row: reset before reuse
    const uint64_t node_id = r[idx];
    const size_t levels = static_cast<size_t>(space_.bits());
    if (table.state.size() != levels || table.contact.size() != levels) {
      std::ostringstream os;
      os << "kademlia audit: node " << node_id << " bucket table has "
         << table.state.size() << " levels, expected " << levels;
      return Status::Internal(os.str());
    }
    for (size_t b = 0; b < levels; ++b) {
      if (table.state[b] == kUnknown) continue;
      const uint64_t block_size = uint64_t{1} << b;
      const uint64_t block_lo = (node_id ^ block_size) & ~(block_size - 1);
      const bool non_empty = BlockNonEmpty(block_lo, block_size);
      if (table.state[b] == kEmptyBlock) {
        if (non_empty) {
          std::ostringstream os;
          os << "kademlia audit: node " << node_id << " level " << b
             << " cached as empty but block [" << block_lo << ", +"
             << block_size << ") holds a live node";
          return Status::Internal(os.str());
        }
        continue;
      }
      if (!non_empty) {
        std::ostringstream os;
        os << "kademlia audit: node " << node_id << " level " << b
           << " caches a contact into an empty block";
        return Status::Internal(os.str());
      }
      const uint64_t expected =
          RingIndexOf(ClosestWithin(block_lo, block_size, node_id));
      if (table.contact[b] != expected) {
        std::ostringstream os;
        os << "kademlia audit: node " << node_id << " level " << b
           << " caches contact ring index " << table.contact[b]
           << " but the XOR-closest block member is at " << expected;
        return Status::Internal(os.str());
      }
    }
  }
  return Status::OK();
}

std::vector<uint64_t> KademliaNetwork::ProbeCandidates(
    const IdInterval& interval, uint64_t probe_key, uint64_t start_node,
    int max_candidates) const {
  return XorCandidates(interval, probe_key, start_node, max_candidates);
}

std::vector<uint64_t> KademliaNetwork::ReplicaCandidates(
    const IdInterval& interval, uint64_t key, uint64_t primary,
    int max_replicas) const {
  // Replicas must land exactly where a counting walk for `key` will
  // look: the XOR-nearest block members, in walk order. Ring successors
  // of the primary (the Chord recipe) sit at arbitrary XOR positions
  // and are invisible to lim-bounded walks.
  return XorCandidates(interval, key, primary, max_replicas);
}

std::vector<uint64_t> KademliaNetwork::XorCandidates(
    const IdInterval& interval, uint64_t probe_key, uint64_t start_node,
    int max_candidates) const {
  std::vector<uint64_t> candidates;
  if (max_candidates <= 0 || NumNodes() == 0) return candidates;

  // Under XOR responsibility, the keys of an interval are held by the
  // nodes of the smallest non-empty aligned block enclosing it (if the
  // interval itself has nodes, they hold everything).
  uint64_t lo = interval.lo;
  uint64_t size = interval.size;
  bool whole_space = false;
  while (!BlockNonEmpty(lo, size)) {
    const uint64_t parent_size = size << 1;
    if (parent_size == 0 ||
        (space_.bits() < 64 && parent_size > space_.Mask() + 1)) {
      whole_space = true;
      break;
    }
    size = parent_size;
    lo &= ~(size - 1);
  }

  // Gather a window of block members numerically around the probe key
  // (cheap approximation of XOR order for same-block nodes), then rank
  // by true XOR distance.
  const uint64_t block_lo = whole_space ? 0 : lo;
  const uint64_t block_hi_excl =
      whole_space ? space_.Mask() : lo + (size - 1);  // inclusive top
  const size_t window = static_cast<size_t>(max_candidates) * 4 + 8;
  const std::vector<uint64_t>& r = ring();
  std::vector<uint64_t> members;
  size_t fwd = static_cast<size_t>(
      std::lower_bound(r.begin(), r.end(), probe_key) - r.begin());
  size_t bwd = fwd;
  while (members.size() < window) {
    bool advanced = false;
    if (fwd < r.size() && r[fwd] >= block_lo && r[fwd] <= block_hi_excl) {
      members.push_back(r[fwd]);
      ++fwd;
      advanced = true;
    }
    if (bwd > 0) {
      const uint64_t prev = r[bwd - 1];
      if (prev >= block_lo && prev <= block_hi_excl) {
        members.push_back(prev);
        --bwd;
        advanced = true;
      } else {
        bwd = 0;  // exhausted downward
      }
    }
    if (!advanced) break;
  }

  std::sort(members.begin(), members.end(),
            [probe_key](uint64_t a, uint64_t b) {
              return (a ^ probe_key) < (b ^ probe_key);
            });
  members.erase(std::unique(members.begin(), members.end()), members.end());
  for (uint64_t node : members) {
    if (node == start_node) continue;
    candidates.push_back(node);
    if (static_cast<int>(candidates.size()) >= max_candidates) break;
  }
  return candidates;
}

}  // namespace dhs
