#include "dht/wire.h"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"

namespace dhs {

namespace {

// Fixed envelope length per type (bytes of body before the payload).
// kMigrate's body is variable and wholly uncharged; its "envelope" here
// is the fixed record-count prefix, the minimum valid body.
size_t EnvelopeBytes(FrameType type) {
  switch (type) {
    case FrameType::kProbeOpen:
      return 0;
    case FrameType::kMetricQuery:
      return kMetricQueryEnvelopeBytes;
    case FrameType::kVectorResponse:
      return 0;
    case FrameType::kPut:
      return kPutEnvelopeBytes;
    case FrameType::kAck:
      return kAckEnvelopeBytes;
    case FrameType::kMigrate:
      return 4;
    case FrameType::kCountRequest:
      return 0;
    case FrameType::kCountResponse:
      return kCountResponseEnvelopeBytes;
    case FrameType::kSketch:
      return kSketchEnvelopeBytes;
  }
  return 0;
}

// Flag bits a frame of this type may carry; anything else is rejected.
uint8_t AllowedFlags(FrameType type) {
  switch (type) {
    case FrameType::kPut:
      return kPutFlagAbsoluteExpiry;
    case FrameType::kCountResponse:
      return kCountFlagGaveUp;
    default:
      return 0;
  }
}

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kProbeOpen) &&
         type <= static_cast<uint8_t>(FrameType::kSketch);
}

// Starts a frame: header with a body_len placeholder that
// FinishFrame patches once the body is complete.
std::string BeginFrame(FrameType type, uint8_t flags) {
  std::string out;
  out.push_back(static_cast<char>(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  AppendLE32(out, 0);
  return out;
}

void FinishFrame(std::string& frame) {
  const size_t body = frame.size() - kWireHeaderBytes;
  CHECK(body <= UINT32_MAX) << "wire: frame body exceeds LE32 length field";
  // Patch the body_len placeholder (bytes 4..7) in place.
  for (int i = 0; i < 4; ++i) {
    frame[4 + static_cast<size_t>(i)] =
        static_cast<char>(static_cast<uint32_t>(body) >> (8 * i));
  }
}

// Parses and additionally checks the frame is of `want` type — the
// common prologue of every typed decoder.
StatusOr<FrameView> ParseAs(std::string_view wire, FrameType want) {
  auto view = ParseFrame(wire);
  if (!view.ok()) return view.status();
  if (view->type != want) {
    return Status::InvalidArgument(
        std::string("wire: expected ") + FrameTypeName(want) + " frame, got " +
        FrameTypeName(view->type));
  }
  return view;
}

// The canonical 32-bit tuple timeout: the envelope expiry saturated to
// 32 bits (the paper's tuple carries a 4-byte timeout; kNoExpiry and
// any tick beyond 2^32-1 project to all-ones).
uint32_t TupleTimeout(uint64_t expiry) {
  return expiry >= UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(expiry);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kProbeOpen:
      return "probe_open";
    case FrameType::kMetricQuery:
      return "metric_query";
    case FrameType::kVectorResponse:
      return "vector_response";
    case FrameType::kPut:
      return "put";
    case FrameType::kAck:
      return "ack";
    case FrameType::kMigrate:
      return "migrate";
    case FrameType::kCountRequest:
      return "count_request";
    case FrameType::kCountResponse:
      return "count_response";
    case FrameType::kSketch:
      return "sketch";
  }
  return "unknown";
}

StatusOr<FrameView> ParseFrame(std::string_view wire) {
  if (wire.size() < kWireHeaderBytes) {
    return Status::InvalidArgument("wire: truncated header");
  }
  const uint8_t magic = static_cast<uint8_t>(wire[0]);
  if (magic != kWireMagic) {
    return Status::InvalidArgument("wire: bad magic byte");
  }
  const uint8_t version = static_cast<uint8_t>(wire[1]);
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported version " +
                                   std::to_string(version));
  }
  const uint8_t raw_type = static_cast<uint8_t>(wire[2]);
  if (!KnownType(raw_type)) {
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(raw_type));
  }
  const FrameType type = static_cast<FrameType>(raw_type);
  const uint8_t flags = static_cast<uint8_t>(wire[3]);
  if ((flags & ~AllowedFlags(type)) != 0) {
    return Status::InvalidArgument(std::string("wire: stray flag bits on ") +
                                   FrameTypeName(type) + " frame");
  }
  const uint32_t body_len = LoadLE32(wire.data() + 4);
  if (wire.size() - kWireHeaderBytes != body_len) {
    return Status::InvalidArgument(
        "wire: body_len " + std::to_string(body_len) + " does not match " +
        std::to_string(wire.size() - kWireHeaderBytes) + " body bytes");
  }
  if (body_len < EnvelopeBytes(type)) {
    return Status::InvalidArgument(std::string("wire: ") + FrameTypeName(type) +
                                   " body shorter than its envelope");
  }
  FrameView view;
  view.type = type;
  view.flags = flags;
  view.body = wire.substr(kWireHeaderBytes);
  return view;
}

StatusOr<size_t> AccountedPayloadBytes(std::string_view wire) {
  auto view = ParseFrame(wire);
  if (!view.ok()) return view.status();
  // Migration is background repair, not query traffic: the paper's cost
  // model never charges it, so its whole body counts as overhead.
  if (view->type == FrameType::kMigrate) return size_t{0};
  return view->body.size() - EnvelopeBytes(view->type);
}

size_t FrameOverheadBytes(FrameType type) {
  return kWireHeaderBytes + EnvelopeBytes(type);
}

StatusOr<uint64_t> RoutedDstKey(std::string_view wire) {
  auto view = ParseFrame(wire);
  if (!view.ok()) return view.status();
  switch (view->type) {
    case FrameType::kProbeOpen:
    case FrameType::kPut:
      // Both lead with the routed key (probe target / put dst_key).
      return LoadLE64(view->body.data());
    default:
      return Status::InvalidArgument(std::string("wire: ") +
                                     FrameTypeName(view->type) +
                                     " frames are not routed by key");
  }
}

// --------------------------------------------------------------------------
// kProbeOpen

std::string EncodeProbeOpen(const ProbeOpenFrame& frame) {
  CHECK(frame.bit >= 0 && frame.bit <= 0xff) << "wire: probe bit out of range";
  std::string out = BeginFrame(FrameType::kProbeOpen, 0);
  AppendLE64(out, frame.target_key);
  AppendLE16(out, static_cast<uint16_t>(frame.bit));
  AppendLE16(out, 0);  // reserved, must be zero
  FinishFrame(out);
  return out;
}

StatusOr<ProbeOpenFrame> DecodeProbeOpen(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kProbeOpen);
  if (!view.ok()) return view.status();
  if (view->body.size() != kProbeOpenPayloadBytes) {
    return Status::InvalidArgument("wire: probe_open body must be " +
                                   std::to_string(kProbeOpenPayloadBytes) +
                                   " bytes");
  }
  ProbeOpenFrame frame;
  frame.target_key = LoadLE64(view->body.data());
  const uint16_t bit = LoadLE16(view->body.data() + 8);
  if (bit > 0xff) {
    return Status::InvalidArgument("wire: probe_open bit out of range");
  }
  frame.bit = bit;
  if (LoadLE16(view->body.data() + 10) != 0) {
    return Status::InvalidArgument(
        "wire: probe_open reserved field must be zero");
  }
  return frame;
}

// --------------------------------------------------------------------------
// kMetricQuery / kVectorResponse

std::string EncodeMetricQuery(const MetricQueryFrame& frame) {
  CHECK(frame.bit >= 0 && frame.bit <= 0xff) << "wire: query bit out of range";
  std::string out = BeginFrame(FrameType::kMetricQuery, 0);
  AppendLE64(out, frame.metric_id);
  out.push_back(static_cast<char>(frame.bit));
  FinishFrame(out);
  return out;
}

StatusOr<MetricQueryFrame> DecodeMetricQuery(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kMetricQuery);
  if (!view.ok()) return view.status();
  if (view->body.size() != kMetricQueryEnvelopeBytes) {
    return Status::InvalidArgument("wire: metric_query body must be " +
                                   std::to_string(kMetricQueryEnvelopeBytes) +
                                   " bytes");
  }
  MetricQueryFrame frame;
  frame.metric_id = LoadLE64(view->body.data());
  frame.bit = static_cast<uint8_t>(view->body[8]);
  return frame;
}

std::string EncodeVectorResponse(const VectorResponseFrame& frame) {
  std::string out = BeginFrame(FrameType::kVectorResponse, 0);
  AppendLE64(out, frame.metric_id);
  int prev = -1;
  for (int v : frame.vector_ids) {
    CHECK(v > prev && v <= 0xffff) << "wire: vector ids must be ascending 16-bit values";
    prev = v;
    AppendLE16(out, static_cast<uint16_t>(v));
  }
  FinishFrame(out);
  return out;
}

StatusOr<VectorResponseFrame> DecodeVectorResponse(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kVectorResponse);
  if (!view.ok()) return view.status();
  if (view->body.size() < 8 || (view->body.size() - 8) % 2 != 0) {
    return Status::InvalidArgument(
        "wire: vector_response body must be 8 + 2v bytes");
  }
  VectorResponseFrame frame;
  frame.metric_id = LoadLE64(view->body.data());
  const size_t v = (view->body.size() - 8) / 2;
  frame.vector_ids.reserve(v);
  int prev = -1;
  for (size_t i = 0; i < v; ++i) {
    const int vector = LoadLE16(view->body.data() + 8 + 2 * i);
    if (vector <= prev) {
      return Status::InvalidArgument(
          "wire: vector_response ids must be strictly ascending");
    }
    prev = vector;
    frame.vector_ids.push_back(vector);
  }
  return frame;
}

// --------------------------------------------------------------------------
// kPut

std::string EncodePut(const PutFrame& frame) {
  std::string out = BeginFrame(FrameType::kPut,
                               frame.absolute_expiry ? kPutFlagAbsoluteExpiry
                                                     : uint8_t{0});
  AppendLE64(out, frame.dst_key);
  AppendLE64(out, frame.metric_id);
  AppendLE64(out, frame.expiry);
  const uint32_t timeout = TupleTimeout(frame.expiry);
  for (const StoreKey& key : frame.keys) {
    CHECK(key.is_dhs() && key.metric_id() == frame.metric_id) << "wire: put keys must be DHS keys of the frame's metric";
    out.push_back(static_cast<char>(frame.metric_id & 0xff));
    AppendLE16(out, static_cast<uint16_t>(key.vector_id()));
    out.push_back(static_cast<char>(static_cast<uint8_t>(key.bit())));
    AppendLE32(out, timeout);
  }
  FinishFrame(out);
  return out;
}

StatusOr<PutFrame> DecodePut(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kPut);
  if (!view.ok()) return view.status();
  const size_t tuples_bytes = view->body.size() - kPutEnvelopeBytes;
  if (tuples_bytes % 8 != 0) {
    return Status::InvalidArgument(
        "wire: put tuples must be a multiple of 8 bytes");
  }
  if (tuples_bytes == 0) {
    return Status::InvalidArgument("wire: put frame carries no tuples");
  }
  PutFrame frame;
  frame.dst_key = LoadLE64(view->body.data());
  frame.metric_id = LoadLE64(view->body.data() + 8);
  frame.expiry = LoadLE64(view->body.data() + 16);
  frame.absolute_expiry = (view->flags & kPutFlagAbsoluteExpiry) != 0;
  const uint32_t want_timeout = TupleTimeout(frame.expiry);
  const size_t n = tuples_bytes / 8;
  frame.keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char* tuple = view->body.data() + kPutEnvelopeBytes + 8 * i;
    const uint8_t metric_low = static_cast<uint8_t>(tuple[0]);
    if (metric_low != (frame.metric_id & 0xff)) {
      return Status::InvalidArgument(
          "wire: put tuple metric byte disagrees with envelope metric");
    }
    const uint16_t vector = LoadLE16(tuple + 1);
    const uint8_t bit = static_cast<uint8_t>(tuple[3]);
    if (LoadLE32(tuple + 4) != want_timeout) {
      return Status::InvalidArgument(
          "wire: put tuple timeout disagrees with envelope expiry");
    }
    frame.keys.push_back(StoreKey::Dhs(frame.metric_id, bit, vector));
  }
  return frame;
}

// --------------------------------------------------------------------------
// kAck

std::string EncodeAck(const AckFrame& frame) {
  CHECK(frame.hops >= 0 && frame.hops <= 0xffff) << "wire: ack hops out of range";
  std::string out = BeginFrame(FrameType::kAck, 0);
  out.push_back(static_cast<char>(frame.code));
  AppendLE64(out, frame.node);
  AppendLE16(out, static_cast<uint16_t>(frame.hops));
  FinishFrame(out);
  return out;
}

StatusOr<AckFrame> DecodeAck(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kAck);
  if (!view.ok()) return view.status();
  if (view->body.size() != kAckEnvelopeBytes) {
    return Status::InvalidArgument("wire: ack body must be " +
                                   std::to_string(kAckEnvelopeBytes) +
                                   " bytes");
  }
  AckFrame frame;
  frame.code = static_cast<uint8_t>(view->body[0]);
  if (frame.code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("wire: ack carries unknown status code");
  }
  frame.node = LoadLE64(view->body.data() + 1);
  frame.hops = LoadLE16(view->body.data() + 9);
  return frame;
}

// --------------------------------------------------------------------------
// kMigrate

std::string EncodeMigrate(const MigrateFrame& frame) {
  CHECK(frame.records.size() <= UINT32_MAX) << "wire: too many migrate records";
  std::string out = BeginFrame(FrameType::kMigrate, 0);
  AppendLE32(out, static_cast<uint32_t>(frame.records.size()));
  for (const MigrateRecord& record : frame.records) {
    AppendLE64(out, record.dht_key);
    const std::string key_bytes = record.key.ToBytes();
    CHECK(key_bytes.size() <= 0xffff) << "wire: migrate key too long";
    AppendLE16(out, static_cast<uint16_t>(key_bytes.size()));
    out.append(key_bytes);
    AppendLE64(out, record.expires_at);
    CHECK(record.value.size() <= UINT32_MAX) << "wire: migrate value too long";
    AppendLE32(out, static_cast<uint32_t>(record.value.size()));
    out.append(record.value);
  }
  FinishFrame(out);
  return out;
}

StatusOr<MigrateFrame> DecodeMigrate(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kMigrate);
  if (!view.ok()) return view.status();
  const std::string_view body = view->body;
  const uint32_t count = LoadLE32(body.data());
  // Every record occupies at least its 22 fixed bytes (dht_key 8 +
  // key_len 2 + expires 8 + value_len 4), so a count the body cannot
  // possibly hold is rejected before reserve() turns an adversarial
  // 4-byte prefix into a multi-gigabyte allocation.
  if (count > (body.size() - 4) / 22) {
    return Status::InvalidArgument(
        "wire: migrate record count exceeds what the body can hold");
  }
  size_t pos = 4;
  MigrateFrame frame;
  frame.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MigrateRecord record;
    if (body.size() - pos < 8 + 2) {
      return Status::InvalidArgument("wire: migrate record truncated");
    }
    record.dht_key = LoadLE64(body.data() + pos);
    pos += 8;
    const uint16_t key_len = LoadLE16(body.data() + pos);
    pos += 2;
    if (body.size() - pos < key_len) {
      return Status::InvalidArgument("wire: migrate key truncated");
    }
    record.key = StoreKey::FromBytes(std::string(body.substr(pos, key_len)));
    pos += key_len;
    if (body.size() - pos < 8 + 4) {
      return Status::InvalidArgument("wire: migrate record truncated");
    }
    record.expires_at = LoadLE64(body.data() + pos);
    pos += 8;
    const uint32_t value_len = LoadLE32(body.data() + pos);
    pos += 4;
    if (body.size() - pos < value_len) {
      return Status::InvalidArgument("wire: migrate value truncated");
    }
    record.value = std::string(body.substr(pos, value_len));
    pos += value_len;
    frame.records.push_back(std::move(record));
  }
  if (pos != body.size()) {
    return Status::InvalidArgument("wire: trailing bytes after migrate records");
  }
  return frame;
}

// --------------------------------------------------------------------------
// kCountRequest / kCountResponse

std::string EncodeCountRequest(const CountRequestFrame& frame) {
  std::string out = BeginFrame(FrameType::kCountRequest, 0);
  for (uint64_t metric : frame.metric_ids) AppendLE64(out, metric);
  FinishFrame(out);
  return out;
}

StatusOr<CountRequestFrame> DecodeCountRequest(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kCountRequest);
  if (!view.ok()) return view.status();
  if (view->body.empty() || view->body.size() % 8 != 0) {
    return Status::InvalidArgument(
        "wire: count_request body must be a non-empty multiple of 8 bytes");
  }
  CountRequestFrame frame;
  const size_t n = view->body.size() / 8;
  frame.metric_ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frame.metric_ids.push_back(LoadLE64(view->body.data() + 8 * i));
  }
  return frame;
}

std::string EncodeCountResponse(const CountResponseFrame& frame) {
  std::string out = BeginFrame(FrameType::kCountResponse,
                               frame.gave_up ? kCountFlagGaveUp : uint8_t{0});
  AppendLE32(out, frame.bitmaps_unresolved);
  for (const CountResponseEntry& entry : frame.entries) {
    AppendLE64(out, std::bit_cast<uint64_t>(entry.estimate));
    CHECK(entry.observables.size() <= 0xffff) << "wire: too many observables in count response";
    AppendLE16(out, static_cast<uint16_t>(entry.observables.size()));
    for (int obs : entry.observables) {
      CHECK(obs >= -1 && obs <= 0x7fff) << "wire: count observable out of int16 range";
      AppendLE16(out, static_cast<uint16_t>(static_cast<int16_t>(obs)));
    }
  }
  FinishFrame(out);
  return out;
}

StatusOr<CountResponseFrame> DecodeCountResponse(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kCountResponse);
  if (!view.ok()) return view.status();
  const std::string_view body = view->body;
  CountResponseFrame frame;
  frame.gave_up = (view->flags & kCountFlagGaveUp) != 0;
  frame.bitmaps_unresolved = LoadLE32(body.data());
  size_t pos = kCountResponseEnvelopeBytes;
  while (pos < body.size()) {
    if (body.size() - pos < 8 + 2) {
      return Status::InvalidArgument("wire: count_response entry truncated");
    }
    CountResponseEntry entry;
    entry.estimate = std::bit_cast<double>(LoadLE64(body.data() + pos));
    pos += 8;
    const uint16_t m = LoadLE16(body.data() + pos);
    pos += 2;
    if (body.size() - pos < size_t{2} * m) {
      return Status::InvalidArgument(
          "wire: count_response observables truncated");
    }
    entry.observables.reserve(m);
    for (uint16_t i = 0; i < m; ++i) {
      const int obs = static_cast<int16_t>(LoadLE16(body.data() + pos));
      pos += 2;
      if (obs < -1) {
        return Status::InvalidArgument(
            "wire: count_response observable below -1");
      }
      entry.observables.push_back(obs);
    }
    frame.entries.push_back(std::move(entry));
  }
  return frame;
}

// --------------------------------------------------------------------------
// kSketch

std::string EncodeSketch(const SketchFrame& frame) {
  CHECK(frame.family >= kSketchFamilyPcsa && frame.family <= kSketchFamilyHyperLogLog) << "wire: unknown sketch family";
  std::string out = BeginFrame(FrameType::kSketch, 0);
  out.push_back(static_cast<char>(frame.family));
  out.append(frame.payload);
  FinishFrame(out);
  return out;
}

StatusOr<SketchFrame> DecodeSketch(std::string_view wire) {
  auto view = ParseAs(wire, FrameType::kSketch);
  if (!view.ok()) return view.status();
  const uint8_t family = static_cast<uint8_t>(view->body[0]);
  if (family < kSketchFamilyPcsa || family > kSketchFamilyHyperLogLog) {
    return Status::InvalidArgument("wire: unknown sketch family " +
                                   std::to_string(family));
  }
  if (view->body.size() == kSketchEnvelopeBytes) {
    return Status::InvalidArgument("wire: sketch frame carries no payload");
  }
  SketchFrame frame;
  frame.family = family;
  frame.payload = std::string(view->body.substr(kSketchEnvelopeBytes));
  return frame;
}

}  // namespace dhs
