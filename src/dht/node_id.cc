#include "dht/node_id.h"

#include <cstdio>

#include "common/check.h"

namespace dhs {

IdSpace::IdSpace(int bits) : bits_(bits) {
  CHECK(bits >= 8 && bits <= 64) << "unsupported ID width " << bits;
  mask_ = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
}

std::string IdSpace::ToString(uint64_t id) const {
  char buf[32];
  const int digits = (bits_ + 3) / 4;
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(id & mask_));
  return buf;
}

}  // namespace dhs
