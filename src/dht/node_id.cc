#include "dht/node_id.h"

#include <cassert>
#include <cstdio>

namespace dhs {

IdSpace::IdSpace(int bits) : bits_(bits) {
  assert(bits >= 8 && bits <= 64);
  mask_ = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
}

bool IdSpace::InIntervalExclIncl(uint64_t x, uint64_t a, uint64_t b) const {
  x &= mask_;
  a &= mask_;
  b &= mask_;
  if (a == b) return true;  // the whole ring (single-node case)
  // x in (a, b]  <=>  dist(a, x) <= dist(a, b) and x != a.
  return x != a && Distance(a, x) <= Distance(a, b);
}

bool IdSpace::InIntervalExclExcl(uint64_t x, uint64_t a, uint64_t b) const {
  x &= mask_;
  a &= mask_;
  b &= mask_;
  if (a == b) return x != a;  // whole ring minus the endpoint
  return x != a && x != b && Distance(a, x) < Distance(a, b);
}

std::string IdSpace::ToString(uint64_t id) const {
  char buf[32];
  const int digits = (bits_ + 3) / 4;
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(id & mask_));
  return buf;
}

}  // namespace dhs
