#include "dht/store.h"

#include <map>
#include <sstream>
#include <utility>

#include "common/bit_util.h"

namespace dhs {

std::string StoreKey::ToBytes() const {
  if (kind_ == kRaw) return raw_;
  std::string bytes;
  bytes.reserve(kDhsEncodedBytes);
  bytes.push_back('D');
  AppendBE64(bytes, metric_);
  bytes.push_back(static_cast<char>(bit_));
  AppendBE16(bytes, static_cast<uint16_t>(vector_));
  return bytes;
}

StoreKey StoreKey::FromBytes(const std::string& bytes) {
  if (bytes.size() == kDhsEncodedBytes && bytes[0] == 'D') {
    const uint64_t metric = LoadBE64(bytes.data() + 1);
    const int bit = static_cast<uint8_t>(bytes[9]);
    const int vector = LoadBE16(bytes.data() + 10);
    return Dhs(metric, bit, vector);
  }
  return StoreKey(bytes);
}

void NodeStore::NoteExpiry(const StoreKey& key, uint64_t expires_at) {
  if (expires_at == kNoExpiry) return;
  expiry_heap_.push(ExpiryEntry{expires_at, key});
  if (watermark_ != nullptr && expires_at < *watermark_) {
    *watermark_ = expires_at;
  }
}

NodeStore::RecordMap::iterator NodeStore::EraseIt(RecordMap::iterator it) {
  size_bytes_ -= it->first.SizeBytes() + it->second.value.size();
  return records_.erase(it);
}

void NodeStore::Put(uint64_t dht_key, StoreKey app_key, std::string value,
                    uint64_t expires_at) {
  auto [it, inserted] = records_.try_emplace(std::move(app_key));
  StoreRecord& rec = it->second;
  if (inserted) {
    size_bytes_ += it->first.SizeBytes();
    NoteExpiry(it->first, expires_at);
  } else {
    size_bytes_ -= rec.value.size();
    // Only a strictly earlier deadline needs a fresh heap entry; a
    // refresh to a later one leaves the old entry to be skipped when
    // popped (lazy deletion).
    if (expires_at < rec.expires_at) NoteExpiry(it->first, expires_at);
  }
  rec.dht_key = dht_key;
  rec.value = std::move(value);
  rec.expires_at = expires_at;
  size_bytes_ += rec.value.size();
}

const StoreRecord* NodeStore::Get(const StoreKey& app_key, uint64_t now) {
  auto it = records_.find(app_key);
  if (it == records_.end()) return nullptr;
  if (it->second.expires_at <= now) {
    EraseIt(it);
    return nullptr;
  }
  return &it->second;
}

bool NodeStore::Erase(const StoreKey& app_key) {
  auto it = records_.find(app_key);
  if (it == records_.end()) return false;
  EraseIt(it);
  return true;
}

size_t NodeStore::ExpireUntil(uint64_t now) {
  size_t dropped = 0;
  while (!expiry_heap_.empty() && expiry_heap_.top().expires_at <= now) {
    const ExpiryEntry& entry = expiry_heap_.top();
    auto it = records_.find(entry.key);
    expiry_heap_.pop();
    // A heap entry is stale when its record was refreshed to a later
    // deadline, erased, or already reaped via a duplicate entry.
    if (it == records_.end()) continue;
    if (it->second.expires_at <= now) {
      EraseIt(it);
      ++dropped;
    } else if (it->second.expires_at != kNoExpiry) {
      // Refreshed to a later finite deadline: the popped entry was the
      // record's only guaranteed heap registration, so re-register at
      // the new deadline or the record would never be reaped.
      NoteExpiry(it->first, it->second.expires_at);
    }
  }
  return dropped;
}

void NodeStore::MigrateAll(NodeStore& dest) {
  if (this == &dest || records_.empty()) return;
  // merge() moves only keys absent from dest; pre-erase collisions so
  // the incoming record wins (last-writer-wins, as migration always
  // did), and register the travelling expiries with dest's heap.
  for (const auto& [key, rec] : records_) {
    auto hit = dest.records_.find(key);
    if (hit != dest.records_.end()) dest.EraseIt(hit);
    dest.NoteExpiry(key, rec.expires_at);
  }
  dest.size_bytes_ += size_bytes_;
  dest.records_.merge(records_);
  size_bytes_ = 0;
  expiry_heap_ = {};
}

NodeStore::RecordMap NodeStore::TakeRecords(uint64_t now) {
  ExpireUntil(now);
  RecordMap out = std::move(records_);
  records_.clear();
  expiry_heap_ = {};
  size_bytes_ = 0;
  return out;
}

void NodeStore::Adopt(RecordMap::node_type&& node) {
  auto hit = records_.find(node.key());
  if (hit != records_.end()) EraseIt(hit);
  auto result = records_.insert(std::move(node));
  size_bytes_ += result.position->first.SizeBytes() +
                 result.position->second.value.size();
  NoteExpiry(result.position->first, result.position->second.expires_at);
}

void NodeStore::Clear() {
  records_.clear();
  expiry_heap_ = {};
  size_bytes_ = 0;
}

Status NodeStore::AuditFull(uint64_t now) const {
  // Byte accounting: size_bytes_ is maintained incrementally on every
  // put/erase/migrate; re-derive it from scratch.
  size_t recomputed_bytes = 0;
  for (const auto& [key, rec] : records_) {
    recomputed_bytes += key.SizeBytes() + rec.value.size();
  }
  if (recomputed_bytes != size_bytes_) {
    std::ostringstream os;
    os << "store byte accounting drifted: maintained " << size_bytes_
       << " vs recomputed " << recomputed_bytes << " over "
       << records_.size() << " records";
    return Status::Internal(os.str());
  }

  // Expiry tracking. Drain a copy of the heap into the per-key minimum
  // deadline it knows about. Stale entries (lower than the record's
  // current deadline, or for erased keys) are legal — the heap is a
  // lazy lower bound — but every finite-TTL record MUST be covered by
  // an entry at or below its deadline, or ExpireUntil would never reap
  // it and MinExpiry() could overshoot the true earliest expiry.
  std::map<StoreKey, uint64_t> heap_min;
  for (auto heap = expiry_heap_; !heap.empty(); heap.pop()) {
    const ExpiryEntry& entry = heap.top();
    auto [it, inserted] = heap_min.try_emplace(entry.key, entry.expires_at);
    if (!inserted && entry.expires_at < it->second) {
      it->second = entry.expires_at;
    }
  }
  uint64_t true_min = kNoExpiry;
  for (const auto& [key, rec] : records_) {
    if (rec.expires_at == kNoExpiry) continue;
    if (rec.expires_at <= now) continue;  // due; lazily reaped on access
    true_min = std::min(true_min, rec.expires_at);
    auto it = heap_min.find(key);
    if (it == heap_min.end()) {
      return Status::Internal(
          "finite-TTL record has no expiry-heap entry (would never be "
          "reaped): expires_at=" +
          std::to_string(rec.expires_at));
    }
    if (it->second > rec.expires_at) {
      std::ostringstream os;
      os << "expiry-heap entry overshoots its record: heap min "
         << it->second << " > record deadline " << rec.expires_at;
      return Status::Internal(os.str());
    }
  }
  if (MinExpiry() > true_min) {
    std::ostringstream os;
    os << "MinExpiry() " << MinExpiry()
       << " overshoots true earliest live expiry " << true_min;
    return Status::Internal(os.str());
  }
  return Status::OK();
}

}  // namespace dhs
