#include "dht/store.h"

namespace dhs {

void NodeStore::Put(uint64_t dht_key, const std::string& app_key,
                    std::string value, uint64_t expires_at) {
  StoreRecord& rec = records_[app_key];
  rec.dht_key = dht_key;
  rec.value = std::move(value);
  rec.expires_at = expires_at;
}

const StoreRecord* NodeStore::Get(const std::string& app_key, uint64_t now) {
  auto it = records_.find(app_key);
  if (it == records_.end()) return nullptr;
  if (it->second.expires_at <= now) {
    records_.erase(it);
    return nullptr;
  }
  return &it->second;
}

bool NodeStore::Erase(const std::string& app_key) {
  return records_.erase(app_key) > 0;
}

size_t NodeStore::ExpireUntil(uint64_t now) {
  size_t dropped = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.expires_at <= now) {
      it = records_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void NodeStore::MigrateAll(NodeStore& dest) {
  for (auto& [key, rec] : records_) {
    dest.records_[key] = std::move(rec);
  }
  records_.clear();
}

size_t NodeStore::SizeBytes() const {
  size_t total = 0;
  for (const auto& [key, rec] : records_) {
    total += key.size() + rec.value.size();
  }
  return total;
}

}  // namespace dhs
