#include "dht/chord.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dhs {

StatusOr<uint64_t> ChordNetwork::ResponsibleNode(uint64_t key) const {
  if (NumNodes() == 0) return Status::FailedPrecondition("empty network");
  return RingSuccessorId(key);
}

void ChordNetwork::MigrateOnJoin(uint64_t new_node_id) {
  // The new node takes over keys in (predecessor, new_node_id] from its
  // successor.
  auto pred = PredecessorOfNode(new_node_id);
  auto succ = SuccessorOfNode(new_node_id);
  CHECK(pred.ok() && succ.ok())
      << "join migration on a ring without neighbours";
  const uint64_t pred_id = pred.value();
  NodeStore* joiner_store = StoreAt(new_node_id);
  StoreAt(succ.value())
      ->MigrateIf(
          [&](uint64_t dht_key) {
            return space_.InIntervalExclIncl(dht_key, pred_id, new_node_id);
          },
          *joiner_store);
}

ChordNetwork::FingerTable& ChordNetwork::TableAt(size_t node_idx) const {
  if (tables_.size() < ring().size()) tables_.resize(ring().size());
  FingerTable& table = tables_[node_idx];
  if (table.epoch != epoch_) {
    table.epoch = epoch_;
    table.known = 0;
    const size_t n = ring().size();
    table.predecessor = ring()[node_idx == 0 ? n - 1 : node_idx - 1];
  }
  return table;
}

size_t ChordNetwork::FingerIndex(FingerTable& table, uint64_t node_id,
                                 int i) const {
  const uint64_t bit = uint64_t{1} << i;
  if ((table.known & bit) == 0) {
    table.fingers[static_cast<size_t>(i)] = static_cast<uint32_t>(
        RingSuccessorIndex(space_.Add(node_id, bit)));
    table.known |= bit;
  }
  return static_cast<size_t>(table.fingers[static_cast<size_t>(i)]);
}

Status ChordNetwork::AuditDerivedState() const {
  const std::vector<uint64_t>& r = ring();
  const size_t n = r.size();
  const size_t rows = std::min(tables_.size(), n);
  for (size_t idx = 0; idx < rows; ++idx) {
    const FingerTable& table = tables_[idx];
    if (table.epoch != epoch_) continue;  // stale row: reset before reuse
    const uint64_t node_id = r[idx];
    const uint64_t expected_pred = r[idx == 0 ? n - 1 : idx - 1];
    if (table.predecessor != expected_pred) {
      std::ostringstream os;
      os << "chord audit: node " << node_id
         << " caches predecessor " << table.predecessor
         << " but the ring predecessor is " << expected_pred;
      return Status::Internal(os.str());
    }
    for (int i = 0; i < 64; ++i) {
      if ((table.known & (uint64_t{1} << i)) == 0) continue;
      const size_t expected =
          RingSuccessorIndex(space_.Add(node_id, uint64_t{1} << i));
      if (table.fingers[static_cast<size_t>(i)] != expected) {
        std::ostringstream os;
        os << "chord audit: node " << node_id << " finger " << i
           << " caches ring index "
           << table.fingers[static_cast<size_t>(i)]
           << " but successor(n + 2^" << i << ") is at index " << expected;
        return Status::Internal(os.str());
      }
    }
  }
  return Status::OK();
}

std::vector<uint64_t> ChordNetwork::ReplicaCandidates(
    const IdInterval& interval, uint64_t key, uint64_t primary,
    int max_replicas) const {
  (void)interval;  // ring placement depends only on the primary
  (void)key;
  std::vector<uint64_t> replicas;
  if (max_replicas <= 0 || NumNodes() <= 1) return replicas;
  const std::vector<uint64_t>& r = ring();
  const size_t n = r.size();
  size_t idx = RingIndexOf(primary);
  while (static_cast<int>(replicas.size()) < max_replicas) {
    idx = idx + 1 == n ? 0 : idx + 1;
    if (r[idx] == primary) break;  // wrapped: every live node holds one
    replicas.push_back(r[idx]);
  }
  return replicas;
}

std::vector<uint64_t> ChordNetwork::ProbeCandidates(
    const IdInterval& interval, uint64_t probe_key, uint64_t start_node,
    int max_candidates) const {
  (void)probe_key;  // ring candidates do not depend on the probed key
  std::vector<uint64_t> candidates;
  if (max_candidates <= 0 || NumNodes() == 0) return candidates;

  const std::vector<uint64_t>& r = ring();
  const size_t n = r.size();
  const size_t start_idx = RingSuccessorIndex(start_node);

  // Successor direction: walk while the previous node is still inside
  // the interval (one node beyond it owns the interval's top keys).
  uint64_t frontier = start_node;
  size_t idx = start_idx;
  while (static_cast<int>(candidates.size()) < max_candidates &&
         interval.Contains(frontier)) {
    idx = idx + 1 == n ? 0 : idx + 1;
    const uint64_t succ = r[idx];
    if (succ == start_node) break;  // wrapped
    frontier = succ;
    candidates.push_back(frontier);
  }
  // Predecessor direction from the start node, staying inside.
  size_t pidx = start_idx;
  while (static_cast<int>(candidates.size()) < max_candidates) {
    pidx = pidx == 0 ? n - 1 : pidx - 1;
    const uint64_t pred = r[pidx];
    if (pred == frontier || pred == start_node ||
        !interval.Contains(pred)) {
      break;
    }
    candidates.push_back(pred);
  }
  return candidates;
}

}  // namespace dhs
