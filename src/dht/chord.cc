#include "dht/chord.h"

#include <cassert>

namespace dhs {

StatusOr<uint64_t> ChordNetwork::ResponsibleNode(uint64_t key) const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty network");
  return RingSuccessor(key)->first;
}

void ChordNetwork::MigrateOnJoin(uint64_t new_node_id) {
  // The new node takes over keys in (predecessor, new_node_id] from its
  // successor.
  auto pred = PredecessorOfNode(new_node_id);
  auto succ = SuccessorOfNode(new_node_id);
  assert(pred.ok() && succ.ok());
  const uint64_t pred_id = pred.value();
  NodeStore* joiner_store = StoreAt(new_node_id);
  StoreAt(succ.value())
      ->MigrateIf(
          [&](uint64_t dht_key) {
            return space_.InIntervalExclIncl(dht_key, pred_id, new_node_id);
          },
          *joiner_store);
}

std::vector<uint64_t> ChordNetwork::ProbeCandidates(
    const IdInterval& interval, uint64_t probe_key, uint64_t start_node,
    int max_candidates) const {
  (void)probe_key;  // ring candidates do not depend on the probed key
  std::vector<uint64_t> candidates;
  if (max_candidates <= 0 || nodes_.empty()) return candidates;

  // Successor direction: walk while the previous node is still inside
  // the interval (one node beyond it owns the interval's top keys).
  uint64_t frontier = start_node;
  while (static_cast<int>(candidates.size()) < max_candidates &&
         interval.Contains(frontier)) {
    auto succ = SuccessorOfNode(frontier);
    if (!succ.ok() || succ.value() == start_node) break;  // wrapped
    frontier = succ.value();
    candidates.push_back(frontier);
  }
  // Predecessor direction from the start node, staying inside.
  uint64_t pred_frontier = start_node;
  while (static_cast<int>(candidates.size()) < max_candidates) {
    auto pred = PredecessorOfNode(pred_frontier);
    if (!pred.ok() || pred.value() == frontier ||
        pred.value() == start_node || !interval.Contains(pred.value())) {
      break;
    }
    pred_frontier = pred.value();
    candidates.push_back(pred_frontier);
  }
  return candidates;
}

}  // namespace dhs
