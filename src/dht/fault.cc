#include "dht/fault.h"

#include "common/check.h"
#include "common/random.h"

namespace dhs {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "none";
    case FaultType::kDrop:
      return "drop";
    case FaultType::kTimeout:
      return "timeout";
    case FaultType::kCrash:
      return "crash";
  }
  return "unknown";
}

Status FaultConfig::Validate() const {
  const auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(drop_probability) || !in_unit(timeout_probability) ||
      !in_unit(crash_probability)) {
    return Status::InvalidArgument(
        "fault probabilities must be in [0, 1]");
  }
  if (drop_probability + timeout_probability + crash_probability > 1.0) {
    return Status::InvalidArgument(
        "fault probabilities must sum to at most 1");
  }
  return Status::OK();
}

FaultType FaultPlan::DecisionFor(const FaultConfig& config, uint64_t seq) {
  // One SplitMix64 mix of (seed, seq) gives an i.i.d. uniform draw per
  // message; golden-ratio spacing keeps consecutive sequence numbers
  // decorrelated. Purely functional: no generator state to replay.
  const uint64_t mixed =
      SplitMix64(config.seed ^ (seq * 0x9e3779b97f4a7c15ULL + 1));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;
  double threshold = config.drop_probability;
  if (u < threshold) return FaultType::kDrop;
  threshold += config.timeout_probability;
  if (u < threshold) return FaultType::kTimeout;
  threshold += config.crash_probability;
  if (u < threshold) return FaultType::kCrash;
  return FaultType::kNone;
}

FaultType FaultPlan::NextDecision() {
  DCHECK(active()) << "drawing a fault decision on an inactive plan";
  const FaultType decision = DecisionFor(config_, seq_);
  seq_ += 1;
  stats_.decisions += 1;
  return decision;
}

void FaultPlan::RecordApplied(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      break;
    case FaultType::kDrop:
      stats_.drops += 1;
      break;
    case FaultType::kTimeout:
      stats_.timeouts += 1;
      break;
    case FaultType::kCrash:
      stats_.crashes += 1;
      break;
  }
}

}  // namespace dhs
