// Abstract DHT overlay simulator.
//
// The paper's design is DHT-agnostic (§1: "can be deployed over any
// peer-to-peer overlay conforming to the DHT abstraction"). DhtNetwork
// captures exactly that abstraction plus the simulation bookkeeping:
// membership, per-node soft-state stores and load counters, a virtual
// clock, and message-level cost accounting. Geometry-specific behaviour
// — who is responsible for a key, how requests route, and which nodes
// are candidate holders for an interval's keys — is virtual:
//
//   * ChordNetwork    (dht/chord.h)    — ring geometry, successor
//     responsibility, greedy finger routing;
//   * KademliaNetwork (dht/kademlia.h) — XOR geometry, closest-node
//     responsibility, prefix-improving routing.
//
// The simulator models a *converged* overlay: routing state is resolved
// against the global membership map, which matches the paper's
// evaluation setting. It is single-threaded by default and declared
// ThreadHostile (common/sync.h): geometries rebuild routing caches
// (finger tables, bucket caches) lazily behind const paths, so ad-hoc
// concurrent use — even read-only — races on those caches. The
// multi-trial runner (common/thread_pool.h) therefore constructs one
// network per trial and statically rejects results that leak one. The
// one sanctioned concurrent regime is the sharded engine (dht/shard.h):
// it installs a ShardPlan, has PrepareShardedRouting() pre-size the
// lazy caches so each cache row is touched only by the worker owning
// that node's ID slice, freezes membership for the duration of a batch,
// and separates shards with tick barriers.
//
// Membership is mirrored into a flat sorted vector of live IDs (the
// "ring index") so every ring query — successor, predecessor, range
// count, random node — is a binary search over contiguous memory
// instead of a std::map walk. Geometries hang derived routing state
// (finger tables, bucket caches) off OnMembershipChange().

#ifndef DHS_DHT_NETWORK_H_
#define DHS_DHT_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/sync.h"
#include "dht/fault.h"
#include "dht/node_id.h"
#include "dht/stats.h"
#include "dht/store.h"
#include "hashing/hasher.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dhs {

/// Overlay construction parameters (shared by all geometries).
struct OverlayConfig {
  /// ID-space width L in bits (8..64). The paper's evaluation uses 64.
  int id_bits = 64;

  /// Node-ID derivation for AddNodeFromName: "md4" (the paper) or "mix".
  std::string hasher = "md4";

  /// Safety cap on routing path length (a converged overlay never gets
  /// close to this; it guards against bugs).
  int max_route_hops = 256;
};

/// Backwards-compatible alias: the Chord overlay was the first
/// implementation and most call sites configure it under this name.
using ChordConfig = OverlayConfig;

/// Outcome of a routed lookup.
struct LookupResult {
  uint64_t node = 0;  // live node responsible for the key
  int hops = 0;       // inter-node hops taken (0 if origin is responsible)
};

/// Contiguous equal partition of the ID space into `shards` slices:
/// shard s owns IDs in [LowerBound(s), LowerBound(s+1)). Ownership is a
/// single widening multiply, so hot paths re-derive it instead of
/// storing a per-node shard id.
struct ShardPlan {
  int shards = 1;
  int id_bits = 64;

  int ShardOf(uint64_t id) const {
    return static_cast<int>(
        (static_cast<unsigned __int128>(id) *
         static_cast<unsigned __int128>(static_cast<unsigned>(shards))) >>
        id_bits);
  }

  /// Smallest ID owned by `shard`. Valid for 0 <= shard < shards (the
  /// top slice's upper bound is the ID-space size, which overflows
  /// uint64_t at 64 bits — iterate to the container end instead).
  uint64_t LowerBound(int shard) const {
    const unsigned __int128 numer =
        (static_cast<unsigned __int128>(static_cast<unsigned>(shard))
         << id_bits) +
        static_cast<unsigned>(shards) - 1;
    return static_cast<uint64_t>(numer /
                                 static_cast<unsigned>(shards));
  }
};

/// The simulated overlay network. Owns all node state.
class DhtNetwork : private ThreadHostile {
 public:
  explicit DhtNetwork(const OverlayConfig& config = OverlayConfig());
  virtual ~DhtNetwork() = default;

  DhtNetwork(const DhtNetwork&) = delete;
  DhtNetwork& operator=(const DhtNetwork&) = delete;

  const IdSpace& space() const { return space_; }
  const OverlayConfig& config() const { return config_; }

  /// Human-readable geometry name ("chord", "kademlia").
  virtual const char* GeometryName() const = 0;

  // ---- Membership -------------------------------------------------------

  /// Adds a node with an explicit ID and hands over the keys it becomes
  /// responsible for. Fails if the ID is taken.
  [[nodiscard]] Status AddNode(uint64_t node_id);

  /// Adds a node whose ID is hash(name) (the paper: MD4 of address/port).
  [[nodiscard]] StatusOr<uint64_t> AddNodeFromName(std::string_view name);

  /// Graceful leave: the node's records migrate to whichever nodes are
  /// now responsible for their keys.
  [[nodiscard]] Status RemoveNode(uint64_t node_id);

  /// Abrupt failure: the node vanishes and its records are lost (§3.5).
  [[nodiscard]] Status FailNode(uint64_t node_id);

  bool Contains(uint64_t node_id) const { return nodes_.count(node_id) > 0; }
  size_t NumNodes() const { return ring_.size(); }

  /// All live node IDs in ascending order.
  std::vector<uint64_t> NodeIds() const { return ring_; }

  /// Uniformly random live node. Requires a non-empty network.
  uint64_t RandomNode(Rng& rng) const;

  /// Initial-population fast path: adds every distinct (clamped) ID to
  /// an *empty* network at once — one sort plus a hinted map build
  /// instead of N sorted-vector inserts — and fires OnMembershipChange
  /// once. Equivalent to an AddNode loop on an empty network (no
  /// records exist, so no migration can occur). Returns the number of
  /// nodes added; duplicates within `ids` collapse.
  size_t BulkAddNodes(std::vector<uint64_t> ids);

  // ---- Sharding -----------------------------------------------------------

  /// Repartitions the expiry watermarks into `shards` contiguous
  /// ID-space slices, rebinds every store to its owning slice's
  /// watermark, and lets the geometry pre-size its routing caches
  /// (PrepareShardedRouting). Safe to call at any point; the sharded
  /// engine (dht/shard.h) calls it at construction and again after
  /// membership changes.
  void SetShardPlan(int shards);

  const ShardPlan& shard_plan() const { return shard_plan_; }

  // ---- Geometry (no message cost) ----------------------------------------

  /// The live node responsible for `key` under this geometry.
  [[nodiscard]] virtual StatusOr<uint64_t> ResponsibleNode(uint64_t key) const = 0;

  /// The live node numerically after/before `node_id` (wrapping). Both
  /// geometries expose numeric neighbours: Chord's successor pointers,
  /// Kademlia's deepest k-bucket.
  [[nodiscard]] StatusOr<uint64_t> SuccessorOfNode(uint64_t node_id) const;
  [[nodiscard]] StatusOr<uint64_t> PredecessorOfNode(uint64_t node_id) const;

  /// Number of live nodes with ID in the ring range [lo, hi) (§4.1).
  /// O(log N): two binary searches over the ring index.
  size_t CountNodesInRange(uint64_t lo, uint64_t hi) const;

  /// Candidate holders (beyond `start_node`) for keys of the
  /// prefix-aligned interval, in the order a counting walk should probe
  /// them; at most `max_candidates` entries. `probe_key` is the key the
  /// walk routed to (`start_node` is its responsible node).
  virtual std::vector<uint64_t> ProbeCandidates(const IdInterval& interval,
                                                uint64_t probe_key,
                                                uint64_t start_node,
                                                int max_candidates) const = 0;

  /// Nodes that should hold the extra copies of a tuple whose primary
  /// holder is `primary` (the responsible node of `key`, which lies in
  /// `interval`), in the order a counting walk probes after the primary.
  /// Replication degree R therefore puts the i-th copy exactly where a
  /// walk looks (i+1)-th, so copies stay visible after the primary
  /// fails — the ordering is shared with ProbeCandidates by
  /// construction (§3.5: Chord replicates to ring successors; Kademlia
  /// to the XOR-nearest block members). At most `max_replicas` entries;
  /// never contains `primary`.
  virtual std::vector<uint64_t> ReplicaCandidates(const IdInterval& interval,
                                                  uint64_t key,
                                                  uint64_t primary,
                                                  int max_replicas) const = 0;

  // ---- Routed operations (charged to stats) ------------------------------

  /// Routes from `from_node` to the responsible node of `key`; charges
  /// hops and `payload_bytes` per hop.
  [[nodiscard]] StatusOr<LookupResult> Lookup(uint64_t from_node, uint64_t key,
                                size_t payload_bytes = 0);

  /// Charges a direct one-hop message between two live nodes.
  [[nodiscard]] Status DirectHop(uint64_t from_node, uint64_t to_node,
                   size_t payload_bytes = 0);

  /// Full insert primitive: Lookup(dht_key) then store at the
  /// responsible node. Returns the storing node.
  [[nodiscard]] StatusOr<uint64_t> Put(uint64_t from_node, uint64_t dht_key,
                         StoreKey app_key, std::string value,
                         uint64_t ttl_ticks);

  /// Full lookup primitive; NotFound if the key has no live record.
  [[nodiscard]] StatusOr<std::string> GetValue(uint64_t from_node, uint64_t dht_key,
                                 const StoreKey& app_key);

  // ---- Direct state access (simulator-level, uncharged) ------------------

  NodeStore* StoreAt(uint64_t node_id);
  const NodeStore* StoreAt(uint64_t node_id) const;

  /// Load counters of a live node. The pointer is invalidated by the
  /// next membership change; use it immediately.
  NodeLoad* LoadAt(uint64_t node_id);

  std::vector<std::pair<uint64_t, NodeLoad>> Loads() const;
  void ResetLoads();

  // ---- Virtual clock ------------------------------------------------------

  uint64_t now() const { return now_; }

  /// Advances the clock and expires soft-state records network-wide.
  /// O(1) when no store holds a record due by the new time: every store
  /// pushes its earliest finite expiry into a shared watermark, and the
  /// tick returns immediately while now < watermark.
  void AdvanceClock(uint64_t ticks);

  // ---- Fault injection ----------------------------------------------------

  /// Installs a seeded fault plan: every subsequent Lookup/DirectHop
  /// (and the Put/GetValue primitives built on them) draws one
  /// deterministic per-message decision — delivered, dropped
  /// (Unavailable), timed out (DeadlineExceeded) or target crashed
  /// (FailNode + Unavailable). Replaces any previous plan and resets
  /// its sequence number; validate-fails on bad probabilities.
  [[nodiscard]] Status SetFaultPlan(const FaultConfig& fault_config);

  /// Removes the fault plan (messages always deliver again).
  void ClearFaultPlan();

  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Pauses/resumes fault draws without touching the sequence number,
  /// so introspection probes (the model checker's cross-checks) stay
  /// invisible to the replayable schedule.
  void PauseFaults(bool paused) { fault_plan_.set_paused(paused); }

  /// Every node the fault plan has crashed, in crash order. Replayers
  /// (audit_sim) reconcile this log into their reference membership
  /// after each operation — a crash can land mid-operation, several per
  /// multi-message client call.
  const std::vector<uint64_t>& crash_log() const { return crash_log_; }

  // ---- Observability ------------------------------------------------------

  /// Attaches a tracer (nullptr detaches). The network binds it to its
  /// own stats counters and virtual clock, and every routed operation
  /// then records spans (lookup/direct_hop/put/get) and instants
  /// (per-routing-hop, fault injections). Off by default; a detached or
  /// disabled tracer costs one branch per operation.
  void AttachTracer(Tracer* tracer);
  Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (nullptr detaches). The network
  /// interns its instrument series once here — labelled by geometry —
  /// and each operation afterwards pays a pointer test plus an add.
  void AttachMetrics(MetricsRegistry* registry);
  MetricsRegistry* metrics() const { return metrics_; }

  // ---- Cost accounting ----------------------------------------------------

  const MessageStats& stats() const { return stats_; }
  void ResetStats() { stats_.Clear(); }

  /// Charges application-level response bytes (direct return path; no
  /// hop, matching the paper's request-routing hop metric).
  void ChargeBytes(size_t bytes) { stats_.bytes += bytes; }

  /// Total storage bytes over all nodes.
  size_t TotalStorageBytes() const;

  // ---- Invariant auditing -------------------------------------------------

  /// Exhaustively cross-checks every piece of redundant simulator state
  /// against a from-scratch re-derivation:
  ///
  ///   * the ring index mirrors the membership map exactly (same IDs,
  ///     strictly sorted, clamped to the ID space);
  ///   * the per-node load vector stays parallel to the ring index;
  ///   * every store passes NodeStore::AuditFull (byte accounting,
  ///     expiry-heap coverage) and is bound to the network watermark;
  ///   * the network-wide earliest-expiry watermark is at or below the
  ///     true earliest finite expiry over all live records;
  ///   * geometry-derived routing state (Chord finger tables, Kademlia
  ///     bucket caches) that claims to be epoch-fresh matches a
  ///     brute-force recomputation (AuditDerivedState).
  ///
  /// Always available in every build type; O(total records + N log N +
  /// cached routing entries). Returns OK or Internal naming the first
  /// violated invariant.
  [[nodiscard]] Status AuditFull() const;

  /// Debug-only wrapper: CHECKs AuditFull() (via DCHECK_OK, compiled out
  /// under NDEBUG). Call from tests and audit-enabled experiment loops.
  void CheckInvariants() const;

 protected:
  using NodeMap = std::map<uint64_t, NodeStore>;

  /// Geometry-specific greedy next hop toward `key`, in ring-index
  /// space: `current_idx` is the position of the current node (ID
  /// `current_id`) in ring(), and the returned value is the position of
  /// the next hop — `current_idx` itself when the current node is
  /// responsible. Index space keeps the routed hot loop free of id →
  /// node searches.
  virtual size_t NextHopIndex(size_t current_idx, uint64_t current_id,
                              uint64_t key) const = 0;

  /// Re-homes records after `node_id` joined. The default scans every
  /// node and moves records whose responsible node changed — always
  /// correct, O(total records). Geometries may override with a targeted
  /// version (Chord: only the successor can lose keys).
  virtual void MigrateOnJoin(uint64_t new_node_id);

  /// Invoked after every ring_ mutation (join/leave/fail), before any
  /// migration. Geometries drop derived routing state (finger tables,
  /// bucket caches) here.
  virtual void OnMembershipChange() {}

  /// Geometry hook of AuditFull(): re-derives any cached routing state
  /// (finger tables, bucket caches) brute-force and compares it against
  /// the cache. The default has no derived state and returns OK.
  [[nodiscard]] virtual Status AuditDerivedState() const { return Status::OK(); }

  /// Geometry hook of SetShardPlan(): pre-sizes lazily grown routing
  /// caches so that, during a sharded batch, each worker only writes
  /// cache rows of nodes it owns and no shared container ever
  /// reallocates. The default has no caches.
  virtual void PrepareShardedRouting() {}

  /// Expires due records in shard `shard`'s slice of the membership map
  /// and recomputes that slice's watermark. Touches only the slice's
  /// stores and watermark slot, so the sharded engine runs one call per
  /// worker concurrently.
  void ExpireShard(int shard);

  /// Sorted vector of all live node IDs (the ring index).
  const std::vector<uint64_t>& ring() const { return ring_; }

  /// ID of the first live node >= key, wrapping. Requires a non-empty
  /// network.
  uint64_t RingSuccessorId(uint64_t key) const;

  /// Index into ring() of the first live node >= key (ring().size() is
  /// clamped to 0, i.e. wrap). Requires a non-empty network.
  size_t RingSuccessorIndex(uint64_t key) const;

  /// Index into ring() of a live node (exact match required).
  size_t RingIndexOf(uint64_t node_id) const;

  OverlayConfig config_;
  IdSpace space_;
  std::unique_ptr<UniformHasher> name_hasher_;
  NodeMap nodes_;
  MessageStats stats_;
  uint64_t now_ = 0;

 private:
  void RingInsert(uint64_t node_id);
  void RingErase(uint64_t node_id);

  /// Draws (and applies) the fault decision for one message from
  /// `from_node` to `target_node`. OK = delivered; otherwise the
  /// transient failure the caller must surface. The message has already
  /// been charged to stats_.messages; faulted messages charge no hops
  /// or bytes (undelivered work is unobservable). Self-delivered
  /// messages and last-node crashes are downgraded to delivery.
  [[nodiscard]] Status InjectFault(uint64_t from_node, uint64_t target_node);

  FaultPlan fault_plan_;
  std::vector<uint64_t> crash_log_;  // fault-crashed nodes, in order

  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  // Instrument pointers interned at AttachMetrics (null when detached).
  Counter* m_lookups_ = nullptr;
  Counter* m_direct_hops_ = nullptr;
  Counter* m_fault_drops_ = nullptr;
  Counter* m_fault_timeouts_ = nullptr;
  Counter* m_fault_crashes_ = nullptr;
  Histogram* m_lookup_hops_ = nullptr;

  std::vector<uint64_t> ring_;    // sorted live IDs
  std::vector<NodeLoad> loads_;   // parallel to ring_: dense, so the
                                  // per-hop counter update in Lookup
                                  // never chases a map node

  // Expiry watermarks, one per shard slice (a single slot when no plan
  // is installed): a lower bound on the earliest finite expiry over the
  // slice's stores. Stores are bound to their slice's slot, so the
  // vector is only ever resized by SetShardPlan (which rebinds).
  ShardPlan shard_plan_;
  std::vector<uint64_t> shard_expiry_;

  friend class ShardedNetwork;  // dht/shard.h: drives batches over the
                                // internals between tick barriers
};

}  // namespace dhs

#endif  // DHS_DHT_NETWORK_H_
