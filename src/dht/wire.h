// Binary wire format for every DHS protocol message.
//
// Until this layer existed, DHS messages were in-process function calls
// whose sizes were *accounted* from the paper's §5.1 formulas
// (config.h: TupleBytes / ProbeRequestBytes / ProbeResponseBytes). Here
// each message becomes a real encoded frame, and the transports
// (transport.h) derive their MessageStats charges from the encoded
// bytes — measured, not estimated.
//
// Frame layout (all integers little-endian, via common/bit_util.h — the
// dhs-analyze serialization checker forbids memcpy/reinterpret_cast
// codecs under src/dht/):
//
//   offset  size  field
//   0       1     magic       0xD5
//   1       1     version     kWireVersion (1)
//   2       1     type        FrameType
//   3       1     flags       per-type; undefined bits must be zero
//   4       4     body_len    LE32, bytes after this header
//   8       ...   body        per-type envelope + payload
//
// The body splits into a fixed per-type *envelope* (addressing /
// metadata the in-process calls never counted) and the *payload* (the
// §5.1-accounted application bytes). MessageStats charges exactly
// AccountedPayloadBytes(frame) per hop — the paper excludes "protocol
// headers" from its cost model (§5.2), so header + envelope bytes are
// reported separately through the obs wire metrics, and fixed-seed
// simulations stay byte-identical to the pre-wire accounting.
//
// Per-type bodies (sizes in bytes):
//
//   type             envelope                          payload
//   kProbeOpen   1   -                                 target_key 8 | bit 2 | reserved 2   (=12, ProbeRequestBytes)
//   kMetricQuery 2   metric 8 | bit 1                  -                                   (=0; rides on the walk)
//   kVectorResp  3   -                                 metric 8 | vector 2 x v             (=8+2v, ProbeResponseBytes)
//   kPut         4   dst_key 8 | metric 8 | expiry 8   tuple 8 x n                         (=8n, TupleBytes x n)
//   kAck         5   code 1 | node 8 | hops 2          -                                   (=0; acks ride for free, §5.2)
//   kMigrate     6   count 4                           records (shard hand-off; uncharged)
//   kCountReq    7   -                                 metric 8 x n
//   kCountResp   8   unresolved 4                      entries (estimate 8 | m 2 | obs 2 x m)
//   kSketch      9   family 1                          estimator Serialize() bytes
//
// A kPut tuple is the paper's (metric, vector, bit, timeout) insertion
// tuple at its §5.1 size of 8 bytes: metric_low 1 | vector 2 | bit 1 |
// timeout 4. metric_low and timeout are canonical projections of the
// envelope's full-width metric/expiry fields; decoders reject
// mismatches, so there is exactly one encoding of every frame
// (round-trip: Encode(Decode(b)) == b for every accepted b).
//
// Decoding is strict in the style of tests/sketch/serialization_test.cc:
// every truncation, extension, bad magic/version/type, stray flag bit,
// body_len mismatch and non-canonical field is rejected with
// InvalidArgument naming the offending field.

#ifndef DHS_DHT_WIRE_H_
#define DHS_DHT_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dht/store.h"

namespace dhs {

/// First byte of every frame.
inline constexpr uint8_t kWireMagic = 0xD5;
/// Wire protocol version; bump on any incompatible layout change.
inline constexpr uint8_t kWireVersion = 1;
/// Fixed frame header size (magic, version, type, flags, body_len).
inline constexpr size_t kWireHeaderBytes = 8;

/// Message kinds carried on the wire.
enum class FrameType : uint8_t {
  kProbeOpen = 1,       // open a probe walk: routed to the interval's key
  kMetricQuery = 2,     // ask a visited node for one metric's vectors
  kVectorResponse = 3,  // the vector ids holding a set bit (reply)
  kPut = 4,             // insert a group of DHS tuples at a key
  kAck = 5,             // generic delivery acknowledgement (reply)
  kMigrate = 6,         // shard / churn hand-off of raw store records
  kCountRequest = 7,    // front-door count for a batch of metrics
  kCountResponse = 8,   // estimates + raw observables (reply)
  kSketch = 9,          // serialized estimator payload (family-tagged)
};

/// Human-readable frame type name ("put", "probe_open", ...), stable
/// for use as a metrics label. Unknown values map to "unknown".
const char* FrameTypeName(FrameType type);

/// kPut flag: the envelope expiry is an absolute tick (replica writes,
/// which reuse the primary's expiry) rather than a relative TTL.
inline constexpr uint8_t kPutFlagAbsoluteExpiry = 0x01;
/// kCountResponse flag: the count gave up (unrecoverable probe failure).
inline constexpr uint8_t kCountFlagGaveUp = 0x01;

/// Validated frame header plus a view of the raw body.
struct FrameView {
  FrameType type = FrameType::kAck;
  uint8_t flags = 0;
  std::string_view body;  // everything after the 8-byte header
};

/// Validates magic/version/type/flags/body_len and that the body is at
/// least as long as the type's envelope. Per-type payload validation
/// happens in the Decode* functions.
StatusOr<FrameView> ParseFrame(std::string_view wire);

/// The §5.1-accounted payload bytes of an encoded frame: body minus the
/// per-type envelope. This is exactly what the transports charge to
/// MessageStats (per hop for routed/forwarded frames).
StatusOr<size_t> AccountedPayloadBytes(std::string_view wire);

/// Header + envelope bytes of a frame type — the protocol overhead the
/// paper's cost model excludes (tracked by obs/wire_metrics.h).
size_t FrameOverheadBytes(FrameType type);

/// Destination key of a routable frame (kProbeOpen target, kPut
/// dst_key). Other types are point-to-point and have no routed key.
StatusOr<uint64_t> RoutedDstKey(std::string_view wire);

// ---------------------------------------------------------------------------
// kProbeOpen — opens a probe walk (Alg. 1): routed toward target_key,
// the walk then forwards it along ProbeCandidates. Deliberately carries
// no metric list: per-metric reads are separate kMetricQuery exchanges,
// which is how a multi-metric count stays at ProbeRequestBytes()==12
// per hop (front_door.cc "one walk, many queries").

struct ProbeOpenFrame {
  uint64_t target_key = 0;
  int bit = 0;  // [0, 255] (sketch bit index; fits IndexBits+RhoBits)
};
/// Payload bytes of a probe-open frame (== config ProbeRequestBytes()).
inline constexpr size_t kProbeOpenPayloadBytes = 12;
std::string EncodeProbeOpen(const ProbeOpenFrame& frame);
StatusOr<ProbeOpenFrame> DecodeProbeOpen(std::string_view wire);

// ---------------------------------------------------------------------------
// kMetricQuery / kVectorResponse — the per-(node, metric, bit) read of
// a probe. The query rides on an already-open walk (its addressing is
// all envelope — the §5.1 request cost is the 12-byte probe-open that
// reached the node); the response is the paper's probe response at
// exactly ProbeResponseBytes(v) == 8 + 2v payload bytes: the metric id
// echoed plus one 16-bit id per vector holding the queried bit.

struct MetricQueryFrame {
  uint64_t metric_id = 0;
  int bit = 0;  // [0, 255]
};
inline constexpr size_t kMetricQueryEnvelopeBytes = 9;
std::string EncodeMetricQuery(const MetricQueryFrame& frame);
StatusOr<MetricQueryFrame> DecodeMetricQuery(std::string_view wire);

struct VectorResponseFrame {
  uint64_t metric_id = 0;
  std::vector<int> vector_ids;  // each in [0, 65535], strictly ascending
};
/// Payload bytes of a response carrying v vector ids
/// (== config ProbeResponseBytes(v)).
inline size_t VectorResponsePayloadBytes(size_t v) { return 8 + 2 * v; }
std::string EncodeVectorResponse(const VectorResponseFrame& frame);
StatusOr<VectorResponseFrame> DecodeVectorResponse(std::string_view wire);

// ---------------------------------------------------------------------------
// kPut — one insertion group: every tuple of one (metric, bit) at one
// routed key (client StoreTuple / front-door insert batch). Payload is
// n paper tuples of TupleBytes()==8 each.

struct PutFrame {
  uint64_t dst_key = 0;
  uint64_t metric_id = 0;
  /// Relative TTL in ticks, or an absolute expiry tick when
  /// absolute_expiry is set. kNoExpiry means "never expires" in both
  /// interpretations.
  uint64_t expiry = kNoExpiry;
  bool absolute_expiry = false;
  /// DHS keys to write; every key must carry metric_id (enforced by
  /// Encode/Decode — a kPut frame is one metric's group by definition).
  std::vector<StoreKey> keys;
};
inline constexpr size_t kPutEnvelopeBytes = 24;
/// Payload bytes of a put carrying n tuples (== n * config TupleBytes()).
inline size_t PutPayloadBytes(size_t n_tuples) { return 8 * n_tuples; }
std::string EncodePut(const PutFrame& frame);
StatusOr<PutFrame> DecodePut(std::string_view wire);

// ---------------------------------------------------------------------------
// kAck — generic reply for kProbeOpen / kPut / kMigrate deliveries.
// code is the StatusCode of the serving side; node/hops describe where
// the frame landed. Acks carry no §5.1 payload (the paper's cost model
// charges requests and data-bearing responses only).

struct AckFrame {
  uint8_t code = 0;  // StatusCode as uint8_t
  uint64_t node = 0;
  int hops = 0;  // [0, 65535]
};
inline constexpr size_t kAckEnvelopeBytes = 11;
std::string EncodeAck(const AckFrame& frame);
StatusOr<AckFrame> DecodeAck(std::string_view wire);

// ---------------------------------------------------------------------------
// kMigrate — raw store-record hand-off for churn / shard moves. Record:
// dht_key 8 | key_len 2 | key bytes (StoreKey::ToBytes) | expires 8 |
// value_len 4 | value bytes. Migration traffic is uncharged in the
// simulator (it models background repair, not query cost), so the whole
// body counts as envelope for accounting purposes.

struct MigrateRecord {
  uint64_t dht_key = 0;
  StoreKey key;
  uint64_t expires_at = kNoExpiry;
  std::string value;
};
struct MigrateFrame {
  std::vector<MigrateRecord> records;
};
std::string EncodeMigrate(const MigrateFrame& frame);
StatusOr<MigrateFrame> DecodeMigrate(std::string_view wire);

// ---------------------------------------------------------------------------
// kCountRequest / kCountResponse — the front-door count service
// (dhs/count_service.h): a client anywhere asks one node to run the
// multi-metric count on its behalf. Estimates cross the wire as IEEE
// bit patterns (std::bit_cast, LE64), observables as signed 16-bit
// (-1 == "no vector observed for any bit", client.h).

struct CountRequestFrame {
  std::vector<uint64_t> metric_ids;
};
std::string EncodeCountRequest(const CountRequestFrame& frame);
StatusOr<CountRequestFrame> DecodeCountRequest(std::string_view wire);

struct CountResponseEntry {
  double estimate = 0.0;
  std::vector<int> observables;  // each in [-1, 32767]
};
struct CountResponseFrame {
  bool gave_up = false;
  uint32_t bitmaps_unresolved = 0;
  std::vector<CountResponseEntry> entries;
};
inline constexpr size_t kCountResponseEnvelopeBytes = 4;
std::string EncodeCountResponse(const CountResponseFrame& frame);
StatusOr<CountResponseFrame> DecodeCountResponse(std::string_view wire);

// ---------------------------------------------------------------------------
// kSketch — a serialized estimator travels as an opaque, family-tagged
// payload (the PR 2 Serialize()/Deserialize() formats are themselves
// strict, length-checked codecs; see tests/sketch/serialization_test.cc).
// The dht layer does not link the sketch library, so the frame carries
// validated bytes, not a decoded estimator.

inline constexpr uint8_t kSketchFamilyPcsa = 1;
inline constexpr uint8_t kSketchFamilyLogLog = 2;
inline constexpr uint8_t kSketchFamilyHyperLogLog = 3;

struct SketchFrame {
  uint8_t family = kSketchFamilyPcsa;
  std::string payload;  // estimator Serialize() bytes (SerializedBytes long)
};
inline constexpr size_t kSketchEnvelopeBytes = 1;
std::string EncodeSketch(const SketchFrame& frame);
StatusOr<SketchFrame> DecodeSketch(std::string_view wire);

}  // namespace dhs

#endif  // DHS_DHT_WIRE_H_
