#include "dht/loopback.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/status.h"
#include "dht/wire.h"

namespace dhs {

namespace {

constexpr uint8_t kOpRoute = 1;
constexpr uint8_t kOpSend = 2;
constexpr uint8_t kOpQuery = 3;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CHECK(flags >= 0) << "loopback: fcntl(F_GETFL) failed";
  CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "loopback: fcntl(F_SETFL) failed";
}

// Nonblocking write of as much of buf[pos..] as the socket accepts.
size_t TryWrite(int fd, const std::string& buf, size_t pos) {
  size_t written = 0;
  while (pos + written < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + pos + written,
                              buf.size() - pos - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CHECK(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        << "loopback: socket write failed";
    break;
  }
  return written;
}

// Nonblocking drain of everything currently readable into out.
bool TryRead(int fd, std::string& out) {
  char chunk[16384];
  bool any = false;
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      out.append(chunk, static_cast<size_t>(n));
      any = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CHECK(n != 0) << "loopback: socket closed mid-session";
    CHECK(errno == EAGAIN || errno == EWOULDBLOCK)
        << "loopback: socket read failed";
    return any;
  }
}

// True once buf holds one complete length-prefixed record; sets len.
bool HaveRecord(const std::string& buf, size_t& len) {
  if (buf.size() < 4) return false;
  len = LoadLE32(buf.data());
  return buf.size() >= 4 + len;
}

Status StatusFromRecord(uint8_t code, const std::string& message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal("loopback: unknown status code in response");
}

// Encodes a response record (without the leading length field yet).
std::string ResponseRecord(const Status& status, uint64_t node, int hops,
                           const std::string& frame) {
  std::string body;
  body.push_back(status.ok() ? char{1} : char{0});
  body.push_back(static_cast<char>(status.code()));
  const std::string& msg = status.message();
  CHECK(msg.size() <= 0xffff) << "loopback: status message too long";
  AppendLE16(body, static_cast<uint16_t>(msg.size()));
  body.append(msg);
  AppendLE64(body, node);
  CHECK(hops >= 0 && hops <= 0xffff) << "loopback: hops out of range";
  AppendLE16(body, static_cast<uint16_t>(hops));
  body.append(frame);
  std::string record;
  AppendLE32(record, static_cast<uint32_t>(body.size()));
  record.append(body);
  return record;
}

}  // namespace

LoopbackTransport::LoopbackTransport(DhtNetwork* network)
    : sim_(network, "loopback") {
  int fds[2];
  CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0)
      << "loopback: socketpair failed";
  client_fd_ = fds[0];
  server_fd_ = fds[1];
  SetNonBlocking(client_fd_);
  SetNonBlocking(server_fd_);
}

LoopbackTransport::~LoopbackTransport() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (server_fd_ >= 0) ::close(server_fd_);
}

void LoopbackTransport::set_frame_tap(FrameTap tap) {
  // Frames are observed where they are served (the server half), which
  // is also where every MessageStats charge happens.
  sim_.set_frame_tap(std::move(tap));
}

std::string LoopbackTransport::ServeRecord(const std::string& record) {
  CHECK(record.size() >= 1 + 8 + 8) << "loopback: malformed request record";
  const uint8_t op = static_cast<uint8_t>(record[0]);
  const uint64_t from = LoadLE64(record.data() + 1);
  const uint64_t to = LoadLE64(record.data() + 9);
  const std::string frame = record.substr(17);
  switch (op) {
    case kOpRoute: {
      auto delivery = sim_.Route(from, frame);
      if (!delivery.ok()) {
        return ResponseRecord(delivery.status(), 0, 0, std::string());
      }
      return ResponseRecord(Status::OK(), delivery->node, delivery->hops,
                            delivery->response);
    }
    case kOpSend: {
      auto delivery = sim_.Send(from, to, frame);
      if (!delivery.ok()) {
        return ResponseRecord(delivery.status(), 0, 0, std::string());
      }
      return ResponseRecord(Status::OK(), delivery->node, delivery->hops,
                            delivery->response);
    }
    case kOpQuery: {
      auto response = sim_.Query(to, frame);
      if (!response.ok()) {
        return ResponseRecord(response.status(), 0, 0, std::string());
      }
      return ResponseRecord(Status::OK(), to, 0, *response);
    }
    default:
      return ResponseRecord(
          Status::InvalidArgument("loopback: unknown session op"), 0, 0,
          std::string());
  }
}

bool LoopbackTransport::ServerStep() {
  bool progressed = false;
  // Flush any staged response bytes first so the client can drain them.
  if (!server_out_.empty()) {
    const size_t n = TryWrite(server_fd_, server_out_, 0);
    if (n > 0) {
      server_out_.erase(0, n);
      progressed = true;
    }
  }
  if (TryRead(server_fd_, server_in_)) progressed = true;
  size_t len = 0;
  while (HaveRecord(server_in_, len)) {
    const std::string record = server_in_.substr(4, len);
    server_in_.erase(0, 4 + len);
    server_out_.append(ServeRecord(record));
    progressed = true;
  }
  if (!server_out_.empty()) {
    const size_t n = TryWrite(server_fd_, server_out_, 0);
    if (n > 0) {
      server_out_.erase(0, n);
      progressed = true;
    }
  }
  return progressed;
}

StatusOr<std::string> LoopbackTransport::RoundTrip(uint8_t op, uint64_t from,
                                                   uint64_t to,
                                                   const std::string& frame) {
  std::string request;
  std::string body;
  body.push_back(static_cast<char>(op));
  AppendLE64(body, from);
  AppendLE64(body, to);
  body.append(frame);
  CHECK(body.size() <= UINT32_MAX) << "loopback: request record too large";
  AppendLE32(request, static_cast<uint32_t>(body.size()));
  request.append(body);

  size_t sent = 0;
  std::string response;
  size_t len = 0;
  while (!HaveRecord(response, len)) {
    bool progressed = false;
    if (sent < request.size()) {
      const size_t n = TryWrite(client_fd_, request, sent);
      sent += n;
      if (n > 0) progressed = true;
    }
    if (ServerStep()) progressed = true;
    if (TryRead(client_fd_, response)) progressed = true;
    // Strictly sequential request/response over an in-process pair:
    // every iteration must move bytes somewhere until the response is
    // complete, or the session is wedged.
    CHECK(progressed) << "loopback: session made no progress";
  }
  socket_bytes_sent_ += request.size();
  socket_bytes_received_ += 4 + len;
  CHECK(response.size() == 4 + len)
      << "loopback: unexpected trailing response bytes";

  // Decode the response record.
  const char* p = response.data() + 4;
  const uint8_t ok = static_cast<uint8_t>(p[0]);
  const uint8_t code = static_cast<uint8_t>(p[1]);
  const uint16_t msg_len = LoadLE16(p + 2);
  CHECK(len >= size_t{14} + msg_len) << "loopback: malformed response record";
  const std::string message(p + 4, msg_len);
  if (ok == 0) {
    Status status = StatusFromRecord(code, message);
    CHECK(!status.ok()) << "loopback: error response with OK code";
    return status;
  }
  return response.substr(4, len);  // caller slices node/hops/frame
}

StatusOr<Transport::Delivery> LoopbackTransport::Route(
    uint64_t origin_node, const std::string& frame) {
  auto record = RoundTrip(kOpRoute, origin_node, 0, frame);
  if (!record.ok()) return record.status();
  const char* p = record->data();
  const uint16_t msg_len = LoadLE16(p + 2);
  Delivery delivery;
  delivery.node = LoadLE64(p + 4 + msg_len);
  delivery.hops = LoadLE16(p + 12 + msg_len);
  delivery.response = record->substr(size_t{14} + msg_len);
  return delivery;
}

StatusOr<Transport::Delivery> LoopbackTransport::Send(
    uint64_t from_node, uint64_t to_node, const std::string& frame) {
  auto record = RoundTrip(kOpSend, from_node, to_node, frame);
  if (!record.ok()) return record.status();
  const char* p = record->data();
  const uint16_t msg_len = LoadLE16(p + 2);
  Delivery delivery;
  delivery.node = LoadLE64(p + 4 + msg_len);
  delivery.hops = LoadLE16(p + 12 + msg_len);
  delivery.response = record->substr(size_t{14} + msg_len);
  return delivery;
}

StatusOr<std::string> LoopbackTransport::Query(uint64_t node,
                                               const std::string& frame) {
  auto record = RoundTrip(kOpQuery, 0, node, frame);
  if (!record.ok()) return record.status();
  const uint16_t msg_len = LoadLE16(record->data() + 2);
  return record->substr(size_t{14} + msg_len);
}

}  // namespace dhs
