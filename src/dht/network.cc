#include "dht/network.h"

#include <cassert>

namespace dhs {

DhtNetwork::DhtNetwork(const OverlayConfig& config)
    : config_(config),
      space_(config.id_bits),
      name_hasher_(MakeHasher(config.hasher)) {
  if (name_hasher_ == nullptr) {
    name_hasher_ = MakeHasher("md4");
  }
}

Status DhtNetwork::AddNode(uint64_t node_id) {
  node_id = space_.Clamp(node_id);
  if (nodes_.count(node_id) > 0) {
    return Status::InvalidArgument("node id already present");
  }
  nodes_.emplace(node_id, Node{});
  if (nodes_.size() > 1) {
    MigrateOnJoin(node_id);
  }
  return Status::OK();
}

StatusOr<uint64_t> DhtNetwork::AddNodeFromName(std::string_view name) {
  const uint64_t id = space_.Clamp(name_hasher_->Hash(name));
  Status s = AddNode(id);
  if (!s.ok()) return s;
  return id;
}

void DhtNetwork::MigrateOnJoin(uint64_t new_node_id) {
  // Generic, always-correct re-homing: move every record whose
  // responsible node is now the joiner. O(total records); geometries
  // with cheap locality (Chord) override this.
  Node& joiner = nodes_.at(new_node_id);
  for (auto& [id, node] : nodes_) {
    if (id == new_node_id) continue;
    node.store.MigrateIf(
        [&](uint64_t dht_key) {
          auto responsible = ResponsibleNode(dht_key);
          return responsible.ok() && responsible.value() == new_node_id;
        },
        joiner.store);
  }
}

Status DhtNetwork::RemoveNode(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  if (it == nodes_.end()) return Status::NotFound("unknown node");
  // Graceful leave: re-home each live record at its new responsible node
  // (for Chord that is always the successor; for Kademlia records may
  // scatter over several neighbours).
  std::map<std::string, StoreRecord> pending;
  it->second.store.ForEachWithPrefix(
      "", now_, [&pending](const std::string& key, const StoreRecord& rec) {
        pending[key] = rec;
      });
  nodes_.erase(it);
  for (const auto& [key, rec] : pending) {
    auto responsible = ResponsibleNode(rec.dht_key);
    if (responsible.ok()) {
      nodes_.at(responsible.value())
          .store.Put(rec.dht_key, key, rec.value, rec.expires_at);
    }
  }
  return Status::OK();
}

Status DhtNetwork::FailNode(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  if (it == nodes_.end()) return Status::NotFound("unknown node");
  nodes_.erase(it);  // records vanish with the node
  return Status::OK();
}

std::vector<uint64_t> DhtNetwork::NodeIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

uint64_t DhtNetwork::RandomNode(Rng& rng) const {
  assert(!nodes_.empty());
  const size_t index = rng.UniformU64(nodes_.size());
  auto it = nodes_.begin();
  std::advance(it, static_cast<long>(index));
  return it->first;
}

DhtNetwork::NodeMap::const_iterator DhtNetwork::RingSuccessor(
    uint64_t key) const {
  auto it = nodes_.lower_bound(space_.Clamp(key));
  if (it == nodes_.end()) it = nodes_.begin();
  return it;
}

DhtNetwork::NodeMap::iterator DhtNetwork::RingSuccessor(uint64_t key) {
  auto it = nodes_.lower_bound(space_.Clamp(key));
  if (it == nodes_.end()) it = nodes_.begin();
  return it;
}

StatusOr<uint64_t> DhtNetwork::SuccessorOfNode(uint64_t node_id) const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty network");
  auto it = nodes_.upper_bound(space_.Clamp(node_id));
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

StatusOr<uint64_t> DhtNetwork::PredecessorOfNode(uint64_t node_id) const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty network");
  auto it = nodes_.lower_bound(space_.Clamp(node_id));
  if (it == nodes_.begin()) it = nodes_.end();
  --it;
  return it->first;
}

size_t DhtNetwork::CountNodesInRange(uint64_t lo, uint64_t hi) const {
  lo = space_.Clamp(lo);
  hi = space_.Clamp(hi);
  if (lo == hi) return 0;
  if (lo < hi) {
    return static_cast<size_t>(std::distance(nodes_.lower_bound(lo),
                                             nodes_.lower_bound(hi)));
  }
  return static_cast<size_t>(
             std::distance(nodes_.lower_bound(lo), nodes_.end())) +
         static_cast<size_t>(
             std::distance(nodes_.begin(), nodes_.lower_bound(hi)));
}

StatusOr<LookupResult> DhtNetwork::Lookup(uint64_t from_node, uint64_t key,
                                          size_t payload_bytes) {
  from_node = space_.Clamp(from_node);
  key = space_.Clamp(key);
  auto from_it = nodes_.find(from_node);
  if (from_it == nodes_.end()) {
    return Status::InvalidArgument("lookup origin is not a live node");
  }

  LookupResult result;
  uint64_t current = from_node;
  stats_.messages += 1;
  for (int step = 0; step <= config_.max_route_hops; ++step) {
    const uint64_t next = NextHop(current, key);
    if (next == current) {
      result.node = current;
      nodes_.at(current).load.served += 1;
      return result;
    }
    nodes_.at(current).load.routed += 1;
    current = next;
    result.hops += 1;
    stats_.hops += 1;
    stats_.bytes += payload_bytes;
  }
  return Status::Internal("routing did not converge (cycle?)");
}

Status DhtNetwork::DirectHop(uint64_t from_node, uint64_t to_node,
                             size_t payload_bytes) {
  from_node = space_.Clamp(from_node);
  to_node = space_.Clamp(to_node);
  if (nodes_.count(from_node) == 0 || nodes_.count(to_node) == 0) {
    return Status::InvalidArgument("direct hop between unknown nodes");
  }
  stats_.messages += 1;
  if (from_node != to_node) {
    stats_.hops += 1;
    stats_.bytes += payload_bytes;
    nodes_.at(to_node).load.served += 1;
  }
  return Status::OK();
}

StatusOr<uint64_t> DhtNetwork::Put(uint64_t from_node, uint64_t dht_key,
                                   const std::string& app_key,
                                   std::string value, uint64_t ttl_ticks) {
  const size_t payload = app_key.size() + value.size();
  auto lookup = Lookup(from_node, dht_key, payload);
  if (!lookup.ok()) return lookup.status();
  const uint64_t target = lookup->node;
  Node& node = nodes_.at(target);
  node.load.stores += 1;
  const uint64_t expires =
      ttl_ticks == kNoExpiry ? kNoExpiry : now_ + ttl_ticks;
  node.store.Put(dht_key, app_key, std::move(value), expires);
  return target;
}

StatusOr<std::string> DhtNetwork::GetValue(uint64_t from_node,
                                           uint64_t dht_key,
                                           const std::string& app_key) {
  auto lookup = Lookup(from_node, dht_key, app_key.size());
  if (!lookup.ok()) return lookup.status();
  Node& node = nodes_.at(lookup->node);
  const StoreRecord* rec = node.store.Get(app_key, now_);
  if (rec == nullptr) return Status::NotFound("no live record");
  return rec->value;
}

NodeStore* DhtNetwork::StoreAt(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  return it == nodes_.end() ? nullptr : &it->second.store;
}

const NodeStore* DhtNetwork::StoreAt(uint64_t node_id) const {
  auto it = nodes_.find(space_.Clamp(node_id));
  return it == nodes_.end() ? nullptr : &it->second.store;
}

NodeLoad* DhtNetwork::LoadAt(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  return it == nodes_.end() ? nullptr : &it->second.load;
}

std::vector<std::pair<uint64_t, NodeLoad>> DhtNetwork::Loads() const {
  std::vector<std::pair<uint64_t, NodeLoad>> result;
  result.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) result.emplace_back(id, node.load);
  return result;
}

void DhtNetwork::ResetLoads() {
  for (auto& [id, node] : nodes_) node.load = NodeLoad{};
}

void DhtNetwork::AdvanceClock(uint64_t ticks) {
  now_ += ticks;
  for (auto& [id, node] : nodes_) node.store.ExpireUntil(now_);
}

size_t DhtNetwork::TotalStorageBytes() const {
  size_t total = 0;
  for (const auto& [id, node] : nodes_) total += node.store.SizeBytes();
  return total;
}

}  // namespace dhs
