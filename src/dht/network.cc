#include "dht/network.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dhs {

DhtNetwork::DhtNetwork(const OverlayConfig& config)
    : config_(config),
      space_(config.id_bits),
      name_hasher_(MakeHasher(config.hasher)) {
  if (name_hasher_ == nullptr) {
    name_hasher_ = MakeHasher("md4");
  }
  shard_plan_.id_bits = space_.bits();
  shard_expiry_.assign(1, kNoExpiry);
}

void DhtNetwork::RingInsert(uint64_t node_id) {
  auto it = std::lower_bound(ring_.begin(), ring_.end(), node_id);
  loads_.insert(loads_.begin() + (it - ring_.begin()), NodeLoad{});
  ring_.insert(it, node_id);
}

void DhtNetwork::RingErase(uint64_t node_id) {
  auto it = std::lower_bound(ring_.begin(), ring_.end(), node_id);
  DCHECK(it != ring_.end() && *it == node_id)
      << "erasing node " << node_id << " absent from the ring index";
  loads_.erase(loads_.begin() + (it - ring_.begin()));
  ring_.erase(it);
}

Status DhtNetwork::AddNode(uint64_t node_id) {
  node_id = space_.Clamp(node_id);
  auto [it, inserted] = nodes_.try_emplace(node_id);
  if (!inserted) {
    return Status::InvalidArgument("node id already present");
  }
  it->second.BindExpiryWatermark(
      &shard_expiry_[static_cast<size_t>(shard_plan_.ShardOf(node_id))]);
  RingInsert(node_id);
  OnMembershipChange();
  if (ring_.size() > 1) {
    MigrateOnJoin(node_id);
  }
  return Status::OK();
}

size_t DhtNetwork::BulkAddNodes(std::vector<uint64_t> ids) {
  CHECK(nodes_.empty())
      << "BulkAddNodes is an initial-population fast path; the network "
      << "already holds " << nodes_.size() << " nodes";
  for (uint64_t& id : ids) id = space_.Clamp(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (uint64_t id : ids) {
    // Ascending inserts with an end() hint: amortized O(1) per node.
    auto it = nodes_.try_emplace(nodes_.end(), id);
    it->second.BindExpiryWatermark(
        &shard_expiry_[static_cast<size_t>(shard_plan_.ShardOf(id))]);
  }
  ring_ = std::move(ids);
  loads_.assign(ring_.size(), NodeLoad{});
  OnMembershipChange();
  return ring_.size();
}

void DhtNetwork::SetShardPlan(int shards) {
  shard_plan_.shards = shards < 1 ? 1 : shards;
  shard_plan_.id_bits = space_.bits();
  shard_expiry_.assign(static_cast<size_t>(shard_plan_.shards), kNoExpiry);
  for (auto& [id, store] : nodes_) {
    const size_t s = static_cast<size_t>(shard_plan_.ShardOf(id));
    store.BindExpiryWatermark(&shard_expiry_[s]);
    // MinExpiry is a stale-low bound, which is exactly what the
    // watermark needs to stay.
    shard_expiry_[s] = std::min(shard_expiry_[s], store.MinExpiry());
  }
  PrepareShardedRouting();
}

StatusOr<uint64_t> DhtNetwork::AddNodeFromName(std::string_view name) {
  const uint64_t id = space_.Clamp(name_hasher_->Hash(name));
  Status s = AddNode(id);
  if (!s.ok()) return s;
  return id;
}

void DhtNetwork::MigrateOnJoin(uint64_t new_node_id) {
  // Generic, always-correct re-homing: move every record whose
  // responsible node is now the joiner. O(total records); geometries
  // with cheap locality (Chord) override this.
  NodeStore& joiner = nodes_.at(new_node_id);
  for (auto& [id, store] : nodes_) {
    if (id == new_node_id) continue;
    store.MigrateIf(
        [&](uint64_t dht_key) {
          auto responsible = ResponsibleNode(dht_key);
          return responsible.ok() && responsible.value() == new_node_id;
        },
        joiner);
  }
}

Status DhtNetwork::RemoveNode(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  if (it == nodes_.end()) return Status::NotFound("unknown node");
  // Graceful leave: re-home each live record at its new responsible node
  // (for Chord that is always the successor; for Kademlia records may
  // scatter over several neighbours). Map nodes are spliced, not copied.
  NodeStore::RecordMap pending = it->second.TakeRecords(now_);
  nodes_.erase(it);
  RingErase(space_.Clamp(node_id));
  OnMembershipChange();
  while (!pending.empty()) {
    auto nh = pending.extract(pending.begin());
    auto responsible = ResponsibleNode(nh.mapped().dht_key);
    if (responsible.ok()) {
      nodes_.at(responsible.value()).Adopt(std::move(nh));
    }
  }
  return Status::OK();
}

Status DhtNetwork::FailNode(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  if (it == nodes_.end()) return Status::NotFound("unknown node");
  nodes_.erase(it);  // records vanish with the node
  RingErase(space_.Clamp(node_id));
  OnMembershipChange();
  return Status::OK();
}

uint64_t DhtNetwork::RandomNode(Rng& rng) const {
  CHECK(!ring_.empty()) << "RandomNode on an empty network";
  return ring_[rng.UniformU64(ring_.size())];
}

size_t DhtNetwork::RingSuccessorIndex(uint64_t key) const {
  DCHECK(!ring_.empty()) << "ring successor on an empty network";
  const size_t idx = static_cast<size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), space_.Clamp(key)) -
      ring_.begin());
  return idx == ring_.size() ? 0 : idx;
}

uint64_t DhtNetwork::RingSuccessorId(uint64_t key) const {
  return ring_[RingSuccessorIndex(key)];
}

size_t DhtNetwork::RingIndexOf(uint64_t node_id) const {
  auto it = std::lower_bound(ring_.begin(), ring_.end(), node_id);
  DCHECK(it != ring_.end() && *it == node_id)
      << "node " << node_id << " absent from the ring index";
  return static_cast<size_t>(it - ring_.begin());
}

StatusOr<uint64_t> DhtNetwork::SuccessorOfNode(uint64_t node_id) const {
  if (ring_.empty()) return Status::FailedPrecondition("empty network");
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             space_.Clamp(node_id));
  if (it == ring_.end()) it = ring_.begin();
  return *it;
}

StatusOr<uint64_t> DhtNetwork::PredecessorOfNode(uint64_t node_id) const {
  if (ring_.empty()) return Status::FailedPrecondition("empty network");
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             space_.Clamp(node_id));
  if (it == ring_.begin()) it = ring_.end();
  --it;
  return *it;
}

size_t DhtNetwork::CountNodesInRange(uint64_t lo, uint64_t hi) const {
  lo = space_.Clamp(lo);
  hi = space_.Clamp(hi);
  if (lo == hi) return 0;
  const auto at = [this](uint64_t key) {
    return static_cast<size_t>(
        std::lower_bound(ring_.begin(), ring_.end(), key) - ring_.begin());
  };
  if (lo < hi) return at(hi) - at(lo);
  return (ring_.size() - at(lo)) + at(hi);
}

void DhtNetwork::AttachTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->Bind(&stats_, &now_);
}

void DhtNetwork::AttachMetrics(MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_lookups_ = nullptr;
    m_direct_hops_ = nullptr;
    m_fault_drops_ = nullptr;
    m_fault_timeouts_ = nullptr;
    m_fault_crashes_ = nullptr;
    m_lookup_hops_ = nullptr;
    return;
  }
  const MetricLabels labels = {{"geometry", GeometryName()}};
  m_lookups_ = registry->GetCounter("dht_lookups_total", labels);
  m_direct_hops_ = registry->GetCounter("dht_direct_hops_total", labels);
  m_fault_drops_ = registry->GetCounter(
      "dht_faults_total", {{"geometry", GeometryName()}, {"kind", "drop"}});
  m_fault_timeouts_ = registry->GetCounter(
      "dht_faults_total", {{"geometry", GeometryName()}, {"kind", "timeout"}});
  m_fault_crashes_ = registry->GetCounter(
      "dht_faults_total", {{"geometry", GeometryName()}, {"kind", "crash"}});
  // Bounds follow the O(log N) routing expectation: sub-hop buckets
  // catch origin-responsible lookups, the tail catches routing bugs.
  m_lookup_hops_ = registry->GetHistogram(
      "dht_lookup_hops", {0, 1, 2, 4, 8, 16, 32, 64}, labels);
}

Status DhtNetwork::SetFaultPlan(const FaultConfig& fault_config) {
  Status s = fault_config.Validate();
  if (!s.ok()) return s;
  fault_plan_ = FaultPlan(fault_config);
  return Status::OK();
}

void DhtNetwork::ClearFaultPlan() { fault_plan_ = FaultPlan(); }

Status DhtNetwork::InjectFault(uint64_t from_node, uint64_t target_node) {
  const FaultType decision = fault_plan_.NextDecision();
  if (decision == FaultType::kNone) return Status::OK();
  // A self-delivered message never crosses the network: downgrade. This
  // also covers the would-be last-node crash (two distinct live
  // endpoints imply a survivor).
  if (target_node == from_node) return Status::OK();
  fault_plan_.RecordApplied(decision);
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("fault",
                     {TraceArg::Str("kind", FaultTypeName(decision)),
                      TraceArg::U64("from", from_node),
                      TraceArg::U64("target", target_node)});
  }
  switch (decision) {
    case FaultType::kDrop:
      if (m_fault_drops_ != nullptr) m_fault_drops_->Increment();
      return Status::Unavailable("message dropped (fault injection)");
    case FaultType::kTimeout:
      if (m_fault_timeouts_ != nullptr) m_fault_timeouts_->Increment();
      return Status::DeadlineExceeded(
          "message timed out (fault injection)");
    case FaultType::kCrash:
      if (m_fault_crashes_ != nullptr) m_fault_crashes_->Increment();
      crash_log_.push_back(target_node);
      CHECK_OK(FailNode(target_node)) << "crashing a live target";
      return Status::Unavailable("target node crashed (fault injection)");
    case FaultType::kNone:
      break;
  }
  return Status::OK();
}

StatusOr<LookupResult> DhtNetwork::Lookup(uint64_t from_node, uint64_t key,
                                          size_t payload_bytes) {
  from_node = space_.Clamp(from_node);
  key = space_.Clamp(key);
  auto origin = std::lower_bound(ring_.begin(), ring_.end(), from_node);
  if (origin == ring_.end() || *origin != from_node) {
    return Status::InvalidArgument("lookup origin is not a live node");
  }

  // The span opens before the message charge so its stats delta covers
  // the whole operation, faulted or not.
  ScopedSpan span(tracer_, "lookup");
  if (span.active()) {
    span.Arg(TraceArg::U64("from", from_node));
    span.Arg(TraceArg::U64("key", key));
  }
  if (m_lookups_ != nullptr) m_lookups_->Increment();

  stats_.messages += 1;
  if (fault_plan_.active()) {
    // The fault applies to the request as issued: charged as one
    // message, but no hops or bytes — undelivered work is
    // unobservable. The crash victim is the node that would answer.
    auto responsible = ResponsibleNode(key);
    CHECK_OK(responsible) << "responsibility on a non-empty network";
    Status fault = InjectFault(from_node, responsible.value());
    if (!fault.ok()) return fault;
  }

  LookupResult result;
  // Only the error paths above mutate membership, so `origin` is intact.
  size_t cur_idx = static_cast<size_t>(origin - ring_.begin());
  for (int step = 0; step <= config_.max_route_hops; ++step) {
    const size_t next_idx = NextHopIndex(cur_idx, ring_[cur_idx], key);
    if (next_idx == cur_idx) {
      result.node = ring_[cur_idx];
      loads_[cur_idx].served += 1;
      if (span.active()) {
        span.Arg(TraceArg::U64("node", result.node));
      }
      if (m_lookup_hops_ != nullptr) m_lookup_hops_->Observe(result.hops);
      return result;
    }
    if (span.active()) {
      span.tracer()->Instant("hop", {TraceArg::U64("from", ring_[cur_idx]),
                                     TraceArg::U64("to", ring_[next_idx])});
    }
    loads_[cur_idx].routed += 1;
    cur_idx = next_idx;
    result.hops += 1;
    stats_.hops += 1;
    stats_.bytes += payload_bytes;
  }
  return Status::Internal("routing did not converge (cycle?)");
}

Status DhtNetwork::DirectHop(uint64_t from_node, uint64_t to_node,
                             size_t payload_bytes) {
  from_node = space_.Clamp(from_node);
  to_node = space_.Clamp(to_node);
  if (nodes_.count(from_node) == 0 || nodes_.count(to_node) == 0) {
    return Status::InvalidArgument("direct hop between unknown nodes");
  }
  ScopedSpan span(tracer_, "direct_hop");
  if (span.active()) {
    span.Arg(TraceArg::U64("from", from_node));
    span.Arg(TraceArg::U64("to", to_node));
  }
  if (m_direct_hops_ != nullptr) m_direct_hops_->Increment();
  stats_.messages += 1;
  if (fault_plan_.active()) {
    Status fault = InjectFault(from_node, to_node);
    if (!fault.ok()) return fault;
  }
  if (from_node != to_node) {
    stats_.hops += 1;
    stats_.bytes += payload_bytes;
    loads_[RingIndexOf(to_node)].served += 1;
  }
  return Status::OK();
}

StatusOr<uint64_t> DhtNetwork::Put(uint64_t from_node, uint64_t dht_key,
                                   StoreKey app_key, std::string value,
                                   uint64_t ttl_ticks) {
  ScopedSpan span(tracer_, "put");
  const size_t payload = app_key.SizeBytes() + value.size();
  auto lookup = Lookup(from_node, dht_key, payload);
  if (!lookup.ok()) return lookup.status();
  const uint64_t target = lookup->node;
  loads_[RingIndexOf(target)].stores += 1;
  const uint64_t expires =
      ttl_ticks == kNoExpiry ? kNoExpiry : now_ + ttl_ticks;
  nodes_.at(target).Put(dht_key, std::move(app_key), std::move(value),
                        expires);
  return target;
}

StatusOr<std::string> DhtNetwork::GetValue(uint64_t from_node,
                                           uint64_t dht_key,
                                           const StoreKey& app_key) {
  ScopedSpan span(tracer_, "get");
  auto lookup = Lookup(from_node, dht_key, app_key.SizeBytes());
  if (!lookup.ok()) return lookup.status();
  const StoreRecord* rec = nodes_.at(lookup->node).Get(app_key, now_);
  if (rec == nullptr) return Status::NotFound("no live record");
  return rec->value;
}

NodeStore* DhtNetwork::StoreAt(uint64_t node_id) {
  auto it = nodes_.find(space_.Clamp(node_id));
  return it == nodes_.end() ? nullptr : &it->second;
}

const NodeStore* DhtNetwork::StoreAt(uint64_t node_id) const {
  auto it = nodes_.find(space_.Clamp(node_id));
  return it == nodes_.end() ? nullptr : &it->second;
}

NodeLoad* DhtNetwork::LoadAt(uint64_t node_id) {
  node_id = space_.Clamp(node_id);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), node_id);
  if (it == ring_.end() || *it != node_id) return nullptr;
  return &loads_[static_cast<size_t>(it - ring_.begin())];
}

std::vector<std::pair<uint64_t, NodeLoad>> DhtNetwork::Loads() const {
  std::vector<std::pair<uint64_t, NodeLoad>> result;
  result.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    result.emplace_back(ring_[i], loads_[i]);
  }
  return result;
}

void DhtNetwork::ResetLoads() {
  std::fill(loads_.begin(), loads_.end(), NodeLoad{});
}

void DhtNetwork::AdvanceClock(uint64_t ticks) {
  now_ += ticks;
  for (int s = 0; s < shard_plan_.shards; ++s) {
    if (shard_expiry_[static_cast<size_t>(s)] > now_) continue;
    ExpireShard(s);  // something in this slice can be due
  }
}

void DhtNetwork::ExpireShard(int shard) {
  uint64_t next = kNoExpiry;
  auto it = nodes_.lower_bound(shard_plan_.LowerBound(shard));
  const auto end = shard + 1 == shard_plan_.shards
                       ? nodes_.end()
                       : nodes_.lower_bound(shard_plan_.LowerBound(shard + 1));
  for (; it != end; ++it) {
    NodeStore& store = it->second;
    // MinExpiry is a stale-low bound: a false positive costs one
    // ExpireUntil call that pops only stale heap entries.
    if (store.MinExpiry() <= now_) store.ExpireUntil(now_);
    next = std::min(next, store.MinExpiry());
  }
  shard_expiry_[static_cast<size_t>(shard)] = next;
}

size_t DhtNetwork::TotalStorageBytes() const {
  size_t total = 0;
  for (const auto& [id, store] : nodes_) total += store.SizeBytes();
  return total;
}

Status DhtNetwork::AuditFull() const {
  const auto fail = [](const std::string& what) {
    return Status::Internal("network audit: " + what);
  };

  // Ring index <-> membership map mirror.
  if (ring_.size() != nodes_.size()) {
    std::ostringstream os;
    os << "ring index holds " << ring_.size() << " ids but the membership "
       << "map holds " << nodes_.size();
    return fail(os.str());
  }
  if (loads_.size() != ring_.size()) {
    std::ostringstream os;
    os << "load vector (" << loads_.size() << ") not parallel to the ring "
       << "index (" << ring_.size() << ")";
    return fail(os.str());
  }
  // nodes_ is an ordered map over the same key type, so walking both in
  // lockstep verifies sortedness, uniqueness and equality at once.
  size_t idx = 0;
  for (const auto& [id, store] : nodes_) {
    if (ring_[idx] != id) {
      std::ostringstream os;
      os << "ring index [" << idx << "] = " << ring_[idx]
         << " but membership map has " << id;
      return fail(os.str());
    }
    if (space_.Clamp(id) != id) {
      std::ostringstream os;
      os << "node id " << id << " escapes the " << space_.bits()
         << "-bit ID space";
      return fail(os.str());
    }
    ++idx;
  }

  // Shard plan sanity: one watermark slot per slice, sized to the space.
  if (shard_plan_.shards < 1 ||
      shard_expiry_.size() != static_cast<size_t>(shard_plan_.shards)) {
    std::ostringstream os;
    os << "shard plan declares " << shard_plan_.shards
       << " slices but there are " << shard_expiry_.size()
       << " expiry watermarks";
    return fail(os.str());
  }
  if (shard_plan_.id_bits != space_.bits()) {
    std::ostringstream os;
    os << "shard plan partitions a " << shard_plan_.id_bits
       << "-bit space but the overlay uses " << space_.bits() << " bits";
    return fail(os.str());
  }

  // Per-store state, per-shard watermark binding, and the true earliest
  // expiry of each slice.
  std::vector<uint64_t> true_earliest(shard_expiry_.size(), kNoExpiry);
  for (const auto& [id, store] : nodes_) {
    Status s = store.AuditFull(now_);
    if (!s.ok()) {
      std::ostringstream os;
      os << "store at node " << id << ": " << s.message();
      return fail(os.str());
    }
    const size_t shard = static_cast<size_t>(shard_plan_.ShardOf(id));
    if (store.bound_watermark() != &shard_expiry_[shard]) {
      std::ostringstream os;
      os << "store at node " << id
         << " is not bound to its owning shard's expiry watermark (shard "
         << shard << ")";
      return fail(os.str());
    }
    store.ForEach(now_, [&true_earliest, shard](const StoreKey&,
                                                const StoreRecord& rec) {
      if (rec.expires_at != kNoExpiry) {
        true_earliest[shard] = std::min(true_earliest[shard], rec.expires_at);
      }
    });
  }
  // Each watermark is a lower bound: AdvanceClock may only skip a slice
  // when nothing in it can be due, so overshooting the slice's true
  // earliest expiry would silently leave dead records alive.
  for (size_t shard = 0; shard < shard_expiry_.size(); ++shard) {
    if (shard_expiry_[shard] > true_earliest[shard]) {
      std::ostringstream os;
      os << "shard " << shard << " expiry watermark " << shard_expiry_[shard]
         << " overshoots the slice's true earliest live expiry "
         << true_earliest[shard];
      return fail(os.str());
    }
  }

  return AuditDerivedState();
}

void DhtNetwork::CheckInvariants() const { DCHECK_OK(AuditFull()); }

}  // namespace dhs
