// Chord-like overlay (Stoica et al., SIGCOMM '01): ring geometry.
//
// Responsibility: successor(key) — the first live node clockwise from
// the key. Routing: greedy closest-preceding-finger, with finger i of
// node n resolved as successor(n + 2^i) against the (converged) global
// ring. Candidate holders of a prefix-aligned interval are its member
// nodes plus the first node past its top (which owns the interval's
// highest keys), probed successors-first then predecessors — exactly
// the walk of the paper's Alg. 1.

#ifndef DHS_DHT_CHORD_H_
#define DHS_DHT_CHORD_H_

#include <vector>

#include "dht/network.h"

namespace dhs {

class ChordNetwork : public DhtNetwork {
 public:
  explicit ChordNetwork(const OverlayConfig& config = OverlayConfig())
      : DhtNetwork(config) {}

  const char* GeometryName() const override { return "chord"; }

  /// Chord responsibility: key k belongs to successor(k).
  StatusOr<uint64_t> ResponsibleNode(uint64_t key) const override;

  std::vector<uint64_t> ProbeCandidates(const IdInterval& interval,
                                        uint64_t probe_key,
                                        uint64_t start_node,
                                        int max_candidates) const override;

 protected:
  uint64_t NextHop(uint64_t current, uint64_t key) const override;

  /// Chord-targeted join migration: only the joiner's successor can lose
  /// keys (those in (predecessor, joiner]).
  void MigrateOnJoin(uint64_t new_node_id) override;
};

}  // namespace dhs

#endif  // DHS_DHT_CHORD_H_
