// Chord-like overlay (Stoica et al., SIGCOMM '01): ring geometry.
//
// Responsibility: successor(key) — the first live node clockwise from
// the key. Routing: greedy closest-preceding-finger, with finger i of
// node n resolved as successor(n + 2^i) against the (converged) global
// ring. Finger tables are materialized lazily per node and dropped on
// every membership change, so a stable overlay routes over plain
// arrays while a churning one pays only for the tables it touches.
// Candidate holders of a prefix-aligned interval are its member
// nodes plus the first node past its top (which owns the interval's
// highest keys), probed successors-first then predecessors — exactly
// the walk of the paper's Alg. 1.

#ifndef DHS_DHT_CHORD_H_
#define DHS_DHT_CHORD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dht/network.h"

namespace dhs {

class ChordNetwork : public DhtNetwork {
 public:
  explicit ChordNetwork(const OverlayConfig& config = OverlayConfig())
      : DhtNetwork(config) {}

  const char* GeometryName() const override { return "chord"; }

  /// Chord responsibility: key k belongs to successor(k).
  [[nodiscard]] StatusOr<uint64_t> ResponsibleNode(uint64_t key) const override;

  std::vector<uint64_t> ProbeCandidates(const IdInterval& interval,
                                        uint64_t probe_key,
                                        uint64_t start_node,
                                        int max_candidates) const override;

  /// §3.5 on a ring: copies go to the primary's successors — when the
  /// primary fails, successor(key) resolves to exactly the next node
  /// clockwise, so the i-th replica is the node that becomes
  /// responsible after i failures (and the node the probe walk tries
  /// next).
  std::vector<uint64_t> ReplicaCandidates(const IdInterval& interval,
                                          uint64_t key, uint64_t primary,
                                          int max_replicas) const override;

 protected:
  size_t NextHopIndex(size_t current_idx, uint64_t current_id,
                      uint64_t key) const override;

  /// Chord-targeted join migration: only the joiner's successor can lose
  /// keys (those in (predecessor, joiner]).
  void MigrateOnJoin(uint64_t new_node_id) override;

  /// O(1) invalidation: bumping the epoch marks every cached finger
  /// table stale without touching it.
  void OnMembershipChange() override { ++epoch_; }

  /// Pre-sizes tables_ to the ring so sharded routing never resizes the
  /// shared vector; each row is then only written by the worker owning
  /// its node (stale rows reset in place on first use).
  void PrepareShardedRouting() override {
    if (tables_.size() < ring().size()) tables_.resize(ring().size());
  }

  /// Recomputes every epoch-fresh finger table entry brute-force against
  /// the ring index: predecessor pointer and each resolved finger level
  /// must match successor(n + 2^i). Stale-epoch rows are ignored (they
  /// are reset before next use).
  [[nodiscard]] Status AuditDerivedState() const override;

 private:
  /// A node's materialized routing state against the converged ring,
  /// stored at the node's ring index and tagged with the membership
  /// epoch it was built in. Fingers resolve individually on first probe
  /// (`known` bit i) and hold ring *indices*, so a warm hop is pure
  /// array reads — no id search of any kind. A node pays only for the
  /// levels its routed traffic actually touches; the greedy loop
  /// usually takes the first finger it tries.
  struct FingerTable {
    uint64_t epoch = 0;        // valid iff == network epoch
    uint64_t predecessor = 0;  // ring predecessor's ID
    uint64_t known = 0;        // bit i set => fingers[i] resolved
    // Ring index of successor(n + 2^i), inline (no per-row heap
    // allocation; one row spans a few cache lines and the probed
    // levels cluster around log2 of the remaining distance).
    uint32_t fingers[64];
  };

  /// The (valid-epoch) finger table of the node at `node_idx`; resets a
  /// stale row in place.
  FingerTable& TableAt(size_t node_idx) const;
  size_t FingerIndex(FingerTable& table, uint64_t node_id, int i) const;

  mutable std::vector<FingerTable> tables_;  // indexed by ring index
  mutable uint64_t epoch_ = 1;  // starts above FingerTable::epoch's 0
};

}  // namespace dhs

#endif  // DHS_DHT_CHORD_H_
