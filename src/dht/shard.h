// Sharded single-world engine: K ID-space shards driven by pinned
// workers (common/thread_pool.h: ShardPool) over one DhtNetwork.
//
// The ShardPlan slices the ID space into K contiguous ranges; shard s
// owns every node whose ID falls in its slice — the node's store, its
// load counters, its row of the geometry's lazy routing cache, and its
// slice of the expiry watermarks. A batch of operations executes as a
// bulk-synchronous token walk: each operation is one token that hops
// from shard to shard along its routing path, and only the worker
// owning the token's current node touches that node's state. Tokens
// crossing shards are exchanged at tick barriers in a total order
// stamped (round, source_shard, emission_seq), so the schedule is a
// pure function of the batch — independent of thread timing.
//
// Determinism contract (pinned by tests/dht/shard_test.cc and the
// audit_sim --shards differential checker): a fixed-seed run produces
// byte-identical observables — store contents, load counters, message
// stats, trace streams, fault schedules — at 1, 4 and 8 shards.
// The ingredients:
//
//   * Fault decisions come from per-operation derived streams,
//     FaultPlan::DecisionFor(config, OpFaultSeq(op_ordinal, pos)) —
//     a pure function of the batch position, not of a shared sequence
//     counter, so draw order across workers is irrelevant. The plan's
//     own seq() is never advanced by the sharded engine. Crash faults
//     are rejected (ExecuteBatch fails InvalidArgument): membership is
//     frozen while a batch runs.
//   * State mutations either commute (per-node load counters are
//     integer sums) or are buffered as effects and committed after the
//     walk in canonical (op_index, effect_seq) order (store writes),
//     so same-batch operations never observe each other and commit
//     order is shard-count-invariant.
//   * Trace spans, instants, metrics and global MessageStats are
//     replayed on the coordinator in operation order from per-token
//     event logs after the walk completes — one span per operation
//     with its exact stats delta, preserving the tracer/metrics
//     reconciliation invariant.
//
// Semantics relative to the sequential client path (documented in
// DESIGN.md): counting walks always probe the full candidate list (no
// early exit — for sLL/HLL/PCSA observables the skipped probes cannot
// change the result, only the probe cost), retries do not advance the
// virtual clock (retry_backoff_ticks is a sequential-only knob), and
// batches are atomic with respect to expiry (the clock is frozen).

#ifndef DHS_DHT_SHARD_H_
#define DHS_DHT_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "dht/fault.h"
#include "dht/network.h"
#include "dht/node_id.h"
#include "dht/stats.h"
#include "dht/store.h"

namespace dhs {

/// One operation of a sharded batch. Key/origin are used as given
/// (clamped); randomness (target keys) is drawn by the caller so the
/// engine itself is RNG-free.
struct ShardOp {
  enum Kind : uint8_t {
    kLookup = 0,  // route origin -> responsible(key)
    kPut,         // route, then store put_keys at the responsible node
                  // and its replicas (§3.5 placement)
    kProbe,       // route, then walk candidate holders reading DHS
                  // records (Alg. 1's counting probe)
  };

  Kind kind = kLookup;
  uint64_t origin = 0;
  uint64_t key = 0;
  /// Optional encoded wire frame (dht/wire.h). When non-empty,
  /// ExecuteBatch decodes it and overwrites the routed fields — key,
  /// payload_bytes, and for kPut the put_keys/ttl_ticks — so the engine
  /// executes exactly what is on the wire (kPut frames for kPut ops,
  /// kProbeOpen frames for kProbe ops). An undecodable frame fails the
  /// op with the decoder's status; field-built ops (empty frame) keep
  /// working unchanged.
  std::string frame;
  /// Routed payload: charged per routing hop and per direct hop
  /// (tuple bytes for kPut, probe-request bytes for kProbe).
  size_t payload_bytes = 0;
  /// Interval the key was drawn from (kPut: replica placement;
  /// kProbe: candidate enumeration).
  IdInterval interval;

  // kPut only.
  std::vector<StoreKey> put_keys;   // records stored under `key`
  uint64_t ttl_ticks = kNoExpiry;   // expiry = now + ttl (kNoExpiry = none)
  int replication = 1;              // total copies wanted (>= 1)
  int replica_slack = 2;            // extra candidates enumerated so
                                    // unreachable replicas fall through

  // kProbe only.
  std::vector<std::pair<uint64_t, int>> queries;  // (metric_id, bit)
  int lim = 1;                          // max nodes visited (>= 1)
  size_t response_base_bytes = 0;       // response framing bytes
  size_t response_per_record_bytes = 0; // per reported vector id
};

/// Per-operation outcome. The counters mirror the sequential client's
/// DhsCostReport accounting exactly (dht_lookups = lookups_issued,
/// direct_probes = direct_issued, failed_probes = failed_candidates,
/// hops/bytes = delta.hops/delta.bytes).
struct ShardOpOutcome {
  Status status = Status::OK();  // transient codes mean "degrade", as
                                 // in the sequential client
  uint64_t node = 0;             // responsible node (on lookup success)
  int lookup_hops = 0;           // routing hops of the delivered lookup
  MessageStats delta;            // this op's share of network stats
  int lookups_issued = 0;        // lookup attempts (incl. faulted)
  int direct_issued = 0;         // direct-hop attempts (incl. faulted)
  int retries = 0;               // re-issues after transient faults
  int failed_candidates = 0;     // replicas/candidates skipped
  int replicas_written = 0;      // kPut: copies stored (incl. primary)
  std::vector<uint64_t> visited; // kProbe: nodes read, in walk order
  /// kProbe: found[v][q] = vector ids reported by visited[v] for
  /// queries[q], in store iteration order.
  std::vector<std::vector<std::vector<int>>> found;
};

/// Drives one DhtNetwork with a ShardPool. Between batches the engine
/// is a thin wrapper; during ExecuteBatch it is the only legal way to
/// touch the network. All methods must be called from one coordinating
/// thread. Membership changes must go through the engine (or be
/// followed by Resync()) so the shard plan and routing caches stay
/// consistent.
class ShardedNetwork {
 public:
  /// `shards <= 1` runs every batch inline on the calling thread — the
  /// deterministic baseline the multi-shard runs must match.
  ShardedNetwork(DhtNetwork* network, int shards);

  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  DhtNetwork* network() const { return net_; }
  int shards() const { return pool_.shards(); }

  /// Lookup retry budget per operation (the sequential client's
  /// DhsConfig::retry_attempts). Clamped to >= 1.
  void set_retry_attempts(int attempts) {
    retry_attempts_ = attempts < 1 ? 1 : attempts;
  }
  int retry_attempts() const { return retry_attempts_; }

  /// Test-only: installs (or clears, with nullptr) a schedule
  /// controller on the engine's pool, so the interleaving harness
  /// (common/schedule.h, audit_sim --interleave) chooses the task
  /// order instead of the OS scheduler. Only legal between batches;
  /// inline engines (shards <= 1) ignore it.
  void SetScheduleController(ScheduleController* controller) {
    pool_.SetScheduleController(controller);
  }

  /// Re-installs the shard plan after out-of-band membership changes
  /// (AddNode/RemoveNode/FailNode called directly on the network).
  void Resync();

  /// Membership through the engine: forwards to the network and marks
  /// the plan for Resync before the next batch.
  [[nodiscard]] Status JoinNode(uint64_t node_id);
  [[nodiscard]] Status LeaveNode(uint64_t node_id);
  [[nodiscard]] Status CrashNode(uint64_t node_id);

  /// AdvanceClock with per-shard parallel expiry: each worker expires
  /// its own slice (DhtNetwork::ExpireShard), so a mass-expiry tick
  /// scales with shards.
  void AdvanceClock(uint64_t ticks);

  /// Runs a batch of operations to completion and returns one outcome
  /// per op, in op order. The batch observes the network state as of
  /// entry (same-batch store writes are not visible to same-batch
  /// probes); outcomes and side effects are shard-count-invariant.
  /// Fails InvalidArgument if the active fault plan has
  /// crash_probability > 0 (membership is frozen during a batch).
  [[nodiscard]] StatusOr<std::vector<ShardOpOutcome>> ExecuteBatch(
      const std::vector<ShardOp>& ops);

  /// Ordinal the next ExecuteBatch assigns to its first op. Replayers
  /// predict the fault schedule from it: op i of that batch draws
  /// DecisionFor(config, OpFaultSeq(ordinal + i, pos)) for
  /// pos = 0, 1, ...
  uint64_t next_op_ordinal() const { return op_ordinal_; }

  /// The derived fault-stream position of draw `pos` of operation
  /// `op_ordinal` (pos < 2^16; ops draw far fewer).
  static uint64_t OpFaultSeq(uint64_t op_ordinal, uint32_t pos) {
    return (op_ordinal << 16) | pos;
  }

 private:
  struct Token;     // one op's routing/walk state, hops across shards
  struct OpEvent;   // trace event recorded during the walk
  struct OpState;   // per-op scratch (events, walk list, effect seq)
  struct Effect;    // deferred store write, committed in (op, seq) order
  struct BatchCtx;  // everything a worker needs for one batch

  /// Runs `tok` on worker `shard` until it finishes or leaves the
  /// shard (then it is appended to this worker's outbox).
  void StepToken(BatchCtx& ctx, int shard, Token tok);
  void FinishLookupFailure(BatchCtx& ctx, Token& tok, FaultType last);
  void TerminalPut(BatchCtx& ctx, int shard, Token& tok);
  void VisitProbeNode(BatchCtx& ctx, const Token& tok, size_t node_idx);
  void CommitEffects(BatchCtx& ctx);
  void ReplayObservability(BatchCtx& ctx);

  DhtNetwork* net_;
  ShardPool pool_;
  int retry_attempts_ = 1;
  uint64_t op_ordinal_ = 0;
  bool dirty_ = false;  // membership changed since last Resync
};

}  // namespace dhs

#endif  // DHS_DHT_SHARD_H_
