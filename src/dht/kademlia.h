// Kademlia-like overlay (Maymounkov & Mazieres, IPTPS '02): XOR
// geometry.
//
// Responsibility: the live node minimizing XOR(node, key). Routing: at
// each step the query jumps to a node sharing a strictly longer ID
// prefix with the key (the converged-k-bucket idealization), giving
// O(log N) hops. The contact a node uses for differing-bit level b
// depends only on (node, b), so contacts are materialized into a
// per-node bucket table that is epoch-invalidated on membership change
// — the analogue of Chord's finger-table cache. Candidate holders of a
// prefix-aligned interval are the nodes of the smallest non-empty
// aligned block enclosing it, ordered by XOR distance to the probed key
// — because under XOR responsibility the keys of an empty block scatter
// over that enclosing block rather than onto a single ring successor.
//
// DHS runs unchanged on top of this network (the paper's DHT-agnostic
// claim, §1): the thr() intervals are prefix-aligned blocks, meaningful
// in both geometries.

#ifndef DHS_DHT_KADEMLIA_H_
#define DHS_DHT_KADEMLIA_H_

#include <cstdint>
#include <vector>

#include "dht/network.h"

namespace dhs {

class KademliaNetwork : public DhtNetwork {
 public:
  explicit KademliaNetwork(const OverlayConfig& config = OverlayConfig())
      : DhtNetwork(config) {}

  const char* GeometryName() const override { return "kademlia"; }

  /// XOR responsibility: argmin over live nodes of node ^ key.
  [[nodiscard]] StatusOr<uint64_t> ResponsibleNode(uint64_t key) const override;

  std::vector<uint64_t> ProbeCandidates(const IdInterval& interval,
                                        uint64_t probe_key,
                                        uint64_t start_node,
                                        int max_candidates) const override;

  /// §3.5 under XOR geometry: copies go to the block members XOR-nearest
  /// to the tuple's routing key — the exact order ProbeCandidates hands
  /// a counting walk for that key (both delegate to XorCandidates), so
  /// a walk falling past i failed holders lands on the i-th replica.
  /// Ring successors of the primary (the Chord rule) would scatter
  /// copies across XOR distance where walks never probe.
  std::vector<uint64_t> ReplicaCandidates(const IdInterval& interval,
                                          uint64_t key, uint64_t primary,
                                          int max_replicas) const override;

 protected:
  size_t NextHopIndex(size_t current_idx, uint64_t current_id,
                      uint64_t key) const override;

  /// O(1) invalidation: bumping the epoch marks every cached bucket
  /// table stale without touching it (Chord's finger-table scheme).
  void OnMembershipChange() override { ++epoch_; }

  /// Pre-sizes tables_ to the ring so sharded routing never resizes the
  /// shared vector; each row is then only written by the worker owning
  /// its node (stale rows reset in place on first use).
  void PrepareShardedRouting() override {
    if (tables_.size() < ring().size()) tables_.resize(ring().size());
  }

  /// Recomputes every epoch-fresh cached bucket contact brute-force: a
  /// kContact slot must hold the ring index of the XOR-closest block
  /// member and a kEmptyBlock slot must correspond to a block with no
  /// live node. Stale-epoch rows are ignored (they are reset before
  /// next use).
  [[nodiscard]] Status AuditDerivedState() const override;

 private:
  /// Per-node contact cache, one slot per differing-bit level: the ring
  /// index of the block member a query at this node jumps to, or "block
  /// empty" (route straight to the key's responsible node). Stored at
  /// the node's ring index and tagged with the membership epoch it was
  /// built in, like Chord's FingerTable.
  struct BucketTable {
    uint64_t epoch = 0;             // valid iff == network epoch
    std::vector<uint64_t> contact;  // ring index; valid where kContact
    std::vector<uint8_t> state;     // kUnknown / kContact / kEmptyBlock
  };
  enum : uint8_t { kUnknown = 0, kContact = 1, kEmptyBlock = 2 };

  /// The (valid-epoch) bucket table of the node at `node_idx`; resets a
  /// stale row in place.
  BucketTable& TableAt(size_t node_idx) const;

  /// True iff a live node exists in [lo, lo + size).
  bool BlockNonEmpty(uint64_t lo, uint64_t size) const;

  /// XOR-closest node to `key` within the non-empty aligned block
  /// [lo, lo + size). Preconditions: block non-empty.
  uint64_t ClosestWithin(uint64_t lo, uint64_t size, uint64_t key) const;

  /// Members of the smallest non-empty aligned block enclosing
  /// `interval`, ranked by XOR distance to `key`, excluding `exclude`;
  /// at most `max_candidates`. The shared ordering behind both
  /// ProbeCandidates and ReplicaCandidates.
  std::vector<uint64_t> XorCandidates(const IdInterval& interval,
                                      uint64_t key, uint64_t exclude,
                                      int max_candidates) const;

  // Lazily filled, epoch-invalidated; indexed by ring index.
  mutable std::vector<BucketTable> tables_;
  mutable uint64_t epoch_ = 1;  // starts above BucketTable::epoch's 0
};

}  // namespace dhs

#endif  // DHS_DHT_KADEMLIA_H_
